#include "dataflow/stack_height.hpp"

#include <deque>

#include "parse/loops.hpp"

namespace rvdyn::dataflow {

namespace {

using parse::Block;
using parse::EdgeType;

bool is_intraproc(EdgeType t) {
  switch (t) {
    case EdgeType::Fallthrough:
    case EdgeType::Taken:
    case EdgeType::NotTaken:
    case EdgeType::Jump:
    case EdgeType::IndirectJump:
    case EdgeType::CallFallthrough:
      return true;
    default:
      return false;
  }
}

/// Decompose a register-copy-plus-constant: `addi rd, rs, imm`,
/// `add rd, rs, x0` or `add rd, x0, rs` — the forms compilers emit for
/// frame setup/teardown (c.mv expands to the add forms). Returns
/// (source register, constant) when the instruction is one of them.
struct SrcAdjust {
  isa::Reg src;
  std::int64_t imm;
};
std::optional<SrcAdjust> adjust_src(const isa::Instruction& insn) {
  if (insn.mnemonic() == isa::Mnemonic::addi && insn.num_operands() == 3)
    return SrcAdjust{insn.operand(1).reg, insn.operand(2).imm};
  if (insn.mnemonic() == isa::Mnemonic::add && insn.num_operands() == 3) {
    if (insn.operand(2).reg == isa::zero)
      return SrcAdjust{insn.operand(1).reg, 0};
    if (insn.operand(1).reg == isa::zero)
      return SrcAdjust{insn.operand(2).reg, 0};
  }
  return std::nullopt;
}

}  // namespace

HeightState StackHeightAnalysis::apply(const parse::ParsedInsn& pi,
                                       HeightState s) {
  const isa::Instruction& insn = pi.insn;
  const bool writes_sp = insn.regs_written().contains(isa::sp);
  const bool writes_fp = insn.regs_written().contains(isa::fp);
  if (!writes_sp && !writes_fp) return s;

  const auto adj = adjust_src(insn);
  if (writes_sp) {
    // sp from sp: standard prologue/epilogue (covers c.addi16sp). sp from
    // fp: the frame-pointer epilogue `addi sp, s0, imm` — height stays
    // known when fp's offset is tracked.
    if (adj && adj->src == isa::sp && s.sp)
      s.sp = *s.sp + adj->imm;
    else if (adj && adj->src == isa::fp && s.fp)
      s.sp = *s.fp + adj->imm;
    else
      s.sp = std::nullopt;  // sp escapes the model
  }
  if (writes_fp) {
    s.fp_original = false;
    if (adj && adj->src == isa::sp && s.sp)
      s.fp = *s.sp + adj->imm;  // fp setup: addi s0, sp, frame
    else if (adj && adj->src == isa::fp && s.fp)
      s.fp = *s.fp + adj->imm;
    else
      s.fp = std::nullopt;  // fp reload / arbitrary write
  }
  return s;
}

HeightState StackHeightAnalysis::merge(const HeightState& a,
                                       const HeightState& b) {
  HeightState m;
  m.sp = (a.sp && b.sp && *a.sp == *b.sp) ? a.sp : std::nullopt;
  m.fp = (a.fp && b.fp && *a.fp == *b.fp) ? a.fp : std::nullopt;
  m.fp_original = a.fp_original && b.fp_original;
  return m;
}

StackHeightAnalysis::StackHeightAnalysis(const parse::Function& f)
    : func_(f) {
  const Block* entry = f.entry_block();
  if (!entry) return;

  // Forward worklist; components merge to "unknown" on conflict.
  std::deque<const Block*> work{entry};
  in_[entry] = HeightState{0, std::nullopt, true};
  reached_[entry] = true;

  while (!work.empty()) {
    const Block* b = work.front();
    work.pop_front();
    HeightState s = in_.at(b);
    for (const auto& pi : b->insns()) s = apply(pi, s);
    out_[b] = s;
    for (const parse::Edge& e : b->succs()) {
      if (!is_intraproc(e.type)) continue;
      const Block* t = f.block_at(e.target);
      if (!t) continue;
      auto it = in_.find(t);
      if (it == in_.end()) {
        in_[t] = s;
        reached_[t] = true;
        work.push_back(t);
      } else {
        HeightState m = merge(it->second, s);
        if (!(m == it->second)) {
          it->second = m;
          work.push_back(t);
        }
      }
    }
  }

  // Discover the frame allocation and the ra/fp save slots from the first
  // reachable occurrences at known heights. Functions with fast leaf paths
  // (recursion base cases) allocate/save outside the entry block, so every
  // reachable block is scanned. The fp spill only identifies the *caller's*
  // fp while x8 provably still holds its entry value.
  for (const auto& [addr, blk] : f.blocks()) {
    const parse::Block* b = blk.get();
    auto it = in_.find(b);
    if (it == in_.end()) continue;
    HeightState s = it->second;
    for (std::size_t i = 0; i < b->insns().size(); ++i) {
      const parse::ParsedInsn& pi = b->insns()[i];
      const isa::Instruction& insn = pi.insn;
      if (!frame_size_ && s.sp == StackHeight(0) &&
          insn.mnemonic() == isa::Mnemonic::addi &&
          insn.num_operands() == 3 && insn.operand(0).reg == isa::sp &&
          insn.operand(1).reg == isa::sp && insn.operand(2).imm < 0)
        frame_size_ = -insn.operand(2).imm;
      if (insn.mnemonic() == isa::Mnemonic::sd && insn.num_operands() == 2 &&
          insn.operand(1).reg == isa::sp && s.sp.has_value()) {
        if (!save_block_ && insn.operand(0).reg == isa::ra) {
          ra_slot_ = *s.sp + insn.operand(1).imm;  // relative to entry sp
          save_block_ = b;
          save_index_ = i;
        }
        if (!fp_save_block_ && insn.operand(0).reg == isa::fp &&
            s.fp_original) {
          fp_slot_ = *s.sp + insn.operand(1).imm;
          fp_save_block_ = b;
          fp_save_index_ = i;
        }
      }
      if (insn.regs_written().contains(isa::fp)) fp_clobbered_ = true;
      s = apply(pi, s);
    }
  }
  if (save_block_ || fp_save_block_) idom_ = parse::immediate_dominators(f);
}

bool StackHeightAnalysis::ra_saved_at(const parse::Block* block,
                                      std::size_t index) const {
  if (!save_block_) return false;
  if (block == save_block_) return index > save_index_;
  return parse::dominates(idom_, save_block_->start(), block->start());
}

bool StackHeightAnalysis::fp_saved_at(const parse::Block* block,
                                      std::size_t index) const {
  if (!fp_save_block_) return false;
  if (block == fp_save_block_) return index > fp_save_index_;
  return parse::dominates(idom_, fp_save_block_->start(), block->start());
}

HeightState StackHeightAnalysis::state_before(const parse::Block* block,
                                              std::size_t index) const {
  auto it = in_.find(block);
  if (it == in_.end()) return HeightState{};
  HeightState s = it->second;
  const auto& insns = block->insns();
  for (std::size_t i = 0; i < index && i < insns.size(); ++i)
    s = apply(insns[i], s);
  return s;
}

StackHeight StackHeightAnalysis::height_in(const Block* block) const {
  auto it = in_.find(block);
  return it == in_.end() ? std::nullopt : it->second.sp;
}

StackHeight StackHeightAnalysis::height_out(const Block* block) const {
  auto it = out_.find(block);
  return it == out_.end() ? std::nullopt : it->second.sp;
}

StackHeight StackHeightAnalysis::height_before(const Block* block,
                                               std::size_t index) const {
  return state_before(block, index).sp;
}

StackHeight StackHeightAnalysis::fp_height_before(const parse::Block* block,
                                                  std::size_t index) const {
  return state_before(block, index).fp;
}

}  // namespace rvdyn::dataflow
