#include "dataflow/stack_height.hpp"

#include <deque>

#include "parse/loops.hpp"

namespace rvdyn::dataflow {

namespace {

using parse::Block;
using parse::EdgeType;

bool is_intraproc(EdgeType t) {
  switch (t) {
    case EdgeType::Fallthrough:
    case EdgeType::Taken:
    case EdgeType::NotTaken:
    case EdgeType::Jump:
    case EdgeType::IndirectJump:
    case EdgeType::CallFallthrough:
      return true;
    default:
      return false;
  }
}

}  // namespace

StackHeight StackHeightAnalysis::apply(const parse::ParsedInsn& pi,
                                       StackHeight h) {
  if (!h) return h;
  const isa::Instruction& insn = pi.insn;
  if (!insn.regs_written().contains(isa::sp)) return h;
  // The only modelled sp update is addi sp, sp, imm (which covers both the
  // standard prologue/epilogue and c.addi16sp's expansion).
  if (insn.mnemonic() == isa::Mnemonic::addi && insn.num_operands() == 3 &&
      insn.operand(1).reg == isa::sp)
    return *h + insn.operand(2).imm;
  return std::nullopt;  // sp escapes the model
}

StackHeightAnalysis::StackHeightAnalysis(const parse::Function& f)
    : func_(f) {
  const Block* entry = f.entry_block();
  if (!entry) return;

  // Forward worklist; heights merge to "unknown" on conflict.
  std::deque<const Block*> work{entry};
  in_[entry] = 0;
  reached_[entry] = true;

  while (!work.empty()) {
    const Block* b = work.front();
    work.pop_front();
    StackHeight h = in_.at(b);
    for (const auto& pi : b->insns()) h = apply(pi, h);
    out_[b] = h;
    for (const parse::Edge& e : b->succs()) {
      if (!is_intraproc(e.type)) continue;
      const Block* t = f.block_at(e.target);
      if (!t) continue;
      auto it = in_.find(t);
      if (it == in_.end()) {
        in_[t] = h;
        work.push_back(t);
      } else if (it->second != h && it->second.has_value()) {
        // Conflicting or newly-unknown height: demote and re-propagate.
        it->second = std::nullopt;
        work.push_back(t);
      }
    }
  }

  // Discover the frame allocation and the return-address save slot from
  // the first reachable occurrences at known heights. Functions with fast
  // leaf paths (recursion base cases) allocate/save outside the entry
  // block, so every reachable block is scanned.
  for (const auto& [addr, blk] : f.blocks()) {
    const parse::Block* b = blk.get();
    auto it = in_.find(b);
    if (it == in_.end()) continue;
    StackHeight h = it->second;
    for (std::size_t i = 0; i < b->insns().size(); ++i) {
      const parse::ParsedInsn& pi = b->insns()[i];
      const isa::Instruction& insn = pi.insn;
      if (!frame_size_ && h == StackHeight(0) &&
          insn.mnemonic() == isa::Mnemonic::addi &&
          insn.num_operands() == 3 && insn.operand(0).reg == isa::sp &&
          insn.operand(1).reg == isa::sp && insn.operand(2).imm < 0)
        frame_size_ = -insn.operand(2).imm;
      if (!save_block_ && h.has_value() &&
          insn.mnemonic() == isa::Mnemonic::sd && insn.num_operands() == 2 &&
          insn.operand(0).reg == isa::ra && insn.operand(1).reg == isa::sp) {
        ra_slot_ = *h + insn.operand(1).imm;  // relative to entry sp
        save_block_ = b;
        save_index_ = i;
      }
      h = apply(pi, h);
    }
  }
  if (save_block_) idom_ = parse::immediate_dominators(f);
}

bool StackHeightAnalysis::ra_saved_at(const parse::Block* block,
                                      std::size_t index) const {
  if (!save_block_) return false;
  if (block == save_block_) return index > save_index_;
  return parse::dominates(idom_, save_block_->start(), block->start());
}

StackHeight StackHeightAnalysis::height_in(const Block* block) const {
  auto it = in_.find(block);
  return it == in_.end() ? std::nullopt : it->second;
}

StackHeight StackHeightAnalysis::height_out(const Block* block) const {
  auto it = out_.find(block);
  return it == out_.end() ? std::nullopt : it->second;
}

StackHeight StackHeightAnalysis::height_before(const Block* block,
                                               std::size_t index) const {
  StackHeight h = height_in(block);
  const auto& insns = block->insns();
  for (std::size_t i = 0; i < index && i < insns.size(); ++i)
    h = apply(insns[i], h);
  return h;
}


}  // namespace rvdyn::dataflow
