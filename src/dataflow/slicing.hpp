// Forward and backward program slicing over a function's def-use graph
// (DataflowAPI, paper §2.1).
//
// Built on an intra-procedural reaching-definitions analysis: backward
// slices collect the instructions whose values flow into a given use;
// forward slices collect the instructions a given definition can affect.
// Dependencies flow through registers; memory is not disambiguated (the
// classic conservative simplification — noted in DESIGN.md).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "parse/cfg.hpp"

namespace rvdyn::dataflow {

/// A definition site: instruction address (unique within a function).
using InsnAddr = std::uint64_t;

class Slicer {
 public:
  explicit Slicer(const parse::Function& f);

  /// Instructions whose computed values can reach (through register
  /// dataflow) the uses of instruction `at`. Includes `at` itself.
  std::set<InsnAddr> backward_slice(InsnAddr at) const;

  /// Instructions whose inputs can be affected by the value `at` defines.
  /// Includes `at` itself.
  std::set<InsnAddr> forward_slice(InsnAddr at) const;

  /// Reaching definitions of register `r` immediately before instruction
  /// `at` (exposed for tests and custom analyses).
  std::set<InsnAddr> reaching_defs(InsnAddr at, isa::Reg r) const;

  /// Total def-use edge count (diagnostics).
  std::size_t num_edges() const { return n_edges_; }

 private:
  void build();

  const parse::Function& func_;
  // def -> uses and use -> defs adjacency by instruction address.
  std::map<InsnAddr, std::set<InsnAddr>> uses_of_def_;
  std::map<InsnAddr, std::set<InsnAddr>> defs_of_use_;
  // Per (instruction, register) reaching definitions.
  std::map<std::pair<InsnAddr, unsigned>, std::set<InsnAddr>> reach_;
  std::size_t n_edges_ = 0;
};

}  // namespace rvdyn::dataflow
