// Interprocedural register summaries (DataflowAPI).
//
// Per-function (may-use, must-def) register sets, computed bottom-up over
// the call graph. Liveness uses them to model calls precisely instead of
// assuming the full ABI clobber/argument sets: a call to a callee that
// only reads a0 leaves a1-a7 dead at the call site, handing CodeGenAPI's
// dead-register optimization more scratch registers exactly where
// instrumentation is most common (function entries and call sites).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "isa/instruction.hpp"
#include "parse/callgraph.hpp"
#include "parse/cfg.hpp"

namespace rvdyn::dataflow {

struct FuncSummary {
  /// Registers whose incoming value the function may read (upward-exposed
  /// uses, overapproximated) — what a call makes live.
  isa::RegSet may_use;
  /// Registers written on every path from entry to every return
  /// (underapproximated) — what a call kills.
  isa::RegSet must_def;
  /// False when the summary fell back to the ABI sets (unknown callees,
  /// unresolved control flow inside the function).
  bool precise = false;
};

class Summaries {
 public:
  /// Compute summaries for every function of `co`, bottom-up.
  explicit Summaries(const parse::CodeObject& co);

  /// Summary for `entry`, or nullptr for unknown functions.
  const FuncSummary* lookup(std::uint64_t entry) const {
    auto it = summaries_.find(entry);
    return it == summaries_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::uint64_t, FuncSummary> summaries_;
};

}  // namespace rvdyn::dataflow
