// Register liveness analysis (DataflowAPI, paper §2.1).
//
// Backward may-analysis over a function's CFG. Its headline consumer is
// CodeGenAPI's *dead-register optimization* (paper §4.3): instrumentation
// that needs scratch registers first asks for registers that are dead at
// the instrumentation point, avoiding spills entirely when some exist.
#pragma once

#include <map>
#include <vector>

#include <optional>

#include "parse/cfg.hpp"

namespace rvdyn::dataflow {

class Summaries;

class Liveness {
 public:
  /// What a Return edge contributes to live-out. `Abi` models the caller's
  /// perspective (return values + callee-saved registers live). `None`
  /// computes pure upward-exposed uses — what Summaries needs for may-use,
  /// where untouched pass-through registers must not count as reads.
  enum class ReturnBoundary { Abi, None };

  /// Computes liveness for every instruction of `f`. The function's pred
  /// lists must be up to date (CodeObject::parse leaves them rebuilt).
  /// With `summaries`, calls to resolved callees use their interprocedural
  /// (may-use, must-def) sets instead of the full ABI clobber model,
  /// exposing more dead registers at call boundaries.
  explicit Liveness(const parse::Function& f,
                    const Summaries* summaries = nullptr,
                    ReturnBoundary boundary = ReturnBoundary::Abi);

  /// Registers live immediately before instruction `index` of `block`
  /// (i.e. whose current values may still be read on some path).
  isa::RegSet live_before(const parse::Block* block, std::size_t index) const;

  /// Registers live after the last instruction of `block`.
  isa::RegSet live_out(const parse::Block* block) const;
  /// Registers live at the start of `block`.
  isa::RegSet live_in(const parse::Block* block) const;

  /// Registers provably dead before instruction `index` of `block` —
  /// available to instrumentation without a save/restore. x0 and sp are
  /// never reported dead.
  isa::RegSet dead_before(const parse::Block* block, std::size_t index) const;

  /// Point-granularity convenience for PatchAPI: the dead set immediately
  /// before the instruction at `addr` (instrumentation points are
  /// addresses). Empty — i.e. nothing usable without a spill — when `addr`
  /// is not an instruction boundary of this function.
  isa::RegSet dead_at(std::uint64_t addr) const;

  /// ABI register sets used at analysis boundaries (exposed for tests).
  static isa::RegSet abi_live_at_return();
  static isa::RegSet call_uses();
  static isa::RegSet call_defs();

 private:
  isa::RegSet transfer(const parse::ParsedInsn& pi, isa::RegSet live,
                       std::optional<std::uint64_t> callee) const;
  /// Resolved call/tail-call target of `block`'s terminator, if any.
  std::optional<std::uint64_t> resolved_callee(const parse::Block* b) const;

  const parse::Function& func_;
  const Summaries* summaries_ = nullptr;
  std::map<const parse::Block*, isa::RegSet> live_in_;
  std::map<const parse::Block*, isa::RegSet> live_out_;
};

}  // namespace rvdyn::dataflow
