#include "dataflow/slicing.hpp"

#include <array>
#include <deque>

namespace rvdyn::dataflow {

namespace {

using parse::Block;
using parse::EdgeType;

bool is_intraproc(EdgeType t) {
  switch (t) {
    case EdgeType::Fallthrough:
    case EdgeType::Taken:
    case EdgeType::NotTaken:
    case EdgeType::Jump:
    case EdgeType::IndirectJump:
    case EdgeType::CallFallthrough:
      return true;
    default:
      return false;
  }
}

// Per-register reaching-def sets at a program point.
using DefMap = std::array<std::set<InsnAddr>, isa::kNumRegs>;

bool merge_into(DefMap& dst, const DefMap& src) {
  bool changed = false;
  for (unsigned r = 0; r < isa::kNumRegs; ++r)
    for (InsnAddr a : src[r])
      if (dst[r].insert(a).second) changed = true;
  return changed;
}

}  // namespace

Slicer::Slicer(const parse::Function& f) : func_(f) { build(); }

void Slicer::build() {
  // Block-level reaching definitions to fixpoint, then a per-instruction
  // pass recording def-use edges.
  std::map<const Block*, DefMap> in, out;
  std::deque<const Block*> work;
  for (const auto& [a, b] : func_.blocks()) {
    in[b.get()];
    out[b.get()];
    work.push_back(b.get());
  }

  auto apply_block = [](const Block* b, DefMap defs) {
    for (const auto& pi : b->insns()) {
      const isa::RegSet w = pi.insn.regs_written();
      for (unsigned r = 0; r < isa::kNumRegs; ++r) {
        if (!w.contains(isa::Reg::from_index(r))) continue;
        defs[r].clear();
        defs[r].insert(pi.addr);
      }
    }
    return defs;
  };

  while (!work.empty()) {
    const Block* b = work.front();
    work.pop_front();
    out.at(b) = apply_block(b, in.at(b));
    for (const parse::Edge& e : b->succs()) {
      if (!is_intraproc(e.type)) continue;
      const Block* t = func_.block_at(e.target);
      if (!t) continue;
      if (merge_into(in.at(t), out.at(b))) work.push_back(t);
    }
  }

  // Record per-instruction reaching defs and the def-use edges.
  for (const auto& [addr, b] : func_.blocks()) {
    DefMap defs = in.at(b.get());
    for (const auto& pi : b->insns()) {
      const isa::RegSet uses = pi.insn.regs_read();
      for (unsigned r = 0; r < isa::kNumRegs; ++r) {
        const isa::Reg reg = isa::Reg::from_index(r);
        if (!uses.contains(reg)) continue;
        reach_[{pi.addr, r}] = defs[r];
        for (InsnAddr d : defs[r]) {
          uses_of_def_[d].insert(pi.addr);
          defs_of_use_[pi.addr].insert(d);
          ++n_edges_;
        }
      }
      const isa::RegSet w = pi.insn.regs_written();
      for (unsigned r = 0; r < isa::kNumRegs; ++r) {
        if (!w.contains(isa::Reg::from_index(r))) continue;
        defs[r].clear();
        defs[r].insert(pi.addr);
      }
    }
  }
}

std::set<InsnAddr> Slicer::backward_slice(InsnAddr at) const {
  std::set<InsnAddr> slice;
  std::deque<InsnAddr> work{at};
  while (!work.empty()) {
    const InsnAddr cur = work.front();
    work.pop_front();
    if (!slice.insert(cur).second) continue;
    auto it = defs_of_use_.find(cur);
    if (it == defs_of_use_.end()) continue;
    for (InsnAddr d : it->second)
      if (!slice.count(d)) work.push_back(d);
  }
  return slice;
}

std::set<InsnAddr> Slicer::forward_slice(InsnAddr at) const {
  std::set<InsnAddr> slice;
  std::deque<InsnAddr> work{at};
  while (!work.empty()) {
    const InsnAddr cur = work.front();
    work.pop_front();
    if (!slice.insert(cur).second) continue;
    auto it = uses_of_def_.find(cur);
    if (it == uses_of_def_.end()) continue;
    for (InsnAddr u : it->second)
      if (!slice.count(u)) work.push_back(u);
  }
  return slice;
}

std::set<InsnAddr> Slicer::reaching_defs(InsnAddr at, isa::Reg r) const {
  auto it = reach_.find({at, r.index()});
  return it == reach_.end() ? std::set<InsnAddr>{} : it->second;
}

}  // namespace rvdyn::dataflow
