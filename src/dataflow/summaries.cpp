#include "dataflow/summaries.hpp"

#include <deque>

#include "dataflow/liveness.hpp"

namespace rvdyn::dataflow {

namespace {

using isa::RegSet;
using parse::Block;
using parse::EdgeType;

bool is_intraproc(EdgeType t) {
  switch (t) {
    case EdgeType::Fallthrough:
    case EdgeType::Taken:
    case EdgeType::NotTaken:
    case EdgeType::Jump:
    case EdgeType::IndirectJump:
    case EdgeType::CallFallthrough:
      return true;
    default:
      return false;
  }
}

// Forward must-analysis: registers written on every path from the entry to
// each exit. Uses already-computed callee summaries (via `lookup`) for the
// definite writes of resolved calls; missing summaries contribute nothing.
RegSet compute_must_def(const parse::Function& f,
                        const Summaries& summaries) {
  const Block* entry = f.entry_block();
  if (!entry) return RegSet();

  std::map<const Block*, RegSet> in;
  std::deque<const Block*> work{entry};
  in[entry] = RegSet();

  auto block_out = [&](const Block* b, RegSet defs) {
    std::optional<std::uint64_t> callee;
    for (const parse::Edge& e : b->succs())
      if ((e.type == EdgeType::Call || e.type == EdgeType::TailCall) &&
          e.target)
        callee = e.target;
    for (std::size_t i = 0; i < b->insns().size(); ++i) {
      const auto& insn = b->insns()[i].insn;
      defs |= insn.regs_written();
      const bool is_call = (insn.is_jal() || insn.is_jalr()) &&
                           !(insn.link_reg() == isa::zero);
      if (is_call && i + 1 == b->insns().size() && callee)
        if (const FuncSummary* s = summaries.lookup(*callee))
          defs |= s->must_def;
    }
    return defs;
  };

  while (!work.empty()) {
    const Block* b = work.front();
    work.pop_front();
    const RegSet out = block_out(b, in.at(b));
    for (const parse::Edge& e : b->succs()) {
      if (!is_intraproc(e.type)) continue;
      const Block* t = f.block_at(e.target);
      if (!t) continue;
      auto it = in.find(t);
      if (it == in.end()) {
        in[t] = out;
        work.push_back(t);
      } else {
        const RegSet met = it->second & out;  // must: intersection
        if (!(met == it->second)) {
          it->second = met;
          work.push_back(t);
        }
      }
    }
  }

  // Exits: Return blocks intersect their outs; a tail call exits through
  // the callee (its must-defs were already folded in by block_out).
  bool any_exit = false;
  RegSet result = ~RegSet();
  for (const auto& [a, blk] : f.blocks()) {
    const Block* b = blk.get();
    if (!in.count(b)) continue;  // unreachable
    bool exits = false;
    for (const parse::Edge& e : b->succs())
      if (e.type == EdgeType::Return || e.type == EdgeType::TailCall)
        exits = true;
    if (!exits) continue;
    any_exit = true;
    result &= block_out(b, in.at(b));
  }
  // A function with no returns never resumes its caller: every register may
  // be treated as killed on the (non-existent) fallthrough path.
  return any_exit ? result : ~RegSet();
}

}  // namespace

Summaries::Summaries(const parse::CodeObject& co) {
  const parse::CallGraph cg(co);
  for (std::uint64_t entry : cg.bottom_up_order()) {
    const parse::Function* f = co.function_at(entry);
    if (!f || !f->entry_block()) continue;

    FuncSummary summary;
    // May-use: liveness at the function entry, computed with the summaries
    // of already-finished callees (intra-SCC callees fall back to the ABI
    // model inside Liveness — sound, just less precise).
    // ReturnBoundary::None: a register the function never touches is a
    // pass-through, not a use — the caller-side transfer already keeps it
    // live when it is live after the call.
    Liveness live(*f, this, Liveness::ReturnBoundary::None);
    summary.may_use = live.live_before(f->entry_block(), 0);
    summary.must_def = compute_must_def(*f, *this);
    // x0 is never meaningfully defined.
    summary.must_def.remove(isa::zero);

    summary.precise = f->stats().n_unresolved == 0 &&
                      !cg.has_unknown_callees().count(entry);
    if (!summary.precise) {
      // Unknown flow inside: be maximally conservative.
      summary.may_use |= Liveness::call_uses();
      summary.must_def = RegSet();
    }
    summaries_[entry] = summary;
  }
}

}  // namespace rvdyn::dataflow
