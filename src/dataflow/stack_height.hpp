// Stack-height analysis (DataflowAPI, paper §2.1).
//
// Forward dataflow tracking the stack pointer's offset from its value at
// function entry. StackwalkerAPI's SP-based frame stepper (paper §3.2.7)
// uses this to walk frames of functions that, as most RISC-V compilers do,
// omit the frame pointer and address everything off sp.
//
// The analysis additionally tracks frame-pointer provenance: where x8 (s0)
// is set up from sp (`addi s0, sp, imm`), fp-relative sp restores
// (`addi sp, s0, imm` — the frame-pointer epilogue) keep the height known
// instead of demoting it, and the slot where the *caller's* fp is spilled
// (`sd s0, off(sp)` before x8 is first written) is discovered so the
// walker can recover it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "parse/cfg.hpp"

namespace rvdyn::dataflow {

/// Height lattice value: known delta (sp - sp_at_entry, in bytes, usually
/// negative) or unknown (sp modified in a non-constant way / conflicting
/// paths).
using StackHeight = std::optional<std::int64_t>;

/// Per-program-point lattice state: sp and fp offsets from the entry sp,
/// plus whether x8 provably still holds the value it had on entry (so a
/// `sd s0, off(sp)` spills the *caller's* frame pointer).
struct HeightState {
  StackHeight sp;
  StackHeight fp;            ///< x8 - entry_sp, known only after fp setup
  bool fp_original = false;  ///< x8 unmodified since function entry
  bool operator==(const HeightState&) const = default;
};

class StackHeightAnalysis {
 public:
  explicit StackHeightAnalysis(const parse::Function& f);

  /// Height on entry to `block` (0 at the function entry block).
  StackHeight height_in(const parse::Block* block) const;

  /// Height immediately before instruction `index` of `block`.
  StackHeight height_before(const parse::Block* block,
                            std::size_t index) const;

  /// Height after the last instruction of `block`.
  StackHeight height_out(const parse::Block* block) const;

  /// Full lattice state immediately before instruction `index` of `block`.
  /// Unreached blocks report all-unknown / not-original.
  HeightState state_before(const parse::Block* block,
                           std::size_t index) const;

  /// fp's offset from the entry sp immediately before instruction `index`
  /// (known only after an `addi s0, sp, imm` at known height).
  StackHeight fp_height_before(const parse::Block* block,
                               std::size_t index) const;

  /// The fixed frame size when the function follows the standard pattern
  /// (one `addi sp, sp, -N` allocating from height 0): N, else nullopt.
  std::optional<std::int64_t> frame_size() const { return frame_size_; }

  /// The stack slot (relative to the entry sp) where the return address is
  /// saved, discovered from the first reachable `sd ra, off(sp)` at a
  /// known height. nullopt for leaf functions. Note that functions with a
  /// fast leaf path (e.g. a recursion base case) save ra on the slow path
  /// only — use ra_saved_at() to test a specific program point.
  std::optional<std::int64_t> ra_save_slot() const { return ra_slot_; }

  /// True when the `sd ra` save has provably executed by the time control
  /// is before instruction `index` of `block` (same block past the save,
  /// or a block dominated by the save's block).
  bool ra_saved_at(const parse::Block* block, std::size_t index) const;

  /// The stack slot (relative to the entry sp) holding the caller's frame
  /// pointer: the first reachable `sd s0, off(sp)` at a known height while
  /// x8 still holds its entry value. nullopt when the function never spills
  /// fp (or only after clobbering it).
  std::optional<std::int64_t> fp_save_slot() const { return fp_slot_; }

  /// True when the fp spill has provably executed before instruction
  /// `index` of `block` (same dominator rule as ra_saved_at).
  bool fp_saved_at(const parse::Block* block, std::size_t index) const;

  /// True when x8 provably still holds the caller's value immediately
  /// before instruction `index` of `block` (no write to x8 on any path
  /// from entry).
  bool fp_preserved_at(const parse::Block* block, std::size_t index) const {
    return state_before(block, index).fp_original;
  }

  /// True when any reached instruction of the function writes x8 (the
  /// register cannot be trusted to carry the caller's fp on exit paths).
  bool fp_clobbered() const { return fp_clobbered_; }

 private:
  static HeightState apply(const parse::ParsedInsn& pi, HeightState s);
  static HeightState merge(const HeightState& a, const HeightState& b);

  const parse::Function& func_;
  std::map<const parse::Block*, HeightState> in_;
  std::map<const parse::Block*, HeightState> out_;
  std::map<const parse::Block*, bool> reached_;
  std::optional<std::int64_t> ra_slot_;
  std::optional<std::int64_t> fp_slot_;
  std::optional<std::int64_t> frame_size_;
  const parse::Block* save_block_ = nullptr;
  std::size_t save_index_ = 0;
  const parse::Block* fp_save_block_ = nullptr;
  std::size_t fp_save_index_ = 0;
  bool fp_clobbered_ = false;
  std::map<std::uint64_t, std::uint64_t> idom_;
};

}  // namespace rvdyn::dataflow
