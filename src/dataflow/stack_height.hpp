// Stack-height analysis (DataflowAPI, paper §2.1).
//
// Forward dataflow tracking the stack pointer's offset from its value at
// function entry. StackwalkerAPI's SP-based frame stepper (paper §3.2.7)
// uses this to walk frames of functions that, as most RISC-V compilers do,
// omit the frame pointer and address everything off sp.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "parse/cfg.hpp"

namespace rvdyn::dataflow {

/// Height lattice value: known delta (sp - sp_at_entry, in bytes, usually
/// negative) or unknown (sp modified in a non-constant way / conflicting
/// paths).
using StackHeight = std::optional<std::int64_t>;

class StackHeightAnalysis {
 public:
  explicit StackHeightAnalysis(const parse::Function& f);

  /// Height on entry to `block` (0 at the function entry block).
  StackHeight height_in(const parse::Block* block) const;

  /// Height immediately before instruction `index` of `block`.
  StackHeight height_before(const parse::Block* block,
                            std::size_t index) const;

  /// Height after the last instruction of `block`.
  StackHeight height_out(const parse::Block* block) const;

  /// The fixed frame size when the function follows the standard pattern
  /// (one `addi sp, sp, -N` allocating from height 0): N, else nullopt.
  std::optional<std::int64_t> frame_size() const { return frame_size_; }

  /// The stack slot (relative to the entry sp) where the return address is
  /// saved, discovered from the first reachable `sd ra, off(sp)` at a
  /// known height. nullopt for leaf functions. Note that functions with a
  /// fast leaf path (e.g. a recursion base case) save ra on the slow path
  /// only — use ra_saved_at() to test a specific program point.
  std::optional<std::int64_t> ra_save_slot() const { return ra_slot_; }

  /// True when the `sd ra` save has provably executed by the time control
  /// is before instruction `index` of `block` (same block past the save,
  /// or a block dominated by the save's block).
  bool ra_saved_at(const parse::Block* block, std::size_t index) const;

 private:
  static StackHeight apply(const parse::ParsedInsn& pi, StackHeight h);

  const parse::Function& func_;
  std::map<const parse::Block*, StackHeight> in_;
  std::map<const parse::Block*, StackHeight> out_;
  std::map<const parse::Block*, bool> reached_;
  std::optional<std::int64_t> ra_slot_;
  std::optional<std::int64_t> frame_size_;
  const parse::Block* save_block_ = nullptr;
  std::size_t save_index_ = 0;
  std::map<std::uint64_t, std::uint64_t> idom_;
};

}  // namespace rvdyn::dataflow
