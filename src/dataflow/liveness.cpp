#include "dataflow/liveness.hpp"

#include <deque>

#include "dataflow/summaries.hpp"

namespace rvdyn::dataflow {

namespace {

using isa::RegSet;
using parse::Block;
using parse::EdgeType;

RegSet set_of(std::initializer_list<isa::Reg> regs) {
  RegSet s;
  for (isa::Reg r : regs) s.add(r);
  return s;
}

// Callee-saved registers the function must preserve: live at every exit.
RegSet callee_saved() {
  RegSet s;
  s.add(isa::sp);
  s.add(isa::gp);
  s.add(isa::tp);
  s.add(isa::s0);
  s.add(isa::s1);
  for (std::uint8_t n = 18; n <= 27; ++n) s.add(isa::x(n));  // s2-s11
  s.add(isa::f(8));
  s.add(isa::f(9));
  for (std::uint8_t n = 18; n <= 27; ++n) s.add(isa::f(n));  // fs2-fs11
  return s;
}

}  // namespace

RegSet Liveness::abi_live_at_return() {
  RegSet s = callee_saved();
  // Potential return values.
  s.add(isa::a0);
  s.add(isa::a1);
  s.add(isa::f(10));
  s.add(isa::f(11));
  return s;
}

RegSet Liveness::call_uses() {
  RegSet s;
  for (std::uint8_t n = 10; n <= 17; ++n) s.add(isa::x(n));  // a0-a7
  for (std::uint8_t n = 10; n <= 17; ++n) s.add(isa::f(n));  // fa0-fa7
  s.add(isa::sp);
  return s;
}

RegSet Liveness::call_defs() {
  RegSet s;
  for (unsigned i = 0; i < isa::kNumRegs; ++i) {
    const isa::Reg r = isa::Reg::from_index(i);
    if (isa::is_caller_saved(r)) s.add(r);
  }
  return s;
}

RegSet Liveness::transfer(const parse::ParsedInsn& pi, RegSet live,
                          std::optional<std::uint64_t> callee) const {
  const isa::Instruction& insn = pi.insn;
  const bool is_call =
      (insn.is_jal() || insn.is_jalr()) && !(insn.link_reg() == isa::zero);
  if (is_call) {
    // Default (ABI) model: a call defines the caller-saved set and uses
    // the argument registers. With an interprocedural summary, use the
    // callee's actual (may-use, must-def) sets instead.
    RegSet uses = call_uses();
    RegSet kills = call_defs();
    if (summaries_ && callee) {
      if (const FuncSummary* s = summaries_->lookup(*callee)) {
        uses = s->may_use;
        kills = s->must_def;
      }
    }
    kills |= insn.regs_written();  // the link register, from the call itself
    live = (live - kills) | uses;
    live |= insn.regs_read();  // the target register of an indirect call
    return live;
  }
  if (insn.has_flag(isa::F_ECALL)) {
    live.remove(isa::a0);  // syscall return values
    live.remove(isa::a1);
    for (std::uint8_t n = 10; n <= 17; ++n) live.add(isa::x(n));  // args
    return live;
  }
  return (live - insn.regs_written()) | insn.regs_read();
}

std::optional<std::uint64_t> Liveness::resolved_callee(
    const parse::Block* b) const {
  for (const parse::Edge& e : b->succs())
    if ((e.type == EdgeType::Call || e.type == EdgeType::TailCall) && e.target)
      return e.target;
  return std::nullopt;
}

Liveness::Liveness(const parse::Function& f, const Summaries* summaries,
                   ReturnBoundary boundary)
    : func_(f), summaries_(summaries) {
  // Initialize and iterate to fixpoint (backward may-analysis).
  std::deque<const Block*> work;
  for (const auto& [a, b] : f.blocks()) {
    live_in_[b.get()] = RegSet();
    live_out_[b.get()] = RegSet();
    work.push_back(b.get());
  }

  const RegSet at_return =
      boundary == ReturnBoundary::Abi ? abi_live_at_return() : RegSet();
  RegSet all;
  all = ~RegSet();

  while (!work.empty()) {
    const Block* b = work.front();
    work.pop_front();

    // live-out: union over successors; boundary edges use ABI summaries.
    RegSet out;
    for (const parse::Edge& e : b->succs()) {
      switch (e.type) {
        case EdgeType::Return:
          out |= at_return;
          break;
        case EdgeType::TailCall: {
          const FuncSummary* s =
              summaries_ && e.target ? summaries_->lookup(e.target) : nullptr;
          out |= s ? s->may_use : call_uses();
          break;
        }
        case EdgeType::Unresolved:
          out |= all;  // unknown flow: assume everything is read
          break;
        case EdgeType::Call:
          break;  // interprocedural; handled by the call transfer itself
        default: {
          const Block* t = func_.block_at(e.target);
          if (t) out |= live_in_.at(t);
          break;
        }
      }
    }
    // A block with no successors at all (e.g. noreturn exit) keeps nothing
    // live; that is already the empty set.
    live_out_[b] = out;

    RegSet in = out;
    const auto& insns = b->insns();
    const auto callee = resolved_callee(b);
    bool is_term = true;
    for (auto it = insns.rbegin(); it != insns.rend(); ++it) {
      in = transfer(*it, in, is_term ? callee : std::nullopt);
      is_term = false;
    }

    if (!(in == live_in_.at(b))) {
      live_in_[b] = in;
      for (const Block* p : b->preds()) work.push_back(p);
    }
  }
}

RegSet Liveness::live_out(const Block* block) const {
  auto it = live_out_.find(block);
  return it == live_out_.end() ? ~RegSet() : it->second;
}

RegSet Liveness::live_in(const Block* block) const {
  auto it = live_in_.find(block);
  return it == live_in_.end() ? ~RegSet() : it->second;
}

RegSet Liveness::live_before(const Block* block, std::size_t index) const {
  RegSet live = live_out(block);
  const auto& insns = block->insns();
  const auto callee = resolved_callee(block);
  for (std::size_t i = insns.size(); i > index; --i)
    live = transfer(insns[i - 1], live,
                    i == insns.size() ? callee : std::nullopt);
  return live;
}

RegSet Liveness::dead_before(const Block* block, std::size_t index) const {
  RegSet dead = ~live_before(block, index);
  dead.remove(isa::zero);
  dead.remove(isa::sp);
  dead.remove(isa::gp);
  dead.remove(isa::tp);
  return dead;
}

RegSet Liveness::dead_at(std::uint64_t addr) const {
  const Block* b = func_.block_containing(addr);
  if (!b) return RegSet();
  const auto& insns = b->insns();
  for (std::size_t i = 0; i < insns.size(); ++i)
    if (insns[i].addr == addr) return dead_before(b, i);
  return RegSet();
}

}  // namespace rvdyn::dataflow
