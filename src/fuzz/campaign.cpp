// The campaign loop: corpus scheduling, mutation, worker sharding, triage.
#include <algorithm>
#include <cstring>

#include "common/status.hpp"
#include "fuzz/fuzz.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "parse/scheduler.hpp"

namespace rvdyn::fuzz {

// --- corpus -----------------------------------------------------------------

std::size_t Corpus::add(std::vector<std::uint8_t> bytes, unsigned novelty) {
  std::lock_guard lock(mu_);
  entries_.push_back({std::move(bytes), novelty});
  total_energy_ += energy(novelty);
  return entries_.size() - 1;
}

Corpus::Entry Corpus::get(std::size_t idx) const {
  std::lock_guard lock(mu_);
  return entries_.at(idx);
}

std::size_t Corpus::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

unsigned Corpus::energy(unsigned novelty) {
  unsigned e = 1;
  while (novelty > 0) {
    ++e;
    novelty >>= 1;
  }
  return e;
}

std::size_t Corpus::pick(std::uint64_t rng_state) const {
  std::lock_guard lock(mu_);
  if (entries_.empty()) return 0;
  if (total_energy_ == 0) return rng_state % entries_.size();
  // Energy-weighted roulette: entries admitted with more novel edges are
  // proportionally more likely to be rescheduled.
  std::uint64_t ticket = rng_state % total_energy_;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const std::uint64_t e = energy(entries_[i].novelty);
    if (ticket < e) return i;
    ticket -= e;
  }
  return entries_.size() - 1;
}

// --- mutator ----------------------------------------------------------------

std::uint64_t Mutator::next() {
  // xorshift64* — deterministic, seedable, no libc RNG state.
  s_ ^= s_ >> 12;
  s_ ^= s_ << 25;
  s_ ^= s_ >> 27;
  return s_ * 0x2545F4914F6CDD1DULL;
}

void Mutator::mutate(std::vector<std::uint8_t>& data, const Corpus& corpus,
                     std::size_t max_len) {
  if (data.empty()) data.push_back(0);
  // Stack 1..4 havoc steps so single-step minima don't trap the search.
  const unsigned steps = 1 + static_cast<unsigned>(next() % 4);
  for (unsigned s = 0; s < steps; ++s) {
    const std::uint64_t r = next();
    const std::size_t pos = static_cast<std::size_t>(next()) % data.size();
    switch (r % 6) {
      case 0:  // single bit flip
        data[pos] ^= static_cast<std::uint8_t>(1u << (next() % 8));
        break;
      case 1:  // random byte overwrite
        data[pos] = static_cast<std::uint8_t>(next());
        break;
      case 2:  // bounded arithmetic
        data[pos] = static_cast<std::uint8_t>(
            data[pos] + static_cast<int>(next() % 35) - 17);
        break;
      case 3:  // extend with a random byte (inputs grow toward magic length)
        if (data.size() < max_len)
          data.push_back(static_cast<std::uint8_t>(next()));
        break;
      case 4:  // truncate
        if (data.size() > 1) data.resize(1 + next() % (data.size() - 1));
        break;
      case 5: {  // splice: overwrite a run with another corpus entry's bytes
        if (corpus.size() == 0) break;
        const Corpus::Entry donor = corpus.get(next() % corpus.size());
        if (donor.bytes.empty()) break;
        const std::size_t n =
            std::min(donor.bytes.size(), data.size() - pos);
        std::memcpy(data.data() + pos, donor.bytes.data(), n);
        break;
      }
    }
  }
  if (data.size() > max_len) data.resize(max_len);
}

// --- campaign ---------------------------------------------------------------

namespace {

bool is_crash(emu::StopReason r) {
  switch (r) {
    case emu::StopReason::Breakpoint:
    case emu::StopReason::IllegalInsn:
    case emu::StopReason::BadFetch:
    case emu::StopReason::BadSyscall:
      return true;
    default:
      return false;
  }
}

}  // namespace

/// Everything one shard owns: a private guest, its snapshot, a private
/// RNG/mutation stream, a map read-back buffer, and a private metric
/// namespace — workers share only the corpus, the global coverage set and
/// the result under their own locks.
struct Campaign::Worker {
  emu::Machine m;
  emu::Machine::Snapshot snap;
  Mutator mut;
  std::vector<std::uint8_t> map;
  obs::ScopedView view;
  obs::Counter c_execs, c_admits, c_crashes, c_hangs, c_resets_pages;

  Worker(std::uint64_t seed, const std::string& prefix, unsigned widx)
      : mut(seed),
        map(kMapSize),
        view(prefix + ".w" + std::to_string(widx)),
        c_execs(view.qualify("execs")),
        c_admits(view.qualify("corpus_admits")),
        c_crashes(view.qualify("crashes")),
        c_hangs(view.qualify("hangs")),
        c_resets_pages(view.qualify("reset_pages")) {}
};

Campaign::Campaign(const symtab::Symtab& target, CampaignOptions opts)
    : opts_(std::move(opts)), woven_(weave_coverage(target)) {
  const symtab::Symbol* in = woven_.binary.find_symbol("fuzz_input");
  const symtab::Symbol* len = woven_.binary.find_symbol("fuzz_len");
  if (in == nullptr || len == nullptr)
    throw Error("fuzz: target must export fuzz_input and fuzz_len symbols");
  if (woven_.trap_entries != 0)
    throw Error(
        "fuzz: coverage weaving needed trap springboards; every woven block "
        "would stop as Breakpoint and mask real crashes (move the patch "
        "area into jal range)");
  input_addr_ = in->value;
  len_addr_ = len->value;
  if (in->size != 0 && in->size < opts_.max_input_len)
    opts_.max_input_len = in->size;
  if (opts_.workers < 1) opts_.workers = 1;
}

Campaign::~Campaign() = default;

void Campaign::add_seed(std::vector<std::uint8_t> input) {
  if (input.size() > opts_.max_input_len) input.resize(opts_.max_input_len);
  seeds_.push_back(std::move(input));
}

std::ptrdiff_t Campaign::execute_one(Worker& w,
                                     const std::vector<std::uint8_t>& input) {
  const auto rs = w.m.reset_to_snapshot(w.snap);
  w.c_resets_pages.add(rs.pages_restored);
  emu::Memory& mem = w.m.memory();
  // Scratch slots are dirty-exempt (not restored); re-zero them so the
  // first woven block of this run starts a fresh edge chain.
  mem.write(kPrevAddr, 0, 8);
  mem.write(kNewEdgesAddr, 0, 8);
  if (!input.empty()) mem.write_bytes(input_addr_, input.data(), input.size());
  mem.write(len_addr_, input.size(), 8);

  w.m.run(opts_.exec_step_budget);
  const emu::StopReason stop = w.m.last_stop();
  const std::uint64_t exec_no = execs_.fetch_add(1) + 1;
  w.c_execs.add(1);

  if (is_crash(stop)) {
    w.c_crashes.add(1);
    std::lock_guard lock(result_mu_);
    // Keep the first crash's full postmortem; later duplicates only count.
    if (result_.crashes.empty()) {
      CrashReport cr;
      cr.input = input;
      cr.reason = stop;
      cr.pc = w.m.pc();
      cr.found_at_exec = exec_no;
      cr.postmortem = obs::postmortem_report(w.m, woven_.code(), stop);
      result_.crashes.push_back(std::move(cr));
    }
    if (opts_.stop_on_crash) stop_.store(true, std::memory_order_release);
  } else if (stop == emu::StopReason::Running) {
    w.c_hangs.add(1);
    std::lock_guard lock(result_mu_);
    ++result_.hangs;
  }

  // Guest-side novelty gate: only consult the (mutex-guarded) global set
  // when this run lit at least one previously-zero local map slot.
  if (mem.read(kNewEdgesAddr, 8) == 0) return -1;
  read_map(w.m, w.map.data());
  const unsigned fresh = global_.merge(w.map.data());
  if (fresh == 0) return -1;
  w.c_admits.add(1);
  const std::size_t idx = corpus_.add(input, fresh);
  if (opts_.collect_curve) {
    std::lock_guard lock(result_mu_);
    result_.coverage_curve.emplace_back(exec_no, global_.edges_seen());
  }
  return static_cast<std::ptrdiff_t>(idx);
}

void Campaign::process_item(Worker& w, unsigned widx,
                            parse::WorkStealingPool& pool,
                            std::size_t corpus_idx) {
  if (stop_.load(std::memory_order_acquire) ||
      execs_.load(std::memory_order_relaxed) >= opts_.max_execs)
    return;
  const Corpus::Entry entry = corpus_.get(corpus_idx);
  const unsigned rounds = opts_.batch * Corpus::energy(entry.novelty);
  for (unsigned i = 0; i < rounds; ++i) {
    if (stop_.load(std::memory_order_acquire) ||
        execs_.load(std::memory_order_relaxed) >= opts_.max_execs)
      return;
    std::vector<std::uint8_t> data = entry.bytes;
    w.mut.mutate(data, corpus_, opts_.max_input_len);
    const std::ptrdiff_t admitted = execute_one(w, data);
    if (admitted >= 0)
      pool.push(widx, {static_cast<std::uint64_t>(admitted), nullptr});
  }
  // Chain the schedule: hand the pool a fresh energy-weighted pick so the
  // campaign only drains when the exec budget (or a crash) stops it.
  if (!stop_.load(std::memory_order_acquire) &&
      execs_.load(std::memory_order_relaxed) < opts_.max_execs)
    pool.push(widx, {corpus_.pick(w.mut.next()), nullptr});
}

void Campaign::run_worker(unsigned widx, parse::WorkStealingPool& pool) {
  Worker& w = *workers_[widx];
  parse::SchedStats stats;
  pool.drain(
      widx,
      [&](const parse::ParseWork& item) {
        process_item(w, widx, pool, static_cast<std::size_t>(item.entry));
      },
      &stats);
}

CampaignResult Campaign::run() {
  // Namespace-scoped reset: clear this campaign's counters (and nothing
  // else) so back-to-back campaigns in one process never accumulate.
  obs::Registry::instance().reset(opts_.metrics_prefix + ".");
  result_ = CampaignResult{};
  execs_.store(0);
  stop_.store(false);

  workers_.clear();
  for (unsigned i = 0; i < opts_.workers; ++i) {
    auto w = std::make_unique<Worker>(opts_.seed * 0x9E3779B97F4A7C15ULL + i,
                                      opts_.metrics_prefix, i);
    attach_coverage(w->m, woven_);
    w->snap = w->m.take_snapshot();
    workers_.push_back(std::move(w));
  }

  // Calibration: run each seed unmutated on worker 0 so the corpus starts
  // with measured novelty (and the curve starts at the seeds' coverage).
  if (seeds_.empty()) seeds_.push_back({});
  for (const auto& s : seeds_)
    if (execute_one(*workers_[0], s) < 0 && corpus_.size() == 0)
      corpus_.add(s, 0);  // keep at least one schedulable entry

  parse::WorkStealingPool pool(opts_.workers);
  for (unsigned i = 0; i < opts_.workers; ++i)
    pool.push(i, {i % corpus_.size(), nullptr});
  parse::run_on_workers(opts_.workers,
                        [&](unsigned widx) { run_worker(widx, pool); });

  result_.execs = execs_.load();
  result_.corpus_size = corpus_.size();
  result_.edges_covered = global_.edges_seen();
  obs::Registry::instance().set_gauge(
      obs::Registry::instance().register_metric(
          opts_.metrics_prefix + ".edges_covered", obs::MetricKind::Gauge),
      result_.edges_covered);
  obs::Registry::instance().set_gauge(
      obs::Registry::instance().register_metric(
          opts_.metrics_prefix + ".corpus_size", obs::MetricKind::Gauge),
      result_.corpus_size);
  return result_;
}

}  // namespace rvdyn::fuzz
