// rvdyn::fuzz — snapshot fuzzing engine built from the toolkits below it.
//
// Three pieces, each exercising a different layer of the stack:
//
//  * weave_coverage()  — PatchAPI static rewriting inserts an AFL-style
//    edge-hash snippet at every basic-block entry: each block hashes
//    `prev_block ^ cur_block` into a 64 KiB byte map living at a fixed
//    guest address, and bumps a `new_edges` counter the first time a map
//    slot goes nonzero. All bookkeeping is guest memory — no host callouts
//    on the hot path, so woven blocks stay JIT-compilable.
//
//  * Machine::take_snapshot()/reset_to_snapshot() (emu layer) — dirty-page
//    resets make one fuzz iteration "restore registers + copy back the few
//    pages the input touched" instead of a full reload: microseconds, not
//    milliseconds. The coverage map pages are marked dirty-exempt so the
//    map *survives* resets and accumulates across the whole campaign.
//
//  * Campaign — the loop: a corpus scheduled by coverage novelty, a
//    deterministic mutation engine, N workers sharded over the parse
//    layer's work-stealing pool (each with a private Machine, snapshot and
//    `rvdyn.fuzz.w<i>.*` metric namespace), and crash triage through
//    obs::postmortem_report.
//
// Target contract: the mutatee exposes two data symbols, `fuzz_input` (a
// byte buffer) and `fuzz_len` (u64). Each iteration the harness resets the
// guest, writes the test case into those symbols, and runs to a stop.
// Breakpoint/IllegalInsn/BadFetch/BadSyscall stops are crashes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "emu/machine.hpp"
#include "patch/editor.hpp"
#include "symtab/symtab.hpp"

namespace rvdyn::parse {
class WorkStealingPool;
}  // namespace rvdyn::parse

namespace rvdyn::fuzz {

// --- coverage map geometry --------------------------------------------------
// The map is a byte table indexed by `(prev >> 1) ^ cur` where prev/cur are
// 16-bit block ids; shifting prev keeps A->B distinct from B->A. Ids are
// 16-bit, so the xor never exceeds the map and the woven snippet needs no
// masking. The two u64 scratch slots (`prev`, `new_edges`) live in the page
// right after the map; the whole range is dirty-exempt, so coverage
// accumulates across snapshot resets while the harness re-zeroes the
// scratch slots explicitly each iteration.
inline constexpr unsigned kMapBits = 16;
inline constexpr std::uint64_t kMapSize = 1ULL << kMapBits;  // 64 KiB
inline constexpr std::uint64_t kMapBase = 0x6f000000;
inline constexpr std::uint64_t kPrevAddr = kMapBase + kMapSize;
inline constexpr std::uint64_t kNewEdgesAddr = kPrevAddr + 8;
/// Bytes to pass to Memory::set_dirty_exempt to cover map + scratch.
inline constexpr std::uint64_t kExemptSize = kMapSize + 4096;

/// Compile-time block id: 16-bit multiplicative hash of the block address.
inline std::uint16_t block_id(std::uint64_t block_addr) {
  const std::uint32_t h =
      static_cast<std::uint32_t>(block_addr >> 1) * 0x9E3779B1u;
  return static_cast<std::uint16_t>(h >> 16);
}

// --- weaving ----------------------------------------------------------------

/// A coverage-woven binary plus the editor session that produced it (kept
/// alive because its CodeObject powers crash symbolization).
struct WovenTarget {
  symtab::Symtab binary;
  std::unique_ptr<patch::BinaryEditor> editor;
  unsigned blocks_woven = 0;
  unsigned trap_entries = 0;  ///< nonzero means trap springboards were needed

  const parse::CodeObject& code() const { return editor->code(); }
};

/// Statically rewrite `binary` with the edge-coverage snippet at every
/// basic-block entry of every parsed function.
WovenTarget weave_coverage(const symtab::Symtab& binary);

/// Prepare a machine for fuzzing `t`: load the woven binary, map the
/// coverage range dirty-exempt, and zero the scratch slots.
void attach_coverage(emu::Machine& m, const WovenTarget& t);

/// Copy the 64 KiB map out of guest memory into `out`.
void read_map(emu::Machine& m, std::uint8_t* out);

// --- campaign-global coverage ----------------------------------------------

/// The cross-worker novelty filter: a host-side set of every map index any
/// worker has ever lit. Workers consult it only when their guest-side
/// `new_edges` counter says the local map changed, so the mutex is off the
/// per-exec path.
class GlobalCoverage {
 public:
  GlobalCoverage() : seen_(kMapSize, 0) {}

  /// Merge a worker's map: returns how many indices were new globally.
  unsigned merge(const std::uint8_t* map);
  unsigned edges_seen() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::uint8_t> seen_;
  unsigned count_ = 0;
};

// --- corpus + mutation ------------------------------------------------------

/// Thread-safe input store with coverage-novelty energy scheduling: inputs
/// that lit more new edges when admitted get mutated more often.
class Corpus {
 public:
  struct Entry {
    std::vector<std::uint8_t> bytes;
    unsigned novelty = 0;  ///< globally-new edges at admission
  };

  /// Returns the new entry's index.
  std::size_t add(std::vector<std::uint8_t> bytes, unsigned novelty);
  Entry get(std::size_t idx) const;
  std::size_t size() const;
  /// Mutation rounds an entry earns per schedule: 1 + log2(novelty+1).
  static unsigned energy(unsigned novelty);
  /// Energy-weighted random pick (for re-scheduling when the queue runs
  /// dry before the exec budget is spent).
  std::size_t pick(std::uint64_t rng_state) const;

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::uint64_t total_energy_ = 0;
};

/// Deterministic mutation engine (xorshift-seeded): bit flips, byte sets,
/// bounded arithmetic, block duplication, truncation/extension, and splices
/// with a random corpus entry.
class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : s_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  std::uint64_t next();
  void mutate(std::vector<std::uint8_t>& data, const Corpus& corpus,
              std::size_t max_len);

 private:
  std::uint64_t s_;
};

// --- campaign ---------------------------------------------------------------

struct CampaignOptions {
  unsigned workers = 1;
  std::uint64_t max_execs = 200000;    ///< global exec budget
  std::size_t max_input_len = 64;      ///< fuzz_input buffer capacity
  unsigned batch = 32;                 ///< execs per scheduled corpus item
  std::uint64_t seed = 1;              ///< campaign RNG seed
  bool stop_on_crash = true;
  std::uint64_t exec_step_budget = 1u << 20;  ///< per-exec guest step cap
  std::string metrics_prefix = "rvdyn.fuzz";  ///< ScopedView namespace
  bool collect_curve = true;           ///< record the coverage curve
};

struct CrashReport {
  std::vector<std::uint8_t> input;
  emu::StopReason reason = emu::StopReason::Running;
  std::uint64_t pc = 0;
  std::uint64_t found_at_exec = 0;
  std::string postmortem;
};

struct CampaignResult {
  std::uint64_t execs = 0;
  std::uint64_t hangs = 0;         ///< step-budget exhaustions
  std::size_t corpus_size = 0;
  unsigned edges_covered = 0;
  std::vector<CrashReport> crashes;
  /// (execs, edges) samples taken at every corpus admission.
  std::vector<std::pair<std::uint64_t, unsigned>> coverage_curve;

  bool found_crash() const { return !crashes.empty(); }
};

/// One fuzzing campaign over a coverage-woven target. Workers shard over
/// parse::WorkStealingPool: each scheduled item is one corpus index, each
/// execution is snapshot-reset + input write + run. Per-worker metrics land
/// under `<metrics_prefix>.w<i>.*` (reset at campaign start via the scoped
/// registry view, so back-to-back campaigns never accumulate).
class Campaign {
 public:
  /// `target` must follow the fuzz_input/fuzz_len contract; it is woven
  /// here. Throws common::Error when the contract symbols are missing or
  /// weaving required trap springboards (which would make every woven
  /// block a Breakpoint stop and drown real crashes).
  explicit Campaign(const symtab::Symtab& target, CampaignOptions opts = {});
  ~Campaign();

  /// Seed the corpus (before run). Inputs longer than max_input_len are
  /// truncated.
  void add_seed(std::vector<std::uint8_t> input);

  CampaignResult run();

  const WovenTarget& target() const { return woven_; }

 private:
  struct Worker;
  void run_worker(unsigned widx, parse::WorkStealingPool& pool);
  /// Run one test case on `w`'s machine; returns the index of the corpus
  /// entry it was admitted as (novel coverage), or -1.
  std::ptrdiff_t execute_one(Worker& w, const std::vector<std::uint8_t>& input);
  void process_item(Worker& w, unsigned widx, parse::WorkStealingPool& pool,
                    std::size_t corpus_idx);

  CampaignOptions opts_;
  WovenTarget woven_;
  std::uint64_t input_addr_ = 0;
  std::uint64_t len_addr_ = 0;
  Corpus corpus_;
  GlobalCoverage global_;
  std::vector<std::vector<std::uint8_t>> seeds_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex result_mu_;  ///< guards crashes/curve/hangs + postmortem parse
  CampaignResult result_;
  std::atomic<std::uint64_t> execs_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace rvdyn::fuzz
