// Coverage weaving + the campaign-global novelty filter.
#include <cstring>

#include "codegen/snippet.hpp"
#include "fuzz/fuzz.hpp"
#include "patch/point.hpp"

namespace rvdyn::fuzz {

namespace cg = rvdyn::codegen;

namespace {

/// The per-block edge snippet. `cur` is this block's compile-time id.
///
///   slot  = kMapBase + (prev ^ cur)          // prev is stored pre-shifted
///   if (map[slot] == 0) new_edges += 1       // first global hit
///   map[slot] += 1                           // 8-bit hit count (wraps)
///   prev = cur >> 1
///
/// Order matters: the first-hit test must run before the increment, and the
/// slot expression must be evaluated before `prev` is updated — codegen
/// re-evaluates every occurrence of a subtree, so nothing here may depend
/// on a value an earlier statement in the same snippet changed.
cg::SnippetPtr edge_snippet(std::uint16_t cur) {
  const cg::Variable prev{kPrevAddr, 8, "fuzz_prev"};
  const cg::Variable new_edges{kNewEdgesAddr, 8, "fuzz_new_edges"};
  const auto slot = cg::binary(
      cg::BinOp::Add, cg::constant(static_cast<std::int64_t>(kMapBase)),
      cg::binary(cg::BinOp::Xor, cg::var_expr(prev), cg::constant(cur)));
  return cg::sequence({
      cg::if_then(cg::binary(cg::BinOp::Eq, cg::load(slot, 1), cg::constant(0)),
                  cg::increment(new_edges)),
      cg::store(slot, cg::binary(cg::BinOp::Add, cg::load(slot, 1),
                                 cg::constant(1)),
                1),
      cg::assign(prev, cg::constant(cur >> 1)),
  });
}

}  // namespace

WovenTarget weave_coverage(const symtab::Symtab& binary) {
  WovenTarget t;
  t.editor = std::make_unique<patch::BinaryEditor>(binary);
  for (const auto& [entry, func] : t.editor->code().functions()) {
    for (const auto& p :
         patch::find_points(*func, patch::PointType::BlockEntry)) {
      t.editor->insert(p, edge_snippet(block_id(p.block)));
      ++t.blocks_woven;
    }
  }
  t.binary = t.editor->commit();
  t.trap_entries = static_cast<unsigned>(t.editor->trap_table().size());
  return t;
}

void attach_coverage(emu::Machine& m, const WovenTarget& t) {
  m.load(t.binary);
  m.memory().set_dirty_exempt(kMapBase, kExemptSize);
  m.memory().write(kPrevAddr, 0, 8);
  m.memory().write(kNewEdgesAddr, 0, 8);
}

void read_map(emu::Machine& m, std::uint8_t* out) {
  m.memory().read_bytes(kMapBase, out, kMapSize);
}

unsigned GlobalCoverage::merge(const std::uint8_t* map) {
  std::lock_guard lock(mu_);
  unsigned fresh = 0;
  for (std::uint64_t i = 0; i < kMapSize; ++i) {
    if (map[i] != 0 && seen_[i] == 0) {
      seen_[i] = 1;
      ++fresh;
    }
  }
  count_ += fresh;
  return fresh;
}

unsigned GlobalCoverage::edges_seen() const {
  std::lock_guard lock(mu_);
  return count_;
}

}  // namespace rvdyn::fuzz
