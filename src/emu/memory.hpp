// Sparse paged memory for the emulated RISC-V process.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

namespace rvdyn::emu {

/// Byte-addressed sparse memory backed by 4KiB pages allocated on first
/// touch. Unmapped reads return zero only through the checked interfaces;
/// the Machine treats unmapped *instruction fetch* as a fault.
class Memory {
 public:
  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageSize = 1ULL << kPageBits;

  bool is_mapped(std::uint64_t addr) const {
    return pages_.count(addr >> kPageBits) != 0;
  }

  /// Pre-map [addr, addr+size) (zero-filled).
  void map(std::uint64_t addr, std::uint64_t size) {
    for (std::uint64_t p = addr >> kPageBits; p <= (addr + size - 1) >> kPageBits;
         ++p)
      page(p << kPageBits);
  }

  std::uint8_t read8(std::uint64_t addr) {
    return page(addr)[addr & (kPageSize - 1)];
  }
  void write8(std::uint64_t addr, std::uint8_t v) {
    page(addr)[addr & (kPageSize - 1)] = v;
  }

  /// Little-endian load of `size` (1/2/4/8) bytes.
  std::uint64_t read(std::uint64_t addr, unsigned size) {
    if (((addr & (kPageSize - 1)) + size) <= kPageSize) {
      const std::uint8_t* p = &page(addr)[addr & (kPageSize - 1)];
      std::uint64_t v = 0;
      std::memcpy(&v, p, size);
      return v;
    }
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
      v |= static_cast<std::uint64_t>(read8(addr + i)) << (8 * i);
    return v;
  }

  /// Little-endian store of `size` bytes.
  void write(std::uint64_t addr, std::uint64_t v, unsigned size) {
    if (((addr & (kPageSize - 1)) + size) <= kPageSize) {
      std::uint8_t* p = &page(addr)[addr & (kPageSize - 1)];
      std::memcpy(p, &v, size);
      return;
    }
    for (unsigned i = 0; i < size; ++i)
      write8(addr + i, static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void write_bytes(std::uint64_t addr, const std::uint8_t* data,
                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) write8(addr + i, data[i]);
  }
  void read_bytes(std::uint64_t addr, std::uint8_t* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) data[i] = read8(addr + i);
  }

  /// Host pointer to `addr`'s page data (zero-fill allocating on first
  /// touch, like the load/store path). Pages never move once allocated, so
  /// the pointer stays valid for the Memory's lifetime — the JIT's inline
  /// TLB caches it per page.
  std::uint8_t* page_ptr(std::uint64_t addr) { return page(addr); }

  /// Order-independent FNV-1a digest over (page number, page bytes) of
  /// every mapped page. Zero-filled pages contribute, so two memories
  /// compare equal only when their mapped footprints match too.
  std::uint64_t digest() const {
    std::uint64_t acc = 0;
    for (const auto& [num, pg] : pages_) {
      std::uint64_t h = 1469598103934665603ULL;
      const auto mix = [&h](std::uint8_t b) {
        h = (h ^ b) * 1099511628211ULL;
      };
      for (unsigned i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(num >> (8 * i)));
      for (std::uint8_t b : *pg) mix(b);
      acc += h;  // commutative combine: iteration order is unspecified
    }
    return acc;
  }

  /// Copy `n` bytes into `data` without allocating pages. Returns false
  /// (leaving `data` unspecified) when any byte of the range is unmapped.
  /// This is the instruction-fetch interface: a fetch must never map pages
  /// as a side effect the way the zero-fill-on-touch read path does.
  bool try_read_bytes(std::uint64_t addr, std::uint8_t* data,
                      std::size_t n) const {
    std::size_t i = 0;
    while (i < n) {
      const auto it = pages_.find((addr + i) >> kPageBits);
      if (it == pages_.end()) return false;
      const std::uint64_t off = (addr + i) & (kPageSize - 1);
      std::size_t chunk = kPageSize - off;
      if (chunk > n - i) chunk = n - i;
      std::memcpy(data + i, it->second->data() + off, chunk);
      i += chunk;
    }
    return true;
  }

 private:
  using Page = std::array<std::uint8_t, kPageSize>;

  std::uint8_t* page(std::uint64_t addr) {
    auto& p = pages_[addr >> kPageBits];
    if (!p) {
      p = std::make_unique<Page>();
      p->fill(0);
    }
    return p->data();
  }

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace rvdyn::emu
