// Sparse paged memory for the emulated RISC-V process.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace rvdyn::emu {

/// Byte-addressed sparse memory backed by 4KiB pages allocated on first
/// touch. Unmapped reads return zero only through the checked interfaces;
/// the Machine treats unmapped *instruction fetch* as a fault.
///
/// Snapshot/reset (the fuzzing substrate): snapshot() deep-copies every
/// mapped page and arms dirty tracking; from then on the first store into
/// each page records it in a dirty list, and reset() copies back *only*
/// those pages (plus drops pages first touched after the snapshot, so the
/// mapped footprint — and therefore digest() — round-trips exactly).
/// Pages inside a dirty-exempt range (coverage bitmaps, harness scratch)
/// are never captured, restored, or dropped.
class Memory {
 public:
  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageSize = 1ULL << kPageBits;

  bool is_mapped(std::uint64_t addr) const {
    return pages_.count(addr >> kPageBits) != 0;
  }

  /// Pre-map [addr, addr+size) (zero-filled).
  void map(std::uint64_t addr, std::uint64_t size) {
    for (std::uint64_t p = addr >> kPageBits; p <= (addr + size - 1) >> kPageBits;
         ++p)
      rec(p << kPageBits);
  }

  std::uint8_t read8(std::uint64_t addr) {
    return page(addr)[addr & (kPageSize - 1)];
  }
  void write8(std::uint64_t addr, std::uint8_t v) {
    page_w(addr)[addr & (kPageSize - 1)] = v;
  }

  /// Little-endian load of `size` (1/2/4/8) bytes.
  std::uint64_t read(std::uint64_t addr, unsigned size) {
    if (((addr & (kPageSize - 1)) + size) <= kPageSize) {
      const std::uint8_t* p = &page(addr)[addr & (kPageSize - 1)];
      std::uint64_t v = 0;
      std::memcpy(&v, p, size);
      return v;
    }
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
      v |= static_cast<std::uint64_t>(read8(addr + i)) << (8 * i);
    return v;
  }

  /// Little-endian store of `size` bytes. A page-straddling store dirties
  /// both pages (the byte loop funnels through write8 -> page_w).
  void write(std::uint64_t addr, std::uint64_t v, unsigned size) {
    if (((addr & (kPageSize - 1)) + size) <= kPageSize) {
      std::uint8_t* p = &page_w(addr)[addr & (kPageSize - 1)];
      std::memcpy(p, &v, size);
      return;
    }
    for (unsigned i = 0; i < size; ++i)
      write8(addr + i, static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// Bulk store, chunked per page (one dirty mark + one memcpy per page).
  void write_bytes(std::uint64_t addr, const std::uint8_t* data,
                   std::size_t n) {
    std::size_t i = 0;
    while (i < n) {
      const std::uint64_t a = addr + i;
      const std::uint64_t off = a & (kPageSize - 1);
      std::size_t chunk = kPageSize - off;
      if (chunk > n - i) chunk = n - i;
      std::memcpy(page_w(a) + off, data + i, chunk);
      i += chunk;
    }
  }
  void read_bytes(std::uint64_t addr, std::uint8_t* data, std::size_t n) {
    std::size_t i = 0;
    while (i < n) {
      const std::uint64_t a = addr + i;
      const std::uint64_t off = a & (kPageSize - 1);
      std::size_t chunk = kPageSize - off;
      if (chunk > n - i) chunk = n - i;
      std::memcpy(data + i, page(a) + off, chunk);
      i += chunk;
    }
  }

  /// Host pointer to `addr`'s page data (zero-fill allocating on first
  /// touch, like the load/store path). Pages never move once allocated, so
  /// the pointer stays valid until the page is dropped by reset() — the
  /// JIT's inline TLB caches it per page, and the Machine flushes the TLB
  /// whenever reset() drops pages.
  std::uint8_t* page_ptr(std::uint64_t addr) { return page(addr); }

  /// Like page_ptr, but records the page as dirty first: the JIT's store
  /// slow path fills its *write* TLB through this, so every page is on the
  /// dirty list before any inline store can bypass Memory::write.
  std::uint8_t* page_ptr_w(std::uint64_t addr) { return page_w(addr); }

  /// Order-independent FNV-1a digest over (page number, page bytes) of
  /// every mapped page. Zero-filled pages contribute, so two memories
  /// compare equal only when their mapped footprints match too. Pass
  /// `include_exempt = false` to skip dirty-exempt pages (harness-owned
  /// state that legitimately diverges across snapshot resets).
  std::uint64_t digest(bool include_exempt = true) const {
    std::uint64_t acc = 0;
    for (const auto& [num, pg] : pages_) {
      if (!include_exempt && pg->exempt) continue;
      std::uint64_t h = 1469598103934665603ULL;
      const auto mix = [&h](std::uint8_t b) {
        h = (h ^ b) * 1099511628211ULL;
      };
      for (unsigned i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(num >> (8 * i)));
      for (std::uint8_t b : pg->bytes) mix(b);
      acc += h;  // commutative combine: iteration order is unspecified
    }
    return acc;
  }

  /// Copy `n` bytes into `data` without allocating pages. Returns false
  /// (leaving `data` unspecified) when any byte of the range is unmapped.
  /// This is the instruction-fetch interface: a fetch must never map pages
  /// as a side effect the way the zero-fill-on-touch read path does.
  bool try_read_bytes(std::uint64_t addr, std::uint8_t* data,
                      std::size_t n) const {
    std::size_t i = 0;
    while (i < n) {
      const auto it = pages_.find((addr + i) >> kPageBits);
      if (it == pages_.end()) return false;
      const std::uint64_t off = (addr + i) & (kPageSize - 1);
      std::size_t chunk = kPageSize - off;
      if (chunk > n - i) chunk = n - i;
      std::memcpy(data + i, it->second->bytes.data() + off, chunk);
      i += chunk;
    }
    return true;
  }

  // --- snapshot / dirty-page reset -----------------------------------------

  /// Deep-copy every mapped non-exempt page and arm dirty tracking. A
  /// second call replaces the previous snapshot.
  void snapshot() {
    snap_.clear();
    dirty_list_.clear();
    fresh_list_.clear();
    for (auto& [num, pg] : pages_) {
      pg->dirty = false;
      if (pg->exempt) continue;
      auto copy = std::make_unique<PageBytes>(pg->bytes);
      snap_.emplace(num, std::move(copy));
    }
    tracking_ = true;
  }

  bool snapshot_active() const { return tracking_; }

  /// Stop tracking and free the snapshot copies (dirty/fresh lists kept
  /// empty; pages keep their current contents).
  void drop_snapshot() {
    tracking_ = false;
    snap_.clear();
    for (std::uint64_t num : dirty_list_) {
      const auto it = pages_.find(num);
      if (it != pages_.end()) it->second->dirty = false;
    }
    dirty_list_.clear();
    fresh_list_.clear();
  }

  struct ResetStats {
    std::size_t pages_restored = 0;  ///< dirty pages copied back
    std::size_t pages_dropped = 0;   ///< post-snapshot pages unmapped
  };

  /// Restore the snapshot: copy back only the dirty pages, unmap pages
  /// first touched after snapshot() (so the mapped footprint — and
  /// digest() — matches the snapshot exactly), and clear both lists.
  /// Dropping a page invalidates host pointers previously returned for it;
  /// the Machine flushes its TLBs accordingly.
  ResetStats reset() {
    ResetStats st;
    for (std::uint64_t num : dirty_list_) {
      const auto it = pages_.find(num);
      if (it == pages_.end()) continue;
      it->second->dirty = false;
      const auto sit = snap_.find(num);
      if (sit == snap_.end()) continue;  // fresh page, dropped below
      it->second->bytes = *sit->second;
      ++st.pages_restored;
    }
    dirty_list_.clear();
    for (std::uint64_t num : fresh_list_) {
      pages_.erase(num);
      ++st.pages_dropped;
    }
    fresh_list_.clear();
    return st;
  }

  /// Mark [addr, addr+size) as dirty-exempt: pages the snapshot machinery
  /// ignores entirely (allocated here if absent). Used for cumulative
  /// harness state — the fuzzer's coverage bitmap survives every reset.
  void set_dirty_exempt(std::uint64_t addr, std::uint64_t size) {
    if (size == 0) return;
    for (std::uint64_t p = addr >> kPageBits;
         p <= (addr + size - 1) >> kPageBits; ++p) {
      PageRec& r = rec(p << kPageBits);
      r.exempt = true;
      r.dirty = false;
      // Retroactively scrub the page from any tracking state so it is
      // neither restored nor dropped by a later reset().
      snap_.erase(p);
      purge(dirty_list_, p);
      purge(fresh_list_, p);
    }
  }

  /// Page numbers dirtied since the snapshot (insertion order, exact: one
  /// entry per touched page). Valid while the snapshot is armed.
  const std::vector<std::uint64_t>& dirty_pages() const { return dirty_list_; }
  /// Page numbers first mapped after the snapshot (dropped by reset()).
  const std::vector<std::uint64_t>& fresh_pages() const { return fresh_list_; }

  std::size_t mapped_pages() const { return pages_.size(); }

 private:
  using PageBytes = std::array<std::uint8_t, kPageSize>;
  struct PageRec {
    PageBytes bytes;
    bool dirty = false;
    bool exempt = false;
  };

  static void purge(std::vector<std::uint64_t>& v, std::uint64_t num) {
    for (std::size_t i = 0; i < v.size(); ++i)
      if (v[i] == num) {
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
  }

  PageRec& rec(std::uint64_t addr) {
    auto& p = pages_[addr >> kPageBits];
    if (!p) {
      p = std::make_unique<PageRec>();
      p->bytes.fill(0);
      if (tracking_) fresh_list_.push_back(addr >> kPageBits);
    }
    return *p;
  }

  std::uint8_t* page(std::uint64_t addr) { return rec(addr).bytes.data(); }

  std::uint8_t* page_w(std::uint64_t addr) {
    PageRec& r = rec(addr);
    if (tracking_ && !r.dirty && !r.exempt) {
      r.dirty = true;
      dirty_list_.push_back(addr >> kPageBits);
    }
    return r.bytes.data();
  }

  std::unordered_map<std::uint64_t, std::unique_ptr<PageRec>> pages_;
  std::unordered_map<std::uint64_t, std::unique_ptr<PageBytes>> snap_;
  std::vector<std::uint64_t> dirty_list_;
  std::vector<std::uint64_t> fresh_list_;
  bool tracking_ = false;
};

}  // namespace rvdyn::emu
