// RV64GC emulator: the hardware substrate (paper substitution for the
// SiFive P550 board the authors measured on).
//
// Interprets RV64GC user-level code loaded from an ELF model, with a small
// Linux-syscall surface and deterministic instruction/cycle accounting.
// `clock_gettime` reads the virtual cycle clock, so measured overheads are
// a pure function of the instructions the instrumentation adds — exactly
// the quantity the paper's Table (§4.3) reports.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "emu/jit/jit.hpp"
#include "emu/jit/jit_state.hpp"
#include "emu/memory.hpp"
#include "isa/decoder.hpp"
#include "obs/metrics.hpp"  // header-only; resolves RVDYN_OBS_ENABLED for
                            // the inline trace_block/sample-hook gates
#include "symtab/symtab.hpp"

namespace rvdyn::emu {

/// Why execution stopped.
enum class StopReason {
  Running,      ///< step budget exhausted, process still runnable
  Exited,       ///< exit/exit_group syscall
  Breakpoint,   ///< executed an ebreak
  IllegalInsn,  ///< bytes did not decode (or out-of-profile instruction)
  BadFetch,     ///< pc in unmapped memory
  BadSyscall,   ///< unknown syscall number
  Watchpoint,   ///< a data watchpoint fired (pc = the accessing insn)
};

/// Cost model: per-instruction cycle charges, loosely following an in-order
/// core like the P550. Deterministic by construction.
struct CycleModel {
  unsigned base = 1;
  unsigned load = 2;
  unsigned store = 1;
  unsigned mul = 3;
  unsigned div = 20;
  unsigned fp = 4;
  unsigned fdiv = 20;
  unsigned branch_taken = 2;  ///< extra pipeline redirect cost included
  /// Cost of one trap-springboard round trip (debugger stop + redirect +
  /// resume) — approximates a ptrace stop on real hardware.
  unsigned trap_roundtrip = 2000;
  std::uint64_t hz = 1'400'000'000;  ///< virtual clock frequency (1.4 GHz)
};

/// Cycle charge for one retired instruction under `model` — the single
/// source of truth shared by the interpreter's per-insn accounting and the
/// JIT's compile-time whole-block cost precomputation.
unsigned insn_cycle_charge(const CycleModel& model,
                           const isa::Instruction& insn, bool taken_branch);

class Machine {
 public:
  explicit Machine(isa::ExtensionSet profile = isa::ExtensionSet::rv64gc())
      : decoder_(profile) {}

  /// Flushes any unpublished cache/decode metrics into obs::Registry.
  ~Machine();

  /// Map every allocatable section of `binary` and point pc at its entry.
  /// Also initializes sp to the top of a fresh stack region.
  void load(const symtab::Symtab& binary);

  /// Execute until a stop condition or until `max_steps` instructions.
  StopReason run(std::uint64_t max_steps = ~0ULL);

  /// Execute exactly one instruction (true hardware single-step — the
  /// facility RISC-V ptrace lacks; ProcControlAPI layers breakpoint-based
  /// stepping on top, per paper §3.2.6).
  StopReason step();

  // --- register and memory access (the debugger surface) ---
  std::uint64_t pc() const { return st_.pc; }
  void set_pc(std::uint64_t pc) { st_.pc = pc; }
  std::uint64_t get_x(unsigned i) const { return i == 0 ? 0 : st_.x[i]; }
  void set_x(unsigned i, std::uint64_t v) {
    if (i != 0) st_.x[i] = v;
  }
  std::uint64_t get_f(unsigned i) const { return st_.f[i]; }
  void set_f(unsigned i, std::uint64_t v) { st_.f[i] = v; }
  std::uint64_t get_reg(isa::Reg r) const {
    return r.cls == isa::RegClass::Int ? get_x(r.num) : get_f(r.num);
  }
  void set_reg(isa::Reg r, std::uint64_t v) {
    if (r.cls == isa::RegClass::Int) set_x(r.num, v);
    else set_f(r.num, v);
  }

  Memory& memory() { return mem_; }
  const Memory& memory() const { return mem_; }

  /// Write bytes into the process image and invalidate the decoded-
  /// instruction cache for the touched range (debugger code patching).
  void write_code(std::uint64_t addr, const std::uint8_t* data, std::size_t n);

  // --- accounting ---
  std::uint64_t instret() const { return st_.instret; }
  std::uint64_t cycles() const { return st_.cycles; }

  /// Decoded-code cache traffic (observability builds only; all zero when
  /// RVDYN_OBS_ENABLED=0). Evictions are attributed to their cause so
  /// debugger patching churn (write_code), guest self-modification
  /// (fence.i) and capacity pressure can be told apart.
  struct CacheStats {
    std::uint64_t icache_hits = 0;
    std::uint64_t icache_misses = 0;
    std::uint64_t bcache_hits = 0;    ///< block lookups served from cache
    std::uint64_t bcache_misses = 0;  ///< lookups that had to build
    std::uint64_t blocks_built = 0;
    std::uint64_t blocks_entered = 0;  ///< cached blocks executed by run()
    std::uint64_t evict_write_code = 0;  ///< block entries lost to write_code
    std::uint64_t evict_fencei = 0;      ///< block entries lost to fence.i
    std::uint64_t evict_capacity = 0;    ///< block entries lost to the bound
    std::uint64_t fencei_flushes = 0;    ///< fence.i-driven full flushes
  };
  const CacheStats& cache_stats() const { return cstats_; }

  /// The emulator-side "hardware" counter file (paper §4's perf-counter
  /// surface): architectural counters plus the cache traffic a real PMU
  /// would expose. Reads are always valid; the cache fields mirror
  /// cache_stats() and are zero in RVDYN_OBS=OFF builds.
  struct HwCounterFile {
    std::uint64_t instret = 0;
    std::uint64_t cycles = 0;
    std::uint64_t icache_hits = 0;
    std::uint64_t icache_misses = 0;
    std::uint64_t bcache_hits = 0;
    std::uint64_t bcache_misses = 0;
    std::uint64_t blocks_entered = 0;
    std::uint64_t blocks_built = 0;
  };
  HwCounterFile hw_counters() const {
    return {st_.instret,           st_.cycles,
            cstats_.icache_hits, cstats_.icache_misses,
            cstats_.bcache_hits, cstats_.bcache_misses,
            cstats_.blocks_entered, cstats_.blocks_built};
  }

  // --- per-PC profiling (emulator-side block frequency ground truth) ---
  /// When enabled, every retired instruction bumps a per-PC hit counter and
  /// accrues its cycle charge there. The hit count at a basic block's start
  /// address is exactly the number of times the block was entered — the
  /// value an instrumentation-based profiler must reproduce.
  void enable_pc_profile(bool on) { pc_profile_enabled_ = on; }
  bool pc_profile_enabled() const { return pc_profile_enabled_; }
  struct PcCount {
    std::uint64_t hits = 0;
    std::uint64_t cycles = 0;
  };
  const std::unordered_map<std::uint64_t, PcCount>& pc_profile() const {
    return pc_profile_;
  }
  void clear_pc_profile() { pc_profile_.clear(); }

  /// Push the cache/decode tallies accumulated since the last publish into
  /// obs::Registry (`rvdyn.emu.*`, `rvdyn.isa.*`) and set the instret /
  /// cycles gauges. No-op in RVDYN_OBS=OFF builds; also runs at destruction.
  void publish_metrics();
  /// Virtual nanoseconds elapsed (cycles / hz).
  std::uint64_t virtual_ns() const {
    return static_cast<std::uint64_t>(
        static_cast<double>(st_.cycles) * 1e9 / static_cast<double>(model_.hz));
  }
  CycleModel& cycle_model() { return model_; }
  /// Charge extra virtual cycles (used by ProcControl for trap redirects).
  void add_cycles(std::uint64_t n) { st_.cycles += n; }

  // --- process state ---
  int exit_code() const { return exit_code_; }
  StopReason last_stop() const { return stop_; }
  /// Address of the faulting/stopping instruction for Breakpoint /
  /// IllegalInsn / BadFetch stops (pc is left at that instruction).
  std::uint64_t stop_pc() const { return st_.pc; }

  /// Captured stdout from write(1/2, ...) syscalls.
  const std::string& output() const { return out_; }

  /// Optional per-instruction hook (tracing tools, tests). Called with the
  /// pc and decoded instruction before it executes.
  using TraceHook = std::function<void(std::uint64_t, const isa::Instruction&)>;
  void set_trace(TraceHook hook) { trace_ = std::move(hook); }

  // --- deterministic sampling hook (obs::Sampler's driver) ---
  /// Called by run() with the machine stopped at an exact instruction
  /// boundary every `interval` retired instructions (instret == k·interval
  /// counted from installation). run() caps its execution slices — JIT
  /// session budgets, whole-block interpretation — at the distance to the
  /// next boundary and single-steps the remainder, so the hook observes the
  /// same (instret, pc, registers, memory) no matter which tier executed
  /// the preceding instructions: profiles sampled at JIT on and off are
  /// byte-identical. The JIT stays engaged; this is what makes sampling
  /// affordable where the per-insn TraceHook is not. Never fires in
  /// RVDYN_OBS=OFF builds (the run-loop checks compile away).
  using SampleHook = std::function<void(Machine&)>;
  void set_sample_hook(std::uint64_t interval, SampleHook hook) {
    sample_interval_ = interval == 0 ? 1 : interval;
    next_sample_ = st_.instret + sample_interval_;
    sample_hook_ = std::move(hook);
  }
  void clear_sample_hook() {
    sample_hook_ = nullptr;
    next_sample_ = ~0ULL;
  }
  std::uint64_t sample_interval() const { return sample_interval_; }

  // --- recent-block ring (postmortem evidence) ---
  /// When enabled, run() records every dispatch target it executes from —
  /// interpreted block entries, JIT session entries, single-step pcs — with
  /// the instret at entry. A trap handler reads back the last-K control-flow
  /// positions that led into the fault. Compiled out (always empty) in
  /// RVDYN_OBS=OFF builds.
  struct BlockTraceEntry {
    std::uint64_t pc = 0;
    std::uint64_t instret = 0;
  };
  void enable_block_trace(bool on) { block_trace_on_ = on; }
  bool block_trace_enabled() const { return block_trace_on_; }
  /// Ring contents, oldest first.
  std::vector<BlockTraceEntry> recent_blocks() const;
  void clear_block_trace() {
    block_trace_count_ = 0;
    block_trace_next_ = 0;
  }

  // --- snapshot / microsecond reset (the fuzzing substrate) ---
  /// Everything take_snapshot() captures outside guest memory: the full
  /// register file plus the Machine's process-model state. Guest memory is
  /// captured inside Memory (dirty-page snapshot), so reset cost scales
  /// with pages *touched*, not pages mapped.
  struct Snapshot {
    std::uint64_t x[32] = {};
    std::uint64_t f[32] = {};
    std::uint64_t pc = 0;
    std::uint64_t instret = 0;
    std::uint64_t cycles = 0;
    std::uint64_t brk = 0;
    std::uint64_t mmap_top = 0;
    std::uint64_t reservation = 0;
    std::unordered_map<std::int64_t, std::uint64_t> csr_scratch;
    int exit_code = 0;
    StopReason stop = StopReason::Running;
    std::size_t out_size = 0;  ///< captured-stdout length at snapshot time
  };

  struct RestoreStats {
    std::size_t pages_restored = 0;  ///< dirty pages copied back
    std::size_t pages_dropped = 0;   ///< post-snapshot pages unmapped
    bool code_invalidated = false;   ///< a restored page held cached code
  };

  /// Capture registers + process state and arm Memory's dirty tracking.
  /// Also flushes the JIT write TLB so the first post-snapshot store into
  /// each page re-marks it dirty.
  Snapshot take_snapshot();

  /// Rewind to `s`: restore registers/process state, copy back only the
  /// dirty pages, unmap post-snapshot pages, and flush the write TLB.
  /// When a restored or dropped page overlaps code that has been fetched,
  /// the decoded caches and compiled JIT blocks covering exactly those
  /// pages are evicted (the precise write_code discipline extended to
  /// snapshot restore) — compiled code for untouched pages survives, which
  /// is what keeps reset microsecond-scale.
  RestoreStats reset_to_snapshot(const Snapshot& s);

  // --- data watchpoints (hardware-debug-register analogue) ---
  /// Stop with StopReason::Watchpoint when [addr, addr+size) is accessed.
  /// The triggering instruction completes first; pc is left *after* it and
  /// watch_hit() describes the access. Returns a watchpoint id.
  unsigned set_watchpoint(std::uint64_t addr, std::uint64_t size,
                          bool on_read, bool on_write);
  void clear_watchpoint(unsigned id);

  struct WatchHit {
    unsigned id = 0;
    std::uint64_t addr = 0;   ///< accessed address
    std::uint64_t pc = 0;     ///< instruction that accessed it
    bool was_write = false;
  };
  const WatchHit& watch_hit() const { return watch_hit_; }

#if RVDYN_JIT_ENABLED
  // --- JIT tier (compiled-code execution engine behind run()) ---
  /// Tier configuration. Changes apply to future compiles; the tier itself
  /// is created lazily on the first hotness-threshold crossing. To force a
  /// clean slate after edits, toggle set_jit_enabled(false/true).
  jit::Config& jit_config() { return jit_cfg_; }
  void set_jit_enabled(bool on);
  bool jit_enabled() const { return jit_enabled_; }
  /// The live tier, or nullptr before any block turned hot.
  const jit::Tier* jit_tier() const { return jit_.get(); }
  /// Tier statistics (zeroes before the tier exists).
  jit::Stats jit_stats() const { return jit_ ? jit_->stats() : jit::Stats{}; }
#endif

  // Stack layout constants.
  static constexpr std::uint64_t kStackTop = 0x7f000000;
  static constexpr std::uint64_t kStackSize = 0x100000;  // 1 MiB

 private:
  friend struct jit::Runtime;

  StopReason exec_one();
  /// Execute one already-fetched instruction: trace hook, watchpoints,
  /// control flow and trap dispatch, accounting, pc update. Shared by
  /// exec_one and the cached-block loop in run().
  StopReason exec_insn(const isa::Instruction& insn, unsigned len);
  /// Pure architectural value effect (registers/memory/reservation) of one
  /// non-control-flow, non-trapping instruction — no pc/accounting/hooks.
  /// The switch the JIT's generic helper reuses so template coverage never
  /// duplicates semantics. Returns false for unknown mnemonics.
  bool exec_value(const isa::Instruction& insn, std::uint64_t pc);
  bool fetch(std::uint64_t pc, isa::Instruction* out, unsigned* len);
  StopReason syscall();
  void charge(const isa::Instruction& insn, bool taken_branch);

  isa::Decoder decoder_;
  Memory mem_;
  /// The architectural state, laid out for direct access from JIT-compiled
  /// code (x/f/pc/instret/cycles live here; the accessors above read it).
  jit::JitState st_;
  std::uint64_t brk_ = 0x50000000;
  std::uint64_t mmap_top_ = 0x60000000;
  std::uint64_t reservation_ = ~0ULL;  ///< lr/sc reservation address
  std::unordered_map<std::int64_t, std::uint64_t> csr_scratch_;
  CycleModel model_;
  int exit_code_ = 0;
  StopReason stop_ = StopReason::Running;
  std::string out_;
  TraceHook trace_;

  // --- decoded-code caches -------------------------------------------------
  // Two levels replace the old per-PC unordered_map:
  //  * a direct-mapped, tag-checked predecoded cache (one hash-free probe
  //    per fetch; len == 0 caches "these bytes do not decode"), and
  //  * a basic-block cache of straight-line decoded runs, so run() executes
  //    whole blocks without per-instruction fetch/dispatch.
  // Invalidation: write_code evicts precisely; fence.i flushes everything
  // (deferred via flush_pending_ so a fence.i *inside* a cached block does
  // not destroy the vector being iterated).
  struct ICacheLine {
    std::uint64_t tag = ~0ULL;  ///< pc of the cached decode, ~0 = empty
    unsigned len = 0;           ///< 0 = pc does not decode (cached failure)
    isa::Instruction insn;
  };
  static constexpr std::size_t kICacheLines = 4096;  // 2-byte-granular index
  std::vector<ICacheLine> icache_ = std::vector<ICacheLine>(kICacheLines);

  struct BlockEntry {
    std::uint64_t start = 0;
    std::uint64_t end = 0;  ///< one past the last decoded byte
    std::vector<isa::Instruction> insns;
    std::uint32_t exec_count = 0;  ///< run() entries (JIT hotness counter)
    std::uint32_t jit_epoch = 0;   ///< tier epoch this block was offered in
  };
  static constexpr std::size_t kMaxBlockInsns = 256;
  static constexpr std::size_t kMaxBlocks = 16384;  // crude size bound
  std::unordered_map<std::uint64_t, BlockEntry> bcache_;
  /// Deferred full-flush reasons (bitmask); flushed at the next safe point
  /// so a fence.i or write_code *inside* a cached block does not destroy
  /// the vector being iterated. The reason decides which eviction counter
  /// the dropped entries are charged to.
  enum : std::uint8_t { kFlushFenceI = 1, kFlushWriteCode = 2 };
  std::uint8_t flush_pending_ = 0;
  bool in_block_ = false;  ///< run() is iterating a cached block

  /// Cached block starting at `pc`, building it on miss; nullptr when the
  /// first instruction does not fetch (caller falls back to exec_one for
  /// the fault path).
  BlockEntry* lookup_or_build_block(std::uint64_t pc);
  void flush_code_caches();
  /// Precise eviction of decoded/compiled code overlapping [lo, hi) —
  /// write_code's invalidation body, shared with snapshot restore.
  void evict_code_range(std::uint64_t lo, std::uint64_t hi);

  /// Page numbers of every pc successfully decoded so far (maintained on
  /// the icache miss path): snapshot restore only pays the per-page
  /// eviction sweep for touched pages that can actually hold cached code.
  /// Data pages commonly sit between the original text and the relocated
  /// patch area, so a mere bounding box would false-positive on every
  /// input-write restore. Conservative across evictions (pages stay until
  /// re-decode), which only costs a redundant sweep, never a stale block.
  std::unordered_set<std::uint64_t> code_pages_;

#if RVDYN_JIT_ENABLED
  jit::Config jit_cfg_;
  std::unique_ptr<jit::Tier> jit_;  ///< created lazily on first hot block
  bool jit_enabled_ = true;
#endif

  struct Watchpoint {
    unsigned id;
    std::uint64_t addr, size;
    bool on_read, on_write;
  };
  CacheStats cstats_;
  CacheStats published_;  ///< snapshot at the last publish_metrics()
  bool pc_profile_enabled_ = false;
  std::unordered_map<std::uint64_t, PcCount> pc_profile_;

  // --- sampling + postmortem block trace (run()-loop hooks) ---
  SampleHook sample_hook_;
  std::uint64_t sample_interval_ = 0;
  std::uint64_t next_sample_ = ~0ULL;  ///< instret of the next sample point

  static constexpr std::size_t kBlockTraceCap = 64;
  bool block_trace_on_ = false;
  std::uint64_t block_trace_count_ = 0;  ///< total recorded (≥ ring size)
  std::size_t block_trace_next_ = 0;
  BlockTraceEntry block_trace_[kBlockTraceCap];
  void trace_block(std::uint64_t pc) {
#if RVDYN_OBS_ENABLED
    if (!block_trace_on_) return;
    block_trace_[block_trace_next_] = {pc, st_.instret};
    block_trace_next_ = (block_trace_next_ + 1) % kBlockTraceCap;
    ++block_trace_count_;
#else
    (void)pc;
#endif
  }

  std::vector<Watchpoint> watchpoints_;
  unsigned next_watch_id_ = 1;
  WatchHit watch_hit_;
  /// Check the instruction's memory operand against the watch list; fills
  /// watch_hit_ and returns true when one fires.
  bool check_watchpoints(std::uint64_t pc, const isa::Instruction& insn);
};

}  // namespace rvdyn::emu
