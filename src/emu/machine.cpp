#include "emu/machine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/bits.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "semantics/eval.hpp"

namespace rvdyn::emu {

namespace {

using isa::Instruction;
using isa::Mnemonic;

double as_double(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t from_double(double d) { return std::bit_cast<std::uint64_t>(d); }

// Single-precision values live NaN-boxed in the 64-bit FP registers.
float as_float(std::uint64_t bits) {
  // An improperly-boxed value reads as canonical NaN per the spec.
  if ((bits >> 32) != 0xffffffffu)
    return std::numeric_limits<float>::quiet_NaN();
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
}
std::uint64_t box_float(float f) {
  return 0xffffffff00000000ULL | std::bit_cast<std::uint32_t>(f);
}

// fclass bit positions.
enum : std::uint64_t {
  kNegInf = 1 << 0,
  kNegNormal = 1 << 1,
  kNegSubnormal = 1 << 2,
  kNegZero = 1 << 3,
  kPosZero = 1 << 4,
  kPosSubnormal = 1 << 5,
  kPosNormal = 1 << 6,
  kPosInf = 1 << 7,
  kSignalingNan = 1 << 8,
  kQuietNan = 1 << 9,
};

template <typename T>
std::uint64_t fclass_of(T v) {
  const bool neg = std::signbit(v);
  switch (std::fpclassify(v)) {
    case FP_INFINITE: return neg ? kNegInf : kPosInf;
    case FP_NORMAL: return neg ? kNegNormal : kPosNormal;
    case FP_SUBNORMAL: return neg ? kNegSubnormal : kPosSubnormal;
    case FP_ZERO: return neg ? kNegZero : kPosZero;
    default: return kQuietNan;  // signaling-NaN detection not modelled
  }
}

// Saturating float->int conversions per the RISC-V F/D spec.
template <typename I, typename F>
std::uint64_t fcvt_to_int(F v) {
  if (std::isnan(v)) return static_cast<std::uint64_t>(std::numeric_limits<I>::max());
  if (v <= static_cast<F>(std::numeric_limits<I>::min()))
    return static_cast<std::uint64_t>(std::numeric_limits<I>::min());
  if (v >= static_cast<F>(std::numeric_limits<I>::max()))
    return static_cast<std::uint64_t>(std::numeric_limits<I>::max());
  return static_cast<std::uint64_t>(static_cast<I>(v));
}

}  // namespace

Machine::~Machine() { publish_metrics(); }

void Machine::publish_metrics() {
#if RVDYN_OBS_ENABLED
  const CacheStats& c = cstats_;
  const CacheStats& p = published_;
  RVDYN_OBS_COUNT_N("rvdyn.emu.icache.hit", c.icache_hits - p.icache_hits);
  RVDYN_OBS_COUNT_N("rvdyn.emu.icache.miss", c.icache_misses - p.icache_misses);
  RVDYN_OBS_COUNT_N("rvdyn.emu.bcache.hit", c.bcache_hits - p.bcache_hits);
  RVDYN_OBS_COUNT_N("rvdyn.emu.bcache.miss", c.bcache_misses - p.bcache_misses);
  RVDYN_OBS_COUNT_N("rvdyn.emu.bcache.built", c.blocks_built - p.blocks_built);
  RVDYN_OBS_COUNT_N("rvdyn.emu.bcache.entered",
                    c.blocks_entered - p.blocks_entered);
  RVDYN_OBS_COUNT_N("rvdyn.emu.bcache.evict.write_code",
                    c.evict_write_code - p.evict_write_code);
  RVDYN_OBS_COUNT_N("rvdyn.emu.bcache.evict.fencei",
                    c.evict_fencei - p.evict_fencei);
  RVDYN_OBS_COUNT_N("rvdyn.emu.bcache.evict.capacity",
                    c.evict_capacity - p.evict_capacity);
  RVDYN_OBS_COUNT_N("rvdyn.emu.fencei_flushes",
                    c.fencei_flushes - p.fencei_flushes);
  RVDYN_OBS_GAUGE("rvdyn.emu.instret", st_.instret);
  RVDYN_OBS_GAUGE("rvdyn.emu.cycles", st_.cycles);
  published_ = cstats_;
  decoder_.publish_stats();
#if RVDYN_JIT_ENABLED
  if (jit_) jit_->publish_metrics();
#endif
#endif
}

#if RVDYN_JIT_ENABLED
void Machine::set_jit_enabled(bool on) {
  if (!on && jit_) {
    jit_->publish_metrics();
    // Drop code rather than the tier itself: the epoch bump marks every
    // bcache jit_epoch stamp stale, so blocks recompile on re-enable.
    jit_->invalidate_all(jit::InvalidateCause::Config);
  }
  jit_enabled_ = on;
}
#endif

void Machine::load(const symtab::Symtab& binary) {
  RVDYN_OBS_SPAN("rvdyn.emu.load");
  for (const auto& sec : binary.sections()) {
    if (!sec.is_alloc()) continue;
    if (sec.type == symtab::SHT_NOBITS) {
      if (sec.nobits_size) mem_.map(sec.addr, sec.nobits_size);
      continue;
    }
    if (sec.data.empty()) continue;
    mem_.write_bytes(sec.addr, sec.data.data(), sec.data.size());
  }
  st_.pc = binary.entry;
  mem_.map(kStackTop - kStackSize, kStackSize);
  set_x(2, kStackTop - 64);  // sp, with a little headroom for argv scaffolding
  stop_ = StopReason::Running;
  flush_code_caches();
}

void Machine::flush_code_caches() {
#if RVDYN_JIT_ENABLED
  // Compiled blocks are invalidated by the same events that flush the
  // interpreter caches; the cause carries over for eviction attribution.
  if (jit_) {
    jit::InvalidateCause cause = jit::InvalidateCause::Config;
    if (flush_pending_ & kFlushFenceI) cause = jit::InvalidateCause::FenceI;
    else if (flush_pending_ & kFlushWriteCode)
      cause = jit::InvalidateCause::WriteCode;
    jit_->invalidate_all(cause);
  }
#endif
  for (ICacheLine& line : icache_) line.tag = ~0ULL;
  // Attribute the dropped block entries to whichever event forced the
  // flush; a fence.i wins because the full flush is architecturally its.
  RVDYN_OBS_STAT({
    const std::uint64_t dropped = bcache_.size();
    if (flush_pending_ & kFlushFenceI) {
      cstats_.evict_fencei += dropped;
      ++cstats_.fencei_flushes;
    } else if (flush_pending_ & kFlushWriteCode) {
      cstats_.evict_write_code += dropped;
    }
  });
  bcache_.clear();
  flush_pending_ = 0;
}

void Machine::write_code(std::uint64_t addr, const std::uint8_t* data,
                         std::size_t n) {
  mem_.write_bytes(addr, data, n);
  evict_code_range(addr, addr + n);
}

void Machine::evict_code_range(std::uint64_t lo, std::uint64_t hi) {
  // Invalidate decoded entries that may overlap the range (entries start
  // at most 3 bytes before lo).
  for (std::uint64_t a = lo >= 3 ? lo - 3 : 0; a < hi; ++a) {
    ICacheLine& line = icache_[(a >> 1) & (kICacheLines - 1)];
    if (line.tag == a) line.tag = ~0ULL;
  }
#if RVDYN_JIT_ENABLED
  // Precisely drop (and unchain) compiled blocks overlapping the range;
  // safe even mid-run because compiled code is never executing while the
  // debugger surface runs.
  if (jit_) jit_->invalidate_range(lo, hi, jit::InvalidateCause::WriteCode);
#endif
  if (in_block_) {
    // Patching from inside block execution (e.g. a trace hook): erasing
    // bcache_ here would destroy the vector being iterated, so defer to
    // a full flush at the next safe point instead.
    flush_pending_ |= kFlushWriteCode;
    return;
  }
  for (auto it = bcache_.begin(); it != bcache_.end();) {
    if (it->second.start < hi && it->second.end > lo) {
      RVDYN_OBS_STAT(++cstats_.evict_write_code);
      it = bcache_.erase(it);
    } else {
      ++it;
    }
  }
}

Machine::Snapshot Machine::take_snapshot() {
  Snapshot s;
  std::memcpy(s.x, st_.x, sizeof(s.x));
  std::memcpy(s.f, st_.f, sizeof(s.f));
  s.pc = st_.pc;
  s.instret = st_.instret;
  s.cycles = st_.cycles;
  s.brk = brk_;
  s.mmap_top = mmap_top_;
  s.reservation = reservation_;
  s.csr_scratch = csr_scratch_;
  s.exit_code = exit_code_;
  s.stop = stop_;
  s.out_size = out_.size();
  mem_.snapshot();
  // The snapshot cleared every page's dirty mark; drop the write TLB so
  // the first store per page goes back through the marking slow path.
  st_.flush_write_tlb();
  return s;
}

Machine::RestoreStats Machine::reset_to_snapshot(const Snapshot& s) {
  RestoreStats r;
  // Check for cached-code overlap before Memory rewrites page contents: a
  // restored (or dropped) page holding decoded/compiled code must be
  // evicted exactly like a write_code into it would — otherwise stale host
  // code keeps executing the pre-restore bytes.
  if (!code_pages_.empty()) {
    const auto check = [&](const std::vector<std::uint64_t>& pages) {
      for (const std::uint64_t num : pages) {
        if (code_pages_.count(num) == 0) continue;
        const std::uint64_t lo = num << Memory::kPageBits;
        evict_code_range(lo, lo + Memory::kPageSize);
        r.code_invalidated = true;
      }
    };
    check(mem_.dirty_pages());
    check(mem_.fresh_pages());
  }
  const Memory::ResetStats ms = mem_.reset();
  r.pages_restored = ms.pages_restored;
  r.pages_dropped = ms.pages_dropped;

  std::memcpy(st_.x, s.x, sizeof(s.x));
  std::memcpy(st_.f, s.f, sizeof(s.f));
  st_.pc = s.pc;
  st_.instret = s.instret;
  st_.cycles = s.cycles;
  brk_ = s.brk;
  mmap_top_ = s.mmap_top;
  reservation_ = s.reservation;
  if (!csr_scratch_.empty() || !s.csr_scratch.empty())
    csr_scratch_ = s.csr_scratch;
  exit_code_ = s.exit_code;
  stop_ = s.stop;
  out_.resize(s.out_size);

  // Dirty marks are gone again: next stores must re-mark through the slow
  // path. Dropped pages additionally invalidate cached read-TLB pointers.
  st_.flush_write_tlb();
  if (ms.pages_dropped != 0) st_.flush_read_tlb();
  return r;
}

bool Machine::fetch(std::uint64_t pc, Instruction* out, unsigned* len) {
  ICacheLine& line = icache_[(pc >> 1) & (kICacheLines - 1)];
  if (line.tag == pc) {
    RVDYN_OBS_STAT(++cstats_.icache_hits);
    *out = line.insn;
    *len = line.len;
    return line.len != 0;
  }
  RVDYN_OBS_STAT(++cstats_.icache_misses);
  // Fetch without mapping pages as a side effect: a compressed instruction
  // in the last two mapped bytes of a page must decode, and the bytes past
  // it must stay unmapped.
  std::uint8_t buf[4];
  std::size_t avail = 4;
  if (!mem_.try_read_bytes(pc, buf, 4)) {
    if (!mem_.try_read_bytes(pc, buf, 2)) return false;  // pc unmapped
    avail = 2;
  }
  const unsigned n = decoder_.decode(buf, avail, out);
  // Don't cache a failure seen through a truncated page-tail read: mapping
  // the next page later can legitimately turn it into a valid instruction.
  if (n != 0 || avail == 4) {
    line.tag = pc;
    line.len = n;
    line.insn = *out;
  }
  if (n != 0) {
    // Record the page(s) this instruction occupies so snapshot restore
    // knows which restored pages may hold decoded/compiled code. Miss-path
    // only: one hash insert per icache fill, nothing on the hot hit path.
    code_pages_.insert(pc >> Memory::kPageBits);
    code_pages_.insert((pc + n - 1) >> Memory::kPageBits);
  }
  *len = n;
  return n != 0;
}

unsigned insn_cycle_charge(const CycleModel& model, const Instruction& insn,
                           bool taken_branch) {
  unsigned c = model.base;
  if (insn.reads_memory()) c = model.load;
  else if (insn.writes_memory()) c = model.store;
  if (insn.has_flag(isa::F_MULDIV)) {
    const Mnemonic m = insn.mnemonic();
    const bool is_div = m == Mnemonic::div || m == Mnemonic::divu ||
                        m == Mnemonic::rem || m == Mnemonic::remu ||
                        m == Mnemonic::divw || m == Mnemonic::divuw ||
                        m == Mnemonic::remw || m == Mnemonic::remuw;
    c = is_div ? model.div : model.mul;
  } else if (insn.has_flag(isa::F_FLOAT)) {
    const Mnemonic m = insn.mnemonic();
    const bool is_fdiv = m == Mnemonic::fdiv_s || m == Mnemonic::fdiv_d ||
                         m == Mnemonic::fsqrt_s || m == Mnemonic::fsqrt_d;
    if (!insn.reads_memory() && !insn.writes_memory())
      c = is_fdiv ? model.fdiv : model.fp;
  }
  if (taken_branch) c += model.branch_taken - 1;
  return c;
}

void Machine::charge(const Instruction& insn, bool taken_branch) {
  st_.cycles += insn_cycle_charge(model_, insn, taken_branch);
}

Machine::BlockEntry* Machine::lookup_or_build_block(std::uint64_t pc) {
  const auto it = bcache_.find(pc);
  if (it != bcache_.end()) {
    RVDYN_OBS_STAT(++cstats_.bcache_hits);
    return &it->second;
  }
  RVDYN_OBS_STAT(++cstats_.bcache_misses);
  BlockEntry blk;
  blk.start = pc;
  std::uint64_t a = pc;
  Instruction insn;
  unsigned len = 0;
  while (blk.insns.size() < kMaxBlockInsns) {
    if (!fetch(a, &insn, &len)) break;
    blk.insns.push_back(insn);
    a += len;
    // Straight-line runs only: stop at anything that redirects or may stop
    // execution (branches/jumps, ecall, ebreak, fence/fence.i).
    if (insn.is_control_flow() ||
        (insn.flags() & (isa::F_ECALL | isa::F_EBREAK | isa::F_FENCE)))
      break;
  }
  if (blk.insns.empty()) return nullptr;
  blk.end = a;
  if (bcache_.size() >= kMaxBlocks) {
    RVDYN_OBS_STAT(cstats_.evict_capacity += bcache_.size());
    bcache_.clear();
  }
  RVDYN_OBS_STAT(++cstats_.blocks_built);
  const auto ins = bcache_.emplace(pc, std::move(blk)).first;
  return &ins->second;
}

StopReason Machine::run(std::uint64_t max_steps) {
  RVDYN_OBS_SPAN("rvdyn.emu.run");
  stop_ = StopReason::Running;
  std::uint64_t remaining = max_steps;
#if RVDYN_JIT_ENABLED
  // Compiled code bypasses the per-insn hook/watchpoint checks, so the JIT
  // stands down entirely whenever either is active.
  const bool jit_ok =
      jit_enabled_ && trace_ == nullptr && watchpoints_.empty();
#endif
  while (remaining > 0) {
    if (flush_pending_) flush_code_caches();
    std::uint64_t slice = remaining;
#if RVDYN_OBS_ENABLED
    // Exact-budget sampling: fire the hook with instret exactly on its
    // target, then cap this iteration's slice at the distance to the next
    // target. Blocks (compiled or cached) that would overrun the cap fall
    // through to exec_one and single-step up to the boundary, so the
    // sample point is an architectural invariant across execution tiers.
    if (sample_hook_) {
      while (st_.instret >= next_sample_) {
        sample_hook_(*this);
        next_sample_ += sample_interval_;
      }
      slice = std::min(slice, next_sample_ - st_.instret);
    }
#endif
#if RVDYN_JIT_ENABLED
    if (jit_ok && jit_ && jit_->has_code()) {
      const std::uint64_t session_pc = st_.pc;
      const std::uint64_t done = jit_->execute(*this, slice);
      if (done != 0) {
        trace_block(session_pc);
        remaining -= done;
        continue;
      }
    }
#endif
    BlockEntry* blk = lookup_or_build_block(st_.pc);
    if (blk != nullptr && blk->insns.size() <= slice) {
#if RVDYN_JIT_ENABLED
      if (jit_ok) {
        if (blk->exec_count < jit_cfg_.hot_threshold) {
          ++blk->exec_count;
        } else if (!jit_ || blk->jit_epoch != jit_->epoch()) {
          if (!jit_) jit_ = jit::Tier::create(jit_cfg_);
          // Stamp the epoch first: a failed compile is remembered and the
          // block is not re-offered until the next invalidation.
          blk->jit_epoch = jit_->epoch();
          if (jit_->compile(*this, blk->start, blk->insns)) continue;
        }
      }
#endif
      // Execute the whole straight-line run without per-instruction
      // fetch/dispatch. Only the last instruction can redirect pc, so each
      // iteration resumes exactly where the next cached insn was decoded.
      RVDYN_OBS_STAT(++cstats_.blocks_entered);
      trace_block(blk->start);
      in_block_ = true;
      for (const Instruction& insn : blk->insns) {
        const StopReason r = exec_insn(insn, insn.length());
        --remaining;
        if (r != StopReason::Running) {
          in_block_ = false;
          stop_ = r;
          return r;
        }
      }
      in_block_ = false;
      continue;
    }
    trace_block(st_.pc);
    const StopReason r = exec_one();
    --remaining;
    if (r != StopReason::Running) {
      stop_ = r;
      return r;
    }
  }
  return StopReason::Running;
}

StopReason Machine::step() {
  stop_ = exec_one();
  return stop_;
}

std::vector<Machine::BlockTraceEntry> Machine::recent_blocks() const {
  std::vector<BlockTraceEntry> out;
  const std::uint64_t n = std::min<std::uint64_t>(block_trace_count_,
                                                  kBlockTraceCap);
  out.reserve(n);
  // Oldest retained entry sits at block_trace_next_ once the ring wrapped.
  std::size_t i = block_trace_count_ > kBlockTraceCap ? block_trace_next_ : 0;
  for (std::uint64_t k = 0; k < n; ++k) {
    out.push_back(block_trace_[i]);
    i = (i + 1) % kBlockTraceCap;
  }
  return out;
}

unsigned Machine::set_watchpoint(std::uint64_t addr, std::uint64_t size,
                                 bool on_read, bool on_write) {
  const unsigned id = next_watch_id_++;
  watchpoints_.push_back({id, addr, size, on_read, on_write});
  return id;
}

void Machine::clear_watchpoint(unsigned id) {
  for (auto it = watchpoints_.begin(); it != watchpoints_.end(); ++it) {
    if (it->id == id) {
      watchpoints_.erase(it);
      return;
    }
  }
}

bool Machine::check_watchpoints(std::uint64_t pc, const Instruction& insn) {
  if (watchpoints_.empty()) return false;
  for (unsigned i = 0; i < insn.num_operands(); ++i) {
    const isa::Operand& op = insn.operand(i);
    if (!op.is_mem()) continue;
    const std::uint64_t lo =
        get_x(op.reg.num) + static_cast<std::uint64_t>(op.imm);
    const std::uint64_t hi = lo + (op.size ? op.size : 1);
    for (const Watchpoint& w : watchpoints_) {
      if (hi <= w.addr || lo >= w.addr + w.size) continue;
      const bool write = op.writes();
      if ((write && w.on_write) || (!write && w.on_read)) {
        watch_hit_ = {w.id, lo, pc, write};
        return true;
      }
    }
  }
  return false;
}

StopReason Machine::exec_one() {
  if (flush_pending_) flush_code_caches();
  Instruction insn;
  unsigned len = 0;
  if (!fetch(st_.pc, &insn, &len))
    return mem_.is_mapped(st_.pc) ? StopReason::IllegalInsn : StopReason::BadFetch;
  return exec_insn(insn, len);
}

StopReason Machine::exec_insn(const Instruction& insn, unsigned len) {
  if (trace_) trace_(st_.pc, insn);
  // Per-PC "hardware" counters: hit now, cycle attribution after charge.
  PcCount* prof = nullptr;
  std::uint64_t prof_c0 = 0;
  if (pc_profile_enabled_) {
    prof = &pc_profile_[st_.pc];
    ++prof->hits;
    prof_c0 = st_.cycles;
  }
  const bool watch_fires = check_watchpoints(st_.pc, insn);

  const std::uint64_t next_pc = st_.pc + len;
  bool taken = false;
  std::uint64_t new_pc = next_pc;

  auto xr = [&](unsigned opi) { return get_x(insn.operand(opi).reg.num); };
  auto wx = [&](std::uint64_t v) { set_x(insn.operand(0).reg.num, v); };
  auto imm = [&](unsigned opi) {
    return static_cast<std::uint64_t>(insn.operand(opi).imm);
  };

  switch (insn.mnemonic()) {
    case Mnemonic::jal:
      wx(next_pc);
      new_pc = st_.pc + imm(1);
      taken = true;
      break;
    case Mnemonic::jalr: {
      const std::uint64_t target = (xr(1) + imm(2)) & ~1ULL;
      wx(next_pc);
      new_pc = target;
      taken = true;
      break;
    }
    case Mnemonic::beq: taken = xr(0) == xr(1); break;
    case Mnemonic::bne: taken = xr(0) != xr(1); break;
    case Mnemonic::blt:
      taken = static_cast<std::int64_t>(xr(0)) < static_cast<std::int64_t>(xr(1));
      break;
    case Mnemonic::bge:
      taken = static_cast<std::int64_t>(xr(0)) >= static_cast<std::int64_t>(xr(1));
      break;
    case Mnemonic::bltu: taken = xr(0) < xr(1); break;
    case Mnemonic::bgeu: taken = xr(0) >= xr(1); break;

    case Mnemonic::fence:
    case Mnemonic::fence_i:
      // Deferred: a fence.i inside a cached block must not destroy the
      // block vector mid-iteration. The flush happens before the next fetch.
      if (insn.mnemonic() == Mnemonic::fence_i) flush_pending_ |= kFlushFenceI;
      break;
    case Mnemonic::ecall: {
      const StopReason r = syscall();
      if (r != StopReason::Running) {
        // The ecall itself executed and retired; account for it before
        // reporting the stop so instret/cycles include it.
        charge(insn, false);
        ++st_.instret;
        if (prof) prof->cycles += st_.cycles - prof_c0;
        return r;
      }
      break;
    }
    case Mnemonic::ebreak:
      // pc stays at the ebreak; the debugger decides what happens next.
      return StopReason::Breakpoint;

    // ---- Zicsr (cycle/time/instret and a tolerant default) ----
    case Mnemonic::csrrw:
    case Mnemonic::csrrs:
    case Mnemonic::csrrc:
    case Mnemonic::csrrwi:
    case Mnemonic::csrrsi:
    case Mnemonic::csrrci: {
      const std::int64_t csr = insn.operand(1).imm;
      std::uint64_t old = 0;
      switch (csr) {
        case 0xC00: old = st_.cycles; break;
        case 0xC01: old = virtual_ns(); break;
        case 0xC02: old = st_.instret; break;
        default: old = csr_scratch_[csr]; break;
      }
      std::uint64_t wrval = 0;
      const Mnemonic m = insn.mnemonic();
      if (m == Mnemonic::csrrw || m == Mnemonic::csrrs || m == Mnemonic::csrrc)
        wrval = xr(2);
      else
        wrval = imm(2);
      std::uint64_t newval = old;
      if (m == Mnemonic::csrrw || m == Mnemonic::csrrwi) newval = wrval;
      if (m == Mnemonic::csrrs || m == Mnemonic::csrrsi) newval = old | wrval;
      if (m == Mnemonic::csrrc || m == Mnemonic::csrrci) newval = old & ~wrval;
      if (csr < 0xC00) csr_scratch_[csr] = newval;  // counters are read-only
      wx(old);
      break;
    }

    default:
      // Every value-semantics instruction funnels through exec_value —
      // the same switch JIT-compiled code reuses for its generic helper.
      if (!exec_value(insn, st_.pc)) return StopReason::IllegalInsn;
      break;
  }

  if (insn.is_cond_branch() && taken)
    new_pc = st_.pc + static_cast<std::uint64_t>(insn.branch_offset());

  charge(insn, taken);
  ++st_.instret;
  if (prof) prof->cycles += st_.cycles - prof_c0;
  st_.pc = new_pc;
  // A data watchpoint reports after the access completes (pc already
  // advanced), matching how hardware debug traps behave.
  if (watch_fires) return StopReason::Watchpoint;
  return StopReason::Running;
}

bool Machine::exec_value(const Instruction& insn, std::uint64_t pc) {
  (void)pc;  // auipc only
  auto xr = [&](unsigned opi) { return get_x(insn.operand(opi).reg.num); };
  auto fr = [&](unsigned opi) { return st_.f[insn.operand(opi).reg.num]; };
  auto wx = [&](std::uint64_t v) { set_x(insn.operand(0).reg.num, v); };
  auto wf = [&](std::uint64_t v) { st_.f[insn.operand(0).reg.num] = v; };
  auto imm = [&](unsigned opi) {
    return static_cast<std::uint64_t>(insn.operand(opi).imm);
  };
  auto mem_addr = [&](unsigned opi) {
    const isa::Operand& m = insn.operand(opi);
    return get_x(m.reg.num) + static_cast<std::uint64_t>(m.imm);
  };

  using semantics::rv_div_s;
  using semantics::rv_div_u;
  using semantics::rv_rem_s;
  using semantics::rv_rem_u;

  switch (insn.mnemonic()) {
    // ---- RV64I ----
    case Mnemonic::lui: wx(imm(1)); break;
    case Mnemonic::auipc: wx(pc + imm(1)); break;
    case Mnemonic::lb: wx(static_cast<std::uint64_t>(sext(mem_.read(mem_addr(1), 1), 8))); break;
    case Mnemonic::lh: wx(static_cast<std::uint64_t>(sext(mem_.read(mem_addr(1), 2), 16))); break;
    case Mnemonic::lw: wx(static_cast<std::uint64_t>(sext(mem_.read(mem_addr(1), 4), 32))); break;
    case Mnemonic::ld: wx(mem_.read(mem_addr(1), 8)); break;
    case Mnemonic::lbu: wx(mem_.read(mem_addr(1), 1)); break;
    case Mnemonic::lhu: wx(mem_.read(mem_addr(1), 2)); break;
    case Mnemonic::lwu: wx(mem_.read(mem_addr(1), 4)); break;
    case Mnemonic::sb: mem_.write(mem_addr(1), xr(0), 1); break;
    case Mnemonic::sh: mem_.write(mem_addr(1), xr(0), 2); break;
    case Mnemonic::sw: mem_.write(mem_addr(1), xr(0), 4); break;
    case Mnemonic::sd: mem_.write(mem_addr(1), xr(0), 8); break;

    case Mnemonic::addi: wx(xr(1) + imm(2)); break;
    case Mnemonic::slti:
      wx(static_cast<std::int64_t>(xr(1)) < insn.operand(2).imm ? 1 : 0);
      break;
    case Mnemonic::sltiu: wx(xr(1) < imm(2) ? 1 : 0); break;
    case Mnemonic::xori: wx(xr(1) ^ imm(2)); break;
    case Mnemonic::ori: wx(xr(1) | imm(2)); break;
    case Mnemonic::andi: wx(xr(1) & imm(2)); break;
    case Mnemonic::slli: wx(xr(1) << (imm(2) & 63)); break;
    case Mnemonic::srli: wx(xr(1) >> (imm(2) & 63)); break;
    case Mnemonic::srai:
      wx(static_cast<std::uint64_t>(static_cast<std::int64_t>(xr(1)) >>
                                    (imm(2) & 63)));
      break;
    case Mnemonic::add: wx(xr(1) + xr(2)); break;
    case Mnemonic::sub: wx(xr(1) - xr(2)); break;
    case Mnemonic::sll: wx(xr(1) << (xr(2) & 63)); break;
    case Mnemonic::slt:
      wx(static_cast<std::int64_t>(xr(1)) < static_cast<std::int64_t>(xr(2)) ? 1 : 0);
      break;
    case Mnemonic::sltu: wx(xr(1) < xr(2) ? 1 : 0); break;
    case Mnemonic::xor_: wx(xr(1) ^ xr(2)); break;
    case Mnemonic::srl: wx(xr(1) >> (xr(2) & 63)); break;
    case Mnemonic::sra:
      wx(static_cast<std::uint64_t>(static_cast<std::int64_t>(xr(1)) >>
                                    (xr(2) & 63)));
      break;
    case Mnemonic::or_: wx(xr(1) | xr(2)); break;
    case Mnemonic::and_: wx(xr(1) & xr(2)); break;

    // Zicond (RVA23 profile, paper §3.4).
    case Mnemonic::czero_eqz: wx(xr(2) == 0 ? 0 : xr(1)); break;
    case Mnemonic::czero_nez: wx(xr(2) != 0 ? 0 : xr(1)); break;

    // Zba (RVA23): address generation.
    case Mnemonic::add_uw: wx(xr(2) + zext(xr(1), 32)); break;
    case Mnemonic::sh1add: wx(xr(2) + (xr(1) << 1)); break;
    case Mnemonic::sh2add: wx(xr(2) + (xr(1) << 2)); break;
    case Mnemonic::sh3add: wx(xr(2) + (xr(1) << 3)); break;
    case Mnemonic::sh1add_uw: wx(xr(2) + (zext(xr(1), 32) << 1)); break;
    case Mnemonic::sh2add_uw: wx(xr(2) + (zext(xr(1), 32) << 2)); break;
    case Mnemonic::sh3add_uw: wx(xr(2) + (zext(xr(1), 32) << 3)); break;
    case Mnemonic::slli_uw: wx(zext(xr(1), 32) << (imm(2) & 63)); break;

    // Zbb (RVA23): basic bit manipulation.
    case Mnemonic::andn: wx(xr(1) & ~xr(2)); break;
    case Mnemonic::orn: wx(xr(1) | ~xr(2)); break;
    case Mnemonic::xnor: wx(~(xr(1) ^ xr(2))); break;
    case Mnemonic::clz:
      wx(xr(1) == 0 ? 64
                    : static_cast<std::uint64_t>(__builtin_clzll(xr(1))));
      break;
    case Mnemonic::ctz:
      wx(xr(1) == 0 ? 64
                    : static_cast<std::uint64_t>(__builtin_ctzll(xr(1))));
      break;
    case Mnemonic::cpop:
      wx(static_cast<std::uint64_t>(__builtin_popcountll(xr(1))));
      break;
    case Mnemonic::clzw: {
      const std::uint32_t v = static_cast<std::uint32_t>(xr(1));
      wx(v == 0 ? 32 : static_cast<std::uint64_t>(__builtin_clz(v)));
      break;
    }
    case Mnemonic::ctzw: {
      const std::uint32_t v = static_cast<std::uint32_t>(xr(1));
      wx(v == 0 ? 32 : static_cast<std::uint64_t>(__builtin_ctz(v)));
      break;
    }
    case Mnemonic::cpopw:
      wx(static_cast<std::uint64_t>(
          __builtin_popcount(static_cast<std::uint32_t>(xr(1)))));
      break;
    case Mnemonic::max:
      wx(static_cast<std::int64_t>(xr(1)) > static_cast<std::int64_t>(xr(2))
             ? xr(1)
             : xr(2));
      break;
    case Mnemonic::maxu: wx(std::max(xr(1), xr(2))); break;
    case Mnemonic::min:
      wx(static_cast<std::int64_t>(xr(1)) < static_cast<std::int64_t>(xr(2))
             ? xr(1)
             : xr(2));
      break;
    case Mnemonic::minu: wx(std::min(xr(1), xr(2))); break;
    case Mnemonic::sext_b: wx(static_cast<std::uint64_t>(sext(xr(1), 8))); break;
    case Mnemonic::sext_h: wx(static_cast<std::uint64_t>(sext(xr(1), 16))); break;
    case Mnemonic::zext_h: wx(zext(xr(1), 16)); break;
    case Mnemonic::rol: {
      const unsigned n = xr(2) & 63;
      wx(n == 0 ? xr(1) : (xr(1) << n) | (xr(1) >> (64 - n)));
      break;
    }
    case Mnemonic::ror: {
      const unsigned n = xr(2) & 63;
      wx(n == 0 ? xr(1) : (xr(1) >> n) | (xr(1) << (64 - n)));
      break;
    }
    case Mnemonic::rori: {
      const unsigned n = imm(2) & 63;
      wx(n == 0 ? xr(1) : (xr(1) >> n) | (xr(1) << (64 - n)));
      break;
    }
    case Mnemonic::rolw: {
      const std::uint32_t v = static_cast<std::uint32_t>(xr(1));
      const unsigned n = xr(2) & 31;
      const std::uint32_t r = n == 0 ? v : (v << n) | (v >> (32 - n));
      wx(static_cast<std::uint64_t>(sext(r, 32)));
      break;
    }
    case Mnemonic::rorw:
    case Mnemonic::roriw: {
      const std::uint32_t v = static_cast<std::uint32_t>(xr(1));
      const unsigned n =
          (insn.mnemonic() == Mnemonic::rorw ? xr(2) : imm(2)) & 31;
      const std::uint32_t r = n == 0 ? v : (v >> n) | (v << (32 - n));
      wx(static_cast<std::uint64_t>(sext(r, 32)));
      break;
    }
    case Mnemonic::rev8: wx(__builtin_bswap64(xr(1))); break;
    case Mnemonic::orc_b: {
      std::uint64_t out = 0;
      for (unsigned i = 0; i < 8; ++i)
        if ((xr(1) >> (8 * i)) & 0xff) out |= 0xffULL << (8 * i);
      wx(out);
      break;
    }

    case Mnemonic::addiw: wx(static_cast<std::uint64_t>(sext(xr(1) + imm(2), 32))); break;
    case Mnemonic::slliw: wx(static_cast<std::uint64_t>(sext(xr(1) << (imm(2) & 31), 32))); break;
    case Mnemonic::srliw:
      wx(static_cast<std::uint64_t>(sext(zext(xr(1), 32) >> (imm(2) & 31), 32)));
      break;
    case Mnemonic::sraiw:
      wx(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(sext(xr(1), 32)) >> (imm(2) & 31)));
      break;
    case Mnemonic::addw: wx(static_cast<std::uint64_t>(sext(xr(1) + xr(2), 32))); break;
    case Mnemonic::subw: wx(static_cast<std::uint64_t>(sext(xr(1) - xr(2), 32))); break;
    case Mnemonic::sllw:
      wx(static_cast<std::uint64_t>(sext(xr(1) << (xr(2) & 31), 32)));
      break;
    case Mnemonic::srlw:
      wx(static_cast<std::uint64_t>(sext(zext(xr(1), 32) >> (xr(2) & 31), 32)));
      break;
    case Mnemonic::sraw:
      wx(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(sext(xr(1), 32)) >> (xr(2) & 31)));
      break;

    // ---- M ----
    case Mnemonic::mul: wx(xr(1) * xr(2)); break;
    case Mnemonic::mulh:
      wx(static_cast<std::uint64_t>(
          (static_cast<__int128>(static_cast<std::int64_t>(xr(1))) *
           static_cast<__int128>(static_cast<std::int64_t>(xr(2)))) >> 64));
      break;
    case Mnemonic::mulhsu:
      wx(static_cast<std::uint64_t>(
          (static_cast<__int128>(static_cast<std::int64_t>(xr(1))) *
           static_cast<unsigned __int128>(xr(2))) >> 64));
      break;
    case Mnemonic::mulhu:
      wx(static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(xr(1)) *
           static_cast<unsigned __int128>(xr(2))) >> 64));
      break;
    case Mnemonic::div: wx(rv_div_s(xr(1), xr(2))); break;
    case Mnemonic::divu: wx(rv_div_u(xr(1), xr(2))); break;
    case Mnemonic::rem: wx(rv_rem_s(xr(1), xr(2))); break;
    case Mnemonic::remu: wx(rv_rem_u(xr(1), xr(2))); break;
    case Mnemonic::mulw:
      wx(static_cast<std::uint64_t>(sext(xr(1) * xr(2), 32)));
      break;
    case Mnemonic::divw:
      wx(static_cast<std::uint64_t>(sext(
          rv_div_s(static_cast<std::uint64_t>(sext(xr(1), 32)),
                   static_cast<std::uint64_t>(sext(xr(2), 32))), 32)));
      break;
    case Mnemonic::divuw:
      wx(static_cast<std::uint64_t>(
          sext(rv_div_u(zext(xr(1), 32), zext(xr(2), 32)), 32)));
      break;
    case Mnemonic::remw:
      wx(static_cast<std::uint64_t>(sext(
          rv_rem_s(static_cast<std::uint64_t>(sext(xr(1), 32)),
                   static_cast<std::uint64_t>(sext(xr(2), 32))), 32)));
      break;
    case Mnemonic::remuw:
      wx(static_cast<std::uint64_t>(
          sext(rv_rem_u(zext(xr(1), 32), zext(xr(2), 32)), 32)));
      break;

    // ---- A (single hart: lr/sc always succeed, amos are plain RMW) ----
    case Mnemonic::lr_w:
      wx(static_cast<std::uint64_t>(sext(mem_.read(mem_addr(1), 4), 32)));
      reservation_ = mem_addr(1);
      break;
    case Mnemonic::lr_d:
      wx(mem_.read(mem_addr(1), 8));
      reservation_ = mem_addr(1);
      break;
    case Mnemonic::sc_w:
    case Mnemonic::sc_d: {
      const unsigned size = insn.mnemonic() == Mnemonic::sc_w ? 4 : 8;
      const std::uint64_t addr = mem_addr(2);
      if (reservation_ == addr) {
        mem_.write(addr, xr(1), size);
        wx(0);
      } else {
        wx(1);
      }
      reservation_ = ~0ULL;
      break;
    }
    case Mnemonic::amoswap_w: case Mnemonic::amoadd_w: case Mnemonic::amoxor_w:
    case Mnemonic::amoand_w: case Mnemonic::amoor_w: case Mnemonic::amomin_w:
    case Mnemonic::amomax_w: case Mnemonic::amominu_w: case Mnemonic::amomaxu_w:
    case Mnemonic::amoswap_d: case Mnemonic::amoadd_d: case Mnemonic::amoxor_d:
    case Mnemonic::amoand_d: case Mnemonic::amoor_d: case Mnemonic::amomin_d:
    case Mnemonic::amomax_d: case Mnemonic::amominu_d: case Mnemonic::amomaxu_d: {
      const Mnemonic m = insn.mnemonic();
      const bool is_w = m <= Mnemonic::amomaxu_w;
      const unsigned size = is_w ? 4 : 8;
      const std::uint64_t addr = mem_addr(2);
      std::uint64_t old = mem_.read(addr, size);
      if (is_w) old = static_cast<std::uint64_t>(sext(old, 32));
      const std::uint64_t src = xr(1);
      std::uint64_t nv = 0;
      auto smin = [](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b) ? a : b;
      };
      auto smax = [](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::int64_t>(a) > static_cast<std::int64_t>(b) ? a : b;
      };
      switch (m) {
        case Mnemonic::amoswap_w: case Mnemonic::amoswap_d: nv = src; break;
        case Mnemonic::amoadd_w: case Mnemonic::amoadd_d: nv = old + src; break;
        case Mnemonic::amoxor_w: case Mnemonic::amoxor_d: nv = old ^ src; break;
        case Mnemonic::amoand_w: case Mnemonic::amoand_d: nv = old & src; break;
        case Mnemonic::amoor_w: case Mnemonic::amoor_d: nv = old | src; break;
        case Mnemonic::amomin_w:
          nv = smin(old, static_cast<std::uint64_t>(sext(src, 32))); break;
        case Mnemonic::amomin_d: nv = smin(old, src); break;
        case Mnemonic::amomax_w:
          nv = smax(old, static_cast<std::uint64_t>(sext(src, 32))); break;
        case Mnemonic::amomax_d: nv = smax(old, src); break;
        case Mnemonic::amominu_w:
          nv = std::min(zext(old, 32), zext(src, 32)); break;
        case Mnemonic::amominu_d: nv = std::min(old, src); break;
        case Mnemonic::amomaxu_w:
          nv = std::max(zext(old, 32), zext(src, 32)); break;
        case Mnemonic::amomaxu_d: nv = std::max(old, src); break;
        default: break;
      }
      mem_.write(addr, nv, size);
      wx(old);
      break;
    }

    // ---- F/D loads, stores, moves ----
    case Mnemonic::flw: wf(0xffffffff00000000ULL | mem_.read(mem_addr(1), 4)); break;
    case Mnemonic::fld: wf(mem_.read(mem_addr(1), 8)); break;
    case Mnemonic::fsw: mem_.write(mem_addr(1), fr(0) & 0xffffffffULL, 4); break;
    case Mnemonic::fsd: mem_.write(mem_addr(1), fr(0), 8); break;
    case Mnemonic::fmv_x_w:
      wx(static_cast<std::uint64_t>(sext(fr(1), 32)));
      break;
    case Mnemonic::fmv_w_x: wf(0xffffffff00000000ULL | zext(xr(1), 32)); break;
    case Mnemonic::fmv_x_d: wx(fr(1)); break;
    case Mnemonic::fmv_d_x: wf(xr(1)); break;

    // ---- D arithmetic ----
    case Mnemonic::fadd_d: wf(from_double(as_double(fr(1)) + as_double(fr(2)))); break;
    case Mnemonic::fsub_d: wf(from_double(as_double(fr(1)) - as_double(fr(2)))); break;
    case Mnemonic::fmul_d: wf(from_double(as_double(fr(1)) * as_double(fr(2)))); break;
    case Mnemonic::fdiv_d: wf(from_double(as_double(fr(1)) / as_double(fr(2)))); break;
    case Mnemonic::fsqrt_d: wf(from_double(std::sqrt(as_double(fr(1))))); break;
    case Mnemonic::fmadd_d:
      wf(from_double(std::fma(as_double(fr(1)), as_double(fr(2)), as_double(fr(3)))));
      break;
    case Mnemonic::fmsub_d:
      wf(from_double(std::fma(as_double(fr(1)), as_double(fr(2)), -as_double(fr(3)))));
      break;
    case Mnemonic::fnmsub_d:
      wf(from_double(std::fma(-as_double(fr(1)), as_double(fr(2)), as_double(fr(3)))));
      break;
    case Mnemonic::fnmadd_d:
      wf(from_double(std::fma(-as_double(fr(1)), as_double(fr(2)), -as_double(fr(3)))));
      break;
    case Mnemonic::fsgnj_d:
      wf((fr(1) & ~(1ULL << 63)) | (fr(2) & (1ULL << 63)));
      break;
    case Mnemonic::fsgnjn_d:
      wf((fr(1) & ~(1ULL << 63)) | (~fr(2) & (1ULL << 63)));
      break;
    case Mnemonic::fsgnjx_d: wf(fr(1) ^ (fr(2) & (1ULL << 63))); break;
    case Mnemonic::fmin_d:
      wf(from_double(std::fmin(as_double(fr(1)), as_double(fr(2)))));
      break;
    case Mnemonic::fmax_d:
      wf(from_double(std::fmax(as_double(fr(1)), as_double(fr(2)))));
      break;
    case Mnemonic::feq_d: wx(as_double(fr(1)) == as_double(fr(2)) ? 1 : 0); break;
    case Mnemonic::flt_d: wx(as_double(fr(1)) < as_double(fr(2)) ? 1 : 0); break;
    case Mnemonic::fle_d: wx(as_double(fr(1)) <= as_double(fr(2)) ? 1 : 0); break;
    case Mnemonic::fclass_d: wx(fclass_of(as_double(fr(1)))); break;
    case Mnemonic::fcvt_w_d: wx(static_cast<std::uint64_t>(sext(fcvt_to_int<std::int32_t>(as_double(fr(1))), 32))); break;
    case Mnemonic::fcvt_wu_d: wx(static_cast<std::uint64_t>(sext(fcvt_to_int<std::uint32_t>(as_double(fr(1))), 32))); break;
    case Mnemonic::fcvt_l_d: wx(fcvt_to_int<std::int64_t>(as_double(fr(1)))); break;
    case Mnemonic::fcvt_lu_d: wx(fcvt_to_int<std::uint64_t>(as_double(fr(1)))); break;
    case Mnemonic::fcvt_d_w: wf(from_double(static_cast<double>(static_cast<std::int32_t>(xr(1))))); break;
    case Mnemonic::fcvt_d_wu: wf(from_double(static_cast<double>(static_cast<std::uint32_t>(xr(1))))); break;
    case Mnemonic::fcvt_d_l: wf(from_double(static_cast<double>(static_cast<std::int64_t>(xr(1))))); break;
    case Mnemonic::fcvt_d_lu: wf(from_double(static_cast<double>(xr(1)))); break;
    case Mnemonic::fcvt_d_s: wf(from_double(static_cast<double>(as_float(fr(1))))); break;
    case Mnemonic::fcvt_s_d: wf(box_float(static_cast<float>(as_double(fr(1))))); break;

    // ---- F arithmetic ----
    case Mnemonic::fadd_s: wf(box_float(as_float(fr(1)) + as_float(fr(2)))); break;
    case Mnemonic::fsub_s: wf(box_float(as_float(fr(1)) - as_float(fr(2)))); break;
    case Mnemonic::fmul_s: wf(box_float(as_float(fr(1)) * as_float(fr(2)))); break;
    case Mnemonic::fdiv_s: wf(box_float(as_float(fr(1)) / as_float(fr(2)))); break;
    case Mnemonic::fsqrt_s: wf(box_float(std::sqrt(as_float(fr(1))))); break;
    case Mnemonic::fmadd_s:
      wf(box_float(std::fma(as_float(fr(1)), as_float(fr(2)), as_float(fr(3)))));
      break;
    case Mnemonic::fmsub_s:
      wf(box_float(std::fma(as_float(fr(1)), as_float(fr(2)), -as_float(fr(3)))));
      break;
    case Mnemonic::fnmsub_s:
      wf(box_float(std::fma(-as_float(fr(1)), as_float(fr(2)), as_float(fr(3)))));
      break;
    case Mnemonic::fnmadd_s:
      wf(box_float(std::fma(-as_float(fr(1)), as_float(fr(2)), -as_float(fr(3)))));
      break;
    case Mnemonic::fsgnj_s: {
      const std::uint32_t a = static_cast<std::uint32_t>(fr(1));
      const std::uint32_t b = static_cast<std::uint32_t>(fr(2));
      wf(0xffffffff00000000ULL | ((a & 0x7fffffffu) | (b & 0x80000000u)));
      break;
    }
    case Mnemonic::fsgnjn_s: {
      const std::uint32_t a = static_cast<std::uint32_t>(fr(1));
      const std::uint32_t b = static_cast<std::uint32_t>(fr(2));
      wf(0xffffffff00000000ULL | ((a & 0x7fffffffu) | (~b & 0x80000000u)));
      break;
    }
    case Mnemonic::fsgnjx_s: {
      const std::uint32_t a = static_cast<std::uint32_t>(fr(1));
      const std::uint32_t b = static_cast<std::uint32_t>(fr(2));
      wf(0xffffffff00000000ULL | (a ^ (b & 0x80000000u)));
      break;
    }
    case Mnemonic::fmin_s: wf(box_float(std::fmin(as_float(fr(1)), as_float(fr(2))))); break;
    case Mnemonic::fmax_s: wf(box_float(std::fmax(as_float(fr(1)), as_float(fr(2))))); break;
    case Mnemonic::feq_s: wx(as_float(fr(1)) == as_float(fr(2)) ? 1 : 0); break;
    case Mnemonic::flt_s: wx(as_float(fr(1)) < as_float(fr(2)) ? 1 : 0); break;
    case Mnemonic::fle_s: wx(as_float(fr(1)) <= as_float(fr(2)) ? 1 : 0); break;
    case Mnemonic::fclass_s: wx(fclass_of(as_float(fr(1)))); break;
    case Mnemonic::fcvt_w_s: wx(static_cast<std::uint64_t>(sext(fcvt_to_int<std::int32_t>(as_float(fr(1))), 32))); break;
    case Mnemonic::fcvt_wu_s: wx(static_cast<std::uint64_t>(sext(fcvt_to_int<std::uint32_t>(as_float(fr(1))), 32))); break;
    case Mnemonic::fcvt_l_s: wx(fcvt_to_int<std::int64_t>(as_float(fr(1)))); break;
    case Mnemonic::fcvt_lu_s: wx(fcvt_to_int<std::uint64_t>(as_float(fr(1)))); break;
    case Mnemonic::fcvt_s_w: wf(box_float(static_cast<float>(static_cast<std::int32_t>(xr(1))))); break;
    case Mnemonic::fcvt_s_wu: wf(box_float(static_cast<float>(static_cast<std::uint32_t>(xr(1))))); break;
    case Mnemonic::fcvt_s_l: wf(box_float(static_cast<float>(static_cast<std::int64_t>(xr(1))))); break;
    case Mnemonic::fcvt_s_lu: wf(box_float(static_cast<float>(xr(1)))); break;

    default:
      return false;
  }
  return true;
}

StopReason Machine::syscall() {
  const std::uint64_t nr = get_x(17);  // a7
  const std::uint64_t a0 = get_x(10), a1 = get_x(11), a2 = get_x(12);
  switch (nr) {
    case 64: {  // write(fd, buf, count)
      if (a0 == 1 || a0 == 2) {
        std::string chunk(a2, '\0');
        mem_.read_bytes(a1, reinterpret_cast<std::uint8_t*>(chunk.data()), a2);
        out_ += chunk;
      }
      set_x(10, a2);
      break;
    }
    case 93:  // exit
    case 94:  // exit_group
      exit_code_ = static_cast<int>(a0);
      return StopReason::Exited;
    case 113: {  // clock_gettime(clk, *ts) — virtual cycle clock
      const std::uint64_t ns = virtual_ns();
      mem_.write(a1, ns / 1'000'000'000ULL, 8);
      mem_.write(a1 + 8, ns % 1'000'000'000ULL, 8);
      set_x(10, 0);
      break;
    }
    case 214:  // brk
      if (a0 != 0) {
        if (a0 > brk_) mem_.map(brk_, a0 - brk_);
        brk_ = a0;
      }
      set_x(10, brk_);
      break;
    case 222: {  // mmap(addr, len, ...) — anonymous only
      const std::uint64_t len = align_up(a1 ? a1 : 1, Memory::kPageSize);
      const std::uint64_t base = mmap_top_;
      mem_.map(base, len);
      mmap_top_ += len;
      set_x(10, base);
      break;
    }
    case 57:   // close
    case 80:   // fstat
    case 96:   // set_tid_address
    case 98:   // futex
    case 160:  // uname
    case 174:  // getuid-family
      set_x(10, 0);
      break;
    default:
      return StopReason::BadSyscall;
  }
  return StopReason::Running;
}

}  // namespace rvdyn::emu
