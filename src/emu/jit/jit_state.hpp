// JitState: the emulator's architectural state laid out for direct access
// from JIT-compiled host code.
//
// The Machine embeds one JitState as its *only* copy of the guest register
// file, so entering and leaving compiled code moves no data: x86-64
// templates address the fields as [rbx + offset] with rbx pinned to the
// JitState base, the threaded-code backend addresses them by precomputed
// byte offsets, and the interpreter reads the same words through the
// Machine accessors. Side-exits therefore materialize full architectural
// state by construction — compiled code keeps instret/cycles up to date at
// block granularity and writes the exit pc before returning.
#pragma once

#include <cstdint>
#include <type_traits>

// Driven by the RVDYN_JIT CMake option (OFF passes RVDYN_JIT_ENABLED=0 on
// the command line); defaults to ON.
#ifndef RVDYN_JIT_ENABLED
#define RVDYN_JIT_ENABLED 1
#endif

namespace rvdyn::emu::jit {

/// Direct-mapped software-TLB geometry: {guest page number -> host page
/// base}. emu::Memory pages are allocated on first touch and never freed
/// or moved, so a filled entry stays valid for the Machine's lifetime and
/// the TLB never needs shootdowns.
inline constexpr unsigned kTlbBits = 8;
inline constexpr unsigned kTlbEntries = 1u << kTlbBits;

/// Side-exit reasons compiled code reports in JitState::exit_kind.
enum ExitKind : std::uint32_t {
  kExitNone = 0,
  kExitEdge = 1,      ///< direct edge (branch/jal) to an unchained target
  kExitDispatch = 2,  ///< jalr target missed the inline dispatch table
  kExitBudget = 3,    ///< next block would overrun the session step budget
  kExitInterp = 4,    ///< next insn needs the interpreter (trap/syscall/...)
};

struct JitState {
  std::uint64_t x[32] = {};  ///< integer registers; x[0] is kept 0 by
                             ///< invariant so templates read it blindly
  std::uint64_t f[32] = {};  ///< FP registers (singles NaN-boxed)
  std::uint64_t pc = 0;
  std::uint64_t instret = 0;
  std::uint64_t cycles = 0;

  // --- session fields (meaningful only while compiled code runs) ---
  std::uint64_t budget = 0;  ///< remaining steps; blocks subtract up front
  std::uint64_t blocks_entered = 0;  ///< compiled blocks entered (stats)
  std::uint64_t dispatch_hits = 0;   ///< inline jalr-table hits (stats)
  std::uint64_t sink = 0;       ///< x0-write target (threaded backend)
  std::uint32_t exit_kind = 0;  ///< ExitKind of the last side exit
  std::uint32_t exit_edge = 0;  ///< edge id for kExitEdge
  void* machine = nullptr;      ///< owning emu::Machine, for slow helpers
  void* tier = nullptr;         ///< owning jit::Tier

  // Two TLBs: loads fill and probe the read TLB; stores probe a separate
  // write TLB whose entries are only ever installed by the store slow path
  // (which marks the page dirty first). Keeping the fill paths disjoint is
  // what makes dirty-page tracking exact under the JIT — a load must never
  // create an entry an inline store could silently write through.
  std::uint64_t tlb_tag[kTlbEntries];   ///< guest page number, ~0 = empty
  std::uint8_t* tlb_host[kTlbEntries];  ///< host base of that 4KiB page
  std::uint64_t tlb_wtag[kTlbEntries];  ///< write-TLB tags, ~0 = empty
  std::uint8_t* tlb_whost[kTlbEntries]; ///< write-TLB host bases

  JitState() {
    for (unsigned i = 0; i < kTlbEntries; ++i) {
      tlb_tag[i] = ~0ULL;
      tlb_host[i] = nullptr;
      tlb_wtag[i] = ~0ULL;
      tlb_whost[i] = nullptr;
    }
  }

  /// Drop every read-TLB entry (host pointers may dangle after pages are
  /// unmapped by a snapshot reset).
  void flush_read_tlb() {
    for (unsigned i = 0; i < kTlbEntries; ++i) tlb_tag[i] = ~0ULL;
  }
  /// Drop every write-TLB entry. Required after Memory::snapshot()/reset()
  /// so the first store into each page goes back through the slow path and
  /// re-marks the page dirty.
  void flush_write_tlb() {
    for (unsigned i = 0; i < kTlbEntries; ++i) tlb_wtag[i] = ~0ULL;
  }
};

static_assert(std::is_standard_layout_v<JitState>,
              "compiled code addresses JitState by fixed byte offsets");

}  // namespace rvdyn::emu::jit
