// Tier: the backend-neutral compile/execute/invalidate orchestration.
#include "emu/jit/jit.hpp"

#if RVDYN_JIT_ENABLED

#include <chrono>
#include <cstring>

#include "emu/jit/backend.hpp"
#include "emu/jit/jit_ir.hpp"
#include "emu/machine.hpp"
#include "obs/metrics.hpp"

namespace rvdyn::emu::jit {

std::unique_ptr<Tier> Tier::create(const Config& cfg) {
  Config c = cfg;
  if (c.backend == BackendKind::Auto)
    c.backend = x64_backend_available() ? BackendKind::X64
                                        : BackendKind::Threaded;
  if (c.backend == BackendKind::X64) {
    if (auto t = make_x64_tier(c)) return t;
    c.backend = BackendKind::Threaded;  // W^X said no after all
  }
  return make_threaded_tier(c);
}

bool Tier::config_drifted(Machine& m) const {
  if (!have_snapshot_) return false;
  static_assert(sizeof(CycleModel) <= sizeof(model_snapshot_));
  return std::memcmp(model_snapshot_, &Runtime::model(m),
                     sizeof(CycleModel)) != 0 ||
         profile_compiled_ != Runtime::profiling(m);
}

void Tier::take_snapshot(Machine& m) {
  std::memcpy(model_snapshot_, &Runtime::model(m), sizeof(CycleModel));
  profile_compiled_ = Runtime::profiling(m);
  have_snapshot_ = true;
}

bool Tier::compile(Machine& m, std::uint64_t start,
                   const std::vector<isa::Instruction>& insns) {
  if (config_drifted(m)) invalidate_all(InvalidateCause::Config);
  take_snapshot(m);
  if (has_block(start)) return true;
  if (live_blocks_ >= cfg_.max_blocks)
    invalidate_all(InvalidateCause::Capacity);

  const auto t0 = std::chrono::steady_clock::now();
  BlockIR ir;
  bool truncated = false;
  if (!build_block_ir(Runtime::model(m), start, insns, &ir, &truncated)) {
    ++stats_.compile_rejected;
    return false;
  }
  const std::uint32_t n = ir.n_retired;
  if (!emit_block(m, ir)) {
    ++stats_.compile_rejected;
    return false;
  }
  if (truncated) ++stats_.compile_truncated;
  ++stats_.blocks_compiled;
  stats_.insns_compiled += n;
  ++live_blocks_;
  infos_[ir.start] = BlockInfo{ir.start,     ir.end,        ir.n_retired,
                               ir.cost_fall, ir.cost_taken, ir.charges};
  const auto dt = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  stats_.compile_ns += dt;
  // Per-block latency distribution; the counter above only carries totals.
  RVDYN_OBS_HIST("rvdyn.emu.jit.compile_block_ns", dt);
  return true;
}

std::uint64_t Tier::execute(Machine& m, std::uint64_t max_steps) {
  if (config_drifted(m)) {
    invalidate_all(InvalidateCause::Config);
    return 0;
  }
  JitState& st = Runtime::state(m);
  if (!has_block(st.pc)) return 0;
  st.machine = &m;
  st.tier = this;
  st.budget = max_steps;
  st.exit_kind = kExitNone;
  st.blocks_entered = 0;
  st.dispatch_hits = 0;
  ++stats_.sessions;
  run_session(m);
  const std::uint64_t done = max_steps - st.budget;
  stats_.insns_retired += done;
  stats_.blocks_entered += st.blocks_entered;
  stats_.dispatch_hits += st.dispatch_hits;
  switch (st.exit_kind) {
    case kExitEdge: ++stats_.exit_edge; break;
    case kExitDispatch: ++stats_.exit_dispatch; break;
    case kExitBudget: ++stats_.exit_budget; break;
    case kExitInterp: ++stats_.exit_interp; break;
    default: break;
  }
  return done;
}

void Tier::charge_eviction(std::uint64_t dropped, InvalidateCause cause) {
  switch (cause) {
    case InvalidateCause::WriteCode: stats_.evict_write_code += dropped; break;
    case InvalidateCause::FenceI: stats_.evict_fencei += dropped; break;
    case InvalidateCause::Capacity: stats_.evict_capacity += dropped; break;
    case InvalidateCause::Config: stats_.evict_config += dropped; break;
  }
}

void Tier::invalidate_range(std::uint64_t lo, std::uint64_t hi,
                            InvalidateCause cause) {
  const std::uint64_t n = drop_range(lo, hi);
  // Keep the attribution side-table in lockstep with the backend's block
  // set: drop every record whose guest range overlaps [lo, hi).
  for (auto it = infos_.begin(); it != infos_.end();) {
    if (it->second.start < hi && it->second.end > lo)
      it = infos_.erase(it);
    else
      ++it;
  }
  if (n == 0) return;
  charge_eviction(n, cause);
  live_blocks_ -= n;
  ++epoch_;  // stale bcache stamps now re-offer their blocks
}

void Tier::invalidate_all(InvalidateCause cause) {
  const std::uint64_t n = drop_all();
  infos_.clear();
  if (n == 0) return;
  charge_eviction(n, cause);
  live_blocks_ = 0;
  ++epoch_;
}

const BlockInfo* Tier::block_info(std::uint64_t pc) const {
  auto it = infos_.upper_bound(pc);
  if (it == infos_.begin()) return nullptr;
  --it;
  return pc < it->second.end ? &it->second : nullptr;
}

void Tier::publish_metrics() {
#if RVDYN_OBS_ENABLED
  const Stats& c = stats_;
  const Stats& p = published_;
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.blocks_compiled",
                    c.blocks_compiled - p.blocks_compiled);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.insns_compiled",
                    c.insns_compiled - p.insns_compiled);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.compile_rejected",
                    c.compile_rejected - p.compile_rejected);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.compile_truncated",
                    c.compile_truncated - p.compile_truncated);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.code_bytes", c.code_bytes - p.code_bytes);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.compile_ns", c.compile_ns - p.compile_ns);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.sessions", c.sessions - p.sessions);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.blocks_entered",
                    c.blocks_entered - p.blocks_entered);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.insns_retired",
                    c.insns_retired - p.insns_retired);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.dispatch_hits",
                    c.dispatch_hits - p.dispatch_hits);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.exit.edge", c.exit_edge - p.exit_edge);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.exit.dispatch",
                    c.exit_dispatch - p.exit_dispatch);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.exit.budget",
                    c.exit_budget - p.exit_budget);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.exit.interp",
                    c.exit_interp - p.exit_interp);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.chains_installed",
                    c.chains_installed - p.chains_installed);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.chains_broken",
                    c.chains_broken - p.chains_broken);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.dispatch_entries",
                    c.dispatch_entries - p.dispatch_entries);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.evict.write_code",
                    c.evict_write_code - p.evict_write_code);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.evict.fencei",
                    c.evict_fencei - p.evict_fencei);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.evict.capacity",
                    c.evict_capacity - p.evict_capacity);
  RVDYN_OBS_COUNT_N("rvdyn.emu.jit.evict.config",
                    c.evict_config - p.evict_config);
  RVDYN_OBS_GAUGE("rvdyn.emu.jit.live_blocks",
                  static_cast<std::uint64_t>(live_blocks_));
  published_ = stats_;
#endif
}

}  // namespace rvdyn::emu::jit

#endif  // RVDYN_JIT_ENABLED
