// Internal backend factories (not part of the public jit.hpp surface).
#pragma once

#include <memory>

#include "emu/jit/jit.hpp"

namespace rvdyn::emu::jit {

/// Portable tail-dispatched continuation backend. Never fails.
std::unique_ptr<Tier> make_threaded_tier(const Config& cfg);

/// x86-64 copy-and-patch backend. Returns nullptr when the host is not
/// x86-64 Linux or the RWX code arena cannot be mapped.
std::unique_ptr<Tier> make_x64_tier(const Config& cfg);

/// Software-TLB hit test shared by the threaded backend and the C slow
/// paths: host pointer for `addr` when its page is cached AND the access
/// does not cross the page edge, else nullptr. Mirrors exactly the check
/// the x64 backend emits inline.
inline std::uint8_t* tlb_lookup(JitState& st, std::uint64_t addr,
                                unsigned size) {
  const std::uint64_t page = addr >> 12;
  const unsigned idx = page & (kTlbEntries - 1);
  if (st.tlb_tag[idx] == page && ((addr & 4095) + size) <= 4096)
    return st.tlb_host[idx] + (addr & 4095);
  return nullptr;
}

/// Write-TLB variant for stores. Entries are installed only by the store
/// slow path after the page was dirty-marked, so an inline hit here can
/// never bypass snapshot dirty tracking.
inline std::uint8_t* tlb_lookup_w(JitState& st, std::uint64_t addr,
                                  unsigned size) {
  const std::uint64_t page = addr >> 12;
  const unsigned idx = page & (kTlbEntries - 1);
  if (st.tlb_wtag[idx] == page && ((addr & 4095) + size) <= 4096)
    return st.tlb_whost[idx] + (addr & 4095);
  return nullptr;
}

}  // namespace rvdyn::emu::jit
