// rvdyn::emu::jit — baseline dynamic binary translator for hot basic blocks.
//
// When the interpreter's bcache observes a stable basic block crossing a
// hotness threshold, the Machine hands it to a Tier, which compiles it to
// host code and thereafter executes it natively, chaining compiled blocks
// on their fallthrough/taken edges and resolving jalr targets through an
// inline direct-mapped dispatch table. Two backends implement the Tier
// contract:
//
//  * x64      — copy-and-patch template emission into an RWX mmap arena,
//               guest register file pinned to rbx (x86-64 Linux only, and
//               only where mmap(PROT_EXEC) W^X policy allows an RWX arena);
//  * threaded — tail-dispatched continuation ops (pre-decoded operand
//               programs run through per-op function pointers), the
//               portable fallback.
//
// The side-exit contract: compiled code returns to the session loop with
// full architectural state materialized in the Machine's JitState (pc,
// registers, instret, cycles), so emu::Machine::step() semantics are
// preserved bit-exactly across any exit — trap, syscall, unresolved
// target, or budget exhaustion. Instructions that can trap or read the
// virtual clock mid-block (ecall/ebreak/fence/csr) are never compiled;
// blocks side-exit to the interpreter just before them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "emu/jit/jit_state.hpp"
#include "isa/instruction.hpp"

namespace rvdyn::emu {
class Machine;
class Memory;
struct CycleModel;
}  // namespace rvdyn::emu

namespace rvdyn::emu::jit {

struct BlockIR;

/// Per-retired-instruction profile record: (guest pc, not-taken charge).
struct PcCharge {
  std::uint64_t pc;
  std::uint32_t charge;
};

enum class BackendKind { Auto, X64, Threaded };

/// Why compiled blocks were dropped (mirrors the bcache eviction causes).
enum class InvalidateCause { WriteCode, FenceI, Capacity, Config };

struct Config {
  BackendKind backend = BackendKind::Auto;
  /// Interpreter passes through a cached block before it is compiled.
  std::uint32_t hot_threshold = 16;
  std::size_t arena_bytes = 4u << 20;  ///< x64 code arena size
  std::size_t max_blocks = 4096;       ///< compiled blocks before a full drop
  /// Testing hook: compile this mnemonic *wrong* (flip bit 0 of its result)
  /// so the lockstep oracle's meta-test can prove a bad template is caught.
  isa::Mnemonic sabotage = isa::Mnemonic::kInvalid;
};

struct Stats {
  // compile side
  std::uint64_t blocks_compiled = 0;
  std::uint64_t insns_compiled = 0;
  std::uint64_t compile_rejected = 0;   ///< blocks with no compilable prefix
  std::uint64_t compile_truncated = 0;  ///< blocks cut short of a terminal
  std::uint64_t code_bytes = 0;         ///< host code emitted (x64 backend)
  std::uint64_t compile_ns = 0;         ///< wall time spent compiling
  // run side
  std::uint64_t sessions = 0;        ///< entries from Machine::run
  std::uint64_t blocks_entered = 0;  ///< compiled blocks executed
  std::uint64_t insns_retired = 0;   ///< guest insns retired in compiled code
  std::uint64_t dispatch_hits = 0;   ///< inline jalr-table hits
  std::uint64_t exit_edge = 0;       ///< session ends: uncompiled direct edge
  std::uint64_t exit_dispatch = 0;   ///< session ends: uncompiled jalr target
  std::uint64_t exit_budget = 0;     ///< session ends: step budget
  std::uint64_t exit_interp = 0;     ///< session ends: interpreter handoff
  // chaining
  std::uint64_t chains_installed = 0;
  std::uint64_t chains_broken = 0;    ///< unchained by invalidation
  std::uint64_t dispatch_entries = 0; ///< jalr-table installs
  // invalidation (compiled blocks dropped, by cause)
  std::uint64_t evict_write_code = 0;
  std::uint64_t evict_fencei = 0;
  std::uint64_t evict_capacity = 0;
  std::uint64_t evict_config = 0;
};

/// Attribution side-table record for one compiled block: which guest range
/// the host code covers, how many instructions one pass retires, and the
/// per-pc cycle charge vector — everything a profiler needs to map a pc
/// observed at a side-exit (always a precise guest pc; see the side-exit
/// contract above) back to compiled-code occupancy and cost. Kept by the
/// backend-neutral Tier, in sync with compile/invalidate.
struct BlockInfo {
  std::uint64_t start = 0;
  std::uint64_t end = 0;        ///< one past the last compiled guest byte
  std::uint32_t n_retired = 0;  ///< guest insns retired per pass
  std::uint64_t cost_fall = 0;  ///< cycles: fallthrough / not-taken pass
  std::uint64_t cost_taken = 0; ///< cycles: taken pass
  std::vector<PcCharge> charges;  ///< per-insn (pc, not-taken cycles)
};

/// One compiled-code tier. Created lazily by the Machine on the first
/// threshold crossing; all entry points are called from the owning
/// Machine's thread only.
class Tier {
 public:
  /// Resolve `cfg.backend` (Auto prefers x64 when available) and build the
  /// tier. Never fails: the threaded backend has no platform requirements.
  static std::unique_ptr<Tier> create(const Config& cfg);

  virtual ~Tier() = default;

  virtual const char* backend_name() const = 0;

  /// Compile the bcache block starting at `start`. Idempotent: returns true
  /// without work when `start` is already compiled. Returns false when no
  /// compilable prefix exists (the interpreter keeps the block).
  bool compile(Machine& m, std::uint64_t start,
               const std::vector<isa::Instruction>& insns);

  /// Execute compiled code at the machine's pc until a side exit that
  /// cannot be resolved inside the tier. Returns retired instructions
  /// (0 = no code at pc, or a config drift forced a flush). State is fully
  /// materialized on return.
  std::uint64_t execute(Machine& m, std::uint64_t max_steps);

  /// Drop (and unchain) compiled blocks overlapping [lo, hi).
  void invalidate_range(std::uint64_t lo, std::uint64_t hi,
                        InvalidateCause cause);
  /// Drop every compiled block.
  void invalidate_all(InvalidateCause cause);

  /// Attribution side-table lookup: the compiled block whose guest range
  /// [start, end) contains `pc`, or nullptr when `pc` is not inside any
  /// compiled block. Pointers stay valid until the next compile or
  /// invalidation. O(log live_blocks).
  const BlockInfo* block_info(std::uint64_t pc) const;

  /// Monotonic generation; bumped by every invalidation so the Machine's
  /// bcache entries know their compiled copy is gone and re-offer the block.
  std::uint32_t epoch() const { return epoch_; }
  bool has_code() const { return live_blocks_ != 0; }
  std::size_t live_blocks() const { return live_blocks_; }
  const Stats& stats() const { return stats_; }

  /// Push rvdyn.emu.jit.* counter deltas into obs::Registry.
  void publish_metrics();

 protected:
  explicit Tier(const Config& cfg) : cfg_(cfg) {}

  // Backend contract. `drop_*` return the number of blocks dropped.
  virtual bool emit_block(Machine& m, const BlockIR& ir) = 0;
  virtual bool has_block(std::uint64_t pc) const = 0;
  virtual void run_session(Machine& m) = 0;
  virtual std::uint64_t drop_range(std::uint64_t lo, std::uint64_t hi) = 0;
  virtual std::uint64_t drop_all() = 0;

  void charge_eviction(std::uint64_t dropped, InvalidateCause cause);

  Config cfg_;
  Stats stats_;
  Stats published_;  ///< snapshot at the last publish_metrics()
  std::size_t live_blocks_ = 0;
  std::uint32_t epoch_ = 1;  ///< bcache entries default to 0 == "stale"
  /// Attribution records keyed by block start, maintained in lockstep with
  /// the backend's compiled-block set by compile/invalidate_*.
  std::map<std::uint64_t, BlockInfo> infos_;

 private:
  /// Compile-time snapshots; drift (a tool mutating cycle_model() or
  /// toggling the pc profile between runs) invalidates all code so blocks
  /// recompile against the new configuration.
  bool have_snapshot_ = false;
  bool profile_compiled_ = false;
  unsigned char model_snapshot_[64] = {};
  bool config_drifted(Machine& m) const;
  void take_snapshot(Machine& m);
};

/// True when the x64 backend can run here (x86-64 Linux and the kernel's
/// W^X policy admits an RWX anonymous mapping).
bool x64_backend_available();

/// The JIT's only door into Machine private state. Machine befriends
/// Runtime so backends need no public Machine API beyond the debugger
/// surface; every slow-path helper funnels through here.
struct Runtime {
  static JitState& state(Machine& m);
  static Memory& memory(Machine& m);
  static const CycleModel& model(Machine& m);
  static bool profiling(Machine& m);
  /// Interpreter value semantics for one non-control-flow instruction —
  /// the generic fallback that keeps template coverage total without
  /// duplicating semantics.
  static bool exec_value(Machine& m, const isa::Instruction& insn,
                         std::uint64_t pc);
  /// Bump the per-PC profile for one pass through `ir` (taken/not-taken
  /// decides the final insn's extra charge), bit-exact with the
  /// interpreter's per-insn attribution.
  static void profile_block(Machine& m, const BlockIR& ir, bool taken);
  /// Fill the read-TLB entry for `addr`'s page (allocating the page
  /// zero-filled on first touch, matching the interpreter's load/store
  /// semantics) and return the host address of `addr`.
  static std::uint8_t* tlb_fill(JitState& st, std::uint64_t addr);
  /// Fill the write-TLB (and read-TLB) entry for `addr`'s page, marking
  /// the page dirty first so snapshot tracking stays exact under inline
  /// compiled stores.
  static std::uint8_t* tlb_fill_w(JitState& st, std::uint64_t addr);
};

}  // namespace rvdyn::emu::jit

#if RVDYN_JIT_ENABLED
// C-ABI slow paths called from emitted x64 code (SysV calling convention).
extern "C" {
/// Load `size` bytes at `addr`; bit 8 of `size_sign` set = sign-extend.
std::uint64_t rvdyn_jit_load(rvdyn::emu::jit::JitState* st,
                             std::uint64_t addr, std::uint32_t size_sign);
void rvdyn_jit_store(rvdyn::emu::jit::JitState* st, std::uint64_t addr,
                     std::uint64_t value, std::uint32_t size);
/// Generic value-op fallback: run one instruction through the
/// interpreter's exec_value switch.
void rvdyn_jit_value(rvdyn::emu::jit::JitState* st, const void* insn,
                     std::uint64_t pc);
/// Per-PC profile bump for one block pass; `meta` is the backend's
/// ProfileMeta (a BlockIR held alive by the compiled block).
void rvdyn_jit_profile(rvdyn::emu::jit::JitState* st, const void* meta,
                       std::uint64_t taken);
}
#endif
