// Shared JIT front-end: lower a bcache basic block to a backend-neutral
// BlockIR — the compilable prefix of value instructions plus a classified
// terminal, with cycle costs precomputed against the CycleModel so compiled
// code does whole-block accounting with two adds.
#pragma once

#include <cstdint>
#include <vector>

#include "emu/jit/jit.hpp"        // PcCharge lives with the Tier interface
#include "emu/jit/jit_state.hpp"  // supplies the RVDYN_JIT_ENABLED default
#include "isa/instruction.hpp"

namespace rvdyn::emu {
struct CycleModel;
}

namespace rvdyn::emu::jit {

enum class TermKind : std::uint8_t {
  Interp,      ///< side-exit to the interpreter at fall_target
  CondBranch,  ///< beq/bne/blt/bge/bltu/bgeu
  Jal,
  Jalr,
};

struct BlockIR {
  std::uint64_t start = 0;
  std::uint64_t end = 0;  ///< one past the last compiled guest byte
  std::vector<isa::Instruction> body;  ///< straight-line value insns
  std::vector<std::uint64_t> body_pc;  ///< guest pc of each body insn

  TermKind term = TermKind::Interp;
  isa::Instruction term_insn;  ///< valid unless term == Interp
  std::uint64_t term_pc = 0;

  std::uint64_t taken_target = 0;  ///< CondBranch taken / Jal target
  std::uint64_t fall_target = 0;   ///< CondBranch fallthrough; Interp exit pc
  std::uint64_t link_value = 0;    ///< Jal/Jalr: pc of the next insn
  unsigned link_rd = 0;            ///< Jal/Jalr rd (0 = plain jump)
  unsigned jalr_rs1 = 0;
  std::int64_t jalr_imm = 0;
  unsigned br_rs1 = 0, br_rs2 = 0;  ///< CondBranch comparands

  // Accounting, precomputed against the CycleModel at compile time.
  std::uint32_t n_retired = 0;  ///< insns retired per pass (body + terminal)
  std::uint64_t cost_fall = 0;  ///< cycles: fallthrough / not-taken path
  std::uint64_t cost_taken = 0; ///< cycles: taken path (CondBranch/Jal/Jalr)
  std::vector<PcCharge> charges;  ///< per-insn charges, terminal not-taken
  std::uint32_t taken_extra = 0;  ///< final insn's extra cycles when taken
};

/// True when `insn` may appear in a block body: a valid non-control-flow
/// instruction that cannot trap or read the virtual clock mid-block.
inline bool jit_can_compile(const isa::Instruction& insn) {
  return insn.valid() && !insn.is_control_flow() &&
         !(insn.flags() &
           (isa::F_ECALL | isa::F_EBREAK | isa::F_FENCE | isa::F_CSR));
}

/// Build the IR for the longest compilable prefix of `insns` (a bcache
/// block starting at `start`). Returns false when even the first
/// instruction is uncompilable; `*truncated` is set when the prefix ends
/// before the bcache block's own terminal.
bool build_block_ir(const CycleModel& model, std::uint64_t start,
                    const std::vector<isa::Instruction>& insns, BlockIR* out,
                    bool* truncated);

/// Evaluate a conditional-branch terminal against two register values.
bool branch_takes(isa::Mnemonic m, std::uint64_t a, std::uint64_t b);

}  // namespace rvdyn::emu::jit
