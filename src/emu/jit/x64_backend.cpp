// x86-64 copy-and-patch backend: per-mnemonic host-code templates stamped
// into an RWX mmap arena, with the guest register file (JitState) pinned to
// rbx. Operand slots are patched as [rbx+disp32] offsets; loads/stores hit
// an inline software TLB (tag compare + page-edge bounds check) and fall to
// C helpers on miss; direct edges end in a patchable `jmp rel32` so resolved
// targets chain block-to-block without leaving native code; jalr targets go
// through an inline direct-mapped dispatch table.
//
// Register budget: rbx = JitState (callee-saved, saved by the entry thunk);
// rax/rcx/rdx/rsi/rdi and xmm0 are scratch. Emitted calls keep the SysV
// 16-byte stack alignment (the thunk's one push re-aligns after `call`).
#include "emu/jit/backend.hpp"

#if RVDYN_JIT_ENABLED && defined(__x86_64__) && defined(__linux__)

#include <sys/mman.h>

#include <cstddef>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "emu/jit/jit_ir.hpp"
#include "emu/machine.hpp"
#include "isa/op_program.hpp"

namespace rvdyn::emu::jit {
namespace {

using isa::Mnemonic;

enum Reg : unsigned { RAX = 0, RCX = 1, RDX = 2, RSI = 6, RDI = 7 };

constexpr std::int32_t x_disp(unsigned r) {
  return static_cast<std::int32_t>(offsetof(JitState, x) + 8 * r);
}
constexpr std::int32_t f_disp(unsigned r) {
  return static_cast<std::int32_t>(offsetof(JitState, f) + 8 * r);
}
constexpr std::int32_t xw_disp(unsigned r) {
  return r == 0 ? static_cast<std::int32_t>(offsetof(JitState, sink))
                : x_disp(r);
}
constexpr std::int32_t kPcD = offsetof(JitState, pc);
constexpr std::int32_t kInstretD = offsetof(JitState, instret);
constexpr std::int32_t kCyclesD = offsetof(JitState, cycles);
constexpr std::int32_t kBudgetD = offsetof(JitState, budget);
constexpr std::int32_t kEnteredD = offsetof(JitState, blocks_entered);
constexpr std::int32_t kDispHitsD = offsetof(JitState, dispatch_hits);
constexpr std::int32_t kExitKindD = offsetof(JitState, exit_kind);
constexpr std::int32_t kExitEdgeD = offsetof(JitState, exit_edge);
constexpr std::int32_t kTlbTagD = offsetof(JitState, tlb_tag);
constexpr std::int32_t kTlbHostD = offsetof(JitState, tlb_host);
constexpr std::int32_t kTlbWTagD = offsetof(JitState, tlb_wtag);
constexpr std::int32_t kTlbWHostD = offsetof(JitState, tlb_whost);

/// Assembler over a byte buffer with local-label and epilogue fixups.
struct Asm {
  std::vector<std::uint8_t> b;
  std::vector<std::size_t> epi;  ///< rel32 sites that jump to the epilogue

  void u8_(unsigned v) { b.push_back(static_cast<std::uint8_t>(v)); }
  void u32_(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8_((v >> (8 * i)) & 0xff);
  }
  void u64_(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8_((v >> (8 * i)) & 0xff);
  }
  std::size_t pos() const { return b.size(); }

  // [rbx + disp32] modrm for `reg`.
  void mrb(unsigned reg, std::int32_t d) {
    u8_(0x83 | (reg << 3));
    u32_(static_cast<std::uint32_t>(d));
  }
  // [rbx + rdx*8 + disp32] (TLB arrays).
  void mrb_rdx8(unsigned reg, std::int32_t d) {
    u8_(0x84 | (reg << 3));
    u8_(0xD3);
    u32_(static_cast<std::uint32_t>(d));
  }
  // [rdx + rsi] (host page + offset).
  void mrdx_rsi(unsigned reg) {
    u8_(0x04 | (reg << 3));
    u8_(0x32);
  }

  void ld(unsigned r, std::int32_t d) { u8_(0x48); u8_(0x8B); mrb(r, d); }
  void st(unsigned r, std::int32_t d) { u8_(0x48); u8_(0x89); mrb(r, d); }
  void ld32(unsigned r, std::int32_t d) { u8_(0x8B); mrb(r, d); }
  /// 64-bit `op reg, [rbx+d]`: 0x03 add, 0x2B sub, 0x23 and, 0x0B or,
  /// 0x33 xor, 0x3B cmp.
  void alu(std::uint8_t op, unsigned r, std::int32_t d) {
    u8_(0x48); u8_(op); mrb(r, d);
  }
  void alu32(std::uint8_t op, unsigned r, std::int32_t d) {
    u8_(op); mrb(r, d);
  }
  void mov_ri64(unsigned r, std::uint64_t v) {
    u8_(0x48); u8_(0xB8 + r); u64_(v);
  }
  void mov_ri32(unsigned r, std::uint32_t v) { u8_(0xB8 + r); u32_(v); }
  /// `op rax, imm32` short forms: 0x05 add, 0x2D sub, 0x25 and, 0x0D or,
  /// 0x35 xor, 0x3D cmp.
  void alui_rax(std::uint8_t op, std::int32_t v) {
    u8_(0x48); u8_(op); u32_(static_cast<std::uint32_t>(v));
  }
  void alui_eax(std::uint8_t op, std::int32_t v) {
    u8_(op); u32_(static_cast<std::uint32_t>(v));
  }
  /// shift sub-opcodes: 4 shl, 5 shr, 7 sar.
  void shift_i(unsigned sub, unsigned count, bool w64) {
    if (w64) u8_(0x48);
    u8_(0xC1); u8_(0xC0 | (sub << 3)); u8_(count & 63);
  }
  void shift_cl(unsigned sub, bool w64) {
    if (w64) u8_(0x48);
    u8_(0xD3); u8_(0xC0 | (sub << 3));
  }
  void cdqe() { u8_(0x48); u8_(0x98); }
  /// setcc al; movzx eax, al. cc: 0x2 b, 0xC l.
  void setcc(unsigned cc) {
    u8_(0x0F); u8_(0x90 + cc); u8_(0xC0);
    u8_(0x0F); u8_(0xB6); u8_(0xC0);
  }
  void add_mem_i32(std::int32_t d, std::int32_t v) {  // add qword [rbx+d],imm
    u8_(0x48); u8_(0x81); mrb(0, d); u32_(static_cast<std::uint32_t>(v));
  }
  void inc_mem(std::int32_t d) { u8_(0x48); u8_(0xFF); mrb(0, d); }
  void mov_mem_i32(std::int32_t d, std::uint32_t v) {  // mov dword [rbx+d],imm
    u8_(0xC7); mrb(0, d); u32_(v);
  }
  void xor_mem_i8(std::int32_t d, unsigned v) {  // xor qword [rbx+d], imm8
    u8_(0x48); u8_(0x83); mrb(6, d); u8_(v);
  }
  void call_rax() { u8_(0xFF); u8_(0xD0); }

  /// jcc rel32; returns fixup site. cc: 0x2 b, 0x3 ae, 0x4 e, 0x5 ne,
  /// 0x7 a, 0xC l, 0xD ge.
  std::size_t jcc(unsigned cc) {
    u8_(0x0F); u8_(0x80 + cc); u32_(0);
    return pos() - 4;
  }
  std::size_t jmp_() {
    u8_(0xE9); u32_(0);
    return pos() - 4;
  }
  void bind(std::size_t site) {
    const std::int32_t rel = static_cast<std::int32_t>(pos() - (site + 4));
    std::memcpy(&b[site], &rel, 4);
  }
  void jmp_epilogue() {
    u8_(0xE9);
    epi.push_back(pos());
    u32_(0);
  }
  void call_abs(std::uint64_t fn) { mov_ri64(RAX, fn); call_rax(); }

  // movsd xmm0 ops against [rbx+d]: 0x10 load, 0x11 store, 0x58 add,
  // 0x5C sub, 0x59 mul, 0x5E div.
  void sse_d(std::uint8_t op, std::int32_t d) {
    u8_(0xF2); u8_(0x0F); u8_(op); mrb(0, d);
  }
};

struct XBlock {
  BlockIR ir;
  std::uint8_t* code = nullptr;
  std::size_t size = 0;
  struct Edge {
    std::uint32_t site = 0;  ///< offset of the patchable jmp's rel32
    std::uint32_t stub = 0;  ///< offset of the unresolved-target stub
    XBlock* chained = nullptr;
    bool used = false;
  };
  Edge edges[2];  ///< [0] taken, [1] fall
};

class X64Tier final : public Tier {
 public:
  explicit X64Tier(const Config& cfg) : Tier(cfg) {
    for (DispEntry& e : disp_) e = {~0ULL, nullptr};
  }

  ~X64Tier() override {
    if (arena_) munmap(arena_, arena_size_);
  }

  bool init() {
    arena_size_ = cfg_.arena_bytes < (64u << 10) ? (64u << 10)
                                                 : cfg_.arena_bytes;
    void* p = mmap(nullptr, arena_size_, PROT_READ | PROT_WRITE | PROT_EXEC,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return false;
    arena_ = static_cast<std::uint8_t*>(p);
    // Fixed preamble: epilogue, then the entry thunk.
    static const std::uint8_t preamble[] = {
        0x5B, 0xC3,                    // epilogue: pop rbx; ret
        0x53, 0x48, 0x89, 0xFB,        // entry: push rbx; mov rbx, rdi
        0xFF, 0xE6,                    //        jmp rsi
    };
    std::memcpy(arena_, preamble, sizeof(preamble));
    epilogue_ = arena_;
    entry_ = reinterpret_cast<EntryFn>(
        reinterpret_cast<std::uintptr_t>(arena_ + 2));
    used_ = reset_mark_ = (sizeof(preamble) + 15) & ~std::size_t{15};
    return true;
  }

  const char* backend_name() const override { return "x64"; }

 protected:
  bool emit_block(Machine& m, const BlockIR& ir) override;

  bool has_block(std::uint64_t pc) const override {
    return blocks_.count(pc) != 0;
  }

  void run_session(Machine& m) override {
    JitState& st = Runtime::state(m);
    for (;;) {
      XBlock* blk = find(st.pc);
      entry_(&st, blk->code);
      if (st.exit_kind == kExitEdge) {
        XBlock* next = find(st.pc);
        if (!next) return;
        const EdgeRef& er = edge_refs_[st.exit_edge];
        XBlock::Edge& e = er.owner->edges[er.slot];
        patch_rel32(er.owner->code + e.site, next->code);
        e.chained = next;
        ++stats_.chains_installed;
        continue;
      }
      if (st.exit_kind == kExitDispatch) {
        XBlock* next = find(st.pc);
        if (!next) return;
        disp_[(st.pc >> 1) & (kDispEntries - 1)] = {st.pc, next->code};
        ++stats_.dispatch_entries;
        continue;
      }
      return;  // budget or interpreter handoff
    }
  }

  std::uint64_t drop_range(std::uint64_t lo, std::uint64_t hi) override {
    // Keep dropped blocks alive until the sweep finishes: the dispatch and
    // edge sweeps below still read their code pointers.
    std::vector<std::unique_ptr<XBlock>> dead_list;
    std::unordered_set<const XBlock*> dead;
    for (auto it = blocks_.begin(); it != blocks_.end();) {
      const BlockIR& ir = it->second->ir;
      if (ir.start < hi && ir.end > lo) {
        dead.insert(it->second.get());
        dead_list.push_back(std::move(it->second));
        it = blocks_.erase(it);
      } else {
        ++it;
      }
    }
    if (dead.empty()) return 0;
    // Unchain survivors that jump into dropped code: point their edge sites
    // back at the original side-exit stubs.
    for (auto& [pc, b] : blocks_) {
      for (XBlock::Edge& e : b->edges) {
        if (e.used && e.chained && dead.count(e.chained)) {
          patch_rel32(b->code + e.site, b->code + e.stub);
          e.chained = nullptr;
          ++stats_.chains_broken;
        }
      }
    }
    for (DispEntry& e : disp_) {
      const auto it = e.code ? code_owner_.find(e.code) : code_owner_.end();
      if (it != code_owner_.end() && dead.count(it->second))
        e = {~0ULL, nullptr};
    }
    for (const auto& d : dead_list) code_owner_.erase(d->code);
    for (EdgeRef& er : edge_refs_) {
      if (er.owner && dead.count(er.owner)) er.owner = nullptr;
    }
    return dead.size();
  }

  std::uint64_t drop_all() override {
    const std::uint64_t n = blocks_.size();
    blocks_.clear();
    code_owner_.clear();
    edge_refs_.clear();
    for (DispEntry& e : disp_) e = {~0ULL, nullptr};
    used_ = reset_mark_;  // the whole arena is reusable again
    return n;
  }

 private:
  using EntryFn = void (*)(JitState*, const std::uint8_t*);

  struct DispEntry {
    std::uint64_t tag;
    const std::uint8_t* code;
  };
  struct EdgeRef {
    XBlock* owner;
    std::uint8_t slot;
  };

  XBlock* find(std::uint64_t pc) {
    const auto it = blocks_.find(pc);
    return it == blocks_.end() ? nullptr : it->second.get();
  }

  static void patch_rel32(std::uint8_t* site, const std::uint8_t* target) {
    // Same-thread store into code we are not currently executing:
    // architecturally safe on x86 (coherent icache, no remote threads).
    const std::int32_t rel =
        static_cast<std::int32_t>(target - (site + 4));
    std::memcpy(site, &rel, 4);
  }

  bool emit_insn(Asm& a, const isa::Instruction& insn, std::uint64_t pc);
  void emit_load(Asm& a, std::int32_t dst, unsigned base, std::int64_t disp,
                 unsigned size, bool sign, bool box);
  void emit_store(Asm& a, std::int32_t src, unsigned base, std::int64_t disp,
                  unsigned size);
  void emit_tlb_probe(Asm& a, unsigned base, std::int64_t disp, unsigned size,
                      std::vector<std::size_t>& to_slow, bool write);
  void emit_profile_call(Asm& a, const BlockIR* ir, bool taken);
  void emit_acct(Asm& a, std::uint32_t n, std::uint64_t cycles) {
    a.add_mem_i32(kInstretD, static_cast<std::int32_t>(n));
    a.add_mem_i32(kCyclesD, static_cast<std::int32_t>(cycles));
  }

  static constexpr std::size_t kDispEntries = 4096;

  std::uint8_t* arena_ = nullptr;
  std::size_t arena_size_ = 0;
  std::size_t used_ = 0;
  std::size_t reset_mark_ = 0;
  const std::uint8_t* epilogue_ = nullptr;
  EntryFn entry_ = nullptr;

  std::unordered_map<std::uint64_t, std::unique_ptr<XBlock>> blocks_;
  std::unordered_map<const std::uint8_t*, const XBlock*> code_owner_;
  std::vector<EdgeRef> edge_refs_;
  DispEntry disp_[kDispEntries];
  bool profile_this_block_ = false;
};

void X64Tier::emit_profile_call(Asm& a, const BlockIR* ir, bool taken) {
  a.u8_(0x48); a.u8_(0x89); a.u8_(0xDF);  // mov rdi, rbx
  a.mov_ri64(RSI, reinterpret_cast<std::uint64_t>(ir));
  a.mov_ri32(RDX, taken ? 1 : 0);
  a.call_abs(reinterpret_cast<std::uint64_t>(&rvdyn_jit_profile));
}

// Leaves rax = guest address; on TLB hit leaves rdx = host page base and
// rsi = page offset; records jumps-to-slow-path in `to_slow`. Stores probe
// the write TLB (filled only by the dirty-marking slow path), loads the
// read TLB.
void X64Tier::emit_tlb_probe(Asm& a, unsigned base, std::int64_t disp,
                             unsigned size,
                             std::vector<std::size_t>& to_slow, bool write) {
  const std::int32_t tag_d = write ? kTlbWTagD : kTlbTagD;
  const std::int32_t host_d = write ? kTlbWHostD : kTlbHostD;
  a.ld(RAX, x_disp(base));
  if (disp) a.alui_rax(0x05, static_cast<std::int32_t>(disp));
  a.u8_(0x48); a.u8_(0x89); a.u8_(0xC1);              // mov rcx, rax
  a.u8_(0x48); a.u8_(0xC1); a.u8_(0xE9); a.u8_(12);   // shr rcx, 12
  a.u8_(0x89); a.u8_(0xCA);                           // mov edx, ecx
  a.u8_(0x81); a.u8_(0xE2); a.u32_(kTlbEntries - 1);  // and edx, 255
  a.u8_(0x48); a.u8_(0x3B); a.mrb_rdx8(RCX, tag_d);   // cmp rcx, tag[rdx]
  to_slow.push_back(a.jcc(0x5));                      // jne slow
  a.u8_(0x89); a.u8_(0xC6);                           // mov esi, eax
  a.u8_(0x81); a.u8_(0xE6); a.u32_(4095);             // and esi, 4095
  if (size > 1) {
    a.u8_(0x81); a.u8_(0xFE); a.u32_(4096 - size);    // cmp esi, 4096-size
    to_slow.push_back(a.jcc(0x7));                    // ja slow (page cross)
  }
  a.u8_(0x48); a.u8_(0x8B); a.mrb_rdx8(RDX, host_d);  // mov rdx, host[rdx]
}

void X64Tier::emit_load(Asm& a, std::int32_t dst, unsigned base,
                        std::int64_t disp, unsigned size, bool sign,
                        bool box) {
  std::vector<std::size_t> to_slow;
  emit_tlb_probe(a, base, disp, size, to_slow, /*write=*/false);
  switch (size | (sign ? 0x100 : 0)) {
    case 1: a.u8_(0x0F); a.u8_(0xB6); a.mrdx_rsi(RAX); break;  // movzx b
    case 0x101: a.u8_(0x48); a.u8_(0x0F); a.u8_(0xBE); a.mrdx_rsi(RAX); break;
    case 2: a.u8_(0x0F); a.u8_(0xB7); a.mrdx_rsi(RAX); break;  // movzx w
    case 0x102: a.u8_(0x48); a.u8_(0x0F); a.u8_(0xBF); a.mrdx_rsi(RAX); break;
    case 4: a.u8_(0x8B); a.mrdx_rsi(RAX); break;               // mov eax
    case 0x104: a.u8_(0x48); a.u8_(0x63); a.mrdx_rsi(RAX); break;  // movsxd
    default: a.u8_(0x48); a.u8_(0x8B); a.mrdx_rsi(RAX); break;  // mov rax
  }
  const std::size_t done = a.jmp_();
  for (std::size_t s : to_slow) a.bind(s);
  a.u8_(0x48); a.u8_(0x89); a.u8_(0xDF);  // mov rdi, rbx
  a.u8_(0x48); a.u8_(0x89); a.u8_(0xC6);  // mov rsi, rax (addr)
  a.mov_ri32(RDX, size | (sign ? 0x100 : 0));
  a.call_abs(reinterpret_cast<std::uint64_t>(&rvdyn_jit_load));
  a.bind(done);
  if (box) {
    a.mov_ri64(RCX, 0xffffffff00000000ULL);
    a.u8_(0x48); a.u8_(0x09); a.u8_(0xC8);  // or rax, rcx
  }
  a.st(RAX, dst);
}

void X64Tier::emit_store(Asm& a, std::int32_t src, unsigned base,
                         std::int64_t disp, unsigned size) {
  std::vector<std::size_t> to_slow;
  emit_tlb_probe(a, base, disp, size, to_slow, /*write=*/true);
  a.ld(RCX, src);  // value
  switch (size) {
    case 1: a.u8_(0x88); a.mrdx_rsi(RCX); break;
    case 2: a.u8_(0x66); a.u8_(0x89); a.mrdx_rsi(RCX); break;
    case 4: a.u8_(0x89); a.mrdx_rsi(RCX); break;
    default: a.u8_(0x48); a.u8_(0x89); a.mrdx_rsi(RCX); break;
  }
  const std::size_t done = a.jmp_();
  for (std::size_t s : to_slow) a.bind(s);
  a.u8_(0x48); a.u8_(0x89); a.u8_(0xDF);  // mov rdi, rbx
  a.u8_(0x48); a.u8_(0x89); a.u8_(0xC6);  // mov rsi, rax (addr)
  a.ld(RDX, src);
  a.mov_ri32(RCX, size);
  a.call_abs(reinterpret_cast<std::uint64_t>(&rvdyn_jit_store));
  a.bind(done);
}

bool X64Tier::emit_insn(Asm& a, const isa::Instruction& insn,
                        std::uint64_t pc) {
  const isa::OperandProgram p = isa::operand_program(insn);
  const auto rd = [&] { return xw_disp(p.rd); };
  const auto s = [&](unsigned i) { return x_disp(p.src[i]); };
  // `op rax, [rbx+src1]` flavours.
  const auto rr = [&](std::uint8_t op) {
    a.ld(RAX, s(0));
    a.alu(op, RAX, s(1));
    a.st(RAX, rd());
  };
  const auto rrw = [&](std::uint8_t op) {  // 32-bit + sign-extend
    a.ld32(RAX, s(0));
    a.alu32(op, RAX, s(1));
    a.cdqe();
    a.st(RAX, rd());
  };
  const auto ri = [&](std::uint8_t op) {
    a.ld(RAX, s(0));
    a.alui_rax(op, static_cast<std::int32_t>(p.imm));
    a.st(RAX, rd());
  };
  const auto sh_i = [&](unsigned sub, bool w64) {
    if (w64) { a.ld(RAX, s(0)); a.shift_i(sub, p.imm & 63, true); }
    else { a.ld32(RAX, s(0)); a.shift_i(sub, p.imm & 31, false); a.cdqe(); }
    a.st(RAX, rd());
  };
  const auto sh_r = [&](unsigned sub, bool w64) {
    a.ld(RCX, s(1));
    if (w64) { a.ld(RAX, s(0)); a.shift_cl(sub, true); }
    else { a.ld32(RAX, s(0)); a.shift_cl(sub, false); a.cdqe(); }
    a.st(RAX, rd());
  };
  const auto cmp_set = [&](unsigned cc, bool imm) {
    a.ld(RAX, s(0));
    if (imm) a.alui_rax(0x3D, static_cast<std::int32_t>(p.imm));
    else a.alu(0x3B, RAX, s(1));
    a.setcc(cc);
    a.st(RAX, rd());
  };
  const auto fp2 = [&](std::uint8_t op) {
    a.sse_d(0x10, f_disp(p.src[0]));
    a.sse_d(op, f_disp(p.src[1]));
    a.sse_d(0x11, f_disp(p.rd));
  };

  switch (insn.mnemonic()) {
    case Mnemonic::lui:
      a.u8_(0x48); a.u8_(0xC7); a.u8_(0xC0);  // mov rax, imm32 (sext)
      a.u32_(static_cast<std::uint32_t>(p.imm));
      a.st(RAX, rd());
      return true;
    case Mnemonic::auipc:
      a.mov_ri64(RAX, pc + static_cast<std::uint64_t>(p.imm));
      a.st(RAX, rd());
      return true;
    case Mnemonic::addi:
      a.ld(RAX, s(0));
      if (p.imm) a.alui_rax(0x05, static_cast<std::int32_t>(p.imm));
      a.st(RAX, rd());
      return true;
    case Mnemonic::andi: ri(0x25); return true;
    case Mnemonic::ori: ri(0x0D); return true;
    case Mnemonic::xori: ri(0x35); return true;
    case Mnemonic::slti: cmp_set(0xC, true); return true;
    case Mnemonic::sltiu: cmp_set(0x2, true); return true;
    case Mnemonic::slli: sh_i(4, true); return true;
    case Mnemonic::srli: sh_i(5, true); return true;
    case Mnemonic::srai: sh_i(7, true); return true;
    case Mnemonic::addiw:
      a.ld32(RAX, s(0));
      if (p.imm) a.alui_eax(0x05, static_cast<std::int32_t>(p.imm));
      a.cdqe();
      a.st(RAX, rd());
      return true;
    case Mnemonic::slliw: sh_i(4, false); return true;
    case Mnemonic::srliw: sh_i(5, false); return true;
    case Mnemonic::sraiw: sh_i(7, false); return true;
    case Mnemonic::add: rr(0x03); return true;
    case Mnemonic::sub: rr(0x2B); return true;
    case Mnemonic::and_: rr(0x23); return true;
    case Mnemonic::or_: rr(0x0B); return true;
    case Mnemonic::xor_: rr(0x33); return true;
    case Mnemonic::slt: cmp_set(0xC, false); return true;
    case Mnemonic::sltu: cmp_set(0x2, false); return true;
    case Mnemonic::sll: sh_r(4, true); return true;
    case Mnemonic::srl: sh_r(5, true); return true;
    case Mnemonic::sra: sh_r(7, true); return true;
    case Mnemonic::addw: rrw(0x03); return true;
    case Mnemonic::subw: rrw(0x2B); return true;
    case Mnemonic::sllw: sh_r(4, false); return true;
    case Mnemonic::srlw: sh_r(5, false); return true;
    case Mnemonic::sraw: sh_r(7, false); return true;
    case Mnemonic::mul:
      a.ld(RAX, s(0));
      a.u8_(0x48); a.u8_(0x0F); a.u8_(0xAF); a.mrb(RAX, s(1));
      a.st(RAX, rd());
      return true;
    case Mnemonic::mulw:
      a.ld32(RAX, s(0));
      a.u8_(0x0F); a.u8_(0xAF); a.mrb(RAX, s(1));
      a.cdqe();
      a.st(RAX, rd());
      return true;
    case Mnemonic::fadd_d: fp2(0x58); return true;
    case Mnemonic::fsub_d: fp2(0x5C); return true;
    case Mnemonic::fmul_d: fp2(0x59); return true;
    case Mnemonic::fdiv_d: fp2(0x5E); return true;
    case Mnemonic::fmv_d_x:
      a.ld(RAX, s(0));
      a.st(RAX, f_disp(p.rd));
      return true;
    case Mnemonic::fmv_x_d:
      a.ld(RAX, f_disp(p.src[0]));
      a.st(RAX, rd());
      return true;
    case Mnemonic::lb:
      emit_load(a, rd(), p.mem_base, p.mem_disp, 1, true, false);
      return true;
    case Mnemonic::lbu:
      emit_load(a, rd(), p.mem_base, p.mem_disp, 1, false, false);
      return true;
    case Mnemonic::lh:
      emit_load(a, rd(), p.mem_base, p.mem_disp, 2, true, false);
      return true;
    case Mnemonic::lhu:
      emit_load(a, rd(), p.mem_base, p.mem_disp, 2, false, false);
      return true;
    case Mnemonic::lw:
      emit_load(a, rd(), p.mem_base, p.mem_disp, 4, true, false);
      return true;
    case Mnemonic::lwu:
      emit_load(a, rd(), p.mem_base, p.mem_disp, 4, false, false);
      return true;
    case Mnemonic::ld:
      emit_load(a, rd(), p.mem_base, p.mem_disp, 8, false, false);
      return true;
    case Mnemonic::fld:
      emit_load(a, f_disp(p.rd), p.mem_base, p.mem_disp, 8, false, false);
      return true;
    case Mnemonic::flw:
      emit_load(a, f_disp(p.rd), p.mem_base, p.mem_disp, 4, false, true);
      return true;
    case Mnemonic::sb:
      emit_store(a, s(0), p.mem_base, p.mem_disp, 1);
      return true;
    case Mnemonic::sh:
      emit_store(a, s(0), p.mem_base, p.mem_disp, 2);
      return true;
    case Mnemonic::sw:
      emit_store(a, s(0), p.mem_base, p.mem_disp, 4);
      return true;
    case Mnemonic::sd:
      emit_store(a, s(0), p.mem_base, p.mem_disp, 8);
      return true;
    case Mnemonic::fsw:
      emit_store(a, f_disp(p.src[0]), p.mem_base, p.mem_disp, 4);
      return true;
    case Mnemonic::fsd:
      emit_store(a, f_disp(p.src[0]), p.mem_base, p.mem_disp, 8);
      return true;
    default:
      return false;
  }
}

bool X64Tier::emit_block(Machine& m, const BlockIR& ir) {
  auto blk = std::make_unique<XBlock>();
  blk->ir = ir;
  const BlockIR& bir = blk->ir;  // stable storage for imm64 references
  const bool prof = Runtime::profiling(m);

  Asm a;
  // Budget gate + entry accounting.
  a.ld(RAX, kBudgetD);
  a.alui_rax(0x3D, static_cast<std::int32_t>(bir.n_retired));  // cmp
  const std::size_t to_budget = a.jcc(0x2);                    // jb
  a.alui_rax(0x2D, static_cast<std::int32_t>(bir.n_retired));  // sub
  a.st(RAX, kBudgetD);
  a.inc_mem(kEnteredD);

  // Body templates (generic-helper call when no template exists).
  for (std::size_t i = 0; i < bir.body.size(); ++i) {
    const isa::Instruction& insn = bir.body[i];
    if (!emit_insn(a, insn, bir.body_pc[i])) {
      a.u8_(0x48); a.u8_(0x89); a.u8_(0xDF);  // mov rdi, rbx
      a.mov_ri64(RSI, reinterpret_cast<std::uint64_t>(&bir.body[i]));
      a.mov_ri64(RDX, bir.body_pc[i]);
      a.call_abs(reinterpret_cast<std::uint64_t>(&rvdyn_jit_value));
    }
    if (insn.mnemonic() == cfg_.sabotage) {
      const isa::OperandProgram p = isa::operand_program(insn);
      if (p.has_rd && !p.rd_fp && p.rd != 0) a.xor_mem_i8(x_disp(p.rd), 1);
    }
  }

  // Terminal. Direct edges end in a patchable jmp rel32 (initially aimed at
  // their side-exit stub); jalr goes through the inline dispatch table.
  std::size_t site_taken = 0, site_fall = 0;
  bool want_taken = false, want_fall = false;
  std::size_t to_disp_stub = 0;
  bool want_disp = false;

  switch (bir.term) {
    case TermKind::Interp:
      emit_acct(a, bir.n_retired, bir.cost_fall);
      if (prof) emit_profile_call(a, &bir, false);
      a.mov_mem_i32(kExitKindD, kExitInterp);
      a.mov_ri64(RAX, bir.fall_target);
      a.st(RAX, kPcD);
      a.jmp_epilogue();
      break;
    case TermKind::CondBranch: {
      unsigned cc = 0;
      switch (bir.term_insn.mnemonic()) {
        case Mnemonic::beq: cc = 0x4; break;
        case Mnemonic::bne: cc = 0x5; break;
        case Mnemonic::blt: cc = 0xC; break;
        case Mnemonic::bge: cc = 0xD; break;
        case Mnemonic::bltu: cc = 0x2; break;
        default: cc = 0x3; break;  // bgeu
      }
      a.ld(RAX, x_disp(bir.br_rs1));
      a.alu(0x3B, RAX, x_disp(bir.br_rs2));
      const std::size_t to_taken = a.jcc(cc);
      emit_acct(a, bir.n_retired, bir.cost_fall);
      if (prof) emit_profile_call(a, &bir, false);
      site_fall = a.jmp_();
      want_fall = true;
      a.bind(to_taken);
      emit_acct(a, bir.n_retired, bir.cost_taken);
      if (prof) emit_profile_call(a, &bir, true);
      site_taken = a.jmp_();
      want_taken = true;
      break;
    }
    case TermKind::Jal:
      if (bir.link_rd) {
        a.mov_ri64(RAX, bir.link_value);
        a.st(RAX, xw_disp(bir.link_rd));
      }
      emit_acct(a, bir.n_retired, bir.cost_taken);
      if (prof) emit_profile_call(a, &bir, true);
      site_taken = a.jmp_();
      want_taken = true;
      break;
    case TermKind::Jalr: {
      a.ld(RAX, x_disp(bir.jalr_rs1));
      if (bir.jalr_imm)
        a.alui_rax(0x05, static_cast<std::int32_t>(bir.jalr_imm));
      a.u8_(0x48); a.u8_(0x83); a.u8_(0xE0); a.u8_(0xFE);  // and rax, -2
      a.st(RAX, kPcD);
      if (bir.link_rd) {
        a.mov_ri64(RCX, bir.link_value);
        a.st(RCX, xw_disp(bir.link_rd));
      }
      emit_acct(a, bir.n_retired, bir.cost_taken);
      if (prof) emit_profile_call(a, &bir, true);
      a.ld(RAX, kPcD);
      a.u8_(0x48); a.u8_(0x89); a.u8_(0xC1);              // mov rcx, rax
      a.u8_(0x48); a.u8_(0xC1); a.u8_(0xE9); a.u8_(1);    // shr rcx, 1
      a.u8_(0x89); a.u8_(0xCA);                           // mov edx, ecx
      a.u8_(0x81); a.u8_(0xE2); a.u32_(kDispEntries - 1); // and edx, 4095
      a.u8_(0x48); a.u8_(0xC1); a.u8_(0xE2); a.u8_(4);    // shl rdx, 4
      a.mov_ri64(RSI, reinterpret_cast<std::uint64_t>(&disp_[0]));
      a.u8_(0x48); a.u8_(0x01); a.u8_(0xF2);              // add rdx, rsi
      a.u8_(0x48); a.u8_(0x3B); a.u8_(0x02);              // cmp rax, [rdx]
      to_disp_stub = a.jcc(0x5);                          // jne
      want_disp = true;
      a.inc_mem(kDispHitsD);
      a.u8_(0xFF); a.u8_(0x62); a.u8_(0x08);              // jmp [rdx+8]
      break;
    }
  }

  // Stubs. Budget first, then the unresolved-edge stubs, then dispatch.
  a.bind(to_budget);
  a.mov_mem_i32(kExitKindD, kExitBudget);
  a.mov_ri64(RAX, bir.start);
  a.st(RAX, kPcD);
  a.jmp_epilogue();

  // Edge ids are registered only after the arena copy succeeds (a capacity
  // flush in between would clear edge_refs_ and dangle baked-in ids), so
  // the stub carries a placeholder id patched below.
  struct PendingEdge {
    std::uint8_t slot;
    std::uint32_t site, stub, id_imm;
  };
  PendingEdge pending[2];
  unsigned n_pending = 0;
  const auto emit_edge_stub = [&](std::uint8_t slot, std::uint64_t target,
                                  std::size_t site) {
    const std::uint32_t stub = static_cast<std::uint32_t>(a.pos());
    a.bind(site);  // unresolved edge: the patchable jmp lands on its stub
    a.mov_mem_i32(kExitKindD, kExitEdge);
    a.mov_mem_i32(kExitEdgeD, 0);
    const std::uint32_t id_imm = static_cast<std::uint32_t>(a.pos() - 4);
    a.mov_ri64(RAX, target);
    a.st(RAX, kPcD);
    a.jmp_epilogue();
    pending[n_pending++] = {slot, static_cast<std::uint32_t>(site), stub,
                           id_imm};
  };
  if (want_taken) emit_edge_stub(0, bir.taken_target, site_taken);
  if (want_fall) emit_edge_stub(1, bir.fall_target, site_fall);
  if (want_disp) {
    a.bind(to_disp_stub);
    a.mov_mem_i32(kExitKindD, kExitDispatch);
    a.jmp_epilogue();
  }

  // Copy into the arena; retry once after a capacity flush.
  const std::size_t need = (a.b.size() + 15) & ~std::size_t{15};
  if (used_ + need > arena_size_) {
    invalidate_all(InvalidateCause::Capacity);
    if (used_ + need > arena_size_) return false;  // block bigger than arena
  }
  std::uint8_t* code = arena_ + used_;
  used_ += need;
  std::memcpy(code, a.b.data(), a.b.size());
  for (std::size_t site : a.epi)
    patch_rel32(code + site, epilogue_);
  for (unsigned i = 0; i < n_pending; ++i) {
    const PendingEdge& pe = pending[i];
    const std::uint32_t id = static_cast<std::uint32_t>(edge_refs_.size());
    edge_refs_.push_back({blk.get(), pe.slot});
    std::memcpy(code + pe.id_imm, &id, 4);
    XBlock::Edge& e = blk->edges[pe.slot];
    e.used = true;
    e.site = pe.site;
    e.stub = pe.stub;
  }
  blk->code = code;
  blk->size = a.b.size();
  stats_.code_bytes += a.b.size();
  code_owner_[code] = blk.get();
  blocks_[bir.start] = std::move(blk);
  return true;
}

}  // namespace

bool x64_backend_available() {
  static const bool ok = [] {
    void* p = mmap(nullptr, 4096, PROT_READ | PROT_WRITE | PROT_EXEC,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return false;
    munmap(p, 4096);
    return true;
  }();
  return ok;
}

std::unique_ptr<Tier> make_x64_tier(const Config& cfg) {
  auto t = std::make_unique<X64Tier>(cfg);
  if (!t->init()) return nullptr;
  return t;
}

}  // namespace rvdyn::emu::jit

#else  // non-x86-64 host, or JIT compiled out

namespace rvdyn::emu::jit {
bool x64_backend_available() { return false; }
std::unique_ptr<Tier> make_x64_tier(const Config&) { return nullptr; }
}  // namespace rvdyn::emu::jit

#endif
