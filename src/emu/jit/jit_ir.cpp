#include "emu/jit/jit_ir.hpp"

#if RVDYN_JIT_ENABLED

#include "emu/machine.hpp"
#include "isa/op_program.hpp"

namespace rvdyn::emu::jit {

bool branch_takes(isa::Mnemonic m, std::uint64_t a, std::uint64_t b) {
  using isa::Mnemonic;
  switch (m) {
    case Mnemonic::beq: return a == b;
    case Mnemonic::bne: return a != b;
    case Mnemonic::blt:
      return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
    case Mnemonic::bge:
      return static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b);
    case Mnemonic::bltu: return a < b;
    case Mnemonic::bgeu: return a >= b;
    default: return false;
  }
}

bool build_block_ir(const CycleModel& model, std::uint64_t start,
                    const std::vector<isa::Instruction>& insns, BlockIR* out,
                    bool* truncated) {
  *out = BlockIR{};
  out->start = start;
  *truncated = false;

  std::uint64_t pc = start;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < insns.size(); ++i) {
    const isa::Instruction& insn = insns[i];
    const std::uint64_t next = pc + insn.length();
    if (insn.is_control_flow()) {
      // bcache blocks only ever end on control flow, so this is the block's
      // own terminal.
      const unsigned c_fall = insn_cycle_charge(model, insn, false);
      const unsigned c_taken = insn_cycle_charge(model, insn, true);
      const isa::OperandProgram p = isa::operand_program(insn);
      if (insn.is_cond_branch()) {
        out->term = TermKind::CondBranch;
        out->taken_target =
            pc + static_cast<std::uint64_t>(insn.branch_offset());
        out->fall_target = next;
        out->br_rs1 = p.src[0];
        out->br_rs2 = p.n_src > 1 ? p.src[1] : 0;
      } else if (insn.is_jal()) {
        out->term = TermKind::Jal;
        out->taken_target =
            pc + static_cast<std::uint64_t>(insn.operand(1).imm);
        out->link_value = next;
        out->link_rd = p.has_rd ? p.rd : 0;
      } else if (insn.is_jalr()) {
        out->term = TermKind::Jalr;
        out->jalr_rs1 = p.src[0];
        out->jalr_imm = insn.operand(2).imm;
        out->link_value = next;
        out->link_rd = p.has_rd ? p.rd : 0;
      } else {
        break;  // unknown control flow: leave it to the interpreter
      }
      out->term_insn = insn;
      out->term_pc = pc;
      out->charges.push_back({pc, c_fall});
      out->taken_extra = c_taken - c_fall;
      out->cost_fall += c_fall;
      out->cost_taken += c_taken;
      ++out->n_retired;
      out->end = next;
      covered = i + 1;
      break;
    }
    if (!jit_can_compile(insn)) break;  // side-exit just before it
    const unsigned c = insn_cycle_charge(model, insn, false);
    out->body.push_back(insn);
    out->body_pc.push_back(pc);
    out->charges.push_back({pc, c});
    out->cost_fall += c;
    out->cost_taken += c;
    ++out->n_retired;
    out->end = next;
    covered = i + 1;
    pc = next;
  }

  if (out->n_retired == 0) return false;
  if (out->term == TermKind::Interp) out->fall_target = out->end;
  *truncated = covered < insns.size();
  return true;
}

}  // namespace rvdyn::emu::jit

#endif  // RVDYN_JIT_ENABLED
