// Runtime: the JIT's door into Machine private state, plus the C-ABI slow
// paths emitted code calls for TLB misses, page-crossing accesses, and
// instructions without a template.
#include "emu/jit/jit.hpp"

#if RVDYN_JIT_ENABLED

#include "common/bits.hpp"
#include "emu/jit/jit_ir.hpp"
#include "emu/machine.hpp"

namespace rvdyn::emu::jit {

JitState& Runtime::state(Machine& m) { return m.st_; }
Memory& Runtime::memory(Machine& m) { return m.mem_; }
const CycleModel& Runtime::model(Machine& m) { return m.model_; }
bool Runtime::profiling(Machine& m) { return m.pc_profile_enabled_; }

bool Runtime::exec_value(Machine& m, const isa::Instruction& insn,
                         std::uint64_t pc) {
  return m.exec_value(insn, pc);
}

void Runtime::profile_block(Machine& m, const BlockIR& ir, bool taken) {
  // Bit-exact with the interpreter's per-insn attribution: every retired
  // insn bumps hits and accrues its own cycle charge at its own pc; a
  // taken terminal accrues the redirect extra on top.
  for (const PcCharge& c : ir.charges) {
    Machine::PcCount& e = m.pc_profile_[c.pc];
    ++e.hits;
    e.cycles += c.charge;
  }
  if (taken && ir.term != TermKind::Interp)
    m.pc_profile_[ir.term_pc].cycles += ir.taken_extra;
}

std::uint8_t* Runtime::tlb_fill(JitState& st, std::uint64_t addr) {
  Machine& m = *static_cast<Machine*>(st.machine);
  std::uint8_t* base = m.mem_.page_ptr(addr);  // page base, zero-fill on touch
  const std::uint64_t page = addr >> Memory::kPageBits;
  const unsigned idx = page & (kTlbEntries - 1);
  st.tlb_tag[idx] = page;
  st.tlb_host[idx] = base;
  return base + (addr & (Memory::kPageSize - 1));
}

std::uint8_t* Runtime::tlb_fill_w(JitState& st, std::uint64_t addr) {
  Machine& m = *static_cast<Machine*>(st.machine);
  // page_ptr_w marks the page dirty before the write TLB can serve any
  // inline store to it — the invariant exact dirty tracking rests on.
  std::uint8_t* base = m.mem_.page_ptr_w(addr);
  const std::uint64_t page = addr >> Memory::kPageBits;
  const unsigned idx = page & (kTlbEntries - 1);
  st.tlb_wtag[idx] = page;
  st.tlb_whost[idx] = base;
  // A writable page is readable too; warm the read entry as well.
  st.tlb_tag[idx] = page;
  st.tlb_host[idx] = base;
  return base + (addr & (Memory::kPageSize - 1));
}

}  // namespace rvdyn::emu::jit

using rvdyn::emu::jit::JitState;
using rvdyn::emu::jit::Runtime;

extern "C" std::uint64_t rvdyn_jit_load(JitState* st, std::uint64_t addr,
                                        std::uint32_t size_sign) {
  const unsigned size = size_sign & 0xff;
  auto& m = *static_cast<rvdyn::emu::Machine*>(st->machine);
  std::uint64_t v = Runtime::memory(m).read(addr, size);
  if (size_sign & 0x100)
    v = static_cast<std::uint64_t>(rvdyn::sext(v, 8 * size));
  Runtime::tlb_fill(*st, addr);  // warm the entry for the next access
  return v;
}

extern "C" void rvdyn_jit_store(JitState* st, std::uint64_t addr,
                                std::uint64_t value, std::uint32_t size) {
  auto& m = *static_cast<rvdyn::emu::Machine*>(st->machine);
  Runtime::memory(m).write(addr, value, size);
  Runtime::tlb_fill_w(*st, addr);
}

extern "C" void rvdyn_jit_value(JitState* st, const void* insn,
                                std::uint64_t pc) {
  auto& m = *static_cast<rvdyn::emu::Machine*>(st->machine);
  Runtime::exec_value(m, *static_cast<const rvdyn::isa::Instruction*>(insn),
                      pc);
}

extern "C" void rvdyn_jit_profile(JitState* st, const void* meta,
                                  std::uint64_t taken) {
  auto& m = *static_cast<rvdyn::emu::Machine*>(st->machine);
  Runtime::profile_block(
      m, *static_cast<const rvdyn::emu::jit::BlockIR*>(meta), taken != 0);
}

#endif  // RVDYN_JIT_ENABLED
