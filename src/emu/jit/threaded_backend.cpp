// Threaded-code backend: each compiled block is an array of pre-decoded
// continuation ops (function pointer + JitState byte offsets + immediate),
// executed by tail-dispatch — every handler returns the next op. This is
// the portable fallback for hosts where the x64 template backend can't run
// (non-x86 ISAs, or W^X policies that refuse an RWX arena).
#include "emu/jit/backend.hpp"

#if RVDYN_JIT_ENABLED

#include <array>
#include <bit>
#include <cstddef>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bits.hpp"

#include "emu/jit/jit_ir.hpp"
#include "emu/machine.hpp"
#include "isa/op_program.hpp"

namespace rvdyn::emu::jit {
namespace {

using isa::Mnemonic;

struct TOp;
using TOpFn = const TOp* (*)(const TOp*, JitState&);

struct TOp {
  TOpFn fn = nullptr;
  std::uint16_t a = 0, b = 0, c = 0;  ///< JitState byte offsets
  std::int64_t imm = 0;
  const void* aux = nullptr;  ///< generic op: the decoded Instruction
};

inline std::uint64_t& R(JitState& st, unsigned off) {
  return *reinterpret_cast<std::uint64_t*>(reinterpret_cast<char*>(&st) +
                                           off);
}

constexpr unsigned x_off(unsigned r) {
  return static_cast<unsigned>(offsetof(JitState, x)) + 8 * r;
}
constexpr unsigned f_off(unsigned r) {
  return static_cast<unsigned>(offsetof(JitState, f)) + 8 * r;
}
constexpr unsigned sink_off() {
  return static_cast<unsigned>(offsetof(JitState, sink));
}
/// Write offset for integer rd: x0 writes land in the sink so x[0] == 0
/// stays invariant.
constexpr unsigned xw(unsigned r) { return r == 0 ? sink_off() : x_off(r); }

inline double D(std::uint64_t v) { return std::bit_cast<double>(v); }
inline std::uint64_t DU(double d) { return std::bit_cast<std::uint64_t>(d); }

// ---- handlers ----------------------------------------------------------

const TOp* t_end(const TOp*, JitState&) { return nullptr; }

const TOp* t_li(const TOp* op, JitState& st) {
  R(st, op->a) = static_cast<std::uint64_t>(op->imm);
  return op + 1;
}
const TOp* t_mv64(const TOp* op, JitState& st) {  // fmv.d.x / fmv.x.d
  R(st, op->a) = R(st, op->b);
  return op + 1;
}

#define BINOP(name, expr)                                  \
  const TOp* name(const TOp* op, JitState& st) {           \
    const std::uint64_t x = R(st, op->b);                  \
    const std::uint64_t y = R(st, op->c);                  \
    (void)x; (void)y;                                      \
    R(st, op->a) = (expr);                                 \
    return op + 1;                                         \
  }
#define IMMOP(name, expr)                                  \
  const TOp* name(const TOp* op, JitState& st) {           \
    const std::uint64_t x = R(st, op->b);                  \
    const std::uint64_t y = static_cast<std::uint64_t>(op->imm); \
    (void)x; (void)y;                                      \
    R(st, op->a) = (expr);                                 \
    return op + 1;                                         \
  }

using i64 = std::int64_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using u32 = std::uint32_t;

IMMOP(t_addi, x + y)
IMMOP(t_andi, x & y)
IMMOP(t_ori, x | y)
IMMOP(t_xori, x ^ y)
IMMOP(t_slti, static_cast<i64>(x) < static_cast<i64>(y) ? 1 : 0)
IMMOP(t_sltiu, x < y ? 1 : 0)
IMMOP(t_slli, x << (y & 63))
IMMOP(t_srli, x >> (y & 63))
IMMOP(t_srai, static_cast<u64>(static_cast<i64>(x) >> (y & 63)))
IMMOP(t_addiw, static_cast<u64>(static_cast<i64>(static_cast<i32>(x + y))))
IMMOP(t_slliw, static_cast<u64>(static_cast<i64>(
                   static_cast<i32>(static_cast<u32>(x) << (y & 31)))))
IMMOP(t_srliw, static_cast<u64>(static_cast<i64>(
                   static_cast<i32>(static_cast<u32>(x) >> (y & 31)))))
IMMOP(t_sraiw,
      static_cast<u64>(static_cast<i64>(static_cast<i32>(x) >> (y & 31))))

BINOP(t_add, x + y)
BINOP(t_sub, x - y)
BINOP(t_and, x & y)
BINOP(t_or, x | y)
BINOP(t_xor, x ^ y)
BINOP(t_slt, static_cast<i64>(x) < static_cast<i64>(y) ? 1 : 0)
BINOP(t_sltu, x < y ? 1 : 0)
BINOP(t_sll, x << (y & 63))
BINOP(t_srl, x >> (y & 63))
BINOP(t_sra, static_cast<u64>(static_cast<i64>(x) >> (y & 63)))
BINOP(t_addw, static_cast<u64>(static_cast<i64>(static_cast<i32>(x + y))))
BINOP(t_subw, static_cast<u64>(static_cast<i64>(static_cast<i32>(x - y))))
BINOP(t_sllw, static_cast<u64>(static_cast<i64>(
                  static_cast<i32>(static_cast<u32>(x) << (y & 31)))))
BINOP(t_srlw, static_cast<u64>(static_cast<i64>(
                  static_cast<i32>(static_cast<u32>(x) >> (y & 31)))))
BINOP(t_sraw,
      static_cast<u64>(static_cast<i64>(static_cast<i32>(x) >> (y & 31))))
BINOP(t_mul, x * y)
BINOP(t_mulw, static_cast<u64>(static_cast<i64>(static_cast<i32>(x * y))))

BINOP(t_fadd_d, DU(D(x) + D(y)))
BINOP(t_fsub_d, DU(D(x) - D(y)))
BINOP(t_fmul_d, DU(D(x) * D(y)))
BINOP(t_fdiv_d, DU(D(x) / D(y)))

#undef BINOP
#undef IMMOP

// Loads: b = base reg offset, imm = displacement, a = destination offset.
template <unsigned Size, bool Sign, bool Box>
const TOp* t_load(const TOp* op, JitState& st) {
  const u64 addr = R(st, op->b) + static_cast<u64>(op->imm);
  u64 v;
  if (std::uint8_t* h = tlb_lookup(st, addr, Size)) {
    v = 0;
    std::memcpy(&v, h, Size);
    if constexpr (Sign) v = static_cast<u64>(sext(v, 8 * Size));
  } else {
    v = rvdyn_jit_load(&st, addr, Size | (Sign ? 0x100 : 0));
  }
  if constexpr (Box) v |= 0xffffffff00000000ULL;  // flw NaN-boxing
  R(st, op->a) = v;
  return op + 1;
}

// Stores: a = value reg offset, b = base reg offset, imm = displacement.
template <unsigned Size>
const TOp* t_store(const TOp* op, JitState& st) {
  const u64 addr = R(st, op->b) + static_cast<u64>(op->imm);
  const u64 v = R(st, op->a);
  if (std::uint8_t* h = tlb_lookup_w(st, addr, Size)) std::memcpy(h, &v, Size);
  else rvdyn_jit_store(&st, addr, v, Size);
  return op + 1;
}

const TOp* t_generic(const TOp* op, JitState& st) {
  rvdyn_jit_value(&st, op->aux, static_cast<u64>(op->imm));
  return op + 1;
}

/// Deliberately-wrong template for the lockstep oracle's meta-test.
const TOp* t_sabotage(const TOp* op, JitState& st) {
  R(st, op->a) ^= 1;
  return op + 1;
}

// ---- block compilation -------------------------------------------------

struct TBlock {
  BlockIR ir;
  std::vector<TOp> ops;
  TBlock* chain_taken = nullptr;
  TBlock* chain_fall = nullptr;
};

TOp lower(const isa::Instruction& insn, std::uint64_t pc) {
  const isa::OperandProgram p = isa::operand_program(insn);
  TOp op;
  const auto rr = [&](unsigned i) {
    return p.src_fp[i] ? f_off(p.src[i]) : x_off(p.src[i]);
  };
  const auto rd = [&] { return p.rd_fp ? f_off(p.rd) : xw(p.rd); };
  const auto bin = [&](TOpFn fn) {
    op.fn = fn;
    op.a = rd();
    op.b = rr(0);
    op.c = p.n_src > 1 ? rr(1) : rr(0);
  };
  const auto immop = [&](TOpFn fn) {
    op.fn = fn;
    op.a = rd();
    op.b = rr(0);
    op.imm = p.imm;
  };
  const auto load = [&](TOpFn fn) {
    op.fn = fn;
    op.a = rd();
    op.b = x_off(p.mem_base);
    op.imm = p.mem_disp;
  };
  const auto store = [&](TOpFn fn) {
    op.fn = fn;
    op.a = rr(0);
    op.b = x_off(p.mem_base);
    op.imm = p.mem_disp;
  };

  switch (insn.mnemonic()) {
    case Mnemonic::lui:
      op.fn = t_li;
      op.a = xw(p.rd);
      op.imm = p.imm;
      break;
    case Mnemonic::auipc:
      op.fn = t_li;
      op.a = xw(p.rd);
      op.imm = static_cast<std::int64_t>(pc + static_cast<u64>(p.imm));
      break;
    case Mnemonic::addi: immop(t_addi); break;
    case Mnemonic::andi: immop(t_andi); break;
    case Mnemonic::ori: immop(t_ori); break;
    case Mnemonic::xori: immop(t_xori); break;
    case Mnemonic::slti: immop(t_slti); break;
    case Mnemonic::sltiu: immop(t_sltiu); break;
    case Mnemonic::slli: immop(t_slli); break;
    case Mnemonic::srli: immop(t_srli); break;
    case Mnemonic::srai: immop(t_srai); break;
    case Mnemonic::addiw: immop(t_addiw); break;
    case Mnemonic::slliw: immop(t_slliw); break;
    case Mnemonic::srliw: immop(t_srliw); break;
    case Mnemonic::sraiw: immop(t_sraiw); break;
    case Mnemonic::add: bin(t_add); break;
    case Mnemonic::sub: bin(t_sub); break;
    case Mnemonic::and_: bin(t_and); break;
    case Mnemonic::or_: bin(t_or); break;
    case Mnemonic::xor_: bin(t_xor); break;
    case Mnemonic::slt: bin(t_slt); break;
    case Mnemonic::sltu: bin(t_sltu); break;
    case Mnemonic::sll: bin(t_sll); break;
    case Mnemonic::srl: bin(t_srl); break;
    case Mnemonic::sra: bin(t_sra); break;
    case Mnemonic::addw: bin(t_addw); break;
    case Mnemonic::subw: bin(t_subw); break;
    case Mnemonic::sllw: bin(t_sllw); break;
    case Mnemonic::srlw: bin(t_srlw); break;
    case Mnemonic::sraw: bin(t_sraw); break;
    case Mnemonic::mul: bin(t_mul); break;
    case Mnemonic::mulw: bin(t_mulw); break;
    case Mnemonic::fadd_d: bin(t_fadd_d); break;
    case Mnemonic::fsub_d: bin(t_fsub_d); break;
    case Mnemonic::fmul_d: bin(t_fmul_d); break;
    case Mnemonic::fdiv_d: bin(t_fdiv_d); break;
    case Mnemonic::fmv_d_x:
    case Mnemonic::fmv_x_d:
      op.fn = t_mv64;
      op.a = rd();
      op.b = rr(0);
      break;
    case Mnemonic::lb: load(t_load<1, true, false>); break;
    case Mnemonic::lbu: load(t_load<1, false, false>); break;
    case Mnemonic::lh: load(t_load<2, true, false>); break;
    case Mnemonic::lhu: load(t_load<2, false, false>); break;
    case Mnemonic::lw: load(t_load<4, true, false>); break;
    case Mnemonic::lwu: load(t_load<4, false, false>); break;
    case Mnemonic::ld: load(t_load<8, false, false>); break;
    case Mnemonic::fld: load(t_load<8, false, false>); break;
    case Mnemonic::flw: load(t_load<4, false, true>); break;
    case Mnemonic::sb: store(t_store<1>); break;
    case Mnemonic::sh: store(t_store<2>); break;
    case Mnemonic::sw: store(t_store<4>); break;
    case Mnemonic::sd: store(t_store<8>); break;
    case Mnemonic::fsw: store(t_store<4>); break;
    case Mnemonic::fsd: store(t_store<8>); break;
    default:
      op.fn = t_generic;
      op.imm = static_cast<std::int64_t>(pc);
      // aux is bound by the caller once the block's IR storage is final
      break;
  }
  return op;
}

class ThreadedTier final : public Tier {
 public:
  explicit ThreadedTier(const Config& cfg) : Tier(cfg) {
    dispatch_tag_.fill(~0ULL);
    dispatch_.fill(nullptr);
  }

  const char* backend_name() const override { return "threaded"; }

 protected:
  bool emit_block(Machine&, const BlockIR& ir) override {
    auto blk = std::make_unique<TBlock>();
    blk->ir = ir;
    blk->ops.reserve(blk->ir.body.size() * 2 + 1);
    for (std::size_t i = 0; i < blk->ir.body.size(); ++i) {
      const isa::Instruction& insn = blk->ir.body[i];
      TOp op = lower(insn, blk->ir.body_pc[i]);
      if (op.fn == t_generic) op.aux = &blk->ir.body[i];
      blk->ops.push_back(op);
      if (insn.mnemonic() == cfg_.sabotage) {
        const isa::OperandProgram p = isa::operand_program(insn);
        if (p.has_rd && !p.rd_fp && p.rd != 0)
          blk->ops.push_back({t_sabotage, static_cast<std::uint16_t>(
                                              x_off(p.rd)),
                              0, 0, 0, nullptr});
      }
    }
    blk->ops.push_back({t_end, 0, 0, 0, 0, nullptr});
    blocks_[ir.start] = std::move(blk);
    return true;
  }

  bool has_block(std::uint64_t pc) const override {
    return blocks_.count(pc) != 0;
  }

  void run_session(Machine& m) override {
    JitState& st = Runtime::state(m);
    const bool prof = Runtime::profiling(m);
    TBlock* blk = find(st.pc);
    for (;;) {
      const BlockIR& ir = blk->ir;
      if (st.budget < ir.n_retired) {
        st.exit_kind = kExitBudget;
        st.pc = ir.start;
        return;
      }
      st.budget -= ir.n_retired;
      ++st.blocks_entered;
      const TOp* op = blk->ops.data();
      while (op) op = op->fn(op, st);

      std::uint64_t target;
      TBlock** chain;
      switch (ir.term) {
        case TermKind::Interp:
          st.instret += ir.n_retired;
          st.cycles += ir.cost_fall;
          if (prof) Runtime::profile_block(m, ir, false);
          st.pc = ir.fall_target;
          st.exit_kind = kExitInterp;
          return;
        case TermKind::CondBranch: {
          const bool taken = branch_takes(ir.term_insn.mnemonic(),
                                          st.x[ir.br_rs1], st.x[ir.br_rs2]);
          st.instret += ir.n_retired;
          st.cycles += taken ? ir.cost_taken : ir.cost_fall;
          if (prof) Runtime::profile_block(m, ir, taken);
          target = taken ? ir.taken_target : ir.fall_target;
          chain = taken ? &blk->chain_taken : &blk->chain_fall;
          break;
        }
        case TermKind::Jal:
          if (ir.link_rd) st.x[ir.link_rd] = ir.link_value;
          st.instret += ir.n_retired;
          st.cycles += ir.cost_taken;
          if (prof) Runtime::profile_block(m, ir, true);
          target = ir.taken_target;
          chain = &blk->chain_taken;
          break;
        case TermKind::Jalr: {
          target = (st.x[ir.jalr_rs1] + static_cast<std::uint64_t>(
                                            ir.jalr_imm)) &
                   ~1ULL;
          if (ir.link_rd) st.x[ir.link_rd] = ir.link_value;
          st.instret += ir.n_retired;
          st.cycles += ir.cost_taken;
          if (prof) Runtime::profile_block(m, ir, true);
          const unsigned idx = (target >> 1) & (kDispatchEntries - 1);
          TBlock* next;
          if (dispatch_tag_[idx] == target) {
            next = dispatch_[idx];
            ++st.dispatch_hits;
          } else {
            next = find(target);
            if (next) {
              dispatch_tag_[idx] = target;
              dispatch_[idx] = next;
              ++stats_.dispatch_entries;
            }
          }
          if (next) {
            blk = next;
            continue;
          }
          st.pc = target;
          st.exit_kind = kExitDispatch;
          return;
        }
        default: return;  // unreachable
      }
      TBlock* next = *chain;
      if (!next) {
        next = find(target);
        if (next) {
          *chain = next;
          ++stats_.chains_installed;
        }
      }
      if (next) {
        blk = next;
        continue;
      }
      st.pc = target;
      st.exit_kind = kExitEdge;
      return;
    }
  }

  std::uint64_t drop_range(std::uint64_t lo, std::uint64_t hi) override {
    // Keep dropped blocks alive until the unchain sweep is done so the
    // pointer comparisons below stay well-defined.
    std::vector<std::unique_ptr<TBlock>> dead_list;
    std::unordered_set<const TBlock*> dead;
    for (auto it = blocks_.begin(); it != blocks_.end();) {
      const BlockIR& ir = it->second->ir;
      if (ir.start < hi && ir.end > lo) {
        dead.insert(it->second.get());
        dead_list.push_back(std::move(it->second));
        it = blocks_.erase(it);
      } else {
        ++it;
      }
    }
    if (dead.empty()) return 0;
    for (auto& [pc, b] : blocks_) {
      if (b->chain_taken && dead.count(b->chain_taken)) {
        b->chain_taken = nullptr;
        ++stats_.chains_broken;
      }
      if (b->chain_fall && dead.count(b->chain_fall)) {
        b->chain_fall = nullptr;
        ++stats_.chains_broken;
      }
    }
    for (std::size_t i = 0; i < dispatch_.size(); ++i) {
      if (dispatch_[i] && dead.count(dispatch_[i])) {
        dispatch_[i] = nullptr;
        dispatch_tag_[i] = ~0ULL;
      }
    }
    return dead.size();
  }

  std::uint64_t drop_all() override {
    const std::uint64_t n = blocks_.size();
    blocks_.clear();
    dispatch_tag_.fill(~0ULL);
    dispatch_.fill(nullptr);
    return n;
  }

 private:
  TBlock* find(std::uint64_t pc) {
    const auto it = blocks_.find(pc);
    return it == blocks_.end() ? nullptr : it->second.get();
  }

  static constexpr std::size_t kDispatchEntries = 4096;
  std::unordered_map<std::uint64_t, std::unique_ptr<TBlock>> blocks_;
  std::array<std::uint64_t, kDispatchEntries> dispatch_tag_;
  std::array<TBlock*, kDispatchEntries> dispatch_;
};

}  // namespace

std::unique_ptr<Tier> make_threaded_tier(const Config& cfg) {
  return std::make_unique<ThreadedTier>(cfg);
}

}  // namespace rvdyn::emu::jit

#endif  // RVDYN_JIT_ENABLED
