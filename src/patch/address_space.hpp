// AddressSpace: the backend a relocation commit targets (paper §2.2's
// unified static/dynamic instrumentation model).
//
// The pass-based relocation engine produces one PatchPlan — patch-area
// regions, springboard writes and the trap table — and applies it through
// this interface. Two backends exist:
//  - SymtabSpace (here): static rewriting into a symtab::Symtab model,
//    materializing .rvdyn.* sections and rvdyn$ symbols;
//  - proccontrol::ProcessSpace: dynamic instrumentation of a live
//    (emulated) process, writing through the machine's decode-cache-aware
//    code path and installing trap redirects in the debugger runtime.
// Because both speak the same interface, BinaryEditor::commit_to() and
// revert_from() are the single implementation of instrumentation
// insertion *and* removal — there is no byte-delta side channel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "symtab/symtab.hpp"

namespace rvdyn::patch {

/// One entry of the .rvdyn.traps table (trap-springboard redirect): when
/// the process stops on the trap at `from`, the runtime redirects to `to`.
struct TrapEntry {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
};

/// A fresh region the engine wants mapped into the target (patch text or
/// patch data). Regions never overlap existing mutatee content.
struct MappedRegion {
  std::string name;  ///< section name for file-backed targets (".rvdyn.text")
  std::uint64_t addr = 0;
  std::vector<std::uint8_t> bytes;
  bool executable = false;
  bool writable = false;
};

/// A named instrumentation variable inside a mapped data region.
struct RegionSymbol {
  std::string name;  ///< exported as "rvdyn$<name>" where symbols exist
  std::uint64_t addr = 0;
  std::uint64_t size = 0;
};

/// The mutatee-side surface a relocation commit writes through. All
/// methods may throw Error on addresses outside the target's mapped code.
class AddressSpace {
 public:
  virtual ~AddressSpace() = default;

  /// Backend name for diagnostics ("symtab", "process").
  virtual const char* backend() const = 0;

  /// Map a fresh patch region (allocates a section / writes fresh pages).
  virtual void map_region(const MappedRegion& region) = 0;

  /// Overwrite existing mutatee code in place (springboards, breakpoint
  /// bytes). Implementations must invalidate any cached decode state.
  virtual void write_code(std::uint64_t addr, const std::uint8_t* data,
                          std::size_t n) = 0;

  /// Current code bytes at `addr` (undo capture, verification).
  virtual std::vector<std::uint8_t> read_code(std::uint64_t addr,
                                              std::size_t n) const = 0;

  /// Export a symbol for a variable in a mapped region. Optional: targets
  /// without a symbol table ignore it.
  virtual void define_symbol(const RegionSymbol& sym) { (void)sym; }

  /// Install / remove trap-springboard redirects.
  virtual void install_traps(const std::vector<TrapEntry>& traps) = 0;
  virtual void remove_traps(const std::vector<TrapEntry>& traps) = 0;
};

/// Static-rewriter backend: applies the plan to an in-memory ELF model.
/// The Symtab must outlive the space.
class SymtabSpace : public AddressSpace {
 public:
  explicit SymtabSpace(symtab::Symtab* out) : out_(out) {}

  const char* backend() const override { return "symtab"; }
  void map_region(const MappedRegion& region) override;
  void write_code(std::uint64_t addr, const std::uint8_t* data,
                  std::size_t n) override;
  std::vector<std::uint8_t> read_code(std::uint64_t addr,
                                      std::size_t n) const override;
  void define_symbol(const RegionSymbol& sym) override;
  void install_traps(const std::vector<TrapEntry>& traps) override;
  void remove_traps(const std::vector<TrapEntry>& traps) override;

 private:
  symtab::Symtab* out_;
};

/// Serialize / parse the .rvdyn.traps section payload (16 bytes per entry,
/// two little-endian u64s). Shared by SymtabSpace and the dynamic runtime.
std::vector<std::uint8_t> encode_trap_section(
    const std::vector<TrapEntry>& traps);
std::vector<TrapEntry> parse_trap_section(
    const std::vector<std::uint8_t>& data);

}  // namespace rvdyn::patch
