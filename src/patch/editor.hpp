// PatchAPI: snippet insertion and binary rewriting (paper §2.2, §3.3).
//
// BinaryEditor implements Dyninst's code-patching model: instrumented
// functions are regenerated whole — snippets inlined at their points, pc-
// relative material re-targeted — into a patch area (`.rvdyn.text`), and
// each original entry is overwritten with the cheapest in-range jump to
// the relocated version (paper §3.1.2's displacement ladder:
// c.j -> jal -> auipc+jalr -> trap). Instrumentation variables live in a
// fresh `.rvdyn.data` section. commit() yields a new, runnable ELF model:
// static rewriting. ProcControlAPI reuses the same machinery for dynamic
// instrumentation by applying the deltas to a live process instead.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "codegen/codegen.hpp"
#include "parse/cfg.hpp"
#include "patch/point.hpp"
#include "symtab/symtab.hpp"

namespace rvdyn::patch {

/// Counters for the rewrite, including the displacement-strategy ladder
/// (ablation A1) and dead-register usage (ablation A2).
struct RewriteStats {
  unsigned relocated_functions = 0;
  unsigned snippets_inserted = 0;
  unsigned snippet_insns = 0;
  unsigned entry_cj = 0;          ///< entries patched with a 2-byte c.j
  unsigned entry_jal = 0;         ///< 4-byte jal
  unsigned entry_auipc_jalr = 0;  ///< 8-byte auipc+jalr
  unsigned entry_trap = 0;        ///< 2/4-byte trap + trap-table entry
  codegen::GenStats gen;          ///< aggregated code-generation stats
};

/// One entry of the .rvdyn.traps section (trap-springboard table): when
/// the process stops on the trap at `from`, the runtime redirects to `to`.
struct TrapEntry {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
};

class BinaryEditor {
 public:
  /// Takes a copy of the binary; parses it immediately.
  explicit BinaryEditor(symtab::Symtab binary,
                        parse::ParseOptions popts = {});

  parse::CodeObject& code() { return *co_; }
  const parse::CodeObject& code() const { return *co_; }
  const symtab::Symtab& original() const { return binary_; }

  /// Allocate an instrumentation variable in the patch data area.
  codegen::Variable alloc_var(const std::string& name, std::uint8_t size = 8,
                              std::uint64_t initial = 0);

  /// Queue the paper's basic operation: insert snippet AST at point P.
  /// Multiple snippets at one point run in insertion order.
  void insert(const Point& p, codegen::SnippetPtr snippet);

  /// Convenience: insert at every point of `type` in function `func_entry`.
  void insert_at(std::uint64_t func_entry, PointType type,
                 codegen::SnippetPtr snippet);

  /// Whether to use liveness-guided dead-register allocation (default on;
  /// off reproduces the always-spill baseline of the paper's Table 1 x86
  /// column).
  void set_use_dead_registers(bool v) { use_dead_regs_ = v; }

  /// Base address for the relocation area (default 1 MiB above text, in
  /// jal range; ablations move it out of range to force auipc+jalr).
  void set_patch_base(std::uint64_t text_base, std::uint64_t data_base) {
    patch_text_base_ = text_base;
    patch_data_base_ = data_base;
  }

  /// Perform the rewrite and return the new binary model. Idempotent
  /// inputs: can be called once per editor.
  symtab::Symtab commit();

  const RewriteStats& stats() const { return stats_; }
  const std::vector<TrapEntry>& trap_table() const { return traps_; }

  /// Patch-area contents from the last commit(), exposed so
  /// ProcControlAPI can apply the identical rewrite to a live process.
  struct Delta {
    std::uint64_t addr;
    std::vector<std::uint8_t> bytes;
  };
  const std::vector<Delta>& deltas() const { return deltas_; }

  /// The original bytes each springboard overwrote — the inverse patch.
  /// ProcControlAPI uses these to *remove* instrumentation from a live
  /// process (the dual of apply_patch).
  const std::vector<Delta>& undo_deltas() const { return undo_deltas_; }

  /// Parse a .rvdyn.traps section payload (used by the dynamic runtime).
  static std::vector<TrapEntry> parse_trap_section(
      const std::vector<std::uint8_t>& data);

 private:
  symtab::Symtab binary_;
  std::unique_ptr<parse::CodeObject> co_;
  std::map<Point, std::vector<codegen::SnippetPtr>> insertions_;
  std::vector<std::uint8_t> var_data_;
  std::vector<std::pair<std::string, codegen::Variable>> vars_;
  bool use_dead_regs_ = true;
  std::uint64_t patch_text_base_ = 0x100000;
  std::uint64_t patch_data_base_ = 0x200000;
  RewriteStats stats_;
  std::vector<TrapEntry> traps_;
  std::vector<Delta> deltas_;
  std::vector<Delta> undo_deltas_;
  bool committed_ = false;
};

}  // namespace rvdyn::patch
