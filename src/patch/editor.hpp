// PatchAPI: snippet insertion and binary rewriting (paper §2.2, §3.3).
//
// BinaryEditor drives the pass-based relocation engine (patch/reloc/):
// instrumented functions are lowered to the widget IR, snippets are woven
// in, relocated code is RVC re-compressed and branch-relaxed to a fixed
// point, and the laid-out bytes land in a patch area (`.rvdyn.text`). Each
// original entry is overwritten with the cheapest in-range jump to the
// relocated version (paper §3.1.2's displacement ladder:
// c.j -> jal -> auipc+jalr -> trap).
//
// Commit semantics: the engine builds one immutable PatchPlan per editor
// session, then applies it through the AddressSpace interface —
// SymtabSpace for static rewriting, proccontrol::ProcessSpace for a live
// process. commit_to()/revert_from() may target any number of spaces (the
// plan is built once and reused); the symtab-returning commit() is a
// one-shot convenience whose second call fails with a Status error.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "codegen/codegen.hpp"
#include "parse/cfg.hpp"
#include "patch/address_space.hpp"
#include "patch/point.hpp"
#include "patch/reloc/mover.hpp"
#include "symtab/symtab.hpp"

namespace rvdyn::patch {

/// Counters for the rewrite, including the displacement-strategy ladder
/// (ablation A1) and dead-register usage (ablation A2).
struct RewriteStats {
  unsigned relocated_functions = 0;
  unsigned snippets_inserted = 0;
  unsigned snippet_insns = 0;
  unsigned entry_cj = 0;          ///< entries patched with a 2-byte c.j
  unsigned entry_jal = 0;         ///< 4-byte jal
  unsigned entry_auipc_jalr = 0;  ///< 8-byte auipc+jalr
  unsigned entry_trap = 0;        ///< 2/4-byte trap + trap-table entry
  codegen::GenStats gen;          ///< aggregated code-generation stats
  reloc::RelocStats reloc;        ///< pass-pipeline accounting
};

/// The complete, immutable product of one relocation session: everything a
/// backend needs to install (or remove) the instrumentation.
struct PatchPlan {
  MappedRegion text;  ///< .rvdyn.text (absent when bytes are empty)
  MappedRegion data;  ///< .rvdyn.data
  std::vector<RegionSymbol> symbols;

  struct SpringboardWrite {
    std::uint64_t addr = 0;
    std::vector<std::uint8_t> bytes;     ///< the springboard encoding
    std::vector<std::uint8_t> original;  ///< pre-patch bytes, for removal
  };
  std::vector<SpringboardWrite> springboards;
  std::vector<TrapEntry> traps;

  /// Where each springboarded original address lands in the patch area
  /// (debuggers use this to map original to relocated pcs).
  std::map<std::uint64_t, std::uint64_t> relocated_entry;
};

class BinaryEditor {
 public:
  /// Takes a copy of the binary; parses it immediately.
  explicit BinaryEditor(symtab::Symtab binary,
                        parse::ParseOptions popts = {});

  parse::CodeObject& code() { return *co_; }
  const parse::CodeObject& code() const { return *co_; }
  const symtab::Symtab& original() const { return binary_; }

  /// Allocate an instrumentation variable in the patch data area.
  codegen::Variable alloc_var(const std::string& name, std::uint8_t size = 8,
                              std::uint64_t initial = 0);

  /// Queue the paper's basic operation: insert snippet AST at point P.
  /// Multiple snippets at one point run in insertion order. Throws once a
  /// plan has been built (the session's insertion set is frozen).
  void insert(const Point& p, codegen::SnippetPtr snippet);

  /// Convenience: insert at every point of `type` in function `func_entry`.
  void insert_at(std::uint64_t func_entry, PointType type,
                 codegen::SnippetPtr snippet);

  /// Whether to use liveness-guided dead-register allocation (default on;
  /// off reproduces the always-spill baseline of the paper's Table 1 x86
  /// column).
  void set_use_dead_registers(bool v) { use_dead_regs_ = v; }

  /// Base address for the relocation area (default 1 MiB above text, in
  /// jal range; ablations move it out of range to force auipc+jalr).
  void set_patch_base(std::uint64_t text_base, std::uint64_t data_base) {
    patch_text_base_ = text_base;
    patch_data_base_ = data_base;
  }

  /// Apply the session's PatchPlan to `space` (built on first use). May
  /// target any number of address spaces — e.g. a static rewrite and a
  /// live process receive the identical plan. Returns a Status for
  /// contract errors; internal relocation failures still throw Error.
  Status commit_to(AddressSpace& space);

  /// Remove the instrumentation from `space`: restores every springboard's
  /// original bytes and uninstalls the trap redirects (the patch area
  /// itself stays mapped but becomes unreachable). Errors when no plan has
  /// been committed yet.
  Status revert_from(AddressSpace& space);

  /// One-shot static-rewrite convenience: returns a new binary model with
  /// the plan applied. A second call is a contract violation and throws
  /// the Status error (use commit_to() for multi-target sessions).
  symtab::Symtab commit();

  const RewriteStats& stats() const { return stats_; }
  const std::vector<TrapEntry>& trap_table() const { return traps_; }

  /// The session's plan, or nullptr before the first commit.
  const PatchPlan* plan() const { return plan_.get(); }

  /// Parse a .rvdyn.traps section payload (used by the dynamic runtime).
  static std::vector<TrapEntry> parse_trap_section(
      const std::vector<std::uint8_t>& data);

 private:
  void build_plan();

  symtab::Symtab binary_;
  std::unique_ptr<parse::CodeObject> co_;
  std::map<Point, std::vector<codegen::SnippetPtr>> insertions_;
  std::vector<std::uint8_t> var_data_;
  std::vector<std::pair<std::string, codegen::Variable>> vars_;
  bool use_dead_regs_ = true;
  std::uint64_t patch_text_base_ = 0x100000;
  std::uint64_t patch_data_base_ = 0x200000;
  RewriteStats stats_;
  std::vector<TrapEntry> traps_;
  std::unique_ptr<PatchPlan> plan_;
  bool static_committed_ = false;
};

}  // namespace rvdyn::patch
