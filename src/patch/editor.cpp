#include "patch/editor.hpp"

#include <algorithm>
#include <set>

#include "common/bits.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/summaries.hpp"
#include "isa/encoder.hpp"
#include "isa/imm_builder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rvdyn::patch {

namespace {

using codegen::SnippetPtr;
using isa::Instruction;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;
using parse::Block;
using parse::EdgeType;
using parse::Function;

Operand W(Reg r) { return Instruction::reg_op(r, Operand::kWrite); }
Operand R(Reg r) { return Instruction::reg_op(r, Operand::kRead); }

// Pick an integer caller-saved register from `dead`, or x0 when none.
Reg pick_dead_scratch(isa::RegSet dead) {
  static constexpr std::uint8_t kOrder[] = {5,  6,  7,  28, 29, 30, 31, 17,
                                            16, 15, 14, 13, 12, 11, 10};
  for (std::uint8_t n : kOrder)
    if (dead.contains(isa::x(n))) return isa::x(n);
  return isa::zero;
}

void append_raw(const Instruction& insn, std::vector<std::uint8_t>* out) {
  const std::uint32_t w = insn.raw();
  for (unsigned i = 0; i < insn.length(); ++i)
    out->push_back(static_cast<std::uint8_t>(w >> (8 * i)));
}

}  // namespace

BinaryEditor::BinaryEditor(symtab::Symtab binary, parse::ParseOptions popts)
    : binary_(std::move(binary)) {
  co_ = std::make_unique<parse::CodeObject>(binary_);
  co_->parse(popts);
  // Default patch area: 1 MiB region above the image (jal-reachable from
  // typical text bases, exercising the cheap strategies first).
  std::uint64_t top = 0;
  for (const auto& s : binary_.sections())
    if (s.is_alloc()) top = std::max(top, s.addr + s.size());
  patch_text_base_ = align_up(top + 0x10000, 0x1000);
  patch_data_base_ = patch_text_base_ + 0x100000;
}

codegen::Variable BinaryEditor::alloc_var(const std::string& name,
                                          std::uint8_t size,
                                          std::uint64_t initial) {
  if (plan_) throw Error("patch: cannot allocate after commit");
  var_data_.resize(align_up(var_data_.size(), size));
  codegen::Variable v;
  v.addr = patch_data_base_ + var_data_.size();
  v.size = size;
  v.name = name;
  for (unsigned i = 0; i < size; ++i)
    var_data_.push_back(static_cast<std::uint8_t>(initial >> (8 * i)));
  vars_.emplace_back(name, v);
  return v;
}

void BinaryEditor::insert(const Point& p, SnippetPtr snippet) {
  if (plan_) throw Error("patch: cannot insert after commit");
  insertions_[p].push_back(std::move(snippet));
  ++stats_.snippets_inserted;
}

void BinaryEditor::insert_at(std::uint64_t func_entry, PointType type,
                             SnippetPtr snippet) {
  const Function* f = co_->function_at(func_entry);
  if (!f) throw Error("patch: no function at the given entry");
  for (const Point& p : find_points(*f, type)) insert(p, snippet);
}

std::vector<TrapEntry> BinaryEditor::parse_trap_section(
    const std::vector<std::uint8_t>& data) {
  return patch::parse_trap_section(data);
}

void BinaryEditor::build_plan() {
  if (plan_) return;
  RVDYN_OBS_SPAN("rvdyn.patch.commit");
  auto plan = std::make_unique<PatchPlan>();

  // Group insertions by function.
  std::map<std::uint64_t, std::vector<std::pair<Point, SnippetPtr>>> by_func;
  for (const auto& [p, snippets] : insertions_)
    for (const auto& s : snippets) by_func[p.func].emplace_back(p, s);

  const isa::ExtensionSet exts = binary_.extensions();
  const bool rvc = exts.has(isa::Extension::C);
  codegen::GenOptions gopts;
  gopts.extensions = exts;
  gopts.extensions.remove(isa::Extension::C);  // generator emits 4-byte forms
  gopts.use_dead_registers = use_dead_regs_;
  codegen::CodeGenerator gen(gopts);

  // Interprocedural register summaries sharpen liveness at call
  // boundaries: callees that ignore argument registers leave them dead for
  // the instrumentation to use.
  const dataflow::Summaries summaries(*co_);

  reloc::CodeMover mover(patch_text_base_, rvc, &gen, &summaries);

  struct Springboard {
    std::uint64_t at;      // original address to patch
    std::uint64_t budget;  // overwritable bytes
    std::uint64_t block;   // relocated label key
    isa::RegSet dead;      // dead registers at the original point
  };
  std::vector<Springboard> boards;

  for (const auto& [fentry, items] : by_func) {
    const Function* f = co_->function_at(fentry);
    if (!f) throw Error("patch: unknown function in insertion set");
    ++stats_.relocated_functions;

    // Sort snippets by anchor kind for the lowering pass.
    reloc::WeaveSpec spec;
    for (const auto& [p, s] : items) {
      switch (p.type) {
        case PointType::FuncEntry:
          spec.at_block_entry[f->entry()].push_back(s);
          break;
        case PointType::BlockEntry:
          spec.at_block_entry[p.block].push_back(s);
          break;
        case PointType::FuncExit:
        case PointType::CallSite:
          spec.before_term[p.block].push_back(s);
          break;
        case PointType::Instruction:
          spec.before_insn[p.aux].push_back(s);
          break;
        case PointType::Edge:
        case PointType::LoopEntry:
        case PointType::LoopBackedge:
          spec.on_edge[{p.block, p.aux}].push_back(s);
          break;
      }
    }
    mover.add_function(f, std::move(spec));

    // ---- springboards: function entry + indirect-jump targets ----
    // After relocation the original function body is dead except at the
    // springboarded addresses themselves, so each springboard may overwrite
    // everything up to the next springboard (or the function's extent end),
    // not just its own basic block. This lets 2-byte entry blocks take a
    // full jal/auipc+jalr instead of degrading to a trap.
    dataflow::Liveness live(*f, &summaries);
    std::set<std::uint64_t> boarded{f->entry()};
    for (const auto& [a, b] : f->blocks())
      for (const parse::Edge& e : b->succs())
        if (e.type == EdgeType::IndirectJump && f->block_at(e.target))
          boarded.insert(e.target);
    const std::uint64_t extent_end = f->extent_end();
    for (auto it = boarded.begin(); it != boarded.end(); ++it) {
      const Block* blk = f->block_at(*it);
      if (!blk) continue;
      auto next = std::next(it);
      const std::uint64_t limit = next != boarded.end() ? *next : extent_end;
      Springboard sb;
      sb.at = *it;
      sb.budget = limit > *it ? limit - *it : blk->end() - blk->start();
      sb.block = *it;
      sb.dead = live.dead_before(blk, 0);
      boards.push_back(sb);
    }
  }

  // ---- run the relocation pipeline ----
  const std::vector<std::uint8_t>& text = mover.run();
  stats_.reloc = mover.stats();
  stats_.gen = stats_.reloc.gen;
  stats_.snippet_insns = stats_.reloc.snippet_insns;

  // ---- springboard ladder: c.j -> jal -> auipc+jalr -> trap ----
  for (const Springboard& sb : boards) {
    const std::uint64_t target = mover.label_addr(sb.block);
    plan->relocated_entry[sb.at] = target;
    const std::int64_t delta = static_cast<std::int64_t>(target) -
                               static_cast<std::int64_t>(sb.at);
    std::vector<std::uint8_t> bytes;
    if (rvc && sb.budget >= 2 && fits_signed(delta, 12)) {
      const Instruction j = isa::assemble(
          Mnemonic::jal, {W(isa::zero), Instruction::pcrel_op(delta)});
      const auto half = isa::compress(j);
      if (half) {
        bytes = {static_cast<std::uint8_t>(*half & 0xff),
                 static_cast<std::uint8_t>(*half >> 8)};
        ++stats_.entry_cj;
      }
    }
    if (bytes.empty() && sb.budget >= 4 && fits_signed(delta, 21)) {
      append_raw(isa::assemble(Mnemonic::jal,
                               {W(isa::zero), Instruction::pcrel_op(delta)}),
                 &bytes);
      ++stats_.entry_jal;
    }
    if (bytes.empty() && sb.budget >= 8) {
      const Reg scratch = pick_dead_scratch(sb.dead);
      std::int64_t hi, lo;
      if (!(scratch == isa::zero) && isa::split_hi_lo(delta, &hi, &lo)) {
        append_raw(isa::assemble(Mnemonic::auipc,
                                 {W(scratch), Instruction::imm_op(hi)}),
                   &bytes);
        append_raw(isa::assemble(Mnemonic::jalr, {W(isa::zero), R(scratch),
                                                  Instruction::imm_op(lo)}),
                   &bytes);
        ++stats_.entry_auipc_jalr;
      }
    }
    if (bytes.empty()) {
      // Worst case (paper §3.1.2): a trap instruction plus a trap-table
      // entry the runtime uses to redirect control.
      if (rvc && sb.budget >= 2) {
        bytes = {0x02, 0x90};  // c.ebreak
      } else if (sb.budget >= 4) {
        bytes = {0x73, 0x00, 0x10, 0x00};  // ebreak
      } else {
        throw Error("patch: function too small for any springboard");
      }
      plan->traps.push_back({sb.at, target});
      ++stats_.entry_trap;
    }

    PatchPlan::SpringboardWrite write;
    write.addr = sb.at;
    const symtab::Section* sec = binary_.section_containing(sb.at);
    if (!sec || sec->type == symtab::SHT_NOBITS)
      throw Error("patch: springboard address not in a section");
    const std::uint8_t* at = sec->data.data() + (sb.at - sec->addr);
    write.original.assign(at, at + bytes.size());
    write.bytes = std::move(bytes);
    plan->springboards.push_back(std::move(write));
  }

  // ---- patch regions ----
  plan->text.name = ".rvdyn.text";
  plan->text.addr = patch_text_base_;
  plan->text.bytes = text;
  plan->text.executable = true;
  plan->data.name = ".rvdyn.data";
  plan->data.addr = patch_data_base_;
  plan->data.bytes = var_data_;
  plan->data.writable = true;
  for (const auto& [name, v] : vars_)
    plan->symbols.push_back({name, v.addr, v.size});

  traps_ = plan->traps;
  plan_ = std::move(plan);

#if RVDYN_OBS_ENABLED
  RVDYN_OBS_COUNT_N("rvdyn.patch.snippets_inserted", stats_.snippets_inserted);
  RVDYN_OBS_COUNT_N("rvdyn.patch.snippet_insns", stats_.snippet_insns);
  RVDYN_OBS_COUNT_N("rvdyn.patch.relocated_functions",
                    stats_.relocated_functions);
  RVDYN_OBS_COUNT_N("rvdyn.patch.entry_cj", stats_.entry_cj);
  RVDYN_OBS_COUNT_N("rvdyn.patch.entry_jal", stats_.entry_jal);
  RVDYN_OBS_COUNT_N("rvdyn.patch.entry_auipc_jalr", stats_.entry_auipc_jalr);
  RVDYN_OBS_COUNT_N("rvdyn.patch.entry_trap", stats_.entry_trap);
  RVDYN_OBS_COUNT_N("rvdyn.patch.scratch_from_dead",
                    stats_.gen.scratch_from_dead);
  RVDYN_OBS_COUNT_N("rvdyn.patch.scratch_spilled", stats_.gen.scratch_spilled);
  RVDYN_OBS_COUNT_N("rvdyn.patch.relax_iterations",
                    stats_.reloc.relax_iterations);
  RVDYN_OBS_COUNT_N("rvdyn.patch.rvc_recompressed",
                    stats_.reloc.rvc_recompressed);
  RVDYN_OBS_COUNT_N("rvdyn.patch.branch_long", stats_.reloc.branch_long);
  if (stats_.snippets_inserted)
    RVDYN_OBS_HIST("rvdyn.patch.snippet_size",
                   stats_.snippet_insns / stats_.snippets_inserted);
  RVDYN_OBS_GAUGE("rvdyn.patch.text_bytes", plan_->text.bytes.size());
  RVDYN_OBS_GAUGE("rvdyn.patch.data_bytes", plan_->data.bytes.size());
  RVDYN_OBS_GAUGE("rvdyn.patch.text_bytes_before_rvc",
                  stats_.reloc.bytes_before_rvc);
#endif
}

Status BinaryEditor::commit_to(AddressSpace& space) {
  build_plan();
  RVDYN_OBS_SPAN("rvdyn.patch.apply");
  RVDYN_OBS_COUNT("rvdyn.patch.commits");
  if (!plan_->text.bytes.empty()) space.map_region(plan_->text);
  if (!plan_->data.bytes.empty()) {
    space.map_region(plan_->data);
    for (const RegionSymbol& s : plan_->symbols) space.define_symbol(s);
  }
  for (const PatchPlan::SpringboardWrite& sb : plan_->springboards)
    space.write_code(sb.addr, sb.bytes.data(), sb.bytes.size());
  if (!plan_->traps.empty()) space.install_traps(plan_->traps);
  return Status::ok();
}

Status BinaryEditor::revert_from(AddressSpace& space) {
  if (!plan_)
    return Status::error("patch: revert_from() before any commit");
  RVDYN_OBS_SPAN("rvdyn.patch.revert");
  RVDYN_OBS_COUNT("rvdyn.patch.reverts");
  for (const PatchPlan::SpringboardWrite& sb : plan_->springboards)
    space.write_code(sb.addr, sb.original.data(), sb.original.size());
  if (!plan_->traps.empty()) space.remove_traps(plan_->traps);
  return Status::ok();
}

symtab::Symtab BinaryEditor::commit() {
  if (static_committed_)
    Status::error(
        "patch: commit() already called — the static commit is one-shot; "
        "use commit_to() to apply the plan to further address spaces")
        .throw_if_error();
  static_committed_ = true;
  symtab::Symtab out = binary_;
  SymtabSpace space(&out);
  commit_to(space).throw_if_error();
  return out;
}

}  // namespace rvdyn::patch
