#include "patch/editor.hpp"

#include <algorithm>
#include <cstring>

#include "common/bits.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/summaries.hpp"
#include "isa/encoder.hpp"
#include "isa/imm_builder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rvdyn::patch {

namespace {

using codegen::SnippetPtr;
using isa::Instruction;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;
using parse::Block;
using parse::EdgeType;
using parse::Function;

Operand W(Reg r) { return Instruction::reg_op(r, Operand::kWrite); }
Operand R(Reg r) { return Instruction::reg_op(r, Operand::kRead); }

// A branch-target reference inside the relocation buffer: either an
// original block address (relocated label) or an edge stub.
struct TargetRef {
  bool is_stub = false;
  std::uint64_t block = 0;   // original block addr (label key)
  std::uint64_t target = 0;  // stub: edge target
};

struct Fix {
  std::size_t offset;  // byte offset of the 4-byte branch/jal in the buffer
  Mnemonic mn;
  Reg rs1, rs2;  // cond branches
  Reg link;      // jal
  TargetRef ref;
  bool is_jal;
};

// The relocated-code emission buffer.
class RelocBuffer {
 public:
  explicit RelocBuffer(std::uint64_t base) : base_(base) {}

  std::uint64_t here() const { return base_ + bytes_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  void put_raw(const Instruction& insn) {
    const std::uint32_t w = insn.raw();
    bytes_.push_back(static_cast<std::uint8_t>(w));
    bytes_.push_back(static_cast<std::uint8_t>(w >> 8));
    if (insn.length() == 4) {
      bytes_.push_back(static_cast<std::uint8_t>(w >> 16));
      bytes_.push_back(static_cast<std::uint8_t>(w >> 24));
    }
  }

  void put32(std::uint32_t w) {
    for (int i = 0; i < 4; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
  }

  void put_seq(const std::vector<Instruction>& insns) {
    for (const auto& i : insns) put_raw(i);
  }

  void bind(std::uint64_t orig_addr) { labels_[orig_addr] = here(); }
  void bind_stub(std::uint64_t block, std::uint64_t target) {
    stubs_[{block, target}] = here();
  }

  void fix_branch(Mnemonic mn, Reg rs1, Reg rs2, TargetRef ref) {
    fixes_.push_back({bytes_.size(), mn, rs1, rs2, isa::zero, ref, false});
    put32(0);  // placeholder
  }
  void fix_jal(Reg link, TargetRef ref) {
    fixes_.push_back({bytes_.size(), Mnemonic::jal, isa::zero, isa::zero,
                      link, ref, true});
    put32(0);
  }

  std::uint64_t label_addr(std::uint64_t orig) const {
    auto it = labels_.find(orig);
    if (it == labels_.end())
      throw Error("patch: relocation target has no label");
    return it->second;
  }
  bool has_label(std::uint64_t orig) const { return labels_.count(orig) != 0; }

  void resolve() {
    for (const Fix& f : fixes_) {
      std::uint64_t target;
      if (f.ref.is_stub) {
        target = stubs_.at({f.ref.block, f.ref.target});
      } else {
        target = label_addr(f.ref.block);
      }
      const std::int64_t off =
          static_cast<std::int64_t>(target) -
          static_cast<std::int64_t>(base_ + f.offset);
      Instruction insn;
      if (f.is_jal) {
        if (!fits_signed(off, 21))
          throw Error("patch: relocated jal out of range");
        insn = isa::assemble(Mnemonic::jal,
                             {W(f.link), Instruction::pcrel_op(off)});
      } else {
        if (!fits_signed(off, 13))
          throw Error("patch: relocated branch out of range");
        insn = isa::assemble(f.mn,
                             {R(f.rs1), R(f.rs2), Instruction::pcrel_op(off)});
      }
      const std::uint32_t w = insn.raw();
      for (int i = 0; i < 4; ++i)
        bytes_[f.offset + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(w >> (8 * i));
    }
    fixes_.clear();
  }

 private:
  std::uint64_t base_;
  std::vector<std::uint8_t> bytes_;
  std::map<std::uint64_t, std::uint64_t> labels_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> stubs_;
  std::vector<Fix> fixes_;
};

void append_materialize(RelocBuffer* buf, Reg rd, std::int64_t value) {
  std::vector<Instruction> seq;
  isa::materialize_imm(rd, value, &seq);
  buf->put_seq(seq);
}

// Emit a call/jump to an absolute address: jal when in range, else
// auipc+jalr through `scratch` (which may equal the link register).
void append_transfer(RelocBuffer* buf, std::uint64_t target, Reg link,
                     Reg scratch) {
  const std::int64_t delta = static_cast<std::int64_t>(target) -
                             static_cast<std::int64_t>(buf->here());
  if (fits_signed(delta, 21)) {
    buf->put_raw(isa::assemble(Mnemonic::jal,
                               {W(link), Instruction::pcrel_op(delta)}));
    return;
  }
  std::int64_t hi, lo;
  if (!isa::split_hi_lo(delta, &hi, &lo))
    throw Error("patch: transfer target out of ±2GiB range");
  buf->put_raw(isa::assemble(Mnemonic::auipc,
                             {W(scratch), Instruction::imm_op(hi)}));
  buf->put_raw(isa::assemble(
      Mnemonic::jalr,
      {W(link), R(scratch), Instruction::imm_op(lo)}));
}

// Condition inversion for the long-branch form.
Mnemonic invert_branch(Mnemonic mn) {
  switch (mn) {
    case Mnemonic::beq: return Mnemonic::bne;
    case Mnemonic::bne: return Mnemonic::beq;
    case Mnemonic::blt: return Mnemonic::bge;
    case Mnemonic::bge: return Mnemonic::blt;
    case Mnemonic::bltu: return Mnemonic::bgeu;
    case Mnemonic::bgeu: return Mnemonic::bltu;
    default: throw Error("patch: not a conditional branch");
  }
}

// Pick an integer caller-saved register from `dead`, or x0 when none.
Reg pick_dead_scratch(isa::RegSet dead) {
  static constexpr std::uint8_t kOrder[] = {5,  6,  7,  28, 29, 30, 31, 17,
                                            16, 15, 14, 13, 12, 11, 10};
  for (std::uint8_t n : kOrder)
    if (dead.contains(isa::x(n))) return isa::x(n);
  return isa::zero;
}

}  // namespace

BinaryEditor::BinaryEditor(symtab::Symtab binary, parse::ParseOptions popts)
    : binary_(std::move(binary)) {
  co_ = std::make_unique<parse::CodeObject>(binary_);
  co_->parse(popts);
  // Default patch area: 1 MiB region above the image (jal-reachable from
  // typical text bases, exercising the cheap strategies first).
  std::uint64_t top = 0;
  for (const auto& s : binary_.sections())
    if (s.is_alloc()) top = std::max(top, s.addr + s.size());
  patch_text_base_ = align_up(top + 0x10000, 0x1000);
  patch_data_base_ = patch_text_base_ + 0x100000;
}

codegen::Variable BinaryEditor::alloc_var(const std::string& name,
                                          std::uint8_t size,
                                          std::uint64_t initial) {
  var_data_.resize(align_up(var_data_.size(), size));
  codegen::Variable v;
  v.addr = patch_data_base_ + var_data_.size();
  v.size = size;
  v.name = name;
  for (unsigned i = 0; i < size; ++i)
    var_data_.push_back(static_cast<std::uint8_t>(initial >> (8 * i)));
  vars_.emplace_back(name, v);
  return v;
}

void BinaryEditor::insert(const Point& p, SnippetPtr snippet) {
  insertions_[p].push_back(std::move(snippet));
  ++stats_.snippets_inserted;
}

void BinaryEditor::insert_at(std::uint64_t func_entry, PointType type,
                             SnippetPtr snippet) {
  const Function* f = co_->function_at(func_entry);
  if (!f) throw Error("patch: no function at the given entry");
  for (const Point& p : find_points(*f, type)) insert(p, snippet);
}

std::vector<TrapEntry> BinaryEditor::parse_trap_section(
    const std::vector<std::uint8_t>& data) {
  std::vector<TrapEntry> out;
  for (std::size_t off = 0; off + 16 <= data.size(); off += 16) {
    TrapEntry e;
    std::memcpy(&e.from, data.data() + off, 8);
    std::memcpy(&e.to, data.data() + off + 8, 8);
    out.push_back(e);
  }
  return out;
}

symtab::Symtab BinaryEditor::commit() {
  if (committed_) throw Error("patch: commit() already called");
  committed_ = true;
  RVDYN_OBS_SPAN("rvdyn.patch.commit");

  // Group insertions by function.
  std::map<std::uint64_t, std::vector<std::pair<Point, SnippetPtr>>> by_func;
  for (const auto& [p, snippets] : insertions_)
    for (const auto& s : snippets) by_func[p.func].emplace_back(p, s);

  symtab::Symtab out = binary_;
  const isa::ExtensionSet exts = binary_.extensions();
  const bool rvc = exts.has(isa::Extension::C);
  codegen::GenOptions gopts;
  gopts.extensions = exts;
  gopts.extensions.remove(isa::Extension::C);  // generator emits 4-byte forms
  gopts.use_dead_registers = use_dead_regs_;
  codegen::CodeGenerator gen(gopts);

  // Interprocedural register summaries sharpen liveness at call
  // boundaries: callees that ignore argument registers leave them dead for
  // the instrumentation to use.
  const dataflow::Summaries summaries(*co_);

  RelocBuffer buf(patch_text_base_);
  struct Springboard {
    std::uint64_t at;      // original address to patch
    std::uint64_t budget;  // overwritable bytes
    std::uint64_t block;   // relocated label key
    isa::RegSet dead;      // dead registers at the original point
  };
  std::vector<Springboard> boards;

  for (const auto& [fentry, items] : by_func) {
    const Function* f = co_->function_at(fentry);
    if (!f) throw Error("patch: unknown function in insertion set");
    ++stats_.relocated_functions;
    dataflow::Liveness live(*f, &summaries);

    // Sort snippets by point for quick lookup during emission.
    std::map<std::uint64_t, std::vector<SnippetPtr>> at_block_entry;
    std::map<std::uint64_t, std::vector<SnippetPtr>> before_term;
    std::map<std::uint64_t, std::vector<SnippetPtr>> before_insn;
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<SnippetPtr>>
        on_edge;
    for (const auto& [p, s] : items) {
      switch (p.type) {
        case PointType::FuncEntry:
          at_block_entry[f->entry()].push_back(s);
          break;
        case PointType::BlockEntry:
          at_block_entry[p.block].push_back(s);
          break;
        case PointType::FuncExit:
        case PointType::CallSite:
          before_term[p.block].push_back(s);
          break;
        case PointType::Instruction:
          before_insn[p.aux].push_back(s);
          break;
        case PointType::Edge:
        case PointType::LoopEntry:
        case PointType::LoopBackedge:
          on_edge[{p.block, p.aux}].push_back(s);
          break;
      }
    }

    // Conditional-branch reach estimate: the relocated function grows by
    // the generated snippet code; once it could exceed the B-type ±4KiB
    // range, emit branches in the inverted-branch + jal long form. The
    // worst-case (no dead registers) generation bounds the real length.
    std::size_t est_snippet_bytes = 0;
    for (const auto& [p, s] : items)
      est_snippet_bytes += gen.generate(*s, isa::RegSet()).size() * 4;
    const bool far_branches =
        f->extent_end() - f->entry() + est_snippet_bytes > 3500;
    auto edge_ref = [&](std::uint64_t block, std::uint64_t target) {
      TargetRef ref;
      if (on_edge.count({block, target})) {
        ref.is_stub = true;
        ref.block = block;
        ref.target = target;
      } else {
        ref.block = target;
      }
      return ref;
    };

    auto gen_snippets = [&](const std::vector<SnippetPtr>& snippets,
                            isa::RegSet dead) {
      for (const auto& s : snippets) {
        codegen::GenStats gs;
        buf.put_seq(gen.generate(*s, dead, &gs));
        stats_.gen.n_insns += gs.n_insns;
        stats_.gen.scratch_from_dead += gs.scratch_from_dead;
        stats_.gen.scratch_spilled += gs.scratch_spilled;
        stats_.snippet_insns += gs.n_insns;
      }
    };

    // ---- emit blocks in address order ----
    const auto& blocks = f->blocks();
    for (auto it = blocks.begin(); it != blocks.end(); ++it) {
      const Block* b = it->second.get();
      auto next_it = std::next(it);
      const std::uint64_t next_block_addr =
          next_it != blocks.end() ? next_it->first : 0;

      buf.bind(b->start());
      if (auto se = at_block_entry.find(b->start());
          se != at_block_entry.end())
        gen_snippets(se->second, live.dead_before(b, 0));

      const auto& insns = b->insns();
      for (std::size_t i = 0; i < insns.size(); ++i) {
        const parse::ParsedInsn& pi = insns[i];
        const Instruction& insn = pi.insn;
        const bool is_term = i + 1 == insns.size();

        if (auto bi = before_insn.find(pi.addr); bi != before_insn.end())
          gen_snippets(bi->second, live.dead_before(b, i));
        if (is_term && before_term.count(b->start()))
          gen_snippets(before_term.at(b->start()),
                       live.dead_before(b, i));

        if (insn.is_cond_branch()) {
          const std::uint64_t taken =
              pi.addr + static_cast<std::uint64_t>(insn.branch_offset());
          if (far_branches) {
            // Long form: inverted branch skipping an unlimited-range jal.
            buf.put_raw(isa::assemble(
                invert_branch(insn.mnemonic()),
                {R(insn.operand(0).reg), R(insn.operand(1).reg),
                 Instruction::pcrel_op(8)}));
            buf.fix_jal(isa::zero, edge_ref(b->start(), taken));
          } else {
            buf.fix_branch(insn.mnemonic(), insn.operand(0).reg,
                           insn.operand(1).reg, edge_ref(b->start(), taken));
          }
          continue;
        }
        if (insn.mnemonic() == Mnemonic::auipc) {
          // Recompute the original absolute value at the new location.
          const std::int64_t value =
              static_cast<std::int64_t>(pi.addr) + insn.operand(1).imm;
          append_materialize(&buf, insn.operand(0).reg, value);
          continue;
        }
        if (insn.is_jal()) {
          const std::uint64_t target =
              pi.addr + static_cast<std::uint64_t>(insn.branch_offset());
          const Reg link = insn.link_reg();
          // Distinguish edge kinds via the CFG: the parser already did.
          bool intra = false;
          for (const parse::Edge& e : b->succs())
            if ((e.type == EdgeType::Jump || e.type == EdgeType::Taken) &&
                e.target == target)
              intra = true;
          if (link == isa::zero && intra) {
            buf.fix_jal(isa::zero, edge_ref(b->start(), target));
          } else {
            // Call or tail call to an original (possibly springboarded)
            // entry; t6 is the conventional tail-call scratch.
            append_transfer(&buf, target, link,
                            link == isa::zero ? isa::t6 : link);
          }
          continue;
        }
        if (insn.is_jalr()) {
          buf.put_raw(insn);  // register-indirect: position independent
          continue;
        }
        buf.put_raw(insn);  // ordinary instruction, verbatim bytes
      }

      // Fallthrough handling for blocks not ending in an unconditional
      // transfer: route to the fallthrough successor (with stub if the
      // edge is instrumented, or a jal if the next block is not adjacent).
      const Instruction* term =
          insns.empty() ? nullptr : &insns.back().insn;
      const bool ends_unconditional =
          term && (term->is_jal() || term->is_jalr());
      if (!ends_unconditional) {
        std::uint64_t ft = 0;
        bool has_ft = false;
        for (const parse::Edge& e : b->succs()) {
          if (e.type == EdgeType::Fallthrough ||
              e.type == EdgeType::NotTaken) {
            ft = e.target;
            has_ft = true;
          }
        }
        if (has_ft) {
          const TargetRef ref = edge_ref(b->start(), ft);
          if (ref.is_stub || ft != next_block_addr)
            buf.fix_jal(isa::zero, ref);
        }
      } else if (term->is_jalr() || (term->is_jal() &&
                                     !(term->link_reg() == isa::zero))) {
        // Calls continue at the fallthrough point.
        for (const parse::Edge& e : b->succs()) {
          if (e.type != EdgeType::CallFallthrough) continue;
          const TargetRef ref = edge_ref(b->start(), e.target);
          if (ref.is_stub || e.target != next_block_addr)
            buf.fix_jal(isa::zero, ref);
        }
      }
    }

    // ---- edge stubs: snippet, then jump to the edge target ----
    for (const auto& [key, snippets] : on_edge) {
      buf.bind_stub(key.first, key.second);
      const Block* tb = f->block_at(key.second);
      gen_snippets(snippets, tb ? live.dead_before(tb, 0) : isa::RegSet());
      TargetRef ref;
      ref.block = key.second;
      buf.fix_jal(isa::zero, ref);
    }

    // ---- springboards: function entry + indirect-jump targets ----
    // After relocation the original function body is dead except at the
    // springboarded addresses themselves, so each springboard may overwrite
    // everything up to the next springboard (or the function's extent end),
    // not just its own basic block. This lets 2-byte entry blocks take a
    // full jal/auipc+jalr instead of degrading to a trap.
    std::set<std::uint64_t> boarded{f->entry()};
    for (const auto& [a, b] : f->blocks())
      for (const parse::Edge& e : b->succs())
        if (e.type == EdgeType::IndirectJump && f->block_at(e.target))
          boarded.insert(e.target);
    const std::uint64_t extent_end = f->extent_end();
    for (auto it = boarded.begin(); it != boarded.end(); ++it) {
      const Block* blk = f->block_at(*it);
      if (!blk) continue;
      auto next = std::next(it);
      const std::uint64_t limit = next != boarded.end() ? *next : extent_end;
      Springboard sb;
      sb.at = *it;
      sb.budget = limit > *it ? limit - *it : blk->end() - blk->start();
      sb.block = *it;
      sb.dead = live.dead_before(blk, 0);
      boards.push_back(sb);
    }
  }

  buf.resolve();

  // ---- write springboards into the original text ----
  auto write_orig = [&](std::uint64_t addr, const std::uint8_t* data,
                        std::size_t n) {
    symtab::Section* sec = out.section_containing(addr);
    if (!sec || sec->type == symtab::SHT_NOBITS)
      throw Error("patch: springboard address not in a section");
    std::uint8_t* at = sec->data.data() + (addr - sec->addr);
    undo_deltas_.push_back({addr, std::vector<std::uint8_t>(at, at + n)});
    std::memcpy(at, data, n);
    deltas_.push_back({addr, std::vector<std::uint8_t>(data, data + n)});
  };

  for (const Springboard& sb : boards) {
    const std::uint64_t target = buf.label_addr(sb.block);
    const std::int64_t delta = static_cast<std::int64_t>(target) -
                               static_cast<std::int64_t>(sb.at);
    std::vector<std::uint8_t> patch;
    if (rvc && sb.budget >= 2 && fits_signed(delta, 12)) {
      // c.j
      Instruction j = isa::assemble(
          Mnemonic::jal, {W(isa::zero), Instruction::pcrel_op(delta)});
      const auto half = isa::compress(j);
      if (half) {
        patch = {static_cast<std::uint8_t>(*half & 0xff),
                 static_cast<std::uint8_t>(*half >> 8)};
        ++stats_.entry_cj;
      }
    }
    if (patch.empty() && sb.budget >= 4 && fits_signed(delta, 21)) {
      Instruction j = isa::assemble(
          Mnemonic::jal, {W(isa::zero), Instruction::pcrel_op(delta)});
      const std::uint32_t w = j.raw();
      patch = {static_cast<std::uint8_t>(w), static_cast<std::uint8_t>(w >> 8),
               static_cast<std::uint8_t>(w >> 16),
               static_cast<std::uint8_t>(w >> 24)};
      ++stats_.entry_jal;
    }
    if (patch.empty() && sb.budget >= 8) {
      const Reg scratch = pick_dead_scratch(sb.dead);
      if (!(scratch == isa::zero)) {
        std::int64_t hi, lo;
        if (isa::split_hi_lo(delta, &hi, &lo)) {
          Instruction a = isa::assemble(
              Mnemonic::auipc, {W(scratch), Instruction::imm_op(hi)});
          Instruction j = isa::assemble(
              Mnemonic::jalr,
              {W(isa::zero), R(scratch), Instruction::imm_op(lo)});
          for (const Instruction* insn : {&a, &j}) {
            const std::uint32_t w = insn->raw();
            for (int k = 0; k < 4; ++k)
              patch.push_back(static_cast<std::uint8_t>(w >> (8 * k)));
          }
          ++stats_.entry_auipc_jalr;
        }
      }
    }
    if (patch.empty()) {
      // Worst case (paper §3.1.2): a trap instruction plus a trap-table
      // entry the runtime uses to redirect control.
      if (rvc && sb.budget >= 2) {
        patch = {0x02, 0x90};  // c.ebreak
      } else if (sb.budget >= 4) {
        patch = {0x73, 0x00, 0x10, 0x00};  // ebreak
      } else {
        throw Error("patch: function too small for any springboard");
      }
      traps_.push_back({sb.at, target});
      ++stats_.entry_trap;
    }
    write_orig(sb.at, patch.data(), patch.size());
  }

  // ---- emit the patch sections ----
  if (!buf.bytes().empty()) {
    symtab::Section text;
    text.name = ".rvdyn.text";
    text.type = symtab::SHT_PROGBITS;
    text.flags = symtab::SHF_ALLOC | symtab::SHF_EXECINSTR;
    text.addr = patch_text_base_;
    text.addralign = 4;
    text.data = buf.bytes();
    out.add_section(std::move(text));
    deltas_.push_back({patch_text_base_, buf.bytes()});
  }
  if (!var_data_.empty()) {
    symtab::Section data;
    data.name = ".rvdyn.data";
    data.type = symtab::SHT_PROGBITS;
    data.flags = symtab::SHF_ALLOC | symtab::SHF_WRITE;
    data.addr = patch_data_base_;
    data.addralign = 8;
    data.data = var_data_;
    out.add_section(std::move(data));
    deltas_.push_back({patch_data_base_, var_data_});
    for (const auto& [name, v] : vars_) {
      symtab::Symbol sym;
      sym.name = "rvdyn$" + name;
      sym.value = v.addr;
      sym.size = v.size;
      sym.bind = symtab::STB_GLOBAL;
      sym.type = symtab::STT_OBJECT;
      out.add_symbol(sym);
    }
  }
  if (!traps_.empty()) {
    symtab::Section t;
    t.name = ".rvdyn.traps";
    t.type = symtab::SHT_PROGBITS;
    t.flags = 0;  // metadata, not loaded
    for (const TrapEntry& e : traps_) {
      for (unsigned i = 0; i < 8; ++i)
        t.data.push_back(static_cast<std::uint8_t>(e.from >> (8 * i)));
      for (unsigned i = 0; i < 8; ++i)
        t.data.push_back(static_cast<std::uint8_t>(e.to >> (8 * i)));
    }
    out.add_section(std::move(t));
  }

#if RVDYN_OBS_ENABLED
  RVDYN_OBS_COUNT_N("rvdyn.patch.snippets_inserted", stats_.snippets_inserted);
  RVDYN_OBS_COUNT_N("rvdyn.patch.snippet_insns", stats_.snippet_insns);
  RVDYN_OBS_COUNT_N("rvdyn.patch.relocated_functions",
                    stats_.relocated_functions);
  RVDYN_OBS_COUNT_N("rvdyn.patch.entry_cj", stats_.entry_cj);
  RVDYN_OBS_COUNT_N("rvdyn.patch.entry_jal", stats_.entry_jal);
  RVDYN_OBS_COUNT_N("rvdyn.patch.entry_auipc_jalr", stats_.entry_auipc_jalr);
  RVDYN_OBS_COUNT_N("rvdyn.patch.entry_trap", stats_.entry_trap);
  RVDYN_OBS_COUNT_N("rvdyn.patch.scratch_from_dead",
                    stats_.gen.scratch_from_dead);
  RVDYN_OBS_COUNT_N("rvdyn.patch.scratch_spilled", stats_.gen.scratch_spilled);
  if (stats_.snippets_inserted)
    RVDYN_OBS_HIST("rvdyn.patch.snippet_size",
                   stats_.snippet_insns / stats_.snippets_inserted);
  RVDYN_OBS_GAUGE("rvdyn.patch.text_bytes", buf.bytes().size());
  RVDYN_OBS_GAUGE("rvdyn.patch.data_bytes", var_data_.size());
#endif
  return out;
}

}  // namespace rvdyn::patch
