#include "patch/address_space.hpp"

#include <cstring>

namespace rvdyn::patch {

void SymtabSpace::map_region(const MappedRegion& region) {
  symtab::Section s;
  s.name = region.name;
  s.type = symtab::SHT_PROGBITS;
  s.flags = symtab::SHF_ALLOC;
  if (region.executable) s.flags |= symtab::SHF_EXECINSTR;
  if (region.writable) s.flags |= symtab::SHF_WRITE;
  s.addr = region.addr;
  s.addralign = region.executable ? 4 : 8;
  s.data = region.bytes;
  out_->add_section(std::move(s));
}

void SymtabSpace::write_code(std::uint64_t addr, const std::uint8_t* data,
                             std::size_t n) {
  symtab::Section* sec = out_->section_containing(addr);
  if (!sec || sec->type == symtab::SHT_NOBITS)
    throw Error("patch: code write outside any progbits section");
  if (addr + n > sec->addr + sec->data.size())
    throw Error("patch: code write crosses a section boundary");
  std::memcpy(sec->data.data() + (addr - sec->addr), data, n);
}

std::vector<std::uint8_t> SymtabSpace::read_code(std::uint64_t addr,
                                                 std::size_t n) const {
  const symtab::Section* sec = out_->section_containing(addr);
  if (!sec || sec->type == symtab::SHT_NOBITS)
    throw Error("patch: code read outside any progbits section");
  if (addr + n > sec->addr + sec->data.size())
    throw Error("patch: code read crosses a section boundary");
  const std::uint8_t* at = sec->data.data() + (addr - sec->addr);
  return std::vector<std::uint8_t>(at, at + n);
}

void SymtabSpace::define_symbol(const RegionSymbol& sym) {
  symtab::Symbol s;
  s.name = "rvdyn$" + sym.name;
  s.value = sym.addr;
  s.size = sym.size;
  s.bind = symtab::STB_GLOBAL;
  s.type = symtab::STT_OBJECT;
  out_->add_symbol(s);
}

void SymtabSpace::install_traps(const std::vector<TrapEntry>& traps) {
  if (traps.empty()) return;
  symtab::Section* sec = out_->find_section(".rvdyn.traps");
  if (!sec) {
    symtab::Section t;
    t.name = ".rvdyn.traps";
    t.type = symtab::SHT_PROGBITS;
    t.flags = 0;  // metadata, not loaded
    sec = &out_->add_section(std::move(t));
  }
  const auto payload = encode_trap_section(traps);
  sec->data.insert(sec->data.end(), payload.begin(), payload.end());
}

void SymtabSpace::remove_traps(const std::vector<TrapEntry>& traps) {
  symtab::Section* sec = out_->find_section(".rvdyn.traps");
  if (!sec) return;
  auto entries = parse_trap_section(sec->data);
  std::erase_if(entries, [&](const TrapEntry& e) {
    for (const TrapEntry& t : traps)
      if (t.from == e.from && t.to == e.to) return true;
    return false;
  });
  sec->data = encode_trap_section(entries);
}

std::vector<std::uint8_t> encode_trap_section(
    const std::vector<TrapEntry>& traps) {
  std::vector<std::uint8_t> out;
  out.reserve(traps.size() * 16);
  for (const TrapEntry& e : traps) {
    for (unsigned i = 0; i < 8; ++i)
      out.push_back(static_cast<std::uint8_t>(e.from >> (8 * i)));
    for (unsigned i = 0; i < 8; ++i)
      out.push_back(static_cast<std::uint8_t>(e.to >> (8 * i)));
  }
  return out;
}

std::vector<TrapEntry> parse_trap_section(
    const std::vector<std::uint8_t>& data) {
  std::vector<TrapEntry> out;
  for (std::size_t off = 0; off + 16 <= data.size(); off += 16) {
    TrapEntry e;
    std::memcpy(&e.from, data.data() + off, 8);
    std::memcpy(&e.to, data.data() + off + 8, 8);
    out.push_back(e);
  }
  return out;
}

}  // namespace rvdyn::patch
