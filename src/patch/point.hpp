// Instrumentation points (paper §2): where snippets can be inserted.
//
// Point granularities follow the paper's list — function level (entry,
// exit, call site), CFG level (block entry, edges, loop entry and back
// edges). Points are found from ParseAPI's CFG and loop analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "parse/cfg.hpp"
#include "parse/loops.hpp"

namespace rvdyn::patch {

enum class PointType {
  FuncEntry,     ///< before the function's first instruction
  FuncExit,      ///< before each return or tail-call instruction
  BlockEntry,    ///< before a basic block's first instruction
  CallSite,      ///< before a call instruction
  Edge,          ///< on a specific CFG edge (via an edge trampoline)
  LoopEntry,     ///< on edges entering a loop from outside
  LoopBackedge,  ///< on back edges returning to the loop header
  Instruction,   ///< before one specific instruction (lowest abstraction)
};

const char* point_type_name(PointType t);

/// One instrumentation point inside a function.
struct Point {
  PointType type = PointType::FuncEntry;
  std::uint64_t func = 0;   ///< containing function entry
  std::uint64_t block = 0;  ///< block start the point anchors to
  std::uint64_t aux = 0;    ///< Edge/Loop*: edge target address

  bool operator<(const Point& o) const {
    if (func != o.func) return func < o.func;
    if (block != o.block) return block < o.block;
    if (aux != o.aux) return aux < o.aux;
    return static_cast<int>(type) < static_cast<int>(o.type);
  }
};

/// Enumerate the points of one kind in `f`. For Edge, every intraprocedural
/// edge is returned; tools filter as needed. (Instruction points are built
/// with insn_point below, since they need an address.)
std::vector<Point> find_points(const parse::Function& f, PointType type);

/// The instruction-level point at `insn_addr` (paper §2's "low level
/// abstractions such as individual instructions"). Throws Error when the
/// address is not an instruction boundary of `f`.
Point insn_point(const parse::Function& f, std::uint64_t insn_addr);

}  // namespace rvdyn::patch
