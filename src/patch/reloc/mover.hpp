// CodeMover: the pass-based relocation engine (Dyninst's relocation
// architecture, paper §3.1).
//
// Each instrumented function is lowered into the widget IR, then an
// explicit pass list transforms the module:
//   lower   CFG blocks -> widgets (labels bound, control flow symbolic)
//   weave   generate snippet code into the SnippetWidget placeholders,
//           scratch registers chosen from DataflowAPI's point-granularity
//           dead sets
//   rvc     re-compress relocated 4-byte encodings to their C forms
//           (profile-gated; relocation otherwise inflates RVC code)
//   relax   iterative branch-reach relaxation to a fixed point: every
//           control transfer starts in its smallest form and grows only
//           when the laid-out displacement demands it — replacing the old
//           one-shot pessimistic size estimate
//   emit    serialize widgets at their final layout
// Passes observe/update MoverModule; new transformer passes (peephole,
// point batching) slot into the list without touching emission.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "codegen/codegen.hpp"
#include "parse/cfg.hpp"
#include "patch/reloc/widget.hpp"

namespace rvdyn::dataflow {
class Summaries;
}

namespace rvdyn::patch::reloc {

/// The snippets to weave into one function, keyed by anchor kind exactly
/// as the lowering walks the CFG.
struct WeaveSpec {
  std::map<std::uint64_t, std::vector<codegen::SnippetPtr>> at_block_entry;
  /// Before the block's terminator instruction (FuncExit / CallSite).
  std::map<std::uint64_t, std::vector<codegen::SnippetPtr>> before_term;
  /// Before one specific instruction address.
  std::map<std::uint64_t, std::vector<codegen::SnippetPtr>> before_insn;
  /// On a CFG edge (source block start, target) via an edge trampoline.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::vector<codegen::SnippetPtr>>
      on_edge;

  bool has_edge(std::uint64_t block, std::uint64_t target) const {
    return on_edge.count({block, target}) != 0;
  }
};

/// One pending weave: which SnippetWidget to fill and where the
/// instrumentation point lives for the liveness query.
struct WeaveItem {
  std::size_t widget_index = 0;
  std::vector<codegen::SnippetPtr> snippets;
  const parse::Block* live_block = nullptr;  ///< nullptr: no liveness info
  std::size_t live_index = 0;
  std::uint64_t anchor_addr = 0;  ///< nonzero: point-granularity dead_at()
};

/// One function lowered into widget form.
struct FunctionImage {
  const parse::Function* func = nullptr;
  WeaveSpec spec;
  std::vector<WidgetPtr> widgets;
  /// A label binds immediately before the widget at its index (an index of
  /// widgets.size() binds past the last widget).
  std::map<LabelKey, std::size_t> label_at;
  std::vector<std::uint64_t> widget_addr;  ///< layout result, by index
  std::vector<WeaveItem> weave_items;
};

/// Relocation accounting, aggregated across the module by the passes.
struct RelocStats {
  unsigned relax_iterations = 0;
  unsigned branch_c2 = 0;    ///< cond branches emitted as c.beqz/c.bnez
  unsigned branch_near = 0;  ///< 4-byte B-type
  unsigned branch_long = 0;  ///< widened: inverted branch over jal
  unsigned jump_c2 = 0;      ///< c.j
  unsigned jump_near = 0;    ///< jal
  unsigned transfer_jal = 0;
  unsigned transfer_auipc_jalr = 0;
  unsigned rvc_recompressed = 0;  ///< relocated insns shrunk to C forms
  std::uint64_t bytes_before_rvc = 0;
  std::uint64_t bytes_after_rvc = 0;
  unsigned snippet_insns = 0;
  codegen::GenStats gen;
};

/// Shared pass state: the functions under relocation plus module-level
/// configuration and outputs.
struct MoverModule {
  std::uint64_t base = 0;  ///< patch-area text base address
  bool rvc = false;        ///< mutatee profile has the C extension
  codegen::CodeGenerator* gen = nullptr;
  const dataflow::Summaries* summaries = nullptr;
  std::vector<FunctionImage> funcs;
  Layout layout;
  std::vector<std::uint8_t> text;  ///< emission output
  RelocStats stats;
};

/// One transformer in the pipeline.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual void run(MoverModule& m) = 0;
};

std::unique_ptr<Pass> make_lower_pass();
std::unique_ptr<Pass> make_weave_pass();
std::unique_ptr<Pass> make_rvc_pass();
std::unique_ptr<Pass> make_relax_pass();
std::unique_ptr<Pass> make_emit_pass();

/// Recompute every widget and label address sequentially from m.base.
/// Relaxation re-runs this after each growth round; the final call leaves
/// the layout emission reads.
void run_layout(MoverModule& m);

class CodeMover {
 public:
  CodeMover(std::uint64_t base, bool rvc, codegen::CodeGenerator* gen,
            const dataflow::Summaries* summaries);

  /// Queue `f` for relocation with `spec` woven in.
  void add_function(const parse::Function* f, WeaveSpec spec);

  /// Insert an extra transformer between weaving and re-compression
  /// (peephole-style passes; emission never needs to know).
  void add_pass(std::unique_ptr<Pass> p);

  /// Run the pipeline; returns the relocated text. Each pass gets an obs
  /// trace span and a rvdyn.patch.pass.<name>.ns gauge.
  const std::vector<std::uint8_t>& run();

  const RelocStats& stats() const { return module_.stats; }
  const MoverModule& module() const { return module_; }

  /// Relocated address of an original block (valid after run()).
  std::uint64_t label_addr(std::uint64_t block) const {
    return module_.layout.addr_of(LabelKey::at(block));
  }
  bool has_label(std::uint64_t block) const {
    return module_.layout.label_addr.count(LabelKey::at(block)) != 0;
  }

 private:
  MoverModule module_;
  std::vector<std::unique_ptr<Pass>> extra_passes_;
};

}  // namespace rvdyn::patch::reloc
