// The relocation pass implementations. Each pass is a small, independently
// testable transformation over MoverModule; CodeMover strings them into the
// pipeline (lower -> weave -> rvc -> relax -> emit).
#include <algorithm>

#include "common/bits.hpp"
#include "dataflow/liveness.hpp"
#include "patch/reloc/mover.hpp"

namespace rvdyn::patch::reloc {

namespace {

using isa::Instruction;
using isa::Mnemonic;
using isa::Reg;
using parse::Block;
using parse::EdgeType;
using parse::Function;

// ---- lower: CFG blocks -> widgets ----------------------------------------
//
// Reproduces the relocation semantics of the previous single-pass emitter:
// labels bind before block-entry snippets; point snippets precede the
// anchor instruction; auipc re-materializes the original absolute value;
// intraprocedural jal x0 becomes a label jump; calls and tail calls
// transfer to the ORIGINAL absolute target (which may itself be
// springboarded); jalr is position independent and stays verbatim;
// fallthrough jumps are dropped when the successor block is laid out
// immediately after and the edge is not instrumented.
class LowerPass : public Pass {
 public:
  const char* name() const override { return "lower"; }

  void run(MoverModule& m) override {
    for (FunctionImage& fi : m.funcs) lower_function(m, fi);
  }

 private:
  static LabelKey edge_key(const FunctionImage& fi, std::uint64_t block,
                           std::uint64_t target) {
    return fi.spec.has_edge(block, target) ? LabelKey::stub(block, target)
                                           : LabelKey::at(target);
  }

  static void add_anchor(FunctionImage& fi,
                         const std::vector<codegen::SnippetPtr>& snippets,
                         const Block* live_block, std::size_t live_index,
                         std::uint64_t anchor_addr) {
    WeaveItem item;
    item.widget_index = fi.widgets.size();
    item.snippets = snippets;
    item.live_block = live_block;
    item.live_index = live_index;
    item.anchor_addr = anchor_addr;
    fi.weave_items.push_back(std::move(item));
    fi.widgets.push_back(std::make_unique<SnippetWidget>());
  }

  void lower_function(MoverModule& m, FunctionImage& fi) {
    const Function* f = fi.func;
    const auto& blocks = f->blocks();
    for (auto it = blocks.begin(); it != blocks.end(); ++it) {
      const Block* b = it->second.get();
      auto next_it = std::next(it);
      const std::uint64_t next_block_addr =
          next_it != blocks.end() ? next_it->first : 0;

      fi.label_at[LabelKey::at(b->start())] = fi.widgets.size();
      if (auto se = fi.spec.at_block_entry.find(b->start());
          se != fi.spec.at_block_entry.end())
        add_anchor(fi, se->second, b, 0, 0);

      const auto& insns = b->insns();
      for (std::size_t i = 0; i < insns.size(); ++i) {
        const parse::ParsedInsn& pi = insns[i];
        const Instruction& insn = pi.insn;
        const bool is_term = i + 1 == insns.size();

        if (auto bi = fi.spec.before_insn.find(pi.addr);
            bi != fi.spec.before_insn.end())
          add_anchor(fi, bi->second, b, i, pi.addr);
        if (is_term && fi.spec.before_term.count(b->start()))
          add_anchor(fi, fi.spec.before_term.at(b->start()), b, i, 0);

        WidgetPtr w;
        if (insn.is_cond_branch()) {
          const std::uint64_t taken =
              pi.addr + static_cast<std::uint64_t>(insn.branch_offset());
          w = CFWidget::cond_branch(insn.mnemonic(), insn.operand(0).reg,
                                    insn.operand(1).reg,
                                    edge_key(fi, b->start(), taken), m.rvc);
        } else if (insn.mnemonic() == Mnemonic::auipc) {
          const std::int64_t value =
              static_cast<std::int64_t>(pi.addr) + insn.operand(1).imm;
          w = std::make_unique<PCRelWidget>(insn.operand(0).reg, value);
        } else if (insn.is_jal()) {
          const std::uint64_t target =
              pi.addr + static_cast<std::uint64_t>(insn.branch_offset());
          const Reg link = insn.link_reg();
          bool intra = false;
          for (const parse::Edge& e : b->succs())
            if ((e.type == EdgeType::Jump || e.type == EdgeType::Taken) &&
                e.target == target)
              intra = true;
          if (link == isa::zero && intra) {
            w = CFWidget::jump(edge_key(fi, b->start(), target), m.rvc);
          } else {
            w = CFWidget::transfer(target, link,
                                   link == isa::zero ? isa::t6 : link);
          }
        } else {
          // jalr and ordinary instructions are position independent.
          w = std::make_unique<InsnWidget>(insn);
        }
        w->orig_addr = pi.addr;
        fi.widgets.push_back(std::move(w));
      }

      // Fallthrough routing for blocks that do not end in an unconditional
      // transfer, and post-call resume points.
      const Instruction* term = insns.empty() ? nullptr : &insns.back().insn;
      const bool ends_unconditional =
          term && (term->is_jal() || term->is_jalr());
      if (!ends_unconditional) {
        for (const parse::Edge& e : b->succs()) {
          if (e.type != EdgeType::Fallthrough && e.type != EdgeType::NotTaken)
            continue;
          const LabelKey key = edge_key(fi, b->start(), e.target);
          if (key.is_stub || e.target != next_block_addr)
            fi.widgets.push_back(CFWidget::jump(key, m.rvc));
        }
      } else if (term->is_jalr() ||
                 (term->is_jal() && !(term->link_reg() == isa::zero))) {
        for (const parse::Edge& e : b->succs()) {
          if (e.type != EdgeType::CallFallthrough) continue;
          const LabelKey key = edge_key(fi, b->start(), e.target);
          if (key.is_stub || e.target != next_block_addr)
            fi.widgets.push_back(CFWidget::jump(key, m.rvc));
        }
      }
    }

    // Edge trampolines: snippet, then jump back to the edge target.
    for (const auto& [key, snippets] : fi.spec.on_edge) {
      fi.label_at[LabelKey::stub(key.first, key.second)] = fi.widgets.size();
      const Block* tb = f->block_at(key.second);
      add_anchor(fi, snippets, tb, 0, 0);
      fi.widgets.push_back(CFWidget::jump(LabelKey::at(key.second), m.rvc));
    }
  }
};

// ---- weave: generate snippet code into the anchors -----------------------
class WeavePass : public Pass {
 public:
  const char* name() const override { return "weave"; }

  void run(MoverModule& m) override {
    for (FunctionImage& fi : m.funcs) {
      if (fi.weave_items.empty()) continue;
      const dataflow::Liveness live(*fi.func, m.summaries);
      for (const WeaveItem& item : fi.weave_items) {
        isa::RegSet dead;
        if (item.anchor_addr) {
          dead = live.dead_at(item.anchor_addr);
        } else if (item.live_block) {
          dead = live.dead_before(item.live_block, item.live_index);
        }
        std::vector<isa::Instruction> code;
        for (const codegen::SnippetPtr& s : item.snippets) {
          codegen::GenStats gs;
          auto seq = m.gen->generate(*s, dead, &gs);
          code.insert(code.end(), seq.begin(), seq.end());
          m.stats.gen.n_insns += gs.n_insns;
          m.stats.gen.scratch_from_dead += gs.scratch_from_dead;
          m.stats.gen.scratch_spilled += gs.scratch_spilled;
          m.stats.snippet_insns += gs.n_insns;
        }
        auto* sw =
            static_cast<SnippetWidget*>(fi.widgets[item.widget_index].get());
        sw->set_code(std::move(code));
      }
    }
  }
};

// ---- rvc: re-compress relocated encodings --------------------------------
//
// Relocation and the 4-byte-only code generator inflate originally
// compressed code; this pass shrinks every eligible encoding back to its C
// form before relaxation, so branch displacements are measured against the
// tightest layout.
class RvcPass : public Pass {
 public:
  const char* name() const override { return "rvc"; }

  void run(MoverModule& m) override {
    std::uint64_t before = 0, after = 0;
    for (FunctionImage& fi : m.funcs)
      for (const WidgetPtr& w : fi.widgets) before += w->size();
    if (m.rvc) {
      for (FunctionImage& fi : m.funcs)
        for (const WidgetPtr& w : fi.widgets)
          m.stats.rvc_recompressed += w->compress_all();
    }
    for (FunctionImage& fi : m.funcs)
      for (const WidgetPtr& w : fi.widgets) after += w->size();
    m.stats.bytes_before_rvc = before;
    m.stats.bytes_after_rvc = after;
  }
};

// ---- relax: branch-reach fixed point -------------------------------------
//
// Lay the module out, grow any control transfer whose displacement exceeds
// its current form, and repeat until no form changes. Forms only grow, so
// the iteration terminates (worst case: every CFWidget reaches Long).
class RelaxPass : public Pass {
 public:
  const char* name() const override { return "relax"; }

  void run(MoverModule& m) override {
    run_layout(m);
    bool changed;
    do {
      changed = false;
      for (FunctionImage& fi : m.funcs) {
        for (std::size_t i = 0; i < fi.widgets.size(); ++i) {
          CFWidget* cf = fi.widgets[i]->as_cf();
          if (!cf || cf->elided()) continue;
          const std::int64_t off =
              cf->displacement(fi.widget_addr[i], m.layout);
          if (cf->relax(off)) changed = true;
        }
      }
      ++m.stats.relax_iterations;
      if (changed) run_layout(m);
    } while (changed);
  }
};

// ---- emit: serialize at the final layout ---------------------------------
class EmitPass : public Pass {
 public:
  const char* name() const override { return "emit"; }

  void run(MoverModule& m) override {
    m.text.clear();
    for (FunctionImage& fi : m.funcs) {
      for (std::size_t i = 0; i < fi.widgets.size(); ++i) {
        const std::size_t at = m.text.size();
        fi.widgets[i]->emit(fi.widget_addr[i], m.layout, &m.text);
        if (m.text.size() - at != fi.widgets[i]->size())
          throw Error("patch: widget emitted size disagrees with layout");
        tally(m.stats, fi.widgets[i]->as_cf());
      }
    }
  }

 private:
  static void tally(RelocStats& s, const CFWidget* cf) {
    if (!cf || cf->elided()) return;
    switch (cf->cf_kind()) {
      case CFWidget::Kind::CondBranch:
        if (cf->form() == CFWidget::Form::C2)
          ++s.branch_c2;
        else if (cf->form() == CFWidget::Form::Near)
          ++s.branch_near;
        else
          ++s.branch_long;
        break;
      case CFWidget::Kind::Jump:
        if (cf->form() == CFWidget::Form::C2)
          ++s.jump_c2;
        else
          ++s.jump_near;
        break;
      case CFWidget::Kind::Transfer:
        if (cf->form() == CFWidget::Form::Near)
          ++s.transfer_jal;
        else
          ++s.transfer_auipc_jalr;
        break;
    }
  }
};

}  // namespace

void run_layout(MoverModule& m) {
  std::uint64_t cursor = m.base;
  m.layout.label_addr.clear();
  for (FunctionImage& fi : m.funcs) {
    fi.widget_addr.resize(fi.widgets.size());
    for (std::size_t i = 0; i < fi.widgets.size(); ++i) {
      fi.widget_addr[i] = cursor;
      cursor += fi.widgets[i]->size();
    }
    const std::uint64_t func_end = cursor;
    for (const auto& [key, idx] : fi.label_at)
      m.layout.label_addr[key] =
          idx < fi.widget_addr.size() ? fi.widget_addr[idx] : func_end;
  }
}

std::unique_ptr<Pass> make_lower_pass() { return std::make_unique<LowerPass>(); }
std::unique_ptr<Pass> make_weave_pass() { return std::make_unique<WeavePass>(); }
std::unique_ptr<Pass> make_rvc_pass() { return std::make_unique<RvcPass>(); }
std::unique_ptr<Pass> make_relax_pass() { return std::make_unique<RelaxPass>(); }
std::unique_ptr<Pass> make_emit_pass() { return std::make_unique<EmitPass>(); }

}  // namespace rvdyn::patch::reloc
