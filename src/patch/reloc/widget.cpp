#include "patch/reloc/widget.hpp"

#include "common/bits.hpp"
#include "isa/imm_builder.hpp"

namespace rvdyn::patch::reloc {

namespace {

using isa::Instruction;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;

Operand W(Reg r) { return Instruction::reg_op(r, Operand::kWrite); }
Operand R(Reg r) { return Instruction::reg_op(r, Operand::kRead); }

// Condition inversion for the long-branch form.
Mnemonic invert_branch(Mnemonic mn) {
  switch (mn) {
    case Mnemonic::beq: return Mnemonic::bne;
    case Mnemonic::bne: return Mnemonic::beq;
    case Mnemonic::blt: return Mnemonic::bge;
    case Mnemonic::bge: return Mnemonic::blt;
    case Mnemonic::bltu: return Mnemonic::bgeu;
    case Mnemonic::bgeu: return Mnemonic::bltu;
    default: throw Error("patch: not a conditional branch");
  }
}

}  // namespace

std::uint64_t Layout::addr_of(const LabelKey& key) const {
  auto it = label_addr.find(key);
  if (it == label_addr.end())
    throw Error("patch: relocation target has no label");
  return it->second;
}

void emit_insn(const isa::Instruction& insn,
               const std::optional<std::uint16_t>& compressed,
               std::vector<std::uint8_t>* out) {
  if (compressed) {
    out->push_back(static_cast<std::uint8_t>(*compressed));
    out->push_back(static_cast<std::uint8_t>(*compressed >> 8));
    return;
  }
  const std::uint32_t w = insn.raw();
  out->push_back(static_cast<std::uint8_t>(w));
  out->push_back(static_cast<std::uint8_t>(w >> 8));
  if (insn.length() == 4) {
    out->push_back(static_cast<std::uint8_t>(w >> 16));
    out->push_back(static_cast<std::uint8_t>(w >> 24));
  }
}

PCRelWidget::PCRelWidget(isa::Reg rd, std::int64_t value)
    : rd_(rd), value_(value) {
  std::vector<Instruction> seq;
  isa::materialize_imm(rd, value, &seq);
  set_insns(std::move(seq));
}

WidgetPtr CFWidget::cond_branch(Mnemonic mn, Reg rs1, Reg rs2,
                                LabelKey target, bool rvc) {
  auto w = WidgetPtr(new CFWidget);
  auto* cf = static_cast<CFWidget*>(w.get());
  cf->kind_ = Kind::CondBranch;
  cf->mn_ = mn;
  cf->rs1_ = rs1;
  cf->rs2_ = rs2;
  cf->target_ = target;
  // c.beqz/c.bnez: rs1 in x8..x15 against x0, ±256B reach.
  cf->c2_eligible_ = rvc && (mn == Mnemonic::beq || mn == Mnemonic::bne) &&
                     rs2 == isa::zero && rs1.index() >= 8 && rs1.index() <= 15;
  cf->form_ = cf->c2_eligible_ ? Form::C2 : Form::Near;
  return w;
}

WidgetPtr CFWidget::jump(LabelKey target, bool rvc) {
  auto w = WidgetPtr(new CFWidget);
  auto* cf = static_cast<CFWidget*>(w.get());
  cf->kind_ = Kind::Jump;
  cf->target_ = target;
  cf->c2_eligible_ = rvc;  // c.j reaches ±2KiB
  cf->form_ = rvc ? Form::C2 : Form::Near;
  return w;
}

WidgetPtr CFWidget::transfer(std::uint64_t abs_target, Reg link,
                             Reg scratch) {
  auto w = WidgetPtr(new CFWidget);
  auto* cf = static_cast<CFWidget*>(w.get());
  cf->kind_ = Kind::Transfer;
  cf->abs_target_ = abs_target;
  cf->link_ = link;
  cf->scratch_ = scratch;
  cf->form_ = Form::Near;
  return w;
}

std::size_t CFWidget::size() const {
  if (elided_) return 0;
  switch (form_) {
    case Form::C2: return 2;
    case Form::Near: return 4;
    case Form::Long: return 8;
  }
  return 4;
}

std::int64_t CFWidget::displacement(std::uint64_t self_addr,
                                    const Layout& layout) const {
  const std::uint64_t target =
      kind_ == Kind::Transfer ? abs_target_ : layout.addr_of(target_);
  return static_cast<std::int64_t>(target) -
         static_cast<std::int64_t>(self_addr);
}

bool CFWidget::relax(std::int64_t off) {
  if (elided_) return false;
  // The smallest form (at or above the current one — forms never shrink,
  // which guarantees fixed-point termination) whose reach covers `off`.
  Form need = form_;
  switch (kind_) {
    case Kind::CondBranch:
      if (form_ == Form::C2 && !fits_signed(off, 9)) need = Form::Near;
      if (need == Form::Near && !fits_signed(off, 13)) need = Form::Long;
      if (need == Form::Long && !fits_signed(off - 4, 21))
        throw Error("patch: relocated branch beyond jal reach");
      break;
    case Kind::Jump:
      if (form_ == Form::C2 && !fits_signed(off, 12)) need = Form::Near;
      if (need == Form::Near && !fits_signed(off, 21))
        throw Error("patch: relocated jump beyond jal reach");
      break;
    case Kind::Transfer:
      if (form_ == Form::Near && !fits_signed(off, 21)) need = Form::Long;
      if (need == Form::Long) {
        std::int64_t hi, lo;
        if (!isa::split_hi_lo(off, &hi, &lo))
          throw Error("patch: transfer target out of ±2GiB range");
      }
      break;
  }
  if (need == form_) return false;
  form_ = need;
  return true;
}

void CFWidget::emit(std::uint64_t self_addr, const Layout& layout,
                    std::vector<std::uint8_t>* out) const {
  if (elided_) return;
  const std::int64_t off = displacement(self_addr, layout);
  switch (kind_) {
    case Kind::CondBranch: {
      if (form_ == Form::C2 || form_ == Form::Near) {
        const Instruction b = isa::assemble(
            mn_, {R(rs1_), R(rs2_), Instruction::pcrel_op(off)});
        if (form_ == Form::C2) {
          const auto half = isa::compress(b);
          if (!half) throw Error("patch: c-branch compression failed");
          emit_insn(b, half, out);
        } else {
          emit_insn(b, std::nullopt, out);
        }
        return;
      }
      // Long form: inverted branch skipping a jal with ±1MiB reach.
      emit_insn(isa::assemble(invert_branch(mn_),
                              {R(rs1_), R(rs2_), Instruction::pcrel_op(8)}),
                std::nullopt, out);
      emit_insn(isa::assemble(Mnemonic::jal, {W(isa::zero),
                                              Instruction::pcrel_op(off - 4)}),
                std::nullopt, out);
      return;
    }
    case Kind::Jump: {
      const Instruction j = isa::assemble(
          Mnemonic::jal, {W(isa::zero), Instruction::pcrel_op(off)});
      if (form_ == Form::C2) {
        const auto half = isa::compress(j);
        if (!half) throw Error("patch: c.j compression failed");
        emit_insn(j, half, out);
      } else {
        emit_insn(j, std::nullopt, out);
      }
      return;
    }
    case Kind::Transfer: {
      if (form_ == Form::Near) {
        emit_insn(isa::assemble(Mnemonic::jal,
                                {W(link_), Instruction::pcrel_op(off)}),
                  std::nullopt, out);
        return;
      }
      std::int64_t hi, lo;
      if (!isa::split_hi_lo(off, &hi, &lo))
        throw Error("patch: transfer target out of ±2GiB range");
      emit_insn(isa::assemble(Mnemonic::auipc,
                              {W(scratch_), Instruction::imm_op(hi)}),
                std::nullopt, out);
      emit_insn(isa::assemble(Mnemonic::jalr, {W(link_), R(scratch_),
                                               Instruction::imm_op(lo)}),
                std::nullopt, out);
      return;
    }
  }
}

}  // namespace rvdyn::patch::reloc
