#include "patch/reloc/mover.hpp"

#include <chrono>
#include <mutex>
#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rvdyn::patch::reloc {

#if RVDYN_OBS_ENABLED
namespace {
// Trace events keep the name pointer past this frame; intern pass span
// names so they have static storage like literal hook sites.
const char* intern(const std::string& s) {
  static std::mutex mu;
  static std::set<std::string> pool;
  const std::lock_guard<std::mutex> lock(mu);
  return pool.insert(s).first->c_str();
}
}  // namespace
#endif

CodeMover::CodeMover(std::uint64_t base, bool rvc,
                     codegen::CodeGenerator* gen,
                     const dataflow::Summaries* summaries) {
  module_.base = base;
  module_.rvc = rvc;
  module_.gen = gen;
  module_.summaries = summaries;
}

void CodeMover::add_function(const parse::Function* f, WeaveSpec spec) {
  FunctionImage fi;
  fi.func = f;
  fi.spec = std::move(spec);
  module_.funcs.push_back(std::move(fi));
}

void CodeMover::add_pass(std::unique_ptr<Pass> p) {
  extra_passes_.push_back(std::move(p));
}

const std::vector<std::uint8_t>& CodeMover::run() {
  std::vector<std::unique_ptr<Pass>> pipeline;
  pipeline.push_back(make_lower_pass());
  pipeline.push_back(make_weave_pass());
  for (auto& p : extra_passes_) pipeline.push_back(std::move(p));
  extra_passes_.clear();
  pipeline.push_back(make_rvc_pass());
  pipeline.push_back(make_relax_pass());
  pipeline.push_back(make_emit_pass());

  for (const auto& pass : pipeline) {
#if RVDYN_OBS_ENABLED
    const std::string span_name =
        std::string("rvdyn.patch.pass.") + pass->name();
    const obs::Span span(intern(span_name));
    const auto t0 = std::chrono::steady_clock::now();
    pass->run(module_);
    const auto dt = std::chrono::steady_clock::now() - t0;
    obs::Gauge(span_name + ".ns")
        .set(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count()));
#else
    pass->run(module_);
#endif
  }
  return module_.text;
}

}  // namespace rvdyn::patch::reloc
