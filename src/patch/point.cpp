#include "patch/point.hpp"

namespace rvdyn::patch {

namespace {

using parse::Block;
using parse::EdgeType;

bool is_intraproc(EdgeType t) {
  switch (t) {
    case EdgeType::Fallthrough:
    case EdgeType::Taken:
    case EdgeType::NotTaken:
    case EdgeType::Jump:
    case EdgeType::IndirectJump:
      return true;
    default:
      return false;
  }
}

}  // namespace

Point insn_point(const parse::Function& f, std::uint64_t insn_addr) {
  const Block* b = f.block_containing(insn_addr);
  if (b) {
    for (const auto& pi : b->insns())
      if (pi.addr == insn_addr)
        return {PointType::Instruction, f.entry(), b->start(), insn_addr};
  }
  throw Error("no instruction boundary at the given address");
}

const char* point_type_name(PointType t) {
  switch (t) {
    case PointType::FuncEntry: return "func-entry";
    case PointType::FuncExit: return "func-exit";
    case PointType::BlockEntry: return "block-entry";
    case PointType::CallSite: return "call-site";
    case PointType::Edge: return "edge";
    case PointType::LoopEntry: return "loop-entry";
    case PointType::LoopBackedge: return "loop-backedge";
    case PointType::Instruction: return "instruction";
  }
  return "?";
}

std::vector<Point> find_points(const parse::Function& f, PointType type) {
  std::vector<Point> out;
  auto add = [&](PointType t, std::uint64_t block, std::uint64_t aux = 0) {
    out.push_back({t, f.entry(), block, aux});
  };

  switch (type) {
    case PointType::FuncEntry:
      add(type, f.entry());
      break;
    case PointType::FuncExit:
      // A function is left through returns AND tail calls — a tail-called
      // callee returns to this function's caller, so control never comes
      // back. Both must count as exits or exit instrumentation undercounts.
      for (const auto& [a, b] : f.blocks())
        for (const parse::Edge& e : b->succs())
          if (e.type == EdgeType::Return || e.type == EdgeType::TailCall) {
            add(type, b->start());
            break;
          }
      break;
    case PointType::BlockEntry:
      for (const auto& [a, b] : f.blocks()) add(type, b->start());
      break;
    case PointType::CallSite:
      for (const auto& [a, b] : f.blocks())
        for (const parse::Edge& e : b->succs())
          if (e.type == EdgeType::Call) {
            add(type, b->start(), e.target);
            break;
          }
      break;
    case PointType::Edge:
      for (const auto& [a, b] : f.blocks())
        for (const parse::Edge& e : b->succs())
          if (is_intraproc(e.type)) add(type, b->start(), e.target);
      break;
    case PointType::LoopEntry: {
      for (const parse::Loop& loop : parse::find_loops(f)) {
        const Block* header = f.block_at(loop.header);
        if (!header) continue;
        for (const Block* pred : header->preds())
          if (!loop.contains(pred->start()))
            add(type, pred->start(), loop.header);
      }
      break;
    }
    case PointType::LoopBackedge: {
      for (const parse::Loop& loop : parse::find_loops(f))
        for (std::uint64_t src : loop.backedge_sources)
          add(type, src, loop.header);
      break;
    }
    case PointType::Instruction:
      for (const auto& [a, b] : f.blocks())
        for (const parse::ParsedInsn& pi : b->insns())
          add(type, b->start(), pi.addr);
      break;
  }
  return out;
}

}  // namespace rvdyn::patch
