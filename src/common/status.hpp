// Lightweight error reporting used across rvdyn.
//
// Analysis code frequently has "can't decide" outcomes that are not program
// errors (an unresolvable jalr, a gap with no code). Those are modelled as
// ordinary return values. `Error`/`Result` are reserved for genuine failures:
// malformed ELF input, assembler syntax errors, out-of-range fixups.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace rvdyn {

/// Exception thrown on unrecoverable input errors (malformed binaries,
/// assembler syntax errors). Tools catch this at their top level.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

/// An ok-or-error status for operations with no payload, used by APIs whose
/// failures are part of the documented contract (e.g. a second
/// BinaryEditor::commit() on a one-shot session) rather than exceptional.
class Status {
 public:
  static Status ok() { return Status(std::string()); }
  static Status error(std::string msg) { return Status(std::move(msg)); }

  bool is_ok() const { return msg_.empty(); }
  explicit operator bool() const { return is_ok(); }
  /// Human-readable error message ("" when ok).
  const std::string& message() const { return msg_; }

  /// Throw the status as an Error when it is a failure (for call sites that
  /// prefer unwinding, e.g. the throwing commit() convenience wrapper).
  void throw_if_error() const {
    if (!is_ok()) throw Error(msg_);
  }

 private:
  explicit Status(std::string msg) : msg_(std::move(msg)) {}
  std::string msg_;
};

/// A value-or-error result for APIs where failure is routine and the caller
/// is expected to branch on it rather than unwind.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}                     // NOLINT
  Result(Error err) : v_(std::move(err)) {}                     // NOLINT
  static Result failure(std::string msg) { return Result(Error(std::move(msg))); }

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  /// Access the value; throws the stored error if this is a failure.
  T& value() {
    if (!ok()) throw std::get<Error>(v_);
    return std::get<T>(v_);
  }
  const T& value() const {
    if (!ok()) throw std::get<Error>(v_);
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Human-readable error message ("" when ok).
  std::string message() const {
    return ok() ? std::string{} : std::string(std::get<Error>(v_).what());
  }

 private:
  std::variant<T, Error> v_;
};

}  // namespace rvdyn
