#include "common/leb128.hpp"

namespace rvdyn {

void uleb128_write(std::vector<std::uint8_t>& out, std::uint64_t v) {
  do {
    std::uint8_t byte = v & 0x7f;
    v >>= 7;
    if (v != 0) byte |= 0x80;
    out.push_back(byte);
  } while (v != 0);
}

std::uint64_t uleb128_read(const std::uint8_t* data, std::size_t size,
                           std::size_t* offset) {
  std::uint64_t result = 0;
  unsigned shift = 0;
  while (*offset < size) {
    const std::uint8_t byte = data[(*offset)++];
    if (shift < 64) result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
  }
  *offset = size;
  return result;
}

}  // namespace rvdyn
