// ULEB128 encoding, used by the ELF .riscv.attributes section
// (SymtabAPI parses it; the assembler emits it).
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace rvdyn {

/// Append the ULEB128 encoding of `v` to `out`.
void uleb128_write(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Decode a ULEB128 value from `data` starting at `*offset`; advances
/// `*offset` past the encoded bytes. Returns 0 and leaves `*offset` at
/// `size` on truncated input (callers treat that as end-of-section).
std::uint64_t uleb128_read(const std::uint8_t* data, std::size_t size,
                           std::size_t* offset);

}  // namespace rvdyn
