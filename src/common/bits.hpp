// Bit-manipulation helpers shared by the decoder, encoder and emulator.
//
// RISC-V instruction encodings scatter immediate bits across the word in
// irregular orders (see the B/J-type formats), so nearly every component
// needs compact field extraction, insertion and sign extension.
#pragma once

#include <cstdint>
#include <type_traits>

namespace rvdyn {

/// Extract bits [lo, lo+len) of `v` as an unsigned value in the low bits.
constexpr std::uint64_t bits(std::uint64_t v, unsigned lo, unsigned len) {
  return (v >> lo) & ((len >= 64) ? ~0ULL : ((1ULL << len) - 1));
}

/// Extract the single bit at position `pos`.
constexpr std::uint64_t bit(std::uint64_t v, unsigned pos) {
  return (v >> pos) & 1ULL;
}

/// Sign-extend the low `width` bits of `v` to a signed 64-bit value.
constexpr std::int64_t sext(std::uint64_t v, unsigned width) {
  if (width == 0 || width >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t m = 1ULL << (width - 1);
  v &= (1ULL << width) - 1;
  return static_cast<std::int64_t>((v ^ m) - m);
}

/// Zero-extend the low `width` bits of `v`.
constexpr std::uint64_t zext(std::uint64_t v, unsigned width) {
  if (width >= 64) return v;
  return v & ((1ULL << width) - 1);
}

/// True when signed value `v` is representable in `width` bits (two's
/// complement).
constexpr bool fits_signed(std::int64_t v, unsigned width) {
  if (width >= 64) return true;
  const std::int64_t lo = -(1LL << (width - 1));
  const std::int64_t hi = (1LL << (width - 1)) - 1;
  return v >= lo && v <= hi;
}

/// True when unsigned value `v` is representable in `width` bits.
constexpr bool fits_unsigned(std::uint64_t v, unsigned width) {
  if (width >= 64) return true;
  return v < (1ULL << width);
}

/// Place the low `len` bits of `field` at position `lo` of a zero word.
constexpr std::uint32_t place(std::uint32_t field, unsigned lo, unsigned len) {
  return (field & ((len >= 32) ? ~0U : ((1U << len) - 1))) << lo;
}

/// Align `v` up to the next multiple of `a` (a power of two).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) & ~(a - 1);
}

}  // namespace rvdyn
