// Snippets: the machine-independent AST describing instrumentation code
// (paper §2, §2.2).
//
// A snippet is an abstract syntax tree with operations for reading/writing
// memory, registers and variables, arithmetic and logical operators,
// function calls, and conditionals. Tools build snippets through the
// factory functions below and never touch machine code; CodeGenAPI lowers
// them to RV64 instruction sequences.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/registers.hpp"

namespace rvdyn::codegen {

/// A memory-resident instrumentation variable (allocated by PatchAPI in
/// the patch data area of the mutatee).
struct Variable {
  std::uint64_t addr = 0;
  std::uint8_t size = 8;
  std::string name;
};

class Snippet;
using SnippetPtr = std::shared_ptr<const Snippet>;

/// Binary operators available in snippet expressions.
enum class BinOp {
  Add, Sub, Mul, Div,
  And, Or, Xor,
  Shl, Shr,
  Eq, Ne, LtS, LtU, GeS, GeU,
};

class Snippet {
 public:
  enum class Kind {
    // Expressions
    Const,    ///< 64-bit constant (`value`)
    Var,      ///< read of a Variable (`var`)
    ReadReg,  ///< read of a mutatee register (`reg`)
    Binary,   ///< kids[0] op kids[1]
    Load,     ///< mem[kids[0]], `mem_size` bytes, zero-extended
    Call,     ///< call mutatee function at `value` with kids as args; yields a0
    // Statements
    AssignVar,  ///< var = kids[0]
    WriteReg,   ///< reg = kids[0]
    Store,      ///< mem[kids[0]] = kids[1], `mem_size` bytes
    Sequence,   ///< kids in order
    If,         ///< if (kids[0] != 0) kids[1] else kids[2] (kids[2] optional)
    Nop,
  };

  Kind kind = Kind::Nop;
  std::int64_t value = 0;
  Variable var;
  isa::Reg reg;
  BinOp op = BinOp::Add;
  std::uint8_t mem_size = 8;
  std::vector<SnippetPtr> kids;

  bool is_expression() const {
    switch (kind) {
      case Kind::Const:
      case Kind::Var:
      case Kind::ReadReg:
      case Kind::Binary:
      case Kind::Load:
      case Kind::Call:
        return true;
      default:
        return false;
    }
  }
};

// ---- factory functions (the tool-facing snippet-building API) ----

SnippetPtr constant(std::int64_t v);
SnippetPtr var_expr(const Variable& v);
SnippetPtr read_reg(isa::Reg r);
SnippetPtr binary(BinOp op, SnippetPtr a, SnippetPtr b);
SnippetPtr load(SnippetPtr addr, std::uint8_t size = 8);
SnippetPtr call(std::uint64_t target, std::vector<SnippetPtr> args = {});

SnippetPtr assign(const Variable& v, SnippetPtr value);
SnippetPtr write_reg(isa::Reg r, SnippetPtr value);
SnippetPtr store(SnippetPtr addr, SnippetPtr value, std::uint8_t size = 8);
SnippetPtr sequence(std::vector<SnippetPtr> stmts);
SnippetPtr if_then(SnippetPtr cond, SnippetPtr then_stmt,
                   SnippetPtr else_stmt = nullptr);
SnippetPtr nop();

/// The canonical profiling snippet: `v = v + k` (paper §4.1's
/// counter-increment instrumentation).
SnippetPtr increment(const Variable& v, std::int64_t k = 1);

}  // namespace rvdyn::codegen
