#include "codegen/snippet.hpp"

namespace rvdyn::codegen {

namespace {

std::shared_ptr<Snippet> make(Snippet::Kind k) {
  auto s = std::make_shared<Snippet>();
  s->kind = k;
  return s;
}

}  // namespace

SnippetPtr constant(std::int64_t v) {
  auto s = make(Snippet::Kind::Const);
  s->value = v;
  return s;
}

SnippetPtr var_expr(const Variable& v) {
  auto s = make(Snippet::Kind::Var);
  s->var = v;
  return s;
}

SnippetPtr read_reg(isa::Reg r) {
  auto s = make(Snippet::Kind::ReadReg);
  s->reg = r;
  return s;
}

SnippetPtr binary(BinOp op, SnippetPtr a, SnippetPtr b) {
  auto s = make(Snippet::Kind::Binary);
  s->op = op;
  s->kids = {std::move(a), std::move(b)};
  return s;
}

SnippetPtr load(SnippetPtr addr, std::uint8_t size) {
  auto s = make(Snippet::Kind::Load);
  s->mem_size = size;
  s->kids = {std::move(addr)};
  return s;
}

SnippetPtr call(std::uint64_t target, std::vector<SnippetPtr> args) {
  auto s = make(Snippet::Kind::Call);
  s->value = static_cast<std::int64_t>(target);
  s->kids = std::move(args);
  return s;
}

SnippetPtr assign(const Variable& v, SnippetPtr value) {
  auto s = make(Snippet::Kind::AssignVar);
  s->var = v;
  s->kids = {std::move(value)};
  return s;
}

SnippetPtr write_reg(isa::Reg r, SnippetPtr value) {
  auto s = make(Snippet::Kind::WriteReg);
  s->reg = r;
  s->kids = {std::move(value)};
  return s;
}

SnippetPtr store(SnippetPtr addr, SnippetPtr value, std::uint8_t size) {
  auto s = make(Snippet::Kind::Store);
  s->mem_size = size;
  s->kids = {std::move(addr), std::move(value)};
  return s;
}

SnippetPtr sequence(std::vector<SnippetPtr> stmts) {
  auto s = make(Snippet::Kind::Sequence);
  s->kids = std::move(stmts);
  return s;
}

SnippetPtr if_then(SnippetPtr cond, SnippetPtr then_stmt,
                   SnippetPtr else_stmt) {
  auto s = make(Snippet::Kind::If);
  s->kids = {std::move(cond), std::move(then_stmt)};
  if (else_stmt) s->kids.push_back(std::move(else_stmt));
  return s;
}

SnippetPtr nop() { return make(Snippet::Kind::Nop); }

SnippetPtr increment(const Variable& v, std::int64_t k) {
  return assign(v, binary(BinOp::Add, var_expr(v), constant(k)));
}

}  // namespace rvdyn::codegen
