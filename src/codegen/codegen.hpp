// CodeGenAPI: lowers machine-independent snippets to RV64 instruction
// sequences (paper §2.2, §3.2.5).
//
// Two properties the paper calls out are implemented here:
//  - extension awareness: the generator refuses to emit instructions from
//    extensions the mutatee's profile lacks (SymtabAPI supplies it);
//  - the dead-register allocation optimization (§4.3): scratch registers
//    come from the dead set computed by DataflowAPI's liveness pass, and
//    only when none are available does the generator spill to the stack.
//    Disabling it (use_dead_registers=false) reproduces the always-spill
//    baseline the paper compares against.
#pragma once

#include <cstdint>
#include <vector>

#include "codegen/snippet.hpp"
#include "common/status.hpp"
#include "isa/extensions.hpp"
#include "isa/instruction.hpp"

namespace rvdyn::codegen {

struct GenOptions {
  isa::ExtensionSet extensions = isa::ExtensionSet::rv64gc();
  bool use_dead_registers = true;
};

/// Accounting for the ablation benchmarks.
struct GenStats {
  unsigned n_insns = 0;
  unsigned scratch_from_dead = 0;  ///< allocations served by dead registers
  unsigned scratch_spilled = 0;    ///< allocations that forced a spill
};

class CodeGenerator {
 public:
  explicit CodeGenerator(GenOptions opts = {}) : opts_(opts) {}

  /// Lower `snippet` to instructions. `dead` is the register set known to
  /// be dead at the instrumentation point (from Liveness::dead_before);
  /// pass an empty set when liveness information is unavailable.
  /// All emitted instructions are standard 4-byte encodings. Throws Error
  /// for snippets requiring extensions outside the target profile.
  std::vector<isa::Instruction> generate(const Snippet& snippet,
                                         isa::RegSet dead,
                                         GenStats* stats = nullptr) const;

  const GenOptions& options() const { return opts_; }

 private:
  GenOptions opts_;
};

/// Encode a generated sequence as raw little-endian bytes.
std::vector<std::uint8_t> encode_sequence(
    const std::vector<isa::Instruction>& insns);

}  // namespace rvdyn::codegen
