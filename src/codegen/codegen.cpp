#include "codegen/codegen.hpp"

#include <algorithm>
#include <array>

#include "common/bits.hpp"
#include "isa/encoder.hpp"
#include "isa/imm_builder.hpp"

namespace rvdyn::codegen {

namespace {

using isa::Instruction;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;

Operand W(Reg r) { return Instruction::reg_op(r, Operand::kWrite); }
Operand R(Reg r) { return Instruction::reg_op(r, Operand::kRead); }
Operand I(std::int64_t v) { return Instruction::imm_op(v); }

// ---- label/fixup buffer (all instructions are 4-byte encodings) ----

class CodeBuffer {
 public:
  std::size_t size() const { return insns_.size(); }

  void emit(Mnemonic mn, std::initializer_list<Operand> ops) {
    insns_.push_back(isa::assemble(mn, ops));
  }
  void push(const Instruction& insn) { insns_.push_back(insn); }

  int new_label() {
    labels_.push_back(-1);
    return static_cast<int>(labels_.size()) - 1;
  }
  void bind(int label) {
    labels_[static_cast<std::size_t>(label)] =
        static_cast<int>(insns_.size());
  }

  void emit_branch(Mnemonic mn, Reg rs1, Reg rs2, int label) {
    fixups_.push_back({insns_.size(), label});
    insns_.push_back(isa::assemble(
        mn, {R(rs1), R(rs2), Instruction::pcrel_op(0)}));
  }
  void emit_jump(int label) {
    fixups_.push_back({insns_.size(), label});
    insns_.push_back(isa::assemble(
        Mnemonic::jal, {W(isa::zero), Instruction::pcrel_op(0)}));
  }

  // Resolve fixups; every instruction occupies exactly 4 bytes.
  std::vector<Instruction> finalize() {
    for (const Fixup& f : fixups_) {
      const int bound = labels_[static_cast<std::size_t>(f.label)];
      if (bound < 0) throw Error("codegen: unbound label");
      const std::int64_t off =
          4 * (static_cast<std::int64_t>(bound) -
               static_cast<std::int64_t>(f.index));
      Instruction& insn = insns_[f.index];
      std::vector<Operand> ops;
      for (unsigned i = 0; i < insn.num_operands(); ++i) {
        Operand o = insn.operand(i);
        if (o.kind == Operand::Kind::PcRelative) o.imm = off;
        ops.push_back(o);
      }
      insn = isa::assemble(insn.mnemonic(), ops);
    }
    fixups_.clear();
    return std::move(insns_);
  }

 private:
  struct Fixup {
    std::size_t index;
    int label;
  };
  std::vector<Instruction> insns_;
  std::vector<int> labels_;
  std::vector<Fixup> fixups_;
};

// ---- scratch register allocation (the dead-register optimization) ----

class ScratchPool {
 public:
  ScratchPool(isa::RegSet dead, bool use_dead, GenStats* stats)
      : dead_(dead), use_dead_(use_dead), stats_(stats) {}

  Reg alloc() {
    // Preference order: temporaries first, then argument registers from
    // the top (a7 is least likely to carry a live argument).
    static constexpr std::uint8_t kOrder[] = {5,  6,  7,  28, 29, 30, 31, 17,
                                              16, 15, 14, 13, 12, 11, 10};
    if (use_dead_) {
      for (std::uint8_t n : kOrder) {
        const Reg r = isa::x(n);
        if (dead_.contains(r) && !in_use_.contains(r)) {
          in_use_.add(r);
          if (stats_) ++stats_->scratch_from_dead;
          return r;
        }
      }
    }
    // No dead register available (or the optimization is disabled):
    // reuse an already-spilled victim, else spill a new one.
    for (std::uint8_t n : kOrder) {
      const Reg r = isa::x(n);
      if (spilled_set_.contains(r) && !in_use_.contains(r)) {
        in_use_.add(r);
        return r;
      }
    }
    for (std::uint8_t n : kOrder) {
      const Reg r = isa::x(n);
      if (!in_use_.contains(r)) {
        in_use_.add(r);
        spilled_set_.add(r);
        spill_order_.push_back(r);
        if (stats_) ++stats_->scratch_spilled;
        return r;
      }
    }
    throw Error("codegen: out of scratch registers");
  }

  void free(Reg r) { in_use_.remove(r); }

  const std::vector<Reg>& spilled() const { return spill_order_; }
  isa::RegSet in_use() const { return in_use_; }
  isa::RegSet dead() const { return dead_; }

 private:
  isa::RegSet dead_;
  bool use_dead_;
  GenStats* stats_;
  isa::RegSet in_use_;
  isa::RegSet spilled_set_;
  std::vector<Reg> spill_order_;
};

// ---- the generator ----

class Generator {
 public:
  Generator(const GenOptions& opts, isa::RegSet dead, GenStats* stats)
      : opts_(opts), pool_(dead, opts.use_dead_registers, stats),
        stats_(stats) {}

  std::vector<Instruction> run(const Snippet& snippet) {
    lower_stmt(snippet);
    std::vector<Instruction> body = buf_.finalize();

    // Wrap with spill save/restore when the allocator had to take live
    // registers. Slots live below sp (RISC-V has no red zone, so sp must
    // be adjusted first).
    std::vector<Instruction> out;
    const auto& spilled = pool_.spilled();
    if (!spilled.empty()) {
      const std::int64_t frame =
          static_cast<std::int64_t>(align_up(spilled.size() * 8, 16));
      out.push_back(
          isa::assemble(Mnemonic::addi, {W(isa::sp), R(isa::sp), I(-frame)}));
      for (std::size_t i = 0; i < spilled.size(); ++i)
        out.push_back(isa::assemble(
            Mnemonic::sd,
            {R(spilled[i]),
             Instruction::mem_op(isa::sp, static_cast<std::int64_t>(i * 8), 8,
                                 Operand::kWrite)}));
      out.insert(out.end(), body.begin(), body.end());
      for (std::size_t i = 0; i < spilled.size(); ++i)
        out.push_back(isa::assemble(
            Mnemonic::ld,
            {W(spilled[i]),
             Instruction::mem_op(isa::sp, static_cast<std::int64_t>(i * 8), 8,
                                 Operand::kRead)}));
      out.push_back(
          isa::assemble(Mnemonic::addi, {W(isa::sp), R(isa::sp), I(frame)}));
    } else {
      out = std::move(body);
    }
    if (stats_) stats_->n_insns = static_cast<unsigned>(out.size());
    return out;
  }

 private:
  void require(isa::Extension e, const char* what) {
    if (!opts_.extensions.has(e))
      throw Error(std::string("codegen: snippet needs the ") +
                  isa::extension_name(e) + " extension for " + what +
                  ", absent from the mutatee's profile");
  }

  void materialize(Reg rd, std::int64_t v) {
    std::vector<Instruction> seq;
    isa::materialize_imm(rd, v, &seq);
    for (const auto& i : seq) buf_.push(i);
  }

  // -- expressions --

  Reg lower_expr(const Snippet& s) {
    switch (s.kind) {
      case Snippet::Kind::Const: {
        const Reg r = pool_.alloc();
        materialize(r, s.value);
        return r;
      }
      case Snippet::Kind::Var: {
        const Reg addr = pool_.alloc();
        materialize(addr, static_cast<std::int64_t>(s.var.addr));
        const Reg v = pool_.alloc();
        buf_.emit(load_mnemonic(s.var.size),
                  {W(v), Instruction::mem_op(addr, 0, s.var.size,
                                             Operand::kRead)});
        pool_.free(addr);
        return v;
      }
      case Snippet::Kind::ReadReg:
        // Read the mutatee register in place (never allocated as scratch
        // unless dead, and reading a dead register is ill-formed anyway).
        return s.reg;
      case Snippet::Kind::Binary:
        return lower_binary(s);
      case Snippet::Kind::Load: {
        const Reg addr = lower_expr(*s.kids[0]);
        const Reg v = pool_.alloc();
        buf_.emit(load_mnemonic(s.mem_size),
                  {W(v), Instruction::mem_op(addr, 0, s.mem_size,
                                             Operand::kRead)});
        free_if_scratch(addr, *s.kids[0]);
        return v;
      }
      case Snippet::Kind::Call:
        return lower_call(s);
      default:
        throw Error("codegen: statement used where expression expected");
    }
  }

  Reg lower_binary(const Snippet& s) {
    const Reg a = lower_expr(*s.kids[0]);
    const Reg b = lower_expr(*s.kids[1]);
    const Reg d = pool_.alloc();
    switch (s.op) {
      case BinOp::Add: buf_.emit(Mnemonic::add, {W(d), R(a), R(b)}); break;
      case BinOp::Sub: buf_.emit(Mnemonic::sub, {W(d), R(a), R(b)}); break;
      case BinOp::Mul:
        require(isa::Extension::M, "multiplication");
        buf_.emit(Mnemonic::mul, {W(d), R(a), R(b)});
        break;
      case BinOp::Div:
        require(isa::Extension::M, "division");
        buf_.emit(Mnemonic::div, {W(d), R(a), R(b)});
        break;
      case BinOp::And: buf_.emit(Mnemonic::and_, {W(d), R(a), R(b)}); break;
      case BinOp::Or: buf_.emit(Mnemonic::or_, {W(d), R(a), R(b)}); break;
      case BinOp::Xor: buf_.emit(Mnemonic::xor_, {W(d), R(a), R(b)}); break;
      case BinOp::Shl: buf_.emit(Mnemonic::sll, {W(d), R(a), R(b)}); break;
      case BinOp::Shr: buf_.emit(Mnemonic::srl, {W(d), R(a), R(b)}); break;
      case BinOp::LtS: buf_.emit(Mnemonic::slt, {W(d), R(a), R(b)}); break;
      case BinOp::LtU: buf_.emit(Mnemonic::sltu, {W(d), R(a), R(b)}); break;
      case BinOp::GeS:
        buf_.emit(Mnemonic::slt, {W(d), R(a), R(b)});
        buf_.emit(Mnemonic::xori, {W(d), R(d), I(1)});
        break;
      case BinOp::GeU:
        buf_.emit(Mnemonic::sltu, {W(d), R(a), R(b)});
        buf_.emit(Mnemonic::xori, {W(d), R(d), I(1)});
        break;
      case BinOp::Eq:
        buf_.emit(Mnemonic::sub, {W(d), R(a), R(b)});
        buf_.emit(Mnemonic::sltiu, {W(d), R(d), I(1)});
        break;
      case BinOp::Ne:
        buf_.emit(Mnemonic::sub, {W(d), R(a), R(b)});
        buf_.emit(Mnemonic::sltu, {W(d), R(isa::zero), R(d)});
        break;
    }
    free_if_scratch(a, *s.kids[0]);
    free_if_scratch(b, *s.kids[1]);
    return d;
  }

  // Calls clobber the caller-saved file; the sequence builds its own frame:
  //   [arg slots][save slots][result]
  Reg lower_call(const Snippet& s) {
    if (s.kids.size() > 8) throw Error("codegen: more than 8 call arguments");
    const std::size_t n_args = s.kids.size();

    // Registers that must survive the call: in-use scratches plus every
    // caller-saved register not known dead (their mutatee values matter).
    std::vector<Reg> to_save;
    to_save.push_back(isa::ra);
    for (std::uint8_t n = 5; n <= 31; ++n) {
      const Reg r = isa::x(n);
      if (!isa::is_caller_saved(r)) continue;
      if (pool_.in_use().contains(r) || !pool_.dead().contains(r))
        to_save.push_back(r);
    }

    const std::int64_t frame = static_cast<std::int64_t>(
        align_up((n_args + to_save.size() + 1) * 8, 16));
    auto slot = [&](std::size_t i) { return static_cast<std::int64_t>(i * 8); };
    const std::size_t save_base = n_args;
    const std::size_t result_slot = n_args + to_save.size();

    buf_.emit(Mnemonic::addi, {W(isa::sp), R(isa::sp), I(-frame)});
    // Evaluate arguments into their slots (may allocate/free scratches).
    for (std::size_t i = 0; i < n_args; ++i) {
      const Reg v = lower_expr(*s.kids[i]);
      buf_.emit(Mnemonic::sd,
                {R(v), Instruction::mem_op(isa::sp, slot(i), 8,
                                           Operand::kWrite)});
      free_if_scratch(v, *s.kids[i]);
    }
    for (std::size_t i = 0; i < to_save.size(); ++i)
      buf_.emit(Mnemonic::sd,
                {R(to_save[i]),
                 Instruction::mem_op(isa::sp, slot(save_base + i), 8,
                                     Operand::kWrite)});
    for (std::size_t i = 0; i < n_args; ++i)
      buf_.emit(Mnemonic::ld,
                {W(isa::x(static_cast<std::uint8_t>(10 + i))),
                 Instruction::mem_op(isa::sp, slot(i), 8, Operand::kRead)});
    // Target through t6 (saved above when it mattered).
    materialize(isa::t6, s.value);
    buf_.emit(Mnemonic::jalr, {W(isa::ra), R(isa::t6), I(0)});
    buf_.emit(Mnemonic::sd,
              {R(isa::a0), Instruction::mem_op(isa::sp, slot(result_slot), 8,
                                               Operand::kWrite)});
    for (std::size_t i = 0; i < to_save.size(); ++i)
      buf_.emit(Mnemonic::ld,
                {W(to_save[i]),
                 Instruction::mem_op(isa::sp, slot(save_base + i), 8,
                                     Operand::kRead)});
    const Reg result = pool_.alloc();
    buf_.emit(Mnemonic::ld,
              {W(result), Instruction::mem_op(isa::sp, slot(result_slot), 8,
                                              Operand::kRead)});
    buf_.emit(Mnemonic::addi, {W(isa::sp), R(isa::sp), I(frame)});
    return result;
  }

  // -- statements --

  void lower_stmt(const Snippet& s) {
    switch (s.kind) {
      case Snippet::Kind::Sequence:
        for (const auto& k : s.kids) lower_stmt(*k);
        return;
      case Snippet::Kind::Nop:
        return;
      case Snippet::Kind::AssignVar:
        lower_assign(s);
        return;
      case Snippet::Kind::WriteReg: {
        const Reg v = lower_expr(*s.kids[0]);
        buf_.emit(Mnemonic::addi, {W(s.reg), R(v), I(0)});
        free_if_scratch(v, *s.kids[0]);
        return;
      }
      case Snippet::Kind::Store: {
        const Reg addr = lower_expr(*s.kids[0]);
        const Reg v = lower_expr(*s.kids[1]);
        buf_.emit(store_mnemonic(s.mem_size),
                  {R(v), Instruction::mem_op(addr, 0, s.mem_size,
                                             Operand::kWrite)});
        free_if_scratch(addr, *s.kids[0]);
        free_if_scratch(v, *s.kids[1]);
        return;
      }
      case Snippet::Kind::If: {
        const Reg cond = lower_expr(*s.kids[0]);
        const int l_else = buf_.new_label();
        const int l_end = buf_.new_label();
        buf_.emit_branch(Mnemonic::beq, cond, isa::zero, l_else);
        free_if_scratch(cond, *s.kids[0]);
        lower_stmt(*s.kids[1]);
        if (s.kids.size() > 2) {
          buf_.emit_jump(l_end);
          buf_.bind(l_else);
          lower_stmt(*s.kids[2]);
          buf_.bind(l_end);
        } else {
          buf_.bind(l_else);
          buf_.bind(l_end);
        }
        return;
      }
      default: {
        // Expression in statement position: evaluate for effects.
        const Reg v = lower_expr(s);
        free_if_scratch(v, s);
        return;
      }
    }
  }

  void lower_assign(const Snippet& s) {
    const Snippet& value = *s.kids[0];
    // Counter peephole: v = v ± k computes the address once.
    if (value.kind == Snippet::Kind::Binary &&
        (value.op == BinOp::Add || value.op == BinOp::Sub) &&
        value.kids[0]->kind == Snippet::Kind::Var &&
        value.kids[0]->var.addr == s.var.addr &&
        value.kids[1]->kind == Snippet::Kind::Const &&
        fits_signed(value.kids[1]->value, 11)) {
      const std::int64_t k = value.op == BinOp::Add ? value.kids[1]->value
                                                    : -value.kids[1]->value;
      const Reg addr = pool_.alloc();
      materialize(addr, static_cast<std::int64_t>(s.var.addr));
      const Reg tmp = pool_.alloc();
      buf_.emit(load_mnemonic(s.var.size),
                {W(tmp), Instruction::mem_op(addr, 0, s.var.size,
                                             Operand::kRead)});
      buf_.emit(Mnemonic::addi, {W(tmp), R(tmp), I(k)});
      buf_.emit(store_mnemonic(s.var.size),
                {R(tmp), Instruction::mem_op(addr, 0, s.var.size,
                                             Operand::kWrite)});
      pool_.free(tmp);
      pool_.free(addr);
      return;
    }
    const Reg v = lower_expr(value);
    const Reg addr = pool_.alloc();
    materialize(addr, static_cast<std::int64_t>(s.var.addr));
    buf_.emit(store_mnemonic(s.var.size),
              {R(v), Instruction::mem_op(addr, 0, s.var.size,
                                         Operand::kWrite)});
    pool_.free(addr);
    free_if_scratch(v, value);
  }

  // ReadReg results are mutatee registers, not pool allocations.
  void free_if_scratch(Reg r, const Snippet& s) {
    if (s.kind != Snippet::Kind::ReadReg) pool_.free(r);
  }

  static Mnemonic load_mnemonic(std::uint8_t size) {
    switch (size) {
      case 1: return Mnemonic::lbu;
      case 2: return Mnemonic::lhu;
      case 4: return Mnemonic::lwu;
      default: return Mnemonic::ld;
    }
  }
  static Mnemonic store_mnemonic(std::uint8_t size) {
    switch (size) {
      case 1: return Mnemonic::sb;
      case 2: return Mnemonic::sh;
      case 4: return Mnemonic::sw;
      default: return Mnemonic::sd;
    }
  }

  GenOptions opts_;
  CodeBuffer buf_;
  ScratchPool pool_;
  GenStats* stats_;
};

}  // namespace

std::vector<Instruction> CodeGenerator::generate(const Snippet& snippet,
                                                 isa::RegSet dead,
                                                 GenStats* stats) const {
  Generator gen(opts_, dead, stats);
  return gen.run(snippet);
}

std::vector<std::uint8_t> encode_sequence(
    const std::vector<Instruction>& insns) {
  std::vector<std::uint8_t> out;
  out.reserve(insns.size() * 4);
  for (const Instruction& i : insns) {
    const std::uint32_t w = i.raw();
    out.push_back(static_cast<std::uint8_t>(w));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
    out.push_back(static_cast<std::uint8_t>(w >> 16));
    out.push_back(static_cast<std::uint8_t>(w >> 24));
  }
  return out;
}

}  // namespace rvdyn::codegen
