// ProcControlAPI: OS-independent process control (paper §2.2, §3.2.6).
//
// Debugger-grade control over an emulated RISC-V process: launch or attach,
// breakpoints (by patching ebreak into the code, exactly as ptrace-based
// debuggers do), memory/register access, and single-stepping. Because
// RISC-V ptrace lacks PTRACE_SINGLESTEP, the paper's port emulates stepping
// with breakpoints; both that emulation and the native step are provided so
// their costs can be compared (bench A5).
//
// Dynamic instrumentation: ProcessSpace implements patch::AddressSpace
// over the live (emulated) process, so BinaryEditor::commit_to() installs
// — and revert_from() removes — instrumentation through exactly the same
// engine path as static rewriting: the paper's "attach and instrument a
// running process" flow (Figure 1).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "emu/machine.hpp"
#include "patch/address_space.hpp"
#include "patch/editor.hpp"

namespace rvdyn::proccontrol {

class Process;

/// Dynamic-instrumentation backend of patch::AddressSpace: regions become
/// fresh pages in the emulated memory, code writes go through the
/// machine's decode-cache-invalidating path, and trap entries become
/// debugger-runtime redirects.
class ProcessSpace : public patch::AddressSpace {
 public:
  explicit ProcessSpace(Process* proc) : proc_(proc) {}

  const char* backend() const override { return "process"; }
  void map_region(const patch::MappedRegion& region) override;
  void write_code(std::uint64_t addr, const std::uint8_t* data,
                  std::size_t n) override;
  std::vector<std::uint8_t> read_code(std::uint64_t addr,
                                      std::size_t n) const override;
  void install_traps(const std::vector<patch::TrapEntry>& traps) override;
  void remove_traps(const std::vector<patch::TrapEntry>& traps) override;

 private:
  Process* proc_;
};

/// What stopped the process.
struct Event {
  enum class Kind {
    Stopped,      ///< hit a user breakpoint
    Stepped,      ///< single-step completed
    Exited,       ///< process exited (code in `exit_code`)
    Crashed,      ///< illegal instruction / bad fetch / bad syscall
    LimitReached, ///< step budget exhausted (still runnable)
    WatchHit,     ///< a data watchpoint fired (details in machine().watch_hit())
  };
  Kind kind = Kind::Stopped;
  std::uint64_t addr = 0;
  int exit_code = 0;
};

class Process {
 public:
  /// Spawn: create a fresh process image from `binary` (Figure 1's
  /// create-and-instrument form).
  static std::unique_ptr<Process> launch(const symtab::Symtab& binary);

  /// Attach to an already-running machine (Figure 1's attach form).
  static std::unique_ptr<Process> attach(std::unique_ptr<emu::Machine> m);

  // --- watchpoints (data breakpoints) ---
  unsigned set_watchpoint(std::uint64_t addr, std::uint64_t size,
                          bool on_read = false, bool on_write = true) {
    return machine_->set_watchpoint(addr, size, on_read, on_write);
  }
  void clear_watchpoint(unsigned id) { machine_->clear_watchpoint(id); }

  // --- breakpoints ---
  /// Insert a breakpoint at `addr` (replaces the instruction with a trap of
  /// matching width). Idempotent.
  void insert_breakpoint(std::uint64_t addr);
  void remove_breakpoint(std::uint64_t addr);
  bool has_breakpoint(std::uint64_t addr) const {
    return breakpoints_.count(addr) != 0;
  }

  // --- execution ---
  /// Resume until an event (stepping over a breakpoint at the current pc
  /// first, as debuggers do).
  Event continue_run(std::uint64_t max_steps = ~0ULL);

  /// True hardware-style single-step (what ptrace lacks on RISC-V).
  Event step_native();

  /// Breakpoint-emulated single-step (paper §3.2.6): plant temporary traps
  /// at every possible successor of the current instruction, run, remove.
  Event step_emulated();

  // --- state access ---
  std::uint64_t pc() const { return machine_->pc(); }
  void set_pc(std::uint64_t a) { machine_->set_pc(a); }
  std::uint64_t get_reg(isa::Reg r) const { return machine_->get_reg(r); }
  void set_reg(isa::Reg r, std::uint64_t v) { machine_->set_reg(r, v); }
  std::uint64_t read_mem(std::uint64_t addr, unsigned size) {
    return machine_->memory().read(addr, size);
  }
  void write_mem(std::uint64_t addr, std::uint64_t v, unsigned size) {
    machine_->memory().write(addr, v, size);
  }
  /// Code writes go through the machine so its decode cache invalidates.
  void write_code(std::uint64_t addr, const std::uint8_t* data,
                  std::size_t n) {
    machine_->write_code(addr, data, n);
  }

  // --- dynamic instrumentation ---
  /// This process viewed as a relocation-commit target. The editor's
  /// commit_to(address_space()) is what apply_patch() does.
  patch::AddressSpace& address_space() { return space_; }

  /// Apply a BinaryEditor's PatchPlan to this live process: maps the
  /// patch-area regions, writes the springboards, and installs the trap
  /// table (BinaryEditor::commit_to over address_space()).
  void apply_patch(patch::BinaryEditor& editor);

  /// Remove previously applied instrumentation: restore the original
  /// springboarded bytes and drop the trap redirects — the engine's
  /// first-class removal (BinaryEditor::revert_from). The patch area stays
  /// mapped (execution already inside it finishes normally) but no new
  /// entries divert into it.
  void revert_patch(patch::BinaryEditor& editor);

  /// Install / remove trap-springboard redirects (normally via
  /// apply_patch / revert_patch).
  void install_trap_table(const std::vector<patch::TrapEntry>& traps);
  void remove_trap_table(const std::vector<patch::TrapEntry>& traps);

  // --- profiling (tool-facing "hardware" counter surface) ---
  /// Emulated hardware counter file: instret, cycles, cache hit/miss.
  emu::Machine::HwCounterFile hw_counters() const {
    return machine_->hw_counters();
  }
  /// Per-PC hit/cycle profiling; hits at a block's start address equal the
  /// number of times that block was entered.
  void enable_pc_profile(bool on) { machine_->enable_pc_profile(on); }
  bool pc_profile_enabled() const { return machine_->pc_profile_enabled(); }
  const std::unordered_map<std::uint64_t, emu::Machine::PcCount>& pc_profile()
      const {
    return machine_->pc_profile();
  }
  void clear_pc_profile() { machine_->clear_pc_profile(); }

  emu::Machine& machine() { return *machine_; }
  const emu::Machine& machine() const { return *machine_; }

 private:
  explicit Process(std::unique_ptr<emu::Machine> m)
      : machine_(std::move(m)) {}

  /// Width (2 or 4) of the instruction at `addr`.
  unsigned insn_width_at(std::uint64_t addr);
  /// All possible successor pcs of the instruction at `addr`.
  std::vector<std::uint64_t> successors_of(std::uint64_t addr);
  /// Map a machine stop to an Event, applying trap-table redirects.
  std::optional<Event> translate_stop(emu::StopReason r);
  /// Step across a breakpoint at the current pc; returns the machine's
  /// stop reason when the stepped instruction itself terminated/faulted.
  emu::StopReason step_over_breakpoint();

  std::unique_ptr<emu::Machine> machine_;
  ProcessSpace space_{this};
  struct SavedBytes {
    std::vector<std::uint8_t> bytes;
  };
  std::map<std::uint64_t, SavedBytes> breakpoints_;
  std::map<std::uint64_t, std::uint64_t> trap_redirects_;
};

}  // namespace rvdyn::proccontrol
