#include "proccontrol/process.hpp"

#include "isa/decoder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rvdyn::proccontrol {

namespace {

using emu::Machine;
using emu::StopReason;

constexpr std::uint8_t kEbreak32[4] = {0x73, 0x00, 0x10, 0x00};
constexpr std::uint8_t kEbreak16[2] = {0x02, 0x90};  // c.ebreak

}  // namespace

std::unique_ptr<Process> Process::launch(const symtab::Symtab& binary) {
  auto m = std::make_unique<Machine>(binary.extensions());
  m->load(binary);
  return std::unique_ptr<Process>(new Process(std::move(m)));
}

std::unique_ptr<Process> Process::attach(std::unique_ptr<emu::Machine> m) {
  return std::unique_ptr<Process>(new Process(std::move(m)));
}

unsigned Process::insn_width_at(std::uint64_t addr) {
  const std::uint16_t half =
      static_cast<std::uint16_t>(machine_->memory().read(addr, 2));
  return isa::is_compressed_encoding(half) ? 2u : 4u;
}

void Process::insert_breakpoint(std::uint64_t addr) {
  if (breakpoints_.count(addr)) return;
  RVDYN_OBS_COUNT("rvdyn.proc.breakpoints_inserted");
  const unsigned width = insn_width_at(addr);
  SavedBytes saved;
  saved.bytes.resize(width);
  machine_->memory().read_bytes(addr, saved.bytes.data(), width);
  machine_->write_code(addr, width == 2 ? kEbreak16 : kEbreak32, width);
  breakpoints_.emplace(addr, std::move(saved));
}

void Process::remove_breakpoint(std::uint64_t addr) {
  auto it = breakpoints_.find(addr);
  if (it == breakpoints_.end()) return;
  machine_->write_code(addr, it->second.bytes.data(),
                       it->second.bytes.size());
  breakpoints_.erase(it);
}

std::optional<Event> Process::translate_stop(StopReason r) {
  switch (r) {
    case StopReason::Exited:
      return Event{Event::Kind::Exited, machine_->pc(),
                   machine_->exit_code()};
    case StopReason::Breakpoint: {
      const std::uint64_t at = machine_->pc();
      // Trap springboards redirect silently (the paper's §3.1.2 worst-case
      // entry patch); real breakpoints surface to the tool.
      auto redirect = trap_redirects_.find(at);
      if (redirect != trap_redirects_.end() && !breakpoints_.count(at)) {
        RVDYN_OBS_COUNT("rvdyn.proc.trap_redirects");
        machine_->set_pc(redirect->second);
        // Each springboard trap costs a debugger round trip (§3.1.2's
        // "inefficient" worst case); charge it to the virtual clock.
        machine_->add_cycles(machine_->cycle_model().trap_roundtrip);
        return std::nullopt;  // keep running
      }
      return Event{Event::Kind::Stopped, at, 0};
    }
    case StopReason::Watchpoint:
      return Event{Event::Kind::WatchHit, machine_->watch_hit().pc, 0};
    case StopReason::Running:
      return Event{Event::Kind::LimitReached, machine_->pc(), 0};
    default:
      return Event{Event::Kind::Crashed, machine_->pc(), 0};
  }
}

StopReason Process::step_over_breakpoint() {
  const std::uint64_t at = machine_->pc();
  auto it = breakpoints_.find(at);
  if (it == breakpoints_.end()) return StopReason::Running;
  // Classic ptrace dance: restore, native-step, re-insert. The stepped
  // instruction may itself terminate the process (an exiting ecall) or
  // fault; that outcome must surface, not be swallowed.
  const SavedBytes saved = it->second;
  machine_->write_code(at, saved.bytes.data(), saved.bytes.size());
  breakpoints_.erase(at);
  const StopReason r = machine_->step();
  insert_breakpoint(at);
  return r == StopReason::Running ? StopReason::Running : r;
}

Event Process::continue_run(std::uint64_t max_steps) {
  RVDYN_OBS_SPAN("rvdyn.proc.continue_run");
  const StopReason stepped = step_over_breakpoint();
  if (stepped != StopReason::Running) {
    if (auto ev = translate_stop(stepped)) return *ev;
  }
  std::uint64_t budget = max_steps;
  while (true) {
    const StopReason r = machine_->run(budget);
    budget = max_steps;  // each resume gets the full budget
    if (auto ev = translate_stop(r)) return *ev;
  }
}

Event Process::step_native() {
  // Breakpoint bytes at pc must not be executed: step the real insn.
  const std::uint64_t at = machine_->pc();
  auto it = breakpoints_.find(at);
  if (it != breakpoints_.end()) {
    step_over_breakpoint();
    return Event{Event::Kind::Stepped, machine_->pc(), 0};
  }
  const StopReason r = machine_->step();
  if (r == StopReason::Running)
    return Event{Event::Kind::Stepped, machine_->pc(), 0};
  if (auto ev = translate_stop(r)) return *ev;
  // A trap redirect happened during the step; report the landing spot.
  return Event{Event::Kind::Stepped, machine_->pc(), 0};
}

std::vector<std::uint64_t> Process::successors_of(std::uint64_t addr) {
  std::uint8_t buf[4];
  machine_->memory().read_bytes(addr, buf, 4);
  isa::Decoder dec;
  isa::Instruction insn;
  const unsigned len = dec.decode(buf, 4, &insn);
  if (len == 0) return {};
  const std::uint64_t next = addr + len;
  if (insn.is_cond_branch())
    return {next, addr + static_cast<std::uint64_t>(insn.branch_offset())};
  if (insn.is_jal())
    return {addr + static_cast<std::uint64_t>(insn.branch_offset())};
  if (insn.is_jalr()) {
    const std::uint64_t target =
        (machine_->get_reg(insn.operand(1).reg) +
         static_cast<std::uint64_t>(insn.operand(2).imm)) & ~1ULL;
    return {target};
  }
  return {next};
}

Event Process::step_emulated() {
  const std::uint64_t at = machine_->pc();
  if (breakpoints_.count(at)) {
    step_over_breakpoint();
    return Event{Event::Kind::Stepped, machine_->pc(), 0};
  }
  const auto succs = successors_of(at);
  if (succs.empty()) {  // undecodable: let the machine report the fault
    const StopReason r = machine_->step();
    if (auto ev = translate_stop(r)) return *ev;
    return Event{Event::Kind::Stepped, machine_->pc(), 0};
  }
  // Plant temporary traps at each successor (skipping existing ones),
  // resume, then remove. This is the software single-step of §3.2.6.
  std::vector<std::uint64_t> planted;
  for (std::uint64_t s : succs) {
    if (breakpoints_.count(s)) continue;
    insert_breakpoint(s);
    planted.push_back(s);
  }
  const StopReason r = machine_->run();
  for (std::uint64_t s : planted) remove_breakpoint(s);
  if (r == StopReason::Breakpoint) {
    const std::uint64_t stop = machine_->pc();
    auto redirect = trap_redirects_.find(stop);
    if (redirect != trap_redirects_.end() && !breakpoints_.count(stop))
      machine_->set_pc(redirect->second);
    return Event{Event::Kind::Stepped, machine_->pc(), 0};
  }
  if (auto ev = translate_stop(r)) return *ev;
  return Event{Event::Kind::Stepped, machine_->pc(), 0};
}

void Process::install_trap_table(const std::vector<patch::TrapEntry>& traps) {
  for (const auto& t : traps) trap_redirects_[t.from] = t.to;
}

void Process::remove_trap_table(const std::vector<patch::TrapEntry>& traps) {
  for (const auto& t : traps) trap_redirects_.erase(t.from);
}

void Process::apply_patch(patch::BinaryEditor& editor) {
  RVDYN_OBS_SPAN("rvdyn.proc.apply_patch");
  editor.commit_to(space_).throw_if_error();
}

void Process::revert_patch(patch::BinaryEditor& editor) {
  RVDYN_OBS_SPAN("rvdyn.proc.revert_patch");
  editor.revert_from(space_).throw_if_error();
}

// ---- ProcessSpace: the dynamic AddressSpace backend ----------------------

void ProcessSpace::map_region(const patch::MappedRegion& region) {
  // The emulated memory is demand-allocated: writing the bytes maps them.
  proc_->machine().write_code(region.addr, region.bytes.data(),
                              region.bytes.size());
  RVDYN_OBS_COUNT_N("rvdyn.proc.patch_bytes_written", region.bytes.size());
}

void ProcessSpace::write_code(std::uint64_t addr, const std::uint8_t* data,
                              std::size_t n) {
  proc_->machine().write_code(addr, data, n);
  RVDYN_OBS_COUNT_N("rvdyn.proc.patch_bytes_written", n);
}

std::vector<std::uint8_t> ProcessSpace::read_code(std::uint64_t addr,
                                                  std::size_t n) const {
  std::vector<std::uint8_t> out(n);
  proc_->machine().memory().read_bytes(addr, out.data(), n);
  return out;
}

void ProcessSpace::install_traps(const std::vector<patch::TrapEntry>& traps) {
  proc_->install_trap_table(traps);
  RVDYN_OBS_COUNT_N("rvdyn.proc.traps_installed", traps.size());
}

void ProcessSpace::remove_traps(const std::vector<patch::TrapEntry>& traps) {
  proc_->remove_trap_table(traps);
}

}  // namespace rvdyn::proccontrol
