#include "assembler/assembler.hpp"

#include <cctype>
#include <cstring>
#include <map>
#include <set>
#include <optional>
#include <sstream>
#include <vector>

#include "common/bits.hpp"
#include "isa/decoder.hpp"
#include "isa/encoder.hpp"
#include "isa/imm_builder.hpp"
#include "obs/trace.hpp"

namespace rvdyn::assembler {

namespace {

using isa::Instruction;
using isa::Mnemonic;
using isa::Operand;
using isa::Reg;

enum class SecKind { Text, Rodata, Data, Bss, kCount };

const char* section_name(SecKind k) {
  switch (k) {
    case SecKind::Text: return ".text";
    case SecKind::Rodata: return ".rodata";
    case SecKind::Data: return ".data";
    case SecKind::Bss: return ".bss";
    default: return "?";
  }
}

enum class Reloc {
  None,
  Branch,   ///< B-type pc-relative to a label
  Jal,      ///< J-type pc-relative to a label
  PcrelHi,  ///< auipc hi20 of (label - pc)
  PcrelLo,  ///< low 12 bits paired with a PcrelHi item (hi_link)
  Abs64,    ///< 8-byte data cell holding a label address
  Abs32,    ///< 4-byte data cell holding a label address
};

struct Item {
  enum class Kind { Insn, Bytes, Align, Zero } kind = Kind::Insn;

  // Kind::Insn
  Mnemonic mn = Mnemonic::kInvalid;
  std::vector<Operand> ops;
  Reloc reloc = Reloc::None;
  std::string target;
  std::int64_t addend = 0;
  int hi_link = -1;  ///< for PcrelLo: index of the paired PcrelHi item
  unsigned size = 4;
  bool no_compress = false;  ///< set while `.option norvc` is active

  // Kind::Bytes (also carries Abs64/Abs32 relocs at `addend` offset 0)
  std::vector<std::uint8_t> bytes;

  // Kind::Align / Kind::Zero
  std::uint64_t count = 0;

  std::uint64_t addr = 0;
  int line = 0;
};

struct LabelDef {
  SecKind sec = SecKind::Text;
  std::size_t item_index = 0;  ///< address of the item at this index
  bool global = false;
  bool is_func = false;
  std::uint64_t size = 0;
};

struct SizeRequest {  ///< ".size name, .-name"
  std::string name;
  SecKind sec;
  std::size_t end_index;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw Error("asm:" + std::to_string(line) + ": " + msg);
}

// ---------------------------------------------------------------------------
// tokenizing
// ---------------------------------------------------------------------------

std::string strip(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// Split on commas that are outside quotes and parentheses.
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  bool in_str = false;
  for (char c : s) {
    if (c == '"') in_str = !in_str;
    if (!in_str) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ',' && depth == 0) {
        out.push_back(strip(cur));
        cur.clear();
        continue;
      }
    }
    cur += c;
  }
  if (!strip(cur).empty()) out.push_back(strip(cur));
  return out;
}

bool parse_int(const std::string& tok, std::int64_t* out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 0);
  if (errno == 0 && end == tok.c_str() + tok.size()) {
    *out = v;
    return true;
  }
  // Large unsigned 64-bit literals (common in .dword FP bit patterns)
  // overflow strtoll; accept them via the unsigned parse.
  errno = 0;
  const unsigned long long u = std::strtoull(tok.c_str(), &end, 0);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = static_cast<std::int64_t>(u);
  return true;
}

// "label", "label+4", "label-8", or a plain integer.
void parse_symbol_ref(const std::string& tok, int line, std::string* name,
                      std::int64_t* addend) {
  *addend = 0;
  std::int64_t v;
  if (parse_int(tok, &v)) {  // numeric branch target = raw byte offset
    name->clear();
    *addend = v;
    return;
  }
  std::size_t pos = tok.find_first_of("+-", 1);
  if (pos == std::string::npos) {
    *name = strip(tok);
    return;
  }
  *name = strip(tok.substr(0, pos));
  std::string rest = strip(tok.substr(pos));
  if (!parse_int(rest, addend)) fail(line, "bad symbol addend: " + tok);
}

std::optional<std::int64_t> parse_csr(const std::string& tok) {
  static const std::map<std::string, std::int64_t> names = {
      {"fflags", 0x001}, {"frm", 0x002},     {"fcsr", 0x003},
      {"cycle", 0xC00},  {"time", 0xC01},    {"instret", 0xC02},
  };
  auto it = names.find(tok);
  if (it != names.end()) return it->second;
  std::int64_t v;
  if (parse_int(tok, &v) && v >= 0 && v < 4096) return v;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// the assembler object
// ---------------------------------------------------------------------------

class Assembler {
 public:
  explicit Assembler(const Options& opts) : opts_(opts) {
    compress_enabled_ =
        opts.auto_compress && opts.extensions.has(isa::Extension::C);
  }

  symtab::Symtab run(const std::string& source) {
    parse(source);
    layout();
    return emit();
  }

 private:
  // ---- parsing ----

  void parse(const std::string& source) {
    std::istringstream in(source);
    std::string raw;
    int line = 0;
    while (std::getline(in, raw)) {
      ++line;
      line_ = line;
      std::string s = strip_comment(raw);
      // Leading labels (possibly several on one line).
      while (true) {
        s = strip(s);
        const std::size_t colon = s.find(':');
        if (colon == std::string::npos) break;
        const std::string head = strip(s.substr(0, colon));
        if (head.empty() || head.find(' ') != std::string::npos ||
            head.find('\t') != std::string::npos || head[0] == '.')
          break;
        define_label(head);
        s = s.substr(colon + 1);
      }
      s = strip(s);
      if (s.empty()) continue;
      if (s[0] == '.') {
        directive(s);
      } else {
        instruction(s);
      }
    }
  }

  static std::string strip_comment(const std::string& s) {
    std::string out;
    bool in_str = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '"') in_str = !in_str;
      if (!in_str && (c == '#' || (c == '/' && i + 1 < s.size() && s[i + 1] == '/')))
        break;
      out += c;
    }
    return out;
  }

  void define_label(const std::string& name) {
    if (labels_.count(name)) fail(line_, "duplicate label: " + name);
    LabelDef def;
    def.sec = cur_;
    def.item_index = items_[static_cast<int>(cur_)].size();
    def.global = pending_globals_.count(name) > 0;
    // Only .globl/.type-declared text labels are functions; plain local
    // labels stay untyped so ParseAPI does not mistake branch targets for
    // function entries.
    def.is_func = cur_ == SecKind::Text &&
                  (def.global || pending_func_types_.count(name) > 0);
    labels_[name] = def;
    label_order_.push_back(name);
  }

  void directive(const std::string& s) {
    std::istringstream in(s);
    std::string dir;
    in >> dir;
    std::string rest = strip(s.substr(dir.size() < s.size() ? dir.size() : s.size()));

    if (dir == ".text") { cur_ = SecKind::Text; return; }
    if (dir == ".rodata") { cur_ = SecKind::Rodata; return; }
    if (dir == ".data") { cur_ = SecKind::Data; return; }
    if (dir == ".bss") { cur_ = SecKind::Bss; return; }
    if (dir == ".section") {
      const auto args = split_operands(rest);
      if (args.empty()) fail(line_, ".section needs a name");
      const std::string& n = args[0];
      if (n == ".text") cur_ = SecKind::Text;
      else if (n == ".rodata" || n.rfind(".rodata.", 0) == 0) cur_ = SecKind::Rodata;
      else if (n == ".data" || n.rfind(".data.", 0) == 0) cur_ = SecKind::Data;
      else if (n == ".bss") cur_ = SecKind::Bss;
      else fail(line_, "unsupported section: " + n);
      return;
    }
    if (dir == ".globl" || dir == ".global") {
      for (const auto& n : split_operands(rest)) {
        pending_globals_.insert(n);
        auto it = labels_.find(n);
        if (it != labels_.end()) {
          it->second.global = true;
          if (it->second.sec == SecKind::Text) it->second.is_func = true;
        }
      }
      return;
    }
    if (dir == ".type") {
      const auto args = split_operands(rest);
      if (args.size() == 2 && (args[1] == "@function" || args[1] == "%function")) {
        auto it = labels_.find(args[0]);
        if (it != labels_.end()) it->second.is_func = true;
        pending_func_types_.insert(args[0]);
      }
      return;
    }
    if (dir == ".size") {
      const auto args = split_operands(rest);
      if (args.size() == 2 && args[1].rfind(".-", 0) == 0) {
        size_requests_.push_back(
            {args[0], cur_, items_[static_cast<int>(cur_)].size()});
      }
      return;
    }
    if (dir == ".align" || dir == ".p2align" || dir == ".balign") {
      std::int64_t n = 0;
      if (!parse_int(strip(rest), &n) || n < 0) fail(line_, "bad alignment");
      Item it;
      it.kind = Item::Kind::Align;
      it.count = dir == ".balign" ? static_cast<std::uint64_t>(n)
                                  : (1ULL << n);
      push(std::move(it));
      return;
    }
    if (dir == ".byte" || dir == ".half" || dir == ".2byte" ||
        dir == ".word" || dir == ".4byte" || dir == ".dword" ||
        dir == ".8byte" || dir == ".quad") {
      unsigned width = 1;
      if (dir == ".half" || dir == ".2byte") width = 2;
      else if (dir == ".word" || dir == ".4byte") width = 4;
      else if (dir == ".dword" || dir == ".8byte" || dir == ".quad") width = 8;
      for (const auto& tok : split_operands(rest)) data_cell(tok, width);
      return;
    }
    if (dir == ".zero" || dir == ".space" || dir == ".skip") {
      std::int64_t n = 0;
      if (!parse_int(strip(rest), &n) || n < 0) fail(line_, "bad size");
      Item it;
      it.kind = Item::Kind::Zero;
      it.count = static_cast<std::uint64_t>(n);
      push(std::move(it));
      return;
    }
    if (dir == ".asciz" || dir == ".string" || dir == ".ascii") {
      const std::string str = parse_string(rest);
      Item it;
      it.kind = Item::Kind::Bytes;
      it.bytes.assign(str.begin(), str.end());
      if (dir != ".ascii") it.bytes.push_back(0);
      push(std::move(it));
      return;
    }
    if (dir == ".option") {
      // .option rvc / norvc toggle auto-compression for following code.
      const std::string arg = strip(rest);
      if (arg == "norvc") rvc_suppressed_ = true;
      else if (arg == "rvc") rvc_suppressed_ = false;
      return;  // other .option flags accepted and ignored
    }
    if (dir == ".attribute" || dir == ".file" || dir == ".ident" ||
        dir == ".local")
      return;  // accepted and ignored
    fail(line_, "unknown directive: " + dir);
  }

  std::string parse_string(const std::string& tok) {
    const std::size_t b = tok.find('"');
    const std::size_t e = tok.rfind('"');
    if (b == std::string::npos || e <= b) fail(line_, "bad string literal");
    std::string out;
    for (std::size_t i = b + 1; i < e; ++i) {
      char c = tok[i];
      if (c == '\\' && i + 1 < e) {
        ++i;
        switch (tok[i]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: c = tok[i]; break;
        }
      }
      out += c;
    }
    return out;
  }

  void data_cell(const std::string& tok, unsigned width) {
    Item it;
    it.kind = Item::Kind::Bytes;
    std::int64_t v;
    if (parse_int(tok, &v)) {
      for (unsigned i = 0; i < width; ++i)
        it.bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    } else {
      // Label reference: resolved at emit time.
      if (width != 8 && width != 4)
        fail(line_, "label data cells must be .word or .dword");
      parse_symbol_ref(tok, line_, &it.target, &it.addend);
      if (it.target.empty()) fail(line_, "bad data cell: " + tok);
      it.reloc = width == 8 ? Reloc::Abs64 : Reloc::Abs32;
      it.bytes.assign(width, 0);
    }
    push(std::move(it));
  }

  // ---- instructions and pseudo-instructions ----

  void instruction(const std::string& s) {
    if (cur_ != SecKind::Text) fail(line_, "instruction outside .text");
    std::istringstream in(s);
    std::string mn_text;
    in >> mn_text;
    std::string rest =
        strip(s.size() > mn_text.size() ? s.substr(mn_text.size()) : "");
    const auto toks = split_operands(rest);
    if (expand_pseudo(mn_text, toks)) return;

    // Atomic ordering suffixes (amoswap.w.aqrl, lr.d.aq, ...) strip down to
    // the base mnemonic and surface as an Ordering operand via spec 'q'.
    std::int64_t aqrl = -1;
    Mnemonic mn = isa::mnemonic_from_name(mn_text);
    if (mn == Mnemonic::kInvalid) {
      for (const auto& [suffix, bits] :
           {std::pair<const char*, std::int64_t>{".aqrl", 3},
            {".aq", 2},
            {".rl", 1}}) {
        const std::size_t n = std::string(suffix).size();
        if (mn_text.size() > n &&
            mn_text.compare(mn_text.size() - n, n, suffix) == 0) {
          mn = isa::mnemonic_from_name(mn_text.substr(0, mn_text.size() - n));
          if (mn != Mnemonic::kInvalid) aqrl = bits;
          break;
        }
      }
    }
    if (mn == Mnemonic::kInvalid) fail(line_, "unknown mnemonic: " + mn_text);
    const isa::OpcodeInfo& info = isa::opcode_info(mn);
    if (!opts_.extensions.has(info.ext))
      fail(line_, mn_text + " requires extension " +
                      isa::extension_name(info.ext) +
                      " absent from the target profile");

    Item it;
    it.mn = mn;
    std::size_t ti = 0;
    auto next_tok = [&]() -> const std::string& {
      if (ti >= toks.size()) fail(line_, "missing operand for " + mn_text);
      return toks[ti++];
    };
    for (const char* p = info.spec; *p; ++p) {
      switch (*p) {
        case 'd': case 'D':
          it.ops.push_back(Instruction::reg_op(parse_register(next_tok()),
                                               Operand::kWrite));
          break;
        case 's': case 't': case 'S': case 'T': case 'R':
          it.ops.push_back(Instruction::reg_op(parse_register(next_tok()),
                                               Operand::kRead));
          break;
        case 'i': case 'z': case 'w': case 'u': case 'Z': {
          std::int64_t v;
          if (!parse_int(next_tok(), &v)) fail(line_, "bad immediate");
          it.ops.push_back(Instruction::imm_op(v));
          break;
        }
        case 'm': case 'M': case 'A': {
          std::uint8_t access = Operand::kRead;
          if (*p == 'M') access = Operand::kWrite;
          if (*p == 'A') access = Operand::kRW;
          it.ops.push_back(parse_mem(next_tok(), info.mem_size, access));
          break;
        }
        case 'b': case 'a': {
          parse_symbol_ref(next_tok(), line_, &it.target, &it.addend);
          it.reloc = it.target.empty()
                         ? Reloc::None
                         : (*p == 'b' ? Reloc::Branch : Reloc::Jal);
          it.ops.push_back(Instruction::pcrel_op(it.addend));
          if (it.reloc != Reloc::None) it.addend = 0;
          break;
        }
        case 'c': {
          auto v = parse_csr(next_tok());
          if (!v) fail(line_, "bad CSR");
          Operand o;
          o.kind = Operand::Kind::Csr;
          o.imm = *v;
          o.access = Operand::kRW;
          it.ops.push_back(o);
          break;
        }
        case 'x':
          break;  // rounding mode defaults to dynamic
        case 'q':
          if (aqrl >= 0) {
            Operand o;
            o.kind = Operand::Kind::Ordering;
            o.imm = aqrl;
            it.ops.push_back(o);
          }
          break;  // no suffix: relaxed ordering, no operand
        case 'f': {
          // Optional `fence pred,succ` sets (subsets of "iorw"); the bare
          // mnemonic keeps its historical all-zero field.
          if (ti >= toks.size()) break;
          std::int64_t sets = 0;
          for (int field = 1; field >= 0; --field) {
            std::int64_t v = 0;
            for (const char ch : next_tok()) {
              switch (ch) {
                case 'i': v |= 8; break;
                case 'o': v |= 4; break;
                case 'r': v |= 2; break;
                case 'w': v |= 1; break;
                case '0': break;
                default: fail(line_, "bad fence set");
              }
            }
            sets |= v << (4 * field);
          }
          Operand o;
          o.kind = Operand::Kind::Ordering;
          o.imm = sets;
          it.ops.push_back(o);
          break;
        }
        default:
          fail(line_, "internal: bad spec char");
      }
    }
    if (ti != toks.size()) fail(line_, "too many operands for " + mn_text);
    push_insn(std::move(it));
  }

  Reg parse_register(const std::string& tok) {
    Reg r;
    if (!isa::parse_reg(tok, &r)) fail(line_, "bad register: " + tok);
    return r;
  }

  Operand parse_mem(const std::string& tok, std::uint8_t size,
                    std::uint8_t access) {
    const std::size_t lp = tok.find('(');
    const std::size_t rp = tok.rfind(')');
    if (lp == std::string::npos || rp == std::string::npos || rp < lp)
      fail(line_, "bad memory operand: " + tok);
    std::int64_t disp = 0;
    const std::string disp_str = strip(tok.substr(0, lp));
    if (!disp_str.empty() && !parse_int(disp_str, &disp))
      fail(line_, "bad displacement: " + tok);
    const Reg base = parse_register(strip(tok.substr(lp + 1, rp - lp - 1)));
    return Instruction::mem_op(base, disp, size, access);
  }

  // Expand the standard pseudo-instruction set. Returns false when the
  // mnemonic is not a pseudo (i.e., should be handled as a real insn).
  bool expand_pseudo(const std::string& mn, const std::vector<std::string>& t) {
    auto reg = [&](unsigned i) { return parse_register(t.at(i)); };
    auto want = [&](std::size_t n) {
      if (t.size() != n) fail(line_, mn + " expects " + std::to_string(n) + " operands");
    };
    auto rri = [&](Mnemonic m, Reg rd, Reg rs, std::int64_t imm) {
      Item it;
      it.mn = m;
      it.ops = {Instruction::reg_op(rd, Operand::kWrite),
                Instruction::reg_op(rs, Operand::kRead),
                Instruction::imm_op(imm)};
      push_insn(std::move(it));
    };
    auto rrr = [&](Mnemonic m, Reg rd, Reg rs1, Reg rs2) {
      Item it;
      it.mn = m;
      it.ops = {Instruction::reg_op(rd, Operand::kWrite),
                Instruction::reg_op(rs1, Operand::kRead),
                Instruction::reg_op(rs2, Operand::kRead)};
      push_insn(std::move(it));
    };
    auto branch_to = [&](Mnemonic m, Reg rs1, Reg rs2, const std::string& tgt) {
      Item it;
      it.mn = m;
      it.ops = {Instruction::reg_op(rs1, Operand::kRead),
                Instruction::reg_op(rs2, Operand::kRead),
                Instruction::pcrel_op(0)};
      parse_symbol_ref(tgt, line_, &it.target, &it.addend);
      if (it.target.empty()) {
        it.ops[2].imm = it.addend;
        it.addend = 0;
      } else {
        it.reloc = Reloc::Branch;
      }
      push_insn(std::move(it));
    };

    if (mn == "nop") { want(0); rri(Mnemonic::addi, isa::zero, isa::zero, 0); return true; }
    if (mn == "li") {
      want(2);
      std::int64_t v;
      if (!parse_int(t[1], &v)) fail(line_, "li needs a constant");
      std::vector<Instruction> seq;
      isa::materialize_imm(reg(0), v, &seq);
      for (const auto& insn : seq) {
        Item it;
        it.mn = insn.mnemonic();
        for (unsigned i = 0; i < insn.num_operands(); ++i)
          it.ops.push_back(insn.operand(i));
        push_insn(std::move(it));
      }
      return true;
    }
    if (mn == "la" || mn == "lla") {
      want(2);
      emit_pcrel_pair(reg(0), t[1], Mnemonic::addi, reg(0));
      return true;
    }
    if (mn == "mv") { want(2); rri(Mnemonic::addi, reg(0), reg(1), 0); return true; }
    if (mn == "not") { want(2); rri(Mnemonic::xori, reg(0), reg(1), -1); return true; }
    if (mn == "neg") { want(2); rrr(Mnemonic::sub, reg(0), isa::zero, reg(1)); return true; }
    if (mn == "negw") { want(2); rrr(Mnemonic::subw, reg(0), isa::zero, reg(1)); return true; }
    if (mn == "sext.w") { want(2); rri(Mnemonic::addiw, reg(0), reg(1), 0); return true; }
    if (mn == "seqz") { want(2); rri(Mnemonic::sltiu, reg(0), reg(1), 1); return true; }
    if (mn == "snez") { want(2); rrr(Mnemonic::sltu, reg(0), isa::zero, reg(1)); return true; }
    if (mn == "sltz") { want(2); rrr(Mnemonic::slt, reg(0), reg(1), isa::zero); return true; }
    if (mn == "sgtz") { want(2); rrr(Mnemonic::slt, reg(0), isa::zero, reg(1)); return true; }
    if (mn == "beqz") { want(2); branch_to(Mnemonic::beq, reg(0), isa::zero, t[1]); return true; }
    if (mn == "bnez") { want(2); branch_to(Mnemonic::bne, reg(0), isa::zero, t[1]); return true; }
    if (mn == "blez") { want(2); branch_to(Mnemonic::bge, isa::zero, reg(0), t[1]); return true; }
    if (mn == "bgez") { want(2); branch_to(Mnemonic::bge, reg(0), isa::zero, t[1]); return true; }
    if (mn == "bltz") { want(2); branch_to(Mnemonic::blt, reg(0), isa::zero, t[1]); return true; }
    if (mn == "bgtz") { want(2); branch_to(Mnemonic::blt, isa::zero, reg(0), t[1]); return true; }
    if (mn == "bgt") { want(3); branch_to(Mnemonic::blt, reg(1), reg(0), t[2]); return true; }
    if (mn == "ble") { want(3); branch_to(Mnemonic::bge, reg(1), reg(0), t[2]); return true; }
    if (mn == "bgtu") { want(3); branch_to(Mnemonic::bltu, reg(1), reg(0), t[2]); return true; }
    if (mn == "bleu") { want(3); branch_to(Mnemonic::bgeu, reg(1), reg(0), t[2]); return true; }
    if (mn == "j") {
      want(1);
      Item it;
      it.mn = Mnemonic::jal;
      it.ops = {Instruction::reg_op(isa::zero, Operand::kWrite),
                Instruction::pcrel_op(0)};
      parse_symbol_ref(t[0], line_, &it.target, &it.addend);
      if (it.target.empty()) { it.ops[1].imm = it.addend; it.addend = 0; }
      else it.reloc = Reloc::Jal;
      push_insn(std::move(it));
      return true;
    }
    if (mn == "jr") { want(1); rri(Mnemonic::jalr, isa::zero, reg(0), 0); return true; }
    if (mn == "jalr") {
      // Accept the pseudo forms: "jalr rs", "jalr rd, offset(rs1)".
      // The three-operand register form falls through to the real encoder.
      if (t.size() == 1) {
        rri(Mnemonic::jalr, isa::ra, reg(0), 0);
        return true;
      }
      if (t.size() == 2 && t[1].find('(') != std::string::npos) {
        const Operand mem = parse_mem(t[1], 0, Operand::kRead);
        rri(Mnemonic::jalr, reg(0), mem.reg, mem.imm);
        return true;
      }
      return false;
    }
    if (mn == "ret") { want(0); rri(Mnemonic::jalr, isa::zero, isa::ra, 0); return true; }
    if (mn == "call") {
      want(1);
      emit_pcrel_pair(isa::ra, t[0], Mnemonic::jalr, isa::ra);
      return true;
    }
    if (mn == "tail") {
      want(1);
      // Standard tail-call idiom: clobbers t1, links to x0 (paper §3.2.3).
      emit_pcrel_pair(isa::t1, t[0], Mnemonic::jalr, isa::zero);
      return true;
    }
    if (mn == "fmv.s") { want(2); rrr(Mnemonic::fsgnj_s, reg(0), reg(1), reg(1)); return true; }
    if (mn == "fmv.d") { want(2); rrr(Mnemonic::fsgnj_d, reg(0), reg(1), reg(1)); return true; }
    if (mn == "fabs.d") { want(2); rrr(Mnemonic::fsgnjx_d, reg(0), reg(1), reg(1)); return true; }
    if (mn == "fneg.d") { want(2); rrr(Mnemonic::fsgnjn_d, reg(0), reg(1), reg(1)); return true; }
    if (mn == "csrr") {
      want(2);
      Item it;
      it.mn = Mnemonic::csrrs;
      auto v = parse_csr(t[1]);
      if (!v) fail(line_, "bad CSR");
      Operand c;
      c.kind = Operand::Kind::Csr;
      c.imm = *v;
      c.access = Operand::kRW;
      it.ops = {Instruction::reg_op(reg(0), Operand::kWrite), c,
                Instruction::reg_op(isa::zero, Operand::kRead)};
      push_insn(std::move(it));
      return true;
    }
    if (mn == "rdcycle") {
      want(1);
      return expand_pseudo("csrr", {t[0], "cycle"});
    }
    if (mn == "rdinstret") {
      want(1);
      return expand_pseudo("csrr", {t[0], "instret"});
    }
    return false;
  }

  // auipc `hi_rd`, %pcrel_hi(target) ; `lo_mn` ... %pcrel_lo — the pair used
  // by la (addi), call (jalr ra) and tail (jalr x0).
  void emit_pcrel_pair(Reg hi_rd, const std::string& target, Mnemonic lo_mn,
                       Reg lo_rd) {
    Item hi;
    hi.mn = Mnemonic::auipc;
    hi.ops = {Instruction::reg_op(hi_rd, Operand::kWrite),
              Instruction::imm_op(0)};
    hi.reloc = Reloc::PcrelHi;
    parse_symbol_ref(target, line_, &hi.target, &hi.addend);
    if (hi.target.empty()) fail(line_, "pc-relative pair needs a label");
    const int hi_index = static_cast<int>(items_text().size());
    push_insn(std::move(hi));

    Item lo;
    lo.mn = lo_mn;
    if (lo_mn == Mnemonic::addi || lo_mn == Mnemonic::jalr) {
      lo.ops = {Instruction::reg_op(lo_rd, Operand::kWrite),
                Instruction::reg_op(hi_rd, Operand::kRead),
                Instruction::imm_op(0)};
    } else {
      fail(line_, "unsupported pcrel_lo consumer");
    }
    lo.reloc = Reloc::PcrelLo;
    lo.hi_link = hi_index;
    push_insn(std::move(lo));
  }

  std::vector<Item>& items_text() { return items_[static_cast<int>(SecKind::Text)]; }

  void push(Item it) {
    it.line = line_;
    items_[static_cast<int>(cur_)].push_back(std::move(it));
  }

  void push_insn(Item it) {
    it.kind = Item::Kind::Insn;
    it.size = 4;
    it.no_compress = rvc_suppressed_;
    push(std::move(it));
  }

  // ---- layout: address assignment + shrink-only compression ----

  std::uint64_t section_base(SecKind k) const {
    switch (k) {
      case SecKind::Text: return opts_.text_base;
      case SecKind::Rodata: return opts_.rodata_base;
      case SecKind::Data: return opts_.data_base;
      case SecKind::Bss: return opts_.bss_base;
      default: return 0;
    }
  }

  void assign_addresses() {
    for (int k = 0; k < static_cast<int>(SecKind::kCount); ++k) {
      std::uint64_t addr = section_base(static_cast<SecKind>(k));
      for (auto& it : items_[k]) {
        if (it.kind == Item::Kind::Align && it.count > 1)
          addr = align_up(addr, it.count);
        it.addr = addr;
        switch (it.kind) {
          case Item::Kind::Insn: addr += it.size; break;
          case Item::Kind::Bytes: addr += it.bytes.size(); break;
          case Item::Kind::Zero: addr += it.count; break;
          case Item::Kind::Align: break;
        }
      }
      section_end_[k] = addr;
    }
  }

  std::uint64_t label_addr(const std::string& name, int line) const {
    auto it = labels_.find(name);
    if (it == labels_.end()) fail(line, "undefined label: " + name);
    const LabelDef& def = it->second;
    const auto& items = items_[static_cast<int>(def.sec)];
    if (def.item_index < items.size()) return items[def.item_index].addr;
    return section_end_[static_cast<int>(def.sec)];
  }

  // Bind reloc operand values for an insn item at its current address.
  // Returns the fully-resolved operand list.
  std::vector<Operand> resolve_ops(const Item& it) const {
    std::vector<Operand> ops = it.ops;
    switch (it.reloc) {
      case Reloc::None:
        break;
      case Reloc::Branch:
      case Reloc::Jal: {
        const std::int64_t off = static_cast<std::int64_t>(
            label_addr(it.target, it.line) + it.addend - it.addr);
        for (auto& o : ops)
          if (o.kind == Operand::Kind::PcRelative) o.imm = off;
        break;
      }
      case Reloc::PcrelHi: {
        const std::int64_t delta = static_cast<std::int64_t>(
            label_addr(it.target, it.line) + it.addend - it.addr);
        std::int64_t hi, lo;
        if (!isa::split_hi_lo(delta, &hi, &lo))
          fail(it.line, "pc-relative target out of ±2GiB range");
        ops[1].imm = hi;
        break;
      }
      case Reloc::PcrelLo: {
        const Item& hi_item =
            items_[static_cast<int>(SecKind::Text)][static_cast<std::size_t>(it.hi_link)];
        const std::int64_t delta = static_cast<std::int64_t>(
            label_addr(hi_item.target, hi_item.line) + hi_item.addend -
            hi_item.addr);
        std::int64_t hi, lo;
        if (!isa::split_hi_lo(delta, &hi, &lo))
          fail(it.line, "pc-relative target out of ±2GiB range");
        ops[2].imm = lo;
        break;
      }
      default:
        break;
    }
    return ops;
  }

  void layout() {
    assign_addresses();
    if (!compress_enabled_) return;
    // Shrink-only relaxation: every insn starts at 4 bytes, so offsets only
    // shrink as items compress; once compressible, always compressible.
    for (int iter = 0; iter < 32; ++iter) {
      bool changed = false;
      for (auto& it : items_text()) {
        if (it.kind != Item::Kind::Insn || it.size == 2) continue;
        if (it.no_compress) continue;
        if (it.reloc == Reloc::PcrelHi || it.reloc == Reloc::PcrelLo)
          continue;  // pairs stay 4-byte for simple patching
        const auto ops = resolve_ops(it);
        Instruction insn = isa::assemble(it.mn, ops);
        if (isa::compress(insn)) {
          it.size = 2;
          changed = true;
        }
      }
      if (!changed) break;
      assign_addresses();
    }
  }

  // ---- emission ----

  symtab::Symtab emit() {
    symtab::Symtab st;
    st.e_type = symtab::ET_EXEC;
    st.set_extensions(opts_.extensions);

    for (int k = 0; k < static_cast<int>(SecKind::kCount); ++k) {
      const SecKind sec = static_cast<SecKind>(k);
      auto& items = items_[k];
      if (items.empty()) continue;

      symtab::Section s;
      s.name = section_name(sec);
      s.addr = section_base(sec);
      s.addralign = sec == SecKind::Text ? 4 : 8;
      switch (sec) {
        case SecKind::Text:
          s.flags = symtab::SHF_ALLOC | symtab::SHF_EXECINSTR;
          break;
        case SecKind::Rodata:
          s.flags = symtab::SHF_ALLOC;
          break;
        case SecKind::Data:
          s.flags = symtab::SHF_ALLOC | symtab::SHF_WRITE;
          break;
        case SecKind::Bss:
          s.flags = symtab::SHF_ALLOC | symtab::SHF_WRITE;
          s.type = symtab::SHT_NOBITS;
          break;
        default:
          break;
      }

      if (sec == SecKind::Bss) {
        s.nobits_size = section_end_[k] - s.addr;
        st.add_section(std::move(s));
        continue;
      }

      std::vector<std::uint8_t>& out = s.data;
      auto pad_to = [&](std::uint64_t addr) {
        const std::uint64_t want = addr - s.addr;
        while (out.size() < want) {
          if (sec == SecKind::Text) {
            // Pad code with c.nop / nop so gaps stay decodable.
            if (compress_enabled_ && want - out.size() >= 2 &&
                (want - out.size()) % 4 != 0) {
              out.push_back(0x01);
              out.push_back(0x00);
            } else if (want - out.size() >= 4) {
              out.push_back(0x13);
              out.push_back(0x00);
              out.push_back(0x00);
              out.push_back(0x00);
            } else {
              out.push_back(0x01);
              out.push_back(0x00);
            }
          } else {
            out.push_back(0);
          }
        }
      };

      for (auto& it : items) {
        pad_to(it.addr);
        switch (it.kind) {
          case Item::Kind::Align:
            break;
          case Item::Kind::Zero:
            out.insert(out.end(), it.count, 0);
            break;
          case Item::Kind::Bytes: {
            if (it.reloc == Reloc::Abs64 || it.reloc == Reloc::Abs32) {
              const std::uint64_t v = label_addr(it.target, it.line) +
                                      static_cast<std::uint64_t>(it.addend);
              for (std::size_t i = 0; i < it.bytes.size(); ++i)
                it.bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
            }
            out.insert(out.end(), it.bytes.begin(), it.bytes.end());
            break;
          }
          case Item::Kind::Insn: {
            const auto ops = resolve_ops(it);
            Instruction insn;
            try {
              insn = isa::assemble(it.mn, ops);
            } catch (const Error& e) {
              fail(it.line, e.what());
            }
            if (it.size == 2) {
              const auto half = isa::compress(insn);
              if (!half) fail(it.line, "internal: lost compressibility");
              out.push_back(static_cast<std::uint8_t>(*half & 0xff));
              out.push_back(static_cast<std::uint8_t>(*half >> 8));
            } else {
              const std::uint32_t w = insn.raw();
              out.push_back(static_cast<std::uint8_t>(w));
              out.push_back(static_cast<std::uint8_t>(w >> 8));
              out.push_back(static_cast<std::uint8_t>(w >> 16));
              out.push_back(static_cast<std::uint8_t>(w >> 24));
            }
            break;
          }
        }
      }
      pad_to(section_end_[k]);
      st.add_section(std::move(s));
    }

    // Symbols.
    for (const auto& name : label_order_) {
      const LabelDef& def = labels_.at(name);
      symtab::Symbol sym;
      sym.name = name;
      sym.value = label_addr(name, 0);
      sym.bind = def.global || pending_globals_.count(name)
                     ? symtab::STB_GLOBAL
                     : symtab::STB_LOCAL;
      if (def.sec != SecKind::Text)
        sym.type = symtab::STT_OBJECT;
      else if (def.is_func || pending_func_types_.count(name))
        sym.type = symtab::STT_FUNC;
      else
        sym.type = symtab::STT_NOTYPE;  // local code label
      st.add_symbol(std::move(sym));
    }
    // Apply ".size name, .-name" requests.
    for (const auto& req : size_requests_) {
      auto lit = labels_.find(req.name);
      if (lit == labels_.end()) continue;
      const auto& items = items_[static_cast<int>(req.sec)];
      const std::uint64_t end = req.end_index < items.size()
                                    ? items[req.end_index].addr
                                    : section_end_[static_cast<int>(req.sec)];
      for (auto& sym : st.symbols())
        if (sym.name == req.name) sym.size = end - sym.value;
    }

    // Entry point.
    if (const auto* s = st.find_symbol("_start")) st.entry = s->value;
    else if (const auto* m = st.find_symbol("main")) st.entry = m->value;
    else st.entry = opts_.text_base;
    return st;
  }

  Options opts_;
  bool compress_enabled_ = false;
  bool rvc_suppressed_ = false;
  SecKind cur_ = SecKind::Text;
  int line_ = 0;
  std::vector<Item> items_[static_cast<int>(SecKind::kCount)];
  std::uint64_t section_end_[static_cast<int>(SecKind::kCount)] = {};
  std::map<std::string, LabelDef> labels_;
  std::vector<std::string> label_order_;
  std::set<std::string> pending_globals_;
  std::set<std::string> pending_func_types_;
  std::vector<SizeRequest> size_requests_;
};

}  // namespace

symtab::Symtab assemble(const std::string& source, const Options& opts) {
  RVDYN_OBS_SPAN("rvdyn.asm.assemble");
  Assembler as(opts);
  return as.run(source);
}

std::vector<std::uint8_t> assemble_elf(const std::string& source,
                                       const Options& opts) {
  return assemble(source, opts).write();
}

}  // namespace rvdyn::assembler
