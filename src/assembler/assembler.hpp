// RV64GC assembler: the substrate replacing the gcc cross-toolchain.
//
// Two-pass (iterative-relaxation) assembler with a gas-like syntax:
// sections, labels, data directives, the standard pseudo-instructions
// (li/la/call/tail/ret/mv/beqz/...), and opportunistic C-extension
// compression. Produces a Symtab model that serializes to a well-formed
// ELF64 RISC-V executable, including e_flags and .riscv.attributes, so the
// full SymtabAPI -> ParseAPI -> PatchAPI pipeline runs on binaries with the
// same idioms a compiler emits (auipc+jalr pairs, tail calls, jump tables).
#pragma once

#include <cstdint>
#include <string>

#include "isa/extensions.hpp"
#include "symtab/symtab.hpp"

namespace rvdyn::assembler {

struct Options {
  /// Profile recorded in the binary and respected during encoding: with C
  /// present, instructions are auto-compressed where a 16-bit form exists.
  isa::ExtensionSet extensions = isa::ExtensionSet::rv64gc();
  bool auto_compress = true;  ///< ignored when the profile lacks C

  std::uint64_t text_base = 0x10000;
  std::uint64_t rodata_base = 0x20000;
  std::uint64_t data_base = 0x30000;
  std::uint64_t bss_base = 0x40000;
};

/// Assemble `source` into an executable binary model. The entry point is
/// `_start` if defined, else `main`, else the start of .text.
/// Throws rvdyn::Error with a line-numbered message on syntax errors,
/// undefined labels, or out-of-range immediates.
symtab::Symtab assemble(const std::string& source, const Options& opts = {});

/// Convenience: assemble and serialize to an ELF image in one step.
std::vector<std::uint8_t> assemble_elf(const std::string& source,
                                       const Options& opts = {});

}  // namespace rvdyn::assembler
