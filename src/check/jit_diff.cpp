// JIT-tier differential oracle: the interpreter is the executable spec;
// the JIT tier must be observationally identical. Two machines run the
// same workload — one with the tier disabled, one tiered up aggressively
// (hot_threshold=2 by default) — and every piece of architectural state
// the tier is allowed to touch is diffed: stop reason, exit code, pc,
// all 31 integer and 32 float registers, instret, cycles, an
// order-independent whole-memory digest, and the per-pc hit/cycle
// profile. A chunked mode re-enters the JIT session at randomized budget
// boundaries to catch state that is only materialized lazily on
// side-exits.
#include <random>
#include <sstream>

#include "assembler/assembler.hpp"
#include "check/check.hpp"
#include "emu/machine.hpp"
#include "obs/metrics.hpp"

namespace rvdyn::check {

namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

JitDiffReport run_jit_diff(const std::string& name, const std::string& asm_src,
                           const JitDiffOptions& opts) {
  JitDiffReport rep;
#if !RVDYN_JIT_ENABLED
  (void)name;
  (void)asm_src;
  (void)opts;
  return rep;  // jit_available stays false; vacuously ok
#else
  auto diverge = [&](const std::string& what) {
    ++rep.divergence_count;
    if (rep.divergences.size() < opts.max_recorded)
      rep.divergences.push_back(
          Divergence{"jit-diff", name, opts.seed, 0, what});
  };
  rep.jit_available = true;
  const symtab::Symtab bin = assembler::assemble(asm_src);

  // Reference: interpreter only.
  emu::Machine ref;
  ref.set_jit_enabled(false);
  ref.enable_pc_profile(opts.with_profile);
  ref.load(bin);
  const emu::StopReason ref_stop = ref.run(opts.max_steps);
  rep.steps = ref.instret();

  // Subject: tiered up fast, optionally sabotaged, optionally chunked.
  emu::Machine m;
  m.jit_config().hot_threshold = opts.hot_threshold;
  m.jit_config().sabotage = opts.sabotage;
  switch (opts.backend) {
    case JitDiffBackend::X64:
      m.jit_config().backend = emu::jit::BackendKind::X64;
      break;
    case JitDiffBackend::Threaded:
      m.jit_config().backend = emu::jit::BackendKind::Threaded;
      break;
    case JitDiffBackend::Auto: break;
  }
  m.enable_pc_profile(opts.with_profile);
  m.load(bin);

  emu::StopReason sub_stop;
  if (opts.chunks == 0) {
    sub_stop = m.run(opts.max_steps);
  } else {
    // Randomized budgets: sessions end mid-trace on kExitBudget, forcing
    // the tier to materialize full state and resume cold each chunk.
    std::mt19937_64 rng(opts.seed);
    const std::uint64_t mean = std::max<std::uint64_t>(
        1, rep.steps / std::max(1u, opts.chunks));
    std::uint64_t left = opts.max_steps;
    do {
      const std::uint64_t k = 1 + rng() % std::max<std::uint64_t>(1, 2 * mean);
      sub_stop = m.run(std::min(k, left));
      left -= std::min(k, left);
    } while (sub_stop == emu::StopReason::Running && left > 0);
  }

  const emu::jit::Stats js = m.jit_stats();
  rep.jit_steps = js.insns_retired;
  rep.blocks_compiled = js.blocks_compiled;

  if (static_cast<int>(sub_stop) != static_cast<int>(ref_stop))
    diverge("stop reason: interp=" +
            std::to_string(static_cast<int>(ref_stop)) +
            " jit=" + std::to_string(static_cast<int>(sub_stop)));
  if (m.exit_code() != ref.exit_code())
    diverge("exit code: interp=" + std::to_string(ref.exit_code()) +
            " jit=" + std::to_string(m.exit_code()));
  if (m.pc() != ref.pc())
    diverge("pc: interp=" + hex(ref.pc()) + " jit=" + hex(m.pc()));
  if (m.instret() != ref.instret())
    diverge("instret: interp=" + std::to_string(ref.instret()) +
            " jit=" + std::to_string(m.instret()));
  if (m.cycles() != ref.cycles())
    diverge("cycles: interp=" + std::to_string(ref.cycles()) +
            " jit=" + std::to_string(m.cycles()));
  for (unsigned i = 1; i < 32; ++i)
    if (m.get_x(i) != ref.get_x(i))
      diverge("x" + std::to_string(i) + ": interp=" + hex(ref.get_x(i)) +
              " jit=" + hex(m.get_x(i)));
  for (unsigned i = 0; i < 32; ++i)
    if (m.get_f(i) != ref.get_f(i))
      diverge("f" + std::to_string(i) + ": interp=" + hex(ref.get_f(i)) +
              " jit=" + hex(m.get_f(i)));
  if (m.memory().digest() != ref.memory().digest())
    diverge("memory digest: interp=" + hex(ref.memory().digest()) +
            " jit=" + hex(m.memory().digest()));

  // The oracle is only meaningful if the tier actually ran compiled code.
  // A clean workload that never tiers up is a silent false pass.
  if (opts.sabotage == isa::Mnemonic::kInvalid && rep.jit_steps == 0 &&
      rep.steps > 4 * opts.hot_threshold)
    diverge("JIT tier never engaged (0 of " + std::to_string(rep.steps) +
            " insns retired in compiled code)");

  if (opts.with_profile) {
    const auto& rp = ref.pc_profile();
    const auto& sp = m.pc_profile();
    for (const auto& [pc, e] : rp) {
      ++rep.profile_pcs;
      auto it = sp.find(pc);
      if (it == sp.end()) {
        diverge("profile: pc " + hex(pc) + " missing under JIT (interp hits=" +
                std::to_string(e.hits) + ")");
        continue;
      }
      if (it->second.hits != e.hits || it->second.cycles != e.cycles)
        diverge("profile @" + hex(pc) + ": interp hits=" +
                std::to_string(e.hits) + " cycles=" +
                std::to_string(e.cycles) + " jit hits=" +
                std::to_string(it->second.hits) + " cycles=" +
                std::to_string(it->second.cycles));
    }
    for (const auto& [pc, e] : sp)
      if (!rp.count(pc))
        diverge("profile: pc " + hex(pc) + " present only under JIT (hits=" +
                std::to_string(e.hits) + ")");
  }

  RVDYN_OBS_COUNT_N("rvdyn.check.jit.steps", rep.steps);
  RVDYN_OBS_COUNT_N("rvdyn.check.jit.jit_steps", rep.jit_steps);
  RVDYN_OBS_COUNT_N("rvdyn.check.jit.profile_pcs", rep.profile_pcs);
  RVDYN_OBS_COUNT_N("rvdyn.check.jit.divergences", rep.divergence_count);
  return rep;
#endif  // RVDYN_JIT_ENABLED
}

}  // namespace rvdyn::check
