// Round-trip fuzzer: decode→encode→decode identity for random 32-bit
// encodings and the exhaustive compressed space, including operand
// read/write-set preservation across the RVC expansion.
#include <random>
#include <sstream>
#include <vector>

#include "check/check.hpp"
#include "common/status.hpp"
#include "isa/decoder.hpp"
#include "isa/encoder.hpp"
#include "obs/metrics.hpp"

namespace rvdyn::check {

namespace {

using isa::Instruction;

std::string hex32(std::uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

/// Operand-for-operand equality (kind, access, size, register, immediate).
bool same_operands(const Instruction& a, const Instruction& b) {
  if (a.mnemonic() != b.mnemonic()) return false;
  if (a.num_operands() != b.num_operands()) return false;
  for (unsigned i = 0; i < a.num_operands(); ++i) {
    const isa::Operand& x = a.operand(i);
    const isa::Operand& y = b.operand(i);
    if (x.kind != y.kind || x.access != y.access || x.size != y.size ||
        !(x.reg == y.reg) || x.imm != y.imm)
      return false;
  }
  return true;
}

struct Harness {
  const RoundTripOptions& opts;
  RoundTripReport& rep;
  isa::Decoder dec{isa::ExtensionSet(0xffff)};

  void diverge(std::uint32_t encoding, std::uint64_t seed,
               const std::string& subject, const std::string& what) {
    ++rep.divergence_count;
    if (rep.divergences.size() >= opts.max_recorded) return;
    rep.divergences.push_back(
        Divergence{"roundtrip", subject, seed, encoding, what});
  }

  std::vector<isa::Operand> operand_list(const Instruction& insn) {
    std::vector<isa::Operand> ops(insn.num_operands());
    for (unsigned i = 0; i < insn.num_operands(); ++i) ops[i] = insn.operand(i);
    return ops;
  }

  /// decode32 → encode32 must reproduce the exact word, and the re-decode
  /// must agree operand-for-operand (hence in read/write sets too).
  void check_word(std::uint32_t word, std::uint64_t seed) {
    Instruction insn;
    if (!dec.decode32(word, &insn)) return;
    ++rep.decoded32;
    const std::string name = isa::mnemonic_name(insn.mnemonic());

    std::uint32_t back;
    try {
      back = isa::encode32(insn.mnemonic(), operand_list(insn));
    } catch (const Error& e) {
      diverge(word, seed, name,
              std::string("decoded operands rejected by encode32: ") +
                  e.what());
      return;
    }
    ++rep.checks;
    if (back != word) {
      diverge(word, seed, name,
              "re-encode mismatch: " + hex32(word) + " -> " + hex32(back));
      return;
    }
    Instruction again;
    if (!dec.decode32(back, &again) || !same_operands(insn, again) ||
        insn.regs_read().bits() != again.regs_read().bits() ||
        insn.regs_written().bits() != again.regs_written().bits()) {
      diverge(word, seed, name, "re-decode disagrees with original decode");
    }
  }

  /// decode16 → compress must reproduce the halfword; the expansion encoded
  /// as its 32-bit form must carry identical operands and read/write sets.
  void check_half(std::uint16_t half) {
    Instruction insn;
    if (!dec.decode16(half, &insn)) return;
    ++rep.decoded16;
    const std::string name = isa::mnemonic_name(insn.mnemonic());

    const std::optional<std::uint16_t> back = isa::compress(insn);
    ++rep.checks;
    if (!back) {
      diverge(half, half, name,
              "valid compressed form " + hex32(half) +
                  " does not re-compress (" + insn.to_string() + ")");
    } else if (*back != half) {
      Instruction alias;
      if (dec.decode16(*back, &alias) && same_operands(insn, alias)) {
        // A different encoding of the identical instruction: not a data
        // loss, but kept visible as an alias count.
        ++rep.rvc_aliases;
      } else {
        diverge(half, half, name,
                "re-compress mismatch: " + hex32(half) + " -> " +
                    hex32(*back));
      }
    }

    // Cross-width: the expansion's standard 32-bit encoding must decode to
    // the same operands and access sets (the property DataflowAPI relies
    // on when it treats compressed code uniformly).
    std::uint32_t word;
    try {
      word = isa::encode32(insn.mnemonic(), operand_list(insn));
    } catch (const Error& e) {
      diverge(half, half, name,
              std::string("expanded operands rejected by encode32: ") +
                  e.what());
      return;
    }
    ++rep.checks;
    Instruction wide;
    if (!dec.decode32(word, &wide)) {
      diverge(half, half, name, "expansion's 32-bit encoding does not decode");
      return;
    }
    if (!same_operands(insn, wide) ||
        insn.regs_read().bits() != wide.regs_read().bits() ||
        insn.regs_written().bits() != wide.regs_written().bits() ||
        insn.flags() != wide.flags()) {
      diverge(half, half, name,
              "expansion and 32-bit form disagree on operands/access sets");
    }
  }
};

}  // namespace

RoundTripReport run_roundtrip(const RoundTripOptions& opts) {
  RoundTripReport rep;
  Harness h{opts, rep};

  std::mt19937_64 rng(opts.seed);
  for (std::uint64_t i = 0; i < opts.random_words; ++i) {
    // Force the 32-bit quadrant so the whole budget lands on full words;
    // the compressed space is swept exhaustively below.
    const std::uint32_t word = static_cast<std::uint32_t>(rng()) | 0x3;
    h.check_word(word, opts.seed ^ i);
  }
  if (opts.rvc_exhaustive) {
    for (std::uint32_t v = 0; v <= 0xffff; ++v) {
      const auto half = static_cast<std::uint16_t>(v);
      if (!isa::is_compressed_encoding(half)) continue;
      h.check_half(half);
    }
  }

  RVDYN_OBS_COUNT_N("rvdyn.check.roundtrip.decoded32", rep.decoded32);
  RVDYN_OBS_COUNT_N("rvdyn.check.roundtrip.decoded16", rep.decoded16);
  RVDYN_OBS_COUNT_N("rvdyn.check.roundtrip.checks", rep.checks);
  RVDYN_OBS_COUNT_N("rvdyn.check.roundtrip.divergences", rep.divergence_count);
  return rep;
}

}  // namespace rvdyn::check
