// Shadow-stack walk oracle: the emulator retires jal/jalr/ret into a
// ground-truth call stack; StackWalker::walk at randomized stop points is
// diffed frame-by-frame against it.
#include <algorithm>
#include <random>
#include <set>
#include <sstream>
#include <vector>

#include "assembler/assembler.hpp"
#include "check/check.hpp"
#include "obs/metrics.hpp"
#include "parse/cfg.hpp"
#include "proccontrol/process.hpp"
#include "stackwalk/stackwalker.hpp"

namespace rvdyn::check {

namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

/// One ground-truth call record: where the callee returns to, and the
/// caller's sp at the call instruction (= the callee's entry sp, which is
/// what a correct walk reports as the caller frame's sp).
struct ShadowFrame {
  std::uint64_t ret = 0;
  std::uint64_t sp = 0;
};

bool is_link(isa::Reg r) {
  return r.cls == isa::RegClass::Int && (r.num == 1 || r.num == 5);
}

}  // namespace

ShadowStackReport run_shadow_stack(const std::string& name,
                                   const std::string& asm_src,
                                   const ShadowStackOptions& opts) {
  ShadowStackReport rep;
  auto diverge = [&](std::uint64_t step, const std::string& what) {
    ++rep.divergence_count;
    if (rep.divergences.size() < opts.max_recorded)
      rep.divergences.push_back(Divergence{"shadow-stack", name, step, 0, what});
  };

  const symtab::Symtab st = assembler::assemble(asm_src);
  parse::CodeObject co(st);
  co.parse();

  // Dry run: learn the total retirement count so stop points cover the
  // whole trace (prologues, epilogues, leaves — not just steady state).
  std::uint64_t total = 0;
  {
    emu::Machine dry;
    dry.load(st);
    const emu::StopReason r = dry.run(opts.max_steps);
    if (r != emu::StopReason::Exited) {
      diverge(0, "workload did not exit on the dry run (stop reason " +
                     std::to_string(static_cast<int>(r)) + ")");
      return rep;
    }
    total = dry.instret();
  }

  std::set<std::uint64_t> stop_at;
  if (!opts.walk_every_step) {
    std::mt19937_64 rng(opts.seed);
    const std::uint64_t want = std::min<std::uint64_t>(opts.stops, total);
    while (stop_at.size() < want) stop_at.insert(rng() % total);
  }

  auto proc = proccontrol::Process::launch(st);
  emu::Machine& m = proc->machine();
  stackwalk::StackWalker walker(*proc, co);

  std::vector<ShadowFrame> shadow;
  m.set_trace([&](std::uint64_t pc, const isa::Instruction& insn) {
    if (insn.is_jal()) {
      if (is_link(insn.link_reg()))
        shadow.push_back(ShadowFrame{pc + insn.length(), m.get_x(2)});
    } else if (insn.is_jalr()) {
      const std::uint64_t target =
          (m.get_reg(insn.operand(1).reg) +
           static_cast<std::uint64_t>(insn.operand(2).imm)) &
          ~1ULL;
      if (is_link(insn.link_reg())) {
        shadow.push_back(ShadowFrame{pc + insn.length(), m.get_x(2)});
      } else if (!shadow.empty() && target == shadow.back().ret) {
        shadow.pop_back();  // ret; anything else is a tail/indirect jump
      }
    }
  });

  auto compare = [&](std::uint64_t step) {
    ++rep.stops;
    const std::size_t depth = shadow.size() + 1;
    rep.max_depth = std::max<std::uint64_t>(rep.max_depth, depth);
    const auto frames =
        walker.walk(static_cast<unsigned>(depth) + 8);
    if (frames.size() != depth) {
      std::ostringstream os;
      os << "frame count mismatch at step " << step << " pc " << hex(m.pc())
         << ": walk " << frames.size() << " [";
      for (const auto& f : frames) os << f.func_name << "@" << hex(f.pc) << " ";
      os << "] vs shadow depth " << depth << " [" << hex(m.pc()) << " ";
      for (auto it = shadow.rbegin(); it != shadow.rend(); ++it)
        os << hex(it->ret) << " ";
      os << "]";
      diverge(step, os.str());
      return;
    }
    for (std::size_t k = 0; k < depth; ++k) {
      const std::uint64_t want_pc =
          k == 0 ? m.pc() : shadow[depth - 1 - k].ret;
      ++rep.frames_compared;
      if (frames[k].pc != want_pc) {
        diverge(step, "frame " + std::to_string(k) + " pc mismatch at step " +
                          std::to_string(step) + ": walk " +
                          hex(frames[k].pc) + " (" + frames[k].func_name +
                          ") vs shadow " + hex(want_pc));
        return;
      }
      if (k > 0 && frames[k].sp != shadow[depth - 1 - k].sp) {
        diverge(step, "frame " + std::to_string(k) + " sp mismatch at step " +
                          std::to_string(step) + ": walk " +
                          hex(frames[k].sp) + " vs shadow " +
                          hex(shadow[depth - 1 - k].sp));
        return;
      }
    }
  };

  for (std::uint64_t step = 0; step < total; ++step) {
    if (opts.walk_every_step || stop_at.count(step)) compare(step);
    const emu::StopReason r = m.step();
    ++rep.steps;
    if (r == emu::StopReason::Exited) break;
    if (r != emu::StopReason::Running) {
      diverge(step, "unexpected stop mid-run (reason " +
                        std::to_string(static_cast<int>(r)) + ")");
      break;
    }
  }

  RVDYN_OBS_COUNT_N("rvdyn.check.shadow.steps", rep.steps);
  RVDYN_OBS_COUNT_N("rvdyn.check.shadow.stops", rep.stops);
  RVDYN_OBS_COUNT_N("rvdyn.check.shadow.frames", rep.frames_compared);
  RVDYN_OBS_COUNT_N("rvdyn.check.shadow.divergences", rep.divergence_count);
  return rep;
}

}  // namespace rvdyn::check
