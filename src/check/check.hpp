// rvdyn::check — differential correctness harness.
//
// The stack keeps two independent implementations of RV64GC value
// semantics (semantics/ spec strings vs. emu/machine.cpp switch cases) and
// three frame steppers with no cross-validation. This module makes the
// emulator the executable oracle for everything above it, in the spirit of
// formal-semantics-first binary tools:
//
//  * run_lockstep      — for every mnemonic with a precise semantics spec
//    (and every RVC form expanding to one), evaluate semantics_of +
//    const_eval against a single-stepped emu::Machine over randomized
//    register/memory states plus adversarial corners, and report any
//    mismatch in written register, store addr/size/value, next-pc, or
//    x0-write suppression.
//  * run_roundtrip     — decode→encode→decode property check: re-encoding
//    a decoded instruction (compressed and uncompressed) reproduces the
//    original bytes and the operand read/write sets.
//  * run_shadow_stack  — the emulator retires jal/jalr/ret into a
//    ground-truth call stack; StackWalker::walk is invoked at randomized
//    step counts (mid-prologue, mid-epilogue, and leaf pcs included) and
//    diffed frame-by-frame against the shadow.
//
// Every run is reproducible from (seed, options); divergences carry the
// failing encoding/stop so a one-line filter reruns just that case. The
// harness exports rvdyn.check.* counters through rvdyn::obs, so bench runs
// carry oracle coverage in their rvdyn_meta block.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace rvdyn::check {

/// One observed disagreement between an oracle and the implementation
/// under test. `detail` is a full human-readable reproduction record.
struct Divergence {
  std::string oracle;        ///< "lockstep" | "roundtrip" | "shadow-stack"
  std::string subject;       ///< mnemonic text or workload name
  std::uint64_t seed = 0;    ///< per-case seed that reproduces it
  std::uint32_t encoding = 0;  ///< raw instruction bytes (lockstep/roundtrip)
  std::string detail;
};

// ---------------------------------------------------------------------------
// Lockstep semantics oracle
// ---------------------------------------------------------------------------

struct LockstepOptions {
  std::uint64_t seed = 0x5eedULL;
  /// Random-state floor per precise-spec mnemonic; mnemonics below it after
  /// the run appear in LockstepReport::uncovered.
  unsigned states_per_mnemonic = 10000;
  /// Random states evaluated per generated encoding.
  unsigned states_per_encoding = 20;
  /// Exhaustively sweep all 65536 compressed halfwords (a few states each).
  bool rvc_exhaustive = true;
  unsigned rvc_states = 3;
  /// Restrict the run to one mnemonic (reproduction mode); kInvalid = all.
  isa::Mnemonic only = isa::Mnemonic::kInvalid;
  /// Stop recording (but keep counting) divergences past this many.
  unsigned max_recorded = 50;
};

struct LockstepReport {
  std::uint64_t states = 0;      ///< total (encoding, state) pairs executed
  std::uint64_t encodings = 0;   ///< distinct 32-bit encodings exercised
  std::uint64_t rvc_forms = 0;   ///< valid compressed halfwords exercised
  std::uint64_t divergence_count = 0;  ///< total, recorded or not
  std::vector<Divergence> divergences;
  /// States executed per mnemonic (coverage ledger).
  std::map<isa::Mnemonic, std::uint64_t> per_mnemonic;
  /// Precise-spec mnemonics that ended below states_per_mnemonic.
  std::vector<isa::Mnemonic> uncovered;
  bool ok() const { return divergence_count == 0 && uncovered.empty(); }
};

/// All mnemonics the lockstep oracle must cover: a precise semantics spec
/// exists and the instruction is single-steppable in isolation (ecall and
/// ebreak, which divert into the kernel surface, have no precise spec).
std::vector<isa::Mnemonic> lockstep_mnemonics();

LockstepReport run_lockstep(const LockstepOptions& opts = {});

// ---------------------------------------------------------------------------
// Round-trip fuzzer
// ---------------------------------------------------------------------------

struct RoundTripOptions {
  std::uint64_t seed = 0x5eedULL;
  std::uint64_t random_words = 200000;  ///< random 32-bit encodings
  bool rvc_exhaustive = true;           ///< all 65536 halfwords
  unsigned max_recorded = 50;
};

struct RoundTripReport {
  std::uint64_t decoded32 = 0;   ///< random words that decoded
  std::uint64_t decoded16 = 0;   ///< halfwords that decoded
  std::uint64_t checks = 0;      ///< individual property checks run
  /// Compressed halfwords whose canonical re-compression chose a different
  /// but operand-identical encoding (none expected; kept separate from
  /// divergences so a future alias is a visible policy decision).
  std::uint64_t rvc_aliases = 0;
  std::uint64_t divergence_count = 0;
  std::vector<Divergence> divergences;
  bool ok() const { return divergence_count == 0; }
};

RoundTripReport run_roundtrip(const RoundTripOptions& opts = {});

// ---------------------------------------------------------------------------
// JIT-tier differential oracle
// ---------------------------------------------------------------------------

/// Which emu::jit backend the subject machine should use. Mirrors
/// emu::jit::BackendKind without pulling jit headers into check.hpp, so
/// this header stays valid under -DRVDYN_JIT=OFF builds.
enum class JitDiffBackend { Auto, X64, Threaded };

struct JitDiffOptions {
  std::uint64_t seed = 0x5eedULL;
  /// Compile on the second execution of a block so even short workloads
  /// spend most of their retirement in compiled code.
  std::uint32_t hot_threshold = 2;
  std::uint64_t max_steps = 50'000'000;
  /// 0 = one uninterrupted run; N > 0 = drive the JIT machine through N
  /// randomized run(k) chunks, exercising budget side-exits and session
  /// re-entry mid-trace.
  unsigned chunks = 0;
  /// Diff the per-pc hit/cycle profile as well as final state.
  bool with_profile = true;
  /// Meta-test hook: compile this mnemonic with a deliberately wrong
  /// template (forwarded to emu::jit::Config::sabotage). The oracle is
  /// expected to report divergences when set.
  isa::Mnemonic sabotage = isa::Mnemonic::kInvalid;
  JitDiffBackend backend = JitDiffBackend::Auto;
  unsigned max_recorded = 20;
};

struct JitDiffReport {
  std::uint64_t steps = 0;          ///< instructions retired (reference)
  std::uint64_t jit_steps = 0;      ///< of which the subject retired in JIT
  std::uint64_t blocks_compiled = 0;
  std::uint64_t profile_pcs = 0;    ///< per-pc profile entries compared
  std::uint64_t divergence_count = 0;
  std::vector<Divergence> divergences;
  /// False when the build has the JIT compiled out (-DRVDYN_JIT=OFF):
  /// nothing was compared and ok() is vacuously true.
  bool jit_available = false;
  bool ok() const { return divergence_count == 0; }
};

/// Assemble `asm_src` and run it twice — once interpreter-only, once with
/// the JIT tier hot — then diff stop reason, exit code, pc, every x/f
/// register, instret, cycles, a whole-memory digest, and (optionally) the
/// per-pc profile. Divergences carry the register/pc detail needed to
/// reproduce. The subject run must actually enter compiled code or a
/// divergence is reported (guards against the tier silently not engaging).
JitDiffReport run_jit_diff(const std::string& name, const std::string& asm_src,
                           const JitDiffOptions& opts = {});

// ---------------------------------------------------------------------------
// Shadow-stack walk oracle
// ---------------------------------------------------------------------------

struct ShadowStackOptions {
  std::uint64_t seed = 0x5eedULL;
  /// Randomized stop points over the program's full retirement trace.
  unsigned stops = 200;
  /// Walk after every retired instruction instead (small programs only).
  bool walk_every_step = false;
  /// Abort the oracle if the program retires more than this many
  /// instructions without exiting.
  std::uint64_t max_steps = 50'000'000;
  unsigned max_recorded = 20;
};

struct ShadowStackReport {
  std::uint64_t steps = 0;            ///< instructions retired
  std::uint64_t stops = 0;            ///< walks performed
  std::uint64_t frames_compared = 0;  ///< frame-by-frame comparisons
  std::uint64_t max_depth = 0;        ///< deepest shadow stack seen
  std::uint64_t divergence_count = 0;
  std::vector<Divergence> divergences;
  bool ok() const { return divergence_count == 0; }
};

/// Assemble `asm_src`, run it to completion once to learn the retirement
/// count, then rerun stopping at randomized points, diffing
/// StackWalker::walk against the emulator's ground-truth call stack.
/// `name` labels divergences (workload name).
ShadowStackReport run_shadow_stack(const std::string& name,
                                   const std::string& asm_src,
                                   const ShadowStackOptions& opts = {});

}  // namespace rvdyn::check
