// Lockstep semantics oracle: semantics::semantics_of + const_eval vs. a
// single-stepped emu::Machine, over randomized states and adversarial
// corners, for every mnemonic with a precise spec.
#include <algorithm>
#include <random>
#include <sstream>

#include "check/check.hpp"
#include "common/status.hpp"
#include "emu/machine.hpp"
#include "isa/decoder.hpp"
#include "isa/encoder.hpp"
#include "obs/metrics.hpp"
#include "semantics/eval.hpp"
#include "semantics/expr.hpp"

namespace rvdyn::check {

namespace {

using isa::Instruction;
using isa::Mnemonic;

constexpr std::uint64_t kCodeBase = 0x10000;
constexpr std::uint64_t kScratchBase = 0x40000000;
// Memory-operand targets stay inside a two-page scratch window so a
// million-trial run maps a handful of pages, not one per random address.
constexpr std::uint64_t kScratchSpan = 0x1ff0;

/// Adversarial register values: shift-count boundaries, division overflow
/// pair, all-zero / all-one Zbb inputs, 32-bit-boundary patterns.
constexpr std::uint64_t kCornerValues[] = {
    0,
    1,
    2,
    31,
    32,
    33,
    63,
    64,
    0x7fffffffffffffffULL,  // INT64_MAX
    0x8000000000000000ULL,  // INT64_MIN
    ~0ULL,                  // -1 (divisor of the overflow pair)
    0x7fffffffULL,
    0x80000000ULL,
    0xffffffffULL,
    0xffffffff00000000ULL,
    0x0123456789abcdefULL,
};

/// Immediate corners pushed through encode32 (out-of-range values are
/// rejected by the encoder and skipped): shift counts 0/1/31/32/63,
/// negative and extreme load/store offsets.
constexpr std::int64_t kImmCorners[] = {0,  1,    31,    32,   63,
                                        -1, -2048, 2047, -64, 255};

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool branch_taken(Mnemonic mn, std::uint64_t a, std::uint64_t b) {
  switch (mn) {
    case Mnemonic::beq: return a == b;
    case Mnemonic::bne: return a != b;
    case Mnemonic::blt:
      return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
    case Mnemonic::bge:
      return static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b);
    case Mnemonic::bltu: return a < b;
    case Mnemonic::bgeu: return a >= b;
    default: return false;
  }
}

struct Harness {
  const LockstepOptions& opts;
  LockstepReport& rep;
  emu::Machine m{isa::ExtensionSet(0xffff)};
  isa::Decoder dec{isa::ExtensionSet(0xffff)};

  void diverge(const Instruction& insn, std::uint64_t trial_seed,
               const std::string& what) {
    ++rep.divergence_count;
    if (rep.divergences.size() >= opts.max_recorded) return;
    Divergence d;
    d.oracle = "lockstep";
    d.subject = isa::mnemonic_name(insn.mnemonic());
    d.seed = trial_seed;
    d.encoding = insn.raw();
    d.detail = insn.to_string() + ": " + what;
    rep.divergences.push_back(std::move(d));
  }

  static std::string hex(std::uint64_t v) {
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
  }

  /// Execute one (encoding, state) trial. `regs` holds the desired values
  /// for x1..x31 (x0 is hard zero); memory-operand base registers are
  /// retargeted into the scratch window before evaluation.
  void run_state(const Instruction& insn, const semantics::InsnSemantics& sem,
                 std::uint64_t trial_seed, std::uint64_t regs[32]) {
    std::uint64_t s = trial_seed;
    for (unsigned i = 1; i < 32; ++i) m.set_x(i, regs[i]);

    // Retarget the memory operand into the scratch window (base x0 keeps
    // its architectural address: imm around 0, still a bounded page set).
    const isa::Operand* memop = nullptr;
    for (unsigned i = 0; i < insn.num_operands(); ++i)
      if (insn.operand(i).is_mem()) memop = &insn.operand(i);
    std::uint64_t mem_addr = 0;
    if (memop) {
      if (memop->reg != isa::zero) {
        const std::uint64_t target =
            kScratchBase + (splitmix(s) % kScratchSpan);
        m.set_x(memop->reg.num,
                target - static_cast<std::uint64_t>(memop->imm));
      }
      mem_addr = m.get_reg(memop->reg) + static_cast<std::uint64_t>(memop->imm);
    }

    std::uint8_t guard_lo = 0, guard_hi = 0;
    if (insn.reads_memory() && memop)
      m.memory().write(mem_addr, splitmix(s), 8);
    if (insn.writes_memory() && memop) {
      m.memory().write(mem_addr, splitmix(s), 8);
      guard_lo = static_cast<std::uint8_t>(splitmix(s));
      guard_hi = static_cast<std::uint8_t>(splitmix(s));
      m.memory().write(mem_addr - 1, guard_lo, 1);
      m.memory().write(mem_addr + memop->size, guard_hi, 1);
    }

    // Oracle-side evaluation against the pre-step state.
    const semantics::RegResolver rr =
        [this](isa::Reg r) -> std::optional<std::uint64_t> {
      return m.get_reg(r);
    };
    const semantics::MemReader mr =
        [this](std::uint64_t a, unsigned sz) -> std::optional<std::uint64_t> {
      return m.memory().read(a, sz);
    };
    const unsigned len = insn.length();
    std::optional<std::uint64_t> want_rd, want_addr, want_val;
    if (sem.has_reg_write)
      want_rd = semantics::const_eval(*sem.reg_value, kCodeBase, len, rr, mr);
    if (sem.has_mem_write) {
      want_addr =
          semantics::const_eval(*sem.store_addr, kCodeBase, len, rr, mr);
      want_val =
          semantics::const_eval(*sem.store_value, kCodeBase, len, rr, mr);
    }

    // Next-pc oracle (the spec models values; control flow is checked from
    // the decoded shape, so a wrong branch condition in either
    // implementation still surfaces here).
    std::uint64_t want_pc;
    if (insn.is_cond_branch()) {
      const std::uint64_t a = m.get_reg(insn.operand(0).reg);
      const std::uint64_t b = m.get_reg(insn.operand(1).reg);
      want_pc = kCodeBase + (branch_taken(insn.mnemonic(), a, b)
                                 ? static_cast<std::uint64_t>(
                                       insn.branch_offset())
                                 : len);
    } else if (insn.is_jal()) {
      want_pc = kCodeBase + static_cast<std::uint64_t>(insn.branch_offset());
    } else if (insn.is_jalr()) {
      want_pc = (m.get_reg(insn.operand(1).reg) +
                 static_cast<std::uint64_t>(insn.operand(2).imm)) &
                ~1ULL;
    } else {
      want_pc = kCodeBase + len;
    }

    std::uint64_t pre[32];
    for (unsigned i = 0; i < 32; ++i) pre[i] = m.get_x(i);

    std::uint8_t bytes[4];
    for (unsigned i = 0; i < len; ++i)
      bytes[i] = static_cast<std::uint8_t>(insn.raw() >> (8 * i));
    m.write_code(kCodeBase, bytes, len);
    m.set_pc(kCodeBase);
    const emu::StopReason stop = m.step();

    ++rep.states;
    ++rep.per_mnemonic[insn.mnemonic()];

    if (stop != emu::StopReason::Running) {
      diverge(insn, trial_seed,
              "machine stopped (reason " +
                  std::to_string(static_cast<int>(stop)) + ") on a decodable "
                  "in-profile instruction");
      return;
    }
    if (m.pc() != want_pc) {
      diverge(insn, trial_seed,
              "next-pc mismatch: emulator " + hex(m.pc()) + " vs oracle " +
                  hex(want_pc));
      return;
    }

    // Full register-file diff: the written register must hold the oracle
    // value; every other register (x0 included) must be untouched. This is
    // also the x0-write-suppression check — an encoding with rd = x0 has
    // sem.has_reg_write == false, so *no* register may change.
    for (unsigned i = 0; i < 32; ++i) {
      std::uint64_t want = pre[i];
      if (sem.has_reg_write && sem.written_reg.cls == isa::RegClass::Int &&
          sem.written_reg.num == i) {
        if (!want_rd) {
          diverge(insn, trial_seed,
                  "oracle could not evaluate a precise spec (unresolved leaf)");
          return;
        }
        want = *want_rd;
      }
      if (m.get_x(i) != want) {
        diverge(insn, trial_seed,
                "x" + std::to_string(i) + " mismatch: emulator " +
                    hex(m.get_x(i)) + " vs oracle " + hex(want));
        return;
      }
    }

    if (sem.has_mem_write) {
      if (!want_addr || !want_val) {
        diverge(insn, trial_seed, "oracle could not evaluate store addr/value");
        return;
      }
      const unsigned sz = sem.store_size;
      const std::uint64_t mask =
          sz >= 8 ? ~0ULL : ((1ULL << (8 * sz)) - 1);
      const std::uint64_t got = m.memory().read(*want_addr, sz);
      if (got != (*want_val & mask)) {
        diverge(insn, trial_seed,
                "store value mismatch at " + hex(*want_addr) + ": memory " +
                    hex(got) + " vs oracle " + hex(*want_val & mask));
        return;
      }
      if (*want_addr != mem_addr || sz != memop->size) {
        diverge(insn, trial_seed,
                "store addr/size mismatch: oracle " + hex(*want_addr) + "/" +
                    std::to_string(sz) + " vs operand " + hex(mem_addr) + "/" +
                    std::to_string(memop->size));
        return;
      }
      if (m.memory().read(mem_addr - 1, 1) != guard_lo ||
          m.memory().read(mem_addr + sz, 1) != guard_hi) {
        diverge(insn, trial_seed, "store clobbered adjacent guard bytes");
        return;
      }
    } else if (insn.writes_memory()) {
      diverge(insn, trial_seed,
              "instruction writes memory but its precise spec models no store");
      return;
    }
  }

  void random_regs(std::uint64_t seed, std::uint64_t regs[32]) {
    std::uint64_t s = seed;
    for (unsigned i = 1; i < 32; ++i) {
      // ~1 in 4 registers draws from the adversarial pool so corner pairs
      // (INT64_MIN with -1, shift counts at width boundaries, all-ones)
      // appear organically across every operand position.
      const std::uint64_t r = splitmix(s);
      regs[i] = (r & 3) == 0
                    ? kCornerValues[(r >> 2) %
                                    (sizeof(kCornerValues) / sizeof(std::uint64_t))]
                    : splitmix(s);
    }
    regs[0] = 0;
  }

  /// Random states for one encoding.
  void run_encoding(const Instruction& insn, unsigned n_states,
                    std::uint64_t enc_seed) {
    const semantics::InsnSemantics sem = semantics::semantics_of(insn);
    if (!sem.precise) {
      diverge(insn, enc_seed, "expected a precise spec but got conservative");
      return;
    }
    ++rep.encodings;
    std::uint64_t regs[32];
    for (unsigned k = 0; k < n_states; ++k) {
      std::uint64_t s = enc_seed + k;
      const std::uint64_t trial_seed = splitmix(s);
      random_regs(trial_seed, regs);
      run_state(insn, sem, trial_seed, regs);
    }
  }

  /// The deterministic corner matrix: every (rs1, rs2) pair from the
  /// adversarial pool on one encoding (guarantees INT64_MIN ÷ -1, ÷ 0,
  /// all-zero/all-one Zbb inputs, width-boundary shift counts in registers).
  void run_corner_matrix(const Instruction& insn, std::uint64_t enc_seed) {
    const semantics::InsnSemantics sem = semantics::semantics_of(insn);
    if (!sem.precise) return;
    isa::Reg rs1{}, rs2{};
    bool have1 = false, have2 = false;
    // Register sources beyond a written operand 0: the canonical rs1/rs2
    // slots across the table's spec layouts (dst/dsz/stb/da/...).
    for (unsigned i = 0; i < insn.num_operands(); ++i) {
      const isa::Operand& op = insn.operand(i);
      if (!op.is_reg() || !op.reads()) continue;
      if (!have1) { rs1 = op.reg; have1 = true; }
      else if (!have2) { rs2 = op.reg; have2 = true; break; }
    }
    if (!have1) return;
    std::uint64_t regs[32];
    constexpr unsigned n =
        sizeof(kCornerValues) / sizeof(std::uint64_t);
    for (unsigned a = 0; a < n; ++a) {
      for (unsigned b = 0; b < (have2 ? n : 1); ++b) {
        std::uint64_t s = enc_seed ^ (a * 131 + b);
        const std::uint64_t trial_seed = splitmix(s);
        random_regs(trial_seed, regs);
        if (rs1.cls == isa::RegClass::Int && rs1.num != 0)
          regs[rs1.num] = kCornerValues[a];
        if (have2 && rs2.cls == isa::RegClass::Int && rs2.num != 0)
          regs[rs2.num] = kCornerValues[b];
        run_state(insn, sem, trial_seed, regs);
      }
    }
  }

  /// Operand-mutated encodings: immediate corners (shift counts, negative
  /// store offsets) and a forced rd = x0 variant, built through encode32 so
  /// only representable corners run.
  void run_operand_corners(const Instruction& base, std::uint64_t enc_seed) {
    std::vector<isa::Operand> ops(base.num_operands());
    for (unsigned i = 0; i < base.num_operands(); ++i) ops[i] = base.operand(i);

    auto try_encoding = [&](const std::vector<isa::Operand>& mutated) {
      std::uint32_t word;
      try {
        word = isa::encode32(base.mnemonic(), mutated);
      } catch (const Error&) {
        return;  // corner not representable in this format
      }
      Instruction insn;
      if (!dec.decode32(word, &insn)) return;
      if (insn.mnemonic() != base.mnemonic()) return;  // canonical alias
      run_encoding(insn, opts.states_per_encoding, splitmix(enc_seed) ^ word);
    };

    for (unsigned i = 0; i < ops.size(); ++i) {
      if (ops[i].kind != isa::Operand::Kind::Imm &&
          ops[i].kind != isa::Operand::Kind::Mem)
        continue;
      for (std::int64_t v : kImmCorners) {
        std::vector<isa::Operand> mutated = ops;
        mutated[i].imm = v;
        try_encoding(mutated);
      }
    }
    if (!ops.empty() && ops[0].is_reg() && ops[0].writes() &&
        ops[0].reg.cls == isa::RegClass::Int) {
      std::vector<isa::Operand> mutated = ops;
      mutated[0].reg = isa::zero;
      try_encoding(mutated);
    }
  }

  void run_mnemonic(Mnemonic mn, std::uint64_t mn_seed) {
    const isa::OpcodeInfo& info = isa::opcode_info(mn);
    std::uint64_t s = mn_seed;
    bool first = true;
    unsigned attempts = 0;
    const unsigned max_attempts =
        16 * (opts.states_per_mnemonic / std::max(1u, opts.states_per_encoding) +
              16);
    while (rep.per_mnemonic[mn] < opts.states_per_mnemonic &&
           attempts++ < max_attempts) {
      const std::uint32_t word =
          info.match | (static_cast<std::uint32_t>(splitmix(s)) & ~info.mask);
      Instruction insn;
      if (!dec.decode32(word, &insn)) continue;
      if (insn.mnemonic() != mn) continue;  // a more specific entry won
      if (first) {
        first = false;
        run_corner_matrix(insn, splitmix(s));
        run_operand_corners(insn, splitmix(s));
      }
      run_encoding(insn, opts.states_per_encoding, splitmix(s));
    }
  }

  void run_rvc_sweep(std::uint64_t sweep_seed) {
    for (std::uint32_t h = 0; h <= 0xffff; ++h) {
      if (!isa::is_compressed_encoding(static_cast<std::uint16_t>(h)))
        continue;
      Instruction insn;
      if (!dec.decode16(static_cast<std::uint16_t>(h), &insn)) continue;
      const Mnemonic mn = insn.mnemonic();
      if (semantics::semantics_spec(mn)[0] == '\0') continue;
      if (opts.only != Mnemonic::kInvalid && mn != opts.only) continue;
      ++rep.rvc_forms;
      std::uint64_t s = sweep_seed ^ h;
      run_encoding(insn, opts.rvc_states, splitmix(s));
    }
  }
};

}  // namespace

std::vector<Mnemonic> lockstep_mnemonics() {
  std::vector<Mnemonic> out;
  for (std::uint16_t i = 0;
       i < static_cast<std::uint16_t>(Mnemonic::kCount); ++i) {
    const Mnemonic mn = static_cast<Mnemonic>(i);
    if (semantics::semantics_spec(mn)[0] != '\0') out.push_back(mn);
  }
  return out;
}

LockstepReport run_lockstep(const LockstepOptions& opts) {
  LockstepReport rep;
  Harness h{opts, rep};

  const std::vector<Mnemonic> targets = lockstep_mnemonics();
  std::uint64_t s = opts.seed;
  for (Mnemonic mn : targets) {
    const std::uint64_t mn_seed = splitmix(s);
    if (opts.only != Mnemonic::kInvalid && mn != opts.only) continue;
    rep.per_mnemonic[mn];  // materialize a zero entry for the ledger
    h.run_mnemonic(mn, mn_seed);
  }
  if (opts.rvc_exhaustive) h.run_rvc_sweep(splitmix(s));

  for (Mnemonic mn : targets) {
    if (opts.only != Mnemonic::kInvalid && mn != opts.only) continue;
    if (rep.per_mnemonic[mn] < opts.states_per_mnemonic)
      rep.uncovered.push_back(mn);
  }

  RVDYN_OBS_COUNT_N("rvdyn.check.lockstep.states", rep.states);
  RVDYN_OBS_COUNT_N("rvdyn.check.lockstep.encodings", rep.encodings);
  RVDYN_OBS_COUNT_N("rvdyn.check.lockstep.rvc_forms", rep.rvc_forms);
  RVDYN_OBS_COUNT_N("rvdyn.check.lockstep.divergences", rep.divergence_count);
  RVDYN_OBS_GAUGE("rvdyn.check.lockstep.mnemonics_covered",
                  static_cast<std::int64_t>(rep.per_mnemonic.size() -
                                            rep.uncovered.size()));
  return rep;
}

}  // namespace rvdyn::check
