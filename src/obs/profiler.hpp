// rvdyn::obs profiling: the tool-facing layer (paper §4's performance-tool
// use case).
//
// BlockProfiler is an instrumentation-based basic-block frequency profiler
// built on PatchAPI + CodeGenAPI: every basic block of every function gets
// a distinct 8-byte counter in guest memory (`.rvdyn.data`) incremented by
// an inlined snippet at block entry. After a run, counts() reads the
// counters back out of the mutatee and returns a hot-block table.
//
// Its emulator-side mirror is Machine::enable_pc_profile(): "hardware"
// per-PC hit/cycle counters maintained by the emulator itself. The two
// views must agree exactly on block frequencies — tests/test_obs_profiler
// proves it — which is the cross-check a perf tool needs before trusting
// instrumented counts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "patch/editor.hpp"

namespace rvdyn::emu {
class Machine;
}

namespace rvdyn::obs {

class BlockProfiler {
 public:
  /// Parses `binary` and instruments every basic block with a counter
  /// increment. The rewritten binary is committed immediately.
  explicit BlockProfiler(const symtab::Symtab& binary);

  /// The instrumented binary; run it (with trap_table() installed when
  /// springboards degraded to traps) and then read counts().
  const symtab::Symtab& rewritten() const { return rewritten_; }
  const std::vector<patch::TrapEntry>& trap_table() const {
    return editor_.trap_table();
  }

  /// The CFG the instrumentation was planted on (original addresses).
  parse::CodeObject& code() { return editor_.code(); }

  /// Block-start → counter variable, one per distinct block address.
  const std::map<std::uint64_t, codegen::Variable>& counters() const {
    return per_block_;
  }

  struct HotBlock {
    std::uint64_t block = 0;  ///< original block start address
    std::uint64_t count = 0;  ///< entries observed by the instrumentation
    std::string func;         ///< containing function name
    unsigned n_insns = 0;     ///< static size of the block
  };

  /// Read every block counter out of a finished run, sorted hottest-first
  /// (ties broken by address for determinism).
  std::vector<HotBlock> counts(emu::Machine& m) const;

  /// One block's counter value (0 when the block was not instrumented).
  std::uint64_t count_of(emu::Machine& m, std::uint64_t block) const;

 private:
  patch::BinaryEditor editor_;
  std::map<std::uint64_t, codegen::Variable> per_block_;
  symtab::Symtab rewritten_;
};

}  // namespace rvdyn::obs
