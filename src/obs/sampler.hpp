// rvdyn::obs sampling profiler (the tentpole of the v2 observability
// layer): a deterministic guest-level profiler driven by retired-
// instruction budgets instead of signals or timers.
//
// The Sampler installs Machine::set_sample_hook(interval, ...); the
// emulator's run loop then stops at *exact* instruction boundaries
// (instret == k·interval) regardless of which tier — interpreter, cached
// blocks, or JIT-compiled code — executed the preceding instructions (the
// loop caps JIT session budgets and whole-block execution at the boundary
// and single-steps the remainder). At each stop the Sampler walks the
// guest call stack through StackwalkerAPI (per-function dataflow analyses
// are cached across samples), symbolizes every frame through ParseAPI, and
// folds the stack into a FoldedStacks aggregate.
//
// Determinism is the point: the sampled (instret, pc, registers, memory)
// tuple is an architectural invariant, so the same binary at the same
// interval produces byte-identical folded output run-to-run AND with the
// JIT tier on or off — profiles are reproducible evidence, and the
// differential tests hold the sampled profile against the exact
// BlockProfiler the way src/check/ holds the JIT against the interpreter.
//
// JIT attribution: compiled code only ever pauses at precise guest pcs
// (the side-exit contract), and the run loop's slice capping means no
// mapping from host code back to guest state is ever needed at sample
// time. The Tier's BlockInfo side-table is still consulted per sample to
// tell which samples landed inside compiled regions (jit_samples()) —
// occupancy is reported separately and deliberately kept OUT of the folded
// keys, which must not differ between tiers.
//
// In RVDYN_OBS=OFF builds the machine hook never fires; a Sampler
// constructs and detaches cleanly but collects nothing.
#pragma once

#include <cstdint>
#include <memory>

#include "emu/machine.hpp"
#include "obs/flamegraph.hpp"
#include "parse/cfg.hpp"
#include "stackwalk/stackwalker.hpp"

namespace rvdyn::obs {

struct SamplerOptions {
  /// Retired instructions between samples. The default (the largest prime
  /// below 2^18) keeps walk + fold overhead well under the <5% budget on
  /// JIT-speed workloads while still taking thousands of samples per
  /// second of guest time. It is prime on purpose: a deterministic
  /// sampler whose period shares a factor with a hot loop's instruction
  /// count aliases onto one phase of the loop and attributes everything
  /// to a single pc; a prime period is coprime to every loop length.
  std::uint64_t interval = 262139;  // largest prime < 2^18
  unsigned max_depth = 64;   ///< stack-walk depth cap per sample
  bool capture_stacks = true;  ///< false: fold the leaf frame only (cheaper)
};

class Sampler {
 public:
  /// Attaches to `m` on construction. `co` must be parsed and must outlive
  /// the Sampler; it provides symbolization and the walker's dataflow.
  Sampler(emu::Machine& m, const parse::CodeObject& co,
          SamplerOptions opts = {});
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Remove the machine hook (destructor does this too). The collected
  /// profile stays readable after detaching.
  void detach();
  /// Re-install the hook after a detach. The next sample boundary is
  /// `interval` instructions from the machine's current instret.
  void attach();
  bool attached() const { return attached_; }

  // --- results ---
  const FoldedStacks& stacks() const { return stacks_; }
  std::string folded() const { return stacks_.folded(); }
  std::vector<FoldedStacks::FuncTotal> hot_table() const {
    return stacks_.hot_table();
  }
  std::uint64_t samples() const { return samples_; }
  /// Samples whose pc sat inside a JIT-compiled region (per the Tier's
  /// BlockInfo side-table) — compiled-code occupancy at sample points.
  std::uint64_t jit_samples() const { return jit_samples_; }
  /// Walks cut short by the depth cap.
  std::uint64_t truncated_walks() const { return truncated_walks_; }
  const SamplerOptions& options() const { return opts_; }

  /// Drop collected samples (the hook stays installed if attached).
  void reset();

 private:
  void on_sample(emu::Machine& m);

  emu::Machine& m_;
  const parse::CodeObject& co_;
  SamplerOptions opts_;
  stackwalk::MachineAccess access_;
  stackwalk::StackWalker walker_;
  FoldedStacks stacks_;
  std::uint64_t samples_ = 0;
  std::uint64_t jit_samples_ = 0;
  std::uint64_t truncated_walks_ = 0;
  bool attached_ = false;
};

}  // namespace rvdyn::obs
