#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>

#include "codegen/snippet.hpp"
#include "emu/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rvdyn::obs {

BlockProfiler::BlockProfiler(const symtab::Symtab& binary) : editor_(binary) {
  RVDYN_OBS_SPAN("rvdyn.obs.block_profiler.instrument");
  for (const auto& [entry, func] : editor_.code().functions()) {
    for (const auto& p :
         patch::find_points(*func, patch::PointType::BlockEntry)) {
      // A block reachable from two functions must still get exactly one
      // counter, or the instrumented count would double the emulator's.
      if (per_block_.count(p.block)) continue;
      char name[32];
      std::snprintf(name, sizeof(name), "bb_%llx",
                    static_cast<unsigned long long>(p.block));
      const auto v = editor_.alloc_var(name);
      per_block_.emplace(p.block, v);
      editor_.insert(p, codegen::increment(v));
    }
  }
  rewritten_ = editor_.commit();
  RVDYN_OBS_COUNT_N("rvdyn.obs.profiler.blocks_instrumented",
                    per_block_.size());
}

std::uint64_t BlockProfiler::count_of(emu::Machine& m,
                                      std::uint64_t block) const {
  const auto it = per_block_.find(block);
  return it == per_block_.end() ? 0 : m.memory().read(it->second.addr, 8);
}

std::vector<BlockProfiler::HotBlock> BlockProfiler::counts(
    emu::Machine& m) const {
  // Invert per_block_ through the CFG once so each entry knows its
  // function name and static size.
  std::vector<HotBlock> out;
  out.reserve(per_block_.size());
  for (const auto& [entry, func] : editor_.code().functions()) {
    for (const auto& [start, block] : func->blocks()) {
      const auto it = per_block_.find(start);
      if (it == per_block_.end()) continue;
      HotBlock hb;
      hb.block = start;
      hb.count = m.memory().read(it->second.addr, 8);
      hb.func = func->name();
      hb.n_insns = static_cast<unsigned>(block->insns().size());
      out.push_back(std::move(hb));
    }
  }
  // Blocks can appear under several functions; keep one row per address.
  std::sort(out.begin(), out.end(), [](const HotBlock& a, const HotBlock& b) {
    return a.block < b.block;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const HotBlock& a, const HotBlock& b) {
                          return a.block == b.block;
                        }),
            out.end());
  std::sort(out.begin(), out.end(), [](const HotBlock& a, const HotBlock& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.block < b.block;
  });
  return out;
}

}  // namespace rvdyn::obs
