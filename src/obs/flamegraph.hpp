// rvdyn::obs flamegraphs: aggregation of call-stack samples into the
// FlameGraph "folded stacks" format — one line per distinct stack,
// root-first frames joined by ';' followed by the sample count:
//
//   _start;matmul 412
//   _start;wrapper;leaf 9
//
// Both Brendan Gregg's flamegraph.pl and speedscope import this format
// directly, so one emitter serves both visualizers. Output is
// deterministic: stacks sort lexicographically and counts are exact, which
// is what lets the sampler tests demand byte-identical files across runs
// and across execution tiers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rvdyn::obs {

class FoldedStacks {
 public:
  /// Record one sample of `stack` (frames root-first, e.g. from reversing
  /// a StackWalker walk) with the given weight.
  void add(const std::vector<std::string>& stack, std::uint64_t weight = 1);

  /// Record a stack already folded into "a;b;c" form.
  void add_folded(const std::string& key, std::uint64_t weight = 1);

  /// The folded-stacks text: "stack count\n" per distinct stack, sorted
  /// lexicographically by stack.
  std::string folded() const;

  /// Write folded() to `path`; returns false on I/O failure.
  bool write_folded(const std::string& path) const;

  /// Function-level rollup of the folded stacks.
  struct FuncTotal {
    std::string name;
    std::uint64_t self = 0;   ///< samples with this function on top
    std::uint64_t total = 0;  ///< samples with this function anywhere
  };

  /// Flat hot table, sorted by self weight descending (ties by name). The
  /// self column is the sampled analogue of the exact profiler's
  /// per-function instruction share.
  std::vector<FuncTotal> hot_table() const;

  /// Human-readable hot table (top `limit` rows with self percentages).
  std::string hot_table_text(std::size_t limit = 10) const;

  std::uint64_t total_weight() const { return total_; }
  std::size_t distinct_stacks() const { return stacks_.size(); }
  bool empty() const { return stacks_.empty(); }
  void clear();

  /// Merge another aggregation into this one (shard collection).
  void merge(const FoldedStacks& other);

 private:
  std::map<std::string, std::uint64_t> stacks_;  ///< folded key → weight
  std::uint64_t total_ = 0;
};

}  // namespace rvdyn::obs
