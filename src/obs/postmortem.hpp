// rvdyn::obs postmortem: one-call trap/crash report assembly.
//
// When a guest run stops somewhere it should not (illegal instruction,
// bad fetch, unexpected breakpoint/syscall), the postmortem collects the
// evidence a person needs before touching a debugger, all from state the
// emulator already holds:
//
//   * the stop reason, pc, and retired-instruction/cycle counts;
//   * the faulting instruction — symbolized location, raw bytes, and
//     disassembly (from the parsed CFG when the pc is inside a parsed
//     function, re-decoded from memory when it is not);
//   * the full register file (ABI names, hex values);
//   * a call-stack walk via StackwalkerAPI;
//   * the last-K executed blocks from the Machine's block-trace ring
//     (enable_block_trace(true) before the run — the report says so when
//     the ring was off);
//   * the tail of the TraceSink event stream, when the sink is enabled.
//
// The report is plain text, deterministic given deterministic guest state
// (the TraceSink section carries host timestamps and is last so the
// deterministic sections diff cleanly).
#pragma once

#include <string>

#include "emu/machine.hpp"
#include "parse/cfg.hpp"

namespace rvdyn::proccontrol {
class Process;
}

namespace rvdyn::obs {

struct PostmortemOptions {
  unsigned max_frames = 32;        ///< stack-walk depth cap
  std::size_t max_blocks = 16;     ///< block-trace tail length
  std::size_t max_trace_events = 16;  ///< TraceSink tail length
  bool include_trace_events = true;
};

/// Assemble the report for `m` stopped with `reason`. `co` must be parsed
/// over the same binary (symbolization + stack walking).
std::string postmortem_report(emu::Machine& m, const parse::CodeObject& co,
                              emu::StopReason reason,
                              const PostmortemOptions& opts = {});

/// Convenience for the debugger surface: report on a Process's machine
/// using its last stop reason.
std::string postmortem_report(proccontrol::Process& proc,
                              const parse::CodeObject& co,
                              const PostmortemOptions& opts = {});

}  // namespace rvdyn::obs
