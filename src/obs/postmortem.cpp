#include "obs/postmortem.hpp"

#include <cstdio>

#include "isa/decoder.hpp"
#include "isa/registers.hpp"
#include "obs/trace.hpp"
#include "proccontrol/process.hpp"
#include "stackwalk/stackwalker.hpp"

namespace rvdyn::obs {

namespace {

const char* stop_reason_name(emu::StopReason r) {
  switch (r) {
    case emu::StopReason::Running: return "running (step budget exhausted)";
    case emu::StopReason::Exited: return "exited";
    case emu::StopReason::Breakpoint: return "breakpoint (ebreak)";
    case emu::StopReason::IllegalInsn: return "illegal instruction";
    case emu::StopReason::BadFetch: return "bad fetch (pc unmapped)";
    case emu::StopReason::BadSyscall: return "unknown syscall";
    case emu::StopReason::Watchpoint: return "watchpoint";
  }
  return "?";
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// The instruction at `pc`: from the parsed CFG when available (exact,
/// already classified), else re-decoded from guest memory. Returns a
/// "bytes + disassembly" line, or a diagnosis when neither works.
std::string faulting_insn_line(const emu::Machine& m,
                               const parse::CodeObject& co, std::uint64_t pc) {
  std::uint8_t bytes[4] = {};
  const bool have2 = m.memory().try_read_bytes(pc, bytes, 2);
  const bool compressed = have2 && (bytes[0] & 0x3) != 0x3;
  const unsigned want = compressed ? 2 : 4;
  const bool have_all = have2 && (compressed ||
                                  m.memory().try_read_bytes(pc, bytes, 4));

  std::string line;
  char buf[64];
  if (have2) {
    line += "bytes ";
    for (unsigned i = 0; i < want && (i < 2 || have_all); ++i) {
      std::snprintf(buf, sizeof(buf), "%02x ", bytes[i]);
      line += buf;
    }
  } else {
    return "  <pc unmapped: no bytes to decode>\n";
  }

  // Prefer the parse's decode: exact and free.
  if (const parse::Function* f = co.function_containing(pc)) {
    if (const parse::Block* b = f->block_containing(pc)) {
      for (const parse::ParsedInsn& pi : b->insns())
        if (pi.addr == pc)
          return "  " + line + " " + pi.insn.to_string() + "\n";
    }
  }
  if (have_all || compressed) {
    isa::Decoder dec;
    isa::Instruction insn;
    if (dec.decode(bytes, want, &insn) != 0)
      return "  " + line + " " + insn.to_string() + "\n";
  }
  return "  " + line + " <does not decode>\n";
}

}  // namespace

std::string postmortem_report(emu::Machine& m, const parse::CodeObject& co,
                              emu::StopReason reason,
                              const PostmortemOptions& opts) {
  std::string out;
  char buf[256];
  const std::uint64_t pc = m.pc();

  out += "=== rvdyn postmortem ===\n";
  out += "stop:    ";
  out += stop_reason_name(reason);
  out += "\n";
  out += "pc:      " + hex64(pc) + "  (" + co.symbolize(pc) + ")\n";
  std::snprintf(buf, sizeof(buf), "instret: %llu   cycles: %llu\n",
                static_cast<unsigned long long>(m.instret()),
                static_cast<unsigned long long>(m.cycles()));
  out += buf;

  out += "\n--- faulting instruction ---\n";
  out += faulting_insn_line(m, co, pc);

  out += "\n--- registers ---\n";
  for (unsigned i = 0; i < 32; i += 2) {
    const isa::Reg a = isa::x(static_cast<std::uint8_t>(i));
    const isa::Reg b = isa::x(static_cast<std::uint8_t>(i + 1));
    std::snprintf(buf, sizeof(buf), "  %-4s(%-3s) %s   %-4s(%-3s) %s\n",
                  isa::reg_name(a).c_str(), isa::reg_arch_name(a).c_str(),
                  hex64(m.get_reg(a)).c_str(), isa::reg_name(b).c_str(),
                  isa::reg_arch_name(b).c_str(), hex64(m.get_reg(b)).c_str());
    out += buf;
  }

  out += "\n--- stack ---\n";
  {
    stackwalk::MachineAccess access(m);
    stackwalk::StackWalker walker(access, co);
    const auto frames = walker.walk(opts.max_frames);
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const auto& f = frames[i];
      std::snprintf(buf, sizeof(buf), "  #%-2zu %s  %s  sp=%s%s%s\n", i,
                    hex64(f.pc).c_str(), co.symbolize(f.pc).c_str(),
                    hex64(f.sp).c_str(), f.stepper[0] ? "  via " : "",
                    f.stepper);
      out += buf;
    }
    if (frames.empty()) out += "  <no frames>\n";
  }

  out += "\n--- last executed blocks (oldest first) ---\n";
  {
    const auto blocks = m.recent_blocks();
    const std::size_t skip =
        blocks.size() > opts.max_blocks ? blocks.size() - opts.max_blocks : 0;
    for (std::size_t i = skip; i < blocks.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "  [instret %12llu] %s  %s\n",
                    static_cast<unsigned long long>(blocks[i].instret),
                    hex64(blocks[i].pc).c_str(),
                    co.symbolize(blocks[i].pc).c_str());
      out += buf;
    }
    if (blocks.empty())
      out += m.block_trace_enabled()
                 ? "  <empty>\n"
                 : "  <block trace disabled: call enable_block_trace(true) "
                   "before the run>\n";
  }

  if (opts.include_trace_events) {
    out += "\n--- recent trace events ---\n";
    const auto evs = TraceSink::instance().render_events();
    const std::size_t skip = evs.size() > opts.max_trace_events
                                 ? evs.size() - opts.max_trace_events
                                 : 0;
    for (std::size_t i = skip; i < evs.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "  %12.3fus [tid %u] %c %s\n",
                    static_cast<double>(evs[i].ts_ns) / 1000.0, evs[i].tid,
                    evs[i].phase, evs[i].name);
      out += buf;
    }
    if (evs.empty())
      out += TraceSink::instance().enabled() ? "  <empty>\n"
                                             : "  <trace sink disabled>\n";
  }
  return out;
}

std::string postmortem_report(proccontrol::Process& proc,
                              const parse::CodeObject& co,
                              const PostmortemOptions& opts) {
  return postmortem_report(proc.machine(), co, proc.machine().last_stop(),
                           opts);
}

}  // namespace rvdyn::obs
