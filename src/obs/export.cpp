#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace rvdyn::obs {

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:] only.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// True when `name` is a component series of histogram `hist`
/// (`hist.count`, `hist.sum`, `hist.max`, `hist.b<i>`).
bool is_histogram_component(const std::string& name, const std::string& hist) {
  if (name.size() <= hist.size() + 1 || name.compare(0, hist.size(), hist) != 0 ||
      name[hist.size()] != '.')
    return false;
  const std::string suffix = name.substr(hist.size() + 1);
  if (suffix == "count" || suffix == "sum" || suffix == "max") return true;
  if (suffix.size() >= 2 && suffix[0] == 'b')
    return suffix.find_first_not_of("0123456789", 1) == std::string::npos;
  return false;
}

}  // namespace

std::vector<Registry::Sample> snapshot_diff(
    const std::vector<Registry::Sample>& now,
    const std::vector<Registry::Sample>& then) {
  std::unordered_map<std::string, std::uint64_t> base;
  base.reserve(then.size());
  for (const auto& s : then) base.emplace(s.name, s.value);
  std::vector<Registry::Sample> out;
  for (const auto& s : now) {
    Registry::Sample d = s;
    if (s.kind == MetricKind::Counter) {
      const auto it = base.find(s.name);
      const std::uint64_t prev = it == base.end() ? 0 : it->second;
      d.value = s.value > prev ? s.value - prev : 0;
    }
    if (d.value != 0) out.push_back(std::move(d));
  }
  return out;
}

std::string prometheus_text(const Registry& reg) {
  const auto samples = reg.snapshot();
  const auto hist_names = reg.histogram_names();
  std::string out;
  char buf[256];

  // Plain counters/gauges first, skipping histogram components (they are
  // re-emitted below as proper histogram series).
  for (const auto& s : samples) {
    bool component = false;
    for (const auto& h : hist_names)
      if (is_histogram_component(s.name, h)) {
        component = true;
        break;
      }
    if (component) continue;
    const std::string n = prom_name(s.name);
    const char* type =
        s.kind == MetricKind::Counter ? "counter" : "gauge";
    out += "# TYPE " + n + " " + type + "\n";
    std::snprintf(buf, sizeof(buf), "%s %llu\n", n.c_str(),
                  static_cast<unsigned long long>(s.value));
    out += buf;
  }

  for (const auto& h : reg.histograms()) {
    const std::string n = prom_name(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < kHistogramBuckets; ++i) {
      cum += h.buckets[i];
      if (i + 1 == kHistogramBuckets) break;  // top bucket folds into +Inf
      // Bucket i counts values of bit-width i, so the inclusive upper
      // bound is 2^i - 1.
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%llu\"} %llu\n",
                    n.c_str(),
                    static_cast<unsigned long long>((1ULL << i) - 1),
                    static_cast<unsigned long long>(cum));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %llu\n%s_count %llu\n",
                  n.c_str(), static_cast<unsigned long long>(h.count),
                  n.c_str(), static_cast<unsigned long long>(h.sum), n.c_str(),
                  static_cast<unsigned long long>(h.count));
    out += buf;
  }
  return out;
}

std::string json_snapshot(const Registry& reg) {
  std::string out = "{\"metrics\": " + reg.to_json() + ", \"histograms\": {";
  const auto hists = reg.histograms();
  for (std::size_t i = 0; i < hists.size(); ++i) {
    const HistogramSnapshot& h = hists[i];
    out += "\"" + h.name + "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"max\": " + std::to_string(h.max) +
           ", \"mean\": " + fmt_double(h.mean()) +
           ", \"p50\": " + fmt_double(h.p50()) +
           ", \"p95\": " + fmt_double(h.p95()) +
           ", \"p99\": " + fmt_double(h.p99()) + "}";
    if (i + 1 < hists.size()) out += ", ";
  }
  out += "}}";
  return out;
}

std::string json_delta(const std::vector<Registry::Sample>& then,
                       const Registry& reg) {
  const auto delta = snapshot_diff(reg.snapshot(), then);
  std::string out = "{\"metrics\": {";
  for (std::size_t i = 0; i < delta.size(); ++i) {
    out += "\"" + delta[i].name + "\": " + std::to_string(delta[i].value);
    if (i + 1 < delta.size()) out += ", ";
  }
  out += "}}";
  return out;
}

}  // namespace rvdyn::obs
