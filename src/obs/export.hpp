// rvdyn::obs export surface: the registry's wire formats.
//
//  * prometheus_text()  — Prometheus text exposition (version 0.0.4):
//    counters/gauges as single series, histograms as cumulative
//    `_bucket{le="..."}` series with `_sum`/`_count`, ready for a
//    scrape endpoint. Metric names have '.' mapped to '_'.
//  * json_snapshot()    — one JSON object carrying every metric plus a
//    per-histogram digest (count/sum/max/mean/p50/p95/p99).
//  * snapshot_diff()    — the delta primitive for streaming: counters
//    subtract, gauges/max report the current value. A serve loop keeps
//    the previous snapshot and ships only what moved
//    (`json_delta(prev)` does exactly that in one call).
//
// All readers aggregate across the registry's thread shards and are meant
// for quiesced or low-rate polling (a scrape every few seconds), not the
// hot path.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace rvdyn::obs {

/// `now` minus `then` for two snapshot() results: counters subtract
/// (clamped at 0 against resets), gauges and maxes carry `now`'s value.
/// Metrics absent from `then` are treated as starting at zero; the result
/// omits metrics whose delta is zero, which is what makes it a streaming
/// primitive — an idle interval serializes to almost nothing.
std::vector<Registry::Sample> snapshot_diff(
    const std::vector<Registry::Sample>& now,
    const std::vector<Registry::Sample>& then);

/// Prometheus text exposition of `reg`'s current state. Histogram
/// component metrics (`.count`/`.sum`/`.max`/`.b<i>`) are folded into
/// proper histogram series instead of appearing as bare counters; the
/// power-of-two buckets publish `le` bounds of 2^i - 1 plus `+Inf`.
std::string prometheus_text(const Registry& reg = Registry::instance());

/// JSON object:
///   {"metrics": {"name": value, ...},
///    "histograms": {"name": {"count": ..., "sum": ..., "max": ...,
///                            "mean": ..., "p50": ..., "p95": ...,
///                            "p99": ...}, ...}}
std::string json_snapshot(const Registry& reg = Registry::instance());

/// JSON object of the non-zero deltas since `then` (see snapshot_diff):
///   {"metrics": {...changed only...}}
std::string json_delta(const std::vector<Registry::Sample>& then,
                       const Registry& reg = Registry::instance());

}  // namespace rvdyn::obs
