#include "obs/flamegraph.hpp"

#include <algorithm>
#include <cstdio>

namespace rvdyn::obs {

void FoldedStacks::add(const std::vector<std::string>& stack,
                       std::uint64_t weight) {
  if (stack.empty() || weight == 0) return;
  std::string key;
  for (std::size_t i = 0; i < stack.size(); ++i) {
    if (i != 0) key += ';';
    key += stack[i];
  }
  add_folded(key, weight);
}

void FoldedStacks::add_folded(const std::string& key, std::uint64_t weight) {
  if (key.empty() || weight == 0) return;
  stacks_[key] += weight;
  total_ += weight;
}

std::string FoldedStacks::folded() const {
  std::string out;
  for (const auto& [key, weight] : stacks_) {
    out += key;
    out += ' ';
    out += std::to_string(weight);
    out += '\n';
  }
  return out;
}

bool FoldedStacks::write_folded(const std::string& path) const {
  std::FILE* fp = std::fopen(path.c_str(), "w");
  if (!fp) return false;
  const std::string text = folded();
  const bool ok = std::fwrite(text.data(), 1, text.size(), fp) == text.size();
  std::fclose(fp);
  return ok;
}

std::vector<FoldedStacks::FuncTotal> FoldedStacks::hot_table() const {
  // self: weight of stacks whose leaf is the function. total: weight of
  // stacks containing the function anywhere — counted once per stack, so
  // recursion does not inflate it past total_weight().
  std::map<std::string, FuncTotal> agg;
  std::vector<std::string> frames;
  for (const auto& [key, weight] : stacks_) {
    frames.clear();
    std::size_t pos = 0;
    while (pos <= key.size()) {
      const std::size_t sep = key.find(';', pos);
      const std::size_t end = sep == std::string::npos ? key.size() : sep;
      frames.push_back(key.substr(pos, end - pos));
      if (sep == std::string::npos) break;
      pos = sep + 1;
    }
    if (frames.empty()) continue;
    std::vector<std::string> seen;
    for (const std::string& f : frames) {
      if (std::find(seen.begin(), seen.end(), f) != seen.end()) continue;
      seen.push_back(f);
      FuncTotal& t = agg[f];
      t.name = f;
      t.total += weight;
    }
    agg[frames.back()].self += weight;
  }
  std::vector<FuncTotal> out;
  out.reserve(agg.size());
  for (auto& [name, t] : agg) out.push_back(std::move(t));
  std::sort(out.begin(), out.end(), [](const FuncTotal& a, const FuncTotal& b) {
    if (a.self != b.self) return a.self > b.self;
    return a.name < b.name;
  });
  return out;
}

std::string FoldedStacks::hot_table_text(std::size_t limit) const {
  const auto table = hot_table();
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-28s %10s %7s %10s\n", "function", "self",
                "self%", "total");
  out += buf;
  for (std::size_t i = 0; i < table.size() && i < limit; ++i) {
    const FuncTotal& t = table[i];
    const double pct =
        total_ ? 100.0 * static_cast<double>(t.self) / static_cast<double>(total_)
               : 0.0;
    std::snprintf(buf, sizeof(buf), "%-28s %10llu %6.2f%% %10llu\n",
                  t.name.c_str(), static_cast<unsigned long long>(t.self), pct,
                  static_cast<unsigned long long>(t.total));
    out += buf;
  }
  return out;
}

void FoldedStacks::clear() {
  stacks_.clear();
  total_ = 0;
}

void FoldedStacks::merge(const FoldedStacks& other) {
  for (const auto& [key, weight] : other.stacks_) add_folded(key, weight);
}

}  // namespace rvdyn::obs
