#include "obs/sampler.hpp"

#include "obs/metrics.hpp"

namespace rvdyn::obs {

Sampler::Sampler(emu::Machine& m, const parse::CodeObject& co,
                 SamplerOptions opts)
    : m_(m), co_(co), opts_(opts), access_(m), walker_(access_, co) {
  if (opts_.interval == 0) opts_.interval = 1;
  attach();
}

Sampler::~Sampler() { detach(); }

void Sampler::attach() {
  if (attached_) return;
  m_.set_sample_hook(opts_.interval,
                     [this](emu::Machine& m) { on_sample(m); });
  attached_ = true;
}

void Sampler::detach() {
  if (!attached_) return;
  m_.clear_sample_hook();
  attached_ = false;
}

void Sampler::reset() {
  stacks_.clear();
  samples_ = 0;
  jit_samples_ = 0;
  truncated_walks_ = 0;
}

void Sampler::on_sample(emu::Machine& m) {
  ++samples_;
  RVDYN_OBS_COUNT("rvdyn.obs.sampler.samples");
  const std::uint64_t pc = m.pc();
#if RVDYN_JIT_ENABLED
  // Occupancy only — never part of the folded key (profiles must be
  // byte-identical with the tier on or off).
  if (m.jit_tier() != nullptr && m.jit_tier()->block_info(pc) != nullptr)
    ++jit_samples_;
#endif
  std::vector<std::string> names;
  if (opts_.capture_stacks) {
    const auto frames = walker_.walk(opts_.max_depth);
    if (frames.size() >= opts_.max_depth) ++truncated_walks_;
    RVDYN_OBS_HIST("rvdyn.obs.sampler.stack_depth", frames.size());
    names.reserve(frames.size());
    // walk() returns innermost first; folded stacks want root first.
    for (auto it = frames.rbegin(); it != frames.rend(); ++it)
      names.push_back(it->func_name.empty() ? co_.symbolize(it->pc)
                                            : it->func_name);
  } else {
    names.push_back(co_.symbolize(pc));
  }
  stacks_.add(names);
}

}  // namespace rvdyn::obs
