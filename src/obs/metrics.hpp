// rvdyn::obs metrics: a lock-free counter/gauge/histogram registry.
//
// The hot path (Counter::add) is one thread-local-shard lookup plus one
// relaxed atomic add to an uncontended cache line; readers aggregate across
// shards, so writers never synchronize with each other. Metric names form
// a dotted namespace mirroring the toolkits that emit them:
//   rvdyn.isa.*    decoder fast/slow-path traffic
//   rvdyn.emu.*    icache/block-cache hits, misses, evictions, flushes
//   rvdyn.parse.*  per-phase timings, per-worker block/gap counts
//   rvdyn.patch.*  snippet and relocation statistics
//
// All hot-path hook sites go through the RVDYN_OBS_* macros below, which
// compile to nothing when the build sets RVDYN_OBS_ENABLED=0 (CMake option
// RVDYN_OBS=OFF). The registry classes themselves always exist, so the ABI
// of types embedding stats does not change between the two builds.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#ifndef RVDYN_OBS_ENABLED
#define RVDYN_OBS_ENABLED 1
#endif

namespace rvdyn::obs {

/// How a slot aggregates across thread shards and is reported.
enum class MetricKind : std::uint8_t {
  Counter,  ///< monotonic, summed across shards
  Gauge,    ///< last-set value (global slot, not sharded)
  Max,      ///< maximum across shards (histogram `.max` companions)
};

inline const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Max: return "max";
  }
  return "?";
}

/// Bucket count shared by obs::Histogram and HistogramSnapshot.
inline constexpr unsigned kHistogramBuckets = 16;

/// A histogram reassembled from its component metrics (`.count`, `.sum`,
/// `.max`, `.b<i>`), merged across all thread shards by the registry read
/// path. Buckets are power-of-two: bucket 0 counts zeros, bucket i counts
/// values in [2^(i-1), 2^i), and the last bucket absorbs everything wider.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Quantile estimate for q in [0, 1] (q=0.5 → p50): nearest-rank walk
  /// over the cumulative buckets with linear interpolation between the
  /// bucket's value bounds. Exact for single-valued buckets (0 and 1);
  /// elsewhere the error is bounded by the bucket width. The top bucket's
  /// upper bound is the recorded max, so p100 == max exactly.
  double percentile(double q) const {
    if (count == 0) return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double rank = q * static_cast<double>(count - 1) + 1.0;  // 1-based
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < kHistogramBuckets; ++i) {
      if (buckets[i] == 0) continue;
      const double first_rank = static_cast<double>(cum) + 1.0;
      cum += buckets[i];
      if (rank > static_cast<double>(cum)) continue;
      double lo = i == 0 ? 0.0 : static_cast<double>(1ULL << (i - 1));
      double hi = i == 0 ? 0.0 : static_cast<double>((1ULL << i) - 1);
      if (i + 1 == kHistogramBuckets || hi > static_cast<double>(max))
        hi = static_cast<double>(max);
      if (hi < lo) hi = lo;
      const double frac =
          buckets[i] <= 1
              ? 0.0
              : (rank - first_rank) / static_cast<double>(buckets[i] - 1);
      return lo + frac * (hi - lo);
    }
    return static_cast<double>(max);
  }
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }
};

class Registry {
 public:
  using Id = std::uint32_t;
  static constexpr std::size_t kMaxSlots = 1024;

  /// Process-wide registry. Deliberately leaked so metric flushes from
  /// static-storage destructors (decoders, machines) stay safe at exit.
  static Registry& instance() {
    static Registry* r = new Registry;
    return *r;
  }

  /// Idempotent: re-registering a name returns the existing id. The kind
  /// must match the original registration.
  Id register_metric(const std::string& name, MetricKind kind) {
    std::lock_guard lock(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    if (meta_.size() >= kMaxSlots)
      throw std::runtime_error("obs: metric slot capacity exhausted");
    const Id id = static_cast<Id>(meta_.size());
    meta_.push_back({name, kind});
    ids_.emplace(name, id);
    return id;
  }

  // --- hot-path writes (lock-free) ---
  void add(Id id, std::uint64_t n) {
    local_shard().slots[id].fetch_add(n, std::memory_order_relaxed);
  }
  void record_max(Id id, std::uint64_t v) {
    std::atomic<std::uint64_t>& slot = local_shard().slots[id];
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (cur < v &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void set_gauge(Id id, std::uint64_t v) {
    gauges_[id].store(v, std::memory_order_relaxed);
  }

  // --- reads (aggregate across shards; intended for quiesced moments) ---
  std::uint64_t read(Id id) const {
    std::lock_guard lock(mu_);
    return read_locked(id);
  }

  /// Value of a metric by name; 0 when the name was never registered.
  std::uint64_t value(const std::string& name) const {
    std::lock_guard lock(mu_);
    const auto it = ids_.find(name);
    return it == ids_.end() ? 0 : read_locked(it->second);
  }

  struct Sample {
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t value = 0;
  };

  /// All metrics, sorted by name (meta_ insertion order is registration
  /// order; the map keeps names unique, so sorting is stable).
  std::vector<Sample> snapshot() const {
    std::lock_guard lock(mu_);
    std::vector<Sample> out;
    out.reserve(meta_.size());
    for (Id id = 0; id < meta_.size(); ++id)
      out.push_back({meta_[id].name, meta_[id].kind, read_locked(id)});
    std::sort(out.begin(), out.end(),
              [](const Sample& a, const Sample& b) { return a.name < b.name; });
    return out;
  }

  /// Flat JSON object `{"name": value, ...}` — embedded into BENCH_*.json
  /// files and the example tools' reports.
  std::string to_json() const {
    const auto samples = snapshot();
    std::string out = "{";
    for (std::size_t i = 0; i < samples.size(); ++i) {
      out += "\"" + samples[i].name +
             "\": " + std::to_string(samples[i].value);
      if (i + 1 < samples.size()) out += ", ";
    }
    out += "}";
    return out;
  }

  // --- histogram sample API --------------------------------------------
  /// Called by obs::Histogram's constructor so readers can reassemble the
  /// component metrics into HistogramSnapshots. Idempotent.
  void register_histogram(const std::string& name) {
    std::lock_guard lock(mu_);
    for (const auto& h : histogram_names_)
      if (h == name) return;
    histogram_names_.push_back(name);
  }

  /// Names of every registered histogram, in registration order.
  std::vector<std::string> histogram_names() const {
    std::lock_guard lock(mu_);
    return histogram_names_;
  }

  /// Shard-merged snapshot of histogram `name` (all-zero when the name was
  /// never registered). Percentiles come from the snapshot's accessors:
  ///   Registry::instance().histogram("rvdyn.x").p99()
  HistogramSnapshot histogram(const std::string& name) const {
    std::lock_guard lock(mu_);
    return histogram_locked(name);
  }

  /// Snapshots of every registered histogram, in registration order.
  std::vector<HistogramSnapshot> histograms() const {
    std::lock_guard lock(mu_);
    std::vector<HistogramSnapshot> out;
    out.reserve(histogram_names_.size());
    for (const auto& name : histogram_names_)
      out.push_back(histogram_locked(name));
    return out;
  }

  /// Zero every slot (names stay registered). Call only when no other
  /// thread is writing — test fixtures and bench setup.
  void reset() {
    std::lock_guard lock(mu_);
    for (auto& shard : shards_)
      for (auto& slot : shard->slots)
        slot.store(0, std::memory_order_relaxed);
    for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  }

  /// Zero only the metrics whose name starts with `prefix`, leaving every
  /// other namespace untouched — so a fuzzing campaign (or any other
  /// repeated experiment) can clear its own `rvdyn.fuzz.w3.*` counters
  /// between rounds without destroying the decoder/JIT totals accumulated
  /// alongside. Same quiesced-writers contract as reset().
  void reset(const std::string& prefix) {
    std::lock_guard lock(mu_);
    for (Id id = 0; id < meta_.size(); ++id) {
      if (meta_[id].name.compare(0, prefix.size(), prefix) != 0) continue;
      for (auto& shard : shards_)
        shard->slots[id].store(0, std::memory_order_relaxed);
      gauges_[id].store(0, std::memory_order_relaxed);
    }
  }

  /// All metrics under `prefix`, sorted by name.
  std::vector<Sample> snapshot(const std::string& prefix) const {
    std::lock_guard lock(mu_);
    std::vector<Sample> out;
    for (Id id = 0; id < meta_.size(); ++id)
      if (meta_[id].name.compare(0, prefix.size(), prefix) == 0)
        out.push_back({meta_[id].name, meta_[id].kind, read_locked(id)});
    std::sort(out.begin(), out.end(),
              [](const Sample& a, const Sample& b) { return a.name < b.name; });
    return out;
  }

 private:
  struct Meta {
    std::string name;
    MetricKind kind;
  };
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxSlots> slots{};
  };

  Registry() = default;

  HistogramSnapshot histogram_locked(const std::string& name) const {
    HistogramSnapshot h;
    h.name = name;
    const auto by_name = [&](const std::string& n) -> std::uint64_t {
      const auto it = ids_.find(n);
      return it == ids_.end() ? 0 : read_locked(it->second);
    };
    h.count = by_name(name + ".count");
    h.sum = by_name(name + ".sum");
    h.max = by_name(name + ".max");
    for (unsigned i = 0; i < kHistogramBuckets; ++i)
      h.buckets[i] = by_name(name + ".b" + std::to_string(i));
    return h;
  }

  std::uint64_t read_locked(Id id) const {
    if (id >= meta_.size()) return 0;
    if (meta_[id].kind == MetricKind::Gauge)
      return gauges_[id].load(std::memory_order_relaxed);
    std::uint64_t v = 0;
    for (const auto& shard : shards_) {
      const std::uint64_t s = shard->slots[id].load(std::memory_order_relaxed);
      if (meta_[id].kind == MetricKind::Max)
        v = std::max(v, s);
      else
        v += s;
    }
    return v;
  }

  Shard& local_shard() {
    thread_local Shard* shard = nullptr;
    if (shard == nullptr) {
      auto owned = std::make_unique<Shard>();
      std::lock_guard lock(mu_);
      // Shards outlive their threads so exited workers' counts keep
      // contributing to totals.
      shards_.push_back(std::move(owned));
      shard = shards_.back().get();
    }
    return *shard;
  }

  mutable std::mutex mu_;  ///< guards registration + shard list, never adds
  std::unordered_map<std::string, Id> ids_;
  std::vector<Meta> meta_;
  std::vector<std::string> histogram_names_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::array<std::atomic<std::uint64_t>, kMaxSlots> gauges_{};
};

/// Cached-id handle for a counter. Construct once (function-local static at
/// hook sites via RVDYN_OBS_COUNT) and add() forever after without locks.
class Counter {
 public:
  explicit Counter(const std::string& name)
      : id_(Registry::instance().register_metric(name, MetricKind::Counter)) {}
  void add(std::uint64_t n = 1) const { Registry::instance().add(id_, n); }

 private:
  Registry::Id id_;
};

class Gauge {
 public:
  explicit Gauge(const std::string& name)
      : id_(Registry::instance().register_metric(name, MetricKind::Gauge)) {}
  void set(std::uint64_t v) const { Registry::instance().set_gauge(id_, v); }

 private:
  Registry::Id id_;
};

/// Power-of-two histogram: `<name>.count`, `<name>.sum`, `<name>.max`, and
/// buckets `<name>.b<i>` where bucket i counts values whose bit width is i
/// (i.e. v in [2^(i-1), 2^i)); bucket 0 counts zeros, the last bucket
/// absorbs everything wider.
class Histogram {
 public:
  static constexpr unsigned kBuckets = kHistogramBuckets;

  explicit Histogram(const std::string& name) {
    Registry& r = Registry::instance();
    r.register_histogram(name);
    count_ = r.register_metric(name + ".count", MetricKind::Counter);
    sum_ = r.register_metric(name + ".sum", MetricKind::Counter);
    max_ = r.register_metric(name + ".max", MetricKind::Max);
    for (unsigned i = 0; i < kBuckets; ++i)
      buckets_[i] =
          r.register_metric(name + ".b" + std::to_string(i), MetricKind::Counter);
  }

  void record(std::uint64_t v) const {
    Registry& r = Registry::instance();
    r.add(count_, 1);
    r.add(sum_, v);
    r.record_max(max_, v);
    const unsigned width =
        v == 0 ? 0u : 64u - static_cast<unsigned>(__builtin_clzll(v));
    r.add(buckets_[std::min(width, kBuckets - 1)], 1);
  }

 private:
  Registry::Id count_, sum_, max_;
  std::array<Registry::Id, kBuckets> buckets_{};
};

/// RAII phase timer: sets `<name>` (a gauge, nanoseconds) on destruction.
class ScopedTimerGauge {
 public:
  explicit ScopedTimerGauge(const char* name)
      : gauge_(name), t0_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerGauge() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    gauge_.set(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }
  ScopedTimerGauge(const ScopedTimerGauge&) = delete;
  ScopedTimerGauge& operator=(const ScopedTimerGauge&) = delete;

 private:
  Gauge gauge_;
  std::chrono::steady_clock::time_point t0_;
};

/// A namespace-scoped window onto the registry: every metric created or
/// read through the view lives under `prefix` + ".", so independent
/// experiments (fuzzing workers, benchmark rounds) get private counters
/// that neither collide with nor survive into each other. The view owns no
/// storage — it is a naming convention made ergonomic — so any number of
/// views over the same prefix see the same slots.
class ScopedView {
 public:
  explicit ScopedView(std::string prefix) : prefix_(std::move(prefix) + ".") {}

  const std::string& prefix() const { return prefix_; }
  std::string qualify(const std::string& name) const { return prefix_ + name; }

  Counter counter(const std::string& name) const {
    return Counter(prefix_ + name);
  }
  Gauge gauge(const std::string& name) const { return Gauge(prefix_ + name); }
  Histogram histogram(const std::string& name) const {
    return Histogram(prefix_ + name);
  }

  /// Value of `prefix.name`; 0 when never registered.
  std::uint64_t value(const std::string& name) const {
    return Registry::instance().value(prefix_ + name);
  }
  /// Shard-merged snapshot of histogram `prefix.name`.
  HistogramSnapshot histogram_snapshot(const std::string& name) const {
    return Registry::instance().histogram(prefix_ + name);
  }
  /// Every metric under the prefix, sorted by name.
  std::vector<Registry::Sample> snapshot() const {
    return Registry::instance().snapshot(prefix_);
  }
  /// Zero every metric under the prefix, nothing else.
  void reset() const { Registry::instance().reset(prefix_); }

 private:
  std::string prefix_;
};

}  // namespace rvdyn::obs

// ---- hook-site macros (compiled out when RVDYN_OBS_ENABLED=0) -------------

#define RVDYN_OBS_CONCAT2_(a, b) a##b
#define RVDYN_OBS_CONCAT_(a, b) RVDYN_OBS_CONCAT2_(a, b)

#if RVDYN_OBS_ENABLED

/// Increment counter `name` by `n`. `name` must be a string literal (the
/// handle is a function-local static registered on first pass).
#define RVDYN_OBS_COUNT_N(name, n)                       \
  do {                                                   \
    static const ::rvdyn::obs::Counter rvdyn_obs_c_(name); \
    rvdyn_obs_c_.add(n);                                 \
  } while (0)
#define RVDYN_OBS_COUNT(name) RVDYN_OBS_COUNT_N(name, 1)

/// Record `v` into histogram `name`.
#define RVDYN_OBS_HIST(name, v)                              \
  do {                                                       \
    static const ::rvdyn::obs::Histogram rvdyn_obs_h_(name); \
    rvdyn_obs_h_.record(v);                                  \
  } while (0)

/// Set gauge `name` to `v`.
#define RVDYN_OBS_GAUGE(name, v)                         \
  do {                                                   \
    static const ::rvdyn::obs::Gauge rvdyn_obs_g_(name); \
    rvdyn_obs_g_.set(v);                                 \
  } while (0)

/// Time the enclosing scope into gauge `name` (nanoseconds).
#define RVDYN_OBS_TIMER(name)               \
  ::rvdyn::obs::ScopedTimerGauge RVDYN_OBS_CONCAT_(rvdyn_obs_timer_, \
                                                   __LINE__)(name)

/// Compile a statement only in observability builds (cheap local tallies
/// that are flushed to the registry in bulk).
#define RVDYN_OBS_STAT(...) __VA_ARGS__

#else  // !RVDYN_OBS_ENABLED

#define RVDYN_OBS_COUNT_N(name, n) ((void)0)
#define RVDYN_OBS_COUNT(name) ((void)0)
#define RVDYN_OBS_HIST(name, v) ((void)0)
#define RVDYN_OBS_GAUGE(name, v) ((void)0)
#define RVDYN_OBS_TIMER(name) ((void)0)
#define RVDYN_OBS_STAT(...) ((void)0)

#endif  // RVDYN_OBS_ENABLED
