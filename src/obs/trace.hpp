// rvdyn::obs tracing: a fixed-capacity ring buffer of span (begin/end) and
// instant events with two exporters — Chrome `trace_event` JSON (load the
// file in chrome://tracing or Perfetto to see the load → parse → patch →
// run pipeline as one timeline) and an indented plain-text rendering.
//
// Recording is wait-free: an atomic sequence claim plus a plain slot write.
// The sink is disabled by default; tools opt in with set_enabled(true), so
// the only cost at a quiet hook site is one relaxed atomic load. Exporters
// are meant to run after the traced work quiesces.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // for RVDYN_OBS_ENABLED and concat helpers

namespace rvdyn::obs {

class TraceSink {
 public:
  static constexpr std::size_t kCapacity = 65536;  ///< ring wraps past this

  struct Event {
    const char* name = nullptr;  ///< static-storage string expected
    char phase = 0;              ///< 'B' begin, 'E' end, 'i' instant
    std::uint64_t ts_ns = 0;     ///< since sink epoch
    std::uint32_t tid = 0;
    std::uint64_t seq = 0;       ///< claim order, 0 = empty slot
  };

  /// Process-wide sink; leaked for the same exit-order reasons as the
  /// metrics registry.
  static TraceSink& instance() {
    static TraceSink* s = new TraceSink;
    return *s;
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  void begin(const char* name) { record(name, 'B'); }
  void end(const char* name) { record(name, 'E'); }
  void instant(const char* name) { record(name, 'i'); }

  /// Drop all recorded events (names stay interned at their call sites).
  void clear() {
    seq_.store(0, std::memory_order_relaxed);
    for (Event& e : ring_) e.seq = 0;
  }

  /// Events in claim order. Safe once writers have quiesced.
  std::vector<Event> events() const {
    std::vector<Event> out;
    for (const Event& e : ring_)
      if (e.seq != 0) out.push_back(e);
    std::sort(out.begin(), out.end(),
              [](const Event& a, const Event& b) { return a.seq < b.seq; });
    return out;
  }

  /// Total events ever claimed (the ring retains at most kCapacity).
  std::uint64_t total_recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring wraparound.
  std::uint64_t dropped() const {
    const std::uint64_t n = total_recorded();
    return n > kCapacity ? n - kCapacity : 0;
  }
  bool truncated() const { return dropped() != 0; }

  /// Name of the synthetic instant event exporters insert at the cut when
  /// the ring wrapped.
  static constexpr const char* kTruncationMarker = "rvdyn.trace.truncated";

  /// Events prepared for rendering. After the ring wraps, the retained
  /// window can hold 'E' events whose 'B' was overwritten; rendering those
  /// as spans would fabricate zero-length or wrongly-nested frames, so a
  /// seq-order replay with per-tid depth counters drops them, and a
  /// synthetic kTruncationMarker instant flags the cut at the earliest
  /// retained timestamp. Without wraparound this is exactly events().
  std::vector<Event> render_events() const {
    auto evs = events();
    if (dropped() == 0) return evs;
    std::vector<Event> out;
    out.reserve(evs.size() + 1);
    Event marker;
    marker.name = kTruncationMarker;
    marker.phase = 'i';
    marker.ts_ns = evs.empty() ? 0 : evs.front().ts_ns;
    marker.tid = evs.empty() ? 0 : evs.front().tid;
    marker.seq = evs.empty() ? 1 : evs.front().seq;
    out.push_back(marker);
    std::unordered_map<std::uint32_t, std::size_t> depth;
    for (const Event& e : evs) {
      if (e.phase == 'B') {
        ++depth[e.tid];
      } else if (e.phase == 'E') {
        std::size_t& d = depth[e.tid];
        if (d == 0) continue;  // orphaned end: its begin was overwritten
        --d;
      }
      out.push_back(e);
    }
    return out;
  }

  /// Chrome trace_event JSON (the "JSON Array Format" wrapped in an object,
  /// which both chrome://tracing and Perfetto accept). Timestamps are
  /// microseconds, per the format.
  std::string chrome_json() const {
    std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    const auto evs = render_events();
    char buf[256];
    for (std::size_t i = 0; i < evs.size(); ++i) {
      const Event& e = evs[i];
      std::snprintf(buf, sizeof(buf),
                    "  {\"name\": \"%s\", \"cat\": \"rvdyn\", \"ph\": \"%c\", "
                    "\"pid\": 1, \"tid\": %u, \"ts\": %.3f%s}%s\n",
                    e.name, e.phase, e.tid,
                    static_cast<double>(e.ts_ns) / 1000.0,
                    e.phase == 'i' ? ", \"s\": \"t\"" : "",
                    i + 1 < evs.size() ? "," : "");
      out += buf;
    }
    out += "]}\n";
    return out;
  }

  /// Write chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const {
    std::FILE* fp = std::fopen(path.c_str(), "w");
    if (!fp) return false;
    const std::string json = chrome_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), fp) == json.size();
    std::fclose(fp);
    return ok;
  }

  /// Plain-text timeline: one line per span (indented by nesting depth)
  /// with start offset and duration, plus instant markers.
  std::string text() const {
    const auto evs = render_events();
    std::string out;
    char buf[256];
    // Per-tid span stacks to pair begin/end and compute depth/duration.
    struct Open {
      const char* name;
      std::uint64_t ts_ns;
    };
    std::unordered_map<std::uint32_t, std::vector<Open>> stacks;
    for (const Event& e : evs) {
      auto& stack = stacks[e.tid];
      if (e.phase == 'B') {
        stack.push_back({e.name, e.ts_ns});
      } else if (e.phase == 'E') {
        std::uint64_t began = e.ts_ns;
        std::size_t depth = 0;
        if (!stack.empty()) {
          began = stack.back().ts_ns;
          depth = stack.size() - 1;
          stack.pop_back();
        }
        std::snprintf(buf, sizeof(buf), "[tid %2u] %10.3fus %*s%s (%.3fus)\n",
                      e.tid, static_cast<double>(began) / 1000.0,
                      static_cast<int>(2 * depth), "", e.name,
                      static_cast<double>(e.ts_ns - began) / 1000.0);
        out += buf;
      } else {
        std::snprintf(buf, sizeof(buf), "[tid %2u] %10.3fus %*s* %s\n", e.tid,
                      static_cast<double>(e.ts_ns) / 1000.0,
                      static_cast<int>(2 * stack.size()), "", e.name);
        out += buf;
      }
    }
    return out;
  }

 private:
  TraceSink() : epoch_(std::chrono::steady_clock::now()) {
    ring_.resize(kCapacity);
  }

  void record(const char* name, char phase) {
    if (!enabled()) return;
    const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    Event& e = ring_[(seq - 1) % kCapacity];
    e.name = name;
    e.phase = phase;
    e.ts_ns = now_ns();
    e.tid = local_tid();
    e.seq = seq;
  }

  std::uint64_t now_ns() const {
    const auto dt = std::chrono::steady_clock::now() - epoch_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
  }

  static std::uint32_t local_tid() {
    static std::atomic<std::uint32_t> next{0};
    thread_local std::uint32_t tid =
        next.fetch_add(1, std::memory_order_relaxed) + 1;
    return tid;
  }

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  std::vector<Event> ring_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: begin on construction, end on destruction. Snapshots the
/// enabled flag once so a mid-span toggle cannot unbalance the stream.
class Span {
 public:
  explicit Span(const char* name)
      : name_(TraceSink::instance().enabled() ? name : nullptr) {
    if (name_) TraceSink::instance().begin(name_);
  }
  ~Span() {
    if (name_) TraceSink::instance().end(name_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
};

}  // namespace rvdyn::obs

#if RVDYN_OBS_ENABLED
#define RVDYN_OBS_SPAN(name) \
  ::rvdyn::obs::Span RVDYN_OBS_CONCAT_(rvdyn_obs_span_, __LINE__)(name)
#define RVDYN_OBS_INSTANT(name) ::rvdyn::obs::TraceSink::instance().instant(name)
#else
#define RVDYN_OBS_SPAN(name) ((void)0)
#define RVDYN_OBS_INSTANT(name) ((void)0)
#endif
