// Dominator and natural-loop analysis over a parsed function's CFG.
//
// ParseAPI exposes loop structure (paper §2.1) so instrumentation can
// target loop entries and back edges; PatchAPI's loop points build on this.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "parse/cfg.hpp"

namespace rvdyn::parse {

/// A natural loop: the header plus every block that can reach a back edge
/// source without leaving through the header.
struct Loop {
  std::uint64_t header = 0;
  std::set<std::uint64_t> blocks;            ///< block start addresses (incl. header)
  std::vector<std::uint64_t> backedge_sources;  ///< blocks with edge -> header

  bool contains(std::uint64_t block_start) const {
    return blocks.count(block_start) != 0;
  }
};

/// Immediate dominators for every block reachable from the function entry,
/// keyed by block start address (the entry maps to itself).
std::map<std::uint64_t, std::uint64_t> immediate_dominators(const Function& f);

/// True when block `a` dominates block `b` (addresses are block starts).
bool dominates(const std::map<std::uint64_t, std::uint64_t>& idom,
               std::uint64_t a, std::uint64_t b);

/// Natural loops of `f`, outermost-first (by header address). Loops sharing
/// a header are merged, as is conventional.
std::vector<Loop> find_loops(const Function& f);

/// The loop-nesting forest over find_loops(f): parent[i] is the index of
/// the innermost loop strictly containing loops[i], or -1 for top-level
/// loops. depth(i) counts enclosing loops (top level = 1).
struct LoopNest {
  std::vector<Loop> loops;
  std::vector<int> parent;

  unsigned depth(std::size_t i) const {
    unsigned d = 1;
    for (int p = parent[i]; p >= 0; p = parent[static_cast<std::size_t>(p)])
      ++d;
    return d;
  }
  /// Index of the innermost loop containing `block_start`, or -1.
  int innermost_containing(std::uint64_t block_start) const;
};

LoopNest loop_nest(const Function& f);

}  // namespace rvdyn::parse
