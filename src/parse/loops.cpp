#include "parse/loops.hpp"

#include <algorithm>
#include <deque>

namespace rvdyn::parse {

namespace {

bool is_intraproc(EdgeType t) {
  switch (t) {
    case EdgeType::Fallthrough:
    case EdgeType::Taken:
    case EdgeType::NotTaken:
    case EdgeType::Jump:
    case EdgeType::IndirectJump:
    case EdgeType::CallFallthrough:
      return true;
    default:
      return false;
  }
}

// Reverse-postorder of blocks reachable from the entry, following
// intra-procedural edges.
std::vector<const Block*> rpo(const Function& f) {
  std::vector<const Block*> order;
  std::set<std::uint64_t> visited;
  // Iterative DFS with explicit post stack.
  struct Frame {
    const Block* b;
    std::size_t next_edge;
  };
  const Block* entry = f.entry_block();
  if (!entry) return order;
  std::vector<Frame> stack{{entry, 0}};
  visited.insert(entry->start());
  while (!stack.empty()) {
    Frame& fr = stack.back();
    if (fr.next_edge < fr.b->succs().size()) {
      const Edge& e = fr.b->succs()[fr.next_edge++];
      if (!is_intraproc(e.type)) continue;
      const Block* t = f.block_at(e.target);
      if (!t || visited.count(t->start())) continue;
      visited.insert(t->start());
      stack.push_back({t, 0});
      continue;
    }
    order.push_back(fr.b);
    stack.pop_back();
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

std::map<std::uint64_t, std::uint64_t> immediate_dominators(
    const Function& f) {
  // Cooper-Harvey-Kennedy iterative algorithm over RPO.
  std::map<std::uint64_t, std::uint64_t> idom;
  const std::vector<const Block*> order = rpo(f);
  if (order.empty()) return idom;

  std::map<std::uint64_t, std::size_t> rpo_index;
  for (std::size_t i = 0; i < order.size(); ++i)
    rpo_index[order[i]->start()] = i;

  const std::uint64_t entry = order[0]->start();
  idom[entry] = entry;

  auto intersect = [&](std::uint64_t a, std::uint64_t b) {
    while (a != b) {
      while (rpo_index.at(a) > rpo_index.at(b)) a = idom.at(a);
      while (rpo_index.at(b) > rpo_index.at(a)) b = idom.at(b);
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 1; i < order.size(); ++i) {
      const Block* b = order[i];
      std::uint64_t new_idom = 0;
      bool have = false;
      for (const Block* p : b->preds()) {
        if (!rpo_index.count(p->start())) continue;  // unreachable pred
        if (!idom.count(p->start())) continue;       // not yet processed
        if (!have) {
          new_idom = p->start();
          have = true;
        } else {
          new_idom = intersect(new_idom, p->start());
        }
      }
      if (!have) continue;
      auto it = idom.find(b->start());
      if (it == idom.end() || it->second != new_idom) {
        idom[b->start()] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

bool dominates(const std::map<std::uint64_t, std::uint64_t>& idom,
               std::uint64_t a, std::uint64_t b) {
  auto it = idom.find(b);
  if (it == idom.end()) return false;
  while (true) {
    if (b == a) return true;
    const std::uint64_t up = it->second;
    if (up == b) return false;  // reached the entry
    b = up;
    it = idom.find(b);
    if (it == idom.end()) return false;
  }
}

std::vector<Loop> find_loops(const Function& f) {
  const auto idom = immediate_dominators(f);
  std::map<std::uint64_t, Loop> by_header;

  for (const auto& [addr, b] : f.blocks()) {
    for (const Edge& e : b->succs()) {
      if (!is_intraproc(e.type)) continue;
      const std::uint64_t h = e.target;
      if (!f.block_at(h)) continue;
      if (!dominates(idom, h, b->start())) continue;  // not a back edge
      Loop& loop = by_header[h];
      loop.header = h;
      loop.backedge_sources.push_back(b->start());
      // Collect the natural loop body: backward walk from the source.
      loop.blocks.insert(h);
      std::deque<std::uint64_t> work{b->start()};
      while (!work.empty()) {
        const std::uint64_t cur = work.front();
        work.pop_front();
        if (!loop.blocks.insert(cur).second) continue;
        const Block* cb = f.block_at(cur);
        if (!cb) continue;
        for (const Block* p : cb->preds())
          if (!loop.blocks.count(p->start())) work.push_back(p->start());
      }
    }
  }

  std::vector<Loop> out;
  out.reserve(by_header.size());
  for (auto& [h, loop] : by_header) out.push_back(std::move(loop));
  return out;
}

int LoopNest::innermost_containing(std::uint64_t block_start) const {
  int best = -1;
  std::size_t best_size = ~std::size_t{0};
  for (std::size_t i = 0; i < loops.size(); ++i) {
    if (!loops[i].contains(block_start)) continue;
    if (loops[i].blocks.size() < best_size) {
      best = static_cast<int>(i);
      best_size = loops[i].blocks.size();
    }
  }
  return best;
}

LoopNest loop_nest(const Function& f) {
  LoopNest nest;
  nest.loops = find_loops(f);
  nest.parent.assign(nest.loops.size(), -1);
  for (std::size_t i = 0; i < nest.loops.size(); ++i) {
    // Parent: the smallest loop strictly containing this loop's header
    // that is not the loop itself.
    std::size_t best_size = ~std::size_t{0};
    for (std::size_t j = 0; j < nest.loops.size(); ++j) {
      if (i == j) continue;
      if (!nest.loops[j].contains(nest.loops[i].header)) continue;
      if (nest.loops[j].blocks.size() < best_size) {
        nest.parent[i] = static_cast<int>(j);
        best_size = nest.loops[j].blocks.size();
      }
    }
  }
  return nest;
}

}  // namespace rvdyn::parse
