// Multi-use control-flow classification for jal/jalr (paper §3.1.3, §3.2.3)
// and jump-table analysis.
//
// RISC-V's two unconditional-branch instructions each serve as jump, call,
// tail call, return and jump-table dispatch. Classification follows the
// paper's decision procedure: backward-slice the target register, constant-
// fold it (reading jump tables and GOT-style cells out of read-only
// sections), then apply the link-register/target-location rules; fall back
// to jump-table analysis; otherwise report the transfer as unresolvable.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "parse/cfg.hpp"
#include "semantics/expr.hpp"

namespace rvdyn::parse {

/// High-level meaning of one jal/jalr instruction.
enum class BranchKind {
  Jump,        ///< intraprocedural unconditional jump
  Call,        ///< function call
  TailCall,    ///< call-shaped jump to another function
  Return,      ///< function return
  JumpTable,   ///< indirect jump dispatching through a table
  Unresolved,  ///< target not statically determinable
};

const char* branch_kind_name(BranchKind k);

struct Classification {
  BranchKind kind = BranchKind::Unresolved;
  std::optional<std::uint64_t> target;       ///< Jump/Call/TailCall
  std::vector<std::uint64_t> table_targets;  ///< JumpTable
  std::optional<std::uint64_t> table_base;   ///< JumpTable: address of the table
};

/// Context the classifier needs: the containing code object (for "is this a
/// function entry" and read-only memory), the function being parsed, and
/// the block/index of the instruction.
struct ClassifyContext {
  const CodeObject* co = nullptr;
  const Function* func = nullptr;
  const Block* block = nullptr;
  int insn_index = 0;  ///< index of the jal/jalr within block->insns()
  unsigned max_table_entries = 512;
  /// Entry-point oracle. During a (possibly parallel) parse the set of
  /// known entries lives in the parser, not yet in the CodeObject; when
  /// unset, co->is_function_entry is used.
  std::function<bool(std::uint64_t)> is_entry;
};

/// Classify the jal/jalr at ctx.block->insns()[ctx.insn_index].
Classification classify_branch(const ClassifyContext& ctx);

/// Backward-slice `reg` to an expression at (block, insn_index), i.e. its
/// value *before* that instruction executes. Register leaves that have no
/// reaching definition inside the slice remain as Reg nodes. Exposed for
/// DataflowAPI's slicing tests and the jump-table analysis.
semantics::ExprPtr slice_register(const ClassifyContext& ctx, isa::Reg reg,
                                  int depth_limit = 32);

/// Constant-fold an expression using the binary's read-only sections as the
/// memory. Returns nullopt when any leaf is unknown.
std::optional<std::uint64_t> fold_constant(const CodeObject& co,
                                           const semantics::ExprPtr& e);

/// True when the ecall at ctx provably never returns (a7 slices to the
/// exit/exit_group syscall numbers). Lets the parser end the block there
/// instead of running into the next function's bytes.
bool is_noreturn_ecall(const ClassifyContext& ctx);

}  // namespace rvdyn::parse
