// Concurrent entry membership and function registry for the parallel
// traversal parser.
//
// The parser's two shared structures used to hang off two global mutexes:
// the known-entry set (probed by classify_branch on every jalr) and the
// function map (hit by register_function on every call edge). Both now
// scale with the worker count:
//
//  * AtomicAddrSet — a striped open-addressing hash set of code addresses.
//    Slots are write-once atomics, so membership probes are lock-free;
//    inserts are a CAS on an empty slot. A probe chain that fills up spills
//    into a small mutex-protected overflow set per stripe (rare: stripes
//    are sized from the expected entry count).
//
//  * FunctionRegistry — Function objects sharded by entry-address stripe.
//    Registration dedupes through the AtomicAddrSet first (lock-free), so
//    the shard mutex is only taken for the one-time creation of each
//    Function. Per-shard create/contended counters feed the
//    rvdyn.parse.registry.* metrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "parse/cfg.hpp"

namespace rvdyn::parse {

/// Striped concurrent set of (non-zero) code addresses. contains() is a
/// lock-free probe; insert() is lock-free until a stripe's probe chain
/// fills, then falls back to that stripe's overflow set under its mutex.
/// Address 0 is representable but always takes the locked path (0 is the
/// empty-slot sentinel).
class AtomicAddrSet {
 public:
  /// `expected` sizes the stripe tables; exceeding it is correct (overflow
  /// sets absorb the excess), just slower.
  explicit AtomicAddrSet(std::size_t expected = 1024) {
    std::size_t per = 64;
    while (per * kStripes < expected * 2) per <<= 1;
    for (auto& s : stripes_) {
      s.mask = per - 1;
      // Value-initialized atomics: every slot starts empty (0).
      s.slots = std::make_unique<std::atomic<std::uint64_t>[]>(per);
    }
  }

  /// Returns true when `a` was newly inserted. Exactly one concurrent
  /// inserter of the same address observes true.
  bool insert(std::uint64_t a) {
    Stripe& s = stripe(a);
    if (a == 0) return locked_insert(s, a);
    std::size_t i = mix(a) & s.mask;
    for (unsigned p = 0; p < kProbeLimit; ++p, i = (i + 1) & s.mask) {
      std::uint64_t v = s.slots[i].load(std::memory_order_acquire);
      if (v == a) return false;
      if (v == 0) {
        if (s.slots[i].compare_exchange_strong(v, a,
                                               std::memory_order_acq_rel))
          return true;
        if (v == a) return false;  // lost the race to the same address
        // Lost to a different address: this slot is now taken, keep probing.
      }
    }
    return locked_insert(s, a);
  }

  /// Lock-free in the common case. An empty slot inside the probe chain
  /// proves the chain never filled, so the overflow set need not be
  /// consulted (slots are write-once: chains only ever gain entries).
  bool contains(std::uint64_t a) const {
    const Stripe& s = stripe(a);
    if (a != 0) {
      std::size_t i = mix(a) & s.mask;
      for (unsigned p = 0; p < kProbeLimit; ++p, i = (i + 1) & s.mask) {
        const std::uint64_t v = s.slots[i].load(std::memory_order_acquire);
        if (v == a) return true;
        if (v == 0) return false;
      }
    }
    if (s.overflow_count.load(std::memory_order_acquire) == 0 && a != 0)
      return false;
    std::lock_guard lock(s.mu);
    return s.overflow.count(a) != 0;
  }

  /// Total addresses that took the overflow path (contention/telemetry).
  std::uint64_t overflow_size() const {
    std::uint64_t n = 0;
    for (const auto& s : stripes_)
      n += s.overflow_count.load(std::memory_order_acquire);
    return n;
  }

 private:
  static constexpr unsigned kStripes = 64;
  static constexpr unsigned kProbeLimit = 24;

  struct alignas(64) Stripe {
    std::size_t mask = 0;
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
    mutable std::mutex mu;
    std::unordered_set<std::uint64_t> overflow;
    std::atomic<std::uint64_t> overflow_count{0};
  };

  // splitmix64 finalizer: decorrelates nearby code addresses.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  Stripe& stripe(std::uint64_t a) { return stripes_[mix(a >> 1) % kStripes]; }
  const Stripe& stripe(std::uint64_t a) const {
    return stripes_[mix(a >> 1) % kStripes];
  }

  bool locked_insert(Stripe& s, std::uint64_t a) {
    std::lock_guard lock(s.mu);
    // Re-probe under the lock: the chain is full (write-once slots keep it
    // full), so a concurrent table insert of `a` is impossible after this
    // check — overflow inserts of `a` are serialized by the mutex.
    if (a != 0) {
      std::size_t i = mix(a) & s.mask;
      for (unsigned p = 0; p < kProbeLimit; ++p, i = (i + 1) & s.mask)
        if (s.slots[i].load(std::memory_order_acquire) == a) return false;
    }
    if (!s.overflow.insert(a).second) return false;
    s.overflow_count.fetch_add(1, std::memory_order_release);
    return true;
  }

  Stripe stripes_[kStripes];
};

/// Function objects sharded by entry address. Membership (and therefore
/// dedup of registration) is delegated to an AtomicAddrSet so the common
/// re-registration case never touches a shard mutex.
class FunctionRegistry {
 public:
  static constexpr unsigned kShards = 32;

  explicit FunctionRegistry(std::size_t expected) : members_(expected) {}

  /// Find-or-create. `make_name` is only invoked (outside any lock) when
  /// the entry is new. Returns {fn, true} on creation; {nullptr, false}
  /// when the entry was already registered (callers on the dedup path
  /// never need the pointer).
  template <typename NameFn>
  std::pair<Function*, bool> emplace(std::uint64_t entry, NameFn&& make_name) {
    if (!members_.insert(entry)) return {nullptr, false};
    auto fn = std::make_unique<Function>(entry, make_name());
    Function* p = fn.get();
    Shard& s = shard(entry);
    if (!s.mu.try_lock()) {
      s.contended.fetch_add(1, std::memory_order_relaxed);
      s.mu.lock();
    }
    s.funcs.emplace(entry, std::move(fn));
    ++s.creates;
    s.mu.unlock();
    return {p, true};
  }

  /// Lock-free membership probe (the classify/tail-call oracle).
  bool contains(std::uint64_t entry) const { return members_.contains(entry); }

  /// Adopt functions parsed by an earlier run (re-parse support).
  void adopt(std::map<std::uint64_t, std::unique_ptr<Function>>& src) {
    for (auto& [entry, fn] : src) {
      members_.insert(entry);
      shard(entry).funcs.emplace(entry, std::move(fn));
    }
    src.clear();
  }

  /// Visit every registered function. Not thread-safe: call only from a
  /// quiesced moment (between parse phases).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& s : shards_)
      for (auto& [entry, f] : s.funcs) fn(f.get());
  }

  /// Move every function into `out` (sorted by entry, deterministically).
  /// Membership queries stay valid afterwards. Not thread-safe.
  void drain_into(std::map<std::uint64_t, std::unique_ptr<Function>>& out) {
    for (auto& s : shards_) {
      for (auto& [entry, fn] : s.funcs) out.emplace(entry, std::move(fn));
      s.funcs.clear();
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s.funcs.size();
    return n;
  }

  struct ShardStats {
    std::uint64_t creates = 0;
    std::uint64_t contended = 0;
  };
  ShardStats shard_stats(unsigned i) const {
    const Shard& s = shards_[i];
    std::lock_guard lock(s.mu);
    return {s.creates, s.contended.load(std::memory_order_relaxed)};
  }
  std::uint64_t overflow_size() const { return members_.overflow_size(); }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::unique_ptr<Function>> funcs;
    std::uint64_t creates = 0;  ///< guarded by mu
    std::atomic<std::uint64_t> contended{0};
  };

  Shard& shard(std::uint64_t entry) {
    // Low bits above the 2-byte parcel alignment: consecutive functions
    // land in different shards.
    return shards_[(entry >> 1) % kShards];
  }

  AtomicAddrSet members_;
  Shard shards_[kShards];
};

}  // namespace rvdyn::parse
