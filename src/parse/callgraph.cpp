#include "parse/callgraph.hpp"

#include <algorithm>
#include <deque>

namespace rvdyn::parse {

namespace {

// Iterative Tarjan SCC (explicit stack to survive deep call chains).
struct Tarjan {
  const std::map<std::uint64_t, std::set<std::uint64_t>>& succs;
  std::map<std::uint64_t, int> index, low;
  std::map<std::uint64_t, bool> on_stack;
  std::vector<std::uint64_t> stack;
  std::vector<std::vector<std::uint64_t>> sccs;
  int next_index = 0;

  void run(std::uint64_t root) {
    if (index.count(root)) return;
    struct Frame {
      std::uint64_t v;
      std::set<std::uint64_t>::const_iterator it, end;
    };
    std::vector<Frame> frames;
    auto push = [&](std::uint64_t v) {
      index[v] = low[v] = next_index++;
      stack.push_back(v);
      on_stack[v] = true;
      const auto& kids = succs.at(v);
      frames.push_back({v, kids.begin(), kids.end()});
    };
    push(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.it != f.end) {
        const std::uint64_t w = *f.it++;
        if (!succs.count(w)) continue;  // callee outside the parsed set
        if (!index.count(w)) {
          push(w);
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
        continue;
      }
      // Finished v: pop an SCC if v is a root.
      const std::uint64_t v = f.v;
      frames.pop_back();
      if (!frames.empty())
        low[frames.back().v] = std::min(low[frames.back().v], low[v]);
      if (low[v] == index[v]) {
        std::vector<std::uint64_t> scc;
        while (true) {
          const std::uint64_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc.push_back(w);
          if (w == v) break;
        }
        sccs.push_back(std::move(scc));
      }
    }
  }
};

}  // namespace

CallGraph::CallGraph(const CodeObject& co) {
  for (const auto& [entry, f] : co.functions()) {
    auto& out = callees_[entry];
    callers_[entry];  // ensure the node exists
    for (std::uint64_t callee : f->callees())
      if (co.function_at(callee)) out.insert(callee);
    // Indirect calls with unknown targets poison summaries.
    for (const auto& [a, b] : f->blocks()) {
      if (b->insns().empty()) continue;
      const isa::Instruction& term = b->last().insn;
      const bool links =
          (term.is_jal() || term.is_jalr()) && !(term.link_reg() == isa::zero);
      if (!links || !term.is_jalr()) continue;
      bool resolved = false;
      for (const Edge& e : b->succs())
        if (e.type == EdgeType::Call && e.target) resolved = true;
      if (!resolved) unknown_callees_.insert(entry);
    }
  }
  for (const auto& [caller, outs] : callees_)
    for (std::uint64_t callee : outs) callers_[callee].insert(caller);

  // Tarjan emits SCCs in reverse topological order already.
  Tarjan tarjan{callees_, {}, {}, {}, {}, {}, 0};
  for (const auto& [entry, outs] : callees_) tarjan.run(entry);
  sccs_ = std::move(tarjan.sccs);
  for (std::size_t i = 0; i < sccs_.size(); ++i)
    for (std::uint64_t f : sccs_[i]) scc_of_[f] = i;
}

const std::set<std::uint64_t>& CallGraph::callees(std::uint64_t func) const {
  static const std::set<std::uint64_t> empty;
  auto it = callees_.find(func);
  return it == callees_.end() ? empty : it->second;
}

const std::set<std::uint64_t>& CallGraph::callers(std::uint64_t func) const {
  static const std::set<std::uint64_t> empty;
  auto it = callers_.find(func);
  return it == callers_.end() ? empty : it->second;
}

std::set<std::uint64_t> CallGraph::reachable_from(std::uint64_t root) const {
  std::set<std::uint64_t> seen;
  std::deque<std::uint64_t> work{root};
  while (!work.empty()) {
    const std::uint64_t f = work.front();
    work.pop_front();
    if (!seen.insert(f).second) continue;
    for (std::uint64_t c : callees(f))
      if (!seen.count(c)) work.push_back(c);
  }
  return seen;
}

bool CallGraph::is_recursive(std::uint64_t func) const {
  auto it = scc_of_.find(func);
  if (it == scc_of_.end()) return false;
  const auto& scc = sccs_[it->second];
  if (scc.size() > 1) return true;
  return callees(func).count(func) != 0;  // direct self-recursion
}

std::vector<std::uint64_t> CallGraph::bottom_up_order() const {
  std::vector<std::uint64_t> out;
  for (const auto& scc : sccs_)
    for (std::uint64_t f : scc) out.push_back(f);
  return out;
}

}  // namespace rvdyn::parse
