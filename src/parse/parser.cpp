// The traversal parser: builds each function's CFG by following control
// flow from its entry, splitting blocks at join points, classifying
// jal/jalr transfers, and discovering new functions from call/tail-call
// targets. Functions parse independently, so the work scales across a
// thread pool (the paper's "fast parallel algorithm").
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "isa/decoder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parse/classify.hpp"

namespace rvdyn::parse {

namespace {

using isa::Instruction;

// Thread-safe pool of function entries awaiting a parse.
class EntryPool {
 public:
  // Returns true when `a` was newly added.
  bool add(std::uint64_t a) {
    std::lock_guard lock(mu_);
    if (!known_.insert(a).second) return false;
    queue_.push_back(a);
    ++outstanding_;
    cv_.notify_one();
    return true;
  }

  bool is_known(std::uint64_t a) const {
    std::lock_guard lock(mu_);
    return known_.count(a) != 0;
  }

  // Blocks until work is available or all work is done. Returns nullopt at
  // global completion.
  std::optional<std::uint64_t> take() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return !queue_.empty() || outstanding_ == 0; });
    if (queue_.empty()) return std::nullopt;
    const std::uint64_t a = queue_.front();
    queue_.pop_front();
    return a;
  }

  // A taken entry finished parsing.
  void done() {
    std::lock_guard lock(mu_);
    if (--outstanding_ == 0) cv_.notify_all();
  }

  std::set<std::uint64_t> snapshot() const {
    std::lock_guard lock(mu_);
    return known_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::uint64_t> queue_;
  std::set<std::uint64_t> known_;
  unsigned outstanding_ = 0;
};

class Parser {
 public:
  Parser(CodeObject& co, const symtab::Symtab& st, const ParseOptions& opts,
         std::map<std::uint64_t, std::unique_ptr<Function>>& funcs)
      : co_(co), st_(st), opts_(opts), funcs_(funcs),
        decoder_(st.extensions().has(isa::Extension::I)
                     ? st.extensions()
                     : isa::ExtensionSet::rv64gc()) {}

  void run() {
    RVDYN_OBS_SPAN("rvdyn.parse");
    {
      RVDYN_OBS_SPAN("rvdyn.parse.traversal");
      RVDYN_OBS_TIMER("rvdyn.parse.traversal_ns");
      seed_entries();
      if (opts_.num_threads <= 1) {
        run_worker(0, decoder_);
      } else {
        std::vector<std::thread> workers;
        workers.reserve(opts_.num_threads);
        for (unsigned t = 0; t < opts_.num_threads; ++t) {
          workers.emplace_back([this, t] {
            // One decoder per worker: the profile is copied once and every
            // decode in this thread goes through the same instance.
            const isa::Decoder dec(decoder_.profile());
            run_worker(t, dec);
          });
        }
        for (auto& w : workers) w.join();
      }
    }
    if (opts_.gap_parsing) {
      RVDYN_OBS_SPAN("rvdyn.parse.gaps");
      RVDYN_OBS_TIMER("rvdyn.parse.gaps_ns");
      parse_gaps();
    }
    {
      RVDYN_OBS_SPAN("rvdyn.parse.finalize");
      RVDYN_OBS_TIMER("rvdyn.parse.finalize_ns");
      for (auto& [a, f] : funcs_) f->rebuild_preds();
    }
    publish_totals();
  }

 private:
  // Drain the entry pool on this thread. Publishes per-worker function and
  // block counts so load imbalance across the pool shows up in metrics.
  void run_worker(unsigned widx, const isa::Decoder& dec) {
    std::uint64_t n_funcs = 0, n_blocks = 0;
    while (auto entry = pool_.take()) {
      n_blocks += parse_function(dec, *entry);
      ++n_funcs;
      pool_.done();
    }
#if RVDYN_OBS_ENABLED
    if (n_funcs) {
      const std::string prefix = "rvdyn.parse.worker." + std::to_string(widx);
      obs::Counter(prefix + ".funcs").add(n_funcs);
      obs::Counter(prefix + ".blocks").add(n_blocks);
    }
#else
    (void)widx;
#endif
  }

  void publish_totals() const {
#if RVDYN_OBS_ENABLED
    std::uint64_t blocks = 0, insns = 0, unresolved = 0;
    for (const auto& [a, f] : funcs_) {
      blocks += f->stats().n_blocks;
      insns += f->stats().n_insns;
      unresolved += f->stats().n_unresolved;
    }
    RVDYN_OBS_COUNT_N("rvdyn.parse.functions", funcs_.size());
    RVDYN_OBS_COUNT_N("rvdyn.parse.blocks", blocks);
    RVDYN_OBS_COUNT_N("rvdyn.parse.insns", insns);
    RVDYN_OBS_COUNT_N("rvdyn.parse.unresolved", unresolved);
#endif
  }

  void seed_entries() {
    for (const symtab::Symbol* sym : st_.function_symbols()) {
      if (!st_.in_code(sym->value)) continue;
      register_function(sym->value, sym->name);
    }
    if (st_.entry && st_.in_code(st_.entry))
      register_function(st_.entry, "");
  }

  // Create (or find) the Function object for `entry` and queue it.
  Function* register_function(std::uint64_t entry, const std::string& name) {
    std::lock_guard lock(funcs_mu_);
    auto it = funcs_.find(entry);
    if (it == funcs_.end()) {
      std::string n = name;
      if (n.empty()) {
        // Borrow a symbol name if one exists at this address.
        for (const auto& sym : st_.symbols())
          if (sym.value == entry && sym.is_function()) {
            n = sym.name;
            break;
          }
        if (n.empty()) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "func_%llx",
                        static_cast<unsigned long long>(entry));
          n = buf;
        }
      }
      it = funcs_.emplace(entry, std::make_unique<Function>(entry, n)).first;
    }
    pool_.add(entry);
    return it->second.get();
  }

  // Fetch the raw bytes backing [addr, ...) from the code section.
  const std::uint8_t* code_at(std::uint64_t addr, std::size_t* avail) const {
    const symtab::Section* s = st_.section_containing(addr);
    if (!s || !s->is_code() || s->type == symtab::SHT_NOBITS) return nullptr;
    const std::size_t off = addr - s->addr;
    if (off >= s->data.size()) return nullptr;
    *avail = s->data.size() - off;
    return s->data.data() + off;
  }

  // Returns the number of blocks this call parsed (0 when already parsed).
  std::uint64_t parse_function(const isa::Decoder& dec, std::uint64_t entry) {
    Function* f;
    {
      std::lock_guard lock(funcs_mu_);
      f = funcs_.at(entry).get();
    }
    if (!f->blocks().empty()) return 0;  // already parsed

    FunctionStats& stats = f->mutable_stats();
    std::deque<std::uint64_t> work{entry};
    while (!work.empty()) {
      const std::uint64_t start = work.front();
      work.pop_front();
      if (Block* existing = f->block_containing(start)) {
        if (existing->start() == start) continue;
        split_block(dec, f, existing, start);
        continue;
      }
      Block* b = f->add_block(start);
      parse_block(dec, f, b, &work, &stats);
    }

    stats.n_blocks = static_cast<unsigned>(f->blocks().size());
    stats.n_insns = 0;
    for (const auto& [a, blk] : f->blocks())
      stats.n_insns += static_cast<unsigned>(blk->insns().size());
    return stats.n_blocks;
  }

  // Split `b` at `at` (which must be an instruction boundary inside b);
  // the suffix becomes a new block inheriting b's out-edges.
  void split_block(const isa::Decoder& dec, Function* f, Block* b,
                   std::uint64_t at) {
    auto& insns = b->mutable_insns();
    std::size_t idx = 0;
    while (idx < insns.size() && insns[idx].addr != at) ++idx;
    if (idx == insns.size()) {
      // `at` is inside an instruction (overlapping code). Parse it as an
      // independent overlapping block rather than splitting.
      Block* nb = f->add_block(at);
      std::deque<std::uint64_t> local;
      parse_block(dec, f, nb, &local, &f->mutable_stats());
      for (std::uint64_t t : local)
        if (!f->block_containing(t)) {
          Block* tb = f->add_block(t);
          std::deque<std::uint64_t> l2;
          parse_block(dec, f, tb, &l2, &f->mutable_stats());
        }
      return;
    }
    Block* nb = f->add_block(at);
    nb->mutable_insns().assign(insns.begin() + static_cast<long>(idx),
                               insns.end());
    insns.erase(insns.begin() + static_cast<long>(idx), insns.end());
    for (const Edge& e : b->succs()) nb->add_succ(e);
    b->clear_succs();
    b->add_succ({EdgeType::Fallthrough, at});
  }

  void parse_block(const isa::Decoder& dec, Function* f, Block* b,
                   std::deque<std::uint64_t>* work, FunctionStats* stats) {
    const std::uint64_t start = b->start();
    std::size_t avail = 0;
    const std::uint8_t* bytes = code_at(start, &avail);
    bool closed = false;  // the block got its successor edges
    std::size_t consumed = 0;
    if (bytes) {
      // Batch-decode the straight-line run; the callback closes the block
      // at join points and control transfers.
      consumed = dec.decode_range(
          bytes, avail,
          [&](std::size_t off, const Instruction& insn, unsigned len) {
            const std::uint64_t cur = start + off;
            // Stop at the boundary of an already-known block (join point).
            if (cur != start && f->block_at(cur)) {
              b->add_succ({EdgeType::Fallthrough, cur});
              closed = true;
              return false;
            }
            b->mutable_insns().push_back({cur, insn});
            const std::uint64_t next = cur + len;

            if (insn.is_cond_branch()) {
              const std::uint64_t taken =
                  cur + static_cast<std::uint64_t>(insn.branch_offset());
              b->add_succ({EdgeType::Taken, taken});
              b->add_succ({EdgeType::NotTaken, next});
              push_target(f, work, taken);
              push_target(f, work, next);
              closed = true;
              return false;
            }
            if (insn.is_jal() || insn.is_jalr()) {
              handle_unconditional(f, b, work, stats, next);
              closed = true;
              return false;
            }
            if (insn.has_flag(isa::F_ECALL)) {
              ClassifyContext ctx;
              ctx.co = &co_;
              ctx.func = f;
              ctx.block = b;
              ctx.insn_index = static_cast<int>(b->insns().size()) - 1;
              if (is_noreturn_ecall(ctx)) {
                b->add_succ({EdgeType::Return, 0});  // process exit
                closed = true;
                return false;
              }
            }
            return true;
          });
    }
    if (!closed) {
      // Decoding stopped between instructions: either we ran into a known
      // block whose own bytes don't decode, or the bytes are undecodable.
      const std::uint64_t cur = start + consumed;
      if (cur != start && f->block_at(cur)) {
        b->add_succ({EdgeType::Fallthrough, cur});
      } else {
        b->add_succ({EdgeType::Unresolved, 0});
        ++stats->n_unresolved;
      }
    }
  }

  void handle_unconditional(Function* f, Block* b,
                            std::deque<std::uint64_t>* work,
                            FunctionStats* stats, std::uint64_t next) {
    ClassifyContext ctx;
    ctx.co = &co_;
    ctx.func = f;
    ctx.block = b;
    ctx.insn_index = static_cast<int>(b->insns().size()) - 1;
    ctx.max_table_entries = opts_.max_jump_table_entries;
    ctx.is_entry = [this](std::uint64_t a) { return pool_.is_known(a); };

    const Classification c = classify_branch(ctx);
    switch (c.kind) {
      case BranchKind::Jump:
        b->add_succ({EdgeType::Jump, *c.target});
        push_target(f, work, *c.target);
        break;
      case BranchKind::Call:
        ++stats->n_calls;
        if (c.target) {
          b->add_succ({EdgeType::Call, *c.target});
          f->add_callee(*c.target);
          register_function(*c.target, "");
        }
        b->add_succ({EdgeType::CallFallthrough, next});
        push_target(f, work, next);
        break;
      case BranchKind::TailCall:
        ++stats->n_tail_calls;
        b->add_succ({EdgeType::TailCall, *c.target});
        f->add_callee(*c.target);
        register_function(*c.target, "");
        break;
      case BranchKind::Return:
        ++stats->n_returns;
        b->add_succ({EdgeType::Return, 0});
        break;
      case BranchKind::JumpTable:
        ++stats->n_jump_tables;
        for (std::uint64_t t : c.table_targets) {
          b->add_succ({EdgeType::IndirectJump, t});
          push_target(f, work, t);
        }
        break;
      case BranchKind::Unresolved:
        ++stats->n_unresolved;
        b->add_succ({EdgeType::Unresolved, 0});
        break;
    }
  }

  void push_target(Function* f, std::deque<std::uint64_t>* work,
                   std::uint64_t target) {
    if (!st_.in_code(target)) return;
    if (Block* existing = f->block_containing(target)) {
      if (existing->start() == target) return;
    }
    work->push_back(target);
  }

  // Gap parsing (paper §2.1): scan byte ranges of code sections not claimed
  // by any parsed function for plausible function prologues and parse them
  // speculatively.
  void parse_gaps() {
    // Collect claimed ranges.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> claimed;
    for (const auto& [entry, f] : funcs_)
      for (const auto& [a, b] : f->blocks())
        claimed.emplace_back(b->start(), b->end());
    std::sort(claimed.begin(), claimed.end());

    for (const auto& sec : st_.sections()) {
      if (!sec.is_code() || sec.type == symtab::SHT_NOBITS) continue;
      std::uint64_t pos = sec.addr;
      const std::uint64_t end = sec.addr + sec.data.size();
      std::size_t ci = 0;
      while (pos < end) {
        while (ci < claimed.size() && claimed[ci].second <= pos) ++ci;
        if (ci < claimed.size() && claimed[ci].first <= pos) {
          pos = claimed[ci].second;
          continue;
        }
        const std::uint64_t gap_end =
            ci < claimed.size() ? std::min(end, claimed[ci].first) : end;
        RVDYN_OBS_COUNT("rvdyn.parse.gap_ranges");
        scan_gap(pos, gap_end);
        pos = gap_end;
      }
      // New functions found in gaps still need parsing.
      while (auto entry = pool_.take()) {
        parse_function(decoder_, *entry);
        pool_.done();
      }
    }
  }

  // Heuristic prologue match at the start of a gap range: a stack
  // adjustment (addi sp, sp, -N / c.addi16sp) opens most functions.
  void scan_gap(std::uint64_t from, std::uint64_t to) {
    for (std::uint64_t a = (from + 1) & ~1ULL; a + 2 <= to;) {
      std::size_t avail = 0;
      const std::uint8_t* bytes = code_at(a, &avail);
      if (!bytes) return;
      std::uint64_t found = 0;
      const std::size_t consumed = decoder_.decode_range(
          bytes, avail,
          [&](std::size_t off, const Instruction& insn, unsigned) {
            if (a + off + 2 > to) return false;  // past the gap
            if (insn.mnemonic() == isa::Mnemonic::addi &&
                insn.operand(0).reg == isa::sp &&
                insn.operand(1).reg == isa::sp && insn.operand(2).imm < 0) {
              found = a + off;
              return false;
            }
            return true;
          });
      if (found) {
        RVDYN_OBS_COUNT("rvdyn.parse.gap_functions");
        register_function(found, "");
        return;  // one speculative entry per gap; its parse claims the rest
      }
      // decode_range stopped at an undecodable parcel: resync past it.
      a += consumed + 2;
    }
  }

  CodeObject& co_;
  const symtab::Symtab& st_;
  ParseOptions opts_;
  std::map<std::uint64_t, std::unique_ptr<Function>>& funcs_;
  isa::Decoder decoder_;
  EntryPool pool_;
  std::mutex funcs_mu_;
};

}  // namespace

const char* edge_type_name(EdgeType t) {
  switch (t) {
    case EdgeType::Fallthrough: return "fallthrough";
    case EdgeType::Taken: return "taken";
    case EdgeType::NotTaken: return "not-taken";
    case EdgeType::Jump: return "jump";
    case EdgeType::IndirectJump: return "indirect";
    case EdgeType::Call: return "call";
    case EdgeType::CallFallthrough: return "call-fallthrough";
    case EdgeType::TailCall: return "tail-call";
    case EdgeType::Return: return "return";
    case EdgeType::Unresolved: return "unresolved";
  }
  return "?";
}

void Function::rebuild_preds() {
  for (auto& [a, b] : blocks_) b->clear_preds();
  for (auto& [a, b] : blocks_) {
    for (const Edge& e : b->succs()) {
      if (e.type == EdgeType::Call || e.type == EdgeType::TailCall ||
          e.type == EdgeType::Return || e.type == EdgeType::Unresolved)
        continue;
      if (Block* t = block_at(e.target)) t->add_pred(b.get());
    }
  }
}

FunctionStats CodeObject::total_stats() const {
  FunctionStats total;
  for (const auto& [a, f] : funcs_) {
    const FunctionStats& s = f->stats();
    total.n_blocks += s.n_blocks;
    total.n_insns += s.n_insns;
    total.n_calls += s.n_calls;
    total.n_tail_calls += s.n_tail_calls;
    total.n_returns += s.n_returns;
    total.n_jump_tables += s.n_jump_tables;
    total.n_unresolved += s.n_unresolved;
  }
  return total;
}

void CodeObject::parse(const ParseOptions& opts) {
  Parser parser(*this, symtab_, opts, funcs_);
  parser.run();
}

}  // namespace rvdyn::parse
