// The traversal parser: builds each function's CFG by following control
// flow from its entry, splitting blocks at join points, classifying
// jal/jalr transfers, and discovering new functions from call/tail-call
// targets. Functions parse independently, so the work scales across a
// work-stealing thread pool (the paper's "fast parallel algorithm").
//
// Parallel structure (see docs/parallel_parse.md):
//  * WorkStealingPool (scheduler.hpp) — per-worker deques with batched
//    steals replace the old single mutex+condvar entry queue.
//  * FunctionRegistry (registry.hpp) — functions sharded by entry address;
//    registration dedupes through a lock-free striped address set.
//  * The classify-time "is this a function entry" oracle answers from the
//    seed set (symbols + ELF entry), frozen before traversal starts, so
//    every CFG is a pure function of the binary regardless of the worker
//    count or scheduling order. Jumps to functions discovered *during*
//    traversal are reclassified as tail calls in a deterministic finalize
//    pass against the complete entry set.
//  * The gap scan and the finalize pass fan across the same workers.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/decoder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parse/classify.hpp"
#include "parse/registry.hpp"
#include "parse/scheduler.hpp"

namespace rvdyn::parse {

namespace {

using isa::Instruction;

class Parser {
 public:
  Parser(CodeObject& co, const symtab::Symtab& st, const ParseOptions& opts,
         std::map<std::uint64_t, std::unique_ptr<Function>>& funcs)
      : co_(co), st_(st), opts_(opts), funcs_(funcs),
        decoder_(st.extensions().has(isa::Extension::I)
                     ? st.extensions()
                     : isa::ExtensionSet::rv64gc()),
        registry_(st.symbols().size() + 256),
        pool_(opts.num_threads < 1 ? 1 : opts.num_threads) {
    // Re-parse support: functions from an earlier run keep their CFGs.
    if (!funcs_.empty()) registry_.adopt(funcs_);
  }

  void run() {
    RVDYN_OBS_SPAN("rvdyn.parse");
    {
      RVDYN_OBS_SPAN("rvdyn.parse.traversal");
      RVDYN_OBS_TIMER("rvdyn.parse.traversal_ns");
      seed_entries();
      drain_all();
    }
    if (opts_.gap_parsing) {
      RVDYN_OBS_SPAN("rvdyn.parse.gaps");
      RVDYN_OBS_TIMER("rvdyn.parse.gaps_ns");
      parse_gaps();
    }
    {
      RVDYN_OBS_SPAN("rvdyn.parse.finalize");
      RVDYN_OBS_TIMER("rvdyn.parse.finalize_ns");
      registry_.drain_into(funcs_);
      finalize_functions();
    }
    publish_totals();
  }

 private:
  unsigned worker_count() const {
    return opts_.num_threads < 1 ? 1 : opts_.num_threads;
  }

  /// Run the pool's worker loop on every worker until all queued parse
  /// work (including work discovered while parsing) is retired.
  void drain_all() {
    if (pool_.idle()) return;
    run_on_workers(worker_count(), [this](unsigned w) {
      if (w == 0) {
        run_worker(0, decoder_);
      } else {
        // One decoder per worker: the profile is copied once and every
        // decode in this thread goes through the same instance.
        const isa::Decoder dec(decoder_.profile());
        run_worker(w, dec);
      }
    });
  }

  // Drain parse work on this thread. Publishes per-worker function and
  // block counts so load imbalance across the pool shows up in metrics.
  void run_worker(unsigned widx, const isa::Decoder& dec) {
    std::uint64_t n_funcs = 0, n_blocks = 0;
    SchedStats stats;
    pool_.drain(
        widx,
        [&](const ParseWork& wk) {
          n_blocks += parse_function(dec, wk, widx);
          ++n_funcs;
        },
        &stats);
    stats.accumulate_into(sched_totals_);
#if RVDYN_OBS_ENABLED
    if (n_funcs) {
      const std::string prefix = "rvdyn.parse.worker." + std::to_string(widx);
      obs::Counter(prefix + ".funcs").add(n_funcs);
      obs::Counter(prefix + ".blocks").add(n_blocks);
    }
#else
    (void)widx;
#endif
  }

  void publish_totals() const {
#if RVDYN_OBS_ENABLED
    std::uint64_t blocks = 0, insns = 0, unresolved = 0;
    for (const auto& [a, f] : funcs_) {
      blocks += f->stats().n_blocks;
      insns += f->stats().n_insns;
      unresolved += f->stats().n_unresolved;
    }
    RVDYN_OBS_COUNT_N("rvdyn.parse.functions", funcs_.size());
    RVDYN_OBS_COUNT_N("rvdyn.parse.blocks", blocks);
    RVDYN_OBS_COUNT_N("rvdyn.parse.insns", insns);
    RVDYN_OBS_COUNT_N("rvdyn.parse.unresolved", unresolved);
    // Scheduler balance: steals move batches between worker deques; idle
    // time is napping with an empty deque and nothing to steal.
    RVDYN_OBS_COUNT_N("rvdyn.parse.steals",
                      sched_totals_[0].load(std::memory_order_relaxed));
    RVDYN_OBS_COUNT_N("rvdyn.parse.steal_items",
                      sched_totals_[1].load(std::memory_order_relaxed));
    RVDYN_OBS_COUNT_N("rvdyn.parse.sched.contended",
                      sched_totals_[2].load(std::memory_order_relaxed));
    RVDYN_OBS_COUNT_N("rvdyn.parse.sched.idle_ns",
                      sched_totals_[3].load(std::memory_order_relaxed));
    // Registry contention, per shard (only shards that saw traffic).
    for (unsigned i = 0; i < FunctionRegistry::kShards; ++i) {
      const auto ss = registry_.shard_stats(i);
      const std::string prefix =
          "rvdyn.parse.registry.shard." + std::to_string(i);
      if (ss.creates) obs::Counter(prefix + ".creates").add(ss.creates);
      if (ss.contended) obs::Counter(prefix + ".contended").add(ss.contended);
    }
    if (const std::uint64_t ov = registry_.overflow_size())
      RVDYN_OBS_COUNT_N("rvdyn.parse.registry.overflow", ov);
#endif
  }

  void seed_entries() {
    // Address → symbol-name index, so anonymous call targets resolve their
    // name with one hash probe instead of an O(|symbols|) rescan per
    // registration.
    for (const symtab::Symbol& sym : st_.symbols())
      if (sym.is_function() && !sym.name.empty())
        name_by_addr_.emplace(sym.value, &sym.name);

    // The seed set is the classify-time entry oracle. It is complete
    // before any worker starts and never changes afterwards, which keeps
    // jump-vs-tail-call decisions independent of parse order.
    for (const symtab::Symbol* sym : st_.function_symbols())
      if (st_.in_code(sym->value)) seeds_.insert(sym->value);
    if (st_.entry && st_.in_code(st_.entry)) seeds_.insert(st_.entry);

    unsigned w = 0;
    for (const symtab::Symbol* sym : st_.function_symbols()) {
      if (!st_.in_code(sym->value)) continue;
      register_function(sym->value, sym->name, w++);
    }
    if (st_.entry && st_.in_code(st_.entry))
      register_function(st_.entry, "", w);
  }

  bool is_seed_entry(std::uint64_t a) const { return seeds_.count(a) != 0; }

  // Create the Function object for `entry` (unless already registered) and
  // queue it on worker `widx`'s deque.
  void register_function(std::uint64_t entry, const std::string& name,
                         unsigned widx) {
    auto [fn, inserted] = registry_.emplace(entry, [&]() -> std::string {
      if (!name.empty()) return name;
      const auto it = name_by_addr_.find(entry);
      if (it != name_by_addr_.end()) return *it->second;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "func_%llx",
                    static_cast<unsigned long long>(entry));
      return buf;
    });
    if (inserted) {
      RVDYN_OBS_COUNT("rvdyn.parse.registry.creates");
      pool_.push(widx, {entry, fn});
    } else {
      RVDYN_OBS_COUNT("rvdyn.parse.registry.dedup_hits");
    }
  }

  // Fetch the raw bytes backing [addr, ...) from the code section.
  const std::uint8_t* code_at(std::uint64_t addr, std::size_t* avail) const {
    const symtab::Section* s = st_.section_containing(addr);
    if (!s || !s->is_code() || s->type == symtab::SHT_NOBITS) return nullptr;
    const std::size_t off = addr - s->addr;
    if (off >= s->data.size()) return nullptr;
    *avail = s->data.size() - off;
    return s->data.data() + off;
  }

  // Returns the number of blocks this call parsed (0 when already parsed).
  std::uint64_t parse_function(const isa::Decoder& dec, const ParseWork& wk,
                               unsigned widx) {
    Function* f = wk.fn;
    if (!f->blocks().empty()) return 0;  // already parsed

    FunctionStats& stats = f->mutable_stats();
    std::deque<std::uint64_t> work{wk.entry};
    // Intra-function targets already queued: dense branch fan-in would
    // otherwise re-push the same join point once per incoming edge.
    std::unordered_set<std::uint64_t> seen{wk.entry};
    while (!work.empty()) {
      const std::uint64_t start = work.front();
      work.pop_front();
      if (Block* existing = f->block_containing(start)) {
        if (existing->start() == start) continue;
        split_block(dec, f, existing, start, widx);
        continue;
      }
      Block* b = f->add_block(start);
      parse_block(dec, f, b, &work, &seen, &stats, widx);
    }

    stats.n_blocks = static_cast<unsigned>(f->blocks().size());
    stats.n_insns = 0;
    for (const auto& [a, blk] : f->blocks())
      stats.n_insns += static_cast<unsigned>(blk->insns().size());
    return stats.n_blocks;
  }

  // Split `b` at `at` (which must be an instruction boundary inside b);
  // the suffix becomes a new block inheriting b's out-edges.
  void split_block(const isa::Decoder& dec, Function* f, Block* b,
                   std::uint64_t at, unsigned widx) {
    auto& insns = b->mutable_insns();
    std::size_t idx = 0;
    while (idx < insns.size() && insns[idx].addr != at) ++idx;
    if (idx == insns.size()) {
      // `at` is inside an instruction (overlapping code). Parse it as an
      // independent overlapping block rather than splitting.
      Block* nb = f->add_block(at);
      std::deque<std::uint64_t> local;
      std::unordered_set<std::uint64_t> lseen;
      parse_block(dec, f, nb, &local, &lseen, &f->mutable_stats(), widx);
      for (std::uint64_t t : local)
        if (!f->block_containing(t)) {
          Block* tb = f->add_block(t);
          std::deque<std::uint64_t> l2;
          std::unordered_set<std::uint64_t> l2seen;
          parse_block(dec, f, tb, &l2, &l2seen, &f->mutable_stats(), widx);
        }
      return;
    }
    Block* nb = f->add_block(at);
    nb->mutable_insns().assign(insns.begin() + static_cast<long>(idx),
                               insns.end());
    insns.erase(insns.begin() + static_cast<long>(idx), insns.end());
    for (const Edge& e : b->succs()) nb->add_succ(e);
    b->clear_succs();
    b->add_succ({EdgeType::Fallthrough, at});
  }

  void parse_block(const isa::Decoder& dec, Function* f, Block* b,
                   std::deque<std::uint64_t>* work,
                   std::unordered_set<std::uint64_t>* seen,
                   FunctionStats* stats, unsigned widx) {
    const std::uint64_t start = b->start();
    std::size_t avail = 0;
    const std::uint8_t* bytes = code_at(start, &avail);
    bool closed = false;  // the block got its successor edges
    std::size_t consumed = 0;
    if (bytes) {
      // Batch-decode the straight-line run; the callback closes the block
      // at join points and control transfers.
      consumed = dec.decode_range(
          bytes, avail,
          [&](std::size_t off, const Instruction& insn, unsigned len) {
            const std::uint64_t cur = start + off;
            // Stop at the boundary of an already-known block (join point).
            if (cur != start && f->block_at(cur)) {
              b->add_succ({EdgeType::Fallthrough, cur});
              closed = true;
              return false;
            }
            b->mutable_insns().push_back({cur, insn});
            const std::uint64_t next = cur + len;

            if (insn.is_cond_branch()) {
              const std::uint64_t taken =
                  cur + static_cast<std::uint64_t>(insn.branch_offset());
              b->add_succ({EdgeType::Taken, taken});
              b->add_succ({EdgeType::NotTaken, next});
              push_target(f, work, seen, taken);
              push_target(f, work, seen, next);
              closed = true;
              return false;
            }
            if (insn.is_jal() || insn.is_jalr()) {
              handle_unconditional(f, b, work, seen, stats, next, widx);
              closed = true;
              return false;
            }
            if (insn.has_flag(isa::F_ECALL)) {
              ClassifyContext ctx;
              ctx.co = &co_;
              ctx.func = f;
              ctx.block = b;
              ctx.insn_index = static_cast<int>(b->insns().size()) - 1;
              if (is_noreturn_ecall(ctx)) {
                b->add_succ({EdgeType::Return, 0});  // process exit
                closed = true;
                return false;
              }
            }
            return true;
          });
    }
    if (!closed) {
      // Decoding stopped between instructions: either we ran into a known
      // block whose own bytes don't decode, or the bytes are undecodable.
      const std::uint64_t cur = start + consumed;
      if (cur != start && f->block_at(cur)) {
        b->add_succ({EdgeType::Fallthrough, cur});
      } else {
        b->add_succ({EdgeType::Unresolved, 0});
        ++stats->n_unresolved;
      }
    }
  }

  void handle_unconditional(Function* f, Block* b,
                            std::deque<std::uint64_t>* work,
                            std::unordered_set<std::uint64_t>* seen,
                            FunctionStats* stats, std::uint64_t next,
                            unsigned widx) {
    ClassifyContext ctx;
    ctx.co = &co_;
    ctx.func = f;
    ctx.block = b;
    ctx.insn_index = static_cast<int>(b->insns().size()) - 1;
    ctx.max_table_entries = opts_.max_jump_table_entries;
    // The oracle is the pre-traversal seed set: immutable, so the answer —
    // and therefore the CFG — cannot depend on what other workers have
    // discovered so far. Jumps to entries discovered during traversal are
    // promoted to tail calls in finalize_functions().
    ctx.is_entry = [this](std::uint64_t a) { return is_seed_entry(a); };

    const Classification c = classify_branch(ctx);
    switch (c.kind) {
      case BranchKind::Jump:
        b->add_succ({EdgeType::Jump, *c.target});
        push_target(f, work, seen, *c.target);
        break;
      case BranchKind::Call:
        ++stats->n_calls;
        if (c.target) {
          b->add_succ({EdgeType::Call, *c.target});
          f->add_callee(*c.target);
          register_function(*c.target, "", widx);
        }
        b->add_succ({EdgeType::CallFallthrough, next});
        push_target(f, work, seen, next);
        break;
      case BranchKind::TailCall:
        ++stats->n_tail_calls;
        b->add_succ({EdgeType::TailCall, *c.target});
        f->add_callee(*c.target);
        register_function(*c.target, "", widx);
        break;
      case BranchKind::Return:
        ++stats->n_returns;
        b->add_succ({EdgeType::Return, 0});
        break;
      case BranchKind::JumpTable:
        ++stats->n_jump_tables;
        for (std::uint64_t t : c.table_targets) {
          b->add_succ({EdgeType::IndirectJump, t});
          push_target(f, work, seen, t);
        }
        break;
      case BranchKind::Unresolved:
        ++stats->n_unresolved;
        b->add_succ({EdgeType::Unresolved, 0});
        break;
    }
  }

  void push_target(Function* f, std::deque<std::uint64_t>* work,
                   std::unordered_set<std::uint64_t>* seen,
                   std::uint64_t target) {
    if (!st_.in_code(target)) return;
    if (!seen->insert(target).second) return;  // already queued or parsed
    if (Block* existing = f->block_containing(target)) {
      if (existing->start() == target) return;
    }
    work->push_back(target);
  }

  // Gap parsing (paper §2.1): scan byte ranges of code sections not claimed
  // by any parsed function for plausible function prologues and parse them
  // speculatively. Ranges are computed once from the traversal result, then
  // scanned across the worker pool; discovered entries drain through the
  // same scheduler.
  void parse_gaps() {
    // Collect claimed ranges.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> claimed;
    registry_.for_each([&](Function* f) {
      for (const auto& [a, b] : f->blocks())
        claimed.emplace_back(b->start(), b->end());
    });
    std::sort(claimed.begin(), claimed.end());

    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    for (const auto& sec : st_.sections()) {
      if (!sec.is_code() || sec.type == symtab::SHT_NOBITS) continue;
      std::uint64_t pos = sec.addr;
      const std::uint64_t end = sec.addr + sec.data.size();
      std::size_t ci = 0;
      while (pos < end) {
        while (ci < claimed.size() && claimed[ci].second <= pos) ++ci;
        if (ci < claimed.size() && claimed[ci].first <= pos) {
          pos = claimed[ci].second;
          continue;
        }
        const std::uint64_t gap_end =
            ci < claimed.size() ? std::min(end, claimed[ci].first) : end;
        RVDYN_OBS_COUNT("rvdyn.parse.gap_ranges");
        ranges.emplace_back(pos, gap_end);
        pos = gap_end;
      }
    }
    if (ranges.empty()) return;

    // Each range is independent (one speculative entry per gap), so the
    // scan fans across the workers; per-worker decoders as in traversal.
    std::atomic<std::size_t> next{0};
    run_on_workers(worker_count(), [&](unsigned w) {
      std::optional<isa::Decoder> local;
      const isa::Decoder* dec = &decoder_;
      if (w != 0) {
        local.emplace(decoder_.profile());
        dec = &*local;
      }
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= ranges.size()) break;
        scan_gap(*dec, ranges[i].first, ranges[i].second, w);
      }
    });

    // New functions found in gaps still need parsing.
    drain_all();
  }

  // Heuristic prologue match at the start of a gap range: a stack
  // adjustment (addi sp, sp, -N / c.addi16sp) opens most functions.
  void scan_gap(const isa::Decoder& dec, std::uint64_t from, std::uint64_t to,
                unsigned widx) {
    for (std::uint64_t a = (from + 1) & ~1ULL; a + 2 <= to;) {
      std::size_t avail = 0;
      const std::uint8_t* bytes = code_at(a, &avail);
      if (!bytes) return;
      std::uint64_t found = 0;
      const std::size_t consumed = dec.decode_range(
          bytes, avail,
          [&](std::size_t off, const Instruction& insn, unsigned) {
            if (a + off + 2 > to) return false;  // past the gap
            if (insn.mnemonic() == isa::Mnemonic::addi &&
                insn.operand(0).reg == isa::sp &&
                insn.operand(1).reg == isa::sp && insn.operand(2).imm < 0) {
              found = a + off;
              return false;
            }
            return true;
          });
      if (found) {
        RVDYN_OBS_COUNT("rvdyn.parse.gap_functions");
        register_function(found, "", widx);
        return;  // one speculative entry per gap; its parse claims the rest
      }
      // decode_range stopped at an undecodable parcel: resync past it.
      a += consumed + 2;
    }
  }

  // Deterministic post-pass over the complete entry set: promote Jump
  // edges whose target is a (possibly traversal- or gap-discovered)
  // function entry to TailCall edges, drop the speculatively-parsed blocks
  // that the jump dragged into this function, and rebuild pred lists.
  // Independent per function, so it fans across the workers.
  void finalize_functions() {
    std::vector<Function*> all;
    all.reserve(funcs_.size());
    for (auto& [a, f] : funcs_) all.push_back(f.get());

    constexpr std::size_t kBatch = 64;
    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> flipped_total{0}, pruned_total{0};
    run_on_workers(worker_count(), [&](unsigned) {
      std::uint64_t flipped = 0, pruned = 0;
      for (;;) {
        const std::size_t base =
            next.fetch_add(kBatch, std::memory_order_relaxed);
        if (base >= all.size()) break;
        const std::size_t end = std::min(all.size(), base + kBatch);
        for (std::size_t i = base; i < end; ++i) {
          const auto [nf, np] = fixup_tail_calls(all[i]);
          flipped += nf;
          pruned += np;
          all[i]->rebuild_preds();
        }
      }
      flipped_total.fetch_add(flipped, std::memory_order_relaxed);
      pruned_total.fetch_add(pruned, std::memory_order_relaxed);
    });
    RVDYN_OBS_COUNT_N("rvdyn.parse.tailcall_fixups",
                      flipped_total.load(std::memory_order_relaxed));
    RVDYN_OBS_COUNT_N("rvdyn.parse.pruned_blocks",
                      pruned_total.load(std::memory_order_relaxed));
  }

  std::pair<std::uint64_t, std::uint64_t> fixup_tail_calls(Function* f) {
    std::uint64_t flipped = 0;
    for (auto& [a, b] : f->mutable_blocks()) {
      for (Edge& e : b->mutable_succs()) {
        if (e.type != EdgeType::Jump) continue;
        if (e.target == f->entry()) continue;
        if (!registry_.contains(e.target)) continue;
        e.type = EdgeType::TailCall;
        f->add_callee(e.target);
        ++f->mutable_stats().n_tail_calls;
        ++flipped;
      }
    }
    if (!flipped) return {0, 0};
    const std::uint64_t pruned = f->prune_unreachable_blocks();
    FunctionStats& stats = f->mutable_stats();
    stats.n_blocks = static_cast<unsigned>(f->blocks().size());
    stats.n_insns = 0;
    for (const auto& [a, blk] : f->blocks())
      stats.n_insns += static_cast<unsigned>(blk->insns().size());
    return {flipped, pruned};
  }

  CodeObject& co_;
  const symtab::Symtab& st_;
  ParseOptions opts_;
  std::map<std::uint64_t, std::unique_ptr<Function>>& funcs_;
  isa::Decoder decoder_;
  FunctionRegistry registry_;
  WorkStealingPool pool_;
  std::unordered_set<std::uint64_t> seeds_;  ///< frozen before traversal
  std::unordered_map<std::uint64_t, const std::string*> name_by_addr_;
  /// steals, steal_items, contended, idle_ns (see SchedStats).
  std::atomic<std::uint64_t> sched_totals_[4] = {};
};

}  // namespace

const char* edge_type_name(EdgeType t) {
  switch (t) {
    case EdgeType::Fallthrough: return "fallthrough";
    case EdgeType::Taken: return "taken";
    case EdgeType::NotTaken: return "not-taken";
    case EdgeType::Jump: return "jump";
    case EdgeType::IndirectJump: return "indirect";
    case EdgeType::Call: return "call";
    case EdgeType::CallFallthrough: return "call-fallthrough";
    case EdgeType::TailCall: return "tail-call";
    case EdgeType::Return: return "return";
    case EdgeType::Unresolved: return "unresolved";
  }
  return "?";
}

void Function::rebuild_preds() {
  for (auto& [a, b] : blocks_) b->clear_preds();
  for (auto& [a, b] : blocks_) {
    for (const Edge& e : b->succs()) {
      if (e.type == EdgeType::Call || e.type == EdgeType::TailCall ||
          e.type == EdgeType::Return || e.type == EdgeType::Unresolved)
        continue;
      if (Block* t = block_at(e.target)) t->add_pred(b.get());
    }
  }
}

std::size_t Function::prune_unreachable_blocks() {
  Block* eb = block_at(entry_);
  if (!eb) return 0;
  std::set<std::uint64_t> reach{entry_};
  std::vector<Block*> stack{eb};
  while (!stack.empty()) {
    Block* b = stack.back();
    stack.pop_back();
    for (const Edge& e : b->succs()) {
      if (e.type == EdgeType::Call || e.type == EdgeType::TailCall ||
          e.type == EdgeType::Return || e.type == EdgeType::Unresolved)
        continue;
      if (!reach.insert(e.target).second) continue;
      if (Block* t = block_at(e.target)) stack.push_back(t);
    }
  }
  std::size_t pruned = 0;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (reach.count(it->first)) {
      ++it;
    } else {
      it = blocks_.erase(it);
      ++pruned;
    }
  }
  return pruned;
}

FunctionStats CodeObject::total_stats() const {
  FunctionStats total;
  for (const auto& [a, f] : funcs_) {
    const FunctionStats& s = f->stats();
    total.n_blocks += s.n_blocks;
    total.n_insns += s.n_insns;
    total.n_calls += s.n_calls;
    total.n_tail_calls += s.n_tail_calls;
    total.n_returns += s.n_returns;
    total.n_jump_tables += s.n_jump_tables;
    total.n_unresolved += s.n_unresolved;
  }
  return total;
}

void CodeObject::rebuild_addr_index() {
  // Insert every block interval in ascending function-entry order, clipping
  // against ranges already claimed, so an address shared by two functions
  // resolves to the lower-entry one — exactly what the old per-lookup scan
  // over functions() returned. Keyed map: start -> (end, func).
  std::map<std::uint64_t, std::pair<std::uint64_t, Function*>> covered;
  for (const auto& [entry, f] : funcs_) {
    for (const auto& [bstart, blk] : f->blocks()) {
      std::uint64_t s = blk->start();
      const std::uint64_t e = blk->end();
      while (s < e) {
        auto it = covered.upper_bound(s);
        if (it != covered.begin()) {
          auto prev = std::prev(it);
          if (prev->second.first > s) {
            s = prev->second.first;  // already claimed; skip past it
            continue;
          }
        }
        const std::uint64_t lim =
            (it == covered.end()) ? e : std::min(e, it->first);
        if (s < lim) covered.emplace(s, std::make_pair(lim, f.get()));
        s = lim;
      }
    }
  }
  addr_index_.clear();
  addr_index_.reserve(covered.size());
  for (const auto& [s, rest] : covered) {
    // Merge segments that touch and belong to the same function.
    if (!addr_index_.empty() && addr_index_.back().end == s &&
        addr_index_.back().func == rest.second) {
      addr_index_.back().end = rest.first;
    } else {
      addr_index_.push_back(AddrSegment{s, rest.first, rest.second});
    }
  }
  addr_index_built_ = true;
}

Function* CodeObject::function_containing(std::uint64_t a) const {
  if (addr_index_built_) {
    auto it = std::upper_bound(
        addr_index_.begin(), addr_index_.end(), a,
        [](std::uint64_t v, const AddrSegment& s) { return v < s.start; });
    if (it == addr_index_.begin()) return nullptr;
    --it;
    return a < it->end ? it->func : nullptr;
  }
  for (const auto& [entry, f] : funcs_)
    if (f->block_containing(a)) return f.get();
  return nullptr;
}

std::string CodeObject::symbolize(std::uint64_t a) const {
  char buf[32];
  if (const Function* f = function_containing(a)) {
    if (a == f->entry()) return f->name();
    std::snprintf(buf, sizeof(buf), "+0x%llx",
                  static_cast<unsigned long long>(a - f->entry()));
    return f->name() + buf;
  }
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(a));
  return buf;
}

void CodeObject::parse(const ParseOptions& opts) {
  Parser parser(*this, symtab_, opts, funcs_);
  parser.run();
  rebuild_addr_index();
}

}  // namespace rvdyn::parse
