// Work-stealing scheduler for the traversal parser.
//
// The old EntryPool funneled every take()/add()/done() through one global
// mutex + condvar — a per-function lock round-trip that made the parallel
// parse *slower* than serial. This scheduler gives each worker its own
// deque: owners push/pop at the back under an (almost always uncontended)
// per-deque mutex, and idle workers steal half a victim's queue in a single
// lock acquisition, so lock traffic is amortized over whole batches of
// functions instead of paid per function.
//
// Termination uses a global outstanding-task counter: a task is outstanding
// from push() until its execution returns (tasks may push new tasks, which
// keeps the count positive). Workers that find nothing to pop or steal nap
// on a condvar with a short timeout — pushes nudge sleepers, and the worker
// that retires the last task wakes everyone for shutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace rvdyn::parse {

class Function;

/// One unit of parse work: a function entry plus its registry object (the
/// pointer rides along so execution never needs a registry lookup).
struct ParseWork {
  std::uint64_t entry = 0;
  Function* fn = nullptr;
};

/// Per-worker scheduler telemetry, aggregated into rvdyn.parse.sched.*.
struct SchedStats {
  std::uint64_t steals = 0;       ///< successful steal operations
  std::uint64_t steal_items = 0;  ///< items moved by those steals
  std::uint64_t contended = 0;    ///< try_lock failures on victim deques
  std::uint64_t idle_ns = 0;      ///< time spent napping with no work

  void accumulate_into(std::atomic<std::uint64_t>* totals) const {
    totals[0].fetch_add(steals, std::memory_order_relaxed);
    totals[1].fetch_add(steal_items, std::memory_order_relaxed);
    totals[2].fetch_add(contended, std::memory_order_relaxed);
    totals[3].fetch_add(idle_ns, std::memory_order_relaxed);
  }
};

class WorkStealingPool {
 public:
  static constexpr std::size_t kMaxSteal = 32;
  static constexpr unsigned kMaxYields = 64;

  explicit WorkStealingPool(unsigned n_workers)
      : n_(n_workers < 1 ? 1 : n_workers), deques_(n_) {}

  unsigned workers() const { return n_; }

  /// True when no pushed work remains unretired. Only meaningful between
  /// drain phases (no worker running).
  bool idle() const {
    return outstanding_.load(std::memory_order_acquire) == 0;
  }

  /// Enqueue onto worker `w`'s deque (producers push to their own deque;
  /// seeds are distributed round-robin before the workers start).
  void push(unsigned w, ParseWork item) {
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    Deque& d = deques_[w % n_];
    {
      std::lock_guard lock(d.mu);
      d.q.push_back(item);
    }
    push_gen_.fetch_add(1, std::memory_order_release);
    if (sleepers_.load(std::memory_order_acquire) > 0) {
      // Lock so the notify cannot slip between a sleeper's predicate check
      // and its wait; only paid while someone is actually asleep.
      std::lock_guard lock(sleep_mu_);
      cv_.notify_one();
    }
  }

  /// Worker loop: run `fn` over items until global completion. Call from
  /// `workers()` threads with distinct `widx` (or inline with widx 0 when
  /// single-threaded).
  template <typename Fn>
  void drain(unsigned widx, Fn&& fn, SchedStats* stats) {
    unsigned yields = 0;
    for (;;) {
      // Capture the push generation before scanning: a push that lands
      // mid-scan changes it, which turns the nap below into an instant
      // retry instead of a lost-wakeup window.
      const std::uint64_t gen = push_gen_.load(std::memory_order_acquire);
      bool contended = false;
      std::optional<ParseWork> item = pop_local(widx);
      if (!item) item = steal(widx, &contended, stats);
      if (item) {
        yields = 0;
        fn(*item);
        if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard lock(sleep_mu_);
          cv_.notify_all();
        }
        continue;
      }
      if (outstanding_.load(std::memory_order_acquire) == 0) return;
      if (n_ == 1) return;  // no other producer can exist
      if (contended && yields < kMaxYields) {
        // A victim's deque lock was busy: its owner (likely descheduled
        // mid-pop on an oversubscribed host) needs the core more than we
        // need to poll it.
        ++yields;
        std::this_thread::yield();
        continue;
      }
      yields = 0;
      nap(gen, stats);
    }
  }

 private:
  struct alignas(64) Deque {
    std::mutex mu;
    std::deque<ParseWork> q;
  };

  std::optional<ParseWork> pop_local(unsigned widx) {
    Deque& d = deques_[widx];
    std::lock_guard lock(d.mu);
    if (d.q.empty()) return std::nullopt;
    const ParseWork item = d.q.back();
    d.q.pop_back();
    return item;
  }

  /// Steal up to half of one victim's queue (capped at kMaxSteal) in a
  /// single lock acquisition; the first item is returned for immediate
  /// execution, the rest land on the thief's own deque. Victims whose lock
  /// is busy are skipped (counted as contention) — the caller's nap/retry
  /// loop guarantees progress.
  std::optional<ParseWork> steal(unsigned widx, bool* contended,
                                 SchedStats* stats) {
    for (unsigned round = 1; round < n_; ++round) {
      Deque& v = deques_[(widx + round) % n_];
      std::unique_lock vlock(v.mu, std::try_to_lock);
      if (!vlock.owns_lock()) {
        *contended = true;
        ++stats->contended;
        continue;
      }
      if (v.q.empty()) continue;
      std::size_t k = (v.q.size() + 1) / 2;
      if (k > kMaxSteal) k = kMaxSteal;
      const ParseWork first = v.q.front();
      v.q.pop_front();
      // Buffer the batch and release the victim before touching our own
      // deque — holding two deque locks at once could deadlock with a
      // thief stealing in the opposite direction.
      ParseWork batch[kMaxSteal];
      const std::size_t extra = k - 1;
      for (std::size_t i = 0; i < extra; ++i) {
        batch[i] = v.q.front();
        v.q.pop_front();
      }
      vlock.unlock();
      if (extra) {
        Deque& own = deques_[widx];
        std::lock_guard olock(own.mu);
        for (std::size_t i = 0; i < extra; ++i) own.q.push_back(batch[i]);
      }
      ++stats->steals;
      stats->steal_items += k;
      return first;
    }
    return std::nullopt;
  }

  void nap(std::uint64_t gen_seen, SchedStats* stats) {
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::unique_lock lock(sleep_mu_);
      sleepers_.fetch_add(1, std::memory_order_release);
      cv_.wait_for(lock, std::chrono::microseconds(100), [this, gen_seen] {
        return push_gen_.load(std::memory_order_acquire) != gen_seen ||
               outstanding_.load(std::memory_order_acquire) == 0;
      });
      sleepers_.fetch_sub(1, std::memory_order_release);
    }
    stats->idle_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  const unsigned n_;
  std::vector<Deque> deques_;
  std::atomic<std::int64_t> outstanding_{0};  ///< pushed, not yet retired
  std::atomic<std::uint64_t> push_gen_{0};    ///< bumped on every push
  std::atomic<int> sleepers_{0};
  std::mutex sleep_mu_;
  std::condition_variable cv_;
};

/// Run `fn(worker_idx)` on `n` workers: n-1 spawned threads plus the
/// calling thread as worker 0. Used to fan the gap scan and the finalize
/// pass across the same worker count as the traversal.
template <typename Fn>
void run_on_workers(unsigned n, Fn&& fn) {
  if (n <= 1) {
    fn(0u);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  for (unsigned w = 1; w < n; ++w) threads.emplace_back([&fn, w] { fn(w); });
  fn(0u);
  for (auto& t : threads) t.join();
}

}  // namespace rvdyn::parse
