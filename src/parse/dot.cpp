#include "parse/dot.hpp"

#include <set>
#include <sstream>

#include "parse/loops.hpp"

namespace rvdyn::parse {

namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

// DOT-escape instruction text (quotes and backslashes).
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const Function& f) {
  std::ostringstream out;
  out << "digraph \"" << escape(f.name()) << "\" {\n";
  out << "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
  out << "  label=\"" << escape(f.name()) << " @ " << hex(f.entry())
      << "\";\n";

  // Loop headers get a distinct style.
  std::set<std::uint64_t> headers;
  for (const Loop& loop : find_loops(f)) headers.insert(loop.header);

  for (const auto& [start, b] : f.blocks()) {
    out << "  b" << std::hex << start << std::dec << " [label=\"";
    out << hex(start) << ":\\l";
    for (const auto& pi : b->insns())
      out << escape(pi.insn.to_string()) << "\\l";
    out << "\"";
    if (start == f.entry()) out << ", penwidth=2";
    if (headers.count(start)) out << ", style=filled, fillcolor=lightgrey";
    out << "];\n";
  }

  for (const auto& [start, b] : f.blocks()) {
    for (const Edge& e : b->succs()) {
      if (e.type == EdgeType::Return || e.type == EdgeType::Unresolved) {
        // Synthetic sink nodes keep exits visible.
        out << "  b" << std::hex << start << std::dec << " -> exit_"
            << edge_type_name(e.type) << std::hex << start << std::dec
            << " [label=\"" << edge_type_name(e.type) << "\"];\n";
        out << "  exit_" << edge_type_name(e.type) << std::hex << start
            << std::dec << " [shape=plaintext, label=\""
            << edge_type_name(e.type) << "\"];\n";
        continue;
      }
      if (e.type == EdgeType::Call || e.type == EdgeType::TailCall) {
        out << "  b" << std::hex << start << std::dec << " -> callee_"
            << std::hex << e.target << std::dec
            << " [style=dashed, label=\"" << edge_type_name(e.type)
            << "\"];\n";
        out << "  callee_" << std::hex << e.target << std::dec
            << " [shape=ellipse, label=\"" << hex(e.target) << "\"];\n";
        continue;
      }
      if (!f.block_at(e.target)) continue;
      out << "  b" << std::hex << start << std::dec << " -> b" << std::hex
          << e.target << std::dec << " [label=\"" << edge_type_name(e.type)
          << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string callgraph_dot(const CodeObject& co) {
  std::ostringstream out;
  out << "digraph callgraph {\n  node [shape=ellipse];\n";
  for (const auto& [entry, f] : co.functions()) {
    out << "  f" << std::hex << entry << std::dec << " [label=\""
        << escape(f->name()) << "\"];\n";
    for (std::uint64_t callee : f->callees())
      out << "  f" << std::hex << entry << " -> f" << callee << std::dec
          << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace rvdyn::parse
