// Call-graph analysis over a parsed CodeObject.
//
// Provides the interprocedural structure tools need on top of ParseAPI:
// callers/callees, reachability, recursion detection (Tarjan SCCs), and a
// bottom-up traversal order — the backbone for DataflowAPI's
// interprocedural register summaries.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "parse/cfg.hpp"

namespace rvdyn::parse {

class CallGraph {
 public:
  /// Build from a parsed CodeObject (call + tail-call edges).
  explicit CallGraph(const CodeObject& co);

  const std::set<std::uint64_t>& callees(std::uint64_t func) const;
  const std::set<std::uint64_t>& callers(std::uint64_t func) const;

  /// Functions reachable from `root` (including `root`).
  std::set<std::uint64_t> reachable_from(std::uint64_t root) const;

  /// True when `func` participates in a cycle (self-recursion included).
  bool is_recursive(std::uint64_t func) const;

  /// Strongly connected components, in reverse-topological (bottom-up)
  /// order: every callee's component appears before its callers'.
  const std::vector<std::vector<std::uint64_t>>& sccs() const {
    return sccs_;
  }

  /// Bottom-up function order (callees before callers; members of a cycle
  /// in arbitrary relative order). The natural order for computing
  /// summaries.
  std::vector<std::uint64_t> bottom_up_order() const;

  /// Functions containing at least one call with an unknown target
  /// (indirect calls): their effects cannot be summarized soundly.
  const std::set<std::uint64_t>& has_unknown_callees() const {
    return unknown_callees_;
  }

 private:
  std::map<std::uint64_t, std::set<std::uint64_t>> callees_;
  std::map<std::uint64_t, std::set<std::uint64_t>> callers_;
  std::vector<std::vector<std::uint64_t>> sccs_;
  std::map<std::uint64_t, std::size_t> scc_of_;
  std::set<std::uint64_t> unknown_callees_;
};

}  // namespace rvdyn::parse
