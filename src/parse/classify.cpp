#include "parse/classify.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "semantics/eval.hpp"

namespace rvdyn::parse {

namespace {

using semantics::Expr;
using semantics::ExprPtr;
using semantics::Op;

// Substitute register/pc leaves of a semantics template with expressions
// sliced at the defining instruction's position.
ExprPtr substitute(const ExprPtr& e, const ClassifyContext& ctx,
                   const Block* def_block, int def_index,
                   std::uint64_t def_addr, unsigned def_len, int depth);

ExprPtr slice_at(const ClassifyContext& ctx, const Block* block, int index,
                 isa::Reg reg, int depth);

// The unique intra-procedural predecessor of `block`, or nullptr. Computed
// by scanning, since pred lists are only finalized after the parse.
const Block* unique_pred(const Function& f, const Block* block) {
  const Block* found = nullptr;
  for (const auto& [addr, b] : f.blocks()) {
    if (b.get() == block) continue;
    for (const Edge& e : b->succs()) {
      if (e.target != block->start()) continue;
      if (e.type == EdgeType::Call || e.type == EdgeType::TailCall ||
          e.type == EdgeType::Return)
        continue;
      if (found && found != b.get()) return nullptr;
      found = b.get();
    }
    // Implicit fallthrough from a block that ends exactly at our start and
    // has a Fallthrough/NotTaken/CallFallthrough edge is covered above.
  }
  return found;
}

ExprPtr substitute(const ExprPtr& e, const ClassifyContext& ctx,
                   const Block* def_block, int def_index,
                   std::uint64_t def_addr, unsigned def_len, int depth) {
  switch (e->op) {
    case Op::Reg:
      return slice_at(ctx, def_block, def_index, e->reg, depth - 1);
    case Op::Pc:
      return Expr::constant(static_cast<std::int64_t>(def_addr));
    case Op::InsnLen:
      return Expr::constant(static_cast<std::int64_t>(def_len));
    default:
      break;
  }
  if (e->kids.empty()) return e;
  auto out = std::make_shared<Expr>(*e);
  out->kids.clear();
  for (const auto& k : e->kids)
    out->kids.push_back(
        substitute(k, ctx, def_block, def_index, def_addr, def_len, depth));
  return out;
}

// Value of `reg` immediately before instruction `index` of `block`.
ExprPtr slice_at(const ClassifyContext& ctx, const Block* block, int index,
                 isa::Reg reg, int depth) {
  if (reg == isa::zero) return Expr::constant(0);
  if (depth <= 0) return Expr::nullary(Op::Unknown);

  const Block* b = block;
  int i = index;
  while (true) {
    for (int j = i - 1; j >= 0; --j) {
      const ParsedInsn& pi = b->insns()[static_cast<std::size_t>(j)];
      if (!pi.insn.regs_written().contains(reg)) continue;
      const auto sem = semantics::semantics_of(pi.insn);
      if (!sem.precise || !sem.has_reg_write || !(sem.written_reg == reg))
        return Expr::nullary(Op::Unknown);
      return substitute(sem.reg_value, ctx, b, j, pi.addr, pi.insn.length(),
                        depth);
    }
    // No definition in this block: continue through a unique predecessor.
    const Block* pred = ctx.func ? unique_pred(*ctx.func, b) : nullptr;
    if (!pred) return Expr::reg_read(reg);  // live-in leaf
    // A call clobbers caller-saved registers: stop the slice there.
    if (!pred->insns().empty()) {
      const isa::Instruction& term = pred->last().insn;
      const bool is_call =
          (term.is_jal() || term.is_jalr()) && !(term.link_reg() == isa::zero);
      if (is_call && isa::is_caller_saved(reg))
        return Expr::nullary(Op::Unknown);
    }
    b = pred;
    i = static_cast<int>(b->insns().size());
    if (--depth <= 0) return Expr::nullary(Op::Unknown);
  }
}

// Fold every constant subtree in place (returns a Const node when the whole
// expression folds, otherwise a partially-folded copy).
ExprPtr fold(const CodeObject& co, const ExprPtr& e) {
  const semantics::MemReader mem = [&co](std::uint64_t addr,
                                         unsigned size)
      -> std::optional<std::uint64_t> {
    const symtab::Section* s = co.symtab().section_containing(addr);
    if (!s || (s->flags & symtab::SHF_WRITE) || s->type == symtab::SHT_NOBITS)
      return std::nullopt;  // only read-only data is statically known
    return co.symtab().read_addr(addr, size);
  };
  // Try full fold first.
  if (auto v =
          semantics::const_eval(*e, 0, 0, semantics::RegResolver{}, mem))
    return Expr::constant(static_cast<std::int64_t>(*v));
  if (e->kids.empty()) return e;
  auto out = std::make_shared<Expr>(*e);
  out->kids.clear();
  for (const auto& k : e->kids) out->kids.push_back(fold(co, k));
  return out;
}

// Find the register leaf of an index expression (digging through shifts and
// width adjustments), used to locate the bound check.
std::optional<isa::Reg> index_register(const ExprPtr& e) {
  if (e->op == Op::Reg) return e->reg;
  for (const auto& k : e->kids)
    if (auto r = index_register(k)) return r;
  return std::nullopt;
}

struct TableForm {
  std::uint64_t base = 0;
  unsigned stride = 8;
  unsigned entry_size = 8;
  ExprPtr index;
};

// Flatten an Add chain into non-constant terms plus a constant sum.
void flatten_add(const ExprPtr& e, std::vector<ExprPtr>* terms,
                 std::uint64_t* const_sum) {
  if (e->op == Op::Add) {
    flatten_add(e->kids[0], terms, const_sum);
    flatten_add(e->kids[1], terms, const_sum);
    return;
  }
  if (e->op == Op::Const) {
    *const_sum += static_cast<std::uint64_t>(e->value);
    return;
  }
  terms->push_back(e);
}

// Match addr as Const + (X << k) / Const + X * 2^k, tolerating arbitrary
// Add-chain shapes (the base constant often arrives as auipc + addi + disp).
std::optional<TableForm> match_table_addr(const ExprPtr& addr,
                                          unsigned entry_size) {
  std::vector<ExprPtr> terms;
  std::uint64_t base = 0;
  flatten_add(addr, &terms, &base);
  if (terms.size() != 1) return std::nullopt;
  const ExprPtr& x = terms[0];
  TableForm tf;
  tf.base = base;
  tf.entry_size = entry_size;
  if (x->op == Op::Shl && x->kids[1]->op == Op::Const &&
      x->kids[1]->value >= 0 && x->kids[1]->value <= 4) {
    tf.stride = 1u << x->kids[1]->value;
    tf.index = x->kids[0];
    return tf;
  }
  if (x->op == Op::Mul && x->kids[1]->op == Op::Const &&
      (x->kids[1]->value == 1 || x->kids[1]->value == 2 ||
       x->kids[1]->value == 4 || x->kids[1]->value == 8)) {
    tf.stride = static_cast<unsigned>(x->kids[1]->value);
    tf.index = x->kids[0];
    return tf;
  }
  return std::nullopt;
}

// Search (this block and a short chain of unique predecessors) for a
// conditional bound check on `idxreg`; returns the entry count when found.
std::optional<std::uint64_t> find_bound(const ClassifyContext& ctx,
                                        isa::Reg idxreg) {
  const Block* b = ctx.block;
  for (int hops = 0; hops < 4 && b; ++hops) {
    // The check is the terminator of a predecessor block.
    const Block* pred = ctx.func ? unique_pred(*ctx.func, b) : nullptr;
    if (!pred || pred->insns().empty()) return std::nullopt;
    const ParsedInsn& term = pred->last();
    if (term.insn.is_cond_branch()) {
      const isa::Reg rs1 = term.insn.operand(0).reg;
      const isa::Reg rs2 = term.insn.operand(1).reg;
      const auto mn = term.insn.mnemonic();
      const bool unsigned_cmp =
          mn == isa::Mnemonic::bltu || mn == isa::Mnemonic::bgeu;
      if (unsigned_cmp && (rs1 == idxreg || rs2 == idxreg)) {
        const isa::Reg bound_reg = rs1 == idxreg ? rs2 : rs1;
        ClassifyContext pctx = ctx;
        pctx.block = pred;
        pctx.insn_index = static_cast<int>(pred->insns().size()) - 1;
        const ExprPtr be = slice_register(pctx, bound_reg);
        if (auto v = fold_constant(*ctx.co, be)) {
          if (*v > 0 && *v <= 1u << 20) return v;
        }
      }
    }
    b = pred;
  }
  return std::nullopt;
}

}  // namespace

const char* branch_kind_name(BranchKind k) {
  switch (k) {
    case BranchKind::Jump: return "jump";
    case BranchKind::Call: return "call";
    case BranchKind::TailCall: return "tail-call";
    case BranchKind::Return: return "return";
    case BranchKind::JumpTable: return "jump-table";
    case BranchKind::Unresolved: return "unresolved";
  }
  return "?";
}

semantics::ExprPtr slice_register(const ClassifyContext& ctx, isa::Reg reg,
                                  int depth_limit) {
  return slice_at(ctx, ctx.block, ctx.insn_index, reg, depth_limit);
}

std::optional<std::uint64_t> fold_constant(const CodeObject& co,
                                           const semantics::ExprPtr& e) {
  const ExprPtr folded = fold(co, e);
  if (folded->op == Op::Const)
    return static_cast<std::uint64_t>(folded->value);
  return std::nullopt;
}

Classification classify_branch(const ClassifyContext& ctx) {
  Classification out;
  const ParsedInsn& pi =
      ctx.block->insns()[static_cast<std::size_t>(ctx.insn_index)];
  const isa::Instruction& insn = pi.insn;
  auto is_entry = [&](std::uint64_t a) {
    return ctx.is_entry ? ctx.is_entry(a) : ctx.co->is_function_entry(a);
  };

  if (insn.is_jal()) {
    const std::uint64_t target =
        pi.addr + static_cast<std::uint64_t>(insn.branch_offset());
    out.target = target;
    if (!(insn.link_reg() == isa::zero)) {
      out.kind = BranchKind::Call;
    } else if (is_entry(target) && target != ctx.func->entry()) {
      out.kind = BranchKind::TailCall;  // plain jump to another function
    } else {
      out.kind = BranchKind::Jump;
    }
    return out;
  }

  // jalr: build target = (rs1 + imm) & ~1 and slice rs1.
  const isa::Reg base = insn.operand(1).reg;
  const std::int64_t disp = insn.operand(2).imm;
  const ExprPtr base_expr = slice_register(ctx, base);
  ExprPtr target_expr =
      disp == 0 ? base_expr
                : Expr::binary(Op::Add, base_expr, Expr::constant(disp));

  if (auto folded = fold_constant(*ctx.co, target_expr)) {
    const std::uint64_t target = *folded & ~1ULL;
    if (!ctx.co->symtab().in_code(target)) {
      out.kind = BranchKind::Unresolved;
      return out;
    }
    out.target = target;
    if (!(insn.link_reg() == isa::zero)) {
      out.kind = BranchKind::Call;
    } else if (is_entry(target) && target != ctx.func->entry()) {
      out.kind = BranchKind::TailCall;
    } else {
      out.kind = BranchKind::Jump;
    }
    return out;
  }

  // Return: jalr x0, 0(ra|t0) whose target could not be folded to a
  // constant. This covers both the leaf case (ra untouched since entry)
  // and the standard epilogue (ra restored from the stack save slot) —
  // in each the register carries the dynamic return address.
  if (insn.link_reg() == isa::zero && disp == 0 && isa::is_link_reg(base)) {
    out.kind = BranchKind::Return;
    return out;
  }
  // Same, with the link value forwarded through a move (`mv t1, ra; jr t1`).
  if (insn.link_reg() == isa::zero && disp == 0 &&
      base_expr->op == Op::Reg && isa::is_link_reg(base_expr->reg)) {
    out.kind = BranchKind::Return;
    return out;
  }

  // Jump-table analysis: target must be a load from base + scaled index.
  const ExprPtr folded = fold(*ctx.co, target_expr);
  if (folded->op == Op::Mem && (folded->size == 8 || folded->size == 4)) {
    const ExprPtr addr = fold(*ctx.co, folded->kids[0]);
    if (auto tf = match_table_addr(addr, folded->size)) {
      std::optional<std::uint64_t> bound;
      if (auto idxreg = index_register(tf->index))
        bound = find_bound(ctx, *idxreg);
      const std::uint64_t max_entries =
          bound ? *bound : ctx.max_table_entries;
      std::vector<std::uint64_t> targets;
      for (std::uint64_t i = 0; i < max_entries; ++i) {
        const auto cell =
            ctx.co->symtab().read_addr(tf->base + i * tf->stride,
                                       tf->entry_size);
        if (!cell) break;
        std::uint64_t t = *cell;
        if (tf->entry_size == 4) t = zext(t, 32);
        if (!ctx.co->symtab().in_code(t)) {
          if (bound) {  // a bounded table must be wholly valid
            targets.clear();
          }
          break;
        }
        targets.push_back(t);
      }
      if (!targets.empty()) {
        out.kind = BranchKind::JumpTable;
        out.table_base = tf->base;
        // Deduplicate while preserving order.
        std::vector<std::uint64_t> uniq;
        for (std::uint64_t t : targets)
          if (std::find(uniq.begin(), uniq.end(), t) == uniq.end())
            uniq.push_back(t);
        out.table_targets = std::move(uniq);
        return out;
      }
    }
  }

  // An indirect transfer that links is still a call — just one whose
  // callee is unknown (function pointers, virtual dispatch).
  if (!(insn.link_reg() == isa::zero)) {
    out.kind = BranchKind::Call;
    return out;
  }

  out.kind = BranchKind::Unresolved;
  return out;
}

bool is_noreturn_ecall(const ClassifyContext& ctx) {
  // exit (93) and exit_group (94) never return: slice a7 at the ecall.
  const ExprPtr a7 = slice_register(ctx, isa::a7);
  if (auto v = fold_constant(*ctx.co, a7)) return *v == 93 || *v == 94;
  return false;
}

}  // namespace rvdyn::parse
