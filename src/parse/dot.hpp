// Graphviz export of parsed CFGs — the standard way Dyninst-family tools
// visualize ParseAPI output.
#pragma once

#include <string>

#include "parse/cfg.hpp"

namespace rvdyn::parse {

/// DOT digraph for one function: one node per basic block (instruction
/// listing inside), edges labelled with their type, loop headers
/// highlighted.
std::string to_dot(const Function& f);

/// DOT digraph of the whole binary's call graph: one node per function,
/// edges for calls and tail calls.
std::string callgraph_dot(const CodeObject& co);

}  // namespace rvdyn::parse
