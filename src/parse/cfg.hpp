// ParseAPI: control-flow graph construction over RISC-V binaries
// (paper §2.1, §3.2.3).
//
// CodeObject parses machine code by traversal from known entry points
// (program entry + function symbols), following control-flow transfers and
// discovering new entries (call targets, tail-call targets, gap-parsed
// prologues). jal/jalr multi-use classification and jump-table analysis
// live in classify.hpp; loop structure in loops.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "symtab/symtab.hpp"

namespace rvdyn::parse {

/// One decoded instruction pinned at its address.
struct ParsedInsn {
  std::uint64_t addr = 0;
  isa::Instruction insn;

  std::uint64_t next_addr() const { return addr + insn.length(); }
};

/// CFG edge types. Interprocedural edges (Call/TailCall) carry the callee
/// entry; Return edges have no static target.
enum class EdgeType {
  Fallthrough,      ///< linear flow into the next block
  Taken,            ///< conditional branch taken
  NotTaken,         ///< conditional branch fall-through
  Jump,             ///< unconditional intraprocedural jump
  IndirectJump,     ///< resolved jump-table target
  Call,             ///< function call (interprocedural)
  CallFallthrough,  ///< the post-call resume point
  TailCall,         ///< jump that is semantically a call (interprocedural)
  Return,           ///< function return (no static target)
  Unresolved,       ///< indirect flow whose target could not be determined
};

const char* edge_type_name(EdgeType t);

struct Edge {
  EdgeType type;
  std::uint64_t target = 0;  ///< 0 for Return/Unresolved
};

class Function;

/// A basic block: a maximal single-entry straight-line run of instructions.
class Block {
 public:
  Block(std::uint64_t start) : start_(start) {}

  std::uint64_t start() const { return start_; }
  /// One past the last byte of the last instruction.
  std::uint64_t end() const {
    return insns_.empty() ? start_ : insns_.back().next_addr();
  }
  bool contains(std::uint64_t a) const { return a >= start_ && a < end(); }

  const std::vector<ParsedInsn>& insns() const { return insns_; }
  const ParsedInsn& last() const { return insns_.back(); }
  const std::vector<Edge>& succs() const { return succs_; }
  const std::vector<Block*>& preds() const { return preds_; }

  // Mutators used by the parser.
  std::vector<ParsedInsn>& mutable_insns() { return insns_; }
  std::vector<Edge>& mutable_succs() { return succs_; }
  void add_succ(Edge e) { succs_.push_back(e); }
  void clear_succs() { succs_.clear(); }
  void add_pred(Block* b) { preds_.push_back(b); }
  void clear_preds() { preds_.clear(); }

 private:
  std::uint64_t start_;
  std::vector<ParsedInsn> insns_;
  std::vector<Edge> succs_;
  std::vector<Block*> preds_;
};

/// How a function's parse concluded.
struct FunctionStats {
  unsigned n_blocks = 0;
  unsigned n_insns = 0;
  unsigned n_calls = 0;
  unsigned n_tail_calls = 0;
  unsigned n_returns = 0;
  unsigned n_jump_tables = 0;
  unsigned n_unresolved = 0;
};

class Function {
 public:
  Function(std::uint64_t entry, std::string name)
      : entry_(entry), name_(std::move(name)) {}

  std::uint64_t entry() const { return entry_; }
  const std::string& name() const { return name_; }

  const std::map<std::uint64_t, std::unique_ptr<Block>>& blocks() const {
    return blocks_;
  }
  Block* entry_block() const { return block_at(entry_); }

  /// Block starting exactly at `a`, or nullptr.
  Block* block_at(std::uint64_t a) const {
    auto it = blocks_.find(a);
    return it == blocks_.end() ? nullptr : it->second.get();
  }
  /// Block whose range contains `a`, or nullptr.
  Block* block_containing(std::uint64_t a) const {
    auto it = blocks_.upper_bound(a);
    if (it == blocks_.begin()) return nullptr;
    --it;
    return it->second->contains(a) ? it->second.get() : nullptr;
  }

  /// Direct callees (call and tail-call targets).
  const std::set<std::uint64_t>& callees() const { return callees_; }
  const FunctionStats& stats() const { return stats_; }

  /// Total code extent: [entry, max block end).
  std::uint64_t extent_end() const {
    std::uint64_t e = entry_;
    for (const auto& [a, b] : blocks_) e = std::max(e, b->end());
    return e;
  }

  // Parser-side mutators.
  Block* add_block(std::uint64_t start) {
    auto [it, inserted] = blocks_.emplace(start, nullptr);
    if (inserted) it->second = std::make_unique<Block>(start);
    return it->second.get();
  }
  std::map<std::uint64_t, std::unique_ptr<Block>>& mutable_blocks() {
    return blocks_;
  }
  void add_callee(std::uint64_t a) { callees_.insert(a); }
  FunctionStats& mutable_stats() { return stats_; }
  /// Recompute pred lists from succ edges (intra-procedural edges only).
  void rebuild_preds();
  /// Drop blocks not reachable from the entry block along intra-procedural
  /// edges. Used after retroactive tail-call reclassification: blocks that
  /// were speculatively parsed past a jump later recognized as a tail call
  /// belong to the callee, not to this function. Returns the number of
  /// blocks removed.
  std::size_t prune_unreachable_blocks();

 private:
  std::uint64_t entry_;
  std::string name_;
  std::map<std::uint64_t, std::unique_ptr<Block>> blocks_;
  std::set<std::uint64_t> callees_;
  FunctionStats stats_;
};

/// Parser configuration.
struct ParseOptions {
  unsigned num_threads = 1;   ///< >1 enables parallel function parsing
  bool gap_parsing = true;    ///< scan unclaimed ranges for prologues
  unsigned max_jump_table_entries = 512;
};

/// A parsed binary: functions discovered from symbols, the entry point,
/// call traversal, and (optionally) gap parsing.
class CodeObject {
 public:
  explicit CodeObject(const symtab::Symtab& symtab) : symtab_(symtab) {}

  /// Run the parse. Idempotent; call once.
  void parse(const ParseOptions& opts = {});

  const symtab::Symtab& symtab() const { return symtab_; }

  const std::map<std::uint64_t, std::unique_ptr<Function>>& functions() const {
    return funcs_;
  }
  Function* function_at(std::uint64_t entry) const {
    auto it = funcs_.find(entry);
    return it == funcs_.end() ? nullptr : it->second.get();
  }
  Function* function_named(const std::string& name) const {
    for (const auto& [a, f] : funcs_)
      if (f->name() == name) return f.get();
    return nullptr;
  }

  /// True when `a` is a known function entry (used by jalr classification).
  bool is_function_entry(std::uint64_t a) const { return funcs_.count(a) != 0; }

  /// One entry of the sorted address-interval → function index: the
  /// half-open byte range [start, end) belongs to `func`.
  struct AddrSegment {
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    Function* func = nullptr;
  };

  /// Function whose parsed blocks contain `a` — O(log segments) through the
  /// interval index instead of a scan over every function. When functions
  /// share bytes (gap-parse overlaps, shared epilogues) the one with the
  /// lowest entry wins, matching the functions() iteration order that the
  /// old linear scans exposed. Falls back to the linear scan if the index
  /// has not been built (parse() builds it).
  Function* function_containing(std::uint64_t a) const;

  /// Rebuild the interval index from the current function set. parse()
  /// calls this automatically; call again after mutating blocks directly.
  void rebuild_addr_index();

  /// Human-readable location of `a`: "func" at the entry, "func+0xN"
  /// inside, bare "0xA" when no parsed function contains the address.
  /// O(log segments) through the interval index — cheap enough for the
  /// sampling profiler to call per frame per sample.
  std::string symbolize(std::uint64_t a) const;

  /// The sorted, non-overlapping segment list (exposed for tests/tools).
  const std::vector<AddrSegment>& addr_index() const { return addr_index_; }

  /// Aggregate statistics over all functions.
  FunctionStats total_stats() const;

 private:
  const symtab::Symtab& symtab_;
  std::map<std::uint64_t, std::unique_ptr<Function>> funcs_;
  std::vector<AddrSegment> addr_index_;
  bool addr_index_built_ = false;
};

}  // namespace rvdyn::parse
