// The JSON leg of the semantics pipeline (paper §3.2.4).
//
// The paper's flow: SAIL formal spec --(OCaml stage)--> simplified JSON
// --(second stage)--> C++ semantic classes. This module is that second
// stage: it ingests the intermediate JSON ({"mnemonic": "spec", ...}) and
// installs the entries over the built-in table, so regenerating semantics
// for a new extension is a data update, not a code change. dump_spec_json
// exports the active table in the same format (round-trippable).
#pragma once

#include <map>
#include <string>

#include "isa/instruction.hpp"

namespace rvdyn::semantics {

/// Parse a flat JSON object of {"mnemonic": "spec-string"} pairs.
/// Supports exactly the intermediate format: one object, string keys and
/// string values, standard escapes. Throws rvdyn::Error on malformed input
/// or on a key that is not a known mnemonic.
std::map<isa::Mnemonic, std::string> parse_spec_json(const std::string& json);

/// Install `entries` as overrides consulted before the built-in table
/// (an empty spec string removes the mnemonic's model, forcing the
/// conservative summary). Affects subsequent semantics_of calls globally.
void install_spec_overrides(std::map<isa::Mnemonic, std::string> entries);

/// Drop all overrides (restores the built-in table).
void clear_spec_overrides();

/// Export the active semantics table (built-ins + overrides) as the
/// pipeline's JSON intermediate format, keys sorted by mnemonic name.
std::string dump_spec_json();

}  // namespace rvdyn::semantics
