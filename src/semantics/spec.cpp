// The per-mnemonic semantics spec table and its parser.
//
// This file plays the role of the paper's generated C++ semantic classes:
// the table below is the "simplified JSON" intermediate representation
// (essential value semantics, no error-handling clutter), and the parser is
// the second pipeline stage that turns it into evaluable C++ objects.
#include <cctype>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/status.hpp"
#include "semantics/expr.hpp"
#include "semantics/pipeline.hpp"

#include <map>

namespace rvdyn::semantics {

namespace {

using isa::Mnemonic;

// "-" means: precise semantics, no register or memory effects.
const std::unordered_map<Mnemonic, const char*>& spec_table() {
  static const std::unordered_map<Mnemonic, const char*> table = {
      {Mnemonic::lui, "rd = imm"},
      {Mnemonic::auipc, "rd = pc + imm"},
      {Mnemonic::addi, "rd = rs1 + imm"},
      {Mnemonic::slti, "rd = rs1 <s imm"},
      {Mnemonic::sltiu, "rd = rs1 <u imm"},
      {Mnemonic::xori, "rd = rs1 ^ imm"},
      {Mnemonic::ori, "rd = rs1 | imm"},
      {Mnemonic::andi, "rd = rs1 & imm"},
      {Mnemonic::slli, "rd = rs1 << imm"},
      {Mnemonic::srli, "rd = rs1 >>u imm"},
      {Mnemonic::srai, "rd = rs1 >>s imm"},
      {Mnemonic::add, "rd = rs1 + rs2"},
      {Mnemonic::sub, "rd = rs1 - rs2"},
      {Mnemonic::sll, "rd = rs1 << (rs2 & 63)"},
      {Mnemonic::slt, "rd = rs1 <s rs2"},
      {Mnemonic::sltu, "rd = rs1 <u rs2"},
      {Mnemonic::xor_, "rd = rs1 ^ rs2"},
      {Mnemonic::srl, "rd = rs1 >>u (rs2 & 63)"},
      {Mnemonic::sra, "rd = rs1 >>s (rs2 & 63)"},
      {Mnemonic::or_, "rd = rs1 | rs2"},
      {Mnemonic::and_, "rd = rs1 & rs2"},
      {Mnemonic::addiw, "rd = sx32(rs1 + imm)"},
      {Mnemonic::slliw, "rd = sx32(rs1 << imm)"},
      {Mnemonic::srliw, "rd = sx32(tr32(rs1) >>u imm)"},
      {Mnemonic::sraiw, "rd = sx32(sx32(rs1) >>s imm)"},
      {Mnemonic::addw, "rd = sx32(rs1 + rs2)"},
      {Mnemonic::subw, "rd = sx32(rs1 - rs2)"},
      {Mnemonic::sllw, "rd = sx32(rs1 << (rs2 & 31))"},
      {Mnemonic::srlw, "rd = sx32(tr32(rs1) >>u (rs2 & 31))"},
      {Mnemonic::sraw, "rd = sx32(sx32(rs1) >>s (rs2 & 31))"},
      {Mnemonic::mul, "rd = rs1 * rs2"},
      {Mnemonic::mulw, "rd = sx32(rs1 * rs2)"},
      {Mnemonic::div, "rd = rs1 /s rs2"},
      {Mnemonic::divu, "rd = rs1 /u rs2"},
      {Mnemonic::rem, "rd = rs1 %s rs2"},
      {Mnemonic::remu, "rd = rs1 %u rs2"},
      {Mnemonic::divw, "rd = sx32(sx32(rs1) /s sx32(rs2))"},
      {Mnemonic::divuw, "rd = sx32(tr32(rs1) /u tr32(rs2))"},
      {Mnemonic::remw, "rd = sx32(sx32(rs1) %s sx32(rs2))"},
      {Mnemonic::remuw, "rd = sx32(tr32(rs1) %u tr32(rs2))"},
      {Mnemonic::lb, "rd = mem[rs1 + imm]:1:s"},
      {Mnemonic::lbu, "rd = mem[rs1 + imm]:1:u"},
      {Mnemonic::lh, "rd = mem[rs1 + imm]:2:s"},
      {Mnemonic::lhu, "rd = mem[rs1 + imm]:2:u"},
      {Mnemonic::lw, "rd = mem[rs1 + imm]:4:s"},
      {Mnemonic::lwu, "rd = mem[rs1 + imm]:4:u"},
      {Mnemonic::ld, "rd = mem[rs1 + imm]:8:u"},
      {Mnemonic::sb, "mem[rs1 + imm]:1 = rs2"},
      {Mnemonic::sh, "mem[rs1 + imm]:2 = rs2"},
      {Mnemonic::sw, "mem[rs1 + imm]:4 = rs2"},
      {Mnemonic::sd, "mem[rs1 + imm]:8 = rs2"},
      // Control transfers: the link-register write is the value semantics;
      // the pc update is CFG-level information handled by ParseAPI.
      {Mnemonic::jal, "rd = pc + ilen"},
      {Mnemonic::jalr, "rd = pc + ilen"},
      {Mnemonic::beq, "-"},
      {Mnemonic::bne, "-"},
      {Mnemonic::blt, "-"},
      {Mnemonic::bge, "-"},
      {Mnemonic::bltu, "-"},
      {Mnemonic::bgeu, "-"},
      {Mnemonic::fence, "-"},
      {Mnemonic::fence_i, "-"},
      // Zicond (RVA23): conditional zero.
      {Mnemonic::czero_eqz, "rd = rs1 * (rs2 != 0)"},
      {Mnemonic::czero_nez, "rd = rs1 * (rs2 == 0)"},
      // Zba (RVA23): address-generation shifts and adds.
      {Mnemonic::add_uw, "rd = rs2 + tr32(rs1)"},
      {Mnemonic::sh1add, "rd = rs2 + (rs1 << 1)"},
      {Mnemonic::sh2add, "rd = rs2 + (rs1 << 2)"},
      {Mnemonic::sh3add, "rd = rs2 + (rs1 << 3)"},
      {Mnemonic::sh1add_uw, "rd = rs2 + (tr32(rs1) << 1)"},
      {Mnemonic::sh2add_uw, "rd = rs2 + (tr32(rs1) << 2)"},
      {Mnemonic::sh3add_uw, "rd = rs2 + (tr32(rs1) << 3)"},
      {Mnemonic::slli_uw, "rd = tr32(rs1) << imm"},
      // Zbb (RVA23): basic bit manipulation.
      {Mnemonic::andn, "rd = rs1 & (rs2 ^ -1)"},
      {Mnemonic::orn, "rd = rs1 | (rs2 ^ -1)"},
      {Mnemonic::xnor, "rd = (rs1 ^ rs2) ^ -1"},
      {Mnemonic::clz, "rd = clz(rs1)"},
      {Mnemonic::ctz, "rd = ctz(rs1)"},
      {Mnemonic::cpop, "rd = cpop(rs1)"},
      // W-forms expressed through the 64-bit primitives: clzw pads the
      // value into the top half with a bit-32 sentinel; ctzw plants a
      // sentinel at bit 32 so zero inputs count exactly 32.
      {Mnemonic::clzw, "rd = clz((tr32(rs1) << 32) | 2147483648)"},
      {Mnemonic::ctzw, "rd = ctz(tr32(rs1) | 4294967296)"},
      {Mnemonic::cpopw, "rd = cpop(tr32(rs1))"},
      {Mnemonic::max, "rd = maxs(rs1, rs2)"},
      {Mnemonic::maxu, "rd = maxu(rs1, rs2)"},
      {Mnemonic::min, "rd = mins(rs1, rs2)"},
      {Mnemonic::minu, "rd = minu(rs1, rs2)"},
      {Mnemonic::sext_b, "rd = (rs1 << 56) >>s 56"},
      {Mnemonic::sext_h, "rd = (rs1 << 48) >>s 48"},
      {Mnemonic::zext_h, "rd = rs1 & 65535"},
      {Mnemonic::rol, "rd = rol(rs1, rs2 & 63)"},
      {Mnemonic::ror, "rd = ror(rs1, rs2 & 63)"},
      {Mnemonic::rori, "rd = ror(rs1, imm)"},
      {Mnemonic::rolw,
       "rd = sx32((tr32(rs1) << (rs2 & 31)) | "
       "(tr32(rs1) >>u ((32 - (rs2 & 31)) & 31)))"},
      {Mnemonic::rorw,
       "rd = sx32((tr32(rs1) >>u (rs2 & 31)) | "
       "(tr32(rs1) << ((32 - (rs2 & 31)) & 31)))"},
      {Mnemonic::roriw,
       "rd = sx32((tr32(rs1) >>u imm) | "
       "(tr32(rs1) << ((32 - imm) & 31)))"},
      {Mnemonic::rev8, "rd = rev8(rs1)"},
      {Mnemonic::orc_b, "rd = orcb(rs1)"},
  };
  return table;
}

// ---- operand binding: spec identifiers -> this instruction's fields ----

struct Bindings {
  std::optional<isa::Reg> rd, rs1, rs2;
  std::optional<std::int64_t> imm;
  std::optional<std::int64_t> off;
};

Bindings bind_operands(const isa::Instruction& insn) {
  Bindings b;
  const char* spec = isa::opcode_info(insn.mnemonic()).spec;
  unsigned oi = 0;
  for (const char* p = spec; *p && oi < insn.num_operands(); ++p) {
    const isa::Operand& op = insn.operand(oi);
    switch (*p) {
      case 'd': b.rd = op.reg; ++oi; break;
      case 's': b.rs1 = op.reg; ++oi; break;
      case 't': b.rs2 = op.reg; ++oi; break;
      case 'm':
      case 'M':
      case 'A':
        b.rs1 = op.reg;
        b.imm = op.imm;
        ++oi;
        break;
      case 'i': case 'u': case 'z': case 'w': case 'Z':
        b.imm = op.imm;
        ++oi;
        break;
      case 'b': case 'a':
        b.off = op.imm;
        ++oi;
        break;
      // FP registers, CSR numbers, rounding modes and ordering bits are not
      // bound: the modelled (integer) subset never references them, and
      // instructions outside the subset take the conservative path.
      case 'D': case 'S': case 'T': case 'R': case 'c': case 'x':
      case 'q': case 'f':
        ++oi;
        break;
      default:
        break;
    }
  }
  // Stores put the data register first ("tM"): rebind it as rs2.
  if (insn.writes_memory() && !b.rs2 && insn.num_operands() >= 1 &&
      insn.operand(0).is_reg() && insn.operand(0).reads())
    b.rs2 = insn.operand(0).reg;
  return b;
}

// ---- recursive-descent parser over the spec grammar ----

class Parser {
 public:
  Parser(const char* s, const Bindings& b, const isa::Instruction& insn)
      : p_(s), b_(b), insn_(insn) {}

  // assign := ('rd' | mem-target) '=' expr
  void parse(InsnSemantics* out) {
    skip_ws();
    if (peek_ident("mem")) {
      expect('[');
      ExprPtr addr = expr();
      expect(']');
      expect(':');
      out->store_size = static_cast<std::uint8_t>(number());
      expect('=');
      out->store_value = expr();
      out->store_addr = std::move(addr);
      out->has_mem_write = true;
    } else if (peek_ident("rd")) {
      expect('=');
      out->reg_value = expr();
      out->has_reg_write = true;
      out->written_reg = b_.rd.value_or(isa::zero);
    } else {
      throw Error(std::string("semantics spec: bad statement at '") + p_ + "'");
    }
    out->precise = true;
  }

 private:
  // Precedence (low to high): cmp, |, ^, &, shift, +/-, */div/rem, primary.
  ExprPtr expr() { return cmp(); }

  ExprPtr cmp() {
    ExprPtr lhs = bitor_();
    skip_ws();
    if (try_op("==")) return Expr::binary(Op::Eq, lhs, bitor_());
    if (try_op("!=")) return Expr::binary(Op::Ne, lhs, bitor_());
    if (try_op("<s")) return Expr::binary(Op::SltS, lhs, bitor_());
    if (try_op("<u")) return Expr::binary(Op::SltU, lhs, bitor_());
    return lhs;
  }
  ExprPtr bitor_() {
    ExprPtr lhs = bitxor_();
    while (true) {
      skip_ws();
      if (*p_ == '|') { ++p_; lhs = Expr::binary(Op::Or, lhs, bitxor_()); }
      else return lhs;
    }
  }
  ExprPtr bitxor_() {
    ExprPtr lhs = bitand_();
    while (true) {
      skip_ws();
      if (*p_ == '^') { ++p_; lhs = Expr::binary(Op::Xor, lhs, bitand_()); }
      else return lhs;
    }
  }
  ExprPtr bitand_() {
    ExprPtr lhs = shift();
    while (true) {
      skip_ws();
      if (*p_ == '&') { ++p_; lhs = Expr::binary(Op::And, lhs, shift()); }
      else return lhs;
    }
  }
  ExprPtr shift() {
    ExprPtr lhs = addsub();
    while (true) {
      skip_ws();
      if (try_op("<<")) lhs = Expr::binary(Op::Shl, lhs, addsub());
      else if (try_op(">>u")) lhs = Expr::binary(Op::Shru, lhs, addsub());
      else if (try_op(">>s")) lhs = Expr::binary(Op::Shrs, lhs, addsub());
      else return lhs;
    }
  }
  ExprPtr addsub() {
    ExprPtr lhs = muldiv();
    while (true) {
      skip_ws();
      if (*p_ == '+') { ++p_; lhs = Expr::binary(Op::Add, lhs, muldiv()); }
      else if (*p_ == '-' && !std::isdigit(static_cast<unsigned char>(p_[1]))) {
        ++p_;
        lhs = Expr::binary(Op::Sub, lhs, muldiv());
      } else {
        return lhs;
      }
    }
  }
  ExprPtr muldiv() {
    ExprPtr lhs = primary();
    while (true) {
      skip_ws();
      if (*p_ == '*') { ++p_; lhs = Expr::binary(Op::Mul, lhs, primary()); }
      else if (try_op("/s")) lhs = Expr::binary(Op::Divs, lhs, primary());
      else if (try_op("/u")) lhs = Expr::binary(Op::Divu, lhs, primary());
      else if (try_op("%s")) lhs = Expr::binary(Op::Rems, lhs, primary());
      else if (try_op("%u")) lhs = Expr::binary(Op::Remu, lhs, primary());
      else return lhs;
    }
  }

  ExprPtr primary() {
    skip_ws();
    if (*p_ == '(') {
      ++p_;
      ExprPtr e = expr();
      expect(')');
      return e;
    }
    if (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '-')
      return Expr::constant(number());
    if (peek_ident("sx32")) {
      expect('(');
      ExprPtr e = expr();
      expect(')');
      return Expr::unary(Op::Sext32, e);
    }
    if (peek_ident("tr32")) {
      expect('(');
      ExprPtr e = expr();
      expect(')');
      return Expr::unary(Op::Trunc32, e);
    }
    if (peek_ident("mem")) {
      expect('[');
      ExprPtr addr = expr();
      expect(']');
      expect(':');
      const auto size = static_cast<std::uint8_t>(number());
      bool sign = false;
      if (*p_ == ':') {
        ++p_;
        sign = (*p_ == 's');
        ++p_;
      }
      return Expr::mem(addr, size, sign);
    }
    // Zbb intrinsic functions (unary and binary).
    struct Fn {
      const char* name;
      Op op;
      unsigned arity;
    };
    static constexpr Fn kFns[] = {
        {"clz", Op::Clz, 1},   {"ctz", Op::Ctz, 1},
        {"cpop", Op::Cpop, 1}, {"rev8", Op::Rev8, 1},
        {"orcb", Op::OrcB, 1}, {"rol", Op::Rol, 2},
        {"ror", Op::Ror, 2},   {"maxs", Op::MaxS, 2},
        {"maxu", Op::MaxU, 2}, {"mins", Op::MinS, 2},
        {"minu", Op::MinU, 2},
    };
    for (const Fn& fn : kFns) {
      if (!peek_ident(fn.name)) continue;
      expect('(');
      ExprPtr a = expr();
      if (fn.arity == 1) {
        expect(')');
        return Expr::unary(fn.op, a);
      }
      expect(',');
      ExprPtr b = expr();
      expect(')');
      return Expr::binary(fn.op, a, b);
    }
    if (peek_ident("rs1")) return leaf_reg(b_.rs1);
    if (peek_ident("rs2")) return leaf_reg(b_.rs2);
    if (peek_ident("imm")) return Expr::constant(b_.imm.value_or(0));
    if (peek_ident("off")) return Expr::constant(b_.off.value_or(0));
    if (peek_ident("pc")) return Expr::nullary(Op::Pc);
    if (peek_ident("ilen"))
      return Expr::constant(static_cast<std::int64_t>(insn_.length()));
    throw Error(std::string("semantics spec: bad primary at '") + p_ + "'");
  }

  static ExprPtr leaf_reg(const std::optional<isa::Reg>& r) {
    if (!r) return Expr::nullary(Op::Unknown);
    if (*r == isa::zero) return Expr::constant(0);  // x0 reads as zero
    return Expr::reg_read(*r);
  }

  std::int64_t number() {
    skip_ws();
    char* end = nullptr;
    const long long v = std::strtoll(p_, &end, 0);
    if (end == p_) throw Error("semantics spec: expected number");
    p_ = end;
    return v;
  }

  void skip_ws() {
    while (*p_ == ' ') ++p_;
  }
  bool try_op(const char* op) {
    skip_ws();
    const std::size_t n = std::strlen(op);
    if (std::strncmp(p_, op, n) == 0) {
      p_ += n;
      return true;
    }
    return false;
  }
  bool peek_ident(const char* id) {
    skip_ws();
    const std::size_t n = std::strlen(id);
    if (std::strncmp(p_, id, n) == 0 &&
        !std::isalnum(static_cast<unsigned char>(p_[n]))) {
      p_ += n;
      return true;
    }
    return false;
  }
  void expect(char c) {
    skip_ws();
    if (*p_ != c)
      throw Error(std::string("semantics spec: expected '") + c + "' at '" +
                  p_ + "'");
    ++p_;
  }

  const char* p_;
  const Bindings& b_;
  const isa::Instruction& insn_;
};

InsnSemantics conservative(const isa::Instruction& insn) {
  InsnSemantics out;
  out.precise = false;
  // Report the first written register with an Unknown value so consumers
  // know the def exists even when the value is not modelled.
  for (unsigned i = 0; i < insn.num_operands(); ++i) {
    const isa::Operand& op = insn.operand(i);
    if (op.is_reg() && op.writes()) {
      out.has_reg_write = true;
      out.written_reg = op.reg;
      out.reg_value = Expr::nullary(Op::Unknown);
      break;
    }
  }
  return out;
}

}  // namespace

namespace {

// Pipeline overrides (installed from the JSON intermediate format) are
// consulted before the built-in table. Not thread-safe against concurrent
// installation; intended for tool startup.
std::map<isa::Mnemonic, std::string>& spec_overrides() {
  static std::map<isa::Mnemonic, std::string> overrides;
  return overrides;
}

}  // namespace

void install_spec_overrides(std::map<isa::Mnemonic, std::string> entries) {
  for (auto& [mn, spec] : entries) spec_overrides()[mn] = std::move(spec);
}

void clear_spec_overrides() { spec_overrides().clear(); }

const char* semantics_spec(isa::Mnemonic m) {
  const auto& overrides = spec_overrides();
  if (auto it = overrides.find(m); it != overrides.end())
    return it->second.c_str();
  const auto& table = spec_table();
  auto it = table.find(m);
  return it == table.end() ? "" : it->second;
}

InsnSemantics semantics_of(const isa::Instruction& insn) {
  const char* spec = semantics_spec(insn.mnemonic());
  if (spec[0] == '\0') return conservative(insn);
  InsnSemantics out;
  if (std::strcmp(spec, "-") == 0) {
    out.precise = true;
    return out;
  }
  const Bindings b = bind_operands(insn);
  Parser parser(spec, b, insn);
  parser.parse(&out);
  // Writes to x0 are architectural no-ops; drop them so consumers never see
  // a def of the zero register.
  if (out.has_reg_write && out.written_reg == isa::zero) {
    out.has_reg_write = false;
    out.reg_value.reset();
  }
  return out;
}

}  // namespace rvdyn::semantics
