#include "semantics/pipeline.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/status.hpp"
#include "semantics/expr.hpp"

namespace rvdyn::semantics {

namespace {

// Minimal JSON reader for the pipeline's flat {"key": "value"} format.
class JsonReader {
 public:
  explicit JsonReader(const std::string& s) : s_(s) {}

  std::map<std::string, std::string> read_object() {
    std::map<std::string, std::string> out;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      skip_ws();
      if (pos_ != s_.size()) throw Error("spec json: trailing content");
      return out;
    }
    while (true) {
      skip_ws();
      const std::string key = read_string();
      skip_ws();
      expect(':');
      skip_ws();
      const std::string value = read_string();
      if (!out.emplace(key, value).second)
        throw Error("spec json: duplicate key \"" + key + "\"");
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        break;
      }
      throw Error("spec json: expected ',' or '}'");
    }
    skip_ws();
    if (pos_ != s_.size()) throw Error("spec json: trailing content");
    return out;
  }

 private:
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void expect(char c) {
    if (peek() != c)
      throw Error(std::string("spec json: expected '") + c + "'");
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  std::string read_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default:
            throw Error(std::string("spec json: unsupported escape \\") + e);
        }
        continue;
      }
      out += c;
    }
    throw Error("spec json: unterminated string");
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::map<isa::Mnemonic, std::string> parse_spec_json(const std::string& json) {
  JsonReader reader(json);
  std::map<isa::Mnemonic, std::string> out;
  for (auto& [key, value] : reader.read_object()) {
    const isa::Mnemonic mn = isa::mnemonic_from_name(key);
    if (mn == isa::Mnemonic::kInvalid)
      throw Error("spec json: unknown mnemonic \"" + key + "\"");
    out[mn] = value;
  }
  return out;
}

std::string dump_spec_json() {
  // Collect the active spec (override-aware) for every mnemonic.
  std::vector<std::pair<std::string, std::string>> entries;
  for (std::uint16_t i = 0;
       i < static_cast<std::uint16_t>(isa::Mnemonic::kCount); ++i) {
    const auto mn = static_cast<isa::Mnemonic>(i);
    const char* spec = semantics_spec(mn);
    if (spec[0] == '\0') continue;
    entries.emplace_back(isa::mnemonic_name(mn), spec);
  }
  std::sort(entries.begin(), entries.end());

  std::ostringstream out;
  out << "{\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << "  \"" << escape(entries[i].first) << "\": \""
        << escape(entries[i].second) << "\"";
    if (i + 1 < entries.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace rvdyn::semantics
