// Evaluators over the semantics IR.
//
// ConstEval is the concrete/partial-constant evaluator DataflowAPI's
// slicing-based jalr resolution and jump-table analysis use (§3.2.3): it
// folds an expression tree to a 64-bit value when every leaf resolves, and
// reports "unknown" otherwise. Division follows RISC-V's architected
// corner-case results (div by zero -> -1, signed overflow wraps).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "semantics/expr.hpp"

namespace rvdyn::semantics {

/// Resolves a register leaf to a value, or nullopt when unknown.
using RegResolver = std::function<std::optional<std::uint64_t>(isa::Reg)>;

/// Reads `size` bytes of little-endian memory at `addr`, or nullopt when
/// the address is not statically readable (not in a mapped RO section).
using MemReader =
    std::function<std::optional<std::uint64_t>(std::uint64_t addr, unsigned size)>;

/// Evaluate `e` for an instruction located at `pc` with encoded length
/// `ilen`. Returns nullopt when any leaf is unknown.
std::optional<std::uint64_t> const_eval(const Expr& e, std::uint64_t pc,
                                        unsigned ilen, const RegResolver& regs,
                                        const MemReader& mem);

/// RISC-V architected division results (shared with the emulator so the
/// analyses and the execution substrate can never disagree).
std::uint64_t rv_div_s(std::uint64_t a, std::uint64_t b);
std::uint64_t rv_div_u(std::uint64_t a, std::uint64_t b);
std::uint64_t rv_rem_s(std::uint64_t a, std::uint64_t b);
std::uint64_t rv_rem_u(std::uint64_t a, std::uint64_t b);

}  // namespace rvdyn::semantics
