#include "semantics/eval.hpp"

#include <limits>

#include "common/bits.hpp"

namespace rvdyn::semantics {

std::uint64_t rv_div_s(std::uint64_t a, std::uint64_t b) {
  const auto sa = static_cast<std::int64_t>(a);
  const auto sb = static_cast<std::int64_t>(b);
  if (sb == 0) return ~0ULL;  // div by zero -> -1
  if (sa == std::numeric_limits<std::int64_t>::min() && sb == -1)
    return a;  // overflow -> dividend
  return static_cast<std::uint64_t>(sa / sb);
}

std::uint64_t rv_div_u(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? ~0ULL : a / b;
}

std::uint64_t rv_rem_s(std::uint64_t a, std::uint64_t b) {
  const auto sa = static_cast<std::int64_t>(a);
  const auto sb = static_cast<std::int64_t>(b);
  if (sb == 0) return a;  // rem by zero -> dividend
  if (sa == std::numeric_limits<std::int64_t>::min() && sb == -1) return 0;
  return static_cast<std::uint64_t>(sa % sb);
}

std::uint64_t rv_rem_u(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? a : a % b;
}

std::optional<std::uint64_t> const_eval(const Expr& e, std::uint64_t pc,
                                        unsigned ilen, const RegResolver& regs,
                                        const MemReader& mem) {
  auto kid = [&](unsigned i) {
    return const_eval(*e.kids[i], pc, ilen, regs, mem);
  };
  switch (e.op) {
    case Op::Const:
      return static_cast<std::uint64_t>(e.value);
    case Op::Reg:
      return regs ? regs(e.reg) : std::nullopt;
    case Op::Pc:
      return pc;
    case Op::InsnLen:
      return static_cast<std::uint64_t>(ilen);
    case Op::Mem: {
      if (!mem) return std::nullopt;
      auto addr = kid(0);
      if (!addr) return std::nullopt;
      auto raw = mem(*addr, e.size);
      if (!raw) return std::nullopt;
      if (e.sign_extend)
        return static_cast<std::uint64_t>(sext(*raw, e.size * 8));
      return zext(*raw, e.size * 8);
    }
    case Op::Clz: {
      auto a = kid(0);
      if (!a) return std::nullopt;
      return *a == 0 ? 64ull
                     : static_cast<std::uint64_t>(__builtin_clzll(*a));
    }
    case Op::Ctz: {
      auto a = kid(0);
      if (!a) return std::nullopt;
      return *a == 0 ? 64ull
                     : static_cast<std::uint64_t>(__builtin_ctzll(*a));
    }
    case Op::Cpop: {
      auto a = kid(0);
      if (!a) return std::nullopt;
      return static_cast<std::uint64_t>(__builtin_popcountll(*a));
    }
    case Op::Rev8: {
      auto a = kid(0);
      if (!a) return std::nullopt;
      return __builtin_bswap64(*a);
    }
    case Op::OrcB: {
      auto a = kid(0);
      if (!a) return std::nullopt;
      std::uint64_t out = 0;
      for (unsigned i = 0; i < 8; ++i)
        if ((*a >> (8 * i)) & 0xff) out |= 0xffULL << (8 * i);
      return out;
    }
    case Op::Sext32: {
      auto a = kid(0);
      if (!a) return std::nullopt;
      return static_cast<std::uint64_t>(sext(*a, 32));
    }
    case Op::Trunc32: {
      auto a = kid(0);
      if (!a) return std::nullopt;
      return zext(*a, 32);
    }
    case Op::Unknown:
      return std::nullopt;
    default:
      break;
  }
  // Binary operators.
  auto a = kid(0);
  auto b = kid(1);
  if (!a || !b) return std::nullopt;
  const std::uint64_t x = *a, y = *b;
  switch (e.op) {
    case Op::Add: return x + y;
    case Op::Sub: return x - y;
    case Op::Mul: return x * y;
    case Op::Divs: return rv_div_s(x, y);
    case Op::Divu: return rv_div_u(x, y);
    case Op::Rems: return rv_rem_s(x, y);
    case Op::Remu: return rv_rem_u(x, y);
    case Op::And: return x & y;
    case Op::Or: return x | y;
    case Op::Xor: return x ^ y;
    case Op::Shl: return x << (y & 63);
    case Op::Shru: return x >> (y & 63);
    case Op::Shrs:
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(x) >>
                                        (y & 63));
    case Op::SltS:
      return static_cast<std::int64_t>(x) < static_cast<std::int64_t>(y) ? 1u
                                                                         : 0u;
    case Op::SltU: return x < y ? 1u : 0u;
    case Op::Eq: return x == y ? 1u : 0u;
    case Op::Ne: return x != y ? 1u : 0u;
    case Op::Rol: {
      const unsigned n = y & 63;
      return n == 0 ? x : (x << n) | (x >> (64 - n));
    }
    case Op::Ror: {
      const unsigned n = y & 63;
      return n == 0 ? x : (x >> n) | (x << (64 - n));
    }
    case Op::MaxS:
      return static_cast<std::int64_t>(x) > static_cast<std::int64_t>(y) ? x : y;
    case Op::MaxU: return x > y ? x : y;
    case Op::MinS:
      return static_cast<std::int64_t>(x) < static_cast<std::int64_t>(y) ? x : y;
    case Op::MinU: return x < y ? x : y;
    default: return std::nullopt;
  }
}

}  // namespace rvdyn::semantics
