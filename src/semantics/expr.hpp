// Instruction-semantics IR (the paper's SAIL pipeline substitute, §3.2.4).
//
// The paper derives DataflowAPI's instruction semantics from the official
// SAIL specification via an OCaml->JSON->C++ pipeline that strips SAIL's
// error-handling noise and keeps only the value semantics. We reproduce the
// same architecture with a compact declarative spec language: each mnemonic
// has a one-line spec string ("rd = rs1 + sx(imm)" style, see spec.cpp)
// that is parsed once at startup into the expression trees below. Adding a
// new extension means adding spec strings — no analysis code changes,
// matching the paper's "rerun the pipeline" property.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/instruction.hpp"

namespace rvdyn::semantics {

/// Expression operators. Arithmetic follows RV64 semantics (64-bit two's
/// complement; W-ops modelled with Sext32/Trunc32).
enum class Op : std::uint8_t {
  Const,    ///< literal (value in `value`)
  Reg,      ///< architectural register read (`reg`)
  Pc,       ///< address of the instruction being evaluated
  InsnLen,  ///< encoded length of the instruction (2 or 4)
  Mem,      ///< memory read: kids[0] = address; `size`, `sign_extend`
  Add, Sub, Mul, Divs, Divu, Rems, Remu,
  And, Or, Xor,
  Shl, Shru, Shrs,
  SltS, SltU,   ///< comparisons producing 0/1
  Eq, Ne,
  Sext32, Trunc32,
  // Zbb bit-manipulation primitives (paper §3.4 extension growth).
  Clz, Ctz, Cpop,     ///< unary counts over 64 bits
  Rev8, OrcB,         ///< byte reverse / byte-wise or-combine
  Rol, Ror,           ///< 64-bit rotates
  MaxS, MaxU, MinS, MinU,
  Unknown,  ///< value not modelled (FP results, CSR reads, ...)
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable expression-tree node.
struct Expr {
  Op op = Op::Unknown;
  std::int64_t value = 0;   ///< Const
  isa::Reg reg{};           ///< Reg
  std::uint8_t size = 0;    ///< Mem: access size in bytes
  bool sign_extend = false; ///< Mem: sign- vs zero-extend the loaded value
  std::vector<ExprPtr> kids;

  static ExprPtr constant(std::int64_t v) {
    auto e = std::make_shared<Expr>();
    e->op = Op::Const;
    e->value = v;
    return e;
  }
  static ExprPtr reg_read(isa::Reg r) {
    auto e = std::make_shared<Expr>();
    e->op = Op::Reg;
    e->reg = r;
    return e;
  }
  static ExprPtr nullary(Op op) {
    auto e = std::make_shared<Expr>();
    e->op = op;
    return e;
  }
  static ExprPtr unary(Op op, ExprPtr k) {
    auto e = std::make_shared<Expr>();
    e->op = op;
    e->kids.push_back(std::move(k));
    return e;
  }
  static ExprPtr binary(Op op, ExprPtr a, ExprPtr b) {
    auto e = std::make_shared<Expr>();
    e->op = op;
    e->kids.push_back(std::move(a));
    e->kids.push_back(std::move(b));
    return e;
  }
  static ExprPtr mem(ExprPtr addr, std::uint8_t size, bool sign_extend) {
    auto e = std::make_shared<Expr>();
    e->op = Op::Mem;
    e->size = size;
    e->sign_extend = sign_extend;
    e->kids.push_back(std::move(addr));
    return e;
  }
};

/// Value semantics of one concrete instruction: at most one register
/// assignment and at most one memory store (which covers all of RV64GC's
/// integer subset; pc updates are the CFG's concern, not the semantics').
struct InsnSemantics {
  bool has_reg_write = false;
  isa::Reg written_reg{};
  ExprPtr reg_value;  ///< value assigned to written_reg

  bool has_mem_write = false;
  ExprPtr store_addr;
  ExprPtr store_value;
  std::uint8_t store_size = 0;

  /// True when the instruction's semantics are modelled precisely (as
  /// opposed to a conservative "writes Unknown" summary).
  bool precise = false;
};

/// Compute the semantics of a decoded instruction, binding the generic
/// per-mnemonic spec to this instruction's operands. Instructions outside
/// the modelled subset get a conservative summary (written registers
/// assigned Unknown).
InsnSemantics semantics_of(const isa::Instruction& insn);

/// The raw spec string for a mnemonic ("" when the mnemonic has only a
/// conservative summary). Exposed for tests and documentation tooling.
const char* semantics_spec(isa::Mnemonic m);

}  // namespace rvdyn::semantics
