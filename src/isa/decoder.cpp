#include "isa/decoder.hpp"

#include <algorithm>
#include <vector>

#include "common/bits.hpp"
#include "isa/decode_table.hpp"
#include "obs/metrics.hpp"

namespace rvdyn::isa {

namespace {

// ---- reference 32-bit decoding: bucketed match/mask scan ----
//
// This is the original implementation, kept as the oracle for the table
// fast path (tests/test_decode_fastpath.cpp runs both over millions of
// random words and requires identical results).

struct Buckets {
  // Index by the 7-bit major opcode; each bucket is sorted most-specific
  // (largest mask population) first so full matches win over field matches,
  // with the mnemonic index as a deterministic tie-break (the dispatch
  // table sorts identically).
  std::vector<const OpcodeInfo*> by_opcode[128];

  Buckets() {
    for (std::uint16_t m = 0; m < static_cast<std::uint16_t>(Mnemonic::kCount);
         ++m) {
      const OpcodeInfo& info = opcode_info(static_cast<Mnemonic>(m));
      by_opcode[info.match & 0x7f].push_back(&info);
    }
    for (auto& bucket : by_opcode) {
      std::sort(bucket.begin(), bucket.end(),
                [](const OpcodeInfo* a, const OpcodeInfo* b) {
                  const int pa = __builtin_popcount(a->mask);
                  const int pb = __builtin_popcount(b->mask);
                  if (pa != pb) return pa > pb;
                  return a->mnemonic < b->mnemonic;
                });
    }
  }
};

const Buckets& buckets() {
  static const Buckets b;
  return b;
}

using detail::imm_b;
using detail::imm_i;
using detail::imm_j;
using detail::imm_s;
using detail::imm_u;

Reg rd_of(std::uint32_t w, RegClass c = RegClass::Int) {
  return Reg(c, static_cast<std::uint8_t>(bits(w, 7, 5)));
}
Reg rs1_of(std::uint32_t w, RegClass c = RegClass::Int) {
  return Reg(c, static_cast<std::uint8_t>(bits(w, 15, 5)));
}
Reg rs2_of(std::uint32_t w, RegClass c = RegClass::Int) {
  return Reg(c, static_cast<std::uint8_t>(bits(w, 20, 5)));
}
Reg rs3_of(std::uint32_t w, RegClass c = RegClass::Fp) {
  return Reg(c, static_cast<std::uint8_t>(bits(w, 27, 5)));
}

// Reference operand builder: interprets the entry's spec string per decode.
// The fast path runs the compiled equivalent (decode_table.cpp).
void build_operands(const OpcodeInfo& info, std::uint32_t w,
                    Instruction* out) {
  for (const char* p = info.spec; *p; ++p) {
    switch (*p) {
      case 'd':
        out->add_operand(Instruction::reg_op(rd_of(w), Operand::kWrite));
        break;
      case 's':
        out->add_operand(Instruction::reg_op(rs1_of(w), Operand::kRead));
        break;
      case 't':
        out->add_operand(Instruction::reg_op(rs2_of(w), Operand::kRead));
        break;
      case 'D':
        out->add_operand(
            Instruction::reg_op(rd_of(w, RegClass::Fp), Operand::kWrite));
        break;
      case 'S':
        out->add_operand(
            Instruction::reg_op(rs1_of(w, RegClass::Fp), Operand::kRead));
        break;
      case 'T':
        out->add_operand(
            Instruction::reg_op(rs2_of(w, RegClass::Fp), Operand::kRead));
        break;
      case 'R':
        out->add_operand(Instruction::reg_op(rs3_of(w), Operand::kRead));
        break;
      case 'i':
        out->add_operand(Instruction::imm_op(imm_i(w)));
        break;
      case 'u':
        out->add_operand(Instruction::imm_op(imm_u(w)));
        break;
      case 'b':
        out->add_operand(Instruction::pcrel_op(imm_b(w)));
        break;
      case 'a':
        out->add_operand(Instruction::pcrel_op(imm_j(w)));
        break;
      case 'z':
        out->add_operand(Instruction::imm_op(static_cast<std::int64_t>(bits(w, 20, 6))));
        break;
      case 'w':
        out->add_operand(Instruction::imm_op(static_cast<std::int64_t>(bits(w, 20, 5))));
        break;
      case 'm': {
        const std::uint8_t access = (info.flags & F_STORE) && !(info.flags & F_LOAD)
                                        ? Operand::kWrite
                                        : Operand::kRead;
        out->add_operand(
            Instruction::mem_op(rs1_of(w), imm_i(w), info.mem_size, access));
        break;
      }
      case 'M':
        out->add_operand(
            Instruction::mem_op(rs1_of(w), imm_s(w), info.mem_size, Operand::kWrite));
        break;
      case 'A': {
        std::uint8_t access = Operand::kNone;
        if (info.flags & F_LOAD) access |= Operand::kRead;
        if (info.flags & F_STORE) access |= Operand::kWrite;
        out->add_operand(Instruction::mem_op(rs1_of(w), 0, info.mem_size, access));
        break;
      }
      case 'c': {
        Operand o;
        o.kind = Operand::Kind::Csr;
        o.imm = static_cast<std::int64_t>(bits(w, 20, 12));
        o.access = Operand::kRW;
        out->add_operand(o);
        break;
      }
      case 'Z':
        out->add_operand(Instruction::imm_op(static_cast<std::int64_t>(bits(w, 15, 5))));
        break;
      case 'x': {
        Operand o;
        o.kind = Operand::Kind::RoundMode;
        o.imm = static_cast<std::int64_t>(bits(w, 12, 3));
        out->add_operand(o);
        break;
      }
      case 'q': {
        Operand o;
        o.kind = Operand::Kind::Ordering;
        o.imm = static_cast<std::int64_t>(bits(w, 25, 2));
        out->add_operand(o);
        break;
      }
      case 'f': {
        Operand o;
        o.kind = Operand::Kind::Ordering;
        o.imm = static_cast<std::int64_t>(bits(w, 20, 12));
        out->add_operand(o);
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace

Decoder::Decoder(ExtensionSet profile) : profile_(profile) {
  // Pay the one-time table construction here rather than inside the first
  // decode: callers measuring decode or fetch latency (benchmarks, the
  // emulator's hot loop) see flat cost from the start.
  (void)detail::dispatch_table();
  (void)detail::rvc_table();
}

Decoder::~Decoder() { publish_stats(); }

void Decoder::publish_stats() const {
#if RVDYN_OBS_ENABLED
  const DecodeStats& s = dstats_;
  if (s.fast32 | s.fast16 | s.fail32 | s.fail16 | s.linear32 | s.linear16) {
    RVDYN_OBS_COUNT_N("rvdyn.isa.decode32.fast", s.fast32);
    RVDYN_OBS_COUNT_N("rvdyn.isa.decode16.fast", s.fast16);
    RVDYN_OBS_COUNT_N("rvdyn.isa.decode32.fail", s.fail32);
    RVDYN_OBS_COUNT_N("rvdyn.isa.decode16.fail", s.fail16);
    RVDYN_OBS_COUNT_N("rvdyn.isa.decode32.linear", s.linear32);
    RVDYN_OBS_COUNT_N("rvdyn.isa.decode16.linear", s.linear16);
    dstats_ = DecodeStats{};
  }
#endif
}

bool Decoder::decode32_linear(std::uint32_t word, Instruction* out) const {
  RVDYN_OBS_STAT(++dstats_.linear32);
  const auto& bucket = buckets().by_opcode[word & 0x7f];
  for (const OpcodeInfo* info : bucket) {
    if ((word & info->mask) != info->match) continue;
    // An out-of-profile match must not mask a less-specific overlapping
    // entry further down the bucket: keep scanning instead of bailing out.
    if (!profile_.has(info->ext)) continue;
    out->set(info->mnemonic, word, 4);
    build_operands(*info, word, out);
    return true;
  }
  return false;
}

bool Decoder::decode32(std::uint32_t word, Instruction* out) const {
  const detail::DispatchTable& t = detail::dispatch_table();
  const std::uint32_t slot_idx = ((word & 0x7f) << 3) | ((word >> 12) & 7);
  const detail::DispatchTable::Slot& slot = t.slots[slot_idx];
  detail::DispatchTable::Range r = slot.all;
  if (slot.f7 >= 0)
    r = t.f7_ranges[static_cast<std::size_t>(slot.f7) + (word >> 25)];
  for (std::uint32_t i = r.begin; i < r.end; ++i) {
    const detail::DecodeEntry& e = t.entries[i];
    if ((word & e.mask) != e.match) continue;
    if (!profile_.has(e.ext)) continue;
    *out = e.proto;
    detail::patch_decoded(e, word, out);
    RVDYN_OBS_STAT(++dstats_.fast32);
    return true;
  }
  RVDYN_OBS_STAT(++dstats_.fail32);
  return false;
}

bool Decoder::decode16(std::uint16_t half, Instruction* out) const {
  if (!profile_.has(Extension::C)) {
    RVDYN_OBS_STAT(++dstats_.fail16);
    return false;
  }
  const Instruction& e = detail::rvc_table()[half];
  if (!e.valid() || !profile_.has(e.extension())) {
    RVDYN_OBS_STAT(++dstats_.fail16);
    return false;
  }
  *out = e;
  RVDYN_OBS_STAT(++dstats_.fast16);
  return true;
}

unsigned Decoder::decode(const std::uint8_t* buf, std::size_t size,
                         Instruction* out) const {
  if (size < 2) return 0;
  const std::uint16_t half =
      static_cast<std::uint16_t>(buf[0] | (buf[1] << 8));
  if (is_compressed_encoding(half)) {
    if (!profile_.has(Extension::C)) return 0;
    return decode16(half, out) ? 2 : 0;
  }
  if (size < 4) return 0;
  const std::uint32_t word = static_cast<std::uint32_t>(buf[0]) |
                             (static_cast<std::uint32_t>(buf[1]) << 8) |
                             (static_cast<std::uint32_t>(buf[2]) << 16) |
                             (static_cast<std::uint32_t>(buf[3]) << 24);
  return decode32(word, out) ? 4 : 0;
}

}  // namespace rvdyn::isa
