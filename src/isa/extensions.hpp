// RISC-V ISA extension model.
//
// The paper's central porting concern (§3.1.1): Dyninst must know which
// extensions a mutatee's processor supports and must never generate
// instrumentation using instructions outside that set. `ExtensionSet` is the
// currency passed from SymtabAPI (which reads it out of the binary) to
// CodeGenAPI (which respects it when emitting code).
#pragma once

#include <cstdint>
#include <string>

namespace rvdyn::isa {

/// Individual ISA extensions relevant to the RV64GC profile (plus hooks for
/// profile growth, e.g. RVA23's vector extension).
enum class Extension : std::uint16_t {
  I = 1 << 0,         ///< base integer ISA (RV64I)
  M = 1 << 1,         ///< integer multiply/divide
  A = 1 << 2,         ///< atomics
  F = 1 << 3,         ///< single-precision floating point
  D = 1 << 4,         ///< double-precision floating point
  C = 1 << 5,         ///< compressed (16-bit) instructions
  Zicsr = 1 << 6,     ///< CSR instructions
  Zifencei = 1 << 7,  ///< instruction-fetch fence
  V = 1 << 8,         ///< vector (RVA23; not yet generated, recognised only)
  Zicond = 1 << 9,    ///< integer conditional ops (RVA23)
  Zba = 1 << 10,      ///< address-generation bit-manip (RVA23)
  Zbb = 1 << 11,      ///< basic bit-manip (RVA23)
};

/// A set of extensions, i.e. the paper's notion of a *profile*.
class ExtensionSet {
 public:
  constexpr ExtensionSet() = default;
  constexpr explicit ExtensionSet(std::uint16_t mask) : mask_(mask) {}

  constexpr bool has(Extension e) const {
    return mask_ & static_cast<std::uint16_t>(e);
  }
  constexpr ExtensionSet& add(Extension e) {
    mask_ |= static_cast<std::uint16_t>(e);
    return *this;
  }
  constexpr ExtensionSet& remove(Extension e) {
    mask_ &= ~static_cast<std::uint16_t>(e);
    return *this;
  }
  constexpr bool operator==(const ExtensionSet&) const = default;
  constexpr std::uint16_t mask() const { return mask_; }

  /// True when every extension in `other` is also in this set.
  constexpr bool includes(ExtensionSet other) const {
    return (mask_ & other.mask()) == other.mask();
  }

  /// The RV64GC profile: IMAFDC + Zicsr + Zifencei (G = IMAFD_Zicsr_Zifencei).
  static constexpr ExtensionSet rv64gc() {
    ExtensionSet s;
    s.add(Extension::I).add(Extension::M).add(Extension::A)
        .add(Extension::F).add(Extension::D).add(Extension::C)
        .add(Extension::Zicsr).add(Extension::Zifencei);
    return s;
  }

  /// RV64G (no compressed instructions).
  static constexpr ExtensionSet rv64g() {
    return rv64gc().remove(Extension::C);
  }

  /// RV64I only.
  static constexpr ExtensionSet rv64i() {
    return ExtensionSet(static_cast<std::uint16_t>(Extension::I));
  }

 private:
  std::uint16_t mask_ = 0;
};

/// Canonical ISA string for an extension set, e.g. "rv64imafdc_zicsr_zifencei".
/// This is the format stored in the ELF .riscv.attributes arch attribute.
std::string isa_string(ExtensionSet s);

/// Parse an ISA string ("rv64gc", "rv64imac_zicsr", ...) into a set.
/// Unknown single-letter or Z-extensions are ignored (forward compatibility).
ExtensionSet parse_isa_string(const std::string& str);

/// Short human name for one extension ("M", "Zicsr", ...).
std::string extension_name(Extension e);

}  // namespace rvdyn::isa
