// Operand programs for JIT template emission (paper §3.2.2's InstructionAPI
// serving a translator): a uniform {rd, srcs, imm, mem} view of an
// instruction's operand list, in the spirit of the decoder's copy-then-
// patch prototypes (decode_table.cpp) — per-mnemonic host-code templates
// are stamped out by patching register-slot offsets and immediates, and
// this program is the recipe describing which slots to patch.
#pragma once

#include <cstdint>

#include "isa/instruction.hpp"

namespace rvdyn::isa {

/// Role-indexed operand view. Register numbers are architectural (0..31)
/// within their class; the consumer maps them to storage offsets.
struct OperandProgram {
  bool has_rd = false;
  bool rd_fp = false;
  unsigned rd = 0;  ///< destination register (first written reg operand)

  unsigned n_src = 0;  ///< read register operands, in operand order
  unsigned src[3] = {};
  bool src_fp[3] = {};

  bool has_imm = false;
  std::int64_t imm = 0;  ///< first Imm/PcRelative operand

  bool has_mem = false;
  unsigned mem_base = 0;  ///< integer base register of the Mem operand
  std::int64_t mem_disp = 0;
  unsigned mem_size = 0;
  bool mem_write = false;
};

inline OperandProgram operand_program(const Instruction& insn) {
  OperandProgram p;
  for (unsigned i = 0; i < insn.num_operands(); ++i) {
    const Operand& o = insn.operand(i);
    switch (o.kind) {
      case Operand::Kind::Reg:
        if (o.writes() && !p.has_rd) {
          p.has_rd = true;
          p.rd = o.reg.num;
          p.rd_fp = o.reg.cls == RegClass::Fp;
        }
        if (o.reads() && p.n_src < 3) {
          p.src[p.n_src] = o.reg.num;
          p.src_fp[p.n_src] = o.reg.cls == RegClass::Fp;
          ++p.n_src;
        }
        break;
      case Operand::Kind::Imm:
      case Operand::Kind::PcRelative:
        if (!p.has_imm) {
          p.has_imm = true;
          p.imm = o.imm;
        }
        break;
      case Operand::Kind::Mem:
        p.has_mem = true;
        p.mem_base = o.reg.num;
        p.mem_disp = o.imm;
        p.mem_size = o.size;
        p.mem_write = o.writes();
        break;
      default:  // Csr / RoundMode / Ordering carry no template slots
        break;
    }
  }
  return p;
}

}  // namespace rvdyn::isa
