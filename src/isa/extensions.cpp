#include "isa/extensions.hpp"

#include <cctype>

namespace rvdyn::isa {

std::string extension_name(Extension e) {
  switch (e) {
    case Extension::I: return "I";
    case Extension::M: return "M";
    case Extension::A: return "A";
    case Extension::F: return "F";
    case Extension::D: return "D";
    case Extension::C: return "C";
    case Extension::Zicsr: return "Zicsr";
    case Extension::Zifencei: return "Zifencei";
    case Extension::V: return "V";
    case Extension::Zicond: return "Zicond";
    case Extension::Zba: return "Zba";
    case Extension::Zbb: return "Zbb";
  }
  return "?";
}

std::string isa_string(ExtensionSet s) {
  std::string out = "rv64";
  if (s.has(Extension::I)) out += 'i';
  if (s.has(Extension::M)) out += 'm';
  if (s.has(Extension::A)) out += 'a';
  if (s.has(Extension::F)) out += 'f';
  if (s.has(Extension::D)) out += 'd';
  if (s.has(Extension::C)) out += 'c';
  if (s.has(Extension::V)) out += 'v';
  if (s.has(Extension::Zicsr)) out += "_zicsr";
  if (s.has(Extension::Zifencei)) out += "_zifencei";
  if (s.has(Extension::Zicond)) out += "_zicond";
  if (s.has(Extension::Zba)) out += "_zba";
  if (s.has(Extension::Zbb)) out += "_zbb";
  return out;
}

ExtensionSet parse_isa_string(const std::string& str) {
  ExtensionSet s;
  std::string lower;
  lower.reserve(str.size());
  for (char c : str) lower += static_cast<char>(std::tolower(c));

  std::size_t i = 0;
  if (lower.rfind("rv64", 0) == 0 || lower.rfind("rv32", 0) == 0) i = 4;

  while (i < lower.size()) {
    const char c = lower[i];
    if (c == '_') {
      ++i;
      continue;
    }
    if (c == 'z' || c == 's' || c == 'x') {
      // Multi-letter extension: runs to the next '_' or end. Version digits
      // at the tail ("zicsr2p0") are part of the token; strip them.
      std::size_t end = lower.find('_', i);
      if (end == std::string::npos) end = lower.size();
      std::string tok = lower.substr(i, end - i);
      while (!tok.empty() && (std::isdigit(tok.back()) || tok.back() == 'p'))
        tok.pop_back();
      if (tok == "zicsr") s.add(Extension::Zicsr);
      else if (tok == "zifencei") s.add(Extension::Zifencei);
      else if (tok == "zicond") s.add(Extension::Zicond);
      else if (tok == "zba") s.add(Extension::Zba);
      else if (tok == "zbb") s.add(Extension::Zbb);
      // Unknown tokens are skipped for forward compatibility.
      i = end;
      continue;
    }
    switch (c) {
      case 'i': s.add(Extension::I); break;
      case 'e': s.add(Extension::I); break;  // RV64E treated as I subset
      case 'm': s.add(Extension::M); break;
      case 'a': s.add(Extension::A); break;
      case 'f': s.add(Extension::F); break;
      case 'd': s.add(Extension::F).add(Extension::D); break;
      case 'c': s.add(Extension::C); break;
      case 'v': s.add(Extension::V); break;
      case 'g':
        s.add(Extension::I).add(Extension::M).add(Extension::A)
            .add(Extension::F).add(Extension::D)
            .add(Extension::Zicsr).add(Extension::Zifencei);
        break;
      default: break;  // version digits like "2p1" between letters
    }
    ++i;
    // Skip version suffix digits/p after a single-letter extension.
    while (i < lower.size() &&
           (std::isdigit(lower[i]) || lower[i] == 'p'))
      ++i;
  }
  return s;
}

}  // namespace rvdyn::isa
