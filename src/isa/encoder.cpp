#include "isa/encoder.hpp"

#include <vector>

#include "common/bits.hpp"
#include "isa/decoder.hpp"

namespace rvdyn::isa {

namespace {

[[noreturn]] void fail(Mnemonic mn, const std::string& why) {
  throw Error("encode " + mnemonic_name(mn) + ": " + why);
}

std::uint32_t enc_reg(Mnemonic mn, const Operand& op, unsigned lo) {
  if (op.kind != Operand::Kind::Reg) fail(mn, "expected register operand");
  return place(op.reg.num, lo, 5);
}

std::uint32_t enc_base(Mnemonic mn, const Operand& op) {
  if (op.kind != Operand::Kind::Mem) fail(mn, "expected memory operand");
  return place(op.reg.num, 15, 5);
}

std::uint32_t enc_imm_i(Mnemonic mn, std::int64_t v) {
  if (!fits_signed(v, 12)) fail(mn, "I-immediate out of range");
  return place(static_cast<std::uint32_t>(v & 0xfff), 20, 12);
}

std::uint32_t enc_imm_s(Mnemonic mn, std::int64_t v) {
  if (!fits_signed(v, 12)) fail(mn, "S-immediate out of range");
  const auto u = static_cast<std::uint32_t>(v & 0xfff);
  return place(u >> 5, 25, 7) | place(u & 0x1f, 7, 5);
}

std::uint32_t enc_imm_b(Mnemonic mn, std::int64_t v) {
  if (!fits_signed(v, 13) || (v & 1)) fail(mn, "branch offset out of range");
  const auto u = static_cast<std::uint32_t>(v & 0x1fff);
  return place(u >> 12, 31, 1) | place((u >> 5) & 0x3f, 25, 6) |
         place((u >> 1) & 0xf, 8, 4) | place((u >> 11) & 1, 7, 1);
}

std::uint32_t enc_imm_u(Mnemonic mn, std::int64_t v) {
  // Stored as the effective constant (value << 12); must be 4KiB-aligned
  // and the upper field must fit in 20 signed bits.
  if (v & 0xfff) fail(mn, "U-immediate not 4KiB-aligned");
  const std::int64_t field = v >> 12;
  if (!fits_signed(field, 20)) fail(mn, "U-immediate out of range");
  return place(static_cast<std::uint32_t>(field & 0xfffff), 12, 20);
}

std::uint32_t enc_imm_j(Mnemonic mn, std::int64_t v) {
  if (!fits_signed(v, 21) || (v & 1)) fail(mn, "jal offset out of range");
  const auto u = static_cast<std::uint32_t>(v & 0x1fffff);
  return place(u >> 20, 31, 1) | place((u >> 1) & 0x3ff, 21, 10) |
         place((u >> 11) & 1, 20, 1) | place((u >> 12) & 0xff, 12, 8);
}

}  // namespace

std::uint32_t encode32(Mnemonic mn, std::span<const Operand> ops) {
  const OpcodeInfo& info = opcode_info(mn);
  if (info.mnemonic == Mnemonic::kInvalid) fail(mn, "unknown mnemonic");

  std::uint32_t word = info.match;
  std::size_t oi = 0;
  auto next = [&]() -> const Operand& {
    if (oi >= ops.size()) fail(mn, "missing operand");
    return ops[oi++];
  };

  for (const char* p = info.spec; *p; ++p) {
    switch (*p) {
      case 'd':
      case 'D':
        word |= enc_reg(mn, next(), 7);
        break;
      case 's':
      case 'S':
        word |= enc_reg(mn, next(), 15);
        break;
      case 't':
      case 'T':
        word |= enc_reg(mn, next(), 20);
        break;
      case 'R':
        word |= enc_reg(mn, next(), 27);
        break;
      case 'i':
        word |= enc_imm_i(mn, next().imm);
        break;
      case 'u':
        word |= enc_imm_u(mn, next().imm);
        break;
      case 'b':
        word |= enc_imm_b(mn, next().imm);
        break;
      case 'a':
        word |= enc_imm_j(mn, next().imm);
        break;
      case 'z': {
        const std::int64_t sh = next().imm;
        if (sh < 0 || sh > 63) fail(mn, "shift amount out of range");
        word |= place(static_cast<std::uint32_t>(sh), 20, 6);
        break;
      }
      case 'w': {
        const std::int64_t sh = next().imm;
        if (sh < 0 || sh > 31) fail(mn, "shift amount out of range");
        word |= place(static_cast<std::uint32_t>(sh), 20, 5);
        break;
      }
      case 'm': {
        const Operand& op = next();
        word |= enc_base(mn, op) | enc_imm_i(mn, op.imm);
        break;
      }
      case 'M': {
        const Operand& op = next();
        word |= enc_base(mn, op) | enc_imm_s(mn, op.imm);
        break;
      }
      case 'A': {
        const Operand& op = next();
        if (op.imm != 0) fail(mn, "atomic operand must have zero offset");
        word |= enc_base(mn, op);
        break;
      }
      case 'c': {
        const Operand& op = next();
        if (!fits_unsigned(static_cast<std::uint64_t>(op.imm), 12))
          fail(mn, "CSR number out of range");
        word |= place(static_cast<std::uint32_t>(op.imm), 20, 12);
        break;
      }
      case 'Z': {
        const std::int64_t z = next().imm;
        if (z < 0 || z > 31) fail(mn, "zimm out of range");
        word |= place(static_cast<std::uint32_t>(z), 15, 5);
        break;
      }
      case 'x': {
        // Rounding mode defaults to dynamic (0b111) when not supplied.
        std::uint32_t rm = 7;
        if (oi < ops.size() && ops[oi].kind == Operand::Kind::RoundMode)
          rm = static_cast<std::uint32_t>(ops[oi++].imm & 7);
        word |= place(rm, 12, 3);
        break;
      }
      case 'q': {
        // aq/rl ordering bits: optional, relaxed (00) when not supplied.
        std::uint32_t aqrl = 0;
        if (oi < ops.size() && ops[oi].kind == Operand::Kind::Ordering)
          aqrl = static_cast<std::uint32_t>(ops[oi++].imm & 3);
        word |= place(aqrl, 25, 2);
        break;
      }
      case 'f': {
        // fence fm:pred:succ: optional; the bare `fence` mnemonic keeps its
        // historical all-zero field here (decoded fences carry the operand,
        // so rewriting preserves the original ordering sets).
        std::uint32_t sets = 0;
        if (oi < ops.size() && ops[oi].kind == Operand::Kind::Ordering)
          sets = static_cast<std::uint32_t>(ops[oi++].imm & 0xfff);
        word |= place(sets, 20, 12);
        break;
      }
      default:
        fail(mn, std::string("bad spec char '") + *p + "'");
    }
  }
  return word;
}

Instruction assemble(Mnemonic mn, std::span<const Operand> ops) {
  const std::uint32_t word = encode32(mn, ops);
  Instruction out;
  // The round-trip validator accepts every known extension; profile
  // gating is the caller's concern.
  static const Decoder dec(ExtensionSet(0xffff));
  if (!dec.decode32(word, &out) || out.mnemonic() != mn)
    fail(mn, "encoder/decoder disagreement");
  return out;
}

Instruction assemble(Mnemonic mn, std::initializer_list<Operand> ops) {
  return assemble(mn, std::span<const Operand>(ops.begin(), ops.size()));
}

std::optional<Instruction> expand16(std::uint16_t half) {
  static const Decoder dec(ExtensionSet::rv64gc());
  Instruction out;
  if (!dec.decode16(half, &out)) return std::nullopt;
  return out;
}

}  // namespace rvdyn::isa
