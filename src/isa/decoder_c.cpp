// C-extension (compressed, 16-bit) instruction decoding.
//
// Each compressed encoding expands to its canonical base-ISA instruction
// (c.add -> add, c.j -> jal x0, ...) so downstream components see one
// uniform instruction set; Instruction::compressed()/length() preserve the
// true encoding size, which is what the patcher cares about (§3.1.2).
#include "common/bits.hpp"
#include "isa/decoder.hpp"
#include "obs/metrics.hpp"

namespace rvdyn::isa {

namespace {

Reg cr(std::uint64_t threebits) {  // compressed register: x8..x15 / f8..f15
  return x(static_cast<std::uint8_t>(8 + threebits));
}
Reg crf(std::uint64_t threebits) {
  return f(static_cast<std::uint8_t>(8 + threebits));
}

void start(Instruction* out, Mnemonic mn, std::uint16_t half) {
  out->set(mn, half, 2);
}

void emit_load(Instruction* out, std::uint16_t half, Mnemonic mn, Reg rd,
               Reg base, std::int64_t off, std::uint8_t size) {
  start(out, mn, half);
  out->add_operand(Instruction::reg_op(rd, Operand::kWrite));
  out->add_operand(Instruction::mem_op(base, off, size, Operand::kRead));
}

void emit_store(Instruction* out, std::uint16_t half, Mnemonic mn, Reg rs,
                Reg base, std::int64_t off, std::uint8_t size) {
  start(out, mn, half);
  out->add_operand(Instruction::reg_op(rs, Operand::kRead));
  out->add_operand(Instruction::mem_op(base, off, size, Operand::kWrite));
}

void emit_rri(Instruction* out, std::uint16_t half, Mnemonic mn, Reg rd,
              Reg rs1, std::int64_t imm) {
  start(out, mn, half);
  out->add_operand(Instruction::reg_op(rd, Operand::kWrite));
  out->add_operand(Instruction::reg_op(rs1, Operand::kRead));
  out->add_operand(Instruction::imm_op(imm));
}

void emit_rrr(Instruction* out, std::uint16_t half, Mnemonic mn, Reg rd,
              Reg rs1, Reg rs2) {
  start(out, mn, half);
  out->add_operand(Instruction::reg_op(rd, Operand::kWrite));
  out->add_operand(Instruction::reg_op(rs1, Operand::kRead));
  out->add_operand(Instruction::reg_op(rs2, Operand::kRead));
}

bool decode_q0(std::uint16_t h, const Decoder& dec, Instruction* out) {
  const auto f3 = bits(h, 13, 3);
  const Reg rdp = cr(bits(h, 2, 3));
  const Reg rs1p = cr(bits(h, 7, 3));
  switch (f3) {
    case 0b000: {  // c.addi4spn
      const std::uint64_t imm = (bits(h, 11, 2) << 4) | (bits(h, 7, 4) << 6) |
                                (bit(h, 6) << 2) | (bit(h, 5) << 3);
      if (imm == 0) return false;  // includes the all-zero illegal encoding
      emit_rri(out, h, Mnemonic::addi, rdp, sp,
               static_cast<std::int64_t>(imm));
      return true;
    }
    case 0b001: {  // c.fld
      if (!dec.profile().has(Extension::D)) return false;
      const std::int64_t imm =
          static_cast<std::int64_t>((bits(h, 10, 3) << 3) | (bits(h, 5, 2) << 6));
      emit_load(out, h, Mnemonic::fld, crf(bits(h, 2, 3)), rs1p, imm, 8);
      return true;
    }
    case 0b010: {  // c.lw
      const std::int64_t imm = static_cast<std::int64_t>(
          (bits(h, 10, 3) << 3) | (bit(h, 6) << 2) | (bit(h, 5) << 6));
      emit_load(out, h, Mnemonic::lw, rdp, rs1p, imm, 4);
      return true;
    }
    case 0b011: {  // c.ld (RV64)
      const std::int64_t imm =
          static_cast<std::int64_t>((bits(h, 10, 3) << 3) | (bits(h, 5, 2) << 6));
      emit_load(out, h, Mnemonic::ld, rdp, rs1p, imm, 8);
      return true;
    }
    case 0b101: {  // c.fsd
      if (!dec.profile().has(Extension::D)) return false;
      const std::int64_t imm =
          static_cast<std::int64_t>((bits(h, 10, 3) << 3) | (bits(h, 5, 2) << 6));
      emit_store(out, h, Mnemonic::fsd, crf(bits(h, 2, 3)), rs1p, imm, 8);
      return true;
    }
    case 0b110: {  // c.sw
      const std::int64_t imm = static_cast<std::int64_t>(
          (bits(h, 10, 3) << 3) | (bit(h, 6) << 2) | (bit(h, 5) << 6));
      emit_store(out, h, Mnemonic::sw, rdp, rs1p, imm, 4);
      return true;
    }
    case 0b111: {  // c.sd (RV64)
      const std::int64_t imm =
          static_cast<std::int64_t>((bits(h, 10, 3) << 3) | (bits(h, 5, 2) << 6));
      emit_store(out, h, Mnemonic::sd, rdp, rs1p, imm, 8);
      return true;
    }
    default:
      return false;  // 0b100 reserved
  }
}

bool decode_q1(std::uint16_t h, Instruction* out) {
  const auto f3 = bits(h, 13, 3);
  const Reg rd = x(static_cast<std::uint8_t>(bits(h, 7, 5)));
  const std::int64_t imm6 = sext((bit(h, 12) << 5) | bits(h, 2, 5), 6);
  switch (f3) {
    case 0b000:  // c.addi / c.nop
      emit_rri(out, h, Mnemonic::addi, rd, rd, imm6);
      return true;
    case 0b001:  // c.addiw (RV64)
      if (rd == zero) return false;
      emit_rri(out, h, Mnemonic::addiw, rd, rd, imm6);
      return true;
    case 0b010:  // c.li
      emit_rri(out, h, Mnemonic::addi, rd, zero, imm6);
      return true;
    case 0b011: {
      if (rd.num == 2) {  // c.addi16sp
        const std::int64_t imm =
            sext((bit(h, 12) << 9) | (bit(h, 6) << 4) | (bit(h, 5) << 6) |
                     (bits(h, 3, 2) << 7) | (bit(h, 2) << 5),
                 10);
        if (imm == 0) return false;
        emit_rri(out, h, Mnemonic::addi, sp, sp, imm);
        return true;
      }
      if (rd == zero) return false;
      const std::int64_t imm =
          sext((bit(h, 12) << 17) | (bits(h, 2, 5) << 12), 18);
      if (imm == 0) return false;  // c.lui imm 0 is reserved
      start(out, Mnemonic::lui, h);
      out->add_operand(Instruction::reg_op(rd, Operand::kWrite));
      out->add_operand(Instruction::imm_op(imm));
      return true;
    }
    case 0b100: {
      const Reg rdp = cr(bits(h, 7, 3));
      const Reg rs2p = cr(bits(h, 2, 3));
      switch (bits(h, 10, 2)) {
        case 0b00: {  // c.srli
          const std::int64_t sh =
              static_cast<std::int64_t>((bit(h, 12) << 5) | bits(h, 2, 5));
          emit_rri(out, h, Mnemonic::srli, rdp, rdp, sh);
          return true;
        }
        case 0b01: {  // c.srai
          const std::int64_t sh =
              static_cast<std::int64_t>((bit(h, 12) << 5) | bits(h, 2, 5));
          emit_rri(out, h, Mnemonic::srai, rdp, rdp, sh);
          return true;
        }
        case 0b10:  // c.andi
          emit_rri(out, h, Mnemonic::andi, rdp, rdp, imm6);
          return true;
        case 0b11: {
          if (bit(h, 12) == 0) {
            static constexpr Mnemonic kOps[4] = {Mnemonic::sub, Mnemonic::xor_,
                                                 Mnemonic::or_, Mnemonic::and_};
            emit_rrr(out, h, kOps[bits(h, 5, 2)], rdp, rdp, rs2p);
            return true;
          }
          switch (bits(h, 5, 2)) {
            case 0b00:
              emit_rrr(out, h, Mnemonic::subw, rdp, rdp, rs2p);
              return true;
            case 0b01:
              emit_rrr(out, h, Mnemonic::addw, rdp, rdp, rs2p);
              return true;
            default:
              return false;
          }
        }
      }
      return false;
    }
    case 0b101: {  // c.j
      const std::int64_t off =
          sext((bit(h, 12) << 11) | (bit(h, 11) << 4) | (bits(h, 9, 2) << 8) |
                   (bit(h, 8) << 10) | (bit(h, 7) << 6) | (bit(h, 6) << 7) |
                   (bits(h, 3, 3) << 1) | (bit(h, 2) << 5),
               12);
      start(out, Mnemonic::jal, h);
      out->add_operand(Instruction::reg_op(zero, Operand::kWrite));
      out->add_operand(Instruction::pcrel_op(off));
      return true;
    }
    case 0b110:    // c.beqz
    case 0b111: {  // c.bnez
      const std::int64_t off =
          sext((bit(h, 12) << 8) | (bits(h, 10, 2) << 3) |
                   (bits(h, 5, 2) << 6) | (bits(h, 3, 2) << 1) |
                   (bit(h, 2) << 5),
               9);
      start(out, f3 == 0b110 ? Mnemonic::beq : Mnemonic::bne, h);
      out->add_operand(Instruction::reg_op(cr(bits(h, 7, 3)), Operand::kRead));
      out->add_operand(Instruction::reg_op(zero, Operand::kRead));
      out->add_operand(Instruction::pcrel_op(off));
      return true;
    }
    default:
      return false;
  }
}

bool decode_q2(std::uint16_t h, const Decoder& dec, Instruction* out) {
  const auto f3 = bits(h, 13, 3);
  const Reg rd = x(static_cast<std::uint8_t>(bits(h, 7, 5)));
  const Reg rs2 = x(static_cast<std::uint8_t>(bits(h, 2, 5)));
  switch (f3) {
    case 0b000: {  // c.slli
      const std::int64_t sh =
          static_cast<std::int64_t>((bit(h, 12) << 5) | bits(h, 2, 5));
      emit_rri(out, h, Mnemonic::slli, rd, rd, sh);
      return true;
    }
    case 0b001: {  // c.fldsp
      if (!dec.profile().has(Extension::D)) return false;
      const std::int64_t imm = static_cast<std::int64_t>(
          (bit(h, 12) << 5) | (bits(h, 5, 2) << 3) | (bits(h, 2, 3) << 6));
      emit_load(out, h, Mnemonic::fld,
                f(static_cast<std::uint8_t>(bits(h, 7, 5))), sp, imm, 8);
      return true;
    }
    case 0b010: {  // c.lwsp
      if (rd == zero) return false;
      const std::int64_t imm = static_cast<std::int64_t>(
          (bit(h, 12) << 5) | (bits(h, 4, 3) << 2) | (bits(h, 2, 2) << 6));
      emit_load(out, h, Mnemonic::lw, rd, sp, imm, 4);
      return true;
    }
    case 0b011: {  // c.ldsp (RV64)
      if (rd == zero) return false;
      const std::int64_t imm = static_cast<std::int64_t>(
          (bit(h, 12) << 5) | (bits(h, 5, 2) << 3) | (bits(h, 2, 3) << 6));
      emit_load(out, h, Mnemonic::ld, rd, sp, imm, 8);
      return true;
    }
    case 0b100: {
      if (bit(h, 12) == 0) {
        if (rs2 == zero) {  // c.jr
          if (rd == zero) return false;
          emit_rri(out, h, Mnemonic::jalr, zero, rd, 0);
          return true;
        }
        emit_rrr(out, h, Mnemonic::add, rd, zero, rs2);  // c.mv
        return true;
      }
      if (rd == zero && rs2 == zero) {  // c.ebreak
        start(out, Mnemonic::ebreak, h);
        return true;
      }
      if (rs2 == zero) {  // c.jalr
        emit_rri(out, h, Mnemonic::jalr, ra, rd, 0);
        return true;
      }
      emit_rrr(out, h, Mnemonic::add, rd, rd, rs2);  // c.add
      return true;
    }
    case 0b101: {  // c.fsdsp
      if (!dec.profile().has(Extension::D)) return false;
      const std::int64_t imm = static_cast<std::int64_t>(
          (bits(h, 10, 3) << 3) | (bits(h, 7, 3) << 6));
      emit_store(out, h, Mnemonic::fsd,
                 f(static_cast<std::uint8_t>(bits(h, 2, 5))), sp, imm, 8);
      return true;
    }
    case 0b110: {  // c.swsp
      const std::int64_t imm = static_cast<std::int64_t>(
          (bits(h, 9, 4) << 2) | (bits(h, 7, 2) << 6));
      emit_store(out, h, Mnemonic::sw, rs2, sp, imm, 4);
      return true;
    }
    case 0b111: {  // c.sdsp
      const std::int64_t imm = static_cast<std::int64_t>(
          (bits(h, 10, 3) << 3) | (bits(h, 7, 3) << 6));
      emit_store(out, h, Mnemonic::sd, rs2, sp, imm, 8);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

bool Decoder::decode16_linear(std::uint16_t half, Instruction* out) const {
  RVDYN_OBS_STAT(++dstats_.linear16);
  if (!profile_.has(Extension::C)) return false;
  bool ok;
  switch (half & 0x3) {
    case 0b00:
      ok = decode_q0(half, *this, out);
      break;
    case 0b01:
      ok = decode_q1(half, out);
      break;
    case 0b10:
      ok = decode_q2(half, *this, out);
      break;
    default:
      return false;  // 0b11 is a 32-bit encoding
  }
  // Uniform profile gating on the expansion's extension, matching the table
  // path (the quadrant D checks above are redundant with this for profiles
  // that include the base ISA, but keep both paths bit-identical).
  return ok && profile_.has(out->extension());
}

}  // namespace rvdyn::isa
