#include "isa/imm_builder.hpp"

#include "common/bits.hpp"
#include "isa/encoder.hpp"

namespace rvdyn::isa {

namespace {

void emit(std::vector<Instruction>* out, Mnemonic mn,
          std::initializer_list<Operand> ops) {
  out->push_back(assemble(mn, ops));
}

}  // namespace

bool split_hi_lo(std::int64_t value, std::int64_t* hi, std::int64_t* lo) {
  // Round to the nearest 4KiB so the low part stays in addi range.
  const std::int64_t h = (value + 0x800) & ~std::int64_t(0xfff);
  const std::int64_t l = value - h;
  // The hi part must fit the 20-bit (shifted) U-type field.
  if (!fits_signed(h >> 12, 20)) return false;
  *hi = h;
  *lo = l;
  return true;
}

void materialize_imm(Reg rd, std::int64_t value,
                     std::vector<Instruction>* out) {
  if (fits_signed(value, 12)) {
    emit(out, Mnemonic::addi,
         {Instruction::reg_op(rd, Operand::kWrite),
          Instruction::reg_op(zero, Operand::kRead),
          Instruction::imm_op(value)});
    return;
  }
  if (fits_signed(value, 32)) {
    // lui + addiw: addiw's sext32 makes the pair exact for every 32-bit
    // signed value, including the 0x7ffff800..0x7fffffff corner where the
    // rounded hi part overflows into the sign bit.
    const std::int64_t hi = (value + 0x800) & ~std::int64_t(0xfff);
    const std::int64_t lo = value - hi;
    emit(out, Mnemonic::lui,
         {Instruction::reg_op(rd, Operand::kWrite),
          Instruction::imm_op(static_cast<std::int64_t>(
              sext(static_cast<std::uint64_t>(hi), 32)))});
    if (lo != 0 || hi == 0) {
      emit(out, Mnemonic::addiw,
           {Instruction::reg_op(rd, Operand::kWrite),
            Instruction::reg_op(rd, Operand::kRead),
            Instruction::imm_op(lo)});
    }
    return;
  }
  // General 64-bit: peel the low 12 bits, materialize the rest, shift back.
  const std::int64_t lo12 = sext(static_cast<std::uint64_t>(value), 12);
  const std::int64_t rest = (value - lo12) >> 12;
  materialize_imm(rd, rest, out);
  emit(out, Mnemonic::slli,
       {Instruction::reg_op(rd, Operand::kWrite),
        Instruction::reg_op(rd, Operand::kRead), Instruction::imm_op(12)});
  if (lo12 != 0) {
    emit(out, Mnemonic::addi,
         {Instruction::reg_op(rd, Operand::kWrite),
          Instruction::reg_op(rd, Operand::kRead),
          Instruction::imm_op(lo12)});
  }
}

}  // namespace rvdyn::isa
