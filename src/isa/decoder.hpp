// RV64GC machine-code decoder (the paper's Capstone substitute, §3.2.2).
//
// Decodes standard 32-bit encodings via the shared opcode table and
// 16-bit C-extension encodings by expansion to their canonical base-ISA
// form. The decoder is restricted to a profile (ExtensionSet): bytes that
// decode to an instruction outside the profile are reported as invalid,
// mirroring how a real hart without that extension would trap.
#pragma once

#include <cstddef>
#include <cstdint>

#include "isa/extensions.hpp"
#include "isa/instruction.hpp"

namespace rvdyn::isa {

/// True when the first parcel of an encoding indicates a 16-bit
/// (compressed) instruction: the two low bits are not 0b11.
constexpr bool is_compressed_encoding(std::uint16_t first_halfword) {
  return (first_halfword & 0x3) != 0x3;
}

class Decoder {
 public:
  /// `profile` restricts which extensions the decoder accepts.
  explicit Decoder(ExtensionSet profile = ExtensionSet::rv64gc())
      : profile_(profile) {}

  ExtensionSet profile() const { return profile_; }

  /// Decode one instruction from `buf`. Returns the number of bytes
  /// consumed (2 or 4); returns 0 if the bytes do not decode to a valid
  /// in-profile instruction or `size` is too small. On success `*out`
  /// holds the decoded instruction.
  unsigned decode(const std::uint8_t* buf, std::size_t size,
                  Instruction* out) const;

  /// Decode a 32-bit standard encoding. Returns false on failure.
  bool decode32(std::uint32_t word, Instruction* out) const;

  /// Decode a 16-bit compressed encoding into its base-ISA expansion
  /// (Instruction::compressed() will be true). Returns false on failure.
  bool decode16(std::uint16_t half, Instruction* out) const;

 private:
  ExtensionSet profile_;
};

}  // namespace rvdyn::isa
