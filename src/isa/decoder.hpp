// RV64GC machine-code decoder (the paper's Capstone substitute, §3.2.2).
//
// Decodes standard 32-bit encodings via the shared opcode table and
// 16-bit C-extension encodings by expansion to their canonical base-ISA
// form. The decoder is restricted to a profile (ExtensionSet): bytes that
// decode to an instruction outside the profile are reported as invalid,
// mirroring how a real hart without that extension would trap.
//
// Two implementations coexist:
//  - the fast path (decode32/decode16) dispatches through precomputed
//    tables built once at startup (see decode_table.hpp);
//  - the reference path (decode32_linear/decode16_linear) keeps the
//    original popcount-sorted bucket scan and quadrant switch, serving as
//    the oracle for the differential fuzz tests.
// Both must stay bit-identical; tests/test_decode_fastpath.cpp enforces it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "isa/extensions.hpp"
#include "isa/instruction.hpp"

namespace rvdyn::isa {

/// True when the first parcel of an encoding indicates a 16-bit
/// (compressed) instruction: the two low bits are not 0b11.
constexpr bool is_compressed_encoding(std::uint16_t first_halfword) {
  return (first_halfword & 0x3) != 0x3;
}

namespace detail {
/// Tag for the table builders' internal Decoder: skips eager table warming
/// (the public constructor triggers it, which would recurse mid-build).
struct NoTableWarm {};
}  // namespace detail

/// Per-decoder traffic tallies (observability builds only; always zero when
/// RVDYN_OBS_ENABLED=0). Fast = the table dispatch path, linear = the
/// reference match/mask scan kept for differential testing. Plain non-atomic
/// fields so the hot decode loop pays one increment, flushed in bulk into
/// obs::Registry by publish_stats() / the destructor.
struct DecodeStats {
  std::uint64_t fast32 = 0;    ///< decode32 table-path successes
  std::uint64_t fast16 = 0;    ///< decode16 table-path successes
  std::uint64_t fail32 = 0;    ///< 32-bit words that did not decode
  std::uint64_t fail16 = 0;    ///< 16-bit halves that did not decode
  std::uint64_t linear32 = 0;  ///< reference decode32_linear calls
  std::uint64_t linear16 = 0;  ///< reference decode16_linear calls
};

class Decoder {
 public:
  /// `profile` restricts which extensions the decoder accepts. Construction
  /// builds the shared dispatch/RVC tables on first use, so decode latency
  /// is flat from the very first call.
  explicit Decoder(ExtensionSet profile = ExtensionSet::rv64gc());

  Decoder(ExtensionSet profile, detail::NoTableWarm) : profile_(profile) {}

  /// Flushes any unpublished decode tallies into obs::Registry.
  ~Decoder();

  // Copies share the profile but never the tallies (each instance flushes
  // its own counts exactly once).
  Decoder(const Decoder& o) : profile_(o.profile_) {}
  Decoder& operator=(const Decoder& o) {
    profile_ = o.profile_;
    return *this;
  }

  ExtensionSet profile() const { return profile_; }

  /// This decoder's unflushed tallies (zeros when observability is off).
  const DecodeStats& decode_stats() const { return dstats_; }

  /// Add the tallies into the `rvdyn.isa.*` registry counters and zero the
  /// local copy. Called automatically on destruction; call explicitly to
  /// snapshot metrics while a long-lived decoder is still in use.
  void publish_stats() const;

  /// Decode one instruction from `buf`. Returns the number of bytes
  /// consumed (2 or 4); returns 0 if the bytes do not decode to a valid
  /// in-profile instruction or `size` is too small. On success `*out`
  /// holds the decoded instruction.
  unsigned decode(const std::uint8_t* buf, std::size_t size,
                  Instruction* out) const;

  /// Decode a 32-bit standard encoding. Returns false on failure.
  bool decode32(std::uint32_t word, Instruction* out) const;

  /// Decode a 16-bit compressed encoding into its base-ISA expansion
  /// (Instruction::compressed() will be true). Returns false on failure.
  bool decode16(std::uint16_t half, Instruction* out) const;

  /// Reference implementation of decode32: linear match/mask scan over the
  /// popcount-sorted opcode bucket. Slow; kept for differential testing and
  /// as executable documentation of the decode semantics.
  bool decode32_linear(std::uint32_t word, Instruction* out) const;

  /// Reference implementation of decode16: the hand-written quadrant
  /// switch. Slow; kept for differential testing (and used once at startup
  /// to build the 64K predecoded RVC table).
  bool decode16_linear(std::uint16_t half, Instruction* out) const;

  /// Batch-decode consecutive instructions from `buf`. For each decoded
  /// instruction, calls `fn(offset, insn, len)`; when `fn` returns false,
  /// decoding stops after that instruction. Stops at the first undecodable
  /// encoding or when fewer bytes remain than the next instruction needs.
  /// Returns the number of bytes consumed. The per-call overhead of
  /// repeated decode() entry (bounds checks, parcel re-reads) is hoisted
  /// out of the loop, so this is the preferred API for byte scanning
  /// (ParseAPI block parsing, gap scanning).
  template <typename Fn>
  std::size_t decode_range(const std::uint8_t* buf, std::size_t size,
                           Fn&& fn) const {
    std::size_t off = 0;
    Instruction insn;
    while (size - off >= 2) {
      const std::uint16_t half =
          static_cast<std::uint16_t>(buf[off] | (buf[off + 1] << 8));
      unsigned len;
      if (is_compressed_encoding(half)) {
        if (!decode16(half, &insn)) break;
        len = 2;
      } else {
        if (size - off < 4) break;
        const std::uint32_t word =
            static_cast<std::uint32_t>(buf[off]) |
            (static_cast<std::uint32_t>(buf[off + 1]) << 8) |
            (static_cast<std::uint32_t>(buf[off + 2]) << 16) |
            (static_cast<std::uint32_t>(buf[off + 3]) << 24);
        if (!decode32(word, &insn)) break;
        len = 4;
      }
      const bool keep_going = fn(off, std::as_const(insn), len);
      off += len;
      if (!keep_going) break;
    }
    return off;
  }

 private:
  ExtensionSet profile_;
  mutable DecodeStats dstats_;
};

}  // namespace rvdyn::isa
