// Precomputed decode fast path (built once at startup from mnemonics.def).
//
// Three structures back Decoder::decode32/decode16:
//
//  1. A multi-level dispatch table for 32-bit encodings: major opcode
//     (7 bits) x funct3 selects a slot; slots whose entries all constrain
//     funct7 additionally index a per-slot funct7 sub-table. What remains
//     in a slot is a short match/mask list sorted most-specific first
//     (funct12-style encodings collapse into that list), so the common
//     case is a single compare instead of the popcount-sorted linear
//     bucket scan that Decoder::decode32_linear still implements.
//
//  2. A compiled operand-builder program per table entry, plus a prototype
//     Instruction with every word-independent field (mnemonic, flags,
//     extension, operand kinds/access/sizes) prebuilt: decode copies the
//     prototype and patches only the register numbers and immediates out
//     of the word, instead of re-interpreting spec characters and
//     constructing operands one call at a time.
//
//  3. A full 64K-entry table of predecoded 16-bit (RVC) expansions,
//     built with an all-extensions profile and gated per lookup by the
//     expansion's required extension.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "isa/extensions.hpp"
#include "isa/instruction.hpp"

namespace rvdyn::isa::detail {

// Immediate field extraction for the standard 32-bit formats (shared by the
// compiled fast path and the reference scan decoder).
inline std::int64_t imm_i(std::uint32_t w) { return sext(bits(w, 20, 12), 12); }
inline std::int64_t imm_s(std::uint32_t w) {
  return sext((bits(w, 25, 7) << 5) | bits(w, 7, 5), 12);
}
inline std::int64_t imm_b(std::uint32_t w) {
  const std::uint64_t v = (bit(w, 31) << 12) | (bit(w, 7) << 11) |
                          (bits(w, 25, 6) << 5) | (bits(w, 8, 4) << 1);
  return sext(v, 13);
}
inline std::int64_t imm_u(std::uint32_t w) {
  return sext(bits(w, 12, 20), 20) << 12;
}
inline std::int64_t imm_j(std::uint32_t w) {
  const std::uint64_t v = (bit(w, 31) << 20) | (bits(w, 12, 8) << 12) |
                          (bit(w, 20) << 11) | (bits(w, 21, 10) << 1);
  return sext(v, 21);
}

/// One precompiled operand-builder step; the spec character, access mode and
/// memory size resolved at table-build time.
enum class OpStep : std::uint8_t {
  Rd, Rs1, Rs2,          // integer register fields
  FRd, FRs1, FRs2, FRs3, // FP register fields
  ImmI, ImmU, PcRelB, PcRelJ, Shamt6, Shamt5,
  MemI, MemS, MemA,      // [rs1 + imm12(I)], [rs1 + imm12(S)], [rs1]
  Csr, Zimm, RoundMode,
  AqRl,      // atomic aq/rl ordering bits (26:25)
  FenceSet,  // fence fm:pred:succ field (31:20)
};

struct CompiledOperand {
  OpStep step;
  std::uint8_t access = 0;  ///< pre-resolved access for Mem* steps
  std::uint8_t size = 0;    ///< pre-resolved memory size for Mem* steps
};

/// One 32-bit decode candidate with its compiled operand program and the
/// prototype Instruction the fast path copies-then-patches.
struct DecodeEntry {
  std::uint32_t match = 0;
  std::uint32_t mask = 0;
  Mnemonic mnemonic = Mnemonic::kInvalid;
  Extension ext = Extension::I;
  std::uint8_t nops = 0;
  CompiledOperand ops[Instruction::kMaxOperands];
  Instruction proto;  ///< decoded form at word 0: all static fields final
};

/// Dispatch structure over the flattened DecodeEntry array.
struct DispatchTable {
  struct Range {
    std::uint32_t begin = 0, end = 0;
  };
  struct Slot {
    Range all;               ///< candidates for this (major, funct3)
    std::int32_t f7 = -1;    ///< if >= 0: index of a 128-range funct7 sub-table
  };
  Slot slots[128 * 8];
  std::vector<Range> f7_ranges;      ///< 128 contiguous ranges per indexed slot
  std::vector<DecodeEntry> entries;  ///< grouped per slot, most-specific first
};

/// The shared 32-bit dispatch table (immutable after first use; thread-safe).
const DispatchTable& dispatch_table();

/// The shared 64K predecoded RVC table. Entry `half` is the base-ISA
/// expansion with Instruction::compressed() set, or an invalid Instruction
/// when `half` is not a valid RVC encoding. Profile gating (C plus the
/// expansion's own extension) is the caller's job.
const std::vector<Instruction>& rvc_table();

/// Run a compiled operand program, appending operands to `out`. Used at
/// table-build time to materialize each entry's prototype.
void emit_operands(const DecodeEntry& e, std::uint32_t w, Instruction* out);

/// Fast-path completion after `*out = e.proto`: store the raw word and patch
/// the word-dependent operand fields (register numbers, immediates) in
/// place. Declared a friend of Instruction.
void patch_decoded(const DecodeEntry& e, std::uint32_t w, Instruction* out);

}  // namespace rvdyn::isa::detail
