// Register model for RV64GC.
//
// Two architectural register files (integer x0-x31 and floating-point
// f0-f31) plus the CSR space. Downstream analyses (liveness, slicing,
// codegen register allocation) index registers through `Reg`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace rvdyn::isa {

/// Which architectural register file a register lives in.
enum class RegClass : std::uint8_t {
  Int,  ///< x0..x31
  Fp,   ///< f0..f31
};

/// A single architectural register: class + index.
struct Reg {
  RegClass cls = RegClass::Int;
  std::uint8_t num = 0;  ///< 0..31

  constexpr Reg() = default;
  constexpr Reg(RegClass c, std::uint8_t n) : cls(c), num(n) {}

  constexpr bool operator==(const Reg&) const = default;

  /// Dense index over both files: x0..x31 = 0..31, f0..f31 = 32..63.
  /// Used as a bitset position by liveness analysis.
  constexpr unsigned index() const {
    return (cls == RegClass::Int ? 0u : 32u) + num;
  }

  /// Inverse of index().
  static constexpr Reg from_index(unsigned i) {
    return i < 32 ? Reg(RegClass::Int, static_cast<std::uint8_t>(i))
                  : Reg(RegClass::Fp, static_cast<std::uint8_t>(i - 32));
  }
};

/// Total number of dense register indices (integer + FP files).
inline constexpr unsigned kNumRegs = 64;

/// Convenience constructors for the integer and FP files.
constexpr Reg x(std::uint8_t n) { return Reg(RegClass::Int, n); }
constexpr Reg f(std::uint8_t n) { return Reg(RegClass::Fp, n); }

// ABI-named integer registers (RISC-V psABI).
inline constexpr Reg zero = x(0);  ///< hard-wired zero
inline constexpr Reg ra = x(1);    ///< return address (standard link register)
inline constexpr Reg sp = x(2);    ///< stack pointer
inline constexpr Reg gp = x(3);    ///< global pointer
inline constexpr Reg tp = x(4);    ///< thread pointer
inline constexpr Reg t0 = x(5);
inline constexpr Reg t1 = x(6);
inline constexpr Reg t2 = x(7);
inline constexpr Reg fp = x(8);  ///< frame pointer (a.k.a. s0) — often reused
inline constexpr Reg s0 = x(8);
inline constexpr Reg s1 = x(9);
inline constexpr Reg a0 = x(10);
inline constexpr Reg a1 = x(11);
inline constexpr Reg a2 = x(12);
inline constexpr Reg a3 = x(13);
inline constexpr Reg a4 = x(14);
inline constexpr Reg a5 = x(15);
inline constexpr Reg a6 = x(16);
inline constexpr Reg a7 = x(17);
inline constexpr Reg t3 = x(28);
inline constexpr Reg t4 = x(29);
inline constexpr Reg t5 = x(30);
inline constexpr Reg t6 = x(31);

/// ABI name ("ra", "sp", "a0", "fs0", ...).
std::string reg_name(Reg r);

/// Architectural name ("x1", "f12", ...).
std::string reg_arch_name(Reg r);

/// Parse either an ABI name or architectural name; returns false on failure.
bool parse_reg(const std::string& name, Reg* out);

/// True for registers a caller must assume clobbered across a call
/// (t0-t6, a0-a7, ra; ft/fa temporaries in the FP file).
bool is_caller_saved(Reg r);

/// True for x1 (ra) and x5 (t0/alternate link), the registers the ISA's
/// return-address prediction hints treat as link registers.
bool is_link_reg(Reg r);

}  // namespace rvdyn::isa

template <>
struct std::hash<rvdyn::isa::Reg> {
  std::size_t operator()(const rvdyn::isa::Reg& r) const noexcept {
    return r.index();
  }
};
