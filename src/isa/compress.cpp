// C-extension compression: map expanded instructions to 16-bit encodings
// when one exists. Used by the assembler's auto-compression pass and by
// CodeGenAPI when the mutatee's profile includes the C extension.
#include "common/bits.hpp"
#include "isa/encoder.hpp"

namespace rvdyn::isa {

namespace {

bool is_creg(Reg r) { return r.num >= 8 && r.num <= 15; }
std::uint16_t creg(Reg r) { return static_cast<std::uint16_t>(r.num - 8); }

std::uint16_t q0(std::uint16_t f3, std::uint16_t mid, std::uint16_t rs1p,
                 std::uint16_t lo2, std::uint16_t rdp) {
  return static_cast<std::uint16_t>((f3 << 13) | (mid << 10) | (rs1p << 7) |
                                    (lo2 << 5) | (rdp << 2) | 0b00);
}

// Compressed load/store of the register-pair form (quadrant 0).
std::optional<std::uint16_t> compress_mem_q0(std::uint16_t f3, Reg data,
                                             Reg base, std::int64_t off,
                                             unsigned scale) {
  if (!is_creg(data) || !is_creg(base) || off < 0) return std::nullopt;
  const auto uoff = static_cast<std::uint64_t>(off);
  if (scale == 8) {  // c.ld/c.sd/c.fld/c.fsd: uimm[7:6|5:3], 8-byte aligned
    if (uoff & 7 || uoff >= 256) return std::nullopt;
    return q0(f3, static_cast<std::uint16_t>(bits(uoff, 3, 3)), creg(base),
              static_cast<std::uint16_t>(bits(uoff, 6, 2)), creg(data));
  }
  // c.lw/c.sw: uimm[6|5:3|2], 4-byte aligned
  if (uoff & 3 || uoff >= 128) return std::nullopt;
  const auto lo2 = static_cast<std::uint16_t>((bit(uoff, 2) << 1) | bit(uoff, 6));
  return q0(f3, static_cast<std::uint16_t>(bits(uoff, 3, 3)), creg(base), lo2,
            creg(data));
}

std::uint16_t q1(std::uint16_t f3, std::uint16_t b12, std::uint16_t rd,
                 std::uint16_t lo5) {
  return static_cast<std::uint16_t>((f3 << 13) | (b12 << 12) | (rd << 7) |
                                    (lo5 << 2) | 0b01);
}

std::uint16_t q2(std::uint16_t f3, std::uint16_t b12, std::uint16_t rd,
                 std::uint16_t lo5) {
  return static_cast<std::uint16_t>((f3 << 13) | (b12 << 12) | (rd << 7) |
                                    (lo5 << 2) | 0b10);
}

std::optional<std::uint16_t> compress_sp_load(std::uint16_t f3, Reg rd,
                                              std::int64_t off,
                                              unsigned scale) {
  if (off < 0) return std::nullopt;
  const auto u = static_cast<std::uint64_t>(off);
  if (scale == 8) {  // c.ldsp/c.fldsp: uimm[5|4:3|8:6]
    if (u & 7 || u >= 512) return std::nullopt;
    const auto lo5 = static_cast<std::uint16_t>((bits(u, 3, 2) << 3) | bits(u, 6, 3));
    return q2(f3, static_cast<std::uint16_t>(bit(u, 5)), rd.num, lo5);
  }
  // c.lwsp: uimm[5|4:2|7:6]
  if (u & 3 || u >= 256) return std::nullopt;
  const auto lo5 = static_cast<std::uint16_t>((bits(u, 2, 3) << 2) | bits(u, 6, 2));
  return q2(f3, static_cast<std::uint16_t>(bit(u, 5)), rd.num, lo5);
}

std::optional<std::uint16_t> compress_sp_store(std::uint16_t f3, Reg rs2,
                                               std::int64_t off,
                                               unsigned scale) {
  if (off < 0) return std::nullopt;
  const auto u = static_cast<std::uint64_t>(off);
  if (scale == 8) {  // c.sdsp/c.fsdsp: uimm[5:3|8:6] in bits 12:7
    if (u & 7 || u >= 512) return std::nullopt;
    const auto field =
        static_cast<std::uint16_t>((bits(u, 3, 3) << 3) | bits(u, 6, 3));
    return static_cast<std::uint16_t>((f3 << 13) | (field << 7) |
                                      (rs2.num << 2) | 0b10);
  }
  // c.swsp: uimm[5:2|7:6]
  if (u & 3 || u >= 256) return std::nullopt;
  const auto field =
      static_cast<std::uint16_t>((bits(u, 2, 4) << 2) | bits(u, 6, 2));
  return static_cast<std::uint16_t>((f3 << 13) | (field << 7) | (rs2.num << 2) |
                                    0b10);
}

std::uint16_t imm6_split(std::int64_t v, std::uint16_t* b12) {
  *b12 = static_cast<std::uint16_t>(bit(static_cast<std::uint64_t>(v), 5));
  return static_cast<std::uint16_t>(v & 0x1f);
}

}  // namespace

std::optional<std::uint16_t> compress(const Instruction& insn) {
  // Identity first: an instruction decoded from a compressed encoding whose
  // operands are untouched re-compresses to its own bytes. This keeps
  // rewriting byte-faithful across the whole accepted RVC space — including
  // HINT and shamt-0 forms (c.nop, c.addi x0, c.mv x0, c.slli64, ...) that
  // the canonical search below deliberately never emits — and prefers the
  // original over an operand-identical alias (c.addi sp vs c.addi16sp).
  // The re-expansion guard makes a stale raw() harmless.
  if (insn.compressed()) {
    const auto half = static_cast<std::uint16_t>(insn.raw());
    if (const auto re = expand16(half);
        re && re->mnemonic() == insn.mnemonic() &&
        re->num_operands() == insn.num_operands()) {
      bool same = true;
      for (unsigned i = 0; same && i < insn.num_operands(); ++i) {
        const Operand& x = insn.operand(i);
        const Operand& y = re->operand(i);
        same = x.kind == y.kind && x.reg == y.reg && x.imm == y.imm;
      }
      if (same) return half;
    }
  }

  const Mnemonic mn = insn.mnemonic();
  const auto op = [&](unsigned i) -> const Operand& {
    return insn.operand(i);
  };
  const unsigned n = insn.num_operands();

  switch (mn) {
    case Mnemonic::addi: {
      if (n != 3) break;
      const Reg rd = op(0).reg, rs1 = op(1).reg;
      const std::int64_t imm = op(2).imm;
      // c.addi16sp
      if (rd == sp && rs1 == sp && imm != 0 && (imm & 0xf) == 0 &&
          fits_signed(imm, 10)) {
        const auto u = static_cast<std::uint64_t>(imm);
        const auto lo5 = static_cast<std::uint16_t>(
            (bit(u, 4) << 4) | (bit(u, 6) << 3) | (bits(u, 7, 2) << 1) |
            bit(u, 5));
        return q1(0b011, static_cast<std::uint16_t>(bit(u, 9)), 2, lo5);
      }
      // c.addi4spn
      if (rs1 == sp && is_creg(rd) && imm > 0 && (imm & 3) == 0 &&
          imm < 1024) {
        const auto u = static_cast<std::uint64_t>(imm);
        const auto field = static_cast<std::uint16_t>(
            (bits(u, 4, 2) << 6) | (bits(u, 6, 4) << 2) | (bit(u, 2) << 1) |
            bit(u, 3));
        return static_cast<std::uint16_t>((field << 5) | (creg(rd) << 2) |
                                          0b00);
      }
      // c.li
      if (rs1 == zero && rd != zero && fits_signed(imm, 6)) {
        std::uint16_t b12;
        const auto lo5 = imm6_split(imm, &b12);
        return q1(0b010, b12, rd.num, lo5);
      }
      // c.addi (imm == 0 is a HINT encoding; leave uncompressed)
      if (rd == rs1 && rd != zero && imm != 0 && fits_signed(imm, 6)) {
        std::uint16_t b12;
        const auto lo5 = imm6_split(imm, &b12);
        return q1(0b000, b12, rd.num, lo5);
      }
      break;
    }
    case Mnemonic::addiw: {
      if (n != 3) break;
      const Reg rd = op(0).reg;
      if (rd == op(1).reg && rd != zero && fits_signed(op(2).imm, 6)) {
        std::uint16_t b12;
        const auto lo5 = imm6_split(op(2).imm, &b12);
        return q1(0b001, b12, rd.num, lo5);
      }
      break;
    }
    case Mnemonic::lui: {
      if (n != 2) break;
      const Reg rd = op(0).reg;
      const std::int64_t imm = op(1).imm;  // effective constant (<<12 form)
      if (rd != zero && rd != sp && imm != 0 && (imm & 0xfff) == 0 &&
          fits_signed(imm, 18)) {
        const std::int64_t f6 = imm >> 12;
        std::uint16_t b12;
        const auto lo5 = imm6_split(f6, &b12);
        return q1(0b011, b12, rd.num, lo5);
      }
      break;
    }
    case Mnemonic::slli: {
      if (n != 3) break;
      const Reg rd = op(0).reg;
      const std::int64_t sh = op(2).imm;
      if (rd == op(1).reg && rd != zero && sh > 0 && sh < 64)
        return q2(0b000, static_cast<std::uint16_t>(sh >> 5), rd.num,
                  static_cast<std::uint16_t>(sh & 0x1f));
      break;
    }
    case Mnemonic::srli:
    case Mnemonic::srai: {
      if (n != 3) break;
      const Reg rd = op(0).reg;
      const std::int64_t sh = op(2).imm;
      if (rd == op(1).reg && is_creg(rd) && sh > 0 && sh < 64) {
        const std::uint16_t mid = static_cast<std::uint16_t>(
            mn == Mnemonic::srli ? 0b00 : 0b01);
        return static_cast<std::uint16_t>(
            (0b100 << 13) | (static_cast<std::uint16_t>(sh >> 5) << 12) |
            (mid << 10) | (creg(rd) << 7) |
            (static_cast<std::uint16_t>(sh & 0x1f) << 2) | 0b01);
      }
      break;
    }
    case Mnemonic::andi: {
      if (n != 3) break;
      const Reg rd = op(0).reg;
      if (rd == op(1).reg && is_creg(rd) && fits_signed(op(2).imm, 6)) {
        std::uint16_t b12;
        const auto lo5 = imm6_split(op(2).imm, &b12);
        return static_cast<std::uint16_t>((0b100 << 13) | (b12 << 12) |
                                          (0b10 << 10) | (creg(rd) << 7) |
                                          (lo5 << 2) | 0b01);
      }
      break;
    }
    case Mnemonic::add: {
      if (n != 3) break;
      const Reg rd = op(0).reg, rs1 = op(1).reg, rs2 = op(2).reg;
      if (rd != zero && rs2 != zero) {
        if (rs1 == zero) return q2(0b100, 0, rd.num, rs2.num);      // c.mv
        if (rs1 == rd) return q2(0b100, 1, rd.num, rs2.num);        // c.add
      }
      break;
    }
    case Mnemonic::sub:
    case Mnemonic::xor_:
    case Mnemonic::or_:
    case Mnemonic::and_:
    case Mnemonic::subw:
    case Mnemonic::addw: {
      if (n != 3) break;
      const Reg rd = op(0).reg, rs1 = op(1).reg, rs2 = op(2).reg;
      if (rd != rs1 || !is_creg(rd) || !is_creg(rs2)) break;
      std::uint16_t b12 = 0, sel = 0;
      switch (mn) {
        case Mnemonic::sub: sel = 0b00; break;
        case Mnemonic::xor_: sel = 0b01; break;
        case Mnemonic::or_: sel = 0b10; break;
        case Mnemonic::and_: sel = 0b11; break;
        case Mnemonic::subw: sel = 0b00; b12 = 1; break;
        case Mnemonic::addw: sel = 0b01; b12 = 1; break;
        default: break;
      }
      return static_cast<std::uint16_t>((0b100 << 13) | (b12 << 12) |
                                        (0b11 << 10) | (creg(rd) << 7) |
                                        (sel << 5) | (creg(rs2) << 2) | 0b01);
    }
    case Mnemonic::jal: {
      if (n != 2) break;
      if (op(0).reg != zero) break;  // c.j only links to x0
      const std::int64_t off = op(1).imm;
      if (!fits_signed(off, 12) || (off & 1)) break;
      const auto u = static_cast<std::uint64_t>(off);
      const auto enc = static_cast<std::uint16_t>(
          (bit(u, 11) << 12) | (bit(u, 4) << 11) | (bits(u, 8, 2) << 9) |
          (bit(u, 10) << 8) | (bit(u, 6) << 7) | (bit(u, 7) << 6) |
          (bits(u, 1, 3) << 3) | (bit(u, 5) << 2));
      return static_cast<std::uint16_t>((0b101 << 13) | enc | 0b01);
    }
    case Mnemonic::jalr: {
      if (n != 3) break;
      const Reg rd = op(0).reg, rs1 = op(1).reg;
      if (op(2).imm != 0 || rs1 == zero) break;
      if (rd == zero) return q2(0b100, 0, rs1.num, 0);  // c.jr
      if (rd == ra) return q2(0b100, 1, rs1.num, 0);    // c.jalr
      break;
    }
    case Mnemonic::beq:
    case Mnemonic::bne: {
      if (n != 3) break;
      const Reg rs1 = op(0).reg;
      if (op(1).reg != zero || !is_creg(rs1)) break;
      const std::int64_t off = op(2).imm;
      if (!fits_signed(off, 9) || (off & 1)) break;
      const auto u = static_cast<std::uint64_t>(off);
      const auto f3 =
          static_cast<std::uint16_t>(mn == Mnemonic::beq ? 0b110 : 0b111);
      return static_cast<std::uint16_t>(
          (f3 << 13) | (bit(u, 8) << 12) | (bits(u, 3, 2) << 10) |
          (creg(rs1) << 7) | (bits(u, 6, 2) << 5) | (bits(u, 1, 2) << 3) |
          (bit(u, 5) << 2) | 0b01);
    }
    case Mnemonic::lw:
    case Mnemonic::ld:
    case Mnemonic::fld: {
      if (n != 2) break;
      const Reg rd = op(0).reg;
      const Reg base = op(1).reg;
      const std::int64_t off = op(1).imm;
      const unsigned scale = mn == Mnemonic::lw ? 4 : 8;
      std::uint16_t f3q0 = 0, f3sp = 0;
      if (mn == Mnemonic::lw) { f3q0 = 0b010; f3sp = 0b010; }
      else if (mn == Mnemonic::ld) { f3q0 = 0b011; f3sp = 0b011; }
      else { f3q0 = 0b001; f3sp = 0b001; }
      if (base == sp && rd != zero &&
          (mn == Mnemonic::fld || rd.cls == RegClass::Int)) {
        if (auto enc = compress_sp_load(f3sp, rd, off, scale)) return enc;
      }
      if (auto enc = compress_mem_q0(f3q0, rd, base, off, scale)) return enc;
      break;
    }
    case Mnemonic::sw:
    case Mnemonic::sd:
    case Mnemonic::fsd: {
      if (n != 2) break;
      const Reg rs2 = op(0).reg;
      const Reg base = op(1).reg;
      const std::int64_t off = op(1).imm;
      const unsigned scale = mn == Mnemonic::sw ? 4 : 8;
      std::uint16_t f3q0 = 0, f3sp = 0;
      if (mn == Mnemonic::sw) { f3q0 = 0b110; f3sp = 0b110; }
      else if (mn == Mnemonic::sd) { f3q0 = 0b111; f3sp = 0b111; }
      else { f3q0 = 0b101; f3sp = 0b101; }
      if (base == sp) {
        if (auto enc = compress_sp_store(f3sp, rs2, off, scale)) return enc;
      }
      if (auto enc = compress_mem_q0(f3q0, rs2, base, off, scale)) return enc;
      break;
    }
    case Mnemonic::ebreak:
      return static_cast<std::uint16_t>(0x9002);  // c.ebreak
    default:
      break;
  }
  return std::nullopt;
}

}  // namespace rvdyn::isa
