// InstructionAPI: ISA-independent representation of a decoded machine
// instruction (paper §2.1, §3.2.2).
//
// Every instruction carries its mnemonic, raw encoding, byte length
// (2 for compressed, 4 for standard), and a small operand list annotated
// with read/write access — the information the paper required from
// Capstone v6 and which downstream analyses (ParseAPI classification,
// DataflowAPI liveness/slicing) consume.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "isa/extensions.hpp"
#include "isa/registers.hpp"

namespace rvdyn::isa {

/// All RV64GC mnemonics. Compressed instructions decode to their canonical
/// base-ISA expansion (c.add -> add) with Instruction::compressed() set, so
/// downstream analyses see one uniform instruction set.
enum class Mnemonic : std::uint16_t {
#define RV(name, text, ext, spec, match, mask, memsz, flags) name,
#include "isa/mnemonics.def"
#undef RV
  kInvalid,  ///< undecodable bytes
  kCount = kInvalid,
};

/// Category flags attached to each mnemonic. Deliberately low-level: whether
/// a jal/jalr is a call, return, tail call or jump table is *not* knowable
/// from the opcode (paper §3.1.3) and is decided by ParseAPI instead.
enum InsnFlags : std::uint32_t {
  F_NONE = 0,
  F_LOAD = 1u << 0,        ///< reads memory
  F_STORE = 1u << 1,       ///< writes memory
  F_CONDBRANCH = 1u << 2,  ///< beq/bne/blt/bge/bltu/bgeu
  F_JAL = 1u << 3,         ///< jal (direct, multi-purpose)
  F_JALR = 1u << 4,        ///< jalr (indirect, multi-purpose)
  F_ECALL = 1u << 5,
  F_EBREAK = 1u << 6,
  F_FENCE = 1u << 7,
  F_ATOMIC = 1u << 8,
  F_FLOAT = 1u << 9,
  F_CSR = 1u << 10,
  F_MULDIV = 1u << 11,
  F_AMO = F_LOAD | F_STORE | F_ATOMIC,
};

/// One instruction operand with its access mode.
struct Operand {
  enum class Kind : std::uint8_t {
    Reg,        ///< architectural register
    Imm,        ///< immediate (sign-extended where the ISA does)
    Mem,        ///< memory reference: [base + disp], `size` bytes
    PcRelative, ///< branch/jump byte offset relative to this instruction
    Csr,        ///< CSR number in `imm`
    RoundMode,  ///< FP rounding-mode field in `imm`
    Ordering,   ///< memory-ordering bits in `imm`: aq/rl for atomics
                ///< (aq<<1|rl), fm:pred:succ for fence — carried as an
                ///< operand so re-encoding reproduces the original bytes
  };
  enum Access : std::uint8_t { kNone = 0, kRead = 1, kWrite = 2, kRW = 3 };

  Kind kind = Kind::Imm;
  std::uint8_t access = kNone;  ///< for Reg: register access; for Mem: memory access
  std::uint8_t size = 0;        ///< memory access size in bytes (Mem only)
  Reg reg{};                    ///< Reg, or base register for Mem
  std::int64_t imm = 0;         ///< Imm/PcRelative value, Mem displacement, CSR number

  bool is_reg() const { return kind == Kind::Reg; }
  bool is_imm() const { return kind == Kind::Imm || kind == Kind::PcRelative; }
  bool is_mem() const { return kind == Kind::Mem; }
  bool reads() const { return access & kRead; }
  bool writes() const { return access & kWrite; }
};

/// Compact bitset over the dense register index space (x0..x31, f0..f31).
/// Used for register-read/written sets and by liveness analysis.
class RegSet {
 public:
  constexpr RegSet() = default;
  constexpr explicit RegSet(std::uint64_t bits) : bits_(bits) {}

  void add(Reg r) { bits_ |= 1ULL << r.index(); }
  void remove(Reg r) { bits_ &= ~(1ULL << r.index()); }
  bool contains(Reg r) const { return bits_ & (1ULL << r.index()); }
  bool empty() const { return bits_ == 0; }
  std::uint64_t bits() const { return bits_; }

  RegSet& operator|=(RegSet o) { bits_ |= o.bits_; return *this; }
  RegSet& operator&=(RegSet o) { bits_ &= o.bits_; return *this; }
  RegSet operator|(RegSet o) const { return RegSet(bits_ | o.bits_); }
  RegSet operator&(RegSet o) const { return RegSet(bits_ & o.bits_); }
  RegSet operator~() const { return RegSet(~bits_); }
  RegSet operator-(RegSet o) const { return RegSet(bits_ & ~o.bits_); }
  bool operator==(const RegSet&) const = default;

  unsigned count() const { return static_cast<unsigned>(__builtin_popcountll(bits_)); }

 private:
  std::uint64_t bits_ = 0;
};

class Instruction;

namespace detail {
struct DecodeEntry;
void patch_decoded(const DecodeEntry& e, std::uint32_t w, Instruction* out);
}  // namespace detail

/// A decoded machine instruction.
class Instruction {
 public:
  static constexpr unsigned kMaxOperands = 5;

  Instruction() = default;

  Mnemonic mnemonic() const { return mn_; }
  bool valid() const { return mn_ != Mnemonic::kInvalid; }

  /// Raw encoding: the 32-bit word, or the original 16-bit halfword in the
  /// low bits for compressed instructions.
  std::uint32_t raw() const { return raw_; }

  /// Encoded byte length: 2 (compressed) or 4.
  unsigned length() const { return len_; }
  /// True when this was decoded from a 16-bit C-extension encoding.
  bool compressed() const { return len_ == 2; }

  unsigned num_operands() const { return nops_; }
  const Operand& operand(unsigned i) const { return ops_[i]; }

  /// Category flags for the mnemonic (see InsnFlags).
  std::uint32_t flags() const { return flags_; }
  bool has_flag(InsnFlags f) const { return flags_ & f; }

  /// ISA extension the (expanded) mnemonic belongs to. A compressed encoding
  /// additionally requires Extension::C; see required_extensions().
  Extension extension() const { return ext_; }

  /// Every extension needed to execute this exact encoding.
  ExtensionSet required_extensions() const {
    ExtensionSet s;
    s.add(ext_);
    if (compressed()) s.add(Extension::C);
    return s;
  }

  // --- control-flow shape (mechanical properties only; see ParseAPI for
  // --- the call/return/tail-call/jump-table classification) ---
  bool is_cond_branch() const { return flags_ & F_CONDBRANCH; }
  bool is_jal() const { return flags_ & F_JAL; }
  bool is_jalr() const { return flags_ & F_JALR; }
  bool is_control_flow() const {
    return flags_ & (F_CONDBRANCH | F_JAL | F_JALR);
  }
  bool reads_memory() const { return flags_ & F_LOAD; }
  bool writes_memory() const { return flags_ & F_STORE; }

  /// For jal/jalr: the link register (rd). zero means "no link" (plain jump).
  Reg link_reg() const { return ops_[0].reg; }

  /// For jal / conditional branches: the byte offset of the target relative
  /// to this instruction's address.
  std::int64_t branch_offset() const;

  /// Registers read / written by this instruction (explicit operands,
  /// including memory base registers).
  RegSet regs_read() const;
  RegSet regs_written() const;

  /// Disassembly text, e.g. "addi sp, sp, -16" or "ld a0, 8(sp)".
  std::string to_string() const;

  // --- construction (used by the decoder and the assembler/encoder) ---
  void set(Mnemonic mn, std::uint32_t raw, unsigned len);
  void add_operand(const Operand& op);
  void clear_operands() { nops_ = 0; }

  static Operand reg_op(Reg r, std::uint8_t access) {
    Operand o;
    o.kind = Operand::Kind::Reg;
    o.reg = r;
    o.access = access;
    return o;
  }
  static Operand imm_op(std::int64_t v) {
    Operand o;
    o.kind = Operand::Kind::Imm;
    o.imm = v;
    return o;
  }
  static Operand pcrel_op(std::int64_t off) {
    Operand o;
    o.kind = Operand::Kind::PcRelative;
    o.imm = off;
    return o;
  }
  static Operand mem_op(Reg base, std::int64_t disp, std::uint8_t size,
                        std::uint8_t access) {
    Operand o;
    o.kind = Operand::Kind::Mem;
    o.reg = base;
    o.imm = disp;
    o.size = size;
    o.access = access;
    return o;
  }

 private:
  // The table decoder copies a prototype Instruction and patches the raw
  // word and word-dependent operand fields in place (decode_table.cpp).
  friend void detail::patch_decoded(const detail::DecodeEntry& e,
                                    std::uint32_t w, Instruction* out);

  Mnemonic mn_ = Mnemonic::kInvalid;
  std::uint32_t raw_ = 0;
  std::uint8_t len_ = 4;
  std::uint8_t nops_ = 0;
  std::uint32_t flags_ = 0;
  Extension ext_ = Extension::I;
  std::array<Operand, kMaxOperands> ops_{};
};

/// Opcode-table entry (generated from mnemonics.def). `spec` is the operand
/// spec string documented in mnemonics.def.
struct OpcodeInfo {
  Mnemonic mnemonic;
  const char* text;
  Extension ext;
  const char* spec;
  std::uint32_t match;
  std::uint32_t mask;
  std::uint8_t mem_size;
  std::uint32_t flags;
};

/// The full RV64GC opcode table, indexed by Mnemonic.
const OpcodeInfo& opcode_info(Mnemonic m);

/// Mnemonic text ("addi", "fcvt.d.lu", ...).
std::string mnemonic_name(Mnemonic m);

/// Look up a mnemonic by its text; returns kInvalid for unknown names.
Mnemonic mnemonic_from_name(const std::string& name);

}  // namespace rvdyn::isa
