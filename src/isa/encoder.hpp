// Machine-code emission for RV64GC (the encoding half of InstructionAPI,
// used by the assembler substrate and by CodeGenAPI).
//
// `encode32` is driven by the same opcode table as the decoder; round-trip
// identity (decode(encode(i)) == i) is enforced by the property test suite.
// `compress` implements the C-extension compression the assembler applies
// opportunistically (§3.1.2): it maps an instruction to its 16-bit encoding
// when one exists.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/status.hpp"
#include "isa/instruction.hpp"

namespace rvdyn::isa {

/// Encode an instruction as its standard 32-bit form. The instruction's
/// operand list must match the mnemonic's spec (as produced by the decoder
/// or by `assemble`). Throws Error when an immediate is out of range or
/// misaligned for the format.
std::uint32_t encode32(Mnemonic mn, std::span<const Operand> ops);

/// Build a canonical Instruction from a mnemonic and operands: encodes to
/// 32 bits and re-decodes, guaranteeing the result is exactly what the
/// decoder would produce for those bytes. Throws Error on invalid operands.
Instruction assemble(Mnemonic mn, std::span<const Operand> ops);
Instruction assemble(Mnemonic mn, std::initializer_list<Operand> ops);

/// Try to compress `insn` (given in expanded form) to a 16-bit C-extension
/// encoding. Returns nullopt when no compressed form exists for these
/// operands/immediates.
std::optional<std::uint16_t> compress(const Instruction& insn);

/// Convenience: expand a 16-bit encoding back (wrapper over Decoder).
std::optional<Instruction> expand16(std::uint16_t half);

}  // namespace rvdyn::isa
