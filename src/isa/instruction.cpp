#include "isa/instruction.hpp"

#include <unordered_map>

namespace rvdyn::isa {

namespace {

constexpr OpcodeInfo kOpcodeTable[] = {
#define RV(name, text, ext, spec, match, mask, memsz, flags) \
  {Mnemonic::name, text, Extension::ext, spec, match, mask, memsz, flags},
#include "isa/mnemonics.def"
#undef RV
};

constexpr std::size_t kNumMnemonics =
    sizeof(kOpcodeTable) / sizeof(kOpcodeTable[0]);

const std::unordered_map<std::string, Mnemonic>& name_map() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, Mnemonic>();
    for (const auto& e : kOpcodeTable) m->emplace(e.text, e.mnemonic);
    return m;
  }();
  return *map;
}

}  // namespace

const OpcodeInfo& opcode_info(Mnemonic m) {
  static const OpcodeInfo invalid{Mnemonic::kInvalid, "<invalid>",
                                  Extension::I,       "",
                                  0,                  0,
                                  0,                  F_NONE};
  const auto idx = static_cast<std::size_t>(m);
  return idx < kNumMnemonics ? kOpcodeTable[idx] : invalid;
}

std::string mnemonic_name(Mnemonic m) { return opcode_info(m).text; }

Mnemonic mnemonic_from_name(const std::string& name) {
  const auto& m = name_map();
  auto it = m.find(name);
  return it == m.end() ? Mnemonic::kInvalid : it->second;
}

void Instruction::set(Mnemonic mn, std::uint32_t raw, unsigned len) {
  mn_ = mn;
  raw_ = raw;
  len_ = static_cast<std::uint8_t>(len);
  nops_ = 0;
  const OpcodeInfo& info = opcode_info(mn);
  flags_ = info.flags;
  ext_ = info.ext;
}

void Instruction::add_operand(const Operand& op) {
  if (nops_ < kMaxOperands) ops_[nops_++] = op;
}

std::int64_t Instruction::branch_offset() const {
  for (unsigned i = 0; i < nops_; ++i)
    if (ops_[i].kind == Operand::Kind::PcRelative) return ops_[i].imm;
  return 0;
}

RegSet Instruction::regs_read() const {
  RegSet s;
  for (unsigned i = 0; i < nops_; ++i) {
    const Operand& op = ops_[i];
    if (op.kind == Operand::Kind::Reg && op.reads()) s.add(op.reg);
    // A memory operand always reads its base register for the address
    // calculation, independent of whether memory is read or written.
    if (op.kind == Operand::Kind::Mem) s.add(op.reg);
  }
  return s;
}

RegSet Instruction::regs_written() const {
  RegSet s;
  for (unsigned i = 0; i < nops_; ++i) {
    const Operand& op = ops_[i];
    if (op.kind == Operand::Kind::Reg && op.writes()) s.add(op.reg);
  }
  // x0 is hard-wired; writes to it are architectural no-ops.
  s.remove(zero);
  return s;
}

namespace {

// fence pred/succ set: bits 3..0 = i, o, r, w.
std::string fence_set(unsigned m) {
  std::string s;
  if (m & 8) s += 'i';
  if (m & 4) s += 'o';
  if (m & 2) s += 'r';
  if (m & 1) s += 'w';
  return s.empty() ? "0" : s;
}

}  // namespace

std::string Instruction::to_string() const {
  if (!valid()) return "<invalid>";
  std::string out = mnemonic_name(mn_);
  if (flags_ & F_ATOMIC) {
    // Atomic ordering prints as a mnemonic suffix, binutils-style.
    for (unsigned i = 0; i < nops_; ++i) {
      if (ops_[i].kind != Operand::Kind::Ordering) continue;
      switch (ops_[i].imm & 3) {
        case 1: out += ".rl"; break;
        case 2: out += ".aq"; break;
        case 3: out += ".aqrl"; break;
        default: break;
      }
    }
  }
  bool first = true;
  for (unsigned i = 0; i < nops_; ++i) {
    const Operand& op = ops_[i];
    if (op.kind == Operand::Kind::RoundMode) continue;  // elide dynamic rm
    if (op.kind == Operand::Kind::Ordering &&
        ((flags_ & F_ATOMIC) || op.imm == 0))
      continue;  // suffixed above, or the bare-`fence` zero field
    out += first ? " " : ", ";
    first = false;
    switch (op.kind) {
      case Operand::Kind::Reg:
        out += reg_name(op.reg);
        break;
      case Operand::Kind::Imm:
        out += std::to_string(op.imm);
        break;
      case Operand::Kind::PcRelative:
        out += (op.imm >= 0 ? "." : ".") ;
        out += (op.imm >= 0 ? "+" : "");
        out += std::to_string(op.imm);
        break;
      case Operand::Kind::Mem:
        out += std::to_string(op.imm) + "(" + reg_name(op.reg) + ")";
        break;
      case Operand::Kind::Csr:
        out += "csr" + std::to_string(op.imm);
        break;
      case Operand::Kind::RoundMode:
        break;
      case Operand::Kind::Ordering:
        // Reached only for fence with nonzero sets: "fence pred,succ".
        out += fence_set(static_cast<unsigned>(op.imm) >> 4 & 0xf) + "," +
               fence_set(static_cast<unsigned>(op.imm) & 0xf);
        break;
    }
  }
  return out;
}

}  // namespace rvdyn::isa
