// Immediate materialization: build an arbitrary 64-bit constant in a
// register using lui/addi/addiw/slli sequences (paper §3.2.5).
//
// RISC-V has no "load 64-bit immediate" instruction; the paper calls the
// shifted/encoded immediate handling "one of the more error-prone aspects
// of code generation". This helper is shared by the assembler's `li`
// pseudo-instruction and CodeGenAPI's constant lowering so both agree, and
// it is validated by executing the sequences in the emulator.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instruction.hpp"

namespace rvdyn::isa {

/// Append instructions that leave `value` in `rd`. Clobbers only `rd`.
/// The sequence length is 1 for 12-bit values, 2 for 32-bit values and up
/// to 8 for arbitrary 64-bit constants.
void materialize_imm(Reg rd, std::int64_t value,
                     std::vector<Instruction>* out);

/// Split a pc-relative or absolute 32-bit displacement into the
/// (auipc/lui hi20, addi lo12) pair such that hi + lo == value, with hi
/// 4KiB-aligned and lo in [-2048, 2047]. `value` must fit in 32 bits
/// (checked): returns false when it does not.
bool split_hi_lo(std::int64_t value, std::int64_t* hi, std::int64_t* lo);

}  // namespace rvdyn::isa
