#include "isa/registers.hpp"

#include <array>

namespace rvdyn::isa {

namespace {

constexpr std::array<const char*, 32> kIntAbiNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

constexpr std::array<const char*, 32> kFpAbiNames = {
    "ft0", "ft1", "ft2",  "ft3",  "ft4", "ft5", "ft6",  "ft7",
    "fs0", "fs1", "fa0",  "fa1",  "fa2", "fa3", "fa4",  "fa5",
    "fa6", "fa7", "fs2",  "fs3",  "fs4", "fs5", "fs6",  "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"};

}  // namespace

std::string reg_name(Reg r) {
  const auto& table = r.cls == RegClass::Int ? kIntAbiNames : kFpAbiNames;
  return table[r.num & 31];
}

std::string reg_arch_name(Reg r) {
  return (r.cls == RegClass::Int ? "x" : "f") + std::to_string(r.num);
}

bool parse_reg(const std::string& name, Reg* out) {
  if (name.empty()) return false;
  // Architectural names: x0..x31, f0..f31.
  if ((name[0] == 'x' || name[0] == 'f') && name.size() >= 2 &&
      name.find_first_not_of("0123456789", 1) == std::string::npos) {
    const int n = std::stoi(name.substr(1));
    if (n < 0 || n > 31) return false;
    *out = Reg(name[0] == 'x' ? RegClass::Int : RegClass::Fp,
               static_cast<std::uint8_t>(n));
    return true;
  }
  // ABI names, plus "fp" as an alias for s0.
  if (name == "fp") {
    *out = fp;
    return true;
  }
  for (std::uint8_t i = 0; i < 32; ++i) {
    if (name == kIntAbiNames[i]) {
      *out = x(i);
      return true;
    }
    if (name == kFpAbiNames[i]) {
      *out = f(i);
      return true;
    }
  }
  return false;
}

bool is_caller_saved(Reg r) {
  if (r.cls == RegClass::Int) {
    const std::uint8_t n = r.num;
    return n == 1 || (n >= 5 && n <= 7) || (n >= 10 && n <= 17) || n >= 28;
  }
  // FP temporaries ft0-ft7 (0-7), fa0-fa7 (10-17), ft8-ft11 (28-31).
  const std::uint8_t n = r.num;
  return n <= 7 || (n >= 10 && n <= 17) || n >= 28;
}

bool is_link_reg(Reg r) {
  return r.cls == RegClass::Int && (r.num == 1 || r.num == 5);
}

}  // namespace rvdyn::isa
