#include "isa/decode_table.hpp"

#include <algorithm>

#include "isa/decoder.hpp"
#include "isa/registers.hpp"

namespace rvdyn::isa::detail {

namespace {

Reg rd_of(std::uint32_t w, RegClass c = RegClass::Int) {
  return Reg(c, static_cast<std::uint8_t>(bits(w, 7, 5)));
}
Reg rs1_of(std::uint32_t w, RegClass c = RegClass::Int) {
  return Reg(c, static_cast<std::uint8_t>(bits(w, 15, 5)));
}
Reg rs2_of(std::uint32_t w, RegClass c = RegClass::Int) {
  return Reg(c, static_cast<std::uint8_t>(bits(w, 20, 5)));
}
Reg rs3_of(std::uint32_t w, RegClass c = RegClass::Fp) {
  return Reg(c, static_cast<std::uint8_t>(bits(w, 27, 5)));
}

// Compile one spec character; access/size resolution that build_operands
// used to redo per decode happens exactly once, here.
CompiledOperand compile_spec_char(char c, const OpcodeInfo& info) {
  CompiledOperand op{};
  switch (c) {
    case 'd': op.step = OpStep::Rd; break;
    case 's': op.step = OpStep::Rs1; break;
    case 't': op.step = OpStep::Rs2; break;
    case 'D': op.step = OpStep::FRd; break;
    case 'S': op.step = OpStep::FRs1; break;
    case 'T': op.step = OpStep::FRs2; break;
    case 'R': op.step = OpStep::FRs3; break;
    case 'i': op.step = OpStep::ImmI; break;
    case 'u': op.step = OpStep::ImmU; break;
    case 'b': op.step = OpStep::PcRelB; break;
    case 'a': op.step = OpStep::PcRelJ; break;
    case 'z': op.step = OpStep::Shamt6; break;
    case 'w': op.step = OpStep::Shamt5; break;
    case 'm':
      op.step = OpStep::MemI;
      op.access = (info.flags & F_STORE) && !(info.flags & F_LOAD)
                      ? Operand::kWrite
                      : Operand::kRead;
      op.size = info.mem_size;
      break;
    case 'M':
      op.step = OpStep::MemS;
      op.access = Operand::kWrite;
      op.size = info.mem_size;
      break;
    case 'A': {
      op.step = OpStep::MemA;
      std::uint8_t access = Operand::kNone;
      if (info.flags & F_LOAD) access |= Operand::kRead;
      if (info.flags & F_STORE) access |= Operand::kWrite;
      op.access = access;
      op.size = info.mem_size;
      break;
    }
    case 'c': op.step = OpStep::Csr; break;
    case 'Z': op.step = OpStep::Zimm; break;
    case 'x': op.step = OpStep::RoundMode; break;
    case 'q': op.step = OpStep::AqRl; break;
    case 'f': op.step = OpStep::FenceSet; break;
    default: op.step = OpStep::RoundMode; break;  // unreachable for valid specs
  }
  return op;
}

DecodeEntry compile_entry(const OpcodeInfo& info) {
  DecodeEntry e;
  e.match = info.match;
  e.mask = info.mask;
  e.mnemonic = info.mnemonic;
  e.ext = info.ext;
  for (const char* p = info.spec; *p && e.nops < Instruction::kMaxOperands; ++p)
    e.ops[e.nops++] = compile_spec_char(*p, info);
  // Prototype: the decoded form of word 0 — every field a real decode would
  // produce from the bits is then overwritten by patch_decoded.
  e.proto.set(info.mnemonic, 0, 4);
  emit_operands(e, 0, &e.proto);
  return e;
}

// Deterministic most-specific-first order: larger mask population wins,
// mnemonic index breaks ties (the reference scan sorts identically so the
// two paths stay bit-compatible).
bool more_specific(const DecodeEntry& a, const DecodeEntry& b) {
  const int pa = __builtin_popcount(a.mask), pb = __builtin_popcount(b.mask);
  if (pa != pb) return pa > pb;
  return a.mnemonic < b.mnemonic;
}

constexpr std::uint32_t kFunct3Mask = 0x7000;
constexpr std::uint32_t kFunct7Mask = 0xfe000000;

DispatchTable build_dispatch_table() {
  DispatchTable t;
  std::vector<DecodeEntry> slot_lists[128 * 8];
  for (std::uint16_t m = 0; m < static_cast<std::uint16_t>(Mnemonic::kCount);
       ++m) {
    const OpcodeInfo& info = opcode_info(static_cast<Mnemonic>(m));
    const DecodeEntry e = compile_entry(info);
    const std::uint32_t major = info.match & 0x7f;
    if ((info.mask & kFunct3Mask) == kFunct3Mask) {
      slot_lists[major * 8 + ((info.match >> 12) & 7)].push_back(e);
    } else {
      // funct3 is (partly) an operand field: candidate in every funct3 slot.
      for (unsigned f3 = 0; f3 < 8; ++f3)
        slot_lists[major * 8 + f3].push_back(e);
    }
  }
  for (unsigned s = 0; s < 128 * 8; ++s) {
    auto& list = slot_lists[s];
    DispatchTable::Slot& slot = t.slots[s];
    if (list.empty()) continue;
    const bool f7_indexable =
        list.size() > 1 &&
        std::all_of(list.begin(), list.end(), [](const DecodeEntry& e) {
          return (e.mask & kFunct7Mask) == kFunct7Mask;
        });
    if (f7_indexable) {
      // Group by funct7 value, most-specific first within each group.
      std::sort(list.begin(), list.end(),
                [](const DecodeEntry& a, const DecodeEntry& b) {
                  const std::uint32_t fa = a.match >> 25, fb = b.match >> 25;
                  if (fa != fb) return fa < fb;
                  return more_specific(a, b);
                });
      slot.f7 = static_cast<std::int32_t>(t.f7_ranges.size());
      t.f7_ranges.resize(t.f7_ranges.size() + 128);
      std::size_t i = 0;
      while (i < list.size()) {
        const std::uint32_t f7 = list[i].match >> 25;
        const std::uint32_t begin =
            static_cast<std::uint32_t>(t.entries.size() + i);
        std::size_t j = i;
        while (j < list.size() && (list[j].match >> 25) == f7) ++j;
        t.f7_ranges[static_cast<std::size_t>(slot.f7) + f7] = {
            begin, static_cast<std::uint32_t>(t.entries.size() + j)};
        i = j;
      }
    } else {
      std::sort(list.begin(), list.end(), more_specific);
    }
    slot.all.begin = static_cast<std::uint32_t>(t.entries.size());
    t.entries.insert(t.entries.end(), list.begin(), list.end());
    slot.all.end = static_cast<std::uint32_t>(t.entries.size());
  }
  return t;
}

std::vector<Instruction> build_rvc_table() {
  std::vector<Instruction> table(65536);
  // Decode with every extension enabled; lookups gate on the expansion's
  // required extension instead.
  const Decoder dec(ExtensionSet(0xffff), NoTableWarm{});
  for (std::uint32_t half = 0; half < 65536; ++half) {
    if ((half & 0x3) == 0x3) continue;  // 32-bit encoding space
    Instruction insn;
    if (dec.decode16_linear(static_cast<std::uint16_t>(half), &insn))
      table[half] = insn;
  }
  return table;
}

}  // namespace

const DispatchTable& dispatch_table() {
  static const DispatchTable t = build_dispatch_table();
  return t;
}

const std::vector<Instruction>& rvc_table() {
  static const std::vector<Instruction> t = build_rvc_table();
  return t;
}

void emit_operands(const DecodeEntry& e, std::uint32_t w, Instruction* out) {
  for (unsigned i = 0; i < e.nops; ++i) {
    const CompiledOperand& c = e.ops[i];
    Operand o;
    switch (c.step) {
      case OpStep::Rd:
        o.kind = Operand::Kind::Reg;
        o.reg = rd_of(w);
        o.access = Operand::kWrite;
        break;
      case OpStep::Rs1:
        o.kind = Operand::Kind::Reg;
        o.reg = rs1_of(w);
        o.access = Operand::kRead;
        break;
      case OpStep::Rs2:
        o.kind = Operand::Kind::Reg;
        o.reg = rs2_of(w);
        o.access = Operand::kRead;
        break;
      case OpStep::FRd:
        o.kind = Operand::Kind::Reg;
        o.reg = rd_of(w, RegClass::Fp);
        o.access = Operand::kWrite;
        break;
      case OpStep::FRs1:
        o.kind = Operand::Kind::Reg;
        o.reg = rs1_of(w, RegClass::Fp);
        o.access = Operand::kRead;
        break;
      case OpStep::FRs2:
        o.kind = Operand::Kind::Reg;
        o.reg = rs2_of(w, RegClass::Fp);
        o.access = Operand::kRead;
        break;
      case OpStep::FRs3:
        o.kind = Operand::Kind::Reg;
        o.reg = rs3_of(w);
        o.access = Operand::kRead;
        break;
      case OpStep::ImmI:
        o.kind = Operand::Kind::Imm;
        o.imm = imm_i(w);
        break;
      case OpStep::ImmU:
        o.kind = Operand::Kind::Imm;
        o.imm = imm_u(w);
        break;
      case OpStep::PcRelB:
        o.kind = Operand::Kind::PcRelative;
        o.imm = imm_b(w);
        break;
      case OpStep::PcRelJ:
        o.kind = Operand::Kind::PcRelative;
        o.imm = imm_j(w);
        break;
      case OpStep::Shamt6:
        o.kind = Operand::Kind::Imm;
        o.imm = static_cast<std::int64_t>(bits(w, 20, 6));
        break;
      case OpStep::Shamt5:
        o.kind = Operand::Kind::Imm;
        o.imm = static_cast<std::int64_t>(bits(w, 20, 5));
        break;
      case OpStep::MemI:
        o.kind = Operand::Kind::Mem;
        o.reg = rs1_of(w);
        o.imm = imm_i(w);
        o.size = c.size;
        o.access = c.access;
        break;
      case OpStep::MemS:
        o.kind = Operand::Kind::Mem;
        o.reg = rs1_of(w);
        o.imm = imm_s(w);
        o.size = c.size;
        o.access = c.access;
        break;
      case OpStep::MemA:
        o.kind = Operand::Kind::Mem;
        o.reg = rs1_of(w);
        o.imm = 0;
        o.size = c.size;
        o.access = c.access;
        break;
      case OpStep::Csr:
        o.kind = Operand::Kind::Csr;
        o.imm = static_cast<std::int64_t>(bits(w, 20, 12));
        o.access = Operand::kRW;
        break;
      case OpStep::Zimm:
        o.kind = Operand::Kind::Imm;
        o.imm = static_cast<std::int64_t>(bits(w, 15, 5));
        break;
      case OpStep::RoundMode:
        o.kind = Operand::Kind::RoundMode;
        o.imm = static_cast<std::int64_t>(bits(w, 12, 3));
        break;
      case OpStep::AqRl:
        o.kind = Operand::Kind::Ordering;
        o.imm = static_cast<std::int64_t>(bits(w, 25, 2));
        break;
      case OpStep::FenceSet:
        o.kind = Operand::Kind::Ordering;
        o.imm = static_cast<std::int64_t>(bits(w, 20, 12));
        break;
    }
    out->add_operand(o);
  }
}

void patch_decoded(const DecodeEntry& e, std::uint32_t w, Instruction* out) {
  out->raw_ = w;
  for (unsigned i = 0; i < e.nops; ++i) {
    Operand& o = out->ops_[i];
    switch (e.ops[i].step) {
      case OpStep::Rd:
      case OpStep::FRd:
        o.reg.num = static_cast<std::uint8_t>(bits(w, 7, 5));
        break;
      case OpStep::Rs1:
      case OpStep::FRs1:
        o.reg.num = static_cast<std::uint8_t>(bits(w, 15, 5));
        break;
      case OpStep::Rs2:
      case OpStep::FRs2:
        o.reg.num = static_cast<std::uint8_t>(bits(w, 20, 5));
        break;
      case OpStep::FRs3:
        o.reg.num = static_cast<std::uint8_t>(bits(w, 27, 5));
        break;
      case OpStep::ImmI:
        o.imm = imm_i(w);
        break;
      case OpStep::ImmU:
        o.imm = imm_u(w);
        break;
      case OpStep::PcRelB:
        o.imm = imm_b(w);
        break;
      case OpStep::PcRelJ:
        o.imm = imm_j(w);
        break;
      case OpStep::Shamt6:
        o.imm = static_cast<std::int64_t>(bits(w, 20, 6));
        break;
      case OpStep::Shamt5:
        o.imm = static_cast<std::int64_t>(bits(w, 20, 5));
        break;
      case OpStep::MemI:
        o.reg.num = static_cast<std::uint8_t>(bits(w, 15, 5));
        o.imm = imm_i(w);
        break;
      case OpStep::MemS:
        o.reg.num = static_cast<std::uint8_t>(bits(w, 15, 5));
        o.imm = imm_s(w);
        break;
      case OpStep::MemA:
        o.reg.num = static_cast<std::uint8_t>(bits(w, 15, 5));
        break;
      case OpStep::Csr:
        o.imm = static_cast<std::int64_t>(bits(w, 20, 12));
        break;
      case OpStep::Zimm:
        o.imm = static_cast<std::int64_t>(bits(w, 15, 5));
        break;
      case OpStep::RoundMode:
        o.imm = static_cast<std::int64_t>(bits(w, 12, 3));
        break;
      case OpStep::AqRl:
        o.imm = static_cast<std::int64_t>(bits(w, 25, 2));
        break;
      case OpStep::FenceSet:
        o.imm = static_cast<std::int64_t>(bits(w, 20, 12));
        break;
    }
  }
}

}  // namespace rvdyn::isa::detail
