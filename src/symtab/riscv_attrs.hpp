// .riscv.attributes: the RISC-V build-attributes section (paper §3.2.1).
//
// Format (RISC-V psABI): a one-byte format version 'A', then a sequence of
// vendor subsections. Each subsection: uint32 length, NUL-terminated vendor
// name ("riscv"), then sub-subsections of (uleb128 tag, uint32 length,
// attributes). The attribute we care about is Tag_RISCV_arch (tag 5), an
// NTBS holding the ISA string ("rv64imafdc_zicsr_...").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rvdyn::symtab {

inline constexpr std::uint64_t Tag_RISCV_stack_align = 4;
inline constexpr std::uint64_t Tag_RISCV_arch = 5;
inline constexpr std::uint64_t Tag_File = 1;

/// Extract the arch ISA string from a .riscv.attributes payload.
/// Returns nullopt when the section is malformed or has no arch attribute.
std::optional<std::string> parse_riscv_arch_attribute(
    std::span<const std::uint8_t> section);

/// Build a minimal .riscv.attributes payload carrying `arch` (and the
/// standard 16-byte stack alignment), byte-compatible with GCC's output.
std::vector<std::uint8_t> build_riscv_attributes(const std::string& arch);

}  // namespace rvdyn::symtab
