// SymtabAPI: platform-independent view of how a binary is structured and
// stored in its file (paper §2.1, §3.2.1).
//
// Provides sections, symbols and the RISC-V-specific extension discovery:
// `extensions()` implements the paper's policy of preferring the
// .riscv.attributes arch string and falling back to e_flags bits
// (EF_RISCV_RVC / FLOAT_ABI), since e_flags is present in every ELF while
// the attributes section is optional.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "isa/extensions.hpp"
#include "symtab/elf.hpp"

namespace rvdyn::symtab {

/// One section with its contents held in memory.
struct Section {
  std::string name;
  std::uint32_t type = SHT_PROGBITS;
  std::uint64_t flags = 0;
  std::uint64_t addr = 0;
  std::uint64_t addralign = 1;
  std::uint64_t entsize = 0;
  std::uint32_t link = 0;
  std::uint32_t info = 0;
  std::vector<std::uint8_t> data;  ///< empty for SHT_NOBITS
  std::uint64_t nobits_size = 0;   ///< memory size for SHT_NOBITS sections

  std::uint64_t size() const {
    return type == SHT_NOBITS ? nobits_size : data.size();
  }
  bool is_code() const { return flags & SHF_EXECINSTR; }
  bool is_alloc() const { return flags & SHF_ALLOC; }
  bool contains(std::uint64_t a) const {
    return a >= addr && a < addr + size();
  }
};

/// One symbol-table entry.
struct Symbol {
  std::string name;
  std::uint64_t value = 0;
  std::uint64_t size = 0;
  std::uint8_t bind = STB_GLOBAL;
  std::uint8_t type = STT_NOTYPE;
  std::uint16_t shndx = SHN_ABS;  ///< header index (resolved on read/write)

  bool is_function() const { return type == STT_FUNC; }
};

/// In-memory model of an ELF binary: read, inspect, modify, write.
class Symtab {
 public:
  /// Parse an ELF image. Throws Error on malformed input or on a binary
  /// that is not little-endian ELF64.
  static Symtab read(std::span<const std::uint8_t> image);
  static Symtab read_file(const std::string& path);

  /// Serialize to an ELF executable image with one PT_LOAD per allocatable
  /// section. Section file offsets are assigned congruent to their virtual
  /// addresses modulo the page size so the image is directly mappable.
  std::vector<std::uint8_t> write() const;
  void write_file(const std::string& path) const;

  // --- header fields ---
  std::uint16_t e_type = ET_EXEC;
  std::uint64_t entry = 0;
  std::uint32_t e_flags = 0;

  // --- sections ---
  std::vector<Section>& sections() { return sections_; }
  const std::vector<Section>& sections() const { return sections_; }
  Section* find_section(const std::string& name);
  const Section* find_section(const std::string& name) const;
  Section& add_section(Section s);
  /// The section whose [addr, addr+size) contains `a`, or nullptr.
  const Section* section_containing(std::uint64_t a) const;
  Section* section_containing(std::uint64_t a);

  // --- symbols ---
  std::vector<Symbol>& symbols() { return symbols_; }
  const std::vector<Symbol>& symbols() const { return symbols_; }
  void add_symbol(Symbol s) { symbols_.push_back(std::move(s)); }
  const Symbol* find_symbol(const std::string& name) const;
  /// All function symbols (STT_FUNC), the seeds for ParseAPI.
  std::vector<const Symbol*> function_symbols() const;

  // --- RISC-V extension discovery (paper §3.2.1) ---
  /// Extension set of the mutatee: parsed from .riscv.attributes when the
  /// section exists, otherwise derived from e_flags. Returns at least the
  /// base ISA.
  isa::ExtensionSet extensions() const;

  /// Record `exts` in both e_flags and a .riscv.attributes section, the
  /// same two places compilers record them.
  void set_extensions(isa::ExtensionSet exts);

  /// Read `size` bytes at virtual address `a` across sections; nullopt when
  /// the range is unmapped or spans a section boundary.
  std::optional<std::uint64_t> read_addr(std::uint64_t a, unsigned size) const;

  /// True when `a` falls inside a code (SHF_EXECINSTR) section.
  bool in_code(std::uint64_t a) const;

 private:
  std::vector<Section> sections_;
  std::vector<Symbol> symbols_;
};

}  // namespace rvdyn::symtab
