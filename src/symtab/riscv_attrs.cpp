#include "symtab/riscv_attrs.hpp"

#include <cstring>

#include "common/leb128.hpp"

namespace rvdyn::symtab {

namespace {

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void write_u32(std::vector<std::uint8_t>& out, std::size_t pos,
               std::uint32_t v) {
  std::memcpy(out.data() + pos, &v, 4);
}

}  // namespace

std::optional<std::string> parse_riscv_arch_attribute(
    std::span<const std::uint8_t> sec) {
  if (sec.size() < 1 || sec[0] != 'A') return std::nullopt;
  std::size_t pos = 1;
  while (pos + 4 <= sec.size()) {
    const std::uint32_t sub_len = read_u32(sec.data() + pos);
    if (sub_len < 4 || pos + sub_len > sec.size()) return std::nullopt;
    const std::size_t sub_end = pos + sub_len;
    std::size_t p = pos + 4;
    // Vendor name (NTBS).
    const auto* name_begin = sec.data() + p;
    const auto* name_end = static_cast<const std::uint8_t*>(
        std::memchr(name_begin, 0, sub_end - p));
    if (!name_end) return std::nullopt;
    const std::string vendor(reinterpret_cast<const char*>(name_begin),
                             static_cast<std::size_t>(name_end - name_begin));
    p += vendor.size() + 1;
    if (vendor == "riscv") {
      // Sub-subsections: uleb128 tag, uint32 length, attribute data.
      while (p < sub_end) {
        std::size_t q = p;
        const std::uint64_t tag = uleb128_read(sec.data(), sub_end, &q);
        if (q + 4 > sub_end) return std::nullopt;
        const std::uint32_t len = read_u32(sec.data() + q);
        const std::size_t ss_end = p + len;
        if (len < (q + 4 - p) || ss_end > sub_end) return std::nullopt;
        q += 4;
        if (tag == Tag_File) {
          // Attribute list: (uleb128 tag, then NTBS or uleb128 value).
          while (q < ss_end) {
            const std::uint64_t atag = uleb128_read(sec.data(), ss_end, &q);
            if (atag == Tag_RISCV_arch) {
              const auto* s = sec.data() + q;
              const auto* e = static_cast<const std::uint8_t*>(
                  std::memchr(s, 0, ss_end - q));
              if (!e) return std::nullopt;
              return std::string(reinterpret_cast<const char*>(s),
                                 static_cast<std::size_t>(e - s));
            }
            // Even tags carry uleb128 values, odd tags carry strings
            // (generic build-attributes convention).
            if (atag % 2 == 0) {
              uleb128_read(sec.data(), ss_end, &q);
            } else {
              const auto* s = sec.data() + q;
              const auto* e = static_cast<const std::uint8_t*>(
                  std::memchr(s, 0, ss_end - q));
              if (!e) return std::nullopt;
              q += static_cast<std::size_t>(e - s) + 1;
            }
          }
        }
        p = ss_end;
      }
    }
    pos = sub_end;
  }
  return std::nullopt;
}

std::vector<std::uint8_t> build_riscv_attributes(const std::string& arch) {
  std::vector<std::uint8_t> out;
  out.push_back('A');

  const std::size_t sub_len_pos = out.size();
  out.resize(out.size() + 4);  // subsection length, patched below
  const char vendor[] = "riscv";
  out.insert(out.end(), vendor, vendor + sizeof(vendor));

  const std::size_t ss_start = out.size();
  uleb128_write(out, Tag_File);
  const std::size_t ss_len_pos = out.size();
  out.resize(out.size() + 4);  // sub-subsection length, patched below

  uleb128_write(out, Tag_RISCV_stack_align);
  uleb128_write(out, 16);
  uleb128_write(out, Tag_RISCV_arch);
  out.insert(out.end(), arch.begin(), arch.end());
  out.push_back(0);

  write_u32(out, ss_len_pos, static_cast<std::uint32_t>(out.size() - ss_start));
  write_u32(out, sub_len_pos,
            static_cast<std::uint32_t>(out.size() - sub_len_pos));
  return out;
}

}  // namespace rvdyn::symtab
