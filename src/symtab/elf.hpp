// ELF64 on-disk structures and the constants rvdyn needs.
//
// Self-contained (no <elf.h> dependency) so the toolkit builds identically
// on any host. Only the little-endian 64-bit class is supported, which is
// what the RISC-V psABI uses for RV64.
#pragma once

#include <cstdint>

namespace rvdyn::symtab {

// e_ident layout.
inline constexpr unsigned EI_MAG0 = 0;
inline constexpr unsigned EI_CLASS = 4;
inline constexpr unsigned EI_DATA = 5;
inline constexpr unsigned EI_VERSION = 6;
inline constexpr unsigned EI_NIDENT = 16;
inline constexpr std::uint8_t ELFCLASS64 = 2;
inline constexpr std::uint8_t ELFDATA2LSB = 1;

// e_type.
inline constexpr std::uint16_t ET_REL = 1;
inline constexpr std::uint16_t ET_EXEC = 2;
inline constexpr std::uint16_t ET_DYN = 3;

// e_machine.
inline constexpr std::uint16_t EM_RISCV = 243;

// RISC-V e_flags (psABI): the fields SymtabAPI extracts to learn which
// extensions the binary was compiled for (paper §3.2.1).
inline constexpr std::uint32_t EF_RISCV_RVC = 0x0001;
inline constexpr std::uint32_t EF_RISCV_FLOAT_ABI_SOFT = 0x0000;
inline constexpr std::uint32_t EF_RISCV_FLOAT_ABI_SINGLE = 0x0002;
inline constexpr std::uint32_t EF_RISCV_FLOAT_ABI_DOUBLE = 0x0004;
inline constexpr std::uint32_t EF_RISCV_FLOAT_ABI_MASK = 0x0006;

// Section types.
inline constexpr std::uint32_t SHT_NULL = 0;
inline constexpr std::uint32_t SHT_PROGBITS = 1;
inline constexpr std::uint32_t SHT_SYMTAB = 2;
inline constexpr std::uint32_t SHT_STRTAB = 3;
inline constexpr std::uint32_t SHT_NOBITS = 8;
inline constexpr std::uint32_t SHT_RISCV_ATTRIBUTES = 0x70000003;

// Section flags.
inline constexpr std::uint64_t SHF_WRITE = 0x1;
inline constexpr std::uint64_t SHF_ALLOC = 0x2;
inline constexpr std::uint64_t SHF_EXECINSTR = 0x4;

// Segment types and flags.
inline constexpr std::uint32_t PT_LOAD = 1;
inline constexpr std::uint32_t PF_X = 0x1;
inline constexpr std::uint32_t PF_W = 0x2;
inline constexpr std::uint32_t PF_R = 0x4;

// Symbol binding / type (packed into st_info).
inline constexpr std::uint8_t STB_LOCAL = 0;
inline constexpr std::uint8_t STB_GLOBAL = 1;
inline constexpr std::uint8_t STT_NOTYPE = 0;
inline constexpr std::uint8_t STT_OBJECT = 1;
inline constexpr std::uint8_t STT_FUNC = 2;
inline constexpr std::uint8_t STT_SECTION = 3;

inline constexpr std::uint16_t SHN_UNDEF = 0;
inline constexpr std::uint16_t SHN_ABS = 0xfff1;

constexpr std::uint8_t st_info(std::uint8_t bind, std::uint8_t type) {
  return static_cast<std::uint8_t>((bind << 4) | (type & 0xf));
}
constexpr std::uint8_t st_bind(std::uint8_t info) { return info >> 4; }
constexpr std::uint8_t st_type(std::uint8_t info) { return info & 0xf; }

#pragma pack(push, 1)
struct Elf64_Ehdr {
  std::uint8_t e_ident[EI_NIDENT];
  std::uint16_t e_type;
  std::uint16_t e_machine;
  std::uint32_t e_version;
  std::uint64_t e_entry;
  std::uint64_t e_phoff;
  std::uint64_t e_shoff;
  std::uint32_t e_flags;
  std::uint16_t e_ehsize;
  std::uint16_t e_phentsize;
  std::uint16_t e_phnum;
  std::uint16_t e_shentsize;
  std::uint16_t e_shnum;
  std::uint16_t e_shstrndx;
};

struct Elf64_Shdr {
  std::uint32_t sh_name;
  std::uint32_t sh_type;
  std::uint64_t sh_flags;
  std::uint64_t sh_addr;
  std::uint64_t sh_offset;
  std::uint64_t sh_size;
  std::uint32_t sh_link;
  std::uint32_t sh_info;
  std::uint64_t sh_addralign;
  std::uint64_t sh_entsize;
};

struct Elf64_Phdr {
  std::uint32_t p_type;
  std::uint32_t p_flags;
  std::uint64_t p_offset;
  std::uint64_t p_vaddr;
  std::uint64_t p_paddr;
  std::uint64_t p_filesz;
  std::uint64_t p_memsz;
  std::uint64_t p_align;
};

struct Elf64_Sym {
  std::uint32_t st_name;
  std::uint8_t st_info;
  std::uint8_t st_other;
  std::uint16_t st_shndx;
  std::uint64_t st_value;
  std::uint64_t st_size;
};
#pragma pack(pop)

static_assert(sizeof(Elf64_Ehdr) == 64);
static_assert(sizeof(Elf64_Shdr) == 64);
static_assert(sizeof(Elf64_Phdr) == 56);
static_assert(sizeof(Elf64_Sym) == 24);

}  // namespace rvdyn::symtab
