#include "symtab/symtab.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/bits.hpp"
#include "symtab/riscv_attrs.hpp"

namespace rvdyn::symtab {

namespace {

constexpr std::uint64_t kPageSize = 0x1000;

std::string str_at(std::span<const std::uint8_t> image, std::uint64_t strtab_off,
                   std::uint64_t strtab_size, std::uint32_t idx) {
  if (idx >= strtab_size) return {};
  const char* base = reinterpret_cast<const char*>(image.data()) + strtab_off;
  const std::size_t maxlen = strtab_size - idx;
  const std::size_t len = ::strnlen(base + idx, maxlen);
  return std::string(base + idx, len);
}

}  // namespace

Symtab Symtab::read(std::span<const std::uint8_t> image) {
  if (image.size() < sizeof(Elf64_Ehdr)) throw Error("ELF: image too small");
  Elf64_Ehdr eh;
  std::memcpy(&eh, image.data(), sizeof(eh));
  if (eh.e_ident[0] != 0x7f || eh.e_ident[1] != 'E' || eh.e_ident[2] != 'L' ||
      eh.e_ident[3] != 'F')
    throw Error("ELF: bad magic");
  if (eh.e_ident[EI_CLASS] != ELFCLASS64 ||
      eh.e_ident[EI_DATA] != ELFDATA2LSB)
    throw Error("ELF: only little-endian ELF64 is supported");

  Symtab st;
  st.e_type = eh.e_type;
  st.entry = eh.e_entry;
  st.e_flags = eh.e_flags;

  if (eh.e_shoff == 0 || eh.e_shnum == 0) return st;
  if (eh.e_shoff + std::uint64_t(eh.e_shnum) * sizeof(Elf64_Shdr) >
      image.size())
    throw Error("ELF: section headers out of bounds");

  std::vector<Elf64_Shdr> shdrs(eh.e_shnum);
  std::memcpy(shdrs.data(), image.data() + eh.e_shoff,
              shdrs.size() * sizeof(Elf64_Shdr));

  if (eh.e_shstrndx >= eh.e_shnum) throw Error("ELF: bad shstrndx");
  const Elf64_Shdr& shstr = shdrs[eh.e_shstrndx];
  if (shstr.sh_offset + shstr.sh_size > image.size())
    throw Error("ELF: shstrtab out of bounds");

  for (std::uint16_t i = 1; i < eh.e_shnum; ++i) {
    const Elf64_Shdr& sh = shdrs[i];
    const std::string name =
        str_at(image, shstr.sh_offset, shstr.sh_size, sh.sh_name);
    if (sh.sh_type == SHT_STRTAB || sh.sh_type == SHT_SYMTAB) continue;

    Section s;
    s.name = name;
    s.type = sh.sh_type;
    s.flags = sh.sh_flags;
    s.addr = sh.sh_addr;
    s.addralign = sh.sh_addralign ? sh.sh_addralign : 1;
    s.entsize = sh.sh_entsize;
    s.link = sh.sh_link;
    s.info = sh.sh_info;
    if (sh.sh_type == SHT_NOBITS) {
      s.nobits_size = sh.sh_size;
    } else {
      if (sh.sh_offset + sh.sh_size > image.size())
        throw Error("ELF: section '" + name + "' out of bounds");
      s.data.assign(image.begin() + sh.sh_offset,
                    image.begin() + sh.sh_offset + sh.sh_size);
    }
    st.sections_.push_back(std::move(s));
  }

  // Symbols (from the first SHT_SYMTAB header).
  for (std::uint16_t i = 1; i < eh.e_shnum; ++i) {
    const Elf64_Shdr& sh = shdrs[i];
    if (sh.sh_type != SHT_SYMTAB) continue;
    if (sh.sh_link >= eh.e_shnum) throw Error("ELF: bad symtab link");
    const Elf64_Shdr& strtab = shdrs[sh.sh_link];
    if (sh.sh_offset + sh.sh_size > image.size() ||
        strtab.sh_offset + strtab.sh_size > image.size())
      throw Error("ELF: symtab out of bounds");
    const std::size_t count = sh.sh_size / sizeof(Elf64_Sym);
    for (std::size_t j = 1; j < count; ++j) {
      Elf64_Sym sym;
      std::memcpy(&sym, image.data() + sh.sh_offset + j * sizeof(Elf64_Sym),
                  sizeof(sym));
      Symbol out;
      out.name = str_at(image, strtab.sh_offset, strtab.sh_size, sym.st_name);
      out.value = sym.st_value;
      out.size = sym.st_size;
      out.bind = st_bind(sym.st_info);
      out.type = st_type(sym.st_info);
      out.shndx = SHN_ABS;  // executables address symbols by vaddr
      if (out.type == STT_SECTION) continue;
      st.symbols_.push_back(std::move(out));
    }
    break;
  }
  return st;
}

Symtab Symtab::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return read(bytes);
}

std::vector<std::uint8_t> Symtab::write() const {
  // Build string tables.
  std::string shstrtab(1, '\0');
  auto intern_sh = [&shstrtab](const std::string& s) {
    const auto pos = shstrtab.size();
    shstrtab += s;
    shstrtab += '\0';
    return static_cast<std::uint32_t>(pos);
  };
  std::string strtab(1, '\0');
  auto intern_str = [&strtab](const std::string& s) {
    if (s.empty()) return 0u;
    const auto pos = strtab.size();
    strtab += s;
    strtab += '\0';
    return static_cast<std::uint32_t>(pos);
  };

  // Section layout: NULL + user sections + .symtab + .strtab + .shstrtab.
  const std::size_t n_user = sections_.size();
  const std::uint16_t symtab_idx = static_cast<std::uint16_t>(1 + n_user);
  const std::uint16_t strtab_idx = static_cast<std::uint16_t>(2 + n_user);
  const std::uint16_t shstrtab_idx = static_cast<std::uint16_t>(3 + n_user);
  const std::uint16_t shnum = static_cast<std::uint16_t>(4 + n_user);

  // Serialize symbols (locals first, as the spec requires).
  std::vector<Elf64_Sym> syms;
  syms.push_back({});  // index 0: undefined symbol
  std::vector<const Symbol*> ordered;
  for (const auto& s : symbols_)
    if (s.bind == STB_LOCAL) ordered.push_back(&s);
  const std::uint32_t n_local = static_cast<std::uint32_t>(ordered.size() + 1);
  for (const auto& s : symbols_)
    if (s.bind != STB_LOCAL) ordered.push_back(&s);
  for (const Symbol* s : ordered) {
    Elf64_Sym e{};
    e.st_name = intern_str(s->name);
    e.st_info = st_info(s->bind, s->type);
    e.st_value = s->value;
    e.st_size = s->size;
    e.st_shndx = s->shndx;
    syms.push_back(e);
  }

  // Program headers: one PT_LOAD per allocatable section.
  std::vector<const Section*> loadable;
  for (const auto& s : sections_)
    if (s.is_alloc()) loadable.push_back(&s);

  const std::uint64_t phoff = sizeof(Elf64_Ehdr);
  const std::uint64_t headers_end =
      phoff + loadable.size() * sizeof(Elf64_Phdr);

  // Assign file offsets: allocatable sections congruent to vaddr mod page.
  std::vector<Elf64_Shdr> shdrs(shnum);
  std::uint64_t cursor = headers_end;
  std::vector<std::uint64_t> offsets(sections_.size(), 0);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    if (s.type == SHT_NOBITS) {
      // No file bytes, but keep the offset congruent to the vaddr so the
      // segment table stays uniformly mappable.
      std::uint64_t off = cursor;
      const std::uint64_t want = s.addr % kPageSize;
      if (off % kPageSize != want)
        off += (want + kPageSize - off % kPageSize) % kPageSize;
      offsets[i] = off;
      continue;
    }
    std::uint64_t off = align_up(cursor, std::max<std::uint64_t>(s.addralign, 1));
    if (s.is_alloc()) {
      // Make offset ≡ vaddr (mod page) so the segment maps directly.
      const std::uint64_t want = s.addr % kPageSize;
      if (off % kPageSize != want)
        off += (want + kPageSize - off % kPageSize) % kPageSize;
    }
    offsets[i] = off;
    cursor = off + s.data.size();
  }
  const std::uint64_t symtab_off = align_up(cursor, 8);
  const std::uint64_t strtab_off = symtab_off + syms.size() * sizeof(Elf64_Sym);

  // Section-header names must be interned before shstrtab gets placed.
  std::vector<std::uint32_t> name_offsets(sections_.size());
  for (std::size_t i = 0; i < sections_.size(); ++i)
    name_offsets[i] = intern_sh(sections_[i].name);
  const std::uint32_t symtab_name = intern_sh(".symtab");
  const std::uint32_t strtab_name = intern_sh(".strtab");
  const std::uint32_t shstrtab_name = intern_sh(".shstrtab");

  const std::uint64_t shstrtab_off = strtab_off + strtab.size();
  const std::uint64_t shoff = align_up(shstrtab_off + shstrtab.size(), 8);

  // Fill section headers.
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    Elf64_Shdr& sh = shdrs[1 + i];
    sh.sh_name = name_offsets[i];
    sh.sh_type = s.type;
    sh.sh_flags = s.flags;
    sh.sh_addr = s.addr;
    sh.sh_offset = offsets[i];
    sh.sh_size = s.size();
    sh.sh_link = s.link;
    sh.sh_info = s.info;
    sh.sh_addralign = s.addralign;
    sh.sh_entsize = s.entsize;
  }
  shdrs[symtab_idx] = {symtab_name, SHT_SYMTAB, 0, 0, symtab_off,
                       syms.size() * sizeof(Elf64_Sym), strtab_idx, n_local,
                       8, sizeof(Elf64_Sym)};
  shdrs[strtab_idx] = {strtab_name, SHT_STRTAB, 0, 0, strtab_off,
                       strtab.size(), 0, 0, 1, 0};
  shdrs[shstrtab_idx] = {shstrtab_name, SHT_STRTAB, 0, 0, shstrtab_off,
                         shstrtab.size(), 0, 0, 1, 0};

  // Emit the image.
  std::vector<std::uint8_t> out(shoff + shnum * sizeof(Elf64_Shdr), 0);

  Elf64_Ehdr eh{};
  eh.e_ident[0] = 0x7f;
  eh.e_ident[1] = 'E';
  eh.e_ident[2] = 'L';
  eh.e_ident[3] = 'F';
  eh.e_ident[EI_CLASS] = ELFCLASS64;
  eh.e_ident[EI_DATA] = ELFDATA2LSB;
  eh.e_ident[EI_VERSION] = 1;
  eh.e_type = e_type;
  eh.e_machine = EM_RISCV;
  eh.e_version = 1;
  eh.e_entry = entry;
  eh.e_phoff = loadable.empty() ? 0 : phoff;
  eh.e_shoff = shoff;
  eh.e_flags = e_flags;
  eh.e_ehsize = sizeof(Elf64_Ehdr);
  eh.e_phentsize = sizeof(Elf64_Phdr);
  eh.e_phnum = static_cast<std::uint16_t>(loadable.size());
  eh.e_shentsize = sizeof(Elf64_Shdr);
  eh.e_shnum = shnum;
  eh.e_shstrndx = shstrtab_idx;
  std::memcpy(out.data(), &eh, sizeof(eh));

  // Program headers.
  std::size_t ph_pos = phoff;
  for (const Section* s : loadable) {
    const std::size_t si = static_cast<std::size_t>(s - sections_.data());
    Elf64_Phdr ph{};
    ph.p_type = PT_LOAD;
    ph.p_flags = PF_R;
    if (s->flags & SHF_WRITE) ph.p_flags |= PF_W;
    if (s->flags & SHF_EXECINSTR) ph.p_flags |= PF_X;
    ph.p_offset = offsets[si];
    ph.p_vaddr = s->addr;
    ph.p_paddr = s->addr;
    ph.p_filesz = s->type == SHT_NOBITS ? 0 : s->data.size();
    ph.p_memsz = s->size();
    ph.p_align = kPageSize;
    std::memcpy(out.data() + ph_pos, &ph, sizeof(ph));
    ph_pos += sizeof(ph);
  }

  // Section contents.
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    if (s.type == SHT_NOBITS || s.data.empty()) continue;
    std::memcpy(out.data() + offsets[i], s.data.data(), s.data.size());
  }
  std::memcpy(out.data() + symtab_off, syms.data(),
              syms.size() * sizeof(Elf64_Sym));
  std::memcpy(out.data() + strtab_off, strtab.data(), strtab.size());
  std::memcpy(out.data() + shstrtab_off, shstrtab.data(), shstrtab.size());
  std::memcpy(out.data() + shoff, shdrs.data(), shnum * sizeof(Elf64_Shdr));
  return out;
}

void Symtab::write_file(const std::string& path) const {
  const auto image = write();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
}

Section* Symtab::find_section(const std::string& name) {
  for (auto& s : sections_)
    if (s.name == name) return &s;
  return nullptr;
}

const Section* Symtab::find_section(const std::string& name) const {
  for (const auto& s : sections_)
    if (s.name == name) return &s;
  return nullptr;
}

Section& Symtab::add_section(Section s) {
  sections_.push_back(std::move(s));
  return sections_.back();
}

const Section* Symtab::section_containing(std::uint64_t a) const {
  for (const auto& s : sections_)
    if (s.is_alloc() && s.contains(a)) return &s;
  return nullptr;
}

Section* Symtab::section_containing(std::uint64_t a) {
  for (auto& s : sections_)
    if (s.is_alloc() && s.contains(a)) return &s;
  return nullptr;
}

const Symbol* Symtab::find_symbol(const std::string& name) const {
  for (const auto& s : symbols_)
    if (s.name == name) return &s;
  return nullptr;
}

std::vector<const Symbol*> Symtab::function_symbols() const {
  std::vector<const Symbol*> out;
  for (const auto& s : symbols_)
    if (s.is_function()) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const Symbol* a, const Symbol* b) { return a->value < b->value; });
  return out;
}

isa::ExtensionSet Symtab::extensions() const {
  // Preferred source: the .riscv.attributes arch string (paper §3.2.1).
  if (const Section* attrs = find_section(".riscv.attributes")) {
    if (auto arch = parse_riscv_arch_attribute(attrs->data))
      return isa::parse_isa_string(*arch);
  }
  // Fallback: e_flags, present in every ELF. It only records the C
  // extension and the float ABI; assume the G baseline integer subset.
  isa::ExtensionSet s;
  s.add(isa::Extension::I).add(isa::Extension::M).add(isa::Extension::A)
      .add(isa::Extension::Zicsr).add(isa::Extension::Zifencei);
  if (e_flags & EF_RISCV_RVC) s.add(isa::Extension::C);
  const std::uint32_t fabi = e_flags & EF_RISCV_FLOAT_ABI_MASK;
  if (fabi == EF_RISCV_FLOAT_ABI_SINGLE) s.add(isa::Extension::F);
  if (fabi == EF_RISCV_FLOAT_ABI_DOUBLE)
    s.add(isa::Extension::F).add(isa::Extension::D);
  return s;
}

void Symtab::set_extensions(isa::ExtensionSet exts) {
  e_flags &= ~(EF_RISCV_RVC | EF_RISCV_FLOAT_ABI_MASK);
  if (exts.has(isa::Extension::C)) e_flags |= EF_RISCV_RVC;
  if (exts.has(isa::Extension::D)) e_flags |= EF_RISCV_FLOAT_ABI_DOUBLE;
  else if (exts.has(isa::Extension::F)) e_flags |= EF_RISCV_FLOAT_ABI_SINGLE;

  const auto payload = build_riscv_attributes(isa::isa_string(exts));
  if (Section* attrs = find_section(".riscv.attributes")) {
    attrs->data = payload;
  } else {
    Section s;
    s.name = ".riscv.attributes";
    s.type = SHT_RISCV_ATTRIBUTES;
    s.data = payload;
    add_section(std::move(s));
  }
}

std::optional<std::uint64_t> Symtab::read_addr(std::uint64_t a,
                                               unsigned size) const {
  const Section* s = section_containing(a);
  if (!s || s->type == SHT_NOBITS) return std::nullopt;
  if (a + size > s->addr + s->data.size()) return std::nullopt;
  std::uint64_t v = 0;
  const std::size_t off = a - s->addr;
  for (unsigned i = 0; i < size; ++i)
    v |= static_cast<std::uint64_t>(s->data[off + i]) << (8 * i);
  return v;
}

bool Symtab::in_code(std::uint64_t a) const {
  const Section* s = section_containing(a);
  return s && s->is_code();
}

}  // namespace rvdyn::symtab
