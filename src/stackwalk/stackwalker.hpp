// StackwalkerAPI: call-stack collection with a plugin "frame stepper"
// architecture (paper §2.2, §3.2.7).
//
// RISC-V frames come in several shapes: the ABI designates x8 (s0/fp) as
// the frame pointer, but most compilers reuse it as a general register and
// address frames purely off sp. The walker therefore tries a list of
// steppers per frame, in order:
//  - FramePointerStepper: the textbook fp-chain walk;
//  - SpHeightStepper: DataflowAPI's stack-height analysis recovers the
//    frame size and return-address slot for fp-less code (the new "frame
//    stepper" the paper says RISC-V requires);
//  - LeafStepper: the first frame's return address may still live in ra.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "parse/cfg.hpp"
#include "proccontrol/process.hpp"

namespace rvdyn::stackwalk {

/// One record of an executing function.
struct Frame {
  std::uint64_t pc = 0;       ///< execution address in this frame
  std::uint64_t sp = 0;       ///< stack pointer on entry to this frame's use
  std::uint64_t fp = 0;       ///< frame-pointer register value (if tracked)
  std::uint64_t ra = 0;       ///< return-address register value (top frame)
  std::string func_name;      ///< resolved function name ("" when unknown)
  std::uint64_t func_entry = 0;
  const char* stepper = "";   ///< which plugin produced the *next* frame
};

/// Plugin interface: given the current frame, produce the caller's frame.
class FrameStepper {
 public:
  virtual ~FrameStepper() = default;
  virtual const char* name() const = 0;
  /// Returns the caller frame, or nullopt when this stepper cannot walk
  /// out of `frame` (the walker then tries the next plugin).
  virtual std::optional<Frame> step(proccontrol::Process& proc,
                                    const parse::CodeObject& co,
                                    const Frame& frame) = 0;
};

/// Walks fp-chained frames (gcc -fno-omit-frame-pointer layout: saved ra
/// at fp-8, saved caller fp at fp-16).
class FramePointerStepper : public FrameStepper {
 public:
  const char* name() const override { return "frame-pointer"; }
  std::optional<Frame> step(proccontrol::Process& proc,
                            const parse::CodeObject& co,
                            const Frame& frame) override;
};

/// Walks fp-less frames using stack-height analysis (paper §3.2.7).
class SpHeightStepper : public FrameStepper {
 public:
  const char* name() const override { return "sp-height"; }
  std::optional<Frame> step(proccontrol::Process& proc,
                            const parse::CodeObject& co,
                            const Frame& frame) override;
};

/// Top-frame-only: the return address is still in ra (leaf functions or
/// prologue not yet executed).
class LeafStepper : public FrameStepper {
 public:
  const char* name() const override { return "leaf-ra"; }
  std::optional<Frame> step(proccontrol::Process& proc,
                            const parse::CodeObject& co,
                            const Frame& frame) override;
};

class StackWalker {
 public:
  /// The walker needs the process (registers/memory) and the parsed code
  /// (function boundaries, stack-height analysis).
  StackWalker(proccontrol::Process& proc, const parse::CodeObject& co);

  /// Register an additional stepper (tried before the defaults).
  void add_stepper(std::unique_ptr<FrameStepper> stepper);

  /// Collect the call stack from the current stop, innermost first.
  std::vector<Frame> walk(unsigned max_depth = 64);

 private:
  void annotate(Frame* f) const;

  proccontrol::Process& proc_;
  const parse::CodeObject& co_;
  std::vector<std::unique_ptr<FrameStepper>> steppers_;
};

}  // namespace rvdyn::stackwalk
