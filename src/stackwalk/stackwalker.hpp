// StackwalkerAPI: call-stack collection with a plugin "frame stepper"
// architecture (paper §2.2, §3.2.7).
//
// RISC-V frames come in several shapes: the ABI designates x8 (s0/fp) as
// the frame pointer, but most compilers reuse it as a general register and
// address frames purely off sp. The walker therefore tries a list of
// steppers per frame, in order:
//  - FramePointerStepper: the textbook fp-chain walk;
//  - SpHeightStepper: DataflowAPI's stack-height analysis recovers the
//    frame size and return-address slot for fp-less code (the new "frame
//    stepper" the paper says RISC-V requires);
//  - LeafStepper: the first frame's return address may still live in ra.
//
// Steppers read the stoppee through the ThreadAccess interface rather than
// a concrete proccontrol::Process, so the same walk runs against a
// debugger-controlled process, a bare emu::Machine mid-run (the sampling
// profiler's case — obs::Sampler walks at every sample point), or any
// future remote/core-file backend. Walks share a per-function
// StackHeightAnalysis cache through WalkContext: a sampling profiler
// taking thousands of walks pays for each function's dataflow once.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "parse/cfg.hpp"

namespace rvdyn::dataflow {
class StackHeightAnalysis;
}
namespace rvdyn::emu {
class Machine;
}
namespace rvdyn::proccontrol {
class Process;
}

namespace rvdyn::stackwalk {

/// Minimal view of a stopped thread: program counter, register file, and
/// (non-faulting) memory reads. Unmapped reads must return 0 without
/// side effects — a walker probing a garbage frame pointer must never
/// perturb the walked process (e.g. by faulting pages into existence).
class ThreadAccess {
 public:
  virtual ~ThreadAccess() = default;
  virtual std::uint64_t pc() const = 0;
  virtual std::uint64_t get_reg(isa::Reg r) const = 0;
  virtual std::uint64_t read_mem(std::uint64_t addr, unsigned size) const = 0;
};

/// ThreadAccess over a bare emulated machine (no Process required) — the
/// view the sampling profiler uses from inside Machine::run.
class MachineAccess : public ThreadAccess {
 public:
  explicit MachineAccess(const emu::Machine& m) : m_(m) {}
  std::uint64_t pc() const override;
  std::uint64_t get_reg(isa::Reg r) const override;
  std::uint64_t read_mem(std::uint64_t addr, unsigned size) const override;

 private:
  const emu::Machine& m_;
};

/// One record of an executing function.
struct Frame {
  std::uint64_t pc = 0;       ///< execution address in this frame
  std::uint64_t sp = 0;       ///< stack pointer on entry to this frame's use
  std::uint64_t fp = 0;       ///< frame-pointer register value (if tracked)
  std::uint64_t ra = 0;       ///< return-address register value (top frame)
  std::string func_name;      ///< resolved function name ("" when unknown)
  std::uint64_t func_entry = 0;
  const char* stepper = "";   ///< which plugin produced the *next* frame
};

/// Shared state for one walk (or a long series of walks): the thread view,
/// the parsed code, and a memoized per-function stack-height analysis.
class WalkContext {
 public:
  WalkContext(ThreadAccess& thread, const parse::CodeObject& co);
  ~WalkContext();

  ThreadAccess& thread() { return thread_; }
  const parse::CodeObject& co() const { return co_; }

  /// Memoized StackHeightAnalysis for `f`. Entries live until
  /// invalidate_analyses(); call that after re-parsing or re-instrumenting
  /// the code the walker reads.
  const dataflow::StackHeightAnalysis& analysis(const parse::Function& f);
  void invalidate_analyses();

 private:
  ThreadAccess& thread_;
  const parse::CodeObject& co_;
  std::unordered_map<const parse::Function*,
                     std::unique_ptr<dataflow::StackHeightAnalysis>>
      analyses_;
};

/// Plugin interface: given the current frame, produce the caller's frame.
class FrameStepper {
 public:
  virtual ~FrameStepper() = default;
  virtual const char* name() const = 0;
  /// Returns the caller frame, or nullopt when this stepper cannot walk
  /// out of `frame` (the walker then tries the next plugin).
  virtual std::optional<Frame> step(WalkContext& ctx, const Frame& frame) = 0;
};

/// Walks fp-chained frames (gcc -fno-omit-frame-pointer layout: saved ra
/// at fp-8, saved caller fp at fp-16).
class FramePointerStepper : public FrameStepper {
 public:
  const char* name() const override { return "frame-pointer"; }
  std::optional<Frame> step(WalkContext& ctx, const Frame& frame) override;
};

/// Walks fp-less frames using stack-height analysis (paper §3.2.7).
class SpHeightStepper : public FrameStepper {
 public:
  const char* name() const override { return "sp-height"; }
  std::optional<Frame> step(WalkContext& ctx, const Frame& frame) override;
};

/// Top-frame-only: the return address is still in ra (leaf functions or
/// prologue not yet executed).
class LeafStepper : public FrameStepper {
 public:
  const char* name() const override { return "leaf-ra"; }
  std::optional<Frame> step(WalkContext& ctx, const Frame& frame) override;
};

class StackWalker {
 public:
  /// The walker needs the thread view (registers/memory) and the parsed
  /// code (function boundaries, stack-height analysis).
  StackWalker(ThreadAccess& thread, const parse::CodeObject& co);
  /// Debugger-surface convenience: walk a proccontrol::Process.
  StackWalker(proccontrol::Process& proc, const parse::CodeObject& co);
  ~StackWalker();

  /// Register an additional stepper (tried before the defaults).
  void add_stepper(std::unique_ptr<FrameStepper> stepper);

  /// Collect the call stack from the current stop, innermost first.
  std::vector<Frame> walk(unsigned max_depth = 64);

  /// Drop the memoized per-function analyses (call after re-parsing or
  /// patching the walked code).
  void invalidate_analyses() { ctx_.invalidate_analyses(); }

 private:
  void annotate(Frame* f) const;

  std::unique_ptr<ThreadAccess> owned_;  ///< set by the Process convenience
  WalkContext ctx_;
  std::vector<std::unique_ptr<FrameStepper>> steppers_;
};

}  // namespace rvdyn::stackwalk
