#include "stackwalk/stackwalker.hpp"

#include "dataflow/stack_height.hpp"

namespace rvdyn::stackwalk {

namespace {

using parse::Block;
using parse::Function;

/// Function containing `pc`, plus the block and instruction index.
struct Location {
  const Function* func = nullptr;
  const Block* block = nullptr;
  std::size_t index = 0;
};

std::optional<Location> locate(const parse::CodeObject& co,
                               std::uint64_t pc) {
  for (const auto& [entry, f] : co.functions()) {
    const Block* b = f->block_containing(pc);
    if (!b) continue;
    for (std::size_t i = 0; i < b->insns().size(); ++i) {
      if (b->insns()[i].addr == pc) return Location{f.get(), b, i};
    }
    // pc inside the block but between decoded boundaries (shouldn't happen
    // for aligned walks); treat as block start.
    return Location{f.get(), b, 0};
  }
  return std::nullopt;
}

bool plausible_code_addr(const parse::CodeObject& co, std::uint64_t pc) {
  return pc != 0 && co.symtab().in_code(pc);
}

}  // namespace

std::optional<Frame> FramePointerStepper::step(proccontrol::Process& proc,
                                               const parse::CodeObject& co,
                                               const Frame& frame) {
  // RISC-V fp-chain layout: [fp-8] = saved ra, [fp-16] = caller's fp.
  const std::uint64_t fp = frame.fp;
  if (fp == 0 || (fp & 7) != 0) return std::nullopt;
  if (fp <= frame.sp || fp - frame.sp > (1u << 20)) return std::nullopt;
  const std::uint64_t ra = proc.read_mem(fp - 8, 8);
  const std::uint64_t caller_fp = proc.read_mem(fp - 16, 8);
  if (!plausible_code_addr(co, ra)) return std::nullopt;
  Frame out;
  out.pc = ra;
  out.sp = fp;  // caller's sp when it made the call
  out.fp = caller_fp;
  return out;
}

std::optional<Frame> SpHeightStepper::step(proccontrol::Process& proc,
                                           const parse::CodeObject& co,
                                           const Frame& frame) {
  const auto loc = locate(co, frame.pc);
  if (!loc) return std::nullopt;
  dataflow::StackHeightAnalysis sh(*loc->func);
  const auto height = sh.height_before(loc->block, loc->index);
  if (!height) return std::nullopt;
  const auto slot = sh.ra_save_slot();
  // Only step through the save slot when the save provably executed; on a
  // leaf path (or mid-prologue) the LeafStepper's ra register is the truth.
  if (!slot || !sh.ra_saved_at(loc->block, loc->index)) return std::nullopt;
  const std::uint64_t entry_sp =
      frame.sp - static_cast<std::uint64_t>(*height);
  const std::uint64_t ra =
      proc.read_mem(entry_sp + static_cast<std::uint64_t>(*slot), 8);
  if (!plausible_code_addr(co, ra)) return std::nullopt;
  Frame out;
  out.pc = ra;
  out.sp = entry_sp;
  out.fp = frame.fp;
  return out;
}

std::optional<Frame> LeafStepper::step(proccontrol::Process& proc,
                                       const parse::CodeObject& co,
                                       const Frame& frame) {
  (void)proc;
  if (frame.ra == 0 || !plausible_code_addr(co, frame.ra))
    return std::nullopt;
  Frame out;
  out.pc = frame.ra;
  out.sp = frame.sp;  // leaf frames allocate nothing
  out.fp = frame.fp;
  return out;
}

StackWalker::StackWalker(proccontrol::Process& proc,
                         const parse::CodeObject& co)
    : proc_(proc), co_(co) {
  // Order matters: sp-height is the most precise; leaf-ra only applies to
  // the top frame (ra register still live); the fp chain runs last because
  // a stale fp register in a leaf would otherwise skip the caller's frame.
  steppers_.push_back(std::make_unique<SpHeightStepper>());
  steppers_.push_back(std::make_unique<LeafStepper>());
  steppers_.push_back(std::make_unique<FramePointerStepper>());
}

void StackWalker::add_stepper(std::unique_ptr<FrameStepper> stepper) {
  steppers_.insert(steppers_.begin(), std::move(stepper));
}

void StackWalker::annotate(Frame* f) const {
  for (const auto& [entry, func] : co_.functions()) {
    if (func->block_containing(f->pc)) {
      f->func_name = func->name();
      f->func_entry = entry;
      return;
    }
  }
}

std::vector<Frame> StackWalker::walk(unsigned max_depth) {
  std::vector<Frame> out;
  Frame cur;
  cur.pc = proc_.pc();
  cur.sp = proc_.get_reg(isa::sp);
  cur.fp = proc_.get_reg(isa::fp);
  cur.ra = proc_.get_reg(isa::ra);
  annotate(&cur);

  for (unsigned depth = 0; depth < max_depth; ++depth) {
    std::optional<Frame> caller;
    const char* used = "";
    for (const auto& stepper : steppers_) {
      caller = stepper->step(proc_, co_, cur);
      if (caller) {
        used = stepper->name();
        break;
      }
    }
    cur.stepper = used;
    out.push_back(cur);
    if (!caller) break;
    // Avoid trivial self-loops (corrupt chains).
    if (caller->pc == cur.pc && caller->sp == cur.sp) break;
    cur = *caller;
    cur.ra = 0;  // only the top frame's ra register is meaningful
    annotate(&cur);
  }
  return out;
}

}  // namespace rvdyn::stackwalk
