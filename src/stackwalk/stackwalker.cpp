#include "stackwalk/stackwalker.hpp"

#include "dataflow/stack_height.hpp"
#include "emu/machine.hpp"
#include "proccontrol/process.hpp"

namespace rvdyn::stackwalk {

namespace {

using parse::Block;
using parse::Function;

/// ThreadAccess over a debugger-controlled process.
class ProcessAccess : public ThreadAccess {
 public:
  explicit ProcessAccess(proccontrol::Process& p) : p_(p) {}
  std::uint64_t pc() const override { return p_.pc(); }
  std::uint64_t get_reg(isa::Reg r) const override { return p_.get_reg(r); }
  std::uint64_t read_mem(std::uint64_t addr, unsigned size) const override {
    return p_.read_mem(addr, size);
  }

 private:
  proccontrol::Process& p_;
};

/// Function containing `pc`, plus the block and instruction index.
struct Location {
  const Function* func = nullptr;
  const Block* block = nullptr;
  std::size_t index = 0;
};

std::optional<Location> locate(const parse::CodeObject& co,
                               std::uint64_t pc) {
  const Function* f = co.function_containing(pc);
  if (!f) return std::nullopt;
  const Block* b = f->block_containing(pc);
  if (!b) return std::nullopt;
  // Snap to the last instruction boundary ≤ pc. A pc between boundaries
  // (async stop inside a patched region, misaligned probe) must map to the
  // instruction containing it — falling back to block start would rewind
  // the stack height across any sp adjustment earlier in the block and
  // read the wrong ra slot.
  std::size_t idx = 0;
  for (std::size_t i = 0; i < b->insns().size(); ++i) {
    if (b->insns()[i].addr == pc) return Location{f, b, i};
    if (b->insns()[i].addr < pc) idx = i;
  }
  return Location{f, b, idx};
}

bool plausible_code_addr(const parse::CodeObject& co, std::uint64_t pc) {
  return pc != 0 && co.symtab().in_code(pc);
}

/// The caller's frame-pointer value at the point described by `loc`:
/// still in x8 when the function has not touched it, else loaded from the
/// prologue's save slot, else unknown (0). Returning the callee's register
/// value when the callee repurposed x8 would hand FramePointerStepper a
/// stale chain and let it fabricate frames.
std::uint64_t recover_caller_fp(ThreadAccess& thread,
                                const dataflow::StackHeightAnalysis& sh,
                                const Location& loc, const Frame& frame,
                                std::uint64_t entry_sp) {
  if (sh.fp_preserved_at(loc.block, loc.index)) return frame.fp;
  const auto slot = sh.fp_save_slot();
  if (slot && sh.fp_saved_at(loc.block, loc.index))
    return thread.read_mem(entry_sp + static_cast<std::uint64_t>(*slot), 8);
  return 0;
}

}  // namespace

std::uint64_t MachineAccess::pc() const { return m_.pc(); }

std::uint64_t MachineAccess::get_reg(isa::Reg r) const {
  return m_.get_reg(r);
}

std::uint64_t MachineAccess::read_mem(std::uint64_t addr,
                                      unsigned size) const {
  // try_read_bytes, not read(): the zero-fill-on-touch path would map
  // pages as a side effect of the walker probing a garbage pointer, and a
  // sampler must leave the sampled machine bit-identical.
  std::uint8_t buf[8] = {};
  if (size > 8 || !m_.memory().try_read_bytes(addr, buf, size)) return 0;
  std::uint64_t v = 0;
  for (unsigned i = 0; i < size; ++i) v |= std::uint64_t{buf[i]} << (8 * i);
  return v;
}

WalkContext::WalkContext(ThreadAccess& thread, const parse::CodeObject& co)
    : thread_(thread), co_(co) {}

WalkContext::~WalkContext() = default;

const dataflow::StackHeightAnalysis& WalkContext::analysis(
    const parse::Function& f) {
  auto& slot = analyses_[&f];
  if (!slot) slot = std::make_unique<dataflow::StackHeightAnalysis>(f);
  return *slot;
}

void WalkContext::invalidate_analyses() { analyses_.clear(); }

std::optional<Frame> FramePointerStepper::step(WalkContext& ctx,
                                               const Frame& frame) {
  // RISC-V fp-chain layout: [fp-8] = saved ra, [fp-16] = caller's fp.
  const std::uint64_t fp = frame.fp;
  if (fp == 0 || (fp & 7) != 0) return std::nullopt;
  if (fp <= frame.sp || fp - frame.sp > (1u << 20)) return std::nullopt;
  const std::uint64_t ra = ctx.thread().read_mem(fp - 8, 8);
  const std::uint64_t caller_fp = ctx.thread().read_mem(fp - 16, 8);
  if (!plausible_code_addr(ctx.co(), ra)) return std::nullopt;
  Frame out;
  out.pc = ra;
  out.sp = fp;  // caller's sp when it made the call
  out.fp = caller_fp;
  return out;
}

std::optional<Frame> SpHeightStepper::step(WalkContext& ctx,
                                           const Frame& frame) {
  const auto loc = locate(ctx.co(), frame.pc);
  if (!loc) return std::nullopt;
  const dataflow::StackHeightAnalysis& sh = ctx.analysis(*loc->func);
  const auto height = sh.height_before(loc->block, loc->index);
  if (!height) return std::nullopt;
  const auto slot = sh.ra_save_slot();
  // Only step through the save slot when the save provably executed; on a
  // leaf path (or mid-prologue) the LeafStepper's ra register is the truth.
  if (!slot || !sh.ra_saved_at(loc->block, loc->index)) return std::nullopt;
  const std::uint64_t entry_sp =
      frame.sp - static_cast<std::uint64_t>(*height);
  const std::uint64_t ra =
      ctx.thread().read_mem(entry_sp + static_cast<std::uint64_t>(*slot), 8);
  if (!plausible_code_addr(ctx.co(), ra)) return std::nullopt;
  Frame out;
  out.pc = ra;
  out.sp = entry_sp;
  out.fp = recover_caller_fp(ctx.thread(), sh, *loc, frame, entry_sp);
  return out;
}

std::optional<Frame> LeafStepper::step(WalkContext& ctx, const Frame& frame) {
  if (frame.ra == 0 || !plausible_code_addr(ctx.co(), frame.ra))
    return std::nullopt;
  Frame out;
  out.pc = frame.ra;
  out.sp = frame.sp;
  out.fp = frame.fp;
  // A stop mid-prologue (after `addi sp, sp, -N`, before `sd ra`) has
  // already moved sp: undo the known height so the caller frame carries the
  // caller's sp, and recover the caller's fp if the prologue spilled it.
  if (const auto loc = locate(ctx.co(), frame.pc)) {
    const dataflow::StackHeightAnalysis& sh = ctx.analysis(*loc->func);
    if (const auto h = sh.height_before(loc->block, loc->index)) {
      out.sp = frame.sp - static_cast<std::uint64_t>(*h);
      out.fp = recover_caller_fp(ctx.thread(), sh, *loc, frame, out.sp);
    }
  }
  return out;
}

StackWalker::StackWalker(ThreadAccess& thread, const parse::CodeObject& co)
    : ctx_(thread, co) {
  // Order matters: sp-height is the most precise; leaf-ra only applies to
  // the top frame (ra register still live); the fp chain runs last because
  // a stale fp register in a leaf would otherwise skip the caller's frame.
  steppers_.push_back(std::make_unique<SpHeightStepper>());
  steppers_.push_back(std::make_unique<LeafStepper>());
  steppers_.push_back(std::make_unique<FramePointerStepper>());
}

StackWalker::StackWalker(proccontrol::Process& proc,
                         const parse::CodeObject& co)
    : owned_(std::make_unique<ProcessAccess>(proc)), ctx_(*owned_, co) {
  steppers_.push_back(std::make_unique<SpHeightStepper>());
  steppers_.push_back(std::make_unique<LeafStepper>());
  steppers_.push_back(std::make_unique<FramePointerStepper>());
}

StackWalker::~StackWalker() = default;

void StackWalker::add_stepper(std::unique_ptr<FrameStepper> stepper) {
  steppers_.insert(steppers_.begin(), std::move(stepper));
}

void StackWalker::annotate(Frame* f) const {
  if (const parse::Function* func = ctx_.co().function_containing(f->pc)) {
    f->func_name = func->name();
    f->func_entry = func->entry();
  }
}

std::vector<Frame> StackWalker::walk(unsigned max_depth) {
  std::vector<Frame> out;
  Frame cur;
  ThreadAccess& thread = ctx_.thread();
  cur.pc = thread.pc();
  cur.sp = thread.get_reg(isa::sp);
  cur.fp = thread.get_reg(isa::fp);
  cur.ra = thread.get_reg(isa::ra);
  annotate(&cur);

  // The program's entry function has no caller: once the walk reaches it,
  // stale register contents (ra left over from a completed call) must not
  // fabricate an extra frame above it.
  const parse::Function* entry_func =
      ctx_.co().function_containing(ctx_.co().symtab().entry);

  for (unsigned depth = 0; depth < max_depth; ++depth) {
    if (entry_func && cur.func_entry == entry_func->entry() &&
        !cur.func_name.empty()) {
      cur.stepper = "";
      out.push_back(cur);
      break;
    }
    std::optional<Frame> caller;
    const char* used = "";
    for (const auto& stepper : steppers_) {
      caller = stepper->step(ctx_, cur);
      if (caller) {
        used = stepper->name();
        break;
      }
    }
    cur.stepper = used;
    out.push_back(cur);
    if (!caller) break;
    // Avoid trivial self-loops (corrupt chains).
    if (caller->pc == cur.pc && caller->sp == cur.sp) break;
    cur = *caller;
    cur.ra = 0;  // only the top frame's ra register is meaningful
    annotate(&cur);
  }
  return out;
}

}  // namespace rvdyn::stackwalk
