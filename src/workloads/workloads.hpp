// Mutatee workload programs (assembly source generators).
//
// The centerpiece is the paper's evaluation application (§4.1): a function
// performing an n x n double-precision matrix multiplication, called
// repeatedly in a loop from the program entry, with the elapsed time of
// the loop sampled via clock_gettime before and after. The program stores
// the elapsed nanoseconds in the `elapsed_ns` data symbol, so harnesses
// can read the mutatee's own measurement exactly as the paper's app
// reports its own timing.
#pragma once

#include <cstdint>
#include <string>

namespace rvdyn::workloads {

/// The paper's benchmark application. `n` is the matrix dimension (the
/// paper uses 100) and `reps` the number of matmul calls in the timed
/// loop. Exposed symbols: `matmul` (the instrumented function, a triple
/// loop of ~11 basic blocks), `elapsed_ns` (u64, written before exit).
std::string matmul_program(int n, int reps);

/// A call-heavy workload: `reps` calls to a small leaf through a wrapper
/// (exercises call/return instrumentation).
std::string call_churn_program(int reps);

/// Recursive Fibonacci (depth + call-graph workload); exit code fib(n)&255.
std::string fib_program(int n);

/// A switch-style dispatcher driven through a jump table (exercises
/// indirect-flow analysis under instrumentation); exit code is a checksum.
std::string dispatch_program(int iterations);

/// Synthetic many-function binary for parse-throughput benchmarks:
/// `n_funcs` functions with branches, loops and cross-calls.
std::string many_function_program(int n_funcs);

/// Insertion sort of `n` pseudo-random 64-bit keys (memory- and
/// branch-heavy; nested data-dependent loops). Exits 0 when the array is
/// sorted, 1 otherwise, so instrumented runs are self-checking.
std::string sort_program(int n);

/// Fuzzing mutatee following rvdyn::fuzz's target contract: exposes
/// `fuzz_input` (64-byte buffer) and `fuzz_len` (u64), checksums the
/// input, and compares it byte-by-byte against `magic` — one basic block
/// per byte, so edge coverage guides a fuzzer toward the full match, which
/// executes ebreak (the seeded bug). Non-matching runs exit with the
/// checksum.
std::string fuzz_target_program(const std::string& magic);

}  // namespace rvdyn::workloads
