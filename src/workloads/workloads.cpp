#include "workloads/workloads.hpp"

#include <sstream>

namespace rvdyn::workloads {

std::string matmul_program(int n, int reps) {
  std::ostringstream out;
  const long cells = static_cast<long>(n) * n;
  out << R"(# Paper §4.1 workload: timed loop around an n x n double matmul.
    .bss
    .align 3
A:  .zero )" << cells * 8 << R"(
B:  .zero )" << cells * 8 << R"(
C:  .zero )" << cells * 8 << R"(
ts0: .zero 16
ts1: .zero 16
    .data
    .align 3
    .globl elapsed_ns
elapsed_ns: .dword 0

    .text
    .globl _start
    .globl matmul
_start:
    # Fill A and B with simple patterns (A[i]=i%7+1, B[i]=i%5+1 as ints
    # converted to double) so the product is non-trivial.
    la t0, A
    la t1, B
    li t2, 0
    li t3, )" << cells << R"(
fill:
    li t4, 7
    rem t5, t2, t4
    addi t5, t5, 1
    fcvt.d.l ft0, t5
    fsd ft0, 0(t0)
    li t4, 5
    rem t5, t2, t4
    addi t5, t5, 1
    fcvt.d.l ft0, t5
    fsd ft0, 0(t1)
    addi t0, t0, 8
    addi t1, t1, 8
    addi t2, t2, 1
    blt t2, t3, fill

    # Sample the clock before the timed loop.
    li a0, 1
    la a1, ts0
    li a7, 113
    ecall

    li s3, 0                 # rep counter
    li s4, )" << reps << R"(
reploop:
    la a0, C
    la a1, A
    la a2, B
    li a3, )" << n << R"(
    call matmul
    addi s3, s3, 1
    blt s3, s4, reploop

    # Sample the clock after the loop and store the delta.
    li a0, 1
    la a1, ts1
    li a7, 113
    ecall
    la t0, ts0
    la t1, ts1
    ld t2, 0(t0)             # sec0
    ld t3, 8(t0)             # nsec0
    ld t4, 0(t1)             # sec1
    ld t5, 8(t1)             # nsec1
    sub t4, t4, t2
    li t6, 1000000000
    mul t4, t4, t6
    add t4, t4, t5
    sub t4, t4, t3           # elapsed ns
    la t0, elapsed_ns
    sd t4, 0(t0)

    # Exit with a checksum of C[0][0] so results are validated.
    la t0, C
    fld fa0, 0(t0)
    fcvt.l.d a0, fa0
    andi a0, a0, 255
    li a7, 93
    ecall

# void matmul(double* C /*a0*/, double* A /*a1*/, double* B /*a2*/, long n /*a3*/)
# The function body is a classic triple loop; with the loop-head splits it
# parses into ~11 basic blocks, matching the paper's description.
matmul:
    addi sp, sp, -48
    sd ra, 40(sp)
    sd s0, 32(sp)
    sd s1, 24(sp)
    sd s2, 16(sp)
    li s0, 0                 # i
iloop:
    bge s0, a3, idone
    li s1, 0                 # j
jloop:
    bge s1, a3, jdone
    mul t0, s0, a3           # &C[i][j]
    add t0, t0, s1
    slli t0, t0, 3
    add t0, t0, a0
    fmv.d.x ft0, x0          # sum = 0.0
    li s2, 0                 # k
kloop:
    bge s2, a3, kdone
    mul t1, s0, a3           # A[i][k]
    add t1, t1, s2
    slli t1, t1, 3
    add t1, t1, a1
    fld ft1, 0(t1)
    mul t2, s2, a3           # B[k][j]
    add t2, t2, s1
    slli t2, t2, 3
    add t2, t2, a2
    fld ft2, 0(t2)
    fmadd.d ft0, ft1, ft2, ft0
    addi s2, s2, 1
    j kloop
kdone:
    fsd ft0, 0(t0)
    addi s1, s1, 1
    j jloop
jdone:
    addi s0, s0, 1
    j iloop
idone:
    ld ra, 40(sp)
    ld s0, 32(sp)
    ld s1, 24(sp)
    ld s2, 16(sp)
    addi sp, sp, 48
    ret
)";
  return out.str();
}

std::string call_churn_program(int reps) {
  std::ostringstream out;
  out << R"(
    .text
    .globl _start
    .globl wrapper
    .globl leaf
_start:
    li s0, 0
    li s1, )" << reps << R"(
cloop:
    mv a0, s0
    call wrapper
    add s2, s2, a0
    addi s0, s0, 1
    blt s0, s1, cloop
    andi a0, s2, 255
    li a7, 93
    ecall
wrapper:
    addi sp, sp, -16
    sd ra, 8(sp)
    call leaf
    addi a0, a0, 1
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
leaf:
    slli a0, a0, 1
    ret
)";
  return out.str();
}

std::string fib_program(int n) {
  std::ostringstream out;
  out << R"(
    .text
    .globl _start
    .globl fib
_start:
    li a0, )" << n << R"(
    call fib
    andi a0, a0, 255
    li a7, 93
    ecall
fib:
    li t0, 2
    bge a0, t0, rec
    ret
rec:
    addi sp, sp, -32
    sd ra, 24(sp)
    sd s0, 16(sp)
    sd s1, 8(sp)
    mv s0, a0
    addi a0, s0, -1
    call fib
    mv s1, a0
    addi a0, s0, -2
    call fib
    add a0, a0, s1
    ld ra, 24(sp)
    ld s0, 16(sp)
    ld s1, 8(sp)
    addi sp, sp, 32
    ret
)";
  return out.str();
}

std::string dispatch_program(int iterations) {
  std::ostringstream out;
  out << R"(
    .rodata
    .align 3
jtable:
    .dword op_add
    .dword op_xor
    .dword op_shift
    .dword op_sub
    .text
    .globl _start
    .globl dispatch
_start:
    li s0, 0                 # i
    li s1, )" << iterations << R"(
    li s2, 1                 # accumulator
dloop:
    andi a0, s0, 3           # selector
    mv a1, s2
    call dispatch
    mv s2, a0
    addi s0, s0, 1
    blt s0, s1, dloop
    andi a0, s2, 255
    li a7, 93
    ecall
dispatch:
    li t0, 4
    bgeu a0, t0, ddefault
    slli t1, a0, 3
    la t2, jtable
    add t1, t1, t2
    ld t1, 0(t1)
    jr t1
op_add:
    addi a0, a1, 3
    ret
op_xor:
    xori a0, a1, 0x55
    ret
op_shift:
    slli a0, a1, 1
    ret
op_sub:
    addi a0, a1, -1
    ret
ddefault:
    mv a0, a1
    ret
)";
  return out.str();
}

std::string sort_program(int n) {
  std::ostringstream out;
  out << R"(# Insertion sort of n xorshift-generated keys; exit 0 iff sorted.
    .bss
    .align 3
keys: .zero )" << n * 8 << R"(
    .text
    .globl _start
    .globl fill
    .globl isort
    .globl check
_start:
    la a0, keys
    li a1, )" << n << R"(
    call fill
    la a0, keys
    li a1, )" << n << R"(
    call isort
    la a0, keys
    li a1, )" << n << R"(
    call check
    li a7, 93
    ecall

# fill(keys, n): xorshift64 starting from a fixed seed
fill:
    li t0, 0x9e3779b97f4a7c15
    li t1, 0                  # i
ffloop:
    bge t1, a1, ffdone
    slli t2, t0, 13
    xor t0, t0, t2
    srli t2, t0, 7
    xor t0, t0, t2
    slli t2, t0, 17
    xor t0, t0, t2
    slli t3, t1, 3
    add t3, t3, a0
    sd t0, 0(t3)
    addi t1, t1, 1
    j ffloop
ffdone:
    ret

# isort(keys, n): classic insertion sort (unsigned keys)
isort:
    li t0, 1                  # i
iloop2:
    bge t0, a1, idone2
    slli t1, t0, 3
    add t1, t1, a0
    ld t2, 0(t1)              # key = keys[i]
    mv t3, t0                 # j = i
siftloop:
    beqz t3, insert
    addi t4, t3, -1
    slli t5, t4, 3
    add t5, t5, a0
    ld t6, 0(t5)              # keys[j-1]
    bleu t6, t2, insert       # keys[j-1] <= key: stop
    slli s0, t3, 3
    add s0, s0, a0
    sd t6, 0(s0)              # keys[j] = keys[j-1]
    mv t3, t4
    j siftloop
insert:
    slli s0, t3, 3
    add s0, s0, a0
    sd t2, 0(s0)
    addi t0, t0, 1
    j iloop2
idone2:
    ret

# check(keys, n) -> a0 = 0 if sorted ascending else 1
check:
    li t0, 1
ckloop:
    bge t0, a1, cksorted
    slli t1, t0, 3
    add t1, t1, a0
    ld t2, 0(t1)
    ld t3, -8(t1)
    bltu t2, t3, ckbad
    addi t0, t0, 1
    j ckloop
cksorted:
    li a0, 0
    ret
ckbad:
    li a0, 1
    ret
)";
  return out.str();
}

std::string many_function_program(int n_funcs) {
  std::ostringstream out;
  out << "    .text\n    .globl _start\n_start:\n";
  for (int i = 0; i < n_funcs; ++i)
    out << "    call f" << i << "\n";
  out << "    li a0, 0\n    li a7, 93\n    ecall\n";
  for (int i = 0; i < n_funcs; ++i) {
    out << "    .globl f" << i << "\nf" << i << ":\n";
    out << "    addi sp, sp, -16\n    sd ra, 8(sp)\n";
    out << "    li t0, " << (i % 17) << "\n";
    out << "    li t1, 0\n";
    out << "f" << i << "_loop:\n";
    out << "    addi t1, t1, 1\n";
    out << "    blt t1, t0, f" << i << "_loop\n";
    out << "    andi t2, t0, 1\n";
    out << "    beqz t2, f" << i << "_even\n";
    out << "    addi a0, a0, 1\n";
    out << "f" << i << "_even:\n";
    if (i + 1 < n_funcs && i % 3 == 0)
      out << "    call f" << (i + 1) << "\n";
    out << "    ld ra, 8(sp)\n    addi sp, sp, 16\n    ret\n";
  }
  return out.str();
}

std::string fuzz_target_program(const std::string& magic) {
  std::ostringstream out;
  out << R"(# Fuzzing mutatee: checksum the input, then compare it byte-by-byte
# against a magic prefix. A full match executes ebreak (the seeded bug);
# each compare is its own basic block, so edge coverage rewards every
# matched byte and guides the search toward the crash.
    .data
    .align 3
    .globl fuzz_input
fuzz_input: .zero 64
    .globl fuzz_len
fuzz_len: .dword 0

    .text
    .globl _start
    .globl checksum
_start:
    la a0, fuzz_input
    la t0, fuzz_len
    ld a1, 0(t0)
    call checksum
    mv s0, a0                # keep the checksum for the exit code
    la t0, fuzz_len
    ld t1, 0(t0)
    li t2, )" << magic.size() << R"(
    blt t1, t2, no_bug       # too short to hold the magic
    la t3, fuzz_input
)";
  for (std::size_t i = 0; i < magic.size(); ++i) {
    out << "    lbu t4, " << i << "(t3)\n";
    out << "    li t5, " << static_cast<unsigned>(
        static_cast<unsigned char>(magic[i])) << "\n";
    out << "    bne t4, t5, no_bug\n";
  }
  out << R"(    ebreak                   # the seeded bug: full magic match
no_bug:
    andi a0, s0, 255
    li a7, 93
    ecall

# checksum(buf /*a0*/, len /*a1*/): rotating xor over the input bytes
checksum:
    li t0, 0                 # i
    li t1, 0                 # acc
csloop:
    bge t0, a1, csdone
    add t2, a0, t0
    lbu t3, 0(t2)
    slli t4, t1, 1
    srli t1, t1, 63
    or t1, t1, t4
    xor t1, t1, t3
    addi t0, t0, 1
    j csloop
csdone:
    mv a0, t1
    ret
)";
  return out.str();
}

}  // namespace rvdyn::workloads
