// Shared plumbing for the table/figure harnesses: assemble a workload,
// optionally instrument it, execute it on the emulator, and report the
// mutatee's own clock_gettime-based timing plus machine counters.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

#include "assembler/assembler.hpp"
#include "codegen/snippet.hpp"
#include "emu/machine.hpp"
#include "patch/editor.hpp"
#include "proccontrol/process.hpp"

namespace rvdyn::bench {

struct RunResult {
  int exit_code = 0;
  std::uint64_t instret = 0;
  std::uint64_t cycles = 0;
  std::uint64_t elapsed_ns = 0;  ///< the mutatee's own measurement
  std::uint64_t counter = 0;     ///< instrumentation counter (when present)
};

/// Execute `bin` to completion (handling trap springboards when `traps` is
/// provided); reads `elapsed_ns` and the optional counter variable.
inline RunResult run_binary(const symtab::Symtab& bin,
                            const std::vector<patch::TrapEntry>* traps = nullptr,
                            std::optional<std::uint64_t> counter_addr = {}) {
  auto proc = proccontrol::Process::launch(bin);
  if (traps) proc->install_trap_table(*traps);
  const auto ev = proc->continue_run();
  if (ev.kind != proccontrol::Event::Kind::Exited) {
    std::fprintf(stderr, "workload did not exit cleanly (kind=%d pc=0x%llx)\n",
                 static_cast<int>(ev.kind),
                 static_cast<unsigned long long>(ev.addr));
    std::exit(1);
  }
  RunResult r;
  r.exit_code = ev.exit_code;
  r.instret = proc->machine().instret();
  r.cycles = proc->machine().cycles();
  if (const auto* sym = bin.find_symbol("elapsed_ns"))
    r.elapsed_ns = proc->read_mem(sym->value, 8);
  if (counter_addr) r.counter = proc->read_mem(*counter_addr, 8);
  return r;
}

/// Instrument `func_name` in `bin` at points of `type` with a counter
/// increment; returns the rewritten binary, trap table and counter address.
struct Instrumented {
  symtab::Symtab bin;
  std::vector<patch::TrapEntry> traps;
  std::uint64_t counter_addr = 0;
  patch::RewriteStats stats;
};

inline Instrumented instrument_counter(const symtab::Symtab& bin,
                                       const std::string& func_name,
                                       patch::PointType type,
                                       bool use_dead_regs) {
  patch::BinaryEditor editor(bin);
  editor.set_use_dead_registers(use_dead_regs);
  const auto counter = editor.alloc_var("counter");
  const auto* f = editor.code().function_named(func_name);
  if (!f) {
    std::fprintf(stderr, "no function named %s\n", func_name.c_str());
    std::exit(1);
  }
  editor.insert_at(f->entry(), type, codegen::increment(counter));
  Instrumented out{editor.commit(), editor.trap_table(), counter.addr,
                   editor.stats()};
  return out;
}

inline double pct_overhead(std::uint64_t base, std::uint64_t measured) {
  return base == 0 ? 0.0
                   : 100.0 * (static_cast<double>(measured) -
                              static_cast<double>(base)) /
                         static_cast<double>(base);
}

}  // namespace rvdyn::bench
