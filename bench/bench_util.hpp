// Shared plumbing for the table/figure harnesses: assemble a workload,
// optionally instrument it, execute it on the emulator, and report the
// mutatee's own clock_gettime-based timing plus machine counters.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "assembler/assembler.hpp"
#include "codegen/snippet.hpp"
#include "emu/machine.hpp"
#include "obs/metrics.hpp"
#include "patch/editor.hpp"
#include "proccontrol/process.hpp"

#ifndef RVDYN_GIT_SHA
#define RVDYN_GIT_SHA "unknown"
#endif
#ifndef RVDYN_BUILD_TYPE
#define RVDYN_BUILD_TYPE "unknown"
#endif

namespace rvdyn::bench {

// ---- build hygiene --------------------------------------------------------

/// True when this harness was compiled without optimization (-O0). Numbers
/// from such a build measure the compiler's laziness, not the toolkit;
/// every BENCH_*.json records the flag so a degraded file can never be
/// mistaken for a real baseline.
constexpr bool build_is_degraded() {
#if defined(__OPTIMIZE__)
  return false;
#else
  return true;
#endif
}

/// Loud stderr banner when running a degraded build. Call once at harness
/// start (run_benchmarks_with_json and JsonWriter::write both do).
inline void warn_if_degraded() {
  if (!build_is_degraded()) return;
  std::fprintf(stderr,
               "*** WARNING: benchmark built WITHOUT optimization "
               "(build_type=%s). ***\n"
               "*** Numbers below are not comparable to committed "
               "baselines; rebuild with   ***\n"
               "*** -DCMAKE_BUILD_TYPE=Release (or RelWithDebInfo) before "
               "trusting them.    ***\n",
               RVDYN_BUILD_TYPE);
}

// ---- machine-readable benchmark output ------------------------------------
//
// Every bench writes a BENCH_<name>.json into the working directory so the
// perf trajectory is tracked across PRs (commit the files alongside code
// changes that move the numbers).

/// Run-provenance block embedded into every BENCH_*.json: which commit and
/// build type produced the numbers, how many entries ran, and (when the obs
/// hooks are compiled in) a final metrics snapshot.
inline std::string meta_json(std::size_t entries_run) {
  std::string s = "{\"git_sha\": \"" RVDYN_GIT_SHA
                  "\", \"build_type\": \"" RVDYN_BUILD_TYPE "\"";
  s += ", \"degraded\": ";
  s += build_is_degraded() ? "true" : "false";
  s += ", \"obs\": ";
#if RVDYN_OBS_ENABLED
  s += "true";
#else
  s += "false";
#endif
  s += ", \"entries\": " + std::to_string(entries_run);
#if RVDYN_OBS_ENABLED
  s += ", \"metrics\": " + obs::Registry::instance().to_json();
  // Per-histogram latency digest so a committed BENCH_*.json carries tail
  // behaviour, not just totals.
  {
    const auto hists = obs::Registry::instance().histograms();
    s += ", \"histograms\": {";
    for (std::size_t i = 0; i < hists.size(); ++i) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "\"%s\": {\"count\": %llu, \"mean\": %.6g, \"p50\": %.6g, "
                    "\"p95\": %.6g, \"p99\": %.6g, \"max\": %llu}",
                    hists[i].name.c_str(),
                    static_cast<unsigned long long>(hists[i].count),
                    hists[i].mean(), hists[i].p50(), hists[i].p95(),
                    hists[i].p99(),
                    static_cast<unsigned long long>(hists[i].max));
      s += buf;
      if (i + 1 < hists.size()) s += ", ";
    }
    s += "}";
  }
#endif
  s += "}";
  return s;
}

/// Append `, "rvdyn_meta": {...}` before the final `}` of an existing JSON
/// file (used to decorate google-benchmark's own output after Shutdown).
inline bool append_meta_to_json_file(const std::string& path,
                                     std::size_t entries_run) {
  std::FILE* fp = std::fopen(path.c_str(), "rb+");
  if (!fp) return false;
  std::fseek(fp, 0, SEEK_END);
  long pos = std::ftell(fp);
  // Back up over trailing whitespace to the closing brace.
  while (pos > 0) {
    std::fseek(fp, pos - 1, SEEK_SET);
    const int c = std::fgetc(fp);
    if (c == '}') break;
    if (c != '\n' && c != '\r' && c != ' ' && c != '\t') {
      std::fclose(fp);
      return false;
    }
    --pos;
  }
  if (pos == 0) {
    std::fclose(fp);
    return false;
  }
  std::fseek(fp, pos - 1, SEEK_SET);
  const std::string tail =
      ",\n  \"rvdyn_meta\": " + meta_json(entries_run) + "\n}\n";
  std::fwrite(tail.data(), 1, tail.size(), fp);
  std::fclose(fp);
  return true;
}

/// Drop-in replacement for BENCHMARK_MAIN(): runs google-benchmark with a
/// default `--benchmark_out=<default_out> --benchmark_out_format=json`.
/// Explicit --benchmark_out on the command line wins. After the run, the
/// JSON gets an `rvdyn_meta` provenance block appended.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const char* default_out) {
  warn_if_degraded();
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = std::string("--benchmark_out=") + default_out;
  std::string fmt_flag = "--benchmark_out_format=json";
  std::string out_path = default_out;
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
      out_path = std::string(argv[i]).substr(sizeof("--benchmark_out=") - 1);
    }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  append_meta_to_json_file(out_path, ran);
  return 0;
}

/// Minimal JSON emitter for the hand-rolled (printf-style) harnesses; writes
/// the same `{"benchmarks": [{"name": ..., metrics...}]}` shape
/// google-benchmark uses so downstream tooling can parse either.
class JsonWriter {
 public:
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  void add(std::string name,
           std::vector<std::pair<std::string, double>> metrics) {
    entries_.push_back({std::move(name), std::move(metrics)});
  }

  /// Write the collected entries plus the rvdyn_meta provenance block;
  /// returns false on I/O failure.
  bool write() const {
    warn_if_degraded();
    std::FILE* fp = std::fopen(path_.c_str(), "w");
    if (!fp) return false;
    std::fprintf(fp, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(fp, "    {\"name\": \"%s\"", e.name.c_str());
      for (const auto& [key, value] : e.metrics)
        std::fprintf(fp, ", \"%s\": %.6g", key.c_str(), value);
      std::fprintf(fp, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(fp, "  ],\n  \"rvdyn_meta\": %s\n}\n",
                 meta_json(entries_.size()).c_str());
    std::fclose(fp);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string path_;
  std::vector<Entry> entries_;
};

struct RunResult {
  int exit_code = 0;
  std::uint64_t instret = 0;
  std::uint64_t cycles = 0;
  std::uint64_t elapsed_ns = 0;  ///< the mutatee's own measurement
  std::uint64_t counter = 0;     ///< instrumentation counter (when present)
};

/// Execute `bin` to completion (handling trap springboards when `traps` is
/// provided); reads `elapsed_ns` and the optional counter variable.
inline RunResult run_binary(const symtab::Symtab& bin,
                            const std::vector<patch::TrapEntry>* traps = nullptr,
                            std::optional<std::uint64_t> counter_addr = {}) {
  auto proc = proccontrol::Process::launch(bin);
  if (traps) proc->install_trap_table(*traps);
  const auto ev = proc->continue_run();
  if (ev.kind != proccontrol::Event::Kind::Exited) {
    std::fprintf(stderr, "workload did not exit cleanly (kind=%d pc=0x%llx)\n",
                 static_cast<int>(ev.kind),
                 static_cast<unsigned long long>(ev.addr));
    std::exit(1);
  }
  RunResult r;
  r.exit_code = ev.exit_code;
  r.instret = proc->machine().instret();
  r.cycles = proc->machine().cycles();
  if (const auto* sym = bin.find_symbol("elapsed_ns"))
    r.elapsed_ns = proc->read_mem(sym->value, 8);
  if (counter_addr) r.counter = proc->read_mem(*counter_addr, 8);
  return r;
}

/// Instrument `func_name` in `bin` at points of `type` with a counter
/// increment; returns the rewritten binary, trap table and counter address.
struct Instrumented {
  symtab::Symtab bin;
  std::vector<patch::TrapEntry> traps;
  std::uint64_t counter_addr = 0;
  patch::RewriteStats stats;
};

inline Instrumented instrument_counter(const symtab::Symtab& bin,
                                       const std::string& func_name,
                                       patch::PointType type,
                                       bool use_dead_regs) {
  patch::BinaryEditor editor(bin);
  editor.set_use_dead_registers(use_dead_regs);
  const auto counter = editor.alloc_var("counter");
  const auto* f = editor.code().function_named(func_name);
  if (!f) {
    std::fprintf(stderr, "no function named %s\n", func_name.c_str());
    std::exit(1);
  }
  editor.insert_at(f->entry(), type, codegen::increment(counter));
  Instrumented out{editor.commit(), editor.trap_table(), counter.addr,
                   editor.stats()};
  return out;
}

inline double pct_overhead(std::uint64_t base, std::uint64_t measured) {
  return base == 0 ? 0.0
                   : 100.0 * (static_cast<double>(measured) -
                              static_cast<double>(base)) /
                         static_cast<double>(base);
}

}  // namespace rvdyn::bench
