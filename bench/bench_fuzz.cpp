// Snapshot fuzzing engine benchmark: the three numbers the design stands
// on — reset latency (dirty-page restore, target p50 < 5 µs), end-to-end
// exec throughput with coverage weaving enabled (target >= 1M execs/s on a
// small mutatee), and time-to-bug for the seeded-crash campaign. Every
// reset is recorded into the rvdyn.bench.fuzz.reset_ns histogram so the
// committed BENCH_fuzz.json carries the latency digest (p50/p95/p99) in
// its rvdyn_meta block, not just the means. Writes BENCH_fuzz.json.
#include <chrono>
#include <cstdio>
#include <vector>

#include "assembler/assembler.hpp"
#include "bench_util.hpp"
#include "emu/machine.hpp"
#include "fuzz/fuzz.hpp"
#include "obs/metrics.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main() {
  bench::warn_if_degraded();
  bench::JsonWriter json("BENCH_fuzz.json");

  const auto target_bin =
      assembler::assemble(workloads::fuzz_target_program("RV"));
  const auto woven = fuzz::weave_coverage(target_bin);
  std::printf("woven target: %u blocks instrumented, %u trap entries\n",
              woven.blocks_woven, woven.trap_entries);

  // ---- 1. reset latency -----------------------------------------------
  // One full fuzz iteration per sample (exec dirties the pages a real
  // campaign dirties), timing only the reset_to_snapshot call.
  {
    emu::Machine m;
    fuzz::attach_coverage(m, woven);
    const auto snap = m.take_snapshot();
    const std::vector<std::uint8_t> input = {'R', 'q', 'x'};
    const symtab::Symbol* buf = woven.binary.find_symbol("fuzz_input");
    const symtab::Symbol* len = woven.binary.find_symbol("fuzz_len");

    constexpr unsigned kIters = 200000;
    std::uint64_t total_ns = 0, pages = 0;
    for (unsigned i = 0; i < kIters; ++i) {
      m.memory().write(fuzz::kPrevAddr, 0, 8);
      m.memory().write_bytes(buf->value, input.data(), input.size());
      m.memory().write(len->value, input.size(), 8);
      m.run(1u << 20);
      const std::uint64_t t0 = now_ns();
      const auto rs = m.reset_to_snapshot(snap);
      const std::uint64_t dt = now_ns() - t0;
      // Outside the campaign's rvdyn.fuzz.* namespace so the campaign's
      // scoped reset (below) cannot wipe the digest before json.write().
      RVDYN_OBS_HIST("rvdyn.bench.fuzz.reset_ns", dt);
      total_ns += dt;
      pages += rs.pages_restored;
    }
    const auto hist =
        obs::Registry::instance().histogram("rvdyn.bench.fuzz.reset_ns");
    std::printf("reset latency: mean %.0f ns, p50 %.0f ns, p99 %.0f ns "
                "(%.1f pages/reset)\n",
                hist.mean(), hist.p50(), hist.p99(),
                static_cast<double>(pages) / kIters);
    json.add("fuzz/reset_latency",
             {{"iterations", static_cast<double>(kIters)},
              {"mean_ns", hist.mean()},
              {"p50_ns", hist.p50()},
              {"p95_ns", hist.p95()},
              {"p99_ns", hist.p99()},
              {"pages_per_reset", static_cast<double>(pages) / kIters},
              {"p50_under_5us", hist.p50() < 5000.0 ? 1.0 : 0.0}});
  }

  // ---- 2. exec throughput with weaving enabled ------------------------
  // The full per-iteration cycle a campaign pays: reset, scratch re-zero,
  // input write, run to exit, novelty check. Small non-matching input so
  // every iteration executes the whole mutatee (~60 woven-block passes).
  {
    emu::Machine m;
    fuzz::attach_coverage(m, woven);
    const auto snap = m.take_snapshot();
    const std::vector<std::uint8_t> input = {'z'};
    const symtab::Symbol* buf = woven.binary.find_symbol("fuzz_input");
    const symtab::Symbol* len = woven.binary.find_symbol("fuzz_len");

    constexpr unsigned kWarm = 50000;
    constexpr unsigned kIters = 1000000;
    const std::uint64_t instret0 = m.instret();
    std::uint64_t guest_insns = 0;
    for (unsigned i = 0; i < kWarm; ++i) {
      m.memory().write(fuzz::kPrevAddr, 0, 8);
      m.memory().write_bytes(buf->value, input.data(), input.size());
      m.memory().write(len->value, input.size(), 8);
      m.run(1u << 20);
      // The reset rewinds instret, so sample the per-exec count before it.
      if (guest_insns == 0) guest_insns = m.instret() - instret0;
      m.reset_to_snapshot(snap);
    }
    const std::uint64_t t0 = now_ns();
    for (unsigned i = 0; i < kIters; ++i) {
      m.memory().write(fuzz::kPrevAddr, 0, 8);
      m.memory().write_bytes(buf->value, input.data(), input.size());
      m.memory().write(len->value, input.size(), 8);
      m.run(1u << 20);
      m.reset_to_snapshot(snap);
    }
    const std::uint64_t dt = now_ns() - t0;
    const double execs_per_sec = kIters / (static_cast<double>(dt) * 1e-9);
    std::printf("throughput: %.2fM execs/s (%.0f ns/exec, %llu guest "
                "insns/exec incl. weaving)\n",
                execs_per_sec / 1e6, static_cast<double>(dt) / kIters,
                static_cast<unsigned long long>(guest_insns));
    json.add("fuzz/exec_throughput_woven",
             {{"execs", static_cast<double>(kIters)},
              {"execs_per_sec", execs_per_sec},
              {"ns_per_exec", static_cast<double>(dt) / kIters},
              {"guest_insns_per_exec", static_cast<double>(guest_insns)},
              {"target_1m_met", execs_per_sec >= 1e6 ? 1.0 : 0.0}});
  }

  // ---- 3. seeded-bug campaign + coverage curve ------------------------
  {
    fuzz::CampaignOptions opts;
    opts.workers = 1;
    opts.max_execs = 500000;
    opts.batch = 16;
    opts.seed = 7;
    fuzz::Campaign c(assembler::assemble(workloads::fuzz_target_program("RV!")),
                     opts);
    const std::uint64_t t0 = now_ns();
    const auto r = c.run();
    const double secs = static_cast<double>(now_ns() - t0) * 1e-9;
    const double found = r.found_crash() ? 1.0 : 0.0;
    const double execs_to_find =
        r.found_crash() ? static_cast<double>(r.crashes.front().found_at_exec)
                        : static_cast<double>(r.execs);
    std::printf("campaign: %s after %.0f execs (%.2fM execs/s, %u edges, "
                "corpus %zu)\n",
                r.found_crash() ? "bug found" : "bug NOT found", execs_to_find,
                r.execs / secs / 1e6, r.edges_covered, r.corpus_size);
    if (r.found_crash())
      std::printf("--- postmortem (first crash) ---\n%s\n",
                  r.crashes.front().postmortem.c_str());
    json.add("fuzz/campaign_seeded_bug",
             {{"found", found},
              {"execs_to_find", execs_to_find},
              {"total_execs", static_cast<double>(r.execs)},
              {"execs_per_sec", r.execs / secs},
              {"edges_covered", static_cast<double>(r.edges_covered)},
              {"corpus_size", static_cast<double>(r.corpus_size)},
              {"hangs", static_cast<double>(r.hangs)}});

    // Coverage curve: up to 8 evenly spaced admission samples, so the
    // committed JSON shows coverage *rising* across the campaign.
    const auto& curve = r.coverage_curve;
    const std::size_t points = curve.size() < 8 ? curve.size() : 8;
    for (std::size_t i = 0; i < points; ++i) {
      const std::size_t idx = i * (curve.size() - 1) / (points > 1 ? points - 1 : 1);
      json.add("fuzz/coverage_curve/" + std::to_string(i),
               {{"execs", static_cast<double>(curve[idx].first)},
                {"edges", static_cast<double>(curve[idx].second)}});
    }
  }

  if (!json.write()) {
    std::fprintf(stderr, "failed to write BENCH_fuzz.json\n");
    return 1;
  }
  std::printf("wrote BENCH_fuzz.json\n");
  return 0;
}
