// F2 — Figure 2's component stack, measured: per-toolkit wall time for the
// full pipeline over a many-function binary (SymtabAPI -> InstructionAPI
// -> ParseAPI -> DataflowAPI -> CodeGenAPI+PatchAPI -> execution).
#include <chrono>

#include "bench_util.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/slicing.hpp"
#include "isa/decoder.hpp"
#include "parse/cfg.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

namespace {

class Timer {
 public:
  Timer() : t0_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
               .count() *
           1e3;
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

int main() {
  const int n_funcs = 1500;
  std::printf("pipeline over a synthetic binary with %d functions\n\n",
              n_funcs);
  std::printf("%-34s %10s %s\n", "component", "time (ms)", "output");

  Timer t_asm;
  const auto src = workloads::many_function_program(n_funcs);
  const auto image = assembler::assemble_elf(src);
  std::printf("%-34s %10.2f %zu-byte ELF\n", "assembler (substrate)",
              t_asm.ms(), image.size());

  Timer t_sym;
  const auto bin = symtab::Symtab::read(image);
  const auto exts = bin.extensions();
  std::printf("%-34s %10.2f %zu sections, %zu symbols, %s\n", "SymtabAPI",
              t_sym.ms(), bin.sections().size(), bin.symbols().size(),
              isa::isa_string(exts).c_str());

  Timer t_dec;
  std::uint64_t decoded = 0;
  {
    isa::Decoder dec(exts);
    for (const auto& sec : bin.sections()) {
      if (!sec.is_code()) continue;
      std::size_t off = 0;
      isa::Instruction insn;
      while (off < sec.data.size()) {
        const unsigned len =
            dec.decode(sec.data.data() + off, sec.data.size() - off, &insn);
        if (len == 0) break;
        off += len;
        ++decoded;
      }
    }
  }
  std::printf("%-34s %10.2f %llu instructions\n", "InstructionAPI (decode)",
              t_dec.ms(), static_cast<unsigned long long>(decoded));

  Timer t_parse;
  parse::CodeObject co(bin);
  parse::ParseOptions popts;
  popts.num_threads = 4;
  co.parse(popts);
  const auto stats = co.total_stats();
  std::printf("%-34s %10.2f %zu funcs, %u blocks, %u calls\n",
              "ParseAPI (4 threads)", t_parse.ms(), co.functions().size(),
              stats.n_blocks, stats.n_calls);

  Timer t_df;
  std::uint64_t liveness_queries = 0, slice_edges = 0;
  for (const auto& [entry, f] : co.functions()) {
    dataflow::Liveness live(*f);
    for (const auto& [a, b] : f->blocks()) {
      (void)live.dead_before(b.get(), 0);
      ++liveness_queries;
    }
    dataflow::Slicer slicer(*f);
    slice_edges += slicer.num_edges();
  }
  std::printf("%-34s %10.2f %llu liveness queries, %llu def-use edges\n",
              "DataflowAPI (liveness+slicing)", t_df.ms(),
              static_cast<unsigned long long>(liveness_queries),
              static_cast<unsigned long long>(slice_edges));

  Timer t_patch;
  patch::BinaryEditor editor(bin);
  const auto counter = editor.alloc_var("c");
  for (const auto& [entry, f] : editor.code().functions())
    editor.insert_at(entry, patch::PointType::FuncEntry,
                     codegen::increment(counter));
  auto rewritten = editor.commit();
  std::printf("%-34s %10.2f %u funcs relocated, %u snippet insns\n",
              "CodeGenAPI+PatchAPI (rewrite all)", t_patch.ms(),
              editor.stats().relocated_functions,
              editor.stats().snippet_insns);

  Timer t_run;
  const auto traps = editor.trap_table();
  const auto r = bench::run_binary(rewritten, &traps, counter.addr);
  std::printf("%-34s %10.2f exit=%d, %llu function entries counted\n",
              "execution (emulated)", t_run.ms(), r.exit_code,
              static_cast<unsigned long long>(r.counter));
  return 0;
}
