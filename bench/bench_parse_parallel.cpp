// A3 — ParseAPI's parallel parsing claim: CFG construction throughput as
// the worker count grows, on many-function binaries.
#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "parse/cfg.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

int main() {
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware threads available: %u\n", cores);
  if (cores == 1)
    std::printf("NOTE: single-core host — speedups are bounded at ~1.0x; "
                "this run verifies\ndeterminism (identical CFGs per thread "
                "count) and measures pool overhead.\n");
  std::printf("\n");
  bench::JsonWriter json("BENCH_parse_parallel.json");
  for (const int n_funcs : {500, 2000, 8000}) {
    const auto bin =
        assembler::assemble(workloads::many_function_program(n_funcs));
    std::uint64_t text_bytes = 0;
    for (const auto& s : bin.sections())
      if (s.is_code()) text_bytes += s.data.size();
    std::printf("binary: %d functions, %llu bytes of code\n", n_funcs,
                static_cast<unsigned long long>(text_bytes));
    std::printf("%10s %12s %10s %10s\n", "threads", "parse (ms)", "speedup",
                "blocks");

    double serial_ms = 0;
    double speedup_4t = 0, speedup_8t = 0;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      // Best of five runs to damp scheduler noise.
      double best = 1e18;
      unsigned blocks = 0;
      for (int rep = 0; rep < 5; ++rep) {
        parse::CodeObject co(bin);
        parse::ParseOptions opts;
        opts.num_threads = threads;
        const auto t0 = std::chrono::steady_clock::now();
        co.parse(opts);
        const double ms =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count() *
            1e3;
        best = std::min(best, ms);
        blocks = co.total_stats().n_blocks;
      }
      if (threads == 1) serial_ms = best;
      if (threads == 4) speedup_4t = serial_ms / best;
      if (threads == 8) speedup_8t = serial_ms / best;
      std::printf("%10u %12.2f %9.2fx %10u\n", threads, best,
                  serial_ms / best, blocks);
      char name[64];
      std::snprintf(name, sizeof(name), "parse_%dfn_%ut", n_funcs, threads);
      json.add(name, {{"wall_ms", best},
                      {"speedup", serial_ms / best},
                      {"blocks", static_cast<double>(blocks)}});
    }
    // Machine-checkable scaling summary: the perf trajectory watches
    // speedup_4t, interpreted against hardware_threads (a 1-core host
    // bounds every config at ~1.0x regardless of scheduler quality).
    char name[64];
    std::snprintf(name, sizeof(name), "parse_%dfn_scaling", n_funcs);
    json.add(name, {{"serial_ms", serial_ms},
                    {"speedup_4t", speedup_4t},
                    {"speedup_8t", speedup_8t},
                    {"hardware_threads", static_cast<double>(cores)}});
    std::printf("\n");
  }
  json.write();
  std::printf(
      "expected: near-linear speedup up to the hardware thread count while\n"
      "functions outnumber workers (block counts identical across thread\n"
      "counts — determinism check). On a single-core host all rows are "
      "~1.0x.\n");
  return 0;
}
