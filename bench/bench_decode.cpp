// A4 — InstructionAPI decoder throughput (the Capstone-replacement path,
// §3.2.2), via google-benchmark: straight-line decode over real code
// bytes, with and without compressed instructions, plus single-instruction
// decode and encode round-trips.
#include <benchmark/benchmark.h>

#include "assembler/assembler.hpp"
#include "bench_util.hpp"
#include "isa/decoder.hpp"
#include "isa/encoder.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

namespace {

std::vector<std::uint8_t> code_bytes(bool rvc) {
  assembler::Options opts;
  if (!rvc) opts.extensions = isa::ExtensionSet::rv64g();
  const auto bin = assembler::assemble(
      workloads::many_function_program(800), opts);
  for (const auto& s : bin.sections())
    if (s.is_code()) return s.data;
  return {};
}

void BM_DecodeStream(benchmark::State& state) {
  const bool rvc = state.range(0) != 0;
  const auto bytes = code_bytes(rvc);
  isa::Decoder dec(rvc ? isa::ExtensionSet::rv64gc()
                       : isa::ExtensionSet::rv64g());
  std::uint64_t insns = 0;
  for (auto _ : state) {
    std::size_t off = 0;
    isa::Instruction out;
    while (off < bytes.size()) {
      const unsigned len = dec.decode(bytes.data() + off,
                                      bytes.size() - off, &out);
      if (len == 0) break;
      benchmark::DoNotOptimize(out);
      off += len;
      ++insns;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
  state.counters["insns/s"] = benchmark::Counter(
      static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeStream)->Arg(0)->Arg(1)->ArgNames({"rvc"});

void BM_DecodeRange(benchmark::State& state) {
  const bool rvc = state.range(0) != 0;
  const auto bytes = code_bytes(rvc);
  isa::Decoder dec(rvc ? isa::ExtensionSet::rv64gc()
                       : isa::ExtensionSet::rv64g());
  std::uint64_t insns = 0;
  for (auto _ : state) {
    dec.decode_range(bytes.data(), bytes.size(),
                     [&](std::size_t, const isa::Instruction& out, unsigned) {
                       benchmark::DoNotOptimize(out);
                       ++insns;
                       return true;
                     });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
  state.counters["insns/s"] = benchmark::Counter(
      static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeRange)->Arg(0)->Arg(1)->ArgNames({"rvc"});

void BM_DecodeSingle32(benchmark::State& state) {
  isa::Decoder dec;
  isa::Instruction out;
  const std::uint32_t word = 0x00c58533;  // add a0, a1, a2
  for (auto _ : state) {
    dec.decode32(word, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DecodeSingle32);

void BM_DecodeSingle16(benchmark::State& state) {
  isa::Decoder dec;
  isa::Instruction out;
  for (auto _ : state) {
    dec.decode16(0x852e, &out);  // c.mv a0, a1
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DecodeSingle16);

void BM_EncodeRoundTrip(benchmark::State& state) {
  using isa::Instruction;
  using isa::Operand;
  for (auto _ : state) {
    auto insn = isa::assemble(
        isa::Mnemonic::addi,
        {Instruction::reg_op(isa::a0, Operand::kWrite),
         Instruction::reg_op(isa::a1, Operand::kRead),
         Instruction::imm_op(42)});
    benchmark::DoNotOptimize(insn);
  }
}
BENCHMARK(BM_EncodeRoundTrip);

void BM_Compress(benchmark::State& state) {
  using isa::Instruction;
  using isa::Operand;
  const auto insn = isa::assemble(
      isa::Mnemonic::addi,
      {Instruction::reg_op(isa::sp, Operand::kWrite),
       Instruction::reg_op(isa::sp, Operand::kRead),
       Instruction::imm_op(-16)});
  for (auto _ : state) {
    auto half = isa::compress(insn);
    benchmark::DoNotOptimize(half);
  }
}
BENCHMARK(BM_Compress);

}  // namespace

int main(int argc, char** argv) {
  return rvdyn::bench::run_benchmarks_with_json(argc, argv,
                                                "BENCH_decode.json");
}
