// Differential-correctness harness throughput: how fast the three oracles
// (lockstep semantics↔emulator, decode/encode round trip, shadow-stack
// walk) grind through states, so CI can budget oracle depth. Each run also
// populates the rvdyn.check.* obs counters, which land in the JSON's
// rvdyn_meta metrics block — the bench artifact doubles as a coverage
// record for the oracle pass (states, encodings, rvc forms, divergences).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "check/check.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

namespace {

void BM_LockstepOracle(benchmark::State& state) {
  check::LockstepOptions opts;
  opts.states_per_mnemonic = static_cast<unsigned>(state.range(0));
  opts.states_per_encoding = 5;
  opts.rvc_exhaustive = false;
  std::uint64_t states = 0, divergences = 0;
  for (auto _ : state) {
    const auto rep = check::run_lockstep(opts);
    states += rep.states;
    divergences += rep.divergence_count;
    benchmark::DoNotOptimize(rep);
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["divergences"] = static_cast<double>(divergences);
}
BENCHMARK(BM_LockstepOracle)
    ->Arg(100)
    ->Arg(500)
    ->ArgNames({"states_per_mn"})
    ->Unit(benchmark::kMillisecond);

void BM_RoundTripOracle(benchmark::State& state) {
  check::RoundTripOptions opts;
  opts.random_words = static_cast<unsigned>(state.range(0));
  std::uint64_t checks = 0, divergences = 0;
  for (auto _ : state) {
    const auto rep = check::run_roundtrip(opts);
    checks += rep.checks;
    divergences += rep.divergence_count;
    benchmark::DoNotOptimize(rep);
  }
  state.counters["checks/s"] = benchmark::Counter(
      static_cast<double>(checks), benchmark::Counter::kIsRate);
  state.counters["divergences"] = static_cast<double>(divergences);
}
BENCHMARK(BM_RoundTripOracle)
    ->Arg(50000)
    ->ArgNames({"words"})
    ->Unit(benchmark::kMillisecond);

void BM_ShadowStackOracle(benchmark::State& state) {
  const auto stops = static_cast<unsigned>(state.range(0));
  std::uint64_t frames = 0, divergences = 0;
  for (auto _ : state) {
    check::ShadowStackOptions opts;
    opts.stops = stops;
    const auto rep =
        check::run_shadow_stack("matmul", workloads::matmul_program(8, 2),
                                opts);
    frames += rep.frames_compared;
    divergences += rep.divergence_count;
    benchmark::DoNotOptimize(rep);
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kIsRate);
  state.counters["divergences"] = static_cast<double>(divergences);
}
BENCHMARK(BM_ShadowStackOracle)
    ->Arg(50)
    ->ArgNames({"stops"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return rvdyn::bench::run_benchmarks_with_json(argc, argv,
                                                "BENCH_check.json");
}
