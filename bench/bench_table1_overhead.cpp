// T1 — reproduces the paper's §4.3 overhead table.
//
// Workload (paper §4.1): an n x n double matmul called `reps` times in a
// timed loop; timing sampled by the mutatee itself via clock_gettime.
// Rows: Base / Function count (entry counter on `matmul`) / BB count
// (counter at each of matmul's basic blocks).
//
// The paper's x86 column came from a second machine whose Dyninst did not
// yet have the dead-register allocation optimization; we reproduce that
// comparison as a same-ISA ablation: "spill" disables the optimization
// (every scratch register is saved/restored), "dead-reg" enables it — the
// exact code-generation difference the paper credits for RISC-V's lower
// overheads.
#include <cstring>

#include "bench_util.hpp"
#include "parse/cfg.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;
using bench::Instrumented;
using bench::RunResult;

int main(int argc, char** argv) {
  int n = 100, reps = 1;
  for (int i = 1; i < argc; ++i) {
    if (!std::strncmp(argv[i], "--n=", 4)) n = std::atoi(argv[i] + 4);
    if (!std::strncmp(argv[i], "--reps=", 7)) reps = std::atoi(argv[i] + 7);
  }

  const auto bin = assembler::assemble(workloads::matmul_program(n, reps));

  // Report the workload shape the paper reports (11 BBs, ~2M BB execs).
  parse::CodeObject co(bin);
  co.parse();
  const auto* matmul = co.function_named("matmul");
  std::printf("workload: %dx%d double matmul, %d call(s) in the timed loop\n",
              n, n, reps);
  std::printf("matmul basic blocks: %zu\n", matmul->blocks().size());

  const RunResult base = bench::run_binary(bin);
  std::printf("base run: exit=%d instret=%llu elapsed=%.4fs (virtual)\n\n",
              base.exit_code,
              static_cast<unsigned long long>(base.instret),
              base.elapsed_ns / 1e9);

  struct Row {
    const char* name;
    patch::PointType type;
  };
  const Row rows[] = {
      {"Function count", patch::PointType::FuncEntry},
      {"BB count", patch::PointType::BlockEntry},
  };

  std::printf("%-16s | %-21s | %-21s\n", "", "spill (x86-like)",
              "dead-reg (RISC-V)");
  std::printf("%-16s | %10s %9s | %10s %9s\n", "", "time (s)", "ovh",
              "time (s)", "ovh");
  std::printf("%-16s-+-%-21s-+-%-21s\n", "----------------",
              "---------------------", "---------------------");
  std::printf("%-16s | %10.4f %8s%% | %10.4f %8s%%\n", "Base",
              base.elapsed_ns / 1e9, "-", base.elapsed_ns / 1e9, "-");

  for (const Row& row : rows) {
    double t[2];
    double ovh[2];
    std::uint64_t counters[2];
    for (int mode = 0; mode < 2; ++mode) {
      const bool dead = mode == 1;
      Instrumented inst =
          bench::instrument_counter(bin, "matmul", row.type, dead);
      const RunResult r =
          bench::run_binary(inst.bin, &inst.traps, inst.counter_addr);
      if (r.exit_code != base.exit_code) {
        std::fprintf(stderr, "instrumented run diverged (%d vs %d)\n",
                     r.exit_code, base.exit_code);
        return 1;
      }
      t[mode] = r.elapsed_ns / 1e9;
      ovh[mode] = bench::pct_overhead(base.elapsed_ns, r.elapsed_ns);
      counters[mode] = r.counter;
    }
    std::printf("%-16s | %10.4f %8.1f%% | %10.4f %8.1f%%\n", row.name, t[0],
                ovh[0], t[1], ovh[1]);
    std::printf("%-16s |   counter=%-10llu |   counter=%llu\n", "",
                static_cast<unsigned long long>(counters[0]),
                static_cast<unsigned long long>(counters[1]));
  }

  std::printf(
      "\npaper (§4.3, 100x100, P550 vs i5): base->fn 0.8%% / base->bb 15.3%% "
      "on RISC-V;\n1.4%% / 66.9%% on x86 (pre-dead-reg-optimization "
      "Dyninst).\nExpected shape: dead-reg column well below the spill "
      "column, BB count >> function count.\n");
  return 0;
}
