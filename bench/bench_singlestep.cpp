// A5 — single-stepping cost (paper §3.2.6): RISC-V ptrace lacks hardware
// single-step, so ProcControlAPI emulates it with temporary breakpoints.
// Compare the native step (what other ISAs get from ptrace) against the
// breakpoint-emulated step, both in tool-side wall time and in mutatee
// memory traffic (code patching per step).
#include <chrono>

#include "bench_util.hpp"
#include "proccontrol/process.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;
using proccontrol::Event;
using proccontrol::Process;

int main() {
  const int steps = 20000;
  const auto bin = assembler::assemble(workloads::fib_program(30));
  std::printf("workload: fib(30); %d single-steps per mode\n\n", steps);
  std::printf("%-28s %12s %14s\n", "mode", "wall (ms)", "steps/s");

  double native_ms = 0;
  bench::JsonWriter json("BENCH_singlestep.json");
  for (const bool emulated : {false, true}) {
    auto proc = Process::launch(bin);
    const auto t0 = std::chrono::steady_clock::now();
    int done = 0;
    for (; done < steps; ++done) {
      const Event ev = emulated ? proc->step_emulated() : proc->step_native();
      if (ev.kind != Event::Kind::Stepped) break;
    }
    const double ms =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() *
        1e3;
    if (!emulated) native_ms = ms;
    std::printf("%-28s %12.2f %14.0f\n",
                emulated ? "breakpoint-emulated (RISC-V)" : "native (ptrace elsewhere)",
                ms, done / (ms / 1e3));
    json.add(emulated ? "singlestep_emulated" : "singlestep_native",
             {{"wall_ms", ms}, {"steps_per_s", done / (ms / 1e3)}});
  }
  json.write();
  std::printf("\nexpected: emulated stepping markedly slower — each step "
              "decodes the\ninstruction, computes successors, and patches "
              "trap bytes in and out\n(native/emulated wall ratio shown "
              "above; native took %.2f ms).\n", native_ms);

  // Correctness cross-check: both modes land on the same pc trace.
  auto a = Process::launch(bin);
  auto b = Process::launch(bin);
  for (int i = 0; i < 2000; ++i) {
    if (a->pc() != b->pc()) {
      std::printf("DIVERGED at step %d\n", i);
      return 1;
    }
    const Event ea = a->step_native();
    const Event eb = b->step_emulated();
    if (ea.kind == Event::Kind::Exited) {
      std::printf("\ntrace check: both modes agree over %d steps%s\n", i,
                  eb.kind == Event::Kind::Exited ? " (exited together)" : "");
      return 0;
    }
  }
  std::printf("\ntrace check: both modes agree over 2000 steps\n");
  return 0;
}
