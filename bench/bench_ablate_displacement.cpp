// A1 — the displacement-strategy ladder of §3.1.2: what entry patch the
// rewriter chooses as the patch area moves away from the original code,
// and what each strategy costs per call.
//
// Strategies: c.j (2 bytes, ±2KiB) -> jal (4 bytes, ±1MiB) ->
// auipc+jalr (8 bytes, ±2GiB, needs a dead register) -> trap (2 bytes,
// unlimited range but a runtime round-trip per entry).
#include "bench_util.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

namespace {

struct Config {
  const char* name;
  std::uint64_t text_base;  // 0 = editor default
  const char* func;         // function to instrument
};

void run_config(const symtab::Symtab& bin, const Config& cfg, int reps,
                std::uint64_t base_cycles) {
  patch::BinaryEditor editor(bin);
  if (cfg.text_base) editor.set_patch_base(cfg.text_base, cfg.text_base + 0x100000);
  const auto counter = editor.alloc_var("c");
  editor.insert_at(editor.code().function_named(cfg.func)->entry(),
                   patch::PointType::FuncEntry, codegen::increment(counter));
  auto rewritten = editor.commit();
  const auto traps = editor.trap_table();
  const auto r = bench::run_binary(rewritten, &traps, counter.addr);

  const auto& s = editor.stats();
  const char* strategy = s.entry_cj       ? "c.j"
                         : s.entry_jal    ? "jal"
                         : s.entry_auipc_jalr ? "auipc+jalr"
                         : s.entry_trap   ? "trap"
                                          : "?";
  std::printf("%-26s %-12s %10llu %12llu %9.1f%%\n", cfg.name, strategy,
              static_cast<unsigned long long>(r.counter),
              static_cast<unsigned long long>(r.cycles),
              bench::pct_overhead(base_cycles, r.cycles));
  (void)reps;
}

}  // namespace

int main() {
  const int reps = 20000;
  const auto bin = assembler::assemble(workloads::call_churn_program(reps));
  const auto base = bench::run_binary(bin);
  std::printf("workload: %d calls to `wrapper`; base cycles=%llu\n\n", reps,
              static_cast<unsigned long long>(base.cycles));
  std::printf("%-26s %-12s %10s %12s %10s\n", "patch-area placement",
              "strategy", "counter", "cycles", "overhead");

  // The text ends a little above 0x10000; pick bases per range bucket.
  const Config configs[] = {
      {"adjacent (+~2KiB)", 0x10800, "wrapper"},
      {"near (default, ~64KiB)", 0, "wrapper"},
      {"far (+16MiB)", 0x1000000, "wrapper"},
      {"very far (+1GiB)", 0x40000000, "wrapper"},
  };
  for (const Config& cfg : configs) run_config(bin, cfg, reps, base.cycles);

  // Trap worst case: a function too small for any jump, with a far target.
  {
    const char* src = R"(
    .globl _start
    .globl tiny
_start:
    li s0, 0
    li s1, 20000
tl:
    mv a0, s0
    call tiny
    addi s0, s0, 1
    blt s0, s1, tl
    li a0, 0
    li a7, 93
    ecall
tiny:
    addi a0, a0, 1
    ret
)";
    const auto tiny_bin = assembler::assemble(src);
    const auto tiny_base = bench::run_binary(tiny_bin);
    patch::BinaryEditor editor(tiny_bin);
    editor.set_patch_base(0x40000000, 0x40100000);
    const auto counter = editor.alloc_var("c");
    editor.insert_at(editor.code().function_named("tiny")->entry(),
                     patch::PointType::FuncEntry, codegen::increment(counter));
    auto rewritten = editor.commit();
    const auto traps = editor.trap_table();
    const auto r = bench::run_binary(rewritten, &traps, counter.addr);
    std::printf("%-26s %-12s %10llu %12llu %9.1f%%  (vs its own base)\n",
                "4-byte function, +1GiB",
                editor.stats().entry_trap ? "trap" : "?",
                static_cast<unsigned long long>(r.counter),
                static_cast<unsigned long long>(r.cycles),
                bench::pct_overhead(tiny_base.cycles, r.cycles));
  }

  std::printf(
      "\nexpected: cheap short jumps near, auipc+jalr once jal's ±1MiB is "
      "exceeded;\nthe trap row's overhead dwarfs the others (the paper's "
      "\"inefficient\n2-byte trap instructions\" worst case — emulated-"
      "runtime redirect per entry).\n");
  return 0;
}
