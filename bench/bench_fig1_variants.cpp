// F1 — Figure 1's three instrumentation variants, demonstrated end-to-end:
//  (a) static binary rewriting:      instrument -> write ELF -> execute;
//  (b) create-and-instrument:        spawn process, patch before it runs;
//  (c) attach-to-running:            run partway, attach, patch, resume.
// All three must produce identical program behaviour; their counters
// differ only by how much execution happened before instrumentation.
#include <chrono>

#include "bench_util.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;
using proccontrol::Event;
using proccontrol::Process;

namespace {

double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const int reps = 2000;
  const auto bin = assembler::assemble(workloads::call_churn_program(reps));
  const auto base = bench::run_binary(bin);
  std::printf("workload: call-churn, %d wrapper calls; base exit=%d\n\n",
              reps, base.exit_code);

  std::printf("%-24s %10s %12s %10s\n", "variant", "exit", "counter",
              "tool (ms)");

  // (a) static rewriting: new binary on disk, then executed.
  {
    const auto t0 = std::chrono::steady_clock::now();
    auto inst = bench::instrument_counter(bin, "wrapper",
                                          patch::PointType::FuncEntry, true);
    const auto image = inst.bin.write();           // serialize
    const auto reloaded = symtab::Symtab::read(image);  // "exec" the file
    const double tool_ms = secs_since(t0) * 1e3;
    const auto r = bench::run_binary(reloaded, &inst.traps, inst.counter_addr);
    std::printf("%-24s %10d %12llu %10.2f\n", "static rewrite", r.exit_code,
                static_cast<unsigned long long>(r.counter), tool_ms);
  }

  // (b) dynamic, create-and-instrument: process exists but has not run.
  {
    const auto t0 = std::chrono::steady_clock::now();
    auto proc = Process::launch(bin);
    patch::BinaryEditor editor(bin);
    const auto counter = editor.alloc_var("c");
    editor.insert_at(editor.code().function_named("wrapper")->entry(),
                     patch::PointType::FuncEntry, codegen::increment(counter));
    editor.commit();
    proc->apply_patch(editor);
    const double tool_ms = secs_since(t0) * 1e3;
    const Event ev = proc->continue_run();
    std::printf("%-24s %10d %12llu %10.2f\n", "dynamic (spawn)", ev.exit_code,
                static_cast<unsigned long long>(
                    proc->read_mem(counter.addr, 8)),
                tool_ms);
  }

  // (c) dynamic, attach mid-run: half the calls happen uninstrumented.
  {
    auto proc = Process::launch(bin);
    const auto* wrapper = bin.find_symbol("wrapper");
    proc->insert_breakpoint(wrapper->value);
    for (int i = 0; i < reps / 2; ++i) proc->continue_run();
    proc->remove_breakpoint(wrapper->value);

    const auto t0 = std::chrono::steady_clock::now();
    patch::BinaryEditor editor(bin);
    const auto counter = editor.alloc_var("c");
    editor.insert_at(editor.code().function_named("wrapper")->entry(),
                     patch::PointType::FuncEntry, codegen::increment(counter));
    editor.commit();
    proc->apply_patch(editor);
    const double tool_ms = secs_since(t0) * 1e3;
    const Event ev = proc->continue_run();
    std::printf("%-24s %10d %12llu %10.2f\n", "dynamic (attach @50%)",
                ev.exit_code,
                static_cast<unsigned long long>(
                    proc->read_mem(counter.addr, 8)),
                tool_ms);
  }

  std::printf(
      "\nexpected: identical exit codes; counters %d / %d / ~%d "
      "(attach misses the first half).\n",
      reps, reps, reps / 2);
  return 0;
}
