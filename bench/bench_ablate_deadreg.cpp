// A2 — the dead-register allocation optimization (paper §4.3), isolated:
// identical snippet, identical points, with liveness-guided scratch
// allocation on vs off; plus a sweep over register pressure (how many
// dead registers the point offers).
#include "bench_util.hpp"
#include "codegen/codegen.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/summaries.hpp"
#include "parse/cfg.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

int main() {
  const int n = 60;
  const auto bin = assembler::assemble(workloads::matmul_program(n, 1));
  const auto base = bench::run_binary(bin);
  std::printf("workload: %dx%d matmul; BB counters on every matmul block\n\n",
              n, n);

  std::printf("%-22s %12s %10s %12s %12s\n", "mode", "snippet-insns",
              "spills", "cycles", "overhead");
  for (const bool dead : {false, true}) {
    auto inst = bench::instrument_counter(bin, "matmul",
                                          patch::PointType::BlockEntry, dead);
    const auto r = bench::run_binary(inst.bin, &inst.traps, inst.counter_addr);
    std::printf("%-22s %12u %10u %12llu %11.1f%%\n",
                dead ? "dead-reg (RISC-V)" : "always-spill (x86)",
                inst.stats.gen.n_insns, inst.stats.gen.scratch_spilled,
                static_cast<unsigned long long>(r.cycles),
                bench::pct_overhead(base.cycles, r.cycles));
  }

  // Interprocedural sharpening (beyond the paper): dead registers at the
  // call sites of the call-churn workload under the ABI call model vs
  // summary-driven liveness.
  {
    const auto churn = assembler::assemble(workloads::call_churn_program(8));
    parse::CodeObject co(churn);
    co.parse();
    const dataflow::Summaries sums(co);
    const auto* f = co.function_named("wrapper");
    const parse::Block* callsite = nullptr;
    for (const auto& [a, b] : f->blocks())
      for (const auto& e : b->succs())
        if (e.type == parse::EdgeType::Call) callsite = b.get();
    const std::size_t term = callsite->insns().size() - 1;
    dataflow::Liveness abi(*f);
    dataflow::Liveness sharp(*f, &sums);
    std::printf(
        "\ndead registers at wrapper's call site: %u (ABI call model) -> "
        "%u (interprocedural summaries)\n",
        abi.dead_before(callsite, term).count(),
        sharp.dead_before(callsite, term).count());
  }

  // Register-pressure sweep at the codegen level: the counter snippet with
  // k dead registers available (k < needed forces partial spills).
  std::printf("\ncounter snippet vs available dead registers:\n");
  std::printf("%8s %14s %10s\n", "dead", "snippet-insns", "spills");
  codegen::Variable v;
  v.addr = 0x200000;
  v.size = 8;
  for (unsigned k = 0; k <= 4; ++k) {
    isa::RegSet dead;
    for (unsigned i = 0; i < k; ++i) dead.add(isa::x(5 + i));  // t0..
    codegen::CodeGenerator gen;
    codegen::GenStats stats;
    gen.generate(*codegen::increment(v), dead, &stats);
    std::printf("%8u %14u %10u\n", k, stats.n_insns, stats.scratch_spilled);
  }

  std::printf(
      "\nexpected: always-spill needs sp-adjust + save/restore around every "
      "counter\n(the paper's x86 column behaviour); two dead registers "
      "suffice for the\ncounter snippet, so spills drop to zero.\n");
  return 0;
}
