// Observability-layer benchmark: what the v2 obs surface costs. Writes
// BENCH_obs.json with three groups of entries:
//
//   * sampling_overhead_*  — JIT-tier matmul throughput with the sampling
//     profiler attached at several intervals vs. unsampled baseline; the
//     default interval (2^18) must stay under the 5% budget.
//   * export               — latency of one prometheus_text() and one
//     json_snapshot() over a populated registry.
//   * postmortem           — time to assemble one full postmortem_report
//     (register dump + stack walk + block trace + trace-sink tail).
//
// Hand-rolled timing (steady_clock around Machine::run) like bench_jit:
// each entry is a pair of long deterministic runs and the quantity of
// interest is the ratio.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "assembler/assembler.hpp"
#include "bench_util.hpp"
#include "emu/machine.hpp"
#include "obs/export.hpp"
#include "obs/postmortem.hpp"
#include "obs/sampler.hpp"
#include "parse/cfg.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

namespace {

double run_timed(emu::Machine& m, const symtab::Symtab& bin) {
#if RVDYN_JIT_ENABLED
  m.set_jit_enabled(true);
#endif
  m.load(bin);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = m.run(4'000'000'000ULL);
  const auto t1 = std::chrono::steady_clock::now();
  if (r != emu::StopReason::Exited) {
    std::fprintf(stderr, "workload did not exit (stop=%d)\n",
                 static_cast<int>(r));
    std::exit(1);
  }
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  // Long enough (~tens of millions of retired insns) that JIT warmup and
  // scheduler noise sit in the measurement floor; best-of-3 filters the
  // rest. The quantity of interest is a ratio of two long runs.
  const std::string src = workloads::matmul_program(96, 8);
  const auto bin = assembler::assemble(src);
  parse::CodeObject co(bin);
  co.parse();
  constexpr int kReps = 3;

  bench::JsonWriter out("BENCH_obs.json");

  // --- sampling overhead vs. rate -----------------------------------------
  double base_s = 0;
  std::uint64_t base_instret = 0;
  for (int i = 0; i < kReps; ++i) {
    emu::Machine m;
    const double s = run_timed(m, bin);
    if (i == 0 || s < base_s) base_s = s;
    base_instret = m.instret();
    if (i + 1 == kReps) m.publish_metrics();  // populate the export bench
  }
  const double base_ips = base_instret / base_s;
  std::printf("%-26s %12.3g insns/s (baseline, no sampler)\n", "matmul/jit",
              base_ips);

  // Largest primes below 2^14 / 2^16 / 2^18 / 2^20 — prime for the same
  // anti-aliasing reason as the SamplerOptions default.
  const std::uint64_t intervals[] = {16381, 65521, 262139, 1048573};
  for (const std::uint64_t interval : intervals) {
    obs::SamplerOptions opts;
    opts.interval = interval;
    double best_s = 0;
    std::uint64_t samples = 0, jit_samples = 0, instret = 0;
    for (int i = 0; i < kReps; ++i) {
      emu::Machine m;
      obs::Sampler sampler(m, co, opts);
      const double s = run_timed(m, bin);
      sampler.detach();
      if (i == 0 || s < best_s) best_s = s;
      samples = sampler.samples();
      jit_samples = sampler.jit_samples();
      instret = m.instret();
    }
    const double overhead = bench::pct_overhead(
        static_cast<std::uint64_t>(base_s * 1e9),
        static_cast<std::uint64_t>(best_s * 1e9));
    char name[64];
    std::snprintf(name, sizeof(name), "sampling_overhead_i%llu",
                  static_cast<unsigned long long>(interval));
    out.add(name, {
                      {"interval", static_cast<double>(interval)},
                      {"baseline_insns_per_s", base_ips},
                      {"sampled_insns_per_s", instret / best_s},
                      {"overhead_pct", overhead},
                      {"samples", static_cast<double>(samples)},
                      {"jit_samples", static_cast<double>(jit_samples)},
                  });
    std::printf("%-26s %12.3g insns/s  %+6.2f%%  (%llu samples)\n", name,
                instret / best_s, overhead,
                static_cast<unsigned long long>(samples));
    if (interval == 262139 && overhead > 5.0)
      std::fprintf(stderr,
                   "WARNING: default-rate sampling overhead %.2f%% exceeds "
                   "the 5%% budget\n", overhead);
  }

  // --- export latency ------------------------------------------------------
  {
    constexpr int kIters = 200;
    std::size_t prom_bytes = 0, json_bytes = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) prom_bytes = obs::prometheus_text().size();
    auto t1 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) json_bytes = obs::json_snapshot().size();
    auto t2 = std::chrono::steady_clock::now();
    const double prom_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kIters;
    const double json_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count() / kIters;
    out.add("export", {
                          {"prometheus_us", prom_us},
                          {"json_snapshot_us", json_us},
                          {"prometheus_bytes", static_cast<double>(prom_bytes)},
                          {"json_bytes", static_cast<double>(json_bytes)},
                      });
    std::printf("%-26s prometheus %.1fus (%zuB), json %.1fus (%zuB)\n",
                "export", prom_us, prom_bytes, json_us, json_bytes);
  }

  // --- postmortem generation time -----------------------------------------
  {
    emu::Machine m;
    m.enable_block_trace(true);
    m.load(bin);
    const auto r = m.run(4'000'000'000ULL);
    constexpr int kIters = 50;
    std::size_t bytes = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i)
      bytes = obs::postmortem_report(m, co, r).size();
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kIters;
    out.add("postmortem", {
                              {"report_us", us},
                              {"report_bytes", static_cast<double>(bytes)},
                          });
    std::printf("%-26s %.1fus per report (%zuB)\n", "postmortem", us, bytes);
  }

  if (!out.write()) {
    std::fprintf(stderr, "failed to write BENCH_obs.json\n");
    return 1;
  }
  return 0;
}
