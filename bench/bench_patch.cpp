// Relocation-engine benchmark: commit latency of the pass pipeline, the
// displacement-strategy ladder the springboards land on, and the code-size
// effect of the RVC re-compression pass — per workload and per insertion
// mix. Writes BENCH_patch.json (JsonWriter shape + rvdyn_meta provenance).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

namespace {

struct Case {
  const char* name;
  std::string src;
  const char* func;           ///< instrumented function
  patch::PointType type;      ///< where the counter goes
};

struct Measured {
  double commit_ns_min = 0;   ///< best-of-N full build_plan+apply latency
  double commit_ns_mean = 0;
  patch::RewriteStats stats;
};

Measured measure(const symtab::Symtab& bin, const Case& c, int reps) {
  Measured out;
  double total = 0;
  for (int i = 0; i < reps; ++i) {
    patch::BinaryEditor editor(bin);
    const auto counter = editor.alloc_var("counter");
    const auto* f = editor.code().function_named(c.func);
    if (!f) {
      std::fprintf(stderr, "no function named %s\n", c.func);
      std::exit(1);
    }
    editor.insert_at(f->entry(), c.type, codegen::increment(counter));
    const auto t0 = std::chrono::steady_clock::now();
    editor.commit();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    total += ns;
    if (i == 0 || ns < out.commit_ns_min) out.commit_ns_min = ns;
    out.stats = editor.stats();
  }
  out.commit_ns_mean = total / reps;
  return out;
}

}  // namespace

int main() {
  const Case cases[] = {
      {"matmul/func_entry", workloads::matmul_program(40, 1), "matmul",
       patch::PointType::FuncEntry},
      {"matmul/block_entry", workloads::matmul_program(40, 1), "matmul",
       patch::PointType::BlockEntry},
      {"call_churn/func_exit", workloads::call_churn_program(100), "wrapper",
       patch::PointType::FuncExit},
      {"dispatch/block_entry", workloads::dispatch_program(50), "dispatch",
       patch::PointType::BlockEntry},
      {"sort/backedge", workloads::sort_program(64), "isort",
       patch::PointType::LoopBackedge},
  };
  constexpr int kReps = 5;

  bench::JsonWriter json("BENCH_patch.json");
  std::printf("%-22s %12s %8s %8s %8s %8s %10s %10s\n", "case", "commit_ns",
              "cj", "jal", "auipc", "trap", "pre_rvc_B", "post_rvc_B");
  for (const auto& c : cases) {
    const auto bin = assembler::assemble(c.src);
    const auto m = measure(bin, c, kReps);
    const auto& s = m.stats;
    const auto& r = s.reloc;
    std::printf("%-22s %12.0f %8u %8u %8u %8u %10llu %10llu\n", c.name,
                m.commit_ns_min, s.entry_cj, s.entry_jal, s.entry_auipc_jalr,
                s.entry_trap,
                static_cast<unsigned long long>(r.bytes_before_rvc),
                static_cast<unsigned long long>(r.bytes_after_rvc));
    json.add(c.name,
             {{"commit_ns_min", m.commit_ns_min},
              {"commit_ns_mean", m.commit_ns_mean},
              // displacement-ladder histogram (springboard strategies)
              {"entry_cj", double(s.entry_cj)},
              {"entry_jal", double(s.entry_jal)},
              {"entry_auipc_jalr", double(s.entry_auipc_jalr)},
              {"entry_trap", double(s.entry_trap)},
              // relocated-branch forms after relaxation
              {"branch_c2", double(r.branch_c2)},
              {"branch_near", double(r.branch_near)},
              {"branch_long", double(r.branch_long)},
              {"jump_c2", double(r.jump_c2)},
              {"jump_near", double(r.jump_near)},
              {"relax_iterations", double(r.relax_iterations)},
              // RVC re-compression effect on the relocated image
              {"bytes_before_rvc", double(r.bytes_before_rvc)},
              {"bytes_after_rvc", double(r.bytes_after_rvc)},
              {"rvc_recompressed", double(r.rvc_recompressed)},
              {"relocated_functions", double(s.relocated_functions)},
              {"snippet_insns", double(s.snippet_insns)}});
  }
  if (!json.write()) {
    std::fprintf(stderr, "failed to write BENCH_patch.json\n");
    return 1;
  }
  std::printf("wrote BENCH_patch.json\n");
  return 0;
}
