// A6 — the C extension's code-size benefit (paper §3.1.2): the assembler's
// auto-compression pass measured per workload, plus what fraction of
// instructions compress (the paper's motivation for why RVC complicates
// patching: most sites are 2 bytes wide).
#include "assembler/assembler.hpp"
#include "isa/decoder.hpp"
#include "workloads/workloads.hpp"

#include <cstdio>
#include <string>
#include <vector>

using namespace rvdyn;

namespace {

struct Sizes {
  std::size_t bytes = 0;
  std::uint64_t insns = 0;
  std::uint64_t compressed = 0;
};

Sizes measure(const std::string& src, bool rvc) {
  assembler::Options opts;
  if (!rvc) opts.extensions = isa::ExtensionSet::rv64g();
  const auto bin = assembler::assemble(src, opts);
  Sizes out;
  isa::Decoder dec(opts.extensions);
  for (const auto& s : bin.sections()) {
    if (!s.is_code()) continue;
    out.bytes += s.data.size();
    std::size_t off = 0;
    isa::Instruction insn;
    while (off < s.data.size()) {
      const unsigned len =
          dec.decode(s.data.data() + off, s.data.size() - off, &insn);
      if (len == 0) break;
      ++out.insns;
      if (len == 2) ++out.compressed;
      off += len;
    }
  }
  return out;
}

}  // namespace

int main() {
  struct Workload {
    const char* name;
    std::string src;
  };
  const Workload workloads[] = {
      {"matmul 100x100", workloads::matmul_program(100, 1)},
      {"call churn", workloads::call_churn_program(1000)},
      {"fib", workloads::fib_program(20)},
      {"jump-table dispatch", workloads::dispatch_program(100)},
      {"many-function (500)", workloads::many_function_program(500)},
  };

  std::printf("%-22s %10s %10s %9s %14s\n", "workload", "rv64g (B)",
              "rv64gc (B)", "saved", "2-byte insns");
  for (const auto& w : workloads) {
    const Sizes g = measure(w.src, false);
    const Sizes gc = measure(w.src, true);
    std::printf("%-22s %10zu %10zu %8.1f%% %13.1f%%\n", w.name, g.bytes,
                gc.bytes,
                100.0 * (1.0 - static_cast<double>(gc.bytes) /
                                   static_cast<double>(g.bytes)),
                100.0 * static_cast<double>(gc.compressed) /
                    static_cast<double>(gc.insns));
  }
  std::printf(
      "\nexpected: ~20-30%% code-size savings with RVC; a large share of\n"
      "instructions being 2 bytes is exactly why the patcher's c.j/jal\n"
      "springboard budget logic (§3.1.2) exists.\n");
  return 0;
}
