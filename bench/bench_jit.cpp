// JIT tier benchmark: interpreter vs. compiled-code throughput on the hot-
// loop workloads, plus the tier's own economics — compile latency, chain
// hit rate (block-to-block transfers that stayed inside a session), jalr
// dispatch hit rate, and eviction counts. Writes BENCH_jit.json.
//
// Hand-rolled timing (steady_clock around Machine::run) rather than
// google-benchmark: each entry is one pair of long deterministic runs and
// the quantity of interest is the ratio, not nanosecond noise.
// Observability flags (kept out of the timed runs so they cannot skew the
// committed numbers):
//   --flamegraph <path>  extra sampled JIT run per workload, merged folded
//                        stacks written to <path>
//   --postmortem         print an obs::postmortem_report of the final
//                        machine state of the last extra run
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "assembler/assembler.hpp"
#include "bench_util.hpp"
#include "emu/machine.hpp"
#include "obs/postmortem.hpp"
#include "obs/sampler.hpp"
#include "parse/cfg.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

namespace {

struct Timed {
  double seconds = 0;
  std::uint64_t instret = 0;
  emu::Machine m;  // kept alive so stats can be read after the run

  Timed(const symtab::Symtab& bin, bool jit) {
#if RVDYN_JIT_ENABLED
    m.set_jit_enabled(jit);
#else
    (void)jit;
#endif
    m.load(bin);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = m.run(4'000'000'000ULL);
    const auto t1 = std::chrono::steady_clock::now();
    if (r != emu::StopReason::Exited) {
      std::fprintf(stderr, "workload did not exit (stop=%d)\n",
                   static_cast<int>(r));
      std::exit(1);
    }
    seconds = std::chrono::duration<double>(t1 - t0).count();
    instret = m.instret();
  }

  double ips() const { return seconds > 0 ? instret / seconds : 0; }
};

}  // namespace

int main(int argc, char** argv) {
  std::string flame_path;
  bool postmortem = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--flamegraph" && i + 1 < argc) {
      flame_path = argv[++i];
    } else if (a == "--postmortem") {
      postmortem = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--flamegraph <path>] [--postmortem]\n", argv[0]);
      return 2;
    }
  }

  const struct {
    const char* name;
    std::string src;
  } workloads[] = {
      {"matmul", workloads::matmul_program(48, 2)},
      {"sort", workloads::sort_program(1500)},
      {"fib", workloads::fib_program(27)},
      {"dispatch", workloads::dispatch_program(200000)},
      {"call_churn", workloads::call_churn_program(300000)},
  };

  bench::JsonWriter out("BENCH_jit.json");
  std::printf("%-12s %12s %12s %7s %9s %8s %8s\n", "workload", "interp_ips",
              "jit_ips", "speedup", "jit_cover", "chain%", "disp%");
  for (const auto& w : workloads) {
    const auto bin = assembler::assemble(w.src);
    Timed interp(bin, /*jit=*/false);
    Timed jit(bin, /*jit=*/true);
    if (interp.instret != jit.instret) {
      std::fprintf(stderr, "%s: instret mismatch interp=%llu jit=%llu\n",
                   w.name, static_cast<unsigned long long>(interp.instret),
                   static_cast<unsigned long long>(jit.instret));
      return 1;
    }
    std::vector<std::pair<std::string, double>> metrics = {
        {"interp_insns_per_s", interp.ips()},
        {"jit_insns_per_s", jit.ips()},
        {"speedup", interp.seconds > 0 ? interp.seconds / jit.seconds : 0},
        {"insns", static_cast<double>(interp.instret)},
    };
    double jit_cover = 0, chain_rate = 0, disp_rate = 0;
#if RVDYN_JIT_ENABLED
    const emu::jit::Stats s = jit.m.jit_stats();
    jit_cover = jit.instret ? static_cast<double>(s.insns_retired) /
                                  static_cast<double>(jit.instret)
                            : 0;
    // Of all compiled-block entries, how many arrived via an in-session
    // transfer (chained edge or dispatch hit) rather than a fresh session?
    chain_rate = s.blocks_entered
                     ? static_cast<double>(s.blocks_entered - s.sessions) /
                           static_cast<double>(s.blocks_entered)
                     : 0;
    const double disp_total =
        static_cast<double>(s.dispatch_hits + s.exit_dispatch);
    disp_rate = disp_total > 0 ? s.dispatch_hits / disp_total : 0;
    metrics.insert(
        metrics.end(),
        {
            {"jit_coverage", jit_cover},
            {"blocks_compiled", static_cast<double>(s.blocks_compiled)},
            {"insns_compiled", static_cast<double>(s.insns_compiled)},
            {"compile_ms_total", s.compile_ns / 1e6},
            {"compile_us_per_block",
             s.blocks_compiled ? s.compile_ns / 1e3 / s.blocks_compiled : 0},
            {"code_bytes", static_cast<double>(s.code_bytes)},
            {"chain_hit_rate", chain_rate},
            {"dispatch_hit_rate", disp_rate},
            {"chains_installed", static_cast<double>(s.chains_installed)},
            {"evict_write_code", static_cast<double>(s.evict_write_code)},
            {"evict_fencei", static_cast<double>(s.evict_fencei)},
            {"evict_capacity", static_cast<double>(s.evict_capacity)},
            {"evict_config", static_cast<double>(s.evict_config)},
        });
    if (jit.m.jit_tier())
      metrics.push_back({"backend_x64",
                         std::string(jit.m.jit_tier()->backend_name()) == "x64"
                             ? 1.0
                             : 0.0});
#endif
    out.add(w.name, metrics);
    std::printf("%-12s %12.3g %12.3g %6.2fx %8.1f%% %7.1f%% %7.1f%%\n",
                w.name, interp.ips(), jit.ips(),
                interp.seconds > 0 ? interp.seconds / jit.seconds : 0,
                100 * jit_cover, 100 * chain_rate, 100 * disp_rate);
  }
  if (!out.write()) {
    std::fprintf(stderr, "failed to write BENCH_jit.json\n");
    return 1;
  }

  // Optional observability pass: separate sampled JIT runs so the timed
  // numbers above stay clean.
  if (!flame_path.empty() || postmortem) {
    obs::FoldedStacks merged;
    for (const auto& w : workloads) {
      const auto bin = assembler::assemble(w.src);
      parse::CodeObject co(bin);
      co.parse();
      emu::Machine m;
#if RVDYN_JIT_ENABLED
      m.set_jit_enabled(true);
#endif
      m.load(bin);
      if (postmortem) m.enable_block_trace(true);
      obs::Sampler sampler(m, co);
      const auto r = m.run(4'000'000'000ULL);
      sampler.detach();
      if (r != emu::StopReason::Exited) {
        std::fprintf(stderr, "%s: sampled run did not exit (stop=%d)\n",
                     w.name, static_cast<int>(r));
        return 1;
      }
      // Prefix every stack with the workload name so the merged graph has
      // one root per workload.
      obs::FoldedStacks prefixed;
      const std::string folded = sampler.folded();
      std::size_t pos = 0;
      while (pos < folded.size()) {
        const std::size_t eol = folded.find('\n', pos);
        const std::string line = folded.substr(pos, eol - pos);
        pos = eol == std::string::npos ? folded.size() : eol + 1;
        const std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos) continue;
        prefixed.add_folded(std::string(w.name) + ";" + line.substr(0, sp),
                            std::strtoull(line.c_str() + sp + 1, nullptr, 10));
      }
      merged.merge(prefixed);
      std::printf("%-12s sampled: %llu samples, %llu in JIT code\n", w.name,
                  static_cast<unsigned long long>(sampler.samples()),
                  static_cast<unsigned long long>(sampler.jit_samples()));
      if (postmortem && std::string(w.name) == "call_churn")
        std::printf("\n%s\n",
                    obs::postmortem_report(m, co, r).c_str());
    }
    if (!flame_path.empty()) {
      if (!merged.write_folded(flame_path)) {
        std::fprintf(stderr, "failed to write %s\n", flame_path.c_str());
        return 1;
      }
      std::printf("folded stacks written to %s\n", flame_path.c_str());
    }
  }
  return 0;
}
