// Emulator (hardware substrate) microbenchmarks: interpreter throughput on
// integer and FP-heavy code, decode-cache effectiveness, and the cost the
// instrumentation adds per executed snippet.
#include <benchmark/benchmark.h>

#include "assembler/assembler.hpp"
#include "bench_util.hpp"
#include "codegen/snippet.hpp"
#include "emu/machine.hpp"
#include "patch/editor.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

namespace {

void BM_EmulateMatmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto bin = assembler::assemble(workloads::matmul_program(n, 1));
  std::uint64_t insns = 0;
  for (auto _ : state) {
    emu::Machine m;
    m.load(bin);
    benchmark::DoNotOptimize(m.run(1'000'000'000ULL));
    insns += m.instret();
  }
  state.counters["insns/s"] = benchmark::Counter(
      static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulateMatmul)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_EmulateCallChurn(benchmark::State& state) {
  const auto bin = assembler::assemble(workloads::call_churn_program(5000));
  std::uint64_t insns = 0;
  for (auto _ : state) {
    emu::Machine m;
    m.load(bin);
    benchmark::DoNotOptimize(m.run(1'000'000'000ULL));
    insns += m.instret();
  }
  state.counters["insns/s"] = benchmark::Counter(
      static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulateCallChurn)->Unit(benchmark::kMillisecond);

void BM_EmulateInstrumented(benchmark::State& state) {
  const bool instrumented = state.range(0) != 0;
  const auto bin = assembler::assemble(workloads::matmul_program(16, 1));
  symtab::Symtab target = bin;
  if (instrumented) {
    patch::BinaryEditor editor(bin);
    const auto c = editor.alloc_var("c");
    editor.insert_at(editor.code().function_named("matmul")->entry(),
                     patch::PointType::BlockEntry, codegen::increment(c));
    target = editor.commit();
  }
  for (auto _ : state) {
    emu::Machine m;
    m.load(target);
    benchmark::DoNotOptimize(m.run(1'000'000'000ULL));
  }
}
BENCHMARK(BM_EmulateInstrumented)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"instrumented"})
    ->Unit(benchmark::kMillisecond);

void BM_RewriteLatency(benchmark::State& state) {
  // Tool-side cost: parse + instrument + commit for a mid-sized binary.
  const auto bin =
      assembler::assemble(workloads::many_function_program(200));
  for (auto _ : state) {
    patch::BinaryEditor editor(bin);
    const auto c = editor.alloc_var("c");
    for (const auto& [entry, f] : editor.code().functions())
      editor.insert_at(entry, patch::PointType::FuncEntry,
                       codegen::increment(c));
    benchmark::DoNotOptimize(editor.commit());
  }
}
BENCHMARK(BM_RewriteLatency)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return rvdyn::bench::run_benchmarks_with_json(argc, argv,
                                                "BENCH_emulator.json");
}
