// End-to-end observability: run the full assemble → parse → instrument →
// execute pipeline with tracing on and check that (a) the Chrome trace
// contains the expected spans and (b) the metrics registry saw real traffic
// from every layer's hot path.
#include <gtest/gtest.h>

#include <string>

#include "assembler/assembler.hpp"
#include "codegen/snippet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "patch/editor.hpp"
#include "proccontrol/process.hpp"
#include "workloads/workloads.hpp"

namespace rvdyn {
namespace {

TEST(ObsPipeline, TraceAndMetricsCoverTheWholeStack) {
  obs::TraceSink& sink = obs::TraceSink::instance();
  sink.clear();
  sink.set_enabled(true);

  const symtab::Symtab bin =
      assembler::assemble(workloads::matmul_program(8, 2), {});

  patch::BinaryEditor editor(bin);
  const auto counter = editor.alloc_var("entries");
  const auto* f = editor.code().function_named("matmul");
  ASSERT_NE(f, nullptr);
  editor.insert_at(f->entry(), patch::PointType::FuncEntry,
                   codegen::increment(counter));
  const symtab::Symtab rewritten = editor.commit();

  auto proc = proccontrol::Process::launch(rewritten);
  proc->install_trap_table(editor.trap_table());
  const auto ev = proc->continue_run();
  ASSERT_EQ(ev.kind, proccontrol::Event::Kind::Exited);
  EXPECT_EQ(proc->read_mem(counter.addr, 8), 2u);

  proc->machine().publish_metrics();
  sink.set_enabled(false);

#if RVDYN_OBS_ENABLED
  // The timeline covers every pipeline stage.
  const std::string json = sink.chrome_json();
  EXPECT_NE(json.find("rvdyn.asm.assemble"), std::string::npos);
  EXPECT_NE(json.find("rvdyn.parse"), std::string::npos);
  EXPECT_NE(json.find("rvdyn.patch.commit"), std::string::npos);
  EXPECT_NE(json.find("rvdyn.emu.load"), std::string::npos);
  EXPECT_NE(json.find("rvdyn.proc.continue_run"), std::string::npos);
  EXPECT_NE(json.find("rvdyn.emu.run"), std::string::npos);

  // Hot-path counters from each layer saw real traffic.
  obs::Registry& r = obs::Registry::instance();
  EXPECT_GT(r.value("rvdyn.isa.decode32.fast"), 0u);
  EXPECT_GT(r.value("rvdyn.emu.icache.hit"), 0u);
  EXPECT_GT(r.value("rvdyn.emu.bcache.hit"), 0u);
  EXPECT_GT(r.value("rvdyn.parse.functions"), 0u);
  EXPECT_GT(r.value("rvdyn.parse.blocks"), 0u);
  EXPECT_GT(r.value("rvdyn.patch.snippets_inserted"), 0u);
  EXPECT_GT(r.value("rvdyn.patch.relocated_functions"), 0u);

  // The snapshot renders to JSON with the namespaces present.
  const std::string metrics = r.to_json();
  EXPECT_NE(metrics.find("rvdyn.isa."), std::string::npos);
  EXPECT_NE(metrics.find("rvdyn.emu."), std::string::npos);
  EXPECT_NE(metrics.find("rvdyn.parse."), std::string::npos);
  EXPECT_NE(metrics.find("rvdyn.patch."), std::string::npos);
#endif
}

TEST(ObsPipeline, HwCounterFileMatchesArchitecturalState) {
  const symtab::Symtab bin =
      assembler::assemble(workloads::fib_program(10), {});
  auto proc = proccontrol::Process::launch(bin);
  const auto ev = proc->continue_run();
  ASSERT_EQ(ev.kind, proccontrol::Event::Kind::Exited);

  const auto hw = proc->hw_counters();
  EXPECT_EQ(hw.instret, proc->machine().instret());
  EXPECT_EQ(hw.cycles, proc->machine().cycles());
  EXPECT_GT(hw.instret, 0u);
#if RVDYN_OBS_ENABLED
  // Cache counters mirror cache_stats() (zero in OFF builds).
  EXPECT_EQ(hw.bcache_hits, proc->machine().cache_stats().bcache_hits);
  EXPECT_GT(hw.blocks_entered, 0u);
#endif
}

}  // namespace
}  // namespace rvdyn
