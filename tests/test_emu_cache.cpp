// Decoded-code cache semantics: the direct-mapped predecode cache and the
// basic-block cache must be invisible except for speed. Covers the
// page-tail fetch fix (a compressed instruction in the last two mapped
// bytes must execute without touching the next page), write_code and
// guest fence.i invalidation, and run()-vs-step() equivalence.
#include <gtest/gtest.h>

#include <vector>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;
using emu::Machine;
using emu::StopReason;

void put32(Machine& m, std::uint64_t addr, std::uint32_t word) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(word >> (8 * i));
  m.write_code(addr, b, 4);
}

void put16(Machine& m, std::uint64_t addr, std::uint16_t half) {
  std::uint8_t b[2] = {static_cast<std::uint8_t>(half),
                       static_cast<std::uint8_t>(half >> 8)};
  m.write_code(addr, b, 2);
}

// A compressed instruction occupying the last two mapped bytes of the
// address space must fetch with a 2-byte read; the old unconditional
// 4-byte fetch either faulted or silently mapped the next page.
TEST(EmuCache, CompressedInsnAtPageTail) {
  Machine m;
  const std::uint64_t tail = 0x1ffe;  // last halfword of page [0x1000,0x2000)
  put16(m, tail, 0x0505);             // c.addi a0, 1
  ASSERT_FALSE(m.memory().is_mapped(0x2000));

  m.set_pc(tail);
  m.set_x(10, 41);
  EXPECT_EQ(m.step(), StopReason::Running);
  EXPECT_EQ(m.get_x(10), 42u);
  EXPECT_EQ(m.pc(), 0x2000u);
  // Executing past the end now faults cleanly...
  EXPECT_EQ(m.step(), StopReason::BadFetch);
  // ...and the fetch path never allocated the next page as a side effect.
  EXPECT_FALSE(m.memory().is_mapped(0x2000));

  // Cached path: re-executing the page-tail instruction hits the icache.
  m.set_pc(tail);
  EXPECT_EQ(m.step(), StopReason::Running);
  EXPECT_EQ(m.get_x(10), 43u);
  EXPECT_FALSE(m.memory().is_mapped(0x2000));
}

// A 32-bit encoding whose upper parcel is unmapped is a clean illegal
// instruction at a mapped pc, without allocating the next page.
TEST(EmuCache, TruncatedWideInsnAtPageTail) {
  Machine m;
  const std::uint64_t tail = 0x1ffe;
  put16(m, tail, 0x0513);  // low parcel of addi a0,... ((bits&3)==3 → 32-bit)
  m.set_pc(tail);
  EXPECT_EQ(m.step(), StopReason::IllegalInsn);
  EXPECT_FALSE(m.memory().is_mapped(0x2000));

  // Mapping the next page afterwards completes the encoding: the truncated
  // failure must not have been cached.
  put16(m, 0x2000, 0x0015);  // addi a0, a0, 0x150... upper parcel 0x00150513
  // Rewrite both halves so the full word is addi a0, a0, 1.
  put32(m, tail, 0x00150513);
  m.set_pc(tail);
  m.set_x(10, 7);
  EXPECT_EQ(m.step(), StopReason::Running);
  EXPECT_EQ(m.get_x(10), 8u);
}

// write_code on bytes already executed through run() must evict both the
// predecode cache and the block cache.
TEST(EmuCache, WriteCodeEvictsCachedBlocks) {
  Machine m;
  put32(m, 0x1000, 0x00150513);  // addi a0, a0, 1
  put32(m, 0x1004, 0x00150513);  // addi a0, a0, 1
  put32(m, 0x1008, 0x00100073);  // ebreak
  m.set_pc(0x1000);
  m.set_x(10, 0);
  EXPECT_EQ(m.run(), StopReason::Breakpoint);
  EXPECT_EQ(m.get_x(10), 2u);
  EXPECT_EQ(m.pc(), 0x1008u);

  // Patch the second instruction; rerunning must see the new bytes.
  put32(m, 0x1004, 0x00250513);  // addi a0, a0, 2
  m.set_pc(0x1000);
  m.set_x(10, 0);
  EXPECT_EQ(m.run(), StopReason::Breakpoint);
  EXPECT_EQ(m.get_x(10), 3u);

  // Same check through the single-step (icache-only) path.
  put32(m, 0x1004, 0x00350513);  // addi a0, a0, 3
  m.set_pc(0x1000);
  m.set_x(10, 0);
  EXPECT_EQ(m.step(), StopReason::Running);
  EXPECT_EQ(m.step(), StopReason::Running);
  EXPECT_EQ(m.get_x(10), 4u);
}

// Guest self-modifying code: a store over executed instructions followed by
// fence.i must flush both caches; without fence.i the stale decode is (by
// design) still served.
TEST(EmuCache, FenceIFlushesAfterSelfModify) {
  for (const bool with_fence : {false, true}) {
    Machine m;
    // probe: addi a0, a0, 1; ret
    put32(m, 0x1040, 0x00150513);
    put32(m, 0x1044, 0x00008067);
    // main: call probe; build 0x00250513 (addi a0,a0,2) in t1; store it over
    // probe's first insn; [fence.i]; call probe; ebreak
    put32(m, 0x1000, 0x040000ef);  // jal ra, +0x40 -> 0x1040
    put32(m, 0x1004, 0x00250337);  // lui t1, 0x250
    put32(m, 0x1008, 0x51330313);  // addi t1, t1, 0x513
    put32(m, 0x100c, 0x000012b7);  // lui t0, 0x1
    put32(m, 0x1010, 0x04028293);  // addi t0, t0, 0x40 -> t0 = 0x1040
    put32(m, 0x1014, 0x0062a023);  // sw t1, 0(t0)
    put32(m, 0x1018, with_fence ? 0x0000100f    // fence.i
                                : 0x00000013);  // nop
    put32(m, 0x101c, 0x024000ef);  // jal ra, +0x24 -> 0x1040
    put32(m, 0x1020, 0x00100073);  // ebreak
    m.set_pc(0x1000);
    m.set_x(10, 0);
    EXPECT_EQ(m.run(), StopReason::Breakpoint);
    EXPECT_EQ(m.pc(), 0x1020u);
    // With fence.i the second call sees the patched +2; without it the
    // cached decode of the original +1 is reused (plain guest stores do not
    // invalidate — matching real hardware and the previous implementation).
    EXPECT_EQ(m.get_x(10), with_fence ? 3u : 2u) << "fence=" << with_fence;
  }
}

// Block-cached execution must be observationally identical to pure
// single-stepping: same architectural state, counters, and stop reason.
TEST(EmuCache, RunMatchesStepExactly) {
  const auto bin = assembler::assemble(workloads::fib_program(15));
  Machine run_m, step_m;
  run_m.load(bin);
  step_m.load(bin);

  EXPECT_EQ(run_m.run(), StopReason::Exited);
  StopReason r = StopReason::Running;
  while (r == StopReason::Running) r = step_m.step();
  EXPECT_EQ(r, StopReason::Exited);

  EXPECT_EQ(run_m.instret(), step_m.instret());
  EXPECT_EQ(run_m.cycles(), step_m.cycles());
  EXPECT_EQ(run_m.pc(), step_m.pc());
  EXPECT_EQ(run_m.exit_code(), step_m.exit_code());
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(run_m.get_x(i), step_m.get_x(i)) << "x" << i;
    EXPECT_EQ(run_m.get_f(i), step_m.get_f(i)) << "f" << i;
  }

  // Budgeted run() must account instructions exactly, even when the budget
  // expires mid-block.
  Machine budget_m;
  budget_m.load(bin);
  std::uint64_t total = 0;
  StopReason br = StopReason::Running;
  while (br == StopReason::Running) {
    const std::uint64_t before = budget_m.instret();
    br = budget_m.run(37);  // deliberately not a multiple of any block size
    const std::uint64_t done = budget_m.instret() - before;
    EXPECT_LE(done, 37u);
    total += done;
  }
  EXPECT_EQ(br, StopReason::Exited);
  EXPECT_EQ(total, run_m.instret());
}

#if RVDYN_OBS_ENABLED
// Evictions must be charged to their actual cause: debugger patching
// (write_code), guest self-modification (fence.i), and capacity pressure
// are distinct counters, so none of them silently inflates another.
TEST(EmuCache, EvictionAccounting) {
  // (a) write_code over an executed block: a precise write_code eviction,
  // not a fence.i or capacity one.
  {
    Machine m;
    put32(m, 0x1000, 0x00150513);  // addi a0, a0, 1
    put32(m, 0x1004, 0x00100073);  // ebreak
    m.set_pc(0x1000);
    EXPECT_EQ(m.run(), StopReason::Breakpoint);
    EXPECT_EQ(m.cache_stats().evict_write_code, 0u);
    put32(m, 0x1000, 0x00250513);  // patch the cached block
    EXPECT_GE(m.cache_stats().evict_write_code, 1u);
    EXPECT_EQ(m.cache_stats().evict_fencei, 0u);
    EXPECT_EQ(m.cache_stats().evict_capacity, 0u);
    EXPECT_EQ(m.cache_stats().fencei_flushes, 0u);
  }

  // (b) guest fence.i inside a cached block: the deferred full flush is
  // charged to fence.i, not to write_code.
  {
    Machine m;
    put32(m, 0x1040, 0x00150513);  // probe: addi a0, a0, 1
    put32(m, 0x1044, 0x00008067);  //        ret
    put32(m, 0x1000, 0x040000ef);  // jal ra, probe
    put32(m, 0x1004, 0x00250337);  // lui t1, 0x250
    put32(m, 0x1008, 0x51330313);  // addi t1, t1, 0x513
    put32(m, 0x100c, 0x000012b7);  // lui t0, 0x1
    put32(m, 0x1010, 0x04028293);  // addi t0, t0, 0x40
    put32(m, 0x1014, 0x0062a023);  // sw t1, 0(t0)
    put32(m, 0x1018, 0x0000100f);  // fence.i
    put32(m, 0x101c, 0x024000ef);  // jal ra, probe
    put32(m, 0x1020, 0x00100073);  // ebreak
    m.set_pc(0x1000);
    m.set_x(10, 0);
    EXPECT_EQ(m.run(), StopReason::Breakpoint);
    EXPECT_EQ(m.get_x(10), 3u);  // the patched +2 was observed
    EXPECT_EQ(m.cache_stats().fencei_flushes, 1u);
    EXPECT_GE(m.cache_stats().evict_fencei, 1u);
    // The pre-run put32 calls hit an empty cache; the flush must not have
    // been misattributed to them.
    EXPECT_EQ(m.cache_stats().evict_write_code, 0u);
    EXPECT_EQ(m.cache_stats().evict_capacity, 0u);
  }

  // (c) capacity pressure: more distinct single-jal blocks than the cache
  // bound forces a capacity clear, charged to neither patching cause.
  {
    Machine m;
    constexpr std::size_t kBlocks = 17000;  // > kMaxBlocks (16384)
    std::vector<std::uint8_t> code;
    code.reserve(kBlocks * 4 + 4);
    for (std::size_t i = 0; i < kBlocks; ++i) {
      const std::uint32_t jal = 0x0040006f;  // jal x0, +4
      for (int b = 0; b < 4; ++b)
        code.push_back(static_cast<std::uint8_t>(jal >> (8 * b)));
    }
    const std::uint32_t ebreak = 0x00100073;
    for (int b = 0; b < 4; ++b)
      code.push_back(static_cast<std::uint8_t>(ebreak >> (8 * b)));
    m.write_code(0x10000, code.data(), code.size());
    m.set_pc(0x10000);
    EXPECT_EQ(m.run(), StopReason::Breakpoint);
    EXPECT_GE(m.cache_stats().evict_capacity, 16384u);
    EXPECT_EQ(m.cache_stats().evict_write_code, 0u);
    EXPECT_EQ(m.cache_stats().evict_fencei, 0u);
  }
}
#endif  // RVDYN_OBS_ENABLED

// A watchpoint must fire mid-block with pc positioned exactly as in
// single-step mode (after the accessing store, before the next insn).
TEST(EmuCache, WatchpointFiresInsideCachedBlock) {
  for (const bool use_run : {false, true}) {
    Machine m;
    put32(m, 0x1000, 0x00150513);  // addi a0, a0, 1
    put32(m, 0x1004, 0x000032b7);  // lui t0, 0x3
    put32(m, 0x1008, 0x00a2b023);  // sd a0, 0(t0)     <- watched
    put32(m, 0x100c, 0x00150513);  // addi a0, a0, 1   (must NOT retire)
    put32(m, 0x1010, 0x00100073);  // ebreak
    m.set_watchpoint(0x3000, 8, false, true);
    m.set_pc(0x1000);
    m.set_x(10, 0);
    StopReason r = StopReason::Running;
    if (use_run) {
      r = m.run();
    } else {
      while (r == StopReason::Running && m.pc() != 0x1010) r = m.step();
    }
    EXPECT_EQ(r, StopReason::Watchpoint) << "use_run=" << use_run;
    EXPECT_EQ(m.pc(), 0x100cu);
    EXPECT_EQ(m.get_x(10), 1u);
    EXPECT_EQ(m.watch_hit().addr, 0x3000u);
    EXPECT_TRUE(m.watch_hit().was_write);
  }
}

}  // namespace
