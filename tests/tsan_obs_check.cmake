# Builds the tree once with -DRVDYN_SANITIZE=thread and runs the obs
# suite: the metrics registry's lock-free sharded counters, the trace
# sink's wait-free ring, and the sampler/export/postmortem layers on top.
# Any data race in a hook that fires from concurrent tool threads is a
# correctness bug in the observability layer's core promise. Run via
#   cmake -P tests/tsan_obs_check.cmake
# (registered as the `tsan_obs_suite` ctest from non-sanitized builds).
#
# Variables (all optional, -D before -P):
#   SOURCE_DIR  repo root (default: parent of this script)
#   BINARY_DIR  nested build dir (default: ${SOURCE_DIR}/build-tsan-obs)
#   JOBS        parallel build jobs (default: 4)

if(NOT SOURCE_DIR)
  get_filename_component(SOURCE_DIR ${CMAKE_CURRENT_LIST_DIR} DIRECTORY)
endif()
if(NOT BINARY_DIR)
  set(BINARY_DIR ${SOURCE_DIR}/build-tsan-obs)
endif()
if(NOT JOBS)
  set(JOBS 4)
endif()

message(STATUS
  "tsan-obs check: configuring ${BINARY_DIR} with -DRVDYN_SANITIZE=thread")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DRVDYN_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan-obs check: configure failed")
endif()

# Every binary carrying the obs_suite label in the main build.
set(targets
  test_obs
  test_obs_export
  test_obs_pipeline
  test_obs_postmortem
  test_obs_profiler
  test_obs_sampler)

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR} -j ${JOBS} --target ${targets}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan-obs check: build failed with RVDYN_SANITIZE=thread")
endif()

foreach(t ${targets})
  message(STATUS "tsan-obs check: running ${t}")
  execute_process(
    COMMAND ${BINARY_DIR}/tests/${t}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "tsan-obs check: ${t} reported races or failures")
  endif()
endforeach()

message(STATUS "tsan-obs check: obs suite clean under ThreadSanitizer")
