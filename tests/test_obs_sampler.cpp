// Sampling-profiler tests: the two properties the tentpole promises.
//
//  1. Determinism. Samples fire at exact retired-instruction boundaries,
//     so the folded-stacks output is a pure function of (binary, interval)
//     — byte-identical across repeated runs AND with the JIT tier on or
//     off. This is the profiler analogue of the check/ lockstep oracles.
//
//  2. Agreement with ground truth. The sampled per-function self shares
//     must match the exact instruction-weighted shares from the
//     instrumentation-based BlockProfiler: identical top-5 hot ranking and
//     per-function share within 2 percentage points, on every workload the
//     paper's perf-tool use case cares about (matmul, sort, call churn),
//     with the JIT engaged on the sampled side.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "parse/cfg.hpp"
#include "proccontrol/process.hpp"
#include "workloads/workloads.hpp"

namespace rvdyn {
namespace {

struct SampledRun {
  std::string folded;
  std::uint64_t samples = 0;
  std::uint64_t jit_samples = 0;
  std::vector<obs::FoldedStacks::FuncTotal> hot;
  std::uint64_t total_weight = 0;
};

SampledRun sampled_run(const symtab::Symtab& bin, bool jit,
                       std::uint64_t interval) {
  parse::CodeObject co(bin);
  co.parse();
  emu::Machine m;
#if RVDYN_JIT_ENABLED
  m.set_jit_enabled(jit);
#else
  (void)jit;
#endif
  m.load(bin);
  obs::SamplerOptions opts;
  opts.interval = interval;
  obs::Sampler sampler(m, co, opts);
  EXPECT_EQ(m.run(2'000'000'000ULL), emu::StopReason::Exited);
  sampler.detach();
  return {sampler.folded(), sampler.samples(), sampler.jit_samples(),
          sampler.hot_table(), sampler.stacks().total_weight()};
}

/// Exact per-function instruction-share ground truth from the
/// instrumentation-based BlockProfiler: block entries × static block size.
std::map<std::string, double> exact_shares(const symtab::Symtab& bin) {
  obs::BlockProfiler profiler(bin);
  auto proc = proccontrol::Process::launch(profiler.rewritten());
  proc->install_trap_table(profiler.trap_table());
  EXPECT_EQ(proc->continue_run().kind, proccontrol::Event::Kind::Exited);
  std::map<std::string, double> weight;
  double total = 0;
  for (const auto& hb : profiler.counts(proc->machine())) {
    const double w =
        static_cast<double>(hb.count) * static_cast<double>(hb.n_insns);
    weight[hb.func] += w;
    total += w;
  }
  EXPECT_GT(total, 0);
  for (auto& [name, w] : weight) w /= total;
  return weight;
}

std::vector<std::string> top_n(const std::map<std::string, double>& shares,
                               std::size_t n) {
  std::vector<std::pair<double, std::string>> order;
  for (const auto& [name, share] : shares) order.push_back({-share, name});
  std::sort(order.begin(), order.end());
  std::vector<std::string> out;
  for (std::size_t i = 0; i < order.size() && i < n; ++i)
    out.push_back(order[i].second);
  return out;
}

void expect_sampled_matches_exact(const std::string& src,
                                  std::uint64_t interval) {
  const auto bin = assembler::assemble(src);
  const auto exact = exact_shares(bin);
  const auto run = sampled_run(bin, /*jit=*/true, interval);
#if !RVDYN_OBS_ENABLED
  // Hooks compiled out: nothing to compare, but nothing must crash either.
  EXPECT_EQ(run.samples, 0u);
  return;
#endif
  ASSERT_GT(run.samples, 100u) << "too few samples to compare shares";

  std::map<std::string, double> sampled;
  for (const auto& ft : run.hot)
    sampled[ft.name] =
        static_cast<double>(ft.self) / static_cast<double>(run.total_weight);

  // Identical top-5 hot ranking (both sides are deterministic, so strict
  // order comparison is stable).
  EXPECT_EQ(top_n(exact, 5), top_n(sampled, 5));

  // Every function's share agrees within 2 percentage points, whichever
  // side it appears on.
  std::map<std::string, double> all = exact;
  for (const auto& [name, share] : sampled)
    all.emplace(name, 0.0);
  for (const auto& [name, unused] : all) {
    const auto e = exact.count(name) ? exact.at(name) : 0.0;
    const auto s = sampled.count(name) ? sampled.at(name) : 0.0;
    EXPECT_NEAR(e, s, 0.02) << "function " << name;
  }
}

TEST(Sampler, FoldedOutputIsByteIdenticalAcrossRunsAndTiers) {
  const auto bin = assembler::assemble(workloads::matmul_program(16, 3));
  const auto a = sampled_run(bin, /*jit=*/true, 4096);
  const auto b = sampled_run(bin, /*jit=*/true, 4096);
  const auto c = sampled_run(bin, /*jit=*/false, 4096);
  EXPECT_EQ(a.folded, b.folded);  // run-to-run
  EXPECT_EQ(a.folded, c.folded);  // JIT tier on vs. off
  EXPECT_EQ(a.samples, c.samples);
#if RVDYN_OBS_ENABLED
  EXPECT_GT(a.samples, 0u);
  EXPECT_FALSE(a.folded.empty());
#else
  EXPECT_EQ(a.samples, 0u);
#endif
}

TEST(Sampler, IntervalChangesSampleCountNotDeterminism) {
  const auto bin = assembler::assemble(workloads::fib_program(20));
  const auto coarse = sampled_run(bin, true, 8192);
  const auto fine = sampled_run(bin, true, 1024);
  const auto fine2 = sampled_run(bin, true, 1024);
  EXPECT_EQ(fine.folded, fine2.folded);
#if RVDYN_OBS_ENABLED
  EXPECT_GT(fine.samples, coarse.samples);
#endif
}

TEST(Sampler, DetachStopsSamplingAndKeepsProfile) {
  const auto bin = assembler::assemble(workloads::fib_program(20));
  parse::CodeObject co(bin);
  co.parse();
  emu::Machine m;
  m.load(bin);
  obs::SamplerOptions opts;
  opts.interval = 500;
  obs::Sampler sampler(m, co, opts);
  ASSERT_EQ(m.run(100000), emu::StopReason::Running);
  sampler.detach();
  const auto frozen = sampler.samples();
  EXPECT_EQ(m.run(2'000'000'000ULL), emu::StopReason::Exited);
  EXPECT_EQ(sampler.samples(), frozen);  // no samples while detached
  EXPECT_EQ(sampler.folded(), sampler.folded());
}

TEST(Sampler, LeafOnlyModeFoldsSingleFrames) {
  const auto bin = assembler::assemble(workloads::fib_program(18));
  parse::CodeObject co(bin);
  co.parse();
  emu::Machine m;
  m.load(bin);
  obs::SamplerOptions opts;
  opts.interval = 1000;
  opts.capture_stacks = false;
  obs::Sampler sampler(m, co, opts);
  EXPECT_EQ(m.run(2'000'000'000ULL), emu::StopReason::Exited);
#if RVDYN_OBS_ENABLED
  ASSERT_GT(sampler.samples(), 0u);
  // No ';' anywhere: every folded key is a single frame.
  EXPECT_EQ(sampler.folded().find(';'), std::string::npos);
#endif
}

// The interval is prime: a deterministic sampler whose period shares a
// factor with a loop's instruction count aliases — every sample lands on
// the same phase of the loop (call_churn's 32-insn iteration under a
// 256-insn interval attributes 100% to one pc). A prime interval is
// coprime to every loop period, so samples sweep all phases uniformly.
TEST(SamplerVsExact, Matmul) {
  expect_sampled_matches_exact(workloads::matmul_program(20, 2), 251);
}

TEST(SamplerVsExact, Sort) {
  expect_sampled_matches_exact(workloads::sort_program(600), 251);
}

TEST(SamplerVsExact, CallChurn) {
  expect_sampled_matches_exact(workloads::call_churn_program(20000), 251);
}

}  // namespace
}  // namespace rvdyn
