// DataflowAPI tests: register liveness (validated against the dead-register
// optimization's requirements), stack-height analysis, and slicing.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/slicing.hpp"
#include "dataflow/stack_height.hpp"
#include "parse/cfg.hpp"

namespace {

using namespace rvdyn;
using dataflow::Liveness;
using dataflow::Slicer;
using dataflow::StackHeightAnalysis;
using parse::Block;
using parse::CodeObject;
using parse::Function;

struct Parsed {
  symtab::Symtab st;
  std::unique_ptr<CodeObject> co;
};

Parsed parse_src(const std::string& src) {
  Parsed p{assembler::assemble(src), nullptr};
  p.co = std::make_unique<CodeObject>(p.st);
  p.co->parse();
  return p;
}

// ---- liveness ----

TEST(Liveness, UsedRegisterIsLive) {
  auto p = parse_src(R"(
    .globl f
f:
    add a0, a0, a1
    ret
)");
  Function* f = p.co->function_named("f");
  Liveness live(*f);
  const Block* b = f->entry_block();
  // Before the add, a0 and a1 are read: both live.
  const auto before = live.live_before(b, 0);
  EXPECT_TRUE(before.contains(isa::a0));
  EXPECT_TRUE(before.contains(isa::a1));
}

TEST(Liveness, OverwrittenRegisterIsDeadBefore) {
  auto p = parse_src(R"(
    .globl f
f:
    li t0, 5        # t0 defined here; its previous value is dead before
    add a0, a0, t0
    ret
)");
  Function* f = p.co->function_named("f");
  Liveness live(*f);
  const Block* b = f->entry_block();
  EXPECT_FALSE(live.live_before(b, 0).contains(isa::t0));
  EXPECT_TRUE(live.dead_before(b, 0).contains(isa::t0));
  // After the def (before the add) t0 is live.
  EXPECT_TRUE(live.live_before(b, 1).contains(isa::t0));
}

TEST(Liveness, LiveAcrossBranchJoin) {
  auto p = parse_src(R"(
    .globl f
f:
    li t1, 7
    beqz a0, skip
    nop
skip:
    add a0, a0, t1   # t1 used on both paths' join
    ret
)");
  Function* f = p.co->function_named("f");
  Liveness live(*f);
  const Block* entry = f->entry_block();
  // t1 is live at the branch (index of beqz = 1).
  EXPECT_TRUE(live.live_before(entry, 1).contains(isa::t1));
}

TEST(Liveness, DeadAfterLastUse) {
  auto p = parse_src(R"(
    .globl f
f:
    add a0, a0, t1
    li t1, 0          # kills t1 (old value dead between the two)
    add a0, a0, t1
    ret
)");
  Function* f = p.co->function_named("f");
  Liveness live(*f);
  const Block* b = f->entry_block();
  // Between insn 0 and insn 1, the incoming t1 value is dead.
  EXPECT_TRUE(live.dead_before(b, 1).contains(isa::t1));
}

TEST(Liveness, CalleeSavedLiveAtReturn) {
  auto p = parse_src(R"(
    .globl f
f:
    ret
)");
  Function* f = p.co->function_named("f");
  Liveness live(*f);
  const Block* b = f->entry_block();
  const auto before = live.live_before(b, 0);
  EXPECT_TRUE(before.contains(isa::sp));
  EXPECT_TRUE(before.contains(isa::s0));
  EXPECT_TRUE(before.contains(isa::a0));  // potential return value
  // Unused temporaries are dead even right at the return.
  EXPECT_TRUE(live.dead_before(b, 0).contains(isa::t2));
  EXPECT_TRUE(live.dead_before(b, 0).contains(isa::t3));
}

TEST(Liveness, CallClobbersAndUsesABI) {
  auto p = parse_src(R"(
    .globl f
    .globl g
f:
    addi sp, sp, -16
    sd ra, 8(sp)
    li a0, 1
    call g
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
g:
    ret
)");
  Function* f = p.co->function_named("f");
  Liveness live(*f);
  const Block* entry = f->entry_block();
  // Find the call instruction index in the entry block.
  std::size_t call_idx = entry->insns().size() - 1;
  // a0 (argument) is live right before the call.
  EXPECT_TRUE(live.live_before(entry, call_idx).contains(isa::a0));
  // t0 is not live before the call (clobbered by it, never used).
  EXPECT_TRUE(live.dead_before(entry, call_idx).contains(isa::t0));
}

TEST(Liveness, DeadNeverIncludesReservedRegs) {
  auto p = parse_src(".globl f\nf:\n ret\n");
  Function* f = p.co->function_named("f");
  Liveness live(*f);
  const auto dead = live.dead_before(f->entry_block(), 0);
  EXPECT_FALSE(dead.contains(isa::zero));
  EXPECT_FALSE(dead.contains(isa::sp));
  EXPECT_FALSE(dead.contains(isa::gp));
  EXPECT_FALSE(dead.contains(isa::tp));
}

TEST(Liveness, UnresolvedFlowForcesAllLive) {
  auto p = parse_src(R"(
    .globl f
f:
    jr a1
)");
  Function* f = p.co->function_named("f");
  Liveness live(*f);
  // With unresolved flow, nothing (except never-dead regs) may be dead.
  EXPECT_TRUE(live.dead_before(f->entry_block(), 0).empty());
}

// ---- stack height ----

TEST(StackHeight, StandardPrologueEpilogue) {
  auto p = parse_src(R"(
    .globl f
f:
    addi sp, sp, -32
    sd ra, 24(sp)
    nop
    ld ra, 24(sp)
    addi sp, sp, 32
    ret
)");
  Function* f = p.co->function_named("f");
  StackHeightAnalysis sh(*f);
  const Block* b = f->entry_block();
  EXPECT_EQ(sh.height_before(b, 0), 0);
  EXPECT_EQ(sh.height_before(b, 1), -32);
  EXPECT_EQ(sh.height_before(b, 5), 0);  // after the sp restore
  EXPECT_EQ(sh.frame_size(), 32);
  ASSERT_TRUE(sh.ra_save_slot().has_value());
  EXPECT_EQ(*sh.ra_save_slot(), -32 + 24);  // relative to entry sp
}

TEST(StackHeight, LeafFunctionHasNoFrame) {
  auto p = parse_src(".globl f\nf:\n add a0, a0, a1\n ret\n");
  Function* f = p.co->function_named("f");
  StackHeightAnalysis sh(*f);
  EXPECT_EQ(sh.frame_size(), std::nullopt);
  EXPECT_EQ(sh.ra_save_slot(), std::nullopt);
  EXPECT_EQ(sh.height_out(f->entry_block()), 0);
}

TEST(StackHeight, NonConstantSpGoesUnknown) {
  auto p = parse_src(R"(
    .globl f
f:
    sub sp, sp, a0
    ret
)");
  Function* f = p.co->function_named("f");
  StackHeightAnalysis sh(*f);
  EXPECT_EQ(sh.height_out(f->entry_block()), std::nullopt);
}

TEST(StackHeight, ConsistentAcrossBranches) {
  auto p = parse_src(R"(
    .globl f
f:
    addi sp, sp, -16
    beqz a0, l
    nop
l:
    addi sp, sp, 16
    ret
)");
  Function* f = p.co->function_named("f");
  StackHeightAnalysis sh(*f);
  const auto* sym = p.st.find_symbol("l");
  ASSERT_NE(sym, nullptr);
  const Block* join = f->block_at(sym->value);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(sh.height_in(join), -16);
}

// Regression (found by the shadow-stack oracle): the frame-pointer epilogue
// `addi sp, s0, imm` used to demote the height to unknown even when fp
// provenance was known, so a stop between the sp restore and the `ret` lost
// the walk. With fp tracked, the height stays known through the epilogue.
TEST(StackHeight, FpEpilogueKeepsHeightKnown) {
  auto p = parse_src(R"(
    .globl f
f:
    addi sp, sp, -64
    sd ra, 56(sp)
    sd s0, 48(sp)
    addi s0, sp, 64   # fp = entry sp
    li t0, 128
    sub sp, sp, t0    # variable-size alloca: sp height unknown here
    addi sp, s0, -64  # fp-relative restore back to the fixed frame
    ld ra, 56(sp)
    ld s0, 48(sp)
    addi sp, sp, 64
    ret
)");
  Function* f = p.co->function_named("f");
  StackHeightAnalysis sh(*f);
  const Block* b = f->entry_block();
  EXPECT_EQ(sh.height_before(b, 4), -64);           // after the fp setup
  EXPECT_EQ(sh.height_before(b, 6), std::nullopt);  // inside the alloca
  // After `addi sp, s0, -64`: fp is entry_sp, so sp = entry_sp - 64.
  EXPECT_EQ(sh.height_before(b, 7), -64);
  EXPECT_EQ(sh.height_out(b), 0);  // the whole epilogue resolves
  ASSERT_TRUE(sh.fp_save_slot().has_value());
  EXPECT_EQ(*sh.fp_save_slot(), -64 + 48);
  EXPECT_TRUE(sh.fp_saved_at(b, 4));
  EXPECT_FALSE(sh.fp_saved_at(b, 2));  // before the sd s0
}

// Pinning: without fp provenance (s0 never set up from sp), the fp-relative
// restore must still go unknown — guessing here would corrupt walks.
TEST(StackHeight, FpEpilogueWithoutProvenanceStaysUnknown) {
  auto p = parse_src(R"(
    .globl f
f:
    addi sp, sp, -32
    addi sp, s0, -32  # s0's relation to sp was never established
    ret
)");
  Function* f = p.co->function_named("f");
  StackHeightAnalysis sh(*f);
  const Block* b = f->entry_block();
  EXPECT_EQ(sh.height_before(b, 1), -32);
  EXPECT_EQ(sh.height_before(b, 2), std::nullopt);
  EXPECT_EQ(sh.height_out(b), std::nullopt);
}

TEST(StackHeight, FpClobberTracking) {
  auto p = parse_src(R"(
    .globl f
f:
    addi sp, sp, -32
    sd s0, 24(sp)
    li s0, 7          # clobbers fp after the spill
    ld s0, 24(sp)
    addi sp, sp, 32
    ret
)");
  Function* f = p.co->function_named("f");
  StackHeightAnalysis sh(*f);
  const Block* b = f->entry_block();
  EXPECT_TRUE(sh.fp_clobbered());
  EXPECT_TRUE(sh.fp_preserved_at(b, 2));   // before the li
  EXPECT_FALSE(sh.fp_preserved_at(b, 3));  // after it
  ASSERT_TRUE(sh.fp_save_slot().has_value());
  EXPECT_EQ(*sh.fp_save_slot(), -32 + 24);
}

// ---- slicing ----

TEST(Slicing, BackwardSliceFollowsDataflow) {
  auto p = parse_src(R"(
    .globl f
f:
    li t0, 1       # A
    li t1, 2       # B   (independent of the slice)
    add t2, t0, t0 # C
    add a0, t2, a1 # D
    ret
)");
  Function* f = p.co->function_named("f");
  Slicer slicer(*f);
  const auto& insns = f->entry_block()->insns();
  const std::uint64_t A = insns[0].addr, B = insns[1].addr,
                      C = insns[2].addr, D = insns[3].addr;
  const auto slice = slicer.backward_slice(D);
  EXPECT_TRUE(slice.count(D));
  EXPECT_TRUE(slice.count(C));
  EXPECT_TRUE(slice.count(A));
  EXPECT_FALSE(slice.count(B));
}

TEST(Slicing, ForwardSliceFindsAffected) {
  auto p = parse_src(R"(
    .globl f
f:
    li t0, 1       # A
    add t1, t0, t0 # B: affected by A
    li t2, 9       # C: unaffected
    add a0, t1, t2 # D: affected via B
    ret
)");
  Function* f = p.co->function_named("f");
  Slicer slicer(*f);
  const auto& insns = f->entry_block()->insns();
  const auto slice = slicer.forward_slice(insns[0].addr);
  EXPECT_TRUE(slice.count(insns[1].addr));
  EXPECT_TRUE(slice.count(insns[3].addr));
  EXPECT_FALSE(slice.count(insns[2].addr));
}

TEST(Slicing, ReachingDefsAcrossBranches) {
  auto p = parse_src(R"(
    .globl f
f:
    beqz a0, other
    li t0, 1       # def 1
    j join
other:
    li t0, 2       # def 2
join:
    add a0, t0, t0 # both defs reach
    ret
)");
  Function* f = p.co->function_named("f");
  Slicer slicer(*f);
  const auto* sym = p.st.find_symbol("join");
  ASSERT_NE(sym, nullptr);
  const Block* join = f->block_at(sym->value);
  ASSERT_NE(join, nullptr);
  const auto defs = slicer.reaching_defs(join->insns()[0].addr, isa::t0);
  EXPECT_EQ(defs.size(), 2u);
}

TEST(Slicing, SliceThroughLoop) {
  auto p = parse_src(R"(
    .globl f
f:
    li t0, 0
    li t1, 10
loop:
    addi t0, t0, 1   # self-dependent accumulator
    bne t0, t1, loop
    mv a0, t0
    ret
)");
  Function* f = p.co->function_named("f");
  Slicer slicer(*f);
  // The accumulator's backward slice includes its own increment (loop
  // carried) and the init.
  const auto* sym = p.st.find_symbol("loop");
  ASSERT_NE(sym, nullptr);
  const Block* loop = f->block_at(sym->value);
  const std::uint64_t inc = loop->insns()[0].addr;
  const auto slice = slicer.backward_slice(inc);
  EXPECT_TRUE(slice.count(inc));
  EXPECT_TRUE(slice.count(f->entry_block()->insns()[0].addr));
  EXPECT_GT(slicer.num_edges(), 4u);
}

}  // namespace
