// Export-surface tests: histogram percentile accessors on the registry,
// Prometheus text exposition, JSON snapshot/delta, and the snapshot_diff
// streaming primitive.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace rvdyn::obs {
namespace {

TEST(HistogramSnapshot, PercentilesOnSingleValuedBuckets) {
  Registry& r = Registry::instance();
  const Histogram h("test.exp.hist.single");
  // 50 zeros (bucket 0) and 50 ones (bucket 1): both buckets single-valued,
  // so every percentile is exact.
  for (int i = 0; i < 50; ++i) h.record(0);
  for (int i = 0; i < 50; ++i) h.record(1);
  const auto snap = r.histogram("test.exp.hist.single");
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 50u);
  EXPECT_EQ(snap.max, 1u);
  EXPECT_DOUBLE_EQ(snap.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.percentile(0.25), 0.0);
  EXPECT_DOUBLE_EQ(snap.p50(), 1.0);  // rank 50.5 lands in the ones
  EXPECT_DOUBLE_EQ(snap.p95(), 1.0);
  EXPECT_DOUBLE_EQ(snap.p99(), 1.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.5);
}

TEST(HistogramSnapshot, TopOfRangeClampsToMax) {
  Registry& r = Registry::instance();
  const Histogram h("test.exp.hist.clamp");
  for (int i = 0; i < 100; ++i) h.record(1000);  // bucket 10: [512, 1023]
  const auto snap = r.histogram("test.exp.hist.clamp");
  EXPECT_EQ(snap.max, 1000u);
  // Interpolation stays inside the bucket and the upper bound is the
  // recorded max, never the nominal 1023.
  EXPECT_GE(snap.p50(), 512.0);
  EXPECT_LE(snap.p99(), 1000.0);
  EXPECT_DOUBLE_EQ(snap.percentile(1.0), 1000.0);
}

TEST(HistogramSnapshot, MergesAcrossThreadShards) {
  Registry& r = Registry::instance();
  const Histogram h("test.exp.hist.sharded");
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(5);
    });
  for (auto& t : threads) t.join();
  const auto snap = r.histogram("test.exp.hist.sharded");
  // The snapshot must aggregate every thread's shard exactly.
  EXPECT_EQ(snap.count, kThreads * static_cast<unsigned>(kPerThread));
  EXPECT_EQ(snap.sum, 5u * kThreads * kPerThread);
  EXPECT_EQ(snap.max, 5u);
}

TEST(Registry, HistogramNamesAndLookup) {
  Registry& r = Registry::instance();
  const Histogram h("test.exp.hist.named");
  h.record(1);
  const auto names = r.histogram_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.exp.hist.named"),
            names.end());
  EXPECT_EQ(r.histogram("test.exp.no.such.histogram").count, 0u);
}

TEST(Export, SnapshotDiffSubtractsCountersAndDropsZeroes) {
  Registry& r = Registry::instance();
  const Counter c("test.exp.diff.counter");
  const Counter idle("test.exp.diff.idle");
  const Gauge g("test.exp.diff.gauge");
  c.add(10);
  idle.add(3);
  g.set(7);
  const auto then = r.snapshot();
  c.add(5);
  g.set(9);
  const auto delta = snapshot_diff(r.snapshot(), then);
  std::uint64_t counter_delta = 0, gauge_now = 0;
  bool saw_idle = false;
  for (const auto& s : delta) {
    if (s.name == "test.exp.diff.counter") counter_delta = s.value;
    if (s.name == "test.exp.diff.gauge") gauge_now = s.value;
    if (s.name == "test.exp.diff.idle") saw_idle = true;
  }
  EXPECT_EQ(counter_delta, 5u);  // counters subtract
  EXPECT_EQ(gauge_now, 9u);      // gauges carry the current value
  EXPECT_FALSE(saw_idle);        // unchanged counters are omitted
}

TEST(Export, PrometheusTextExposition) {
  Registry& r = Registry::instance();
  Counter("test.exp.prom.counter").add(42);
  const Histogram h("test.exp.prom.hist");
  h.record(3);
  h.record(100);
  const std::string text = prometheus_text(r);

  // Dots map to underscores; counters carry a TYPE line and a value.
  EXPECT_NE(text.find("# TYPE test_exp_prom_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_exp_prom_counter 42"), std::string::npos);

  // Histogram: TYPE histogram, cumulative le buckets, +Inf, sum, count —
  // and its component series must NOT leak out as bare counters.
  EXPECT_NE(text.find("# TYPE test_exp_prom_hist histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_exp_prom_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_exp_prom_hist_sum 103"), std::string::npos);
  EXPECT_NE(text.find("test_exp_prom_hist_count 2"), std::string::npos);
  EXPECT_EQ(text.find("test_exp_prom_hist_count_bucket"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE test_exp_prom_hist_b"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE test_exp_prom_hist_sum"), std::string::npos);

  // le bounds are cumulative: the value-3 sample appears in every bucket
  // with bound >= 3.
  EXPECT_NE(text.find("test_exp_prom_hist_bucket{le=\"3\"} 1"),
            std::string::npos);
}

TEST(Export, JsonSnapshotCarriesHistogramDigest) {
  Registry& r = Registry::instance();
  const Histogram h("test.exp.json.hist");
  h.record(8);
  const std::string json = json_snapshot(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(json.find("\"test.exp.json.hist\": {\"count\": "),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\": "), std::string::npos);
  EXPECT_NE(json.find("\"p95\": "), std::string::npos);
  EXPECT_NE(json.find("\"p99\": "), std::string::npos);
  // Braces balance (names are identifiers, so no string skews the count).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Export, JsonDeltaShipsOnlyWhatMoved) {
  Registry& r = Registry::instance();
  const Counter c("test.exp.jdelta.counter");
  c.add(1);
  const auto then = r.snapshot();
  const std::string quiet = json_delta(then, r);
  EXPECT_EQ(quiet.find("test.exp.jdelta.counter"), std::string::npos);
  c.add(4);
  const std::string moved = json_delta(then, r);
  EXPECT_NE(moved.find("\"test.exp.jdelta.counter\": 4"), std::string::npos);
}

}  // namespace
}  // namespace rvdyn::obs
