// Whole-stack integration scenarios: every toolkit in one flow —
// assemble -> rewrite (multiple point kinds) -> serialize -> reload ->
// run under ProcControl with breakpoints -> walk stacks of the
// *instrumented* process -> verify counters and behaviour.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "parse/cfg.hpp"
#include "patch/editor.hpp"
#include "proccontrol/process.hpp"
#include "stackwalk/stackwalker.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;
using proccontrol::Event;
using proccontrol::Process;

TEST(Integration, FullPipelineOverSortWorkload) {
  // 1. Build the mutatee.
  const auto original = assembler::assemble(workloads::sort_program(32));
  emu::Machine base;
  base.load(original);
  ASSERT_EQ(static_cast<int>(base.run(10'000'000)),
            static_cast<int>(emu::StopReason::Exited));
  ASSERT_EQ(base.exit_code(), 0);

  // 2. Instrument three point kinds in one editor.
  patch::BinaryEditor editor(original);
  const auto entries = editor.alloc_var("entries");
  const auto backedges = editor.alloc_var("backedges");
  const auto sifts = editor.alloc_var("sifts");
  for (const auto& [entry, f] : editor.code().functions())
    editor.insert_at(entry, patch::PointType::FuncEntry,
                     codegen::increment(entries));
  const auto* isort = editor.code().function_named("isort");
  ASSERT_NE(isort, nullptr);
  editor.insert_at(isort->entry(), patch::PointType::LoopBackedge,
                   codegen::increment(backedges));
  // Instruction point on the sift-loop's element copy (the sd inside).
  std::uint64_t sd_addr = 0;
  for (const auto& [a, b] : isort->blocks())
    for (const auto& pi : b->insns())
      if (pi.insn.mnemonic() == isa::Mnemonic::sd && sd_addr == 0)
        sd_addr = pi.addr;
  ASSERT_NE(sd_addr, 0u);
  editor.insert(patch::insn_point(*isort, sd_addr),
                codegen::increment(sifts));

  // 3. Serialize to an ELF image and reload (the on-disk path).
  const auto rewritten = editor.commit();
  const auto reloaded = symtab::Symtab::read(rewritten.write());

  // 4. Run under the debugger with a breakpoint on `check`.
  auto proc = Process::launch(reloaded);
  proc->install_trap_table(editor.trap_table());
  const auto* check = reloaded.find_symbol("check");
  ASSERT_NE(check, nullptr);
  proc->insert_breakpoint(check->value);
  const Event stop = proc->continue_run();
  ASSERT_EQ(static_cast<int>(stop.kind),
            static_cast<int>(Event::Kind::Stopped));
  // By the time check() runs, fill and isort already executed.
  EXPECT_GE(proc->read_mem(entries.addr, 8), 3u);
  EXPECT_GT(proc->read_mem(backedges.addr, 8), 0u);
  EXPECT_GT(proc->read_mem(sifts.addr, 8), 0u);

  // 5. Finish; behaviour preserved.
  const Event done = proc->continue_run();
  ASSERT_EQ(static_cast<int>(done.kind),
            static_cast<int>(Event::Kind::Exited));
  EXPECT_EQ(done.exit_code, 0);
  EXPECT_EQ(proc->read_mem(entries.addr, 8), 4u);  // _start,fill,isort,check
}

TEST(Integration, StackWalkInsideInstrumentedProcess) {
  // Stop inside the *relocated* body of an instrumented callee and walk
  // the stack: frames must resolve through the patched control flow.
  const auto original = assembler::assemble(R"(
    .globl _start
    .globl outer
    .globl inner
_start:
    li a0, 3
    call outer
    li a7, 93
    ecall
outer:
    addi sp, sp, -16
    sd ra, 8(sp)
    call inner
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
inner:
    addi a0, a0, 10
    ret
)");

  patch::BinaryEditor editor(original);
  const auto c = editor.alloc_var("c");
  editor.insert_at(editor.code().function_named("inner")->entry(),
                   patch::PointType::FuncEntry, codegen::increment(c));
  const auto rewritten = editor.commit();

  // Parse the REWRITTEN binary: the walker needs CFG info that includes
  // the relocated code in .rvdyn.text.
  parse::CodeObject co(rewritten);
  co.parse();

  auto proc = Process::launch(rewritten);
  proc->install_trap_table(editor.trap_table());
  // Break at inner's ORIGINAL entry: execution arrives via the springboard
  // only... the springboard overwrote it. Break instead inside relocated
  // code: find inner's relocated home via the parsed CFG of the rewritten
  // binary (the springboard jump target).
  const auto* inner_sym = rewritten.find_symbol("inner");
  ASSERT_NE(inner_sym, nullptr);
  // Follow the springboard: decode the jal at the original entry.
  std::uint8_t buf[4];
  for (int i = 0; i < 4; ++i)
    buf[i] = static_cast<std::uint8_t>(
        *rewritten.read_addr(inner_sym->value + i, 1));
  isa::Decoder dec;
  isa::Instruction jump;
  ASSERT_GT(dec.decode(buf, 4, &jump), 0u);
  ASSERT_TRUE(jump.is_jal());
  const std::uint64_t relocated =
      inner_sym->value + static_cast<std::uint64_t>(jump.branch_offset());

  proc->insert_breakpoint(relocated);
  const Event stop = proc->continue_run();
  ASSERT_EQ(static_cast<int>(stop.kind),
            static_cast<int>(Event::Kind::Stopped));

  stackwalk::StackWalker walker(*proc, co);
  const auto frames = walker.walk();
  ASSERT_GE(frames.size(), 3u);
  // Innermost frame is in the relocated region; callers resolve to the
  // original outer/_start functions.
  std::vector<std::string> names;
  for (const auto& f : frames) names.push_back(f.func_name);
  EXPECT_EQ(names[1], "outer");
  EXPECT_EQ(names[2], "_start");

  const Event done = proc->continue_run();
  ASSERT_EQ(static_cast<int>(done.kind),
            static_cast<int>(Event::Kind::Exited));
  EXPECT_EQ(done.exit_code, 13);
  EXPECT_EQ(proc->read_mem(c.addr, 8), 1u);
}

TEST(Integration, WatchpointPlusInstrumentationCoexist) {
  // A watchpoint on the instrumentation counter itself fires on every
  // snippet execution — debugger and patcher composing.
  const auto original = assembler::assemble(workloads::call_churn_program(4));
  patch::BinaryEditor editor(original);
  const auto c = editor.alloc_var("c");
  editor.insert_at(editor.code().function_named("leaf")->entry(),
                   patch::PointType::FuncEntry, codegen::increment(c));
  const auto rewritten = editor.commit();

  auto proc = Process::launch(rewritten);
  proc->install_trap_table(editor.trap_table());
  proc->set_watchpoint(c.addr, 8);

  int snippet_fires = 0;
  while (true) {
    const Event ev = proc->continue_run();
    if (ev.kind == Event::Kind::Exited) break;
    ASSERT_EQ(static_cast<int>(ev.kind),
              static_cast<int>(Event::Kind::WatchHit));
    ++snippet_fires;
    // The writing instruction lives in the relocated patch area.
    const auto* patch_text = rewritten.find_section(".rvdyn.text");
    ASSERT_NE(patch_text, nullptr);
    EXPECT_TRUE(patch_text->contains(ev.addr));
  }
  EXPECT_EQ(snippet_fires, 4);
  EXPECT_EQ(proc->read_mem(c.addr, 8), 4u);
}

}  // namespace
