// StackwalkerAPI tests: walking call stacks of stopped emulated processes
// through the plugin steppers — sp-height (fp-less frames, the RISC-V
// common case), frame-pointer chains, and top-frame ra.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "parse/cfg.hpp"
#include "proccontrol/process.hpp"
#include "stackwalk/stackwalker.hpp"

namespace {

using namespace rvdyn;
using proccontrol::Event;
using proccontrol::Process;
using stackwalk::Frame;
using stackwalk::StackWalker;

struct Setup {
  symtab::Symtab st;
  std::unique_ptr<parse::CodeObject> co;
  std::unique_ptr<Process> proc;
};

Setup stop_at(const std::string& src, const std::string& symbol) {
  Setup s{assembler::assemble(src), nullptr, nullptr};
  s.co = std::make_unique<parse::CodeObject>(s.st);
  s.co->parse();
  s.proc = Process::launch(s.st);
  const auto* sym = s.st.find_symbol(symbol);
  EXPECT_NE(sym, nullptr) << symbol;
  s.proc->insert_breakpoint(sym->value);
  const Event ev = s.proc->continue_run();
  EXPECT_EQ(static_cast<int>(ev.kind), static_cast<int>(Event::Kind::Stopped));
  return s;
}

std::vector<std::string> frame_names(const std::vector<Frame>& frames) {
  std::vector<std::string> out;
  for (const auto& f : frames) out.push_back(f.func_name);
  return out;
}

// Three-deep fp-less call chain (the common RISC-V shape, §3.2.7).
constexpr const char* kSpChain = R"(
    .globl _start
    .globl level1
    .globl level2
    .globl leafpoint
_start:
    li a0, 1
    call level1
    li a7, 93
    ecall
level1:
    addi sp, sp, -32
    sd ra, 24(sp)
    call level2
    ld ra, 24(sp)
    addi sp, sp, 32
    ret
level2:
    addi sp, sp, -16
    sd ra, 8(sp)
    call leafpoint
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
leafpoint:
    nop
    ret
)";

TEST(StackWalk, SpHeightChainThreeDeep) {
  auto s = stop_at(kSpChain, "leafpoint");
  StackWalker walker(*s.proc, *s.co);
  const auto frames = walker.walk();
  const auto names = frame_names(frames);
  ASSERT_GE(frames.size(), 4u);
  EXPECT_EQ(names[0], "leafpoint");
  EXPECT_EQ(names[1], "level2");
  EXPECT_EQ(names[2], "level1");
  EXPECT_EQ(names[3], "_start");
}

TEST(StackWalk, TopLeafFrameUsesRa) {
  auto s = stop_at(kSpChain, "leafpoint");
  StackWalker walker(*s.proc, *s.co);
  const auto frames = walker.walk();
  ASSERT_GE(frames.size(), 2u);
  // leafpoint has no frame: the walk out of it must use the ra register.
  EXPECT_STREQ(frames[0].stepper, "leaf-ra");
  // level2 has a frame: walked by stack-height analysis.
  EXPECT_STREQ(frames[1].stepper, "sp-height");
}

TEST(StackWalk, MidFunctionStop) {
  // Stop inside level2 (after its prologue) rather than at an entry.
  auto st = assembler::assemble(kSpChain);
  auto co = std::make_unique<parse::CodeObject>(st);
  co->parse();
  auto proc = Process::launch(st);
  // Address of the `call leafpoint` inside level2: entry + 4 bytes
  // (c.addi16sp 2B + sd 2B? use the parsed CFG to find the call insn).
  const auto* f = co->function_named("level2");
  ASSERT_NE(f, nullptr);
  std::uint64_t call_addr = 0;
  for (const auto& [a, b] : f->blocks())
    for (const auto& e : b->succs())
      if (e.type == parse::EdgeType::Call) call_addr = b->last().addr;
  ASSERT_NE(call_addr, 0u);
  proc->insert_breakpoint(call_addr);
  ASSERT_EQ(static_cast<int>(proc->continue_run().kind),
            static_cast<int>(Event::Kind::Stopped));

  StackWalker walker(*proc, *co);
  const auto frames = walker.walk();
  const auto names = frame_names(frames);
  ASSERT_GE(frames.size(), 3u);
  EXPECT_EQ(names[0], "level2");
  EXPECT_EQ(names[1], "level1");
  EXPECT_EQ(names[2], "_start");
}

TEST(StackWalk, FramePointerChain) {
  // A program maintaining the ABI fp chain: prologue saves ra at fp-8 and
  // caller fp at fp-16, then sets fp = sp + frame.
  const char* src = R"(
    .globl _start
    .globl fpfunc
    .globl fpleaf
_start:
    li s0, 0          # terminate the fp chain
    call fpfunc
    li a7, 93
    ecall
fpfunc:
    li t0, 32
    sub sp, sp, t0    # register-sized frame: defeats stack-height analysis
    sd ra, 24(sp)
    sd s0, 16(sp)
    addi s0, sp, 32   # fp = entry sp
    call fpleaf
    ld ra, 24(sp)
    ld s0, 16(sp)
    addi sp, sp, 32
    ret
fpleaf:
    nop
    ret
)";
  auto s = stop_at(src, "fpleaf");
  StackWalker walker(*s.proc, *s.co);
  const auto frames = walker.walk();
  const auto names = frame_names(frames);
  ASSERT_GE(frames.size(), 3u);
  EXPECT_EQ(names[0], "fpleaf");
  EXPECT_EQ(names[1], "fpfunc");
  EXPECT_EQ(names[2], "_start");
  // The fpfunc frame is only walkable via the fp chain (its frame size is
  // register-determined, so the sp-height stepper must have declined).
  EXPECT_STREQ(frames[1].stepper, "frame-pointer");
}

TEST(StackWalk, RecursiveStack) {
  const char* src = R"(
    .globl _start
    .globl recurse
    .globl bottom
_start:
    li a0, 4
    call recurse
    li a7, 93
    ecall
recurse:
    addi sp, sp, -16
    sd ra, 8(sp)
    beqz a0, base
    addi a0, a0, -1
    call recurse
    j out
base:
    call bottom
out:
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
bottom:
    nop
    ret
)";
  auto s = stop_at(src, "bottom");
  StackWalker walker(*s.proc, *s.co);
  const auto frames = walker.walk();
  const auto names = frame_names(frames);
  // bottom + 5 recurse frames (a0=4..0) + _start.
  ASSERT_EQ(frames.size(), 7u);
  EXPECT_EQ(names[0], "bottom");
  for (int i = 1; i <= 5; ++i) EXPECT_EQ(names[i], "recurse") << i;
  EXPECT_EQ(names[6], "_start");
}

TEST(StackWalk, WalkDepthLimit) {
  const char* src = R"(
    .globl _start
    .globl recurse
    .globl bottom
_start:
    li a0, 30
    call recurse
    li a7, 93
    ecall
recurse:
    addi sp, sp, -16
    sd ra, 8(sp)
    beqz a0, base
    addi a0, a0, -1
    call recurse
    j out
base:
    call bottom
out:
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
bottom:
    ret
)";
  auto s = stop_at(src, "bottom");
  StackWalker walker(*s.proc, *s.co);
  EXPECT_EQ(walker.walk(8).size(), 8u);
}

TEST(StackWalk, CustomStepperPluginTakesPriority) {
  struct NullStepper : stackwalk::FrameStepper {
    const char* name() const override { return "null"; }
    std::optional<Frame> step(stackwalk::WalkContext&,
                              const Frame&) override {
      return std::nullopt;  // always declines; defaults still work
    }
  };
  auto s = stop_at(kSpChain, "leafpoint");
  StackWalker walker(*s.proc, *s.co);
  walker.add_stepper(std::make_unique<NullStepper>());
  const auto frames = walker.walk();
  ASSERT_GE(frames.size(), 4u);
  EXPECT_EQ(frames[1].func_name, "level2");
}

TEST(StackWalk, FramesCarrySpOrdering) {
  auto s = stop_at(kSpChain, "leafpoint");
  StackWalker walker(*s.proc, *s.co);
  const auto frames = walker.walk();
  ASSERT_GE(frames.size(), 3u);
  // Outer frames live at higher stack addresses.
  for (std::size_t i = 1; i < frames.size(); ++i)
    EXPECT_GE(frames[i].sp, frames[i - 1].sp) << i;
}

// Regression (found by the shadow-stack oracle): a pc that falls between
// instruction boundaries — e.g. mid-patch, or a corrupted sample — used to
// make locate() fall back to height index 0 (function entry), walking as if
// no frame existed. It must snap to the last boundary at or below the pc.
TEST(StackWalk, MidInstructionPcSnapsToBoundary) {
  const char* src = R"(
    .globl _start
    .globl f
    .globl probe
_start:
    call f
    li a7, 93
    ecall
f:
    addi sp, sp, -2032
    sd ra, 2024(sp)
probe:
    addi t0, t0, 1000
    ld ra, 2024(sp)
    addi sp, sp, 2032
    ret
)";
  auto s = stop_at(src, "probe");
  const auto* sym = s.st.find_symbol("probe");
  ASSERT_NE(sym, nullptr);
  // Point the pc into the middle of the 4-byte addi at `probe`. The stack
  // height there is the same as at `probe` itself: -2032, ra saved.
  s.proc->set_pc(sym->value + 2);

  StackWalker walker(*s.proc, *s.co);
  const auto frames = walker.walk();
  const auto names = frame_names(frames);
  ASSERT_GE(frames.size(), 2u);
  EXPECT_EQ(names[0], "f");
  EXPECT_EQ(names[1], "_start");
  // With the old entry-height fallback the caller sp came out 2032 short.
  EXPECT_EQ(frames[1].sp, frames[0].sp + 2032);
}

// Regression (found by the shadow-stack oracle): when a callee saves and
// then clobbers s0, the frame-pointer stepper used to copy the *stale*
// callee fp into the caller frame instead of recovering the caller's fp
// from the save slot, derailing the rest of the fp-chain walk.
TEST(StackWalk, StaleFpRecoveredFromSaveSlot) {
  const char* src = R"(
    .globl _start
    .globl fpmaker
    .globl mid
    .globl leaf
_start:
    li s0, 0          # terminate the fp chain
    call fpmaker
    li a7, 93
    ecall
fpmaker:
    li t0, 32
    sub sp, sp, t0    # register-sized frame: only walkable via fp chain
    sd ra, 24(sp)
    sd s0, 16(sp)
    addi s0, sp, 32
    call mid
    ld ra, 24(sp)
    ld s0, 16(sp)
    addi sp, sp, 32
    ret
mid:
    addi sp, sp, -32
    sd ra, 24(sp)
    sd s0, 16(sp)
    li s0, 12345      # clobber fp after saving it
    call leaf
    ld ra, 24(sp)
    ld s0, 16(sp)
    addi sp, sp, 32
    ret
leaf:
    nop
    ret
)";
  auto s = stop_at(src, "leaf");
  StackWalker walker(*s.proc, *s.co);
  const auto frames = walker.walk();
  const auto names = frame_names(frames);
  ASSERT_GE(frames.size(), 4u);
  EXPECT_EQ(names[0], "leaf");
  EXPECT_EQ(names[1], "mid");
  // fpmaker's frame is register-sized: reaching _start requires the caller
  // fp recovered from mid's save slot, not the clobbered live s0 (12345).
  EXPECT_EQ(names[2], "fpmaker");
  EXPECT_EQ(names[3], "_start");
  EXPECT_STREQ(frames[2].stepper, "frame-pointer");
}

// Once the walk reaches the entry function there is no caller: the walk
// must stop rather than manufacture frames from leftover ra/stack bytes.
TEST(StackWalk, EntryFunctionFencesWalk) {
  const char* src = R"(
    .globl _start
    .globl f
    .globl after
_start:
    call f
after:
    nop
    li a7, 93
    ecall
f:
    ret
)";
  auto s = stop_at(src, "after");
  StackWalker walker(*s.proc, *s.co);
  const auto frames = walker.walk();
  ASSERT_EQ(frames.size(), 1u);  // ra still points into _start; not a frame
  EXPECT_EQ(frames[0].func_name, "_start");
}

// Mid-prologue stop: sp already dropped but ra not yet saved. The height
// analysis knows the sp displacement at that exact pc; the caller sp must
// reflect the full (large, non-RVC) adjustment.
TEST(StackWalk, MidProloguePcUsesExactHeight) {
  const char* src = R"(
    .globl _start
    .globl f
    .globl midpro
_start:
    call f
    li a7, 93
    ecall
f:
    addi sp, sp, -448
midpro:
    sd ra, 440(sp)
    ld ra, 440(sp)
    addi sp, sp, 448
    ret
)";
  auto s = stop_at(src, "midpro");
  StackWalker walker(*s.proc, *s.co);
  const auto frames = walker.walk();
  const auto names = frame_names(frames);
  ASSERT_GE(frames.size(), 2u);
  EXPECT_EQ(names[0], "f");
  EXPECT_EQ(names[1], "_start");
  EXPECT_EQ(frames[1].sp, frames[0].sp + 448);
}

}  // namespace
