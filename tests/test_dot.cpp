// CFG/call-graph Graphviz export tests.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "parse/dot.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;

TEST(Dot, FunctionGraphContainsBlocksAndEdges) {
  const auto st = assembler::assemble(R"(
    .globl f
f:
    beqz a0, l
    nop
l:  ret
)");
  parse::CodeObject co(st);
  co.parse();
  const auto* f = co.function_named("f");
  const std::string dot = parse::to_dot(*f);

  EXPECT_NE(dot.find("digraph \"f\""), std::string::npos);
  // One node per block.
  for (const auto& [start, b] : f->blocks()) {
    char node[32];
    std::snprintf(node, sizeof(node), "b%llx",
                  static_cast<unsigned long long>(start));
    EXPECT_NE(dot.find(node), std::string::npos) << node;
  }
  EXPECT_NE(dot.find("taken"), std::string::npos);
  EXPECT_NE(dot.find("not-taken"), std::string::npos);
  EXPECT_NE(dot.find("return"), std::string::npos);
  // Instruction text appears inside node labels.
  EXPECT_NE(dot.find("beq"), std::string::npos);
}

TEST(Dot, LoopHeadersHighlighted) {
  const auto st = assembler::assemble(R"(
    .globl f
f:
    li t0, 3
l:  addi t0, t0, -1
    bnez t0, l
    ret
)");
  parse::CodeObject co(st);
  co.parse();
  const std::string dot = parse::to_dot(*co.function_named("f"));
  EXPECT_NE(dot.find("fillcolor=lightgrey"), std::string::npos);
}

TEST(Dot, CallGraphListsFunctionsAndCallEdges) {
  const auto st =
      assembler::assemble(workloads::call_churn_program(3));
  parse::CodeObject co(st);
  co.parse();
  const std::string dot = parse::callgraph_dot(co);
  EXPECT_NE(dot.find("_start"), std::string::npos);
  EXPECT_NE(dot.find("wrapper"), std::string::npos);
  EXPECT_NE(dot.find("leaf"), std::string::npos);
  // At least two call edges (start->wrapper, wrapper->leaf).
  std::size_t arrows = 0, pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++arrows;
    pos += 4;
  }
  EXPECT_GE(arrows, 2u);
}

TEST(Dot, EscapesQuotesInLabels) {
  // Disassembly text never carries quotes today, but the escaper must be
  // robust to future operand syntax; check the function-name path.
  const auto st = assembler::assemble(".globl f\nf:\n ret\n");
  parse::CodeObject co(st);
  co.parse();
  const std::string dot = parse::to_dot(*co.function_named("f"));
  // Balanced quotes: an even count.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '"') % 2, 0);
}

}  // namespace
