// Interprocedural analyses: call-graph structure (SCCs, recursion,
// reachability) and (may-use, must-def) register summaries, including
// their effect on liveness at call sites — the precision feed for the
// dead-register optimization.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/summaries.hpp"
#include "emu/machine.hpp"
#include "patch/editor.hpp"
#include "parse/callgraph.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;
using dataflow::Liveness;
using dataflow::Summaries;
using parse::CallGraph;
using parse::CodeObject;

struct Parsed {
  symtab::Symtab st;
  std::unique_ptr<CodeObject> co;
};

Parsed parse_src(const std::string& src) {
  Parsed p{assembler::assemble(src), nullptr};
  p.co = std::make_unique<CodeObject>(p.st);
  p.co->parse();
  return p;
}

std::uint64_t entry_of(const Parsed& p, const char* name) {
  const auto* f = p.co->function_named(name);
  EXPECT_NE(f, nullptr) << name;
  return f->entry();
}

constexpr const char* kChain = R"(
    .globl _start
    .globl top
    .globl mid
    .globl leaf
_start:
    call top
    li a7, 93
    ecall
top:
    addi sp, sp, -16
    sd ra, 8(sp)
    call mid
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
mid:
    addi sp, sp, -16
    sd ra, 8(sp)
    call leaf
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
leaf:
    addi a0, a0, 1
    ret
)";

TEST(CallGraph, EdgesAndReachability) {
  auto p = parse_src(kChain);
  CallGraph cg(*p.co);
  const auto start = entry_of(p, "_start"), top = entry_of(p, "top"),
             mid = entry_of(p, "mid"), leaf = entry_of(p, "leaf");
  EXPECT_TRUE(cg.callees(start).count(top));
  EXPECT_TRUE(cg.callees(top).count(mid));
  EXPECT_TRUE(cg.callers(leaf).count(mid));
  EXPECT_TRUE(cg.callers(mid).count(top));

  const auto reach = cg.reachable_from(top);
  EXPECT_TRUE(reach.count(top));
  EXPECT_TRUE(reach.count(mid));
  EXPECT_TRUE(reach.count(leaf));
  EXPECT_FALSE(reach.count(start));
}

TEST(CallGraph, BottomUpOrderPutsCalleesFirst) {
  auto p = parse_src(kChain);
  CallGraph cg(*p.co);
  const auto order = cg.bottom_up_order();
  auto pos = [&](std::uint64_t f) {
    return std::find(order.begin(), order.end(), f) - order.begin();
  };
  EXPECT_LT(pos(entry_of(p, "leaf")), pos(entry_of(p, "mid")));
  EXPECT_LT(pos(entry_of(p, "mid")), pos(entry_of(p, "top")));
  EXPECT_LT(pos(entry_of(p, "top")), pos(entry_of(p, "_start")));
}

TEST(CallGraph, DetectsSelfRecursion) {
  auto p = parse_src(R"(
    .globl _start
    .globl rec
    .globl plain
_start:
    call rec
    call plain
    li a7, 93
    ecall
rec:
    addi sp, sp, -16
    sd ra, 8(sp)
    beqz a0, rdone
    addi a0, a0, -1
    call rec
rdone:
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
plain:
    ret
)");
  CallGraph cg(*p.co);
  EXPECT_TRUE(cg.is_recursive(entry_of(p, "rec")));
  EXPECT_FALSE(cg.is_recursive(entry_of(p, "plain")));
  EXPECT_FALSE(cg.is_recursive(entry_of(p, "_start")));
}

TEST(CallGraph, DetectsMutualRecursionScc) {
  auto p = parse_src(R"(
    .globl _start
    .globl even
    .globl odd
_start:
    li a0, 6
    call even
    li a7, 93
    ecall
even:
    addi sp, sp, -16
    sd ra, 8(sp)
    beqz a0, etrue
    addi a0, a0, -1
    call odd
    j edone
etrue:
    li a0, 1
edone:
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
odd:
    addi sp, sp, -16
    sd ra, 8(sp)
    beqz a0, ofalse
    addi a0, a0, -1
    call even
    j odone
ofalse:
    li a0, 0
odone:
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
)");
  CallGraph cg(*p.co);
  EXPECT_TRUE(cg.is_recursive(entry_of(p, "even")));
  EXPECT_TRUE(cg.is_recursive(entry_of(p, "odd")));
  // They share an SCC.
  bool found_pair = false;
  for (const auto& scc : cg.sccs())
    if (scc.size() == 2) found_pair = true;
  EXPECT_TRUE(found_pair);
}

TEST(CallGraph, UnknownCalleesFlagged) {
  auto p = parse_src(R"(
    .globl _start
    .globl indirect
_start:
    li a7, 93
    ecall
indirect:
    jalr ra, 0(a5)
    ret
)");
  CallGraph cg(*p.co);
  EXPECT_TRUE(cg.has_unknown_callees().count(entry_of(p, "indirect")));
  EXPECT_FALSE(cg.has_unknown_callees().count(entry_of(p, "_start")));
}

// ---- summaries ----

TEST(Summaries, LeafUsesOnlyWhatItReads) {
  auto p = parse_src(kChain);
  Summaries sums(*p.co);
  const auto* leaf = sums.lookup(entry_of(p, "leaf"));
  ASSERT_NE(leaf, nullptr);
  EXPECT_TRUE(leaf->precise);
  // leaf reads a0 (and implicitly ra for the return, sp passes through).
  EXPECT_TRUE(leaf->may_use.contains(isa::a0));
  EXPECT_TRUE(leaf->may_use.contains(isa::ra));
  EXPECT_FALSE(leaf->may_use.contains(isa::a1));
  EXPECT_FALSE(leaf->may_use.contains(isa::a7));
  EXPECT_FALSE(leaf->may_use.contains(isa::t0));
  // leaf definitely writes a0 and nothing else interesting.
  EXPECT_TRUE(leaf->must_def.contains(isa::a0));
  EXPECT_FALSE(leaf->must_def.contains(isa::t0));
}

TEST(Summaries, TransitiveThroughTheChain) {
  auto p = parse_src(kChain);
  Summaries sums(*p.co);
  const auto* top = sums.lookup(entry_of(p, "top"));
  ASSERT_NE(top, nullptr);
  // top transitively reads a0 (via mid -> leaf).
  EXPECT_TRUE(top->may_use.contains(isa::a0));
  EXPECT_FALSE(top->may_use.contains(isa::a3));
  // And definitely writes a0 transitively.
  EXPECT_TRUE(top->must_def.contains(isa::a0));
}

TEST(Summaries, CallSiteLivenessSharpens) {
  // At the `call leaf` inside mid: with the ABI model all argument
  // registers are live (potential args); with summaries only a0 is.
  auto p = parse_src(kChain);
  const auto* mid = p.co->function_named("mid");
  ASSERT_NE(mid, nullptr);
  const parse::Block* callsite = nullptr;
  for (const auto& [a, b] : mid->blocks())
    for (const auto& e : b->succs())
      if (e.type == parse::EdgeType::Call) callsite = b.get();
  ASSERT_NE(callsite, nullptr);
  const std::size_t term = callsite->insns().size() - 1;

  Liveness abi(*mid);
  EXPECT_TRUE(abi.live_before(callsite, term).contains(isa::a2));
  EXPECT_TRUE(abi.live_before(callsite, term).contains(isa::a7));

  Summaries sums(*p.co);
  Liveness sharp(*mid, &sums);
  EXPECT_TRUE(sharp.live_before(callsite, term).contains(isa::a0));
  // a1 stays live either way: it can pass through leaf and mid to mid's
  // caller as a potential second return value. a2-a7 cannot (they are not
  // return registers), so the summary frees them.
  EXPECT_TRUE(sharp.live_before(callsite, term).contains(isa::a1));
  EXPECT_FALSE(sharp.live_before(callsite, term).contains(isa::a2));
  EXPECT_FALSE(sharp.live_before(callsite, term).contains(isa::a7));
  // More dead registers for instrumentation at the call site.
  EXPECT_GT(sharp.dead_before(callsite, term).count(),
            abi.dead_before(callsite, term).count());
}

TEST(Summaries, RecursiveFunctionsStaySound) {
  const auto bin = assembler::assemble(workloads::fib_program(10));
  CodeObject co(bin);
  co.parse();
  Summaries sums(co);
  const auto* fib = co.function_named("fib");
  ASSERT_NE(fib, nullptr);
  const auto* s = sums.lookup(fib->entry());
  ASSERT_NE(s, nullptr);
  // fib reads a0; its intra-SCC recursion falls back to the ABI model, so
  // may_use keeps the full argument set — sound, never under-approximate.
  EXPECT_TRUE(s->may_use.contains(isa::a0));
  // The base case (n < 2) returns with a0 untouched, so a0 is NOT a
  // must-def; t0 (the threshold constant) is written on every path.
  EXPECT_FALSE(s->must_def.contains(isa::a0));
  EXPECT_TRUE(s->must_def.contains(isa::t0));
}

TEST(Summaries, UnknownCalleeForcesConservative) {
  auto p = parse_src(R"(
    .globl _start
    .globl fptr
_start:
    li a7, 93
    ecall
fptr:
    addi sp, sp, -16
    sd ra, 8(sp)
    jalr ra, 0(a5)
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
)");
  Summaries sums(*p.co);
  const auto* s = sums.lookup(entry_of(p, "fptr"));
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->precise);
  EXPECT_TRUE(s->must_def.empty());     // guarantees nothing
  EXPECT_TRUE(s->may_use.contains(isa::a0));  // full ABI argument set
  EXPECT_TRUE(s->may_use.contains(isa::a7));
}

TEST(Summaries, InstrumentedBinariesStillCorrect) {
  // End-to-end guard: summary-driven liveness must never let the patcher
  // clobber a register the program needs. Reuse the chain workload with
  // deep instrumentation and verify behaviour.
  auto st = assembler::assemble(kChain);
  patch::BinaryEditor editor(st);
  const auto c = editor.alloc_var("c");
  for (const auto& [entry, f] : editor.code().functions())
    editor.insert_at(entry, patch::PointType::BlockEntry,
                     codegen::increment(c));
  const auto rewritten = editor.commit();
  emu::Machine base, inst;
  base.load(st);
  base.run(100000);
  inst.load(rewritten);
  inst.run(200000);
  EXPECT_EQ(inst.exit_code(), base.exit_code());
  EXPECT_GT(inst.memory().read(c.addr, 8), 0u);
}

}  // namespace
