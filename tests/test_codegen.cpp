// CodeGenAPI tests: snippets are lowered to RV64 code and *executed* on
// the emulator, so the checks cover behaviour, not just shape. Includes
// the dead-register optimization (scratch selection + spill fallback) and
// extension gating.
#include <gtest/gtest.h>

#include "codegen/codegen.hpp"
#include "emu/machine.hpp"
#include "isa/encoder.hpp"
#include "isa/imm_builder.hpp"

namespace {

using namespace rvdyn;
using namespace rvdyn::codegen;
using emu::Machine;
using emu::StopReason;

constexpr std::uint64_t kCodeBase = 0x10000;
constexpr std::uint64_t kVarBase = 0x30000;

// Execute a generated sequence followed by ebreak; returns the machine for
// inspection.
void run_snippet(Machine& m, const std::vector<isa::Instruction>& insns) {
  auto bytes = encode_sequence(insns);
  bytes.push_back(0x73);  // ebreak (4-byte form)
  bytes.push_back(0x00);
  bytes.push_back(0x10);
  bytes.push_back(0x00);
  m.memory().map(kCodeBase, bytes.size() + 16);
  m.memory().map(kVarBase, 0x1000);
  m.memory().map(Machine::kStackTop - Machine::kStackSize,
                 Machine::kStackSize);
  m.write_code(kCodeBase, bytes.data(), bytes.size());
  m.set_pc(kCodeBase);
  m.set_x(2, Machine::kStackTop - 64);
  const StopReason r = m.run(100000);
  ASSERT_EQ(static_cast<int>(r), static_cast<int>(StopReason::Breakpoint))
      << "stopped at 0x" << std::hex << m.stop_pc();
}

isa::RegSet some_dead() {
  isa::RegSet dead;
  dead.add(isa::t0);
  dead.add(isa::t1);
  dead.add(isa::t2);
  dead.add(isa::t3);
  return dead;
}

Variable var_at(std::uint64_t off, std::uint8_t size = 8) {
  Variable v;
  v.addr = kVarBase + off;
  v.size = size;
  v.name = "v";
  return v;
}

TEST(Codegen, CounterIncrement) {
  CodeGenerator gen;
  const Variable v = var_at(0);
  GenStats stats;
  const auto insns = gen.generate(*increment(v), some_dead(), &stats);
  Machine m;
  m.memory().map(kVarBase, 0x1000);
  m.memory().write(v.addr, 41, 8);
  run_snippet(m, insns);
  EXPECT_EQ(m.memory().read(v.addr, 8), 42u);
  EXPECT_GT(stats.scratch_from_dead, 0u);
  EXPECT_EQ(stats.scratch_spilled, 0u);
  // The counter peephole keeps the sequence tight (addr, ld, addi, sd).
  EXPECT_LE(stats.n_insns, 6u);
}

TEST(Codegen, IncrementWithoutDeadRegsSpills) {
  CodeGenerator gen;
  const Variable v = var_at(0);
  GenStats stats;
  const auto insns = gen.generate(*increment(v), isa::RegSet(), &stats);
  EXPECT_GT(stats.scratch_spilled, 0u);

  // Spilled registers must be preserved across the snippet.
  Machine m;
  m.memory().write(v.addr, 7, 8);
  m.set_x(5, 0xdeadbeef);   // t0
  m.set_x(6, 0xcafebabe);   // t1
  run_snippet(m, insns);
  EXPECT_EQ(m.memory().read(v.addr, 8), 8u);
  EXPECT_EQ(m.get_x(5), 0xdeadbeefu);
  EXPECT_EQ(m.get_x(6), 0xcafebabeu);
}

TEST(Codegen, SpillBaselineIsLonger) {
  // The ablation the paper's Table 1 highlights: dead-register allocation
  // yields strictly shorter sequences than always-spilling.
  GenOptions spill_opts;
  spill_opts.use_dead_registers = false;
  CodeGenerator dead_gen, spill_gen(spill_opts);
  const Variable v = var_at(0);
  GenStats a, b;
  dead_gen.generate(*increment(v), some_dead(), &a);
  spill_gen.generate(*increment(v), some_dead(), &b);
  EXPECT_LT(a.n_insns, b.n_insns);
  EXPECT_EQ(a.scratch_spilled, 0u);
  EXPECT_GT(b.scratch_spilled, 0u);
}

TEST(Codegen, ArithmeticExpression) {
  // v1 = (17 + 5) * 3 - 6  = 60
  CodeGenerator gen;
  const Variable v = var_at(8);
  const auto snip = assign(
      v, binary(BinOp::Sub,
                binary(BinOp::Mul,
                       binary(BinOp::Add, constant(17), constant(5)),
                       constant(3)),
                constant(6)));
  Machine m;
  run_snippet(m, gen.generate(*snip, some_dead()));
  EXPECT_EQ(m.memory().read(kVarBase + 8, 8), 60u);
}

TEST(Codegen, ReadRegisterOperand) {
  // v = a0 + a1
  CodeGenerator gen;
  const Variable v = var_at(16);
  const auto snip =
      assign(v, binary(BinOp::Add, read_reg(isa::a0), read_reg(isa::a1)));
  Machine m;
  m.set_x(10, 30);
  m.set_x(11, 12);
  run_snippet(m, gen.generate(*snip, some_dead()));
  EXPECT_EQ(m.memory().read(kVarBase + 16, 8), 42u);
}

TEST(Codegen, WriteRegister) {
  CodeGenerator gen;
  const auto snip = write_reg(isa::a5, constant(1234));
  Machine m;
  run_snippet(m, gen.generate(*snip, some_dead()));
  EXPECT_EQ(m.get_x(15), 1234u);
}

TEST(Codegen, LoadStoreIndirect) {
  // mem[base+8] = mem[base] + 1
  CodeGenerator gen;
  const auto snip =
      store(constant(static_cast<std::int64_t>(kVarBase + 8)),
            binary(BinOp::Add,
                   load(constant(static_cast<std::int64_t>(kVarBase))),
                   constant(1)));
  Machine m;
  m.memory().write(kVarBase, 99, 8);
  run_snippet(m, gen.generate(*snip, some_dead()));
  EXPECT_EQ(m.memory().read(kVarBase + 8, 8), 100u);
}

TEST(Codegen, ConditionalBothArms) {
  CodeGenerator gen;
  const Variable v = var_at(24);
  const auto snip = if_then(
      binary(BinOp::LtS, read_reg(isa::a0), constant(10)),
      assign(v, constant(111)), assign(v, constant(222)));

  {
    Machine m;
    m.set_x(10, 5);
    run_snippet(m, gen.generate(*snip, some_dead()));
    EXPECT_EQ(m.memory().read(kVarBase + 24, 8), 111u);
  }
  {
    Machine m;
    m.set_x(10, 50);
    run_snippet(m, gen.generate(*snip, some_dead()));
    EXPECT_EQ(m.memory().read(kVarBase + 24, 8), 222u);
  }
}

TEST(Codegen, IfWithoutElse) {
  CodeGenerator gen;
  const Variable v = var_at(32);
  const auto snip = if_then(binary(BinOp::Eq, read_reg(isa::a0), constant(7)),
                            assign(v, constant(1)));
  Machine m;
  m.set_x(10, 3);
  m.memory().write(kVarBase + 32, 0, 8);
  run_snippet(m, gen.generate(*snip, some_dead()));
  EXPECT_EQ(m.memory().read(kVarBase + 32, 8), 0u);
}

TEST(Codegen, ComparisonOperators) {
  CodeGenerator gen;
  struct Case {
    BinOp op;
    std::int64_t a, b;
    std::uint64_t expect;
  };
  const Case cases[] = {
      {BinOp::Eq, 5, 5, 1},   {BinOp::Eq, 5, 6, 0},
      {BinOp::Ne, 5, 6, 1},   {BinOp::Ne, 5, 5, 0},
      {BinOp::LtS, -1, 0, 1}, {BinOp::LtS, 0, -1, 0},
      {BinOp::LtU, 1, 2, 1},  {BinOp::LtU, static_cast<std::int64_t>(-1), 2, 0},
      {BinOp::GeS, 3, 3, 1},  {BinOp::GeS, 2, 3, 0},
      {BinOp::GeU, 9, 3, 1},  {BinOp::GeU, 2, 3, 0},
  };
  for (const Case& c : cases) {
    const Variable v = var_at(40);
    const auto snip = assign(v, binary(c.op, constant(c.a), constant(c.b)));
    Machine m;
    run_snippet(m, gen.generate(*snip, some_dead()));
    EXPECT_EQ(m.memory().read(kVarBase + 40, 8), c.expect)
        << "op " << static_cast<int>(c.op) << " " << c.a << "," << c.b;
  }
}

TEST(Codegen, ExtensionGatingRejectsMulWithoutM) {
  GenOptions opts;
  opts.extensions = isa::ExtensionSet::rv64i();
  CodeGenerator gen(opts);
  const auto snip = assign(var_at(0), binary(BinOp::Mul, constant(2),
                                             constant(3)));
  EXPECT_THROW(gen.generate(*snip, some_dead()), Error);
}

TEST(Codegen, SequenceOfStatements) {
  CodeGenerator gen;
  const Variable v1 = var_at(48), v2 = var_at(56);
  const auto snip = sequence({assign(v1, constant(10)),
                              assign(v2, binary(BinOp::Add, var_expr(v1),
                                                constant(5))),
                              increment(v1)});
  Machine m;
  run_snippet(m, gen.generate(*snip, some_dead()));
  EXPECT_EQ(m.memory().read(kVarBase + 48, 8), 11u);
  EXPECT_EQ(m.memory().read(kVarBase + 56, 8), 15u);
}

TEST(Codegen, SmallVariableSizes) {
  CodeGenerator gen;
  const Variable v4 = var_at(64, 4);
  Machine m;
  m.memory().write(kVarBase + 64, 0xffffffff, 4);   // will wrap to 0
  m.memory().write(kVarBase + 68, 0x55, 4);         // must stay intact
  run_snippet(m, gen.generate(*increment(v4), some_dead()));
  EXPECT_EQ(m.memory().read(kVarBase + 64, 4), 0u);
  EXPECT_EQ(m.memory().read(kVarBase + 68, 4), 0x55u);
}

TEST(Codegen, CallSnippetInvokesTarget) {
  // Target function at 0x11000: a0 = a0 + a1; ret.
  CodeGenerator gen;
  const std::uint64_t target = 0x11000;
  Machine m;
  {
    using isa::Instruction;
    using isa::Mnemonic;
    std::vector<isa::Instruction> callee = {
        isa::assemble(Mnemonic::add,
                      {Instruction::reg_op(isa::a0, isa::Operand::kWrite),
                       Instruction::reg_op(isa::a0, isa::Operand::kRead),
                       Instruction::reg_op(isa::a1, isa::Operand::kRead)}),
        isa::assemble(Mnemonic::jalr,
                      {Instruction::reg_op(isa::zero, isa::Operand::kWrite),
                       Instruction::reg_op(isa::ra, isa::Operand::kRead),
                       Instruction::imm_op(0)}),
    };
    const auto bytes = encode_sequence(callee);
    m.memory().map(target, 0x100);
    m.write_code(target, bytes.data(), bytes.size());
  }
  const Variable v = var_at(72);
  const auto snip = assign(v, call(target, {constant(40), constant(2)}));
  // a0/a1 hold mutatee values that must survive the call snippet.
  m.set_x(10, 1111);
  m.set_x(11, 2222);
  run_snippet(m, gen.generate(*snip, isa::RegSet()));
  EXPECT_EQ(m.memory().read(kVarBase + 72, 8), 42u);
  EXPECT_EQ(m.get_x(10), 1111u);
  EXPECT_EQ(m.get_x(11), 2222u);
}

TEST(Codegen, StackPointerRestoredAfterSpills) {
  CodeGenerator gen;
  const auto snip = increment(var_at(80));
  Machine m;
  const std::uint64_t sp0 = Machine::kStackTop - 64;
  run_snippet(m, gen.generate(*snip, isa::RegSet()));  // force spills
  EXPECT_EQ(m.get_x(2), sp0);
}

// Property sweep: materialized constants of many shapes evaluate exactly.
class ImmMaterialize : public ::testing::TestWithParam<int> {};

TEST_P(ImmMaterialize, RoundTripThroughEmulator) {
  const int i = GetParam();
  const std::int64_t probes[] = {
      0, 1, -1, 42, -2048, 2047, 2048, -2049,
      0x7fff, 0x12345, -0x12345, 0x7fffffff, -0x80000000LL,
      0x80000000LL, 0x100000000LL, 0x123456789abcdef0LL,
      -0x123456789abcdefLL, static_cast<std::int64_t>(0x8000000000000000ULL),
      (static_cast<std::int64_t>(i) * 0x9e3779b97f4a7c15LL) ^ (i << 13),
  };
  for (const std::int64_t v : probes) {
    std::vector<isa::Instruction> seq;
    isa::materialize_imm(isa::t0, v, &seq);
    ASSERT_LE(seq.size(), 8u);
    Machine m;
    run_snippet(m, seq);
    EXPECT_EQ(m.get_x(5), static_cast<std::uint64_t>(v)) << "imm " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ImmMaterialize, ::testing::Range(0, 24));

}  // namespace
