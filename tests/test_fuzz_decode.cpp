// Decoder robustness sweeps: no input bytes may crash the decoder, and
// every successfully decoded instruction must re-encode to something that
// decodes back to the same instruction (semantic idempotence over random
// words — the 32-bit analogue of the exhaustive compressed round trip).
#include <gtest/gtest.h>

#include <random>

#include "isa/decoder.hpp"
#include "isa/encoder.hpp"
#include "parse/loops.hpp"

#include "assembler/assembler.hpp"

namespace {

using namespace rvdyn;
using isa::Decoder;
using isa::Instruction;

bool same_instruction(const Instruction& a, const Instruction& b) {
  if (a.mnemonic() != b.mnemonic()) return false;
  if (a.num_operands() != b.num_operands()) return false;
  for (unsigned i = 0; i < a.num_operands(); ++i) {
    const auto& x = a.operand(i);
    const auto& y = b.operand(i);
    if (x.kind != y.kind || !(x.reg == y.reg) || x.imm != y.imm ||
        x.size != y.size)
      return false;
  }
  return true;
}

class FuzzDecode : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDecode, RandomWordsNeverCrashAndRoundTrip) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1);
  Decoder dec(isa::ExtensionSet(0xffff));
  unsigned decoded = 0;
  for (int i = 0; i < 200000; ++i) {
    const auto word = static_cast<std::uint32_t>(rng());
    Instruction insn;
    if (!dec.decode32(word | 0x3, &insn)) continue;  // force 32-bit space
    ++decoded;
    // Rebuild from the operand list; re-encoding must reproduce the exact
    // original bytes — every architectural bit (including aq/rl and fence
    // sets) is carried by some operand, and every don't-care bit is pinned
    // by the decode mask.
    std::vector<isa::Operand> ops;
    for (unsigned k = 0; k < insn.num_operands(); ++k)
      ops.push_back(insn.operand(k));
    const std::uint32_t re = isa::encode32(insn.mnemonic(), ops);
    EXPECT_EQ(re, word | 0x3)
        << std::hex << (word | 0x3) << " -> " << re << ": "
        << insn.to_string();
    Instruction insn2;
    ASSERT_TRUE(dec.decode32(re, &insn2)) << std::hex << word;
    EXPECT_TRUE(same_instruction(insn, insn2))
        << std::hex << word << " -> " << re << ": " << insn.to_string()
        << " vs " << insn2.to_string();
    // The operand read/write sets must survive the round trip too.
    EXPECT_EQ(insn.regs_read(), insn2.regs_read()) << insn.to_string();
    EXPECT_EQ(insn.regs_written(), insn2.regs_written()) << insn.to_string();
  }
  // A random 32-bit word hits a valid encoding reasonably often.
  EXPECT_GT(decoded, 100u);
}

TEST_P(FuzzDecode, RandomHalfwordsNeverCrash) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 40503u + 7);
  Decoder dec;
  for (int i = 0; i < 65536; ++i) {
    const auto half = static_cast<std::uint16_t>(rng());
    Instruction insn;
    if ((half & 3) == 3) continue;
    if (dec.decode16(half, &insn)) {
      EXPECT_TRUE(insn.valid());
      EXPECT_EQ(insn.length(), 2u);
      // Expanded instructions must print without crashing.
      EXPECT_FALSE(insn.to_string().empty());
    }
  }
}

TEST(FuzzDecodeExhaustive, EveryValidHalfwordRecompressesToItself) {
  // The entire 16-bit space: whatever decode16 accepts, compress() must map
  // back to the identical halfword — HINT encodings and aliasable forms
  // (c.addi sp vs c.addi16sp) included.
  Decoder dec(isa::ExtensionSet(0xffff));
  unsigned decoded = 0;
  for (std::uint32_t h = 0; h <= 0xffff; ++h) {
    if ((h & 3) == 3) continue;
    const auto half = static_cast<std::uint16_t>(h);
    Instruction insn;
    if (!dec.decode16(half, &insn)) continue;
    ++decoded;
    const auto back = isa::compress(insn);
    ASSERT_TRUE(back.has_value())
        << std::hex << h << ": " << insn.to_string();
    EXPECT_EQ(*back, half)
        << std::hex << h << " -> " << *back << ": " << insn.to_string();
  }
  EXPECT_GT(decoded, 40000u);
}

TEST_P(FuzzDecode, RandomByteStreamsParseSafely) {
  // Feed random bytes through the stream decoder the way gap parsing does;
  // decode must consume 0/2/4 bytes and never read out of bounds.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 9176u + 3);
  std::vector<std::uint8_t> buf(4096);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
  Decoder dec;
  std::size_t off = 0;
  while (off < buf.size()) {
    Instruction insn;
    const unsigned n = dec.decode(buf.data() + off, buf.size() - off, &insn);
    if (n == 0) {
      off += 2;  // skip like the gap scanner
      continue;
    }
    ASSERT_TRUE(n == 2 || n == 4);
    off += n;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecode, ::testing::Range(0, 8));

// ---- loop nesting (uses the new LoopNest API) ----

TEST(LoopNest, ThreeDeep) {
  const auto st = assembler::assemble(R"(
    .globl f
f:
    li s0, 0
l1: li s1, 0
l2: li s2, 0
l3: addi s2, s2, 1
    li t0, 3
    blt s2, t0, l3
    addi s1, s1, 1
    blt s1, t0, l2
    addi s0, s0, 1
    blt s0, t0, l1
    ret
)");
  parse::CodeObject co(st);
  co.parse();
  const auto* f = co.function_named("f");
  const auto nest = parse::loop_nest(*f);
  ASSERT_EQ(nest.loops.size(), 3u);

  unsigned depth1 = 0, depth2 = 0, depth3 = 0;
  for (std::size_t i = 0; i < nest.loops.size(); ++i) {
    const unsigned d = nest.depth(i);
    if (d == 1) ++depth1;
    if (d == 2) ++depth2;
    if (d == 3) ++depth3;
  }
  EXPECT_EQ(depth1, 1u);
  EXPECT_EQ(depth2, 1u);
  EXPECT_EQ(depth3, 1u);

  // The innermost loop's header belongs to the depth-3 loop.
  const auto* l3 = st.find_symbol("l3");
  ASSERT_NE(l3, nullptr);
  const int idx = nest.innermost_containing(l3->value);
  ASSERT_GE(idx, 0);
  EXPECT_EQ(nest.depth(static_cast<std::size_t>(idx)), 3u);
}

TEST(LoopNest, SiblingsShareParent) {
  const auto st = assembler::assemble(R"(
    .globl f
f:
    li s0, 0
outer:
    li s1, 0
in1:
    addi s1, s1, 1
    li t0, 2
    blt s1, t0, in1
    li s2, 0
in2:
    addi s2, s2, 1
    li t0, 2
    blt s2, t0, in2
    addi s0, s0, 1
    li t0, 2
    blt s0, t0, outer
    ret
)");
  parse::CodeObject co(st);
  co.parse();
  const auto nest = parse::loop_nest(*co.function_named("f"));
  ASSERT_EQ(nest.loops.size(), 3u);
  int outer = -1;
  for (std::size_t i = 0; i < nest.loops.size(); ++i)
    if (nest.parent[i] == -1) outer = static_cast<int>(i);
  ASSERT_GE(outer, 0);
  unsigned children = 0;
  for (std::size_t i = 0; i < nest.loops.size(); ++i)
    if (nest.parent[i] == outer) ++children;
  EXPECT_EQ(children, 2u);
}

}  // namespace
