// End-to-end tests for the RVA23 extension-growth path (paper §3.4):
// Zicond/Zba/Zbb programs assemble under an extended profile, run on the
// emulator, are analyzable and instrumentable, and are rejected by
// RV64GC-only components. Plus dynamic instrumentation *removal*
// (revert_patch), the first-class engine inverse that restores every
// springboard's pre-patch bytes through the AddressSpace.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "patch/editor.hpp"
#include "proccontrol/process.hpp"

namespace {

using namespace rvdyn;
using emu::Machine;
using emu::StopReason;

isa::ExtensionSet rva23ish() {
  auto s = isa::ExtensionSet::rv64gc();
  s.add(isa::Extension::Zicond);
  s.add(isa::Extension::Zba);
  s.add(isa::Extension::Zbb);
  return s;
}

constexpr const char* kBitmanip = R"(
    .globl _start
_start:
    li t0, 0x00f0
    clz t1, t0            # highest bit is 7: 64 - 8 = 56
    ctz t2, t0            # 4
    cpop t3, t0           # 4
    add a0, t1, t2        # 60
    add a0, a0, t3        # 64
    li t4, -5
    li t5, 3
    max t6, t4, t5        # 3
    add a0, a0, t6        # 67
    min t6, t4, t5        # -5
    sub a0, a0, t6        # 72
    li s0, 2
    li s1, 100
    sh2add s2, s0, s1     # 100 + 2*4 = 108
    sub a0, s2, a0        # 36
    li s3, 0x1234
    rev8 s4, s3           # 0x3412 << 48
    srli s4, s4, 48       # 0x3412
    andi s4, s4, 0xff     # 0x12 = 18
    sub a0, s4, a0        # -18
    neg a0, a0            # 18
    li s5, 0xff
    czero.eqz s6, s5, x0  # rs2==0 -> 0
    add a0, a0, s6        # 18
    czero.nez s7, s5, x0  # rs2==0 -> rs1 = 0xff
    andi s7, s7, 0x14     # 0x14 = 20
    add a0, a0, s7        # 38
    li a7, 93
    ecall
)";

TEST(ExtE2E, BitmanipProgramRuns) {
  assembler::Options opts;
  opts.extensions = rva23ish();
  const auto bin = assembler::assemble(kBitmanip, opts);
  // The ISA string round-trips through .riscv.attributes.
  EXPECT_TRUE(bin.extensions().has(isa::Extension::Zbb));
  EXPECT_TRUE(bin.extensions().has(isa::Extension::Zba));
  EXPECT_TRUE(bin.extensions().has(isa::Extension::Zicond));

  Machine m(rva23ish());
  m.load(bin);
  ASSERT_EQ(static_cast<int>(m.run(100000)),
            static_cast<int>(StopReason::Exited));
  EXPECT_EQ(m.exit_code(), 38);
}

TEST(ExtE2E, Rv64gcMachineRejectsBitmanip) {
  assembler::Options opts;
  opts.extensions = rva23ish();
  const auto bin = assembler::assemble(kBitmanip, opts);
  Machine m;  // plain RV64GC hart
  m.load(bin);
  EXPECT_EQ(static_cast<int>(m.run(100000)),
            static_cast<int>(StopReason::IllegalInsn));
}

TEST(ExtE2E, AssemblerGatesByProfile) {
  // Default profile (RV64GC) must reject bit-manip mnemonics.
  EXPECT_THROW(assembler::assemble(".globl _start\n_start:\n clz a0, a1\n"),
               Error);
  EXPECT_THROW(
      assembler::assemble(".globl _start\n_start:\n sh1add a0, a1, a2\n"),
      Error);
}

TEST(ExtE2E, BitmanipBinaryIsInstrumentable) {
  // The full ParseAPI -> PatchAPI pipeline over an extended-profile binary:
  // the editor must decode Zbb instructions while relocating, and must
  // keep its instrumentation inside the mutatee's profile.
  assembler::Options opts;
  opts.extensions = rva23ish();
  auto src = std::string(R"(
    .globl _start
    .globl hash
_start:
    li s0, 0
    li s1, 20
    li a0, 0x9e3779b9
hloop:
    call hash
    addi s0, s0, 1
    blt s0, s1, hloop
    andi a0, a0, 255
    li a7, 93
    ecall
hash:
    rol a0, a0, s0
    xor a0, a0, s0
    cpop t0, a0
    add a0, a0, t0
    ret
)");
  const auto bin = assembler::assemble(src, opts);
  Machine base(rva23ish());
  base.load(bin);
  ASSERT_EQ(static_cast<int>(base.run(100000)),
            static_cast<int>(StopReason::Exited));

  patch::BinaryEditor editor(bin);
  const auto c = editor.alloc_var("hashes");
  editor.insert_at(editor.code().function_named("hash")->entry(),
                   patch::PointType::FuncEntry, codegen::increment(c));
  const auto rewritten = editor.commit();

  Machine m(rva23ish());
  m.load(rewritten);
  ASSERT_EQ(static_cast<int>(m.run(200000)),
            static_cast<int>(StopReason::Exited));
  EXPECT_EQ(m.exit_code(), base.exit_code());
  EXPECT_EQ(m.memory().read(c.addr, 8), 20u);
}

TEST(ExtE2E, RevertPatchStopsCounting) {
  // Dynamic instrumentation removal: counters freeze after revert_patch
  // and the process still completes correctly.
  const char* src = R"(
    .globl _start
    .globl tick
_start:
    li s0, 0
    li s1, 12
tloop:
    call tick
    addi s0, s0, 1
    blt s0, s1, tloop
    mv a0, s2
    li a7, 93
    ecall
tick:
    addi s2, s2, 1
    ret
)";
  const auto bin = assembler::assemble(src);
  auto proc = proccontrol::Process::launch(bin);

  patch::BinaryEditor editor(bin);
  const auto c = editor.alloc_var("ticks");
  editor.insert_at(editor.code().function_named("tick")->entry(),
                   patch::PointType::FuncEntry, codegen::increment(c));
  editor.commit();
  proc->apply_patch(editor);

  // Run 5 instrumented calls (breakpoint on the loop-head call counterpart:
  // stop at tick's *relocated* home is awkward — use the counter itself).
  const auto* tick_sym = bin.find_symbol("tloop");
  (void)tick_sym;
  // Step until the counter reads 5.
  while (proc->read_mem(c.addr, 8) < 5) {
    const auto ev = proc->step_native();
    ASSERT_NE(static_cast<int>(ev.kind),
              static_cast<int>(proccontrol::Event::Kind::Exited));
  }
  proc->revert_patch(editor);
  const auto ev = proc->continue_run();
  ASSERT_EQ(static_cast<int>(ev.kind),
            static_cast<int>(proccontrol::Event::Kind::Exited));
  EXPECT_EQ(ev.exit_code, 12);  // program behaviour unaffected throughout
  EXPECT_EQ(proc->read_mem(c.addr, 8), 5u);  // counting stopped at revert
}

TEST(ExtE2E, RevertRestoresOriginalSpringboardBytes) {
  const auto bin = assembler::assemble(R"(
    .globl _start
    .globl f
_start:
    call f
    li a7, 93
    ecall
f:
    li a0, 7
    ret
)");
  patch::BinaryEditor editor(bin);
  const auto c = editor.alloc_var("c");
  editor.insert_at(editor.code().function_named("f")->entry(),
                   patch::PointType::FuncEntry, codegen::increment(c));

  // First-class removal through the engine: commit_to then revert_from on
  // the same address space must leave every springboarded byte range
  // exactly as it was before the commit.
  auto proc = proccontrol::Process::launch(bin);
  ASSERT_TRUE(editor.commit_to(proc->address_space()).is_ok());
  const patch::PatchPlan* plan = editor.plan();
  ASSERT_NE(plan, nullptr);
  ASSERT_FALSE(plan->springboards.empty());
  for (const auto& sb : plan->springboards) {
    ASSERT_EQ(sb.bytes.size(), sb.original.size());
    // The springboard is installed...
    EXPECT_EQ(proc->address_space().read_code(sb.addr, sb.bytes.size()),
              sb.bytes);
  }
  ASSERT_TRUE(editor.revert_from(proc->address_space()).is_ok());
  for (const auto& sb : plan->springboards) {
    // ...and removal restores the pre-patch bytes.
    EXPECT_EQ(proc->address_space().read_code(sb.addr, sb.original.size()),
              sb.original);
  }
}

}  // namespace
