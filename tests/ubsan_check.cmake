# Builds the tree once with -DRVDYN_SANITIZE=undefined and runs the
# semantics, emulator, and differential-check suites under UBSan. The
# lockstep oracle drives both interpreters through adversarial corner
# states (INT_MIN / -1 division, shift-amount edges, signed boundaries) —
# the inputs where undefined behavior in either side would silently decide
# a comparison. Run via
#   cmake -P tests/ubsan_check.cmake
# (registered as the `ubsan_check_suite` ctest from non-sanitized builds).
#
# Variables (all optional, -D before -P):
#   SOURCE_DIR  repo root (default: parent of this script)
#   BINARY_DIR  nested build dir (default: ${SOURCE_DIR}/build-ubsan)
#   JOBS        parallel build jobs (default: 4)

if(NOT SOURCE_DIR)
  get_filename_component(SOURCE_DIR ${CMAKE_CURRENT_LIST_DIR} DIRECTORY)
endif()
if(NOT BINARY_DIR)
  set(BINARY_DIR ${SOURCE_DIR}/build-ubsan)
endif()
if(NOT JOBS)
  set(JOBS 4)
endif()

message(STATUS "ubsan check: configuring ${BINARY_DIR} with -DRVDYN_SANITIZE=undefined")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DRVDYN_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ubsan check: configure failed")
endif()

# Both sides of the lockstep comparison plus the three oracle harnesses.
set(targets
  test_semantics
  test_emu
  test_emu_cache
  test_check_lockstep
  test_check_roundtrip
  test_check_shadowstack)

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR} -j ${JOBS} --target ${targets}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ubsan check: build failed with RVDYN_SANITIZE=undefined")
endif()

foreach(t ${targets})
  message(STATUS "ubsan check: running ${t}")
  execute_process(
    COMMAND ${BINARY_DIR}/tests/${t}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ubsan check: ${t} failed under UBSan")
  endif()
endforeach()

message(STATUS "ubsan check: semantics/emu/check suites clean under UBSan")
