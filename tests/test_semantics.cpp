// Semantics-pipeline tests (the SAIL substitute, §3.2.4).
//
// The key property: for every mnemonic with a precise spec, evaluating the
// parsed semantics expression must agree with the emulator executing the
// same instruction from the same machine state — a differential check
// between the two independent interpretations of the ISA, run over
// parameterized random-state sweeps.
#include <gtest/gtest.h>

#include <random>

#include "emu/machine.hpp"
#include "isa/encoder.hpp"
#include "semantics/eval.hpp"

namespace {

using namespace rvdyn;
using isa::Instruction;
using isa::Mnemonic;
using isa::Operand;

Operand W(isa::Reg r) { return Instruction::reg_op(r, Operand::kWrite); }
Operand R(isa::Reg r) { return Instruction::reg_op(r, Operand::kRead); }
Operand I(std::int64_t v) { return Instruction::imm_op(v); }

// Execute one instruction on a machine seeded with `regs`; returns the
// value left in `rd`.
std::uint64_t emulate_one(const Instruction& insn,
                          const std::array<std::uint64_t, 32>& regs,
                          isa::Reg rd) {
  emu::Machine m(isa::ExtensionSet(0xffff));  // all extensions enabled
  constexpr std::uint64_t kBase = 0x10000;
  const std::uint32_t w = insn.raw();
  std::uint8_t bytes[8] = {
      static_cast<std::uint8_t>(w),       static_cast<std::uint8_t>(w >> 8),
      static_cast<std::uint8_t>(w >> 16), static_cast<std::uint8_t>(w >> 24),
      0x73, 0x00, 0x10, 0x00};  // ebreak
  m.memory().map(kBase, 16);
  m.write_code(kBase, bytes, sizeof(bytes));
  for (unsigned i = 1; i < 32; ++i) m.set_x(i, regs[i]);
  m.set_pc(kBase);
  EXPECT_EQ(static_cast<int>(m.run(4)),
            static_cast<int>(emu::StopReason::Breakpoint))
      << insn.to_string();
  return m.get_reg(rd);
}

// Evaluate the same instruction through the semantics pipeline.
std::optional<std::uint64_t> eval_semantics(
    const Instruction& insn, const std::array<std::uint64_t, 32>& regs) {
  const auto sem = semantics::semantics_of(insn);
  if (!sem.precise || !sem.has_reg_write) return std::nullopt;
  const semantics::RegResolver rr =
      [&](isa::Reg r) -> std::optional<std::uint64_t> {
    return r.cls == isa::RegClass::Int ? std::optional(regs[r.num])
                                       : std::nullopt;
  };
  return semantics::const_eval(*sem.reg_value, 0x10000, insn.length(), rr,
                               semantics::MemReader{});
}

// The precisely-modelled register-to-register subset.
const Mnemonic kRegOps[] = {
    Mnemonic::add,   Mnemonic::sub,   Mnemonic::sll,   Mnemonic::slt,
    Mnemonic::sltu,  Mnemonic::xor_,  Mnemonic::srl,   Mnemonic::sra,
    Mnemonic::or_,   Mnemonic::and_,  Mnemonic::addw,  Mnemonic::subw,
    Mnemonic::sllw,  Mnemonic::srlw,  Mnemonic::sraw,  Mnemonic::mul,
    Mnemonic::mulw,  Mnemonic::div,   Mnemonic::divu,  Mnemonic::rem,
    Mnemonic::remu,  Mnemonic::divw,  Mnemonic::divuw, Mnemonic::remw,
    Mnemonic::remuw, Mnemonic::czero_eqz, Mnemonic::czero_nez,
    // Zba / Zbb (RVA23 growth path): validated the same way.
    Mnemonic::add_uw, Mnemonic::sh1add, Mnemonic::sh2add, Mnemonic::sh3add,
    Mnemonic::sh1add_uw, Mnemonic::sh2add_uw, Mnemonic::sh3add_uw,
    Mnemonic::andn, Mnemonic::orn,  Mnemonic::xnor,  Mnemonic::max,
    Mnemonic::maxu, Mnemonic::min,  Mnemonic::minu,  Mnemonic::rol,
    Mnemonic::ror,  Mnemonic::rolw, Mnemonic::rorw};

class SemanticsDifferential : public ::testing::TestWithParam<int> {};

TEST_P(SemanticsDifferential, RegOpsAgreeWithEmulator) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 0x9e3779b9 + 7);
  std::array<std::uint64_t, 32> regs{};
  for (unsigned i = 1; i < 32; ++i) {
    // Mix full-range values with interesting corner cases.
    switch (rng() % 5) {
      case 0: regs[i] = rng(); break;
      case 1: regs[i] = 0; break;
      case 2: regs[i] = ~0ULL; break;
      case 3: regs[i] = 0x8000000000000000ULL; break;
      case 4: regs[i] = rng() & 0xff; break;
    }
  }
  for (const Mnemonic mn : kRegOps) {
    const isa::Reg rd = isa::x(static_cast<std::uint8_t>(1 + rng() % 31));
    const isa::Reg rs1 = isa::x(static_cast<std::uint8_t>(rng() % 32));
    const isa::Reg rs2 = isa::x(static_cast<std::uint8_t>(rng() % 32));
    const Instruction insn = isa::assemble(mn, {W(rd), R(rs1), R(rs2)});
    const auto sem_val = eval_semantics(insn, regs);
    ASSERT_TRUE(sem_val.has_value()) << insn.to_string();
    const std::uint64_t emu_val = emulate_one(insn, regs, rd);
    EXPECT_EQ(*sem_val, emu_val)
        << insn.to_string() << " rs1=0x" << std::hex << regs[rs1.num]
        << " rs2=0x" << regs[rs2.num];
  }
}

TEST_P(SemanticsDifferential, ImmOpsAgreeWithEmulator) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 11);
  std::array<std::uint64_t, 32> regs{};
  for (unsigned i = 1; i < 32; ++i) regs[i] = rng();

  const Mnemonic imm_ops[] = {Mnemonic::addi,  Mnemonic::slti,
                              Mnemonic::sltiu, Mnemonic::xori,
                              Mnemonic::ori,   Mnemonic::andi,
                              Mnemonic::addiw};
  for (const Mnemonic mn : imm_ops) {
    const isa::Reg rd = isa::x(static_cast<std::uint8_t>(1 + rng() % 31));
    const isa::Reg rs1 = isa::x(static_cast<std::uint8_t>(rng() % 32));
    const std::int64_t imm =
        static_cast<std::int64_t>(rng() % 4096) - 2048;
    const Instruction insn = isa::assemble(mn, {W(rd), R(rs1), I(imm)});
    const auto sem_val = eval_semantics(insn, regs);
    ASSERT_TRUE(sem_val.has_value());
    EXPECT_EQ(*sem_val, emulate_one(insn, regs, rd)) << insn.to_string();
  }
  // Shifts (distinct immediate ranges).
  for (const Mnemonic mn :
       {Mnemonic::slli, Mnemonic::srli, Mnemonic::srai}) {
    const isa::Reg rd = isa::x(static_cast<std::uint8_t>(1 + rng() % 31));
    const isa::Reg rs1 = isa::x(static_cast<std::uint8_t>(rng() % 32));
    const Instruction insn =
        isa::assemble(mn, {W(rd), R(rs1), I(static_cast<std::int64_t>(rng() % 64))});
    EXPECT_EQ(*eval_semantics(insn, regs), emulate_one(insn, regs, rd))
        << insn.to_string();
  }
  for (const Mnemonic mn :
       {Mnemonic::slliw, Mnemonic::srliw, Mnemonic::sraiw}) {
    const isa::Reg rd = isa::x(static_cast<std::uint8_t>(1 + rng() % 31));
    const isa::Reg rs1 = isa::x(static_cast<std::uint8_t>(rng() % 32));
    const Instruction insn =
        isa::assemble(mn, {W(rd), R(rs1), I(static_cast<std::int64_t>(rng() % 32))});
    EXPECT_EQ(*eval_semantics(insn, regs), emulate_one(insn, regs, rd))
        << insn.to_string();
  }
}

TEST_P(SemanticsDifferential, ZbbUnaryAndImmediateOpsAgree) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 5);
  std::array<std::uint64_t, 32> regs{};
  for (unsigned i = 1; i < 32; ++i) {
    switch (rng() % 4) {
      case 0: regs[i] = rng(); break;
      case 1: regs[i] = 0; break;
      case 2: regs[i] = 1ULL << (rng() % 64); break;
      case 3: regs[i] = rng() & 0xffff; break;
    }
  }
  // Unary "ds" forms.
  for (const Mnemonic mn :
       {Mnemonic::clz, Mnemonic::ctz, Mnemonic::cpop, Mnemonic::clzw,
        Mnemonic::ctzw, Mnemonic::cpopw, Mnemonic::sext_b, Mnemonic::sext_h,
        Mnemonic::zext_h, Mnemonic::rev8, Mnemonic::orc_b}) {
    const isa::Reg rd = isa::x(static_cast<std::uint8_t>(1 + rng() % 31));
    const isa::Reg rs1 = isa::x(static_cast<std::uint8_t>(rng() % 32));
    const Instruction insn = isa::assemble(mn, {W(rd), R(rs1)});
    const auto sem_val = eval_semantics(insn, regs);
    ASSERT_TRUE(sem_val.has_value()) << insn.to_string();
    EXPECT_EQ(*sem_val, emulate_one(insn, regs, rd))
        << insn.to_string() << " rs1=0x" << std::hex << regs[rs1.num];
  }
  // Immediate rotates/shifts.
  for (int k = 0; k < 4; ++k) {
    const isa::Reg rd = isa::x(static_cast<std::uint8_t>(1 + rng() % 31));
    const isa::Reg rs1 = isa::x(static_cast<std::uint8_t>(rng() % 32));
    const Instruction rori = isa::assemble(
        Mnemonic::rori,
        {W(rd), R(rs1), I(static_cast<std::int64_t>(rng() % 64))});
    EXPECT_EQ(*eval_semantics(rori, regs), emulate_one(rori, regs, rd))
        << rori.to_string();
    const Instruction roriw = isa::assemble(
        Mnemonic::roriw,
        {W(rd), R(rs1), I(static_cast<std::int64_t>(rng() % 32))});
    EXPECT_EQ(*eval_semantics(roriw, regs), emulate_one(roriw, regs, rd))
        << roriw.to_string();
    const Instruction slli_uw = isa::assemble(
        Mnemonic::slli_uw,
        {W(rd), R(rs1), I(static_cast<std::int64_t>(rng() % 64))});
    EXPECT_EQ(*eval_semantics(slli_uw, regs),
              emulate_one(slli_uw, regs, rd))
        << slli_uw.to_string();
  }
}

TEST_P(SemanticsDifferential, UpperImmediatesAgree) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
  std::array<std::uint64_t, 32> regs{};
  const isa::Reg rd = isa::x(static_cast<std::uint8_t>(1 + rng() % 31));
  const std::int64_t field =
      (static_cast<std::int64_t>(rng() % (1 << 20)) - (1 << 19)) << 12;
  for (const Mnemonic mn : {Mnemonic::lui, Mnemonic::auipc}) {
    const Instruction insn = isa::assemble(mn, {W(rd), I(field)});
    EXPECT_EQ(*eval_semantics(insn, regs), emulate_one(insn, regs, rd))
        << insn.to_string() << " field=" << field;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStates, SemanticsDifferential,
                         ::testing::Range(0, 32));

// ---- loads/stores through the semantics memory model ----

TEST(Semantics, LoadSemanticsMatchEmulator) {
  emu::Machine m;
  constexpr std::uint64_t kData = 0x30000;
  m.memory().map(kData, 0x100);
  m.memory().write(kData + 8, 0xfedcba9876543210ULL, 8);

  const Mnemonic loads[] = {Mnemonic::lb, Mnemonic::lbu, Mnemonic::lh,
                            Mnemonic::lhu, Mnemonic::lw, Mnemonic::lwu,
                            Mnemonic::ld};
  for (const Mnemonic mn : loads) {
    const auto& info = isa::opcode_info(mn);
    const Instruction insn = isa::assemble(
        mn, {W(isa::a0),
             Instruction::mem_op(isa::a1, 8, info.mem_size, Operand::kRead)});
    const auto sem = semantics::semantics_of(insn);
    ASSERT_TRUE(sem.precise);
    const semantics::RegResolver rr =
        [&](isa::Reg r) -> std::optional<std::uint64_t> {
      if (r == isa::a1) return kData;
      return std::nullopt;
    };
    const semantics::MemReader mr =
        [&](std::uint64_t addr, unsigned size) -> std::optional<std::uint64_t> {
      return m.memory().read(addr, size);
    };
    const auto v = semantics::const_eval(*sem.reg_value, 0, 4, rr, mr);
    ASSERT_TRUE(v.has_value()) << insn.to_string();

    // Emulate the same load.
    emu::Machine m2;
    m2.memory().write(kData + 8, 0xfedcba9876543210ULL, 8);
    const std::uint32_t w = insn.raw();
    std::uint8_t bytes[8] = {static_cast<std::uint8_t>(w),
                             static_cast<std::uint8_t>(w >> 8),
                             static_cast<std::uint8_t>(w >> 16),
                             static_cast<std::uint8_t>(w >> 24),
                             0x73, 0x00, 0x10, 0x00};
    m2.memory().map(0x10000, 16);
    m2.write_code(0x10000, bytes, sizeof(bytes));
    m2.set_reg(isa::a1, kData);
    m2.set_pc(0x10000);
    m2.run(2);
    EXPECT_EQ(*v, m2.get_reg(isa::a0)) << insn.to_string();
  }
}

TEST(Semantics, StoreSemanticsDescribeTheWrite) {
  const Instruction insn = isa::assemble(
      Mnemonic::sd, {R(isa::a0),
                     Instruction::mem_op(isa::sp, -16, 8, Operand::kWrite)});
  const auto sem = semantics::semantics_of(insn);
  ASSERT_TRUE(sem.precise);
  EXPECT_FALSE(sem.has_reg_write);
  ASSERT_TRUE(sem.has_mem_write);
  EXPECT_EQ(sem.store_size, 8);
  const semantics::RegResolver rr =
      [](isa::Reg r) -> std::optional<std::uint64_t> {
    if (r == isa::sp) return 0x1000;
    if (r == isa::a0) return 42;
    return std::nullopt;
  };
  EXPECT_EQ(semantics::const_eval(*sem.store_addr, 0, 4, rr, {}),
            std::optional<std::uint64_t>(0x1000 - 16));
  EXPECT_EQ(semantics::const_eval(*sem.store_value, 0, 4, rr, {}),
            std::optional<std::uint64_t>(42));
}

// ---- pipeline structure ----

TEST(Semantics, LinkWriteOfCalls) {
  const Instruction jal = isa::assemble(
      Mnemonic::jal, {W(isa::ra), Instruction::pcrel_op(0x100)});
  const auto sem = semantics::semantics_of(jal);
  ASSERT_TRUE(sem.precise);
  ASSERT_TRUE(sem.has_reg_write);
  EXPECT_EQ(sem.written_reg, isa::ra);
  // rd = pc + ilen.
  const auto v = semantics::const_eval(*sem.reg_value, 0x5000, 4, {}, {});
  EXPECT_EQ(v, std::optional<std::uint64_t>(0x5004));
}

TEST(Semantics, BranchesHaveNoRegisterEffects) {
  const Instruction beq = isa::assemble(
      Mnemonic::beq, {R(isa::a0), R(isa::a1), Instruction::pcrel_op(8)});
  const auto sem = semantics::semantics_of(beq);
  EXPECT_TRUE(sem.precise);
  EXPECT_FALSE(sem.has_reg_write);
  EXPECT_FALSE(sem.has_mem_write);
}

TEST(Semantics, X0WritesAreDropped) {
  // addi x0, x0, 0 (nop): the spec writes rd, but x0 defs must vanish.
  const Instruction nop = isa::assemble(
      Mnemonic::addi, {W(isa::zero), R(isa::zero), I(0)});
  const auto sem = semantics::semantics_of(nop);
  EXPECT_TRUE(sem.precise);
  EXPECT_FALSE(sem.has_reg_write);
}

TEST(Semantics, X0ReadsAsZero) {
  const Instruction insn = isa::assemble(
      Mnemonic::add, {W(isa::a0), R(isa::zero), R(isa::zero)});
  const auto sem = semantics::semantics_of(insn);
  // Even with no register resolver, x0 + x0 folds to 0.
  EXPECT_EQ(semantics::const_eval(*sem.reg_value, 0, 4, {}, {}),
            std::optional<std::uint64_t>(0));
}

TEST(Semantics, ConservativeFallbackForFloat) {
  const Instruction insn = isa::assemble(
      Mnemonic::fadd_d,
      {W(isa::f(0)), R(isa::f(1)), R(isa::f(2))});
  const auto sem = semantics::semantics_of(insn);
  EXPECT_FALSE(sem.precise);
  ASSERT_TRUE(sem.has_reg_write);
  EXPECT_EQ(sem.written_reg, isa::f(0));
  EXPECT_EQ(semantics::const_eval(*sem.reg_value, 0, 4, {}, {}),
            std::nullopt);
}

TEST(Semantics, SpecTableCoverage) {
  // Every precisely-modelled integer mnemonic must actually parse; a typo
  // in a spec string should fail loudly here, not deep inside an analysis.
  unsigned precise = 0;
  for (std::uint16_t i = 0; i < static_cast<std::uint16_t>(Mnemonic::kCount);
       ++i) {
    const Mnemonic mn = static_cast<Mnemonic>(i);
    const char* spec = semantics::semantics_spec(mn);
    if (spec[0] == '\0') continue;
    ++precise;
  }
  // The integer subset: ~60 mnemonics carry specs.
  EXPECT_GE(precise, 55u);
}

TEST(Semantics, ZicondEndToEnd) {
  // The paper's §3.4 growth path: the new extension decodes, evaluates and
  // emulates consistently without any analysis-code changes.
  std::array<std::uint64_t, 32> regs{};
  regs[11] = 77;  // a1
  regs[12] = 0;   // a2
  const Instruction eqz = isa::assemble(
      Mnemonic::czero_eqz, {W(isa::a0), R(isa::a1), R(isa::a2)});
  EXPECT_EQ(eval_semantics(eqz, regs), std::optional<std::uint64_t>(0));
  EXPECT_EQ(emulate_one(eqz, regs, isa::a0), 0u);
  regs[12] = 5;
  EXPECT_EQ(eval_semantics(eqz, regs), std::optional<std::uint64_t>(77));
  EXPECT_EQ(emulate_one(eqz, regs, isa::a0), 77u);

  const Instruction nez = isa::assemble(
      Mnemonic::czero_nez, {W(isa::a0), R(isa::a1), R(isa::a2)});
  EXPECT_EQ(emulate_one(nez, regs, isa::a0), 0u);
  // Extension gating: an RV64GC-only decoder must reject the encoding.
  isa::Decoder gc(isa::ExtensionSet::rv64gc());
  Instruction out;
  EXPECT_FALSE(gc.decode32(eqz.raw(), &out));
  isa::ExtensionSet with_cond = isa::ExtensionSet::rv64gc();
  with_cond.add(isa::Extension::Zicond);
  EXPECT_TRUE(isa::Decoder(with_cond).decode32(eqz.raw(), &out));
}

}  // namespace
